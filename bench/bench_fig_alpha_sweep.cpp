/// \file bench_fig_alpha_sweep.cpp
/// \brief Figure E: fractional-order sweep — OPM vs Grünwald–Letnikov vs
///        FFT against the analytic Mittag-Leffler solution.
///
/// Scalar FDE d^alpha x = -x + u (unit step), alpha in [0.25, 1.75],
/// fixed budget of m = 256 intervals over [0, 2].  Reported: relative
/// error (dB) of each solver vs the Mittag-Leffler closed form.
/// Expected shape: OPM and GL are accurate across the whole range (a few
/// tens of dB down), with accuracy degrading as alpha -> 0 (the t^alpha
/// start-up singularity sharpens); the FFT method trails because of its
/// periodic-extension error on the step input.

#include <cmath>
#include <cstdio>

#include "opm/mittag_leffler.hpp"
#include "opm/solver.hpp"
#include "transient/fft_solver.hpp"
#include "transient/grunwald.hpp"
#include "util/denormals.hpp"
#include "util/table.hpp"

using namespace opmsim;

namespace {

opm::DenseDescriptorSystem scalar_system(double lambda) {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd{{1.0}};
    s.a = la::Matrixd{{lambda}};
    s.b = la::Matrixd{{1.0}};
    return s;
}

} // namespace

int main() {
    opmsim::enable_flush_to_zero();
    const double t_end = 2.0;
    const la::index_t m = 256;
    const auto sys = scalar_system(-1.0);
    const std::vector<wave::Source> u = {wave::step(1.0)};

    std::printf("Figure E -- error vs differential order alpha "
                "(d^a x = -x + 1, T=2, m=%d)\n\n", static_cast<int>(m));
    TextTable tab;
    tab.set_header({"alpha", "OPM (diff)", "OPM (integral)", "GL", "FFT"});

    for (const double alpha :
         {0.25, 0.4, 0.5, 0.6, 0.75, 0.9, 1.0, 1.1, 1.25, 1.5, 1.75}) {
        // Analytic reference on a fine grid.
        la::Vectord tg = wave::linspace(1e-3, t_end * 0.999, 600);
        la::Vectord xv(tg.size());
        for (std::size_t k = 0; k < tg.size(); ++k)
            xv[k] = opm::ml_step_response(alpha, -1.0, 1.0, tg[k]);
        const wave::Waveform exact(tg, xv);

        opm::OpmOptions od;
        od.alpha = alpha;
        const auto ro = opm::simulate_opm(sys, u, t_end, m, od);
        opm::OpmOptions oi = od;
        oi.form = opm::OpmForm::integral;
        const auto ri = opm::simulate_opm(sys, u, t_end, m, oi);
        transient::GrunwaldOptions gopt;
        gopt.alpha = alpha;
        const auto rg = transient::simulate_grunwald(sys.to_sparse(), u, t_end,
                                                     m, gopt);
        const auto rf = transient::simulate_fft(sys, u, t_end,
                                                {alpha, static_cast<la::index_t>(m)});

        tab.add_row({fmt_g(alpha, 3),
                     fmt_db(wave::relative_error_db(exact, ro.outputs[0])),
                     fmt_db(wave::relative_error_db(exact, ri.outputs[0])),
                     fmt_db(wave::relative_error_db(exact, rg.outputs[0])),
                     fmt_db(wave::relative_error_db(exact, rf.outputs[0]))});
    }
    tab.print();
    std::printf("\nshape checks: time-domain methods (OPM/GL) beat the FFT "
                "baseline across the sweep;\nOPM tracks GL within a few dB "
                "at every order\n");
    return 0;
}
