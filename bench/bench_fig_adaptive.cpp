/// \file bench_fig_adaptive.cpp
/// \brief Figure C: adaptive vs uniform OPM (paper §III-B).
///
/// Workload: a stiff two-time-scale circuit (fast 50 ps supply transient,
/// slow 20 ns drift) plus a sharp mid-window pulse — uniform stepping must
/// resolve the fastest feature everywhere, adaptive refines locally.
/// Reported: steps used, runtime, and error vs a fine reference, for
/// uniform OPM at several m and adaptive OPM at several tolerances.
/// Expected shape: at equal accuracy the adaptive run uses ~5-20x fewer
/// steps ("a more flexible simulation with lower runtime").

#include <cstdio>

#include "opm/adaptive.hpp"
#include "opm/solver.hpp"
#include "util/denormals.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace opmsim;

namespace {

/// diag(-1/50ps, -1/20ns) with unit drive gains.
opm::DenseDescriptorSystem two_scale_system() {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd::identity(2);
    s.a = la::Matrixd{{-2e10, 0.0}, {0.0, -5e7}};
    s.b = la::Matrixd{{2e10, 1e10}, {5e7, 5e7}};
    return s;
}

} // namespace

int main() {
    opmsim::enable_flush_to_zero();
    const double t_end = 50e-9;
    const auto sys = two_scale_system();
    // channel 0: supply step at t=0; channel 1: sharp pulse mid-window.
    const std::vector<wave::Source> u = {
        wave::step(1.0), wave::pulse(0.3, 25e-9, 0.2e-9, 1e-9, 0.2e-9)};

    const auto ref = opm::simulate_opm(sys, u, t_end, 100000);

    std::printf("Figure C -- adaptive vs uniform OPM, stiff two-scale "
                "circuit, T=50ns\n\n");
    TextTable tab;
    tab.set_header({"Method", "steps", "runtime", "err vs ref (dB)"});

    for (const la::index_t m : {250, 1000, 4000, 16000}) {
        WallTimer t;
        const auto r = opm::simulate_opm(sys, u, t_end, m);
        const double ms = t.elapsed_ms();
        tab.add_row({"uniform", std::to_string(m), fmt_ms(ms),
                     fmt_db(wave::average_relative_error_db(ref.outputs, r.outputs))});
    }

    for (const double tol : {1e-2, 1e-3, 1e-4, 1e-5}) {
        opm::AdaptiveOptions opt;
        opt.tol = tol;
        opt.h_init = 1e-11;
        opt.h_max = t_end / 8;
        WallTimer t;
        const auto r = opm::simulate_opm_adaptive(sys, u, t_end, opt);
        const double ms = t.elapsed_ms();
        char name[48];
        std::snprintf(name, sizeof name, "adaptive tol=%g", tol);
        tab.add_row({name, std::to_string(r.accepted), fmt_ms(ms),
                     fmt_db(wave::average_relative_error_db(ref.outputs, r.outputs))});
    }
    tab.print();
    std::printf("\nshape check: at matched accuracy the adaptive runs use "
                "roughly an order of\nmagnitude fewer steps than uniform "
                "stepping (compare rows of similar dB)\n");
    return 0;
}
