/// \file bench_table1_fractional_tline.cpp
/// \brief Reproduces Table I: OPM vs FFT on a fractional transmission line.
///
/// Paper setup (§V-A): a 7-state / 2-port fractional model (alpha = 1/2)
/// from transmission-line analysis, simulated over [0, 2.7 ns) with m = 8
/// OPM intervals; compared against the FFT frequency-domain method with 8
/// samples (FFT-1) and 100 samples (FFT-2).  Reported: CPU time and the
/// relative error (eq. 30) of each FFT variant against OPM.
///
/// Paper values:   FFT-1  6.09 ms  -29.2 dB
///                 FFT-2  40.7 ms  -46.5 dB
///                 OPM    3.56 ms      -
/// Expected shape: OPM fastest; FFT-2 closer to OPM than FFT-1.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "circuit/tline.hpp"
#include "opm/solver.hpp"
#include "transient/fft_solver.hpp"
#include "transient/grunwald.hpp"
#include "util/denormals.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "wave/sources.hpp"

using namespace opmsim;

namespace {

/// Median-of-repeats wall time for a callable, in milliseconds.
template <class F>
double time_ms(F&& f, int repeats = 21) {
    double best = 1e300;
    for (int r = 0; r < repeats; ++r) {
        WallTimer t;
        f();
        best = std::min(best, t.elapsed_ms());
    }
    return best;
}

} // namespace

int main() {
    opmsim::enable_flush_to_zero();
    const double t_end = 2.7e-9;
    const la::index_t m = 8;

    const opm::DenseDescriptorSystem tline = circuit::make_fractional_tline();
    // Port drive: 1 V raised-cosine pulse carrying 12 GHz switching ripple
    // (15 %), far end quiet.  The pulse returns to zero inside the window
    // (benign periodic extension) and the ripple is the content that
    // separates the methods: OPM's interval averaging suppresses it, while
    // the 8-point FFT variant aliases it into a slow ghost — the
    // sampling-density sensitivity Table I reports.  The drive is tabulated
    // as a 256-point PWL waveform (as a measured stimulus would be), which
    // every method samples through the same interpolator.
    const wave::Source drive = [] {
        constexpr double w = 2.0e-9;
        std::vector<double> ts(257), vs(257);
        for (int k = 0; k <= 256; ++k) {
            const double t = 2.7e-9 * k / 256.0;
            ts[static_cast<std::size_t>(k)] = t;
            double v = 0.0;
            if (t > 0.0 && t < w) {
                const double env = std::sin(std::numbers::pi * t / w);
                v = env * env *
                    (1.0 + 0.15 * std::sin(2.0 * std::numbers::pi * 12e9 * t));
            }
            vs[static_cast<std::size_t>(k)] = v;
        }
        return wave::pwl(std::move(ts), std::move(vs));
    }();
    const std::vector<wave::Source> u = {drive, wave::step(0.0)};

    opm::OpmOptions opm_opt;
    opm_opt.alpha = circuit::kTlineAlpha;
    opm_opt.quad_points = 2;   // 2-pt Gauss per panel ...
    opm_opt.quad_panels = 4;   // ... x4 panels: resolves the 12 GHz ripple

    // --- solve once for the waveforms / error metric.
    const opm::OpmResult opm_res = opm::simulate_opm(tline, u, t_end, m, opm_opt);

    transient::FftSolverOptions fft1_opt{circuit::kTlineAlpha, 8};
    transient::FftSolverOptions fft2_opt{circuit::kTlineAlpha, 100};
    const auto fft1 = transient::simulate_fft(tline, u, t_end, fft1_opt);
    const auto fft2 = transient::simulate_fft(tline, u, t_end, fft2_opt);

    // --- timings (median of repeats; the model is tiny, so single runs
    //     would be noise-dominated).
    const double t_opm =
        time_ms([&] { (void)opm::simulate_opm(tline, u, t_end, m, opm_opt); });
    const double t_fft1 =
        time_ms([&] { (void)transient::simulate_fft(tline, u, t_end, fft1_opt); });
    const double t_fft2 =
        time_ms([&] { (void)transient::simulate_fft(tline, u, t_end, fft2_opt); });

    // --- errors vs OPM (paper eq. 30), averaged over the 2 outputs.
    const double err_fft1 =
        wave::average_relative_error_db(opm_res.outputs, fft1.outputs);
    const double err_fft2 =
        wave::average_relative_error_db(opm_res.outputs, fft2.outputs);

    std::printf("Table I -- fractional t-line (n=7, p=q=2, alpha=1/2), "
                "T=2.7ns, m=%d\n\n", static_cast<int>(m));
    TextTable tab;
    tab.set_header({"Method", "CPU time", "Relative Error"});
    tab.add_row({"FFT-1 (8 pts)", fmt_ms(t_fft1), fmt_db(err_fft1)});
    tab.add_row({"FFT-2 (100 pts)", fmt_ms(t_fft2), fmt_db(err_fft2)});
    tab.add_row({"OPM (m=8)", fmt_ms(t_opm), "-"});
    tab.print();

    std::printf("\npaper:  FFT-1 6.09ms/-29.2dB, FFT-2 40.7ms/-46.5dB, "
                "OPM 3.56ms/- (2012 hardware)\n");
    std::printf("shape checks: OPM fastest: %s | FFT-2 more accurate than "
                "FFT-1: %s\n",
                (t_opm < t_fft1 && t_opm < t_fft2) ? "PASS" : "FAIL",
                (err_fft2 < err_fft1) ? "PASS" : "FAIL");
    return 0;
}
