/// \file bench_fig_waveforms.cpp
/// \brief Figure A: response waveform overlay for the Table I experiment.
///
/// §V-A of the paper discusses how close the FFT waveforms are to OPM's;
/// this binary prints the actual series (far-end voltage of the fractional
/// transmission line) for OPM (m = 8 and m = 64), FFT-1, FFT-2, and the
/// fine Grünwald–Letnikov reference, as tab-separated columns ready for
/// plotting.  Expected shape: OPM-64 hugs the GL reference; FFT-2 close;
/// FFT-1 visibly distorted (aliased drive); OPM-8 a faithful staircase.

#include <cmath>
#include <cstdio>
#include <numbers>

#include "circuit/tline.hpp"
#include "opm/solver.hpp"
#include "transient/fft_solver.hpp"
#include "transient/grunwald.hpp"
#include "util/denormals.hpp"

using namespace opmsim;

int main() {
    opmsim::enable_flush_to_zero();
    const double t_end = 2.7e-9;
    const auto tline = circuit::make_fractional_tline();
    const wave::Source drive = [](double t) {
        constexpr double w = 2.0e-9;
        if (t <= 0.0 || t >= w) return 0.0;
        const double env = std::sin(std::numbers::pi * t / w);
        return env * env * (1.0 + 0.15 * std::sin(2.0 * std::numbers::pi * 12e9 * t));
    };
    const std::vector<wave::Source> u = {drive, wave::step(0.0)};

    opm::OpmOptions oo;
    oo.alpha = circuit::kTlineAlpha;
    oo.quad_points = 2;
    oo.quad_panels = 8;
    const auto o8 = opm::simulate_opm(tline, u, t_end, 8, oo);
    const auto o64 = opm::simulate_opm(tline, u, t_end, 64, oo);
    const auto f1 = transient::simulate_fft(tline, u, t_end, {0.5, 8});
    const auto f2 = transient::simulate_fft(tline, u, t_end, {0.5, 100});
    transient::GrunwaldOptions gopt;
    gopt.alpha = 0.5;
    const auto gl = transient::simulate_grunwald(tline.to_sparse(), u, t_end,
                                                 4000, gopt);

    std::printf("Figure A -- far-end voltage v2(t), fractional t-line "
                "(alpha=1/2), T=2.7ns\n");
    std::printf("# columns: t[ns]  GL-ref  OPM(m=8)  OPM(m=64)  FFT-1(8)  "
                "FFT-2(100)\n");
    const std::size_t ch = 1;  // v2
    for (int k = 0; k <= 90; ++k) {
        const double t = t_end * k / 90.0;
        std::printf("%8.4f\t% .6e\t% .6e\t% .6e\t% .6e\t% .6e\n", t * 1e9,
                    gl.outputs[ch].at(t), o8.outputs[ch].at(t),
                    o64.outputs[ch].at(t), f1.outputs[ch].at(t),
                    f2.outputs[ch].at(t));
    }

    std::printf("\nrelative error vs GL reference (eq. 30):\n");
    std::printf("  OPM(m=8)  : %6.1f dB\n",
                wave::relative_error_db(gl.outputs[ch], o8.outputs[ch]));
    std::printf("  OPM(m=64) : %6.1f dB\n",
                wave::relative_error_db(gl.outputs[ch], o64.outputs[ch]));
    std::printf("  FFT-1     : %6.1f dB\n",
                wave::relative_error_db(gl.outputs[ch], f1.outputs[ch]));
    std::printf("  FFT-2     : %6.1f dB\n",
                wave::relative_error_db(gl.outputs[ch], f2.outputs[ch]));
    return 0;
}
