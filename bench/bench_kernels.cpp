/// \file bench_kernels.cpp
/// \brief google-benchmark microbenchmarks of opmsim's primitives: the
///        operational-matrix construction, sparse LU, the OPM column sweep
///        (per history backend) and the FFT substrate.
///
/// Results are written to BENCH_kernels.json (JSON) by default so future
/// changes have a machine-readable perf trajectory to compare against;
/// pass an explicit --benchmark_out=... to override.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "api/engine.hpp"
#include "basis/walsh.hpp"
#include "circuit/power_grid.hpp"
#include "circuit/tline.hpp"
#include "fftx/fft.hpp"
#include "la/sparse_lu.hpp"
#include "opm/fast_history.hpp"
#include "opm/multiterm.hpp"
#include "opm/operational.hpp"
#include "opm/solve_cache.hpp"
#include "opm/solver.hpp"
#include "wave/sources.hpp"

using namespace opmsim;

namespace {

void BM_FracToeplitz(benchmark::State& state) {
    const la::index_t m = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::frac_differential_toeplitz(0.5, 1e-9, m));
    }
}
BENCHMARK(BM_FracToeplitz)->Arg(64)->Arg(256)->Arg(1024);

void BM_AdaptiveFracMatrix(benchmark::State& state) {
    const la::index_t m = state.range(0);
    la::Vectord steps(static_cast<std::size_t>(m));
    for (la::index_t i = 0; i < m; ++i)
        steps[static_cast<std::size_t>(i)] = 1e-9 * (1.0 + 0.01 * static_cast<double>(i));
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::frac_differential_matrix_adaptive(0.5, steps));
    }
}
BENCHMARK(BM_AdaptiveFracMatrix)->Arg(16)->Arg(64);

la::CscMatrix power_grid_pencil(la::index_t nxy, double lead = 2.0 / 1e-11) {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = nxy;
    spec.nz = 3;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    return la::CscMatrix::add(lead, pg.mna.e, -1.0, pg.mna.a);
}

/// Numeric factorization of the power-grid MNA pencil per (ordering,
/// kernel), with the symbolic analysis precomputed and shared — the
/// production situation (the Engine caches one analysis per pattern) and
/// the "factor time" the supernodal kernel is meant to cut.  kernel 0 =
/// scalar (Gilbert–Peierls reference), 1 = supernodal BLAS-3 panels.
/// The nnz_LU counter is the fill-in each ordering produces — the quality
/// metric AMD is meant to cut vs RCM.
void BM_SparseLuGrid(benchmark::State& state) {
    const la::CscMatrix pencil = power_grid_pencil(state.range(0));
    la::SparseLuOptions opt;
    opt.ordering = static_cast<la::SparseLuOptions::Ordering>(state.range(1));
    opt.kernel = state.range(2) == 0 ? la::SparseLuOptions::Kernel::scalar
                                     : la::SparseLuOptions::Kernel::supernodal;
    const auto symbolic =
        std::make_shared<const la::SparseLuSymbolic>(pencil, opt);
    for (auto _ : state) {
        benchmark::DoNotOptimize(la::SparseLu(pencil, symbolic));
    }
    const la::SparseLu lu(pencil, symbolic);
    state.counters["nnz_LU"] = static_cast<double>(lu.nnz_lu());
    state.counters["offdiag_pivots"] = static_cast<double>(lu.off_diagonal_pivots());
    state.counters["snode_padding"] =
        static_cast<double>(symbolic->amalgamation_padding());
}
BENCHMARK(BM_SparseLuGrid)
    ->ArgNames({"g", "ordering", "kernel"})
    ->Args({8, 0, 0})->Args({8, 1, 0})->Args({8, 2, 0})->Args({8, 2, 1})
    ->Args({16, 0, 0})->Args({16, 1, 0})->Args({16, 2, 0})->Args({16, 2, 1})
    ->Args({24, 1, 0})->Args({24, 1, 1})->Args({24, 2, 0})->Args({24, 2, 1})
    ->Unit(benchmark::kMillisecond);

/// Symbolic analysis cost per ordering at default (automatic) kernel —
/// ordering + elimination tree + supernode detection; amortized across
/// runs by the Engine's factor cache, so it is measured separately from
/// the numeric factor above.
void BM_SparseLuAnalyze(benchmark::State& state) {
    const la::CscMatrix pencil = power_grid_pencil(state.range(0));
    la::SparseLuOptions opt;
    opt.ordering = static_cast<la::SparseLuOptions::Ordering>(state.range(1));
    for (auto _ : state) {
        benchmark::DoNotOptimize(la::SparseLuSymbolic(pencil, opt));
    }
}
BENCHMARK(BM_SparseLuAnalyze)
    ->ArgNames({"g", "ordering"})
    ->Args({8, 2})->Args({24, 2})
    ->Unit(benchmark::kMillisecond);

/// Blocked multi-RHS triangular solve throughput per kernel: one factored
/// grid pencil, nrhs right-hand sides solved in one call.  Reported as
/// items/sec (RHS columns per second) — the supernodal kernel streams
/// each factor panel once across all columns, so throughput should grow
/// with nrhs while the scalar kernel stays flat.
void BM_SparseLuSolveMulti(benchmark::State& state) {
    const la::index_t g = state.range(0);
    const la::index_t nrhs = state.range(1);
    const la::CscMatrix pencil = power_grid_pencil(g);
    la::SparseLuOptions opt;
    opt.ordering = la::SparseLuOptions::Ordering::amd;
    opt.kernel = state.range(2) == 0 ? la::SparseLuOptions::Kernel::scalar
                                     : la::SparseLuOptions::Kernel::supernodal;
    const la::SparseLu lu(pencil, opt);
    const la::index_t n = pencil.rows();
    // Pristine RHS prepared once; the timed loop only pays a memcpy (the
    // per-element sin() would be a kernel-independent constant skewing
    // this CI-gated throughput metric).
    std::vector<double> pristine(static_cast<std::size_t>(n * nrhs));
    for (std::size_t i = 0; i < pristine.size(); ++i)
        pristine[i] = std::sin(0.1 * static_cast<double>(i));
    std::vector<double> block(pristine.size());
    for (auto _ : state) {
        std::memcpy(block.data(), pristine.data(),
                    pristine.size() * sizeof(double));
        lu.solve_in_place(block.data(), nrhs, n);
        benchmark::DoNotOptimize(block.data());
        benchmark::ClobberMemory();
    }
    state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(nrhs));
}
BENCHMARK(BM_SparseLuSolveMulti)
    ->ArgNames({"g", "nrhs", "kernel"})
    ->Args({8, 1, 0})->Args({8, 1, 1})
    ->Args({8, 16, 0})->Args({8, 16, 1})
    ->Args({24, 1, 1})->Args({24, 16, 0})->Args({24, 16, 1})
    ->Unit(benchmark::kMillisecond);

/// Numeric-only refactorization of the same pencil with refreshed values
/// (a new step size), pattern and pivots frozen — the per-step-change cost
/// the adaptive stepper and the variable-step baselines now pay instead of
/// a full factorization (compare against BM_SparseLuGrid at the same g).
void BM_SparseLuRefactor(benchmark::State& state) {
    const la::CscMatrix pencil = power_grid_pencil(state.range(0));
    const la::CscMatrix shifted = power_grid_pencil(state.range(0), 2.0 / 0.7e-11);
    la::SparseLu lu(pencil);
    bool flip = false;
    for (auto _ : state) {
        lu.refactor(flip ? shifted : pencil);
        flip = !flip;
        benchmark::DoNotOptimize(lu);
    }
    state.counters["nnz_LU"] = static_cast<double>(lu.nnz_lu());
}
BENCHMARK(BM_SparseLuRefactor)
    ->ArgNames({"g"})
    ->Arg(8)->Arg(16)->Arg(24)
    ->Unit(benchmark::kMillisecond);

void BM_OpmSweepFractional(benchmark::State& state) {
    const la::index_t m = state.range(0);
    const auto tline = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {wave::step(1.0), wave::step(0.0)};
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::simulate_opm(tline, u, 2.7e-9, m, opt));
    }
}
BENCHMARK(BM_OpmSweepFractional)->Arg(8)->Arg(64)->Arg(256);

/// The headline comparison: the fractional Toeplitz history sweep on a
/// fixed test circuit (the 7-state fractional t-line, alpha = 0.5) across
/// the history backends.  The fft backend turns the O(m^2 n) sweep into
/// O(m log^2 m n); at m = 4096 it must beat naive by >= 5x wall-clock.
void BM_HistorySweep(benchmark::State& state) {
    const la::index_t m = state.range(0);
    const auto backend = static_cast<opm::HistoryBackend>(state.range(1));
    const auto tline = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {wave::step(1.0), wave::step(0.0)};
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    opt.path = opm::OpmPath::toeplitz;
    opt.history = backend;
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::simulate_opm(tline, u, 2.7e-9, m, opt));
    }
}
BENCHMARK(BM_HistorySweep)
    ->ArgNames({"m", "backend"})
    ->Args({256, 0})->Args({256, 1})->Args({256, 2})
    ->Args({1024, 0})->Args({1024, 1})->Args({1024, 2})
    ->Args({4096, 0})->Args({4096, 1})->Args({4096, 2})->Args({4096, 3})
    ->Args({16384, 2})
    ->Unit(benchmark::kMillisecond);

/// The streaming sum-of-exponentials backend at transient lengths where
/// the exact backends' O(m n) column storage stops being free: a raw
/// DiffHistoryEngine sweep (history + push per column, alpha = 0.5,
/// n = 7 states) up to m = 10^6.  `resident_bytes` is the acceptance
/// column — O((K + B) n) and flat in m for soe (the fitted mode tables
/// replace the pushed-column history), linear in m for fft — and
/// `soe_modes` / `soe_fit_err` report the compression achieved.  A shared
/// SolveCaches memoizes the fit so iterations time the streaming sweep,
/// not the one-off compression.
void BM_HistorySweepSoE(benchmark::State& state) {
    const la::index_t m = state.range(0);
    const auto backend = static_cast<opm::HistoryBackend>(state.range(1));
    const la::index_t n = 7;
    opm::SolveCaches caches;
    la::Vectord x(static_cast<std::size_t>(n)), hist;
    std::size_t resident = 0;
    la::index_t modes = 0;
    double fit_err = 0.0;
    for (auto _ : state) {
        opm::DiffHistoryEngine eng(0.5, 1e-3, n, m, backend, &caches);
        for (la::index_t j = 0; j < m; ++j) {
            eng.history(j, hist);
            // Stand-in for the column solve: a contractive mix of the
            // (saturated) history feedback plus periodic unit impulses,
            // so the pushed stream is solver-shaped but provably stays
            // O(1).  The saturation matters: the history is scaled by
            // (2/h)^alpha, and an unstable recurrence here overflows to
            // NaN — turning the long-double mode arithmetic into
            // microcoded NaN handling and benchmarking the FPU's slow
            // path instead of the engine.
            for (la::index_t i = 0; i < n; ++i)
                x[static_cast<std::size_t>(i)] =
                    0.9 * x[static_cast<std::size_t>(i)] -
                    0.1 * std::tanh(hist[static_cast<std::size_t>(i)]) +
                    ((j & 63) == 0 ? 1.0 : 0.0);
            eng.push(j, x.data());
        }
        benchmark::DoNotOptimize(hist.data());
        resident = eng.resident_state_bytes();
        modes = eng.soe_modes();
        fit_err = eng.soe_fit_error();
    }
    state.SetItemsProcessed(state.iterations() * m);
    state.counters["resident_bytes"] = static_cast<double>(resident);
    state.counters["soe_modes"] = static_cast<double>(modes);
    state.counters["soe_fit_err"] = fit_err;
}
BENCHMARK(BM_HistorySweepSoE)
    ->ArgNames({"m", "backend"})
    ->Args({65536, 4})->Args({65536, 2})
    ->Args({262144, 4})
    ->Args({1048576, 4})
    ->Unit(benchmark::kMillisecond);

/// The multi-term counterpart of BM_HistorySweep: a fractional-decap
/// power grid (orders {1.8, 1, 0} — a real §V-B circuit, not a toy)
/// solved through simulate_multiterm's Toeplitz path per history backend.
/// The batched engine must beat naive by >= 5x wall-clock at m = 4096.
void BM_MultiTermSweep(benchmark::State& state) {
    const la::index_t m = state.range(0);
    const auto backend = static_cast<opm::HistoryBackend>(state.range(1));
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 3;
    spec.nz = 2;
    spec.num_loads = 4;
    spec.load_channels = 2;
    spec.decap_alpha = 0.8;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    opm::MultiTermOptions opt;
    opt.path = opm::MultiTermPath::toeplitz;
    opt.history = backend;
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::simulate_multiterm(
            pg.second_order, pg.inputs, 3e-9, m, opt));
    }
}
BENCHMARK(BM_MultiTermSweep)
    ->ArgNames({"m", "backend"})
    ->Args({256, 0})->Args({256, 1})->Args({256, 2})
    ->Args({1024, 0})->Args({1024, 1})->Args({1024, 2})
    ->Args({4096, 0})->Args({4096, 1})->Args({4096, 2})->Args({4096, 3})
    ->Unit(benchmark::kMillisecond);

/// Engine facade batched-scenario throughput (scenarios/sec): a what-if
/// source sweep (sources scaled, pencil identical) of the power-grid MNA
/// model through Engine::run_batch.  warm=0 builds a fresh Engine every
/// iteration (each batch pays one ordering + factorization before the
/// cache kicks in); warm=1 keeps one Engine across iterations, so every
/// scenario reuses the cached numeric factor — the facade's cross-run
/// caching payoff, reported as the warm/cold items-per-second ratio.
/// Source-compatible scenarios run as ONE grouped multi-RHS sweep; the
/// workers arg sizes the thread pool that executes independent groups
/// (the batch mixes per-scenario t_end values so groups exist to spread).
void BM_EngineBatch(benchmark::State& state) {
    const bool warm = state.range(0) != 0;
    const int workers = static_cast<int>(state.range(1));
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 16;
    spec.nz = 3;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);

    // 4 scenario groups x 4 source gains: within a group only the sources
    // differ (one multi-RHS sweep), across groups the horizon differs (a
    // worker-pool unit each).
    std::vector<api::Scenario> batch;
    for (int grp = 0; grp < 4; ++grp) {
        for (int s = 0; s < 4; ++s) {
            api::Scenario sc;
            sc.t_end = 1e-9 * (1.0 + 0.1 * static_cast<double>(grp));
            sc.steps = 32;
            const double gain = 1.0 + 0.2 * static_cast<double>(s);
            for (std::size_t i = 0; i < pg.inputs.size(); ++i) {
                const wave::Source base = pg.inputs[i];
                if (i == 0)
                    sc.sources.push_back(base);
                else
                    sc.sources.push_back(
                        [base, gain](double t) { return gain * base(t); });
            }
            batch.push_back(std::move(sc));
        }
    }

    const api::Engine::BatchOptions bopt{workers};
    api::Engine persistent;
    const api::SystemHandle hp = persistent.add_system(pg.mna);
    if (warm) benchmark::DoNotOptimize(persistent.run_batch(hp, batch, bopt));

    for (auto _ : state) {
        if (warm) {
            benchmark::DoNotOptimize(persistent.run_batch(hp, batch, bopt));
        } else {
            api::Engine cold;
            const api::SystemHandle hc = cold.add_system(pg.mna);
            benchmark::DoNotOptimize(cold.run_batch(hc, batch, bopt));
        }
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(batch.size()));
}
BENCHMARK(BM_EngineBatch)
    ->ArgNames({"warm", "workers"})
    ->Args({0, 1})->Args({1, 1})->Args({1, 4})
    ->UseRealTime()  // worker-pool runs must report wall-clock throughput
    ->Unit(benchmark::kMillisecond);

void BM_Fft(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<fftx::cplx> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = fftx::cplx(std::sin(0.1 * static_cast<double>(i)), 0.0);
    for (auto _ : state) {
        auto y = x;
        fftx::fft(y);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_Fft)->Arg(100)->Arg(128)->Arg(1024)->Arg(4096)->Arg(16384);

/// The scalar radix-2 kernel on the same signals as BM_Fft's
/// power-of-two sizes: the production transform runs fused radix-4
/// passes, and this pins the before/after of that change.
void BM_FftRadix2(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<fftx::cplx> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = fftx::cplx(std::sin(0.1 * static_cast<double>(i)), 0.0);
    for (auto _ : state) {
        auto y = x;
        fftx::fft_pow2_radix2(y, -1);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_FftRadix2)->Arg(128)->Arg(1024)->Arg(4096)->Arg(16384);

void BM_Fwht(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    la::Vectord x(n, 1.0);
    for (auto _ : state) {
        auto y = x;
        basis::fwht(y);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_Fwht)->Arg(256)->Arg(4096);

} // namespace

/// Custom main: defaults --benchmark_out to BENCH_kernels.json so every
/// run leaves a machine-readable record (google-benchmark only writes a
/// file when asked on the command line).
int main(int argc, char** argv) {
    std::vector<std::string> args(argv, argv + argc);
    bool has_out = false;
    for (const std::string& a : args)
        if (a == "--benchmark_out" || a.rfind("--benchmark_out=", 0) == 0)
            has_out = true;
    if (!has_out) {
        args.push_back("--benchmark_out=BENCH_kernels.json");
        args.push_back("--benchmark_out_format=json");
    }
    std::vector<char*> cargs;
    cargs.reserve(args.size());
    for (std::string& a : args) cargs.push_back(a.data());
    int cargc = static_cast<int>(cargs.size());
    benchmark::Initialize(&cargc, cargs.data());
    if (benchmark::ReportUnrecognizedArguments(cargc, cargs.data())) return 1;
    // The build type opmsim was compiled with — the context's
    // library_build_type only describes the google-benchmark library
    // (ci/check_bench_regression.py refuses debug-built baselines).
    benchmark::AddCustomContext("opmsim_build_type", OPMSIM_BUILD_TYPE);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
