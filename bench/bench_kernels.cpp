/// \file bench_kernels.cpp
/// \brief google-benchmark microbenchmarks of opmsim's primitives: the
///        operational-matrix construction, sparse LU, the OPM column sweep
///        and the FFT substrate.

#include <benchmark/benchmark.h>

#include <cmath>

#include "basis/walsh.hpp"
#include "circuit/power_grid.hpp"
#include "circuit/tline.hpp"
#include "fftx/fft.hpp"
#include "la/sparse_lu.hpp"
#include "opm/operational.hpp"
#include "opm/solver.hpp"
#include "wave/sources.hpp"

using namespace opmsim;

namespace {

void BM_FracToeplitz(benchmark::State& state) {
    const la::index_t m = state.range(0);
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::frac_differential_toeplitz(0.5, 1e-9, m));
    }
}
BENCHMARK(BM_FracToeplitz)->Arg(64)->Arg(256)->Arg(1024);

void BM_AdaptiveFracMatrix(benchmark::State& state) {
    const la::index_t m = state.range(0);
    la::Vectord steps(static_cast<std::size_t>(m));
    for (la::index_t i = 0; i < m; ++i)
        steps[static_cast<std::size_t>(i)] = 1e-9 * (1.0 + 0.01 * static_cast<double>(i));
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::frac_differential_matrix_adaptive(0.5, steps));
    }
}
BENCHMARK(BM_AdaptiveFracMatrix)->Arg(16)->Arg(64);

void BM_SparseLuGrid(benchmark::State& state) {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = state.range(0);
    spec.nz = 3;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    const la::CscMatrix pencil =
        la::CscMatrix::add(2.0 / 1e-11, pg.mna.e, -1.0, pg.mna.a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(la::SparseLu(pencil));
    }
}
BENCHMARK(BM_SparseLuGrid)->Arg(8)->Arg(16)->Arg(24)->Unit(benchmark::kMillisecond);

void BM_OpmSweepFractional(benchmark::State& state) {
    const la::index_t m = state.range(0);
    const auto tline = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {wave::step(1.0), wave::step(0.0)};
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    for (auto _ : state) {
        benchmark::DoNotOptimize(opm::simulate_opm(tline, u, 2.7e-9, m, opt));
    }
}
BENCHMARK(BM_OpmSweepFractional)->Arg(8)->Arg(64)->Arg(256);

void BM_Fft(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    std::vector<fftx::cplx> x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = fftx::cplx(std::sin(0.1 * static_cast<double>(i)), 0.0);
    for (auto _ : state) {
        auto y = x;
        fftx::fft(y);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_Fft)->Arg(100)->Arg(128)->Arg(1024);

void BM_Fwht(benchmark::State& state) {
    const std::size_t n = static_cast<std::size_t>(state.range(0));
    la::Vectord x(n, 1.0);
    for (auto _ : state) {
        auto y = x;
        basis::fwht(y);
        benchmark::DoNotOptimize(y);
    }
}
BENCHMARK(BM_Fwht)->Arg(256)->Arg(4096);

} // namespace
