/// \file bench_fig_complexity.cpp
/// \brief Figure B: empirical complexity of OPM, validating the paper's
///        O(n^beta m + n m^2) claim (§IV).
///
/// Two sweeps on RC-ladder MNA systems:
///  * runtime vs n at fixed m (fits beta: one sparse factorization + m
///    triangular solves; ladders give beta ~ 1),
///  * runtime vs m at fixed n, for the integer-order O(m) recurrence path
///    and the fractional O(m^2) Toeplitz path — their fitted slopes on a
///    log-log grid should be ~1 and ~2 respectively.

#include <cmath>
#include <cstdio>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/power_grid.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "util/denormals.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace opmsim;

namespace {

opm::DescriptorSystem rc_ladder(la::index_t stages) {
    circuit::Netlist nl;
    la::index_t prev = nl.node("in");
    nl.vsource("V", prev, 0, 0);
    for (la::index_t k = 0; k < stages; ++k) {
        const la::index_t nxt = nl.node("n" + std::to_string(k));
        nl.resistor("R" + std::to_string(k), prev, nxt, 1.0);
        nl.capacitor("C" + std::to_string(k), nxt, 0, 1e-12);
        prev = nxt;
    }
    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_mna(nl, &lay);
    // Observe the far-end node only: keeps the timing focused on the
    // solver sweep instead of materializing n output waveforms.
    sys.c = circuit::node_voltage_selector(lay, {prev});
    return sys;
}

template <class F>
double best_ms(F&& f, int reps = 3) {
    double best = 1e300;
    for (int r = 0; r < reps; ++r) {
        WallTimer t;
        f();
        best = std::min(best, t.elapsed_ms());
    }
    return best;
}

/// Least-squares slope of log(y) vs log(x).
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
    double sx = 0, sy = 0, sxx = 0, sxy = 0;
    const double n = static_cast<double>(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) {
        const double lx = std::log(x[i]), ly = std::log(y[i]);
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

} // namespace

int main() {
    opmsim::enable_flush_to_zero();
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 2e-10)};

    std::printf("Figure B.1 -- runtime vs n (m = 64 fixed, alpha = 1)\n");
    TextTable t1;
    t1.set_header({"n (states)", "factor", "sweep", "total"});
    std::vector<double> ns, ts;
    for (const la::index_t stages : {256, 512, 1024, 2048, 4096, 8192}) {
        const auto sys = rc_ladder(stages);
        double total = 0, factor = 0, sweep = 0;
        total = best_ms([&] {
            const auto r = opm::simulate_opm(sys, u, 1e-9, 64);
            factor = r.diag.factor_seconds * 1e3;
            sweep = r.diag.sweep_seconds * 1e3;
        });
        t1.add_row({std::to_string(sys.num_states()), fmt_ms(factor),
                    fmt_ms(sweep), fmt_ms(total)});
        ns.push_back(static_cast<double>(sys.num_states()));
        ts.push_back(total);
    }
    t1.print();
    const double beta = loglog_slope(ns, ts);
    std::printf("fitted exponent beta = %.2f   (paper: 1 < beta < 2 for "
                "general circuits; banded RC ladders\nfactor with zero fill, "
                "so their end-to-end scaling is linear-or-better)\n\n", beta);

    std::printf("Figure B.2 -- runtime vs m (n = 1025 fixed)\n");
    TextTable t2;
    t2.set_header({"m", "alpha=1 recurrence", "alpha=1/2 toeplitz"});
    const auto sys = rc_ladder(512);
    std::vector<double> ms, tr, tt;
    for (const la::index_t m : {32, 64, 128, 256, 512, 1024}) {
        opm::OpmOptions o1;
        o1.path = opm::OpmPath::recurrence;
        const double time1 = best_ms([&] { opm::simulate_opm(sys, u, 1e-9, m, o1); });
        opm::OpmOptions oh;
        oh.alpha = 0.5;
        const double timeh = best_ms([&] { opm::simulate_opm(sys, u, 1e-9, m, oh); });
        t2.add_row({std::to_string(m), fmt_ms(time1), fmt_ms(timeh)});
        ms.push_back(static_cast<double>(m));
        tr.push_back(time1);
        tt.push_back(timeh);
    }
    t2.print();
    // Fit only the upper half of the range (asymptotic regime).
    const std::vector<double> ms2(ms.end() - 3, ms.end());
    const std::vector<double> tr2(tr.end() - 3, tr.end());
    const std::vector<double> tt2(tt.end() - 3, tt.end());
    std::printf("fitted slope vs m: recurrence %.2f (expect ~1), "
                "toeplitz %.2f (expect ~2)\n\n",
                loglog_slope(ms2, tr2), loglog_slope(ms2, tt2));

    // --- B.3: multi-term path ablation on a power-grid second-order model.
    std::printf("Figure B.3 -- second-order multi-term sweep: banded "
                "recurrence vs paper's Toeplitz\n");
    {
        circuit::PowerGridSpec spec;
        spec.nx = spec.ny = 10;
        spec.nz = 3;
        const circuit::PowerGrid pg = circuit::build_power_grid(spec);
        TextTable t3;
        t3.set_header({"m", "recurrence (I+Q)^2", "toeplitz O(m^2)"});
        for (const la::index_t m : {100, 200, 400, 800}) {
            opm::MultiTermOptions orec, otoe;
            orec.path = opm::MultiTermPath::recurrence;
            otoe.path = opm::MultiTermPath::toeplitz;
            const double trec = best_ms([&] {
                opm::simulate_multiterm(pg.second_order, pg.inputs, 1e-9, m, orec);
            });
            const double ttoe = best_ms([&] {
                opm::simulate_multiterm(pg.second_order, pg.inputs, 1e-9, m, otoe);
            });
            t3.add_row({std::to_string(m), fmt_ms(trec), fmt_ms(ttoe)});
        }
        t3.print();
        std::printf("shape check: the gap widens linearly with m "
                    "(same solutions; see test_opm_multiterm)\n");
    }
    return 0;
}
