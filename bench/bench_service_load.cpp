/// \file bench_service_load.cpp
/// \brief Open-loop load harness for the scenario daemon (docs/service.md).
///
/// Spins up an in-process svc::Server on a private Unix socket, then
/// drives it OPEN-LOOP: scenario arrivals follow a Poisson process with a
/// fixed-seed RNG, submitted through the async client API regardless of
/// how fast the daemon drains them (closed-loop harnesses hide queueing
/// delay — precisely the thing a micro-batching window trades against).
/// Reports end-to-end latency percentiles (p50/p99/mean) and sustained
/// scenarios/sec, plus the daemon's coalescing counters.
///
/// Two in-process calibration timings (warm / cold Engine::run of the
/// same scenario) are emitted alongside so ci/check_bench_regression.py
/// can normalize away machine speed: the gated BM_ServiceLoad/* entries
/// then measure SERVICE overhead + batching, not runner hardware.
///
/// Output: a human summary on stdout and — like bench_kernels — a
/// google-benchmark-shaped BENCH_service.json in the working directory
/// (override with --out), carrying context.opmsim_build_type so the
/// regression gate can refuse Debug-built baselines.
///
/// Usage:
///     bench_service_load [--requests 200] [--rate 2000] [--workers 2]
///                        [--window 0.001] [--out BENCH_service.json]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "api/engine.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

using namespace opmsim;
using Clock = std::chrono::steady_clock;

namespace {

#ifndef OPMSIM_BUILD_TYPE
#define OPMSIM_BUILD_TYPE ""
#endif

/// The load circuit: a 32-node RC ladder driven at node 0 (same fixture
/// family as the service tests).
opm::DescriptorSystem rc_ladder(la::index_t n) {
    la::Triplets e(n, n), a(n, n), b(n, 1);
    for (la::index_t i = 0; i < n; ++i) {
        e.add(i, i, 1e-9);
        double g = 0.0;
        if (i > 0) {
            a.add(i, i - 1, 1e-3);
            g += 1e-3;
        }
        if (i + 1 < n) {
            a.add(i, i + 1, 1e-3);
            g += 1e-3;
        }
        a.add(i, i, -(g + (i == 0 ? 1e-3 : 0.0)));
    }
    b.add(0, 0, 1e-3);
    opm::DescriptorSystem sys;
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);
    return sys;
}

svc::WireScenario scenario_for(int k) {
    // Same grid + options across the fleet (batch-compatible, so the
    // window can coalesce), different excitation per request.
    svc::WireScenario sc;
    sc.sources = {svc::SourceSpec::sine(1.0, 1e4 * (1 + k % 16))};
    sc.t_end = 1e-5;
    sc.steps = 128;
    sc.config = opm::OpmOptions{};
    return sc;
}

double percentile(std::vector<double>& sorted, double p) {
    if (sorted.empty()) return 0.0;
    const std::size_t idx = static_cast<std::size_t>(
        std::min<double>(sorted.size() - 1.0,
                         p / 100.0 * static_cast<double>(sorted.size())));
    return sorted[idx];
}

struct BenchEntry {
    std::string name;
    double real_time_ns;
    long iterations;
};

void write_json(const std::string& path,
                const std::vector<BenchEntry>& entries) {
    std::ofstream out(path, std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "bench_service_load: cannot write %s\n",
                     path.c_str());
        return;
    }
    out << "{\n  \"context\": {\n"
        << "    \"opmsim_build_type\": \"" << OPMSIM_BUILD_TYPE << "\"\n"
        << "  },\n  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < entries.size(); ++i) {
        const BenchEntry& e = entries[i];
        out << "    {\n"
            << "      \"name\": \"" << e.name << "\",\n"
            << "      \"run_type\": \"iteration\",\n"
            << "      \"iterations\": " << e.iterations << ",\n"
            << "      \"real_time\": " << e.real_time_ns << ",\n"
            << "      \"cpu_time\": " << e.real_time_ns << ",\n"
            << "      \"time_unit\": \"ns\"\n"
            << "    }" << (i + 1 < entries.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
}

} // namespace

int main(int argc, char** argv) {
    int requests = 200;
    double rate = 2000.0;  // arrivals per second
    int workers = 2;
    double window = 1e-3;
    std::string out_path = "BENCH_service.json";
    for (int i = 1; i < argc; ++i) {
        const auto val = [&](const char* name) -> const char* {
            if (std::strcmp(argv[i], name) != 0 || i + 1 >= argc)
                return nullptr;
            return argv[++i];
        };
        if (const char* v = val("--requests")) {
            requests = std::atoi(v);
        } else if (const char* v = val("--rate")) {
            rate = std::atof(v);
        } else if (const char* v = val("--workers")) {
            workers = std::atoi(v);
        } else if (const char* v = val("--window")) {
            window = std::atof(v);
        } else if (const char* v = val("--out")) {
            out_path = v;
        } else {
            std::fprintf(stderr,
                         "usage: bench_service_load [--requests N] [--rate "
                         "PER_SEC] [--workers N] [--window SEC] [--out PATH]\n");
            return 2;
        }
    }

    svc::ServerOptions opt;
    opt.socket_path = "/tmp/opmsim_bench_" + std::to_string(::getpid()) +
                      ".sock";
    opt.batch_window = window;
    opt.batch_workers = workers;
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(32));

    // Warm-up: fill the caches so the measured fleet sees steady state
    // (cold-start cost is reported separately by the inproc/cold entry).
    for (int k = 0; k < 4; ++k) {
        const api::SolveResult r = client.submit(h, scenario_for(k));
        if (!r.status.ok()) {
            std::fprintf(stderr, "bench_service_load: warm-up failed: %s\n",
                         r.status.message.c_str());
            return 1;
        }
    }

    // Precomputed Poisson arrival schedule, fixed seed: the offered load
    // is identical run to run, so latency changes mean code changes.
    std::mt19937_64 rng(0x5EEDu);
    std::exponential_distribution<double> interarrival(rate);
    std::vector<double> arrival(requests);
    double t = 0.0;
    for (int k = 0; k < requests; ++k) {
        t += interarrival(rng);
        arrival[k] = t;
    }

    std::vector<double> latency_ns(requests, 0.0);
    std::atomic<int> failed{0};
    std::atomic<int> done{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    const Clock::time_point start = Clock::now();
    Clock::time_point last_done = start;
    for (int k = 0; k < requests; ++k) {
        const auto due =
            start + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(arrival[k]));
        std::this_thread::sleep_until(due);  // open loop: never backs off
        const Clock::time_point sent = Clock::now();
        client.submit_cb(h, scenario_for(k), [&, k, sent](
                                                 api::SolveResult res) {
            const Clock::time_point now = Clock::now();
            latency_ns[k] = std::chrono::duration<double, std::nano>(
                                now - sent)
                                .count();
            if (!res.status.ok()) failed.fetch_add(1);
            {
                const std::lock_guard<std::mutex> lock(done_mutex);
                last_done = std::max(last_done, now);
            }
            if (done.fetch_add(1) + 1 == requests) done_cv.notify_all();
        });
    }
    {
        std::unique_lock<std::mutex> lock(done_mutex);
        if (!done_cv.wait_for(lock, std::chrono::seconds(120), [&] {
                return done.load() == requests;
            })) {
            std::fprintf(stderr,
                         "bench_service_load: timed out (%d/%d done)\n",
                         done.load(), requests);
            return 1;
        }
    }
    const svc::ServiceStats stats = server.stats();
    client.close();
    server.stop();

    if (failed.load() != 0) {
        std::fprintf(stderr, "bench_service_load: %d scenario(s) failed\n",
                     failed.load());
        return 1;
    }

    std::vector<double> sorted = latency_ns;
    std::sort(sorted.begin(), sorted.end());
    const double p50 = percentile(sorted, 50.0);
    const double p99 = percentile(sorted, 99.0);
    double mean = 0.0;
    for (double v : sorted) mean += v;
    mean /= static_cast<double>(sorted.size());
    const double span_s =
        std::chrono::duration<double>(last_done - start).count();
    const double throughput = requests / std::max(span_s, 1e-12);

    // Overload phase: a fresh daemon with a deliberately tiny dispatch
    // queue, driven by a burst far above the service rate (no pacing at
    // all), so admission control MUST shed.  Reported: the shed rate and
    // the p99 of the requests that were admitted — the survivability
    // claim is that paying customers stay fast while the excess is turned
    // away in one round trip.  These entries are named BM_ServiceOverload/*
    // so the regression gate's BM_ServiceLoad/ rule does not apply: a shed
    // rate is policy, not performance.
    const int ov_requests = std::max(requests / 2, 32);
    double ov_p99 = 0.0, ov_shed_pct = 0.0;
    unsigned long long ov_daemon_shed = 0;
    {
        svc::ServerOptions ov_opt;
        ov_opt.socket_path = "/tmp/opmsim_bench_ov_" +
                             std::to_string(::getpid()) + ".sock";
        ov_opt.batch_window = 0.0;  // zero-width window: no coalescing grace
        ov_opt.batch_workers = workers;
        ov_opt.max_queue = 4;
        svc::Server ov_server(ov_opt);
        ov_server.start();
        svc::Client ov_client;
        ov_client.connect_unix(ov_opt.socket_path);
        const std::uint64_t ov_h = ov_client.register_system(rc_ladder(32));
        (void)ov_client.submit(ov_h, scenario_for(0));  // warm the caches

        std::vector<double> ov_latency_ns(ov_requests, 0.0);
        std::vector<char> ov_shed(ov_requests, 0);
        std::atomic<int> ov_done{0};
        std::mutex ov_mutex;
        std::condition_variable ov_cv;
        for (int k = 0; k < ov_requests; ++k) {
            const Clock::time_point sent = Clock::now();
            ov_client.submit_cb(
                ov_h, scenario_for(k), [&, k, sent](api::SolveResult res) {
                    ov_latency_ns[k] = std::chrono::duration<double, std::nano>(
                                           Clock::now() - sent)
                                           .count();
                    ov_shed[k] =
                        res.status.code == ErrorCode::overloaded ? 1 : 0;
                    if (ov_done.fetch_add(1) + 1 == ov_requests) {
                        const std::lock_guard<std::mutex> lock(ov_mutex);
                        ov_cv.notify_all();
                    }
                });
        }
        {
            std::unique_lock<std::mutex> lock(ov_mutex);
            if (!ov_cv.wait_for(lock, std::chrono::seconds(120), [&] {
                    return ov_done.load() == ov_requests;
                })) {
                std::fprintf(stderr,
                             "bench_service_load: overload phase timed out\n");
                return 1;
            }
        }
        const svc::ServiceStats ov_stats = ov_server.stats();
        ov_client.close();
        ov_server.stop();

        std::vector<double> admitted;
        int shed_count = 0;
        for (int k = 0; k < ov_requests; ++k) {
            if (ov_shed[k])
                ++shed_count;
            else
                admitted.push_back(ov_latency_ns[k]);
        }
        std::sort(admitted.begin(), admitted.end());
        ov_p99 = percentile(admitted, 99.0);
        ov_shed_pct = 100.0 * shed_count / std::max(ov_requests, 1);
        ov_daemon_shed = static_cast<unsigned long long>(ov_stats.shed);
    }

    // In-process calibration: the same scenario straight through an
    // Engine, warm (median of 16) and cold (fresh engine, median of 4).
    // These are the gate's machine-speed anchors — ungated by design.
    double warm_ns = 0.0, cold_ns = 0.0;
    {
        api::Engine engine;
        const api::SystemHandle lh = engine.add_system(rc_ladder(32));
        const api::Scenario sc = scenario_for(0).to_scenario();
        (void)engine.run(lh, sc);  // warm the caches
        std::vector<double> samples;
        for (int k = 0; k < 16; ++k) {
            const Clock::time_point t0 = Clock::now();
            (void)engine.run(lh, sc);
            samples.push_back(std::chrono::duration<double, std::nano>(
                                  Clock::now() - t0)
                                  .count());
        }
        std::sort(samples.begin(), samples.end());
        warm_ns = samples[samples.size() / 2];
    }
    {
        std::vector<double> samples;
        const api::Scenario sc = scenario_for(0).to_scenario();
        for (int k = 0; k < 4; ++k) {
            api::Engine engine;
            const api::SystemHandle lh = engine.add_system(rc_ladder(32));
            const Clock::time_point t0 = Clock::now();
            (void)engine.run(lh, sc);
            samples.push_back(std::chrono::duration<double, std::nano>(
                                  Clock::now() - t0)
                                  .count());
        }
        std::sort(samples.begin(), samples.end());
        cold_ns = samples[samples.size() / 2];
    }

    std::printf("bench_service_load: %d requests at %.0f/s (Poisson, fixed "
                "seed), window %.2g s, %d workers\n",
                requests, rate, window, workers);
    std::printf("  latency   p50 %.3f ms   p99 %.3f ms   mean %.3f ms\n",
                p50 / 1e6, p99 / 1e6, mean / 1e6);
    std::printf("  throughput %.0f scenarios/sec over %.3f s\n", throughput,
                span_s);
    std::printf("  batching   %llu batches, %llu coalesced, largest %llu\n",
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.coalesced),
                static_cast<unsigned long long>(stats.largest_batch));
    std::printf("  in-process warm %.3f ms   cold %.3f ms\n", warm_ns / 1e6,
                cold_ns / 1e6);
    std::printf("  overload   %d-burst vs max_queue=4: shed %.1f%% (daemon "
                "counted %llu), admitted p99 %.3f ms\n",
                ov_requests, ov_shed_pct, ov_daemon_shed, ov_p99 / 1e6);

    write_json(out_path,
               {{"BM_ServiceLoad/p50", p50, requests},
                {"BM_ServiceLoad/p99", p99, requests},
                {"BM_ServiceLoad/mean", mean, requests},
                {"BM_ServiceLoad_inproc/warm", warm_ns, 16},
                {"BM_ServiceLoad_inproc/cold", cold_ns, 4},
                // Overload-phase entries (ungated: shedding is policy).
                // shed_pct rides in the real_time field — the harness
                // format has no other numeric slot — in percent, not ns.
                {"BM_ServiceOverload/p99", ov_p99, ov_requests},
                {"BM_ServiceOverload/shed_pct", ov_shed_pct, ov_requests}});
    std::printf("  wrote %s\n", out_path.c_str());
    return 0;
}
