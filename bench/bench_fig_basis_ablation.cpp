/// \file bench_fig_basis_ablation.cpp
/// \brief Figure D: OPM across basis families (paper §I's claim that "OPM
///        can readily switch to using other basis functions, each having
///        its own merits").
///
/// The generic-basis OPM solver runs the same RC circuit under block-pulse,
/// Walsh, Haar and shifted-Legendre bases, for a smooth drive and for a
/// discontinuous one, sweeping the basis size m.  Expected shape:
///  * smooth drive: Legendre converges spectrally (best at small m);
///  * discontinuous drive: the piecewise-constant bases win (no Gibbs);
///    Walsh/Haar/BPF are algebraically equivalent projections here, and
///    Walsh's low-sequency truncation shows the "overall trend" behavior
///    the paper mentions.

#include <cstdio>
#include <memory>

#include "basis/bpf.hpp"
#include "basis/haar.hpp"
#include "basis/laguerre.hpp"
#include "basis/legendre.hpp"
#include "basis/walsh.hpp"
#include "opm/solver.hpp"
#include "util/denormals.hpp"
#include "util/table.hpp"

using namespace opmsim;

namespace {

opm::DenseDescriptorSystem rc_system() {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd{{0.15}};
    s.a = la::Matrixd{{-1.0}};
    s.b = la::Matrixd{{1.0}};
    return s;
}

std::unique_ptr<basis::Basis> make_basis(int kind, double t_end, la::index_t m) {
    switch (kind) {
    case 0: return std::make_unique<basis::BpfBasis>(t_end, m);
    case 1: return std::make_unique<basis::WalshBasis>(t_end, m);
    case 2: return std::make_unique<basis::HaarBasis>(t_end, m);
    case 3: return std::make_unique<basis::LegendreBasis>(t_end, m);
    default: return std::make_unique<basis::LaguerreBasis>(t_end, m);
    }
}

} // namespace

int main() {
    opmsim::enable_flush_to_zero();
    const double t_end = 1.0;
    const auto sys = rc_system();

    const wave::Source smooth = wave::sine(1.0, 1.0);
    const wave::Source rough = wave::pulse_train(1.0, 0.1, 0.0, 0.2, 0.0, 0.45);

    std::printf("Figure D -- generic-basis OPM accuracy (relative error vs "
                "fine reference, dB)\n\n");
    for (const auto& [name, src] :
         {std::pair<const char*, const wave::Source*>{"smooth sine drive", &smooth},
          {"discontinuous pulse-train drive", &rough}}) {
        const auto ref = opm::simulate_opm(sys, {*src}, t_end, 16384);
        std::printf("%s:\n", name);
        TextTable tab;
        tab.set_header({"m", "block-pulse", "walsh", "haar", "legendre", "laguerre"});
        for (const la::index_t m : {8, 16, 32, 64}) {
            std::vector<std::string> row = {std::to_string(m)};
            for (int kind = 0; kind < 5; ++kind) {
                const auto bas = make_basis(kind, t_end, m);
                const auto r = opm::simulate_generic_basis(sys, {*src}, *bas);
                row.push_back(fmt_db(
                    wave::relative_error_db(ref.outputs[0], r.outputs[0])));
            }
            tab.add_row(std::move(row));
        }
        tab.print();
        std::printf("\n");
    }
    std::printf("shape checks: Legendre best on the smooth drive; "
                "piecewise-constant bases robust on the discontinuous one\n");
    return 0;
}
