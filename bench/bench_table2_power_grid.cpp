/// \file bench_table2_power_grid.cpp
/// \brief Reproduces Table II: OPM vs classic steppers on a 3-D power grid.
///
/// Paper setup (§V-B): a 3-D RLC power grid; the second-order NA model
/// (75 K states) is simulated with OPM at h = 10 ps, while the MNA model
/// (110 K states) is simulated with backward Euler (h = 10/5/1 ps), Gear
/// and trapezoidal (h = 10 ps).  Reported: runtime and average relative
/// error of each baseline against OPM.
///
/// Paper values:  b-Euler 10ps 334.7s/-91dB, 5ps 691.7s/-92dB,
///                1ps 3198s/-127dB; Gear 10ps 359.1s/-134dB;
///                Trap 10ps 347.2s/-137dB; OPM 10ps 314.6s/-.
/// Expected shape: all methods within a small factor in runtime at equal h
/// (one factorization + m solves dominates, and OPM's model is smaller);
/// b-Euler error decreasing with h; trapezoidal/Gear far closer to OPM
/// than b-Euler (OPM's alpha=1 recurrence *is* the trapezoidal rule).
///
/// The whole comparison runs through one api::Engine: the second-order
/// model and the MNA model are two handles, every method is a Scenario,
/// and the five baselines share the MNA pencil's fill-reducing analysis
/// through the handle's cache bundle (what TransientOptions::symbolic
/// used to thread by hand).
///
/// Default grid is laptop-sized (20x20x3 -> 1.2 K / 2 K states); pass
/// --paper-scale for the 75 K / 125 K reproduction (minutes of runtime),
/// or --nx/--ny/--nz to choose.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/engine.hpp"
#include "circuit/power_grid.hpp"
#include "util/denormals.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

using namespace opmsim;

int main(int argc, char** argv) {
    opmsim::enable_flush_to_zero();
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 20;
    spec.nz = 3;
    double t_end = 1e-9;
    double h0 = 10e-12;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char* what) {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n", what);
                std::exit(2);
            }
            return std::atof(argv[++i]);
        };
        if (arg == "--nx") spec.nx = static_cast<la::index_t>(next("--nx"));
        else if (arg == "--ny") spec.ny = static_cast<la::index_t>(next("--ny"));
        else if (arg == "--nz") spec.nz = static_cast<la::index_t>(next("--nz"));
        else if (arg == "--t-end") t_end = next("--t-end");
        else if (arg == "--h") h0 = next("--h");
        else if (arg == "--paper-scale") { spec.nx = spec.ny = 158; spec.nz = 3; }
        else {
            std::fprintf(stderr,
                         "usage: %s [--nx N] [--ny N] [--nz N] [--t-end S] "
                         "[--h S] [--paper-scale]\n", argv[0]);
            return 2;
        }
    }

    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    const la::index_t n2nd = pg.second_order.num_states();
    const la::index_t nmna = pg.mna.num_states();
    const la::index_t m0 = static_cast<la::index_t>(t_end / h0 + 0.5);

    std::printf("Table II -- 3-D power grid %ldx%ldx%ld: second-order model "
                "n=%ld, MNA DAE n=%ld\n(paper: 75K / 110K), T=%.3g ns, "
                "base step h=%.3g ps\n\n",
                static_cast<long>(spec.nx), static_cast<long>(spec.ny),
                static_cast<long>(spec.nz), static_cast<long>(n2nd),
                static_cast<long>(nmna), t_end * 1e9, h0 * 1e12);

    api::Engine engine;
    const api::SystemHandle h2nd = engine.add_system(pg.second_order);
    const api::SystemHandle hmna = engine.add_system(pg.mna);

    // --- OPM on the second-order model (the reference, as in the paper).
    // The paper's sweep "involves manipulation of all the previous columns"
    // (§IV), i.e. the O(m^2) Toeplitz accumulation — use it for fidelity;
    // bench_fig_complexity shows the banded-recurrence speedup opmsim adds.
    api::Scenario opm_sc;
    opm_sc.sources = pg.inputs;
    opm_sc.t_end = t_end;
    opm_sc.steps = m0;
    opm::MultiTermOptions mt_opt;
    mt_opt.path = opm::MultiTermPath::toeplitz;
    opm_sc.config = mt_opt;
    WallTimer timer;
    const api::SolveResult opm_res = engine.run(h2nd, opm_sc);
    const double t_opm = timer.elapsed_ms();
    const std::vector<wave::Waveform> ref = opm::endpoint_outputs_from_coeffs(
        pg.second_order.c, opm_res.states, opm_res.grid);

    TextTable tab;
    tab.set_header({"Method", "Step", "Runtime", "Avg Relative Error"});

    // Every baseline factors the same MNA pattern (lead*E - A) with a
    // different lead, so the fill-reducing analysis is shared across all
    // five runs through the handle's cache: the first run computes it,
    // the rest reuse it (their diag reports zero orderings).
    int orderings = 0;
    la::SparseLuOptions::Ordering chosen = la::SparseLuOptions::Ordering::natural;
    auto run_baseline = [&](transient::Method method, double h) {
        api::Scenario sc;
        sc.sources = pg.inputs;
        sc.t_end = t_end;
        sc.steps = static_cast<la::index_t>(t_end / h + 0.5);
        transient::TransientOptions topt;
        topt.method = method;
        sc.config = topt;
        WallTimer t;
        const api::SolveResult r = engine.run(hmna, sc);
        const double ms = t.elapsed_ms();
        orderings += r.diag.orderings;
        chosen = r.diag.ordering;
        const double err = wave::average_relative_error_db(ref, r.outputs);
        char step[32];
        std::snprintf(step, sizeof step, "h = %g ps", h * 1e12);
        tab.add_row({transient::method_name(method), step, fmt_ms(ms), fmt_db(err)});
        return err;
    };

    const double e_be10 = run_baseline(transient::Method::backward_euler, h0);
    const double e_be5 = run_baseline(transient::Method::backward_euler, h0 / 2);
    const double e_be1 = run_baseline(transient::Method::backward_euler, h0 / 10);
    const double e_gear = run_baseline(transient::Method::gear2, h0);
    const double e_trap = run_baseline(transient::Method::trapezoidal, h0);

    char step[32];
    std::snprintf(step, sizeof step, "h = %g ps", h0 * 1e12);
    tab.add_row({"OPM (2nd-order)", step, fmt_ms(t_opm), "-"});
    tab.print();

    const char* ord = chosen == la::SparseLuOptions::Ordering::amd   ? "amd"
                      : chosen == la::SparseLuOptions::Ordering::rcm ? "rcm"
                                                                     : "natural";
    std::printf("\nMNA pencil analysis (shared by all baselines via the "
                "Engine cache): ordering=%s, computed %d time(s) across 5 "
                "baseline runs\n", ord, orderings);

    std::printf("\npaper:  b-Euler 334.7s/-91dB, 691.7s/-92dB, 3198s/-127dB; "
                "Gear 359.1s/-134dB;\n        Trapezoidal 347.2s/-137dB; "
                "OPM 314.6s/- (75K/110K states, 2012 hardware)\n");
    const bool be_monotone = e_be10 > e_be5 && e_be5 > e_be1;
    const bool trap_best = e_trap < e_be1 && e_gear < e_be10;
    const bool shared = orderings == 1;
    std::printf("shape checks: b-Euler error shrinks with h: %s | "
                "trap/Gear closest to OPM: %s | one ordering for 5 runs: %s\n",
                be_monotone ? "PASS" : "FAIL", trap_best ? "PASS" : "FAIL",
                shared ? "PASS" : "FAIL");
    return 0;
}
