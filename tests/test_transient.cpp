/// \file test_transient.cpp
/// \brief Tests for the baseline solvers: convergence orders of the
///        classic steppers, the FFT frequency-domain method, and the
///        Grünwald–Letnikov fractional stepper.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "opm/mittag_leffler.hpp"
#include "opm/solver.hpp"
#include "transient/fft_solver.hpp"
#include "transient/grunwald.hpp"
#include "transient/steppers.hpp"

namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;
namespace transient = opmsim::transient;

namespace {

opm::DenseDescriptorSystem scalar_system(double lambda) {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd{{1.0}};
    s.a = la::Matrixd{{lambda}};
    s.b = la::Matrixd{{1.0}};
    return s;
}

/// Max |x_num(t_k) - x_exact(t_k)| for the scalar decay problem
/// x' = -x + 1, x(0) = 0, over [0, 2].
double stepper_error(transient::Method method, la::index_t steps) {
    transient::TransientOptions opt;
    opt.method = method;
    const auto sys = scalar_system(-1.0).to_sparse();
    const auto res =
        transient::simulate_transient(sys, {wave::step(1.0)}, 2.0, steps, opt);
    double err = 0;
    for (std::size_t k = 0; k < res.times.size(); ++k) {
        const double exact = 1.0 - std::exp(-res.times[k]);
        err = std::max(err, std::abs(res.outputs[0].values()[k] - exact));
    }
    return err;
}

} // namespace

TEST(Steppers, BackwardEulerIsFirstOrder) {
    const double e1 = stepper_error(transient::Method::backward_euler, 50);
    const double e2 = stepper_error(transient::Method::backward_euler, 100);
    EXPECT_GT(e1 / e2, 1.8);
    EXPECT_LT(e1 / e2, 2.2);
}

TEST(Steppers, TrapezoidalIsSecondOrder) {
    const double e1 = stepper_error(transient::Method::trapezoidal, 50);
    const double e2 = stepper_error(transient::Method::trapezoidal, 100);
    EXPECT_GT(e1 / e2, 3.5);
    EXPECT_LT(e1 / e2, 4.5);
}

TEST(Steppers, Gear2IsSecondOrder) {
    const double e1 = stepper_error(transient::Method::gear2, 50);
    const double e2 = stepper_error(transient::Method::gear2, 100);
    EXPECT_GT(e1 / e2, 3.3);
    EXPECT_LT(e1 / e2, 4.7);
}

TEST(Steppers, AllConvergeOnOscillator) {
    // Undamped-ish oscillator keeps phase errors honest.
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd::identity(2);
    sys.a = la::Matrixd{{-0.1, 1.0}, {-1.0, -0.1}};
    sys.b = la::Matrixd{{0.0}, {1.0}};
    const auto s = sys.to_sparse();
    for (auto method : {transient::Method::backward_euler,
                        transient::Method::trapezoidal, transient::Method::gear2}) {
        transient::TransientOptions opt;
        opt.method = method;
        const auto coarse = transient::simulate_transient(s, {wave::step(1.0)},
                                                          10.0, 500, opt);
        const auto fine = transient::simulate_transient(s, {wave::step(1.0)},
                                                        10.0, 4000, opt);
        EXPECT_LT(wave::relative_l2(fine.outputs[0], coarse.outputs[0]), 0.05)
            << transient::method_name(method);
    }
}

TEST(Steppers, HandlesDaeWithAlgebraicConstraint) {
    // x1' = -x1 + x2; 0 = x2 - u.
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0}, {0, 0}};
    sys.a = la::Matrixd{{-1, 1}, {0, -1}};
    sys.b = la::Matrixd{{0}, {1}};
    transient::TransientOptions opt;
    opt.method = transient::Method::backward_euler;
    const auto res = transient::simulate_transient(sys.to_sparse(),
                                                   {wave::step(1.0)}, 3.0, 300, opt);
    EXPECT_NEAR(res.outputs[1].at(1.5), 1.0, 1e-10);
    EXPECT_NEAR(res.outputs[0].at(1.5), 1.0 - std::exp(-1.5), 5e-3);
}

TEST(Steppers, InitialConditionRespected) {
    transient::TransientOptions opt;
    opt.method = transient::Method::trapezoidal;
    opt.x0 = {2.0};
    const auto res = transient::simulate_transient(
        scalar_system(-1.0).to_sparse(), {wave::step(0.0)}, 2.0, 200, opt);
    EXPECT_DOUBLE_EQ(res.outputs[0].values()[0], 2.0);
    EXPECT_NEAR(res.outputs[0].at(1.0), 2.0 * std::exp(-1.0), 1e-3);
}

TEST(Steppers, MethodNames) {
    EXPECT_STREQ(transient::method_name(transient::Method::backward_euler),
                 "b-Euler");
    EXPECT_STREQ(transient::method_name(transient::Method::trapezoidal),
                 "Trapezoidal");
    EXPECT_STREQ(transient::method_name(transient::Method::gear2), "Gear");
}

TEST(FftSolver, IntegerOrderPeriodicSteadyState) {
    // Sinusoidal drive with an integer number of periods in the window is
    // the FFT method's home turf: it returns the exact periodic response.
    // x' = -x + sin(2 pi f t), f = 2 / T.
    const double t_end = 4.0;
    const double f = 2.0 / t_end;
    const auto sys = scalar_system(-1.0);
    transient::FftSolverOptions opt;
    opt.alpha = 1.0;
    opt.samples = 256;
    const auto res = transient::simulate_fft(sys, {wave::sine(1.0, f)}, t_end, opt);
    // periodic steady state: x_p(t) = (sin wt - w cos wt + w e^{-t}...)
    // compare against the phasor solution |H| sin(wt + phi).
    const double w = 2.0 * std::numbers::pi * f;
    const double mag = 1.0 / std::sqrt(1.0 + w * w);
    const double phi = -std::atan(w);
    double max_err = 0;
    for (double t = 0.5; t < 3.9; t += 0.13)
        max_err = std::max(max_err, std::abs(res.outputs[0].at(t) -
                                             mag * std::sin(w * t + phi)));
    EXPECT_LT(max_err, 5e-3);
}

TEST(FftSolver, FractionalPulseMatchesGrunwald) {
    const auto sys = scalar_system(-1.0);
    const std::vector<wave::Source> u = {wave::smooth_pulse(1.0, 0.2, 0.5, 1.0, 0.5)};
    transient::FftSolverOptions fopt;
    fopt.alpha = 0.5;
    fopt.samples = 512;
    const auto f = transient::simulate_fft(sys, u, 8.0, fopt);
    transient::GrunwaldOptions gopt;
    gopt.alpha = 0.5;
    const auto g =
        transient::simulate_grunwald(sys.to_sparse(), u, 8.0, 2048, gopt);
    // The FFT method's periodic extension clashes with the fractional
    // memory tail (~t^{-1/2}, still ~0.35 at the window edge), so the
    // mismatch is tens of percent — exactly the "difficult to control the
    // approximation error" weakness the paper ascribes to the frequency-
    // domain approach.  The test pins the error to that regime: clearly
    // imperfect, clearly not divergent.
    const double mismatch = wave::relative_l2(g.outputs[0], f.outputs[0]);
    EXPECT_GT(mismatch, 0.02);
    EXPECT_LT(mismatch, 0.5);
}

TEST(FftSolver, MoreSamplesImproveSharpInputs) {
    const auto sys = scalar_system(-1.0);
    const std::vector<wave::Source> u = {wave::pulse(1.0, 0.5, 0.05, 0.4, 0.05)};
    transient::GrunwaldOptions g1;
    g1.alpha = 1.0;
    const auto g = transient::simulate_grunwald(sys.to_sparse(), u, 6.0, 4096, g1);
    transient::FftSolverOptions o1{1.0, 16}, o2{1.0, 256};
    const auto f1 = transient::simulate_fft(sys, u, 6.0, o1);
    const auto f2 = transient::simulate_fft(sys, u, 6.0, o2);
    EXPECT_LT(wave::relative_l2(g.outputs[0], f2.outputs[0]),
              wave::relative_l2(g.outputs[0], f1.outputs[0]));
}

TEST(FftSolver, ValidatesOptions) {
    const auto sys = scalar_system(-1.0);
    transient::FftSolverOptions bad;
    bad.samples = 1;
    EXPECT_THROW(transient::simulate_fft(sys, {wave::step(1.0)}, 1.0, bad),
                 std::invalid_argument);
}

/// GL stepper vs Mittag-Leffler across orders (first-order accuracy).
class GrunwaldOracle : public ::testing::TestWithParam<double> {};

TEST_P(GrunwaldOracle, StepResponseConverges) {
    const double alpha = GetParam();
    const auto sys = scalar_system(-1.0).to_sparse();
    transient::GrunwaldOptions gopt;
    gopt.alpha = alpha;
    const auto res = transient::simulate_grunwald(sys, {wave::step(1.0)}, 2.0,
                                                  2000, gopt);
    double max_err = 0;
    for (double t = 0.2; t <= 1.9; t += 0.1)
        max_err = std::max(max_err,
                           std::abs(res.outputs[0].at(t) -
                                    opm::ml_step_response(alpha, -1.0, 1.0, t)));
    EXPECT_LT(max_err, 5e-3) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, GrunwaldOracle,
                         ::testing::Values(0.25, 0.5, 0.75, 1.0, 1.5));

TEST(Grunwald, AlphaOneReducesToBackwardEuler) {
    // GL with alpha = 1 is the backward-difference scheme: compare.
    const auto sys = scalar_system(-1.0).to_sparse();
    transient::GrunwaldOptions gopt;
    gopt.alpha = 1.0;
    const auto g = transient::simulate_grunwald(sys, {wave::step(1.0)}, 2.0,
                                                200, gopt);
    transient::TransientOptions be;
    be.method = transient::Method::backward_euler;
    const auto b = transient::simulate_transient(sys, {wave::step(1.0)}, 2.0,
                                                 200, be);
    for (std::size_t k = 0; k < g.times.size(); ++k)
        EXPECT_NEAR(g.outputs[0].values()[k], b.outputs[0].values()[k], 1e-12);
}
