/// \file test_adaptive_soe.cpp
/// \brief The nonuniform-grid / adaptive integral-form engine with the
///        streaming sum-of-exponentials history: oracle pins against the
///        exact dense path on equal, clustered, strongly graded and random
///        step sequences, the sub-quadratic kernel-evaluation gate, the
///        controller (rollback) path, the out-of-domain fallbacks, and
///        input validation of simulate_opm_nonuniform.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "opm/adaptive.hpp"

namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

namespace {

opm::DescriptorSystem mimo_system() {
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0.2, 0}, {0, 1, 0}, {0.1, 0, 1}};
    sys.a = la::Matrixd{{-2, 1, 0}, {0, -3, 1}, {0.5, 0, -1}};
    sys.b = la::Matrixd{{1, 0}, {0, 1}, {1, 1}};
    return sys.to_sparse();
}

std::vector<wave::Source> mimo_inputs() {
    return {wave::step(1.0), wave::sine(0.5, 3.0)};
}

double max_coeff_diff(const la::Matrixd& a, const la::Matrixd& b) {
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double err = 0.0;
    for (la::index_t j = 0; j < a.cols(); ++j)
        for (la::index_t i = 0; i < a.rows(); ++i)
            err = std::max(err, std::abs(a(i, j) - b(i, j)));
    return err;
}

/// Run the prescribed-grid engine twice — exact dense vs soe — and return
/// the coefficient difference, asserting the soe diagnostics on the way.
double soe_vs_dense(const la::Vectord& steps, double alpha,
                    bool expect_soe = true) {
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    opm::AdaptiveOptions dense, soe;
    dense.alpha = soe.alpha = alpha;
    soe.history = opm::HistoryBackend::soe;
    soe.soe_tol = 1e-9;
    const opm::AdaptiveResult rd = opm::simulate_opm_nonuniform(sys, u, steps, dense);
    const opm::AdaptiveResult rs = opm::simulate_opm_nonuniform(sys, u, steps, soe);
    EXPECT_EQ(rd.accepted, static_cast<la::index_t>(steps.size()));
    EXPECT_EQ(rs.accepted, rd.accepted);
    EXPECT_EQ(rd.diag.history_backend, opm::HistoryBackend::naive);
    if (expect_soe) {
        EXPECT_EQ(rs.diag.history_backend, opm::HistoryBackend::soe);
        EXPECT_GT(rs.diag.soe_modes, 0);
        EXPECT_GE(rs.diag.soe_fit_error, 0.0);
        EXPECT_LT(rs.diag.kernel_evals, rd.diag.kernel_evals);
    }
    return max_coeff_diff(rd.coeffs, rs.coeffs);
}

} // namespace

// ---- prescribed-grid oracles ----------------------------------------------

TEST(AdaptiveSoe, EqualStepsMatchDense) {
    // All-equal steps: the degenerate clustering case (the one the Parlett
    // differential path cannot even represent — the integral form can).
    const la::Vectord steps(384, 2.0 / 384);
    EXPECT_LT(soe_vs_dense(steps, 0.6), 1e-8);
}

TEST(AdaptiveSoe, ClusteredStepsMatchDense) {
    // Near-coincident runs of tiny steps between normal ones: exercises
    // the mode-state recurrence with h varying by 3 orders of magnitude
    // between adjacent columns.
    la::Vectord steps;
    double t = 0.0;
    while (t < 1.5) {
        steps.push_back(1e-2);
        for (int k = 0; k < 6; ++k) steps.push_back(1e-5);
        for (int k = 0; k < 3; ++k) steps.push_back(5e-3);
        t += 1e-2 + 6e-5 + 1.5e-2;
    }
    EXPECT_LT(soe_vs_dense(steps, 0.5), 1e-8);
}

TEST(AdaptiveSoe, GeometricallyGradedStepsMatchDense) {
    // Strongly nonuniform: h grows geometrically over ~4 decades, the
    // startup mesh shape every fractional controller produces.
    la::Vectord steps;
    double h = 1e-5;
    double t = 0.0;
    while (t < 2.0) {
        steps.push_back(h);
        t += h;
        h = std::min(h * 1.07, 0.02);
    }
    for (const double alpha : {0.3, 0.8}) {
        EXPECT_LT(soe_vs_dense(steps, alpha), 1e-8) << "alpha=" << alpha;
    }
}

TEST(AdaptiveSoe, RandomStepsMatchDense) {
    std::mt19937 gen(2026);
    std::uniform_real_distribution<double> dist(-3.5, -1.5);  // log10 h
    la::Vectord steps;
    double t = 0.0;
    while (t < 1.0) {
        const double h = std::pow(10.0, dist(gen));
        steps.push_back(h);
        t += h;
    }
    EXPECT_LT(soe_vs_dense(steps, 0.6), 1e-8);
}

TEST(AdaptiveSoe, KernelEvaluationsAreSubQuadratic) {
    // The measured-cost acceptance gate, on the deterministic counter: the
    // dense path evaluates H~_ij for every i <= j (~m^2/2 kernel evals),
    // the soe path only the adjacent entry and the diagonal (~2m), with
    // the far history carried by the mode recurrence.
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    const la::index_t m = 512;
    const la::Vectord steps(static_cast<std::size_t>(m), 2.0 / static_cast<double>(m));
    opm::AdaptiveOptions dense, soe;
    dense.alpha = soe.alpha = 0.6;
    soe.history = opm::HistoryBackend::soe;
    const auto rd = opm::simulate_opm_nonuniform(sys, u, steps, dense);
    const auto rs = opm::simulate_opm_nonuniform(sys, u, steps, soe);
    EXPECT_GE(rd.diag.kernel_evals, m * (m - 1) / 2);  // O(m^2) dense
    EXPECT_LE(rs.diag.kernel_evals, 4 * m);            // O(m) streaming
    EXPECT_LT(max_coeff_diff(rd.coeffs, rs.coeffs), 1e-7);
}

// ---- the adaptive controller (rollback path) ------------------------------

TEST(AdaptiveSoe, ControllerRunMatchesDenseIncludingRollback) {
    // The step-doubling controller probes candidate steps and rolls them
    // back (pop_step), so agreement of the FULL adaptive run — identical
    // accepted-step sequence, waveforms equal to fit tolerance — is a
    // direct test of the mode-state checkpointing.
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    opm::AdaptiveOptions dense, soe;
    dense.alpha = soe.alpha = 0.6;
    dense.tol = soe.tol = 1e-5;
    soe.history = opm::HistoryBackend::soe;
    soe.soe_tol = 1e-9;
    const auto rd = opm::simulate_opm_adaptive(sys, u, 2.0, dense);
    const auto rs = opm::simulate_opm_adaptive(sys, u, 2.0, soe);
    ASSERT_GT(rd.rejected, 0) << "controller never rejected: rollback untested";
    ASSERT_EQ(rs.accepted, rd.accepted)
        << "soe history changed the controller's step decisions";
    ASSERT_EQ(rs.steps.size(), rd.steps.size());
    for (std::size_t j = 0; j < rd.steps.size(); ++j)
        EXPECT_EQ(rs.steps[j], rd.steps[j]) << "step " << j;
    EXPECT_LT(max_coeff_diff(rd.coeffs, rs.coeffs), 1e-7);
    ASSERT_EQ(rs.outputs.size(), rd.outputs.size());
    for (std::size_t c = 0; c < rd.outputs.size(); ++c) {
        const auto& vd = rd.outputs[c].values();
        const auto& vs = rs.outputs[c].values();
        ASSERT_EQ(vs.size(), vd.size());
        for (std::size_t k = 0; k < vd.size(); ++k)
            EXPECT_NEAR(vs[k], vd[k], 1e-7);
    }
    EXPECT_LT(rs.diag.kernel_evals, rd.diag.kernel_evals / 4);
}

// ---- out-of-domain fallbacks ----------------------------------------------

TEST(AdaptiveSoe, FallsBackToExactDenseOutsideAlphaDomain) {
    // soe requires alpha in (0, 1); alpha = 1 has its own running-sum fast
    // path and alpha > 1 the generalized integral kernel.  Requesting soe
    // there must be a silent no-op: bit-identical results, backend
    // reported as naive (exact dense), no modes.
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    const la::Vectord steps(128, 1.0 / 128);
    for (const double alpha : {1.0, 1.5}) {
        opm::AdaptiveOptions dense, soe;
        dense.alpha = soe.alpha = alpha;
        soe.history = opm::HistoryBackend::soe;
        const auto rd = opm::simulate_opm_nonuniform(sys, u, steps, dense);
        const auto rs = opm::simulate_opm_nonuniform(sys, u, steps, soe);
        EXPECT_EQ(max_coeff_diff(rd.coeffs, rs.coeffs), 0.0) << "alpha=" << alpha;
        EXPECT_EQ(rs.diag.history_backend, opm::HistoryBackend::naive);
        EXPECT_EQ(rs.diag.soe_modes, 0);
        EXPECT_EQ(rs.diag.soe_fit_error, -1.0);
    }
}

TEST(AdaptiveSoe, ExactBackendNamesAreDenseHere) {
    // AdaptiveOptions::history values other than soe all mean "exact
    // dense" — requesting fft must not change anything.
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    const la::Vectord steps(96, 1.0 / 96);
    opm::AdaptiveOptions a, b;
    a.alpha = b.alpha = 0.7;
    b.history = opm::HistoryBackend::fft;
    const auto ra = opm::simulate_opm_nonuniform(sys, u, steps, a);
    const auto rb = opm::simulate_opm_nonuniform(sys, u, steps, b);
    EXPECT_EQ(max_coeff_diff(ra.coeffs, rb.coeffs), 0.0);
    EXPECT_EQ(rb.diag.history_backend, opm::HistoryBackend::naive);
}

// ---- validation -----------------------------------------------------------

TEST(AdaptiveSoe, NonuniformValidatesItsArguments) {
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    opm::AdaptiveOptions opt;
    opt.alpha = 0.5;
    EXPECT_THROW(opm::simulate_opm_nonuniform(sys, u, la::Vectord{}, opt),
                 std::invalid_argument);
    EXPECT_THROW(
        opm::simulate_opm_nonuniform(sys, u, la::Vectord{0.1, -0.1, 0.1}, opt),
        std::invalid_argument);
    EXPECT_THROW(
        opm::simulate_opm_nonuniform(sys, u, la::Vectord{0.1, 0.0, 0.1}, opt),
        std::invalid_argument);
    // Wrong input count for a 2-input system.
    EXPECT_THROW(opm::simulate_opm_nonuniform(sys, {wave::step(1.0)},
                                              la::Vectord{0.1, 0.1}, opt),
                 std::invalid_argument);
    opt.alpha = -0.5;
    EXPECT_THROW(opm::simulate_opm_nonuniform(sys, u, la::Vectord{0.1}, opt),
                 std::invalid_argument);
}
