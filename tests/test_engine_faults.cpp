/// \file test_engine_faults.cpp
/// \brief Engine::run_batch fault containment: a single poisoned scenario
///        in a grouped batch fails alone (siblings bit-identical to
///        run()), malformed scenarios are marked invalid_scenario without
///        throwing, empty batches and non-positive worker counts are
///        handled, and the deadline / cancellation controls surface as
///        per-scenario statuses.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <vector>

#include "api/engine.hpp"
#include "circuit/power_grid.hpp"
#include "util/status.hpp"

namespace api = opmsim::api;
namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;
namespace circuit = opmsim::circuit;
namespace transient = opmsim::transient;

using opmsim::ErrorCode;

namespace {

double exact_diff(const la::Matrixd& a, const la::Matrixd& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return 1e300;
    double m = 0.0;
    for (la::index_t j = 0; j < a.cols(); ++j)
        for (la::index_t i = 0; i < a.rows(); ++i)
            m = std::max(m, std::abs(a(i, j) - b(i, j)));
    return m;
}

circuit::PowerGrid make_grid() {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 4;
    spec.nz = 2;
    spec.num_loads = 4;
    spec.load_channels = 2;
    return circuit::build_power_grid(spec);
}

/// Scenarios differing only in their load-current gains (one group).
std::vector<api::Scenario> source_sweep(const circuit::PowerGrid& pg,
                                        const api::MethodConfig& config,
                                        int count, la::index_t steps,
                                        double t_end) {
    std::vector<api::Scenario> batch;
    for (int s = 0; s < count; ++s) {
        api::Scenario sc;
        sc.t_end = t_end;
        sc.steps = steps;
        sc.config = config;
        const double gain = 1.0 + 0.2 * static_cast<double>(s);
        for (std::size_t i = 0; i < pg.inputs.size(); ++i) {
            const wave::Source base = pg.inputs[i];
            if (i == 0)
                sc.sources.push_back(base);
            else
                sc.sources.push_back(
                    [base, gain](double t) { return gain * base(t); });
        }
        batch.push_back(std::move(sc));
    }
    return batch;
}

} // namespace

TEST(EngineFaults, PoisonedScenarioFailsAloneSiblingsBitIdentical) {
    // Four batch-compatible scenarios form ONE shared group sweep; the
    // third carries a NaN source that kills the grouped run.  The batch
    // must not throw: only the offender reports nonfinite_input, and the
    // healthy siblings still get results bit-identical to run().
    const circuit::PowerGrid pg = make_grid();
    std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 4, 16, 1e-9);
    batch[2].sources[1] = [](double) {
        return std::numeric_limits<double>::quiet_NaN();
    };

    api::Engine be;
    const api::SystemHandle hb = be.add_system(pg.mna);
    std::vector<api::SolveResult> got;
    ASSERT_NO_THROW(got = be.run_batch(hb, batch));
    ASSERT_EQ(got.size(), batch.size());

    EXPECT_EQ(got[2].status.code, ErrorCode::nonfinite_input)
        << got[2].status.message;
    EXPECT_TRUE(got[2].outputs.empty());
    EXPECT_EQ(got[2].states.rows(), 0);

    api::Engine le;
    const api::SystemHandle hl = le.add_system(pg.mna);
    for (const std::size_t s : {0ul, 1ul, 3ul}) {
        ASSERT_TRUE(got[s].status.ok()) << "scenario " << s << ": "
                                        << got[s].status.message;
        const api::SolveResult ref = le.run(hl, batch[s]);
        EXPECT_TRUE(ref.status.ok());
        EXPECT_EQ(exact_diff(ref.states, got[s].states), 0.0) << "scenario " << s;
        ASSERT_EQ(ref.outputs.size(), got[s].outputs.size());
        for (std::size_t o = 0; o < ref.outputs.size(); ++o)
            EXPECT_EQ(ref.outputs[o].values(), got[s].outputs[o].values())
                << "scenario " << s << " output " << o;
    }
}

TEST(EngineFaults, ContainmentIsIdenticalUnderWorkerPool) {
    // The same poisoned batch through 4 workers: statuses and every
    // surviving bit must match the serial run.
    const circuit::PowerGrid pg = make_grid();
    transient::GrunwaldOptions gl;
    gl.alpha = 0.7;
    std::vector<api::Scenario> batch;
    for (const auto& sub : {source_sweep(pg, opm::OpmOptions{}, 3, 12, 1e-9),
                            source_sweep(pg, gl, 3, 12, 1e-9)})
        batch.insert(batch.end(), sub.begin(), sub.end());
    batch[4].sources[0] = [](double) {
        return std::numeric_limits<double>::quiet_NaN();
    };

    api::Engine se;
    const api::SystemHandle hs = se.add_system(pg.mna);
    const std::vector<api::SolveResult> serial =
        se.run_batch(hs, batch, {.workers = 1});
    api::Engine te;
    const api::SystemHandle ht = te.add_system(pg.mna);
    const std::vector<api::SolveResult> threaded =
        te.run_batch(ht, batch, {.workers = 4});

    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
        EXPECT_EQ(serial[s].status.code, threaded[s].status.code) << s;
        EXPECT_EQ(exact_diff(serial[s].states, threaded[s].states), 0.0) << s;
    }
    EXPECT_EQ(serial[4].status.code, ErrorCode::nonfinite_input);
    for (const std::size_t s : {0ul, 1ul, 2ul, 3ul, 5ul})
        EXPECT_TRUE(serial[s].status.ok()) << s;
}

TEST(EngineFaults, MalformedScenariosMarkedInvalidNotThrown) {
    const circuit::PowerGrid pg = make_grid();
    std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 5, 12, 1e-9);
    batch[0].sources.pop_back();              // wrong source count
    batch[1].t_end = 0.0;                     // non-positive horizon
    batch[2].steps = 0;                       // no steps on a stepped method
    batch[3].config = opm::MultiTermOptions{};  // wrong representation
    // batch[4] stays valid and must still run.

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(pg.mna);
    std::vector<api::SolveResult> got;
    ASSERT_NO_THROW(got = engine.run_batch(h, batch));
    ASSERT_EQ(got.size(), 5u);
    for (const std::size_t s : {0ul, 1ul, 2ul, 3ul}) {
        EXPECT_EQ(got[s].status.code, ErrorCode::invalid_scenario) << s;
        EXPECT_FALSE(got[s].status.message.empty()) << s;
        EXPECT_TRUE(got[s].outputs.empty()) << s;
    }
    EXPECT_TRUE(got[4].status.ok()) << got[4].status.message;
    EXPECT_FALSE(got[4].outputs.empty());
}

TEST(EngineFaults, EmptyBatchAndClampedWorkers) {
    const circuit::PowerGrid pg = make_grid();
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(pg.mna);

    const std::vector<api::Scenario> none;
    std::vector<api::SolveResult> empty;
    ASSERT_NO_THROW(empty = engine.run_batch(h, none));
    EXPECT_TRUE(empty.empty());

    // workers <= 0 clamps to 1 and stays bit-identical to workers = 1.
    const std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 3, 12, 1e-9);
    const std::vector<api::SolveResult> one =
        engine.run_batch(h, batch, {.workers = 1});
    for (const int w : {0, -3}) {
        const std::vector<api::SolveResult> clamped =
            engine.run_batch(h, batch, {.workers = w});
        ASSERT_EQ(clamped.size(), one.size());
        for (std::size_t s = 0; s < one.size(); ++s) {
            EXPECT_TRUE(clamped[s].status.ok()) << s;
            EXPECT_EQ(exact_diff(one[s].states, clamped[s].states), 0.0) << s;
        }
    }
}

TEST(EngineFaults, ExpiredDeadlineMarksScenariosNotThrows) {
    const circuit::PowerGrid pg = make_grid();
    const std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 3, 24, 1e-9);
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(pg.mna);
    std::vector<api::SolveResult> got;
    // A 1 ns budget is over before the first sweep-step check runs.
    ASSERT_NO_THROW(got = engine.run_batch(h, batch, {.deadline = 1e-9}));
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t s = 0; s < got.size(); ++s) {
        EXPECT_EQ(got[s].status.code, ErrorCode::deadline_exceeded)
            << s << ": " << got[s].status.message;
        EXPECT_TRUE(got[s].outputs.empty()) << s;
    }
}

TEST(EngineFaults, CancellationTokenMarksScenariosCancelled) {
    const circuit::PowerGrid pg = make_grid();
    const std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 3, 24, 1e-9);
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(pg.mna);
    const std::atomic<bool> stop{true};
    api::Engine::BatchOptions opt;
    opt.workers = 2;
    opt.cancel = &stop;
    std::vector<api::SolveResult> got;
    ASSERT_NO_THROW(got = engine.run_batch(h, batch, opt));
    for (std::size_t s = 0; s < got.size(); ++s)
        EXPECT_EQ(got[s].status.code, ErrorCode::cancelled) << s;

    // The same handle stays usable after a cancelled batch.
    const api::SolveResult ok = engine.run(h, batch[0]);
    EXPECT_TRUE(ok.status.ok());
    EXPECT_FALSE(ok.outputs.empty());
}
