/// \file test_la_factor_cache.cpp
/// \brief la::FactorCache pins: pattern-keyed symbolic reuse, exact
///        value-keyed numeric reuse, eviction behavior under cyclic
///        replay (the adaptive stepper's access pattern), and the
///        exact-verification guard behind the fingerprint hashes.

#include <gtest/gtest.h>

#include <cmath>

#include "la/factor_cache.hpp"
#include "la/sparse.hpp"

namespace la = opmsim::la;

namespace {

/// Tridiagonal (shift*I + Laplacian)-style test matrix: one pattern for
/// every shift, different values per shift.
la::CscMatrix tridiag(la::index_t n, double shift) {
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t.add(i, i, 2.0 + shift);
        if (i > 0) t.add(i, i - 1, -1.0);
        if (i + 1 < n) t.add(i, i + 1, -1.0);
    }
    return la::CscMatrix(t);
}

} // namespace

TEST(FactorCache, SymbolicSharedAcrossValuesNumericKeyedByValues) {
    la::FactorCache cache;
    bool sym_fresh = true, num_fresh = true;

    const auto lu1 = cache.factor(tridiag(20, 0.5), {}, &sym_fresh, &num_fresh);
    EXPECT_TRUE(sym_fresh);
    EXPECT_TRUE(num_fresh);

    // Same pattern, new values: symbolic hit, numeric miss.
    const auto lu2 = cache.factor(tridiag(20, 0.7), {}, &sym_fresh, &num_fresh);
    EXPECT_FALSE(sym_fresh);
    EXPECT_TRUE(num_fresh);
    EXPECT_EQ(lu1->symbolic().get(), lu2->symbolic().get());

    // Exact repeat: full numeric hit, same object.
    const auto lu3 = cache.factor(tridiag(20, 0.5), {}, &sym_fresh, &num_fresh);
    EXPECT_FALSE(sym_fresh);
    EXPECT_FALSE(num_fresh);
    EXPECT_EQ(lu1.get(), lu3.get());

    // A cached factor must actually solve its own matrix.
    la::Vectord b(20, 1.0);
    const la::Vectord x = lu3->solve(b);
    const la::Vectord back = tridiag(20, 0.5).matvec(x);
    for (double v : back) EXPECT_NEAR(v, 1.0, 1e-12);

    EXPECT_EQ(cache.symbolic_misses(), 1);
    EXPECT_EQ(cache.factor_misses(), 2);
    EXPECT_EQ(cache.factor_hits(), 1);
}

TEST(FactorCache, DistinctOptionsGetDistinctAnalyses) {
    la::FactorCache cache;
    la::SparseLuOptions amd;
    amd.ordering = la::SparseLuOptions::Ordering::amd;
    la::SparseLuOptions rcm;
    rcm.ordering = la::SparseLuOptions::Ordering::rcm;
    const auto s1 = cache.symbolic(tridiag(16, 0.0), amd);
    const auto s2 = cache.symbolic(tridiag(16, 0.0), rcm);
    EXPECT_NE(s1.get(), s2.get());
    EXPECT_EQ(cache.num_symbolic(), 2u);
    EXPECT_EQ(cache.symbolic(tridiag(16, 0.0), amd).get(), s1.get());
}

/// Cyclic replay of more distinct pencils than the cap must NOT collapse
/// to zero hits: the replace-newest eviction keeps the first cap-1
/// entries resident, so every later cycle re-hits them.
TEST(FactorCache, CyclicReplayBeyondCapKeepsHitting) {
    const std::size_t cap = 4;
    la::FactorCache cache(cap);
    const int keys = 7;  // > cap: oldest-first eviction would thrash to 0

    auto run_cycle = [&] {
        for (int k = 0; k < keys; ++k)
            (void)cache.factor(tridiag(12, 0.1 * static_cast<double>(k + 1)));
    };
    run_cycle();  // cold: all misses
    const long miss_after_cold = cache.factor_misses();
    EXPECT_EQ(cache.factor_hits(), 0);
    EXPECT_EQ(miss_after_cold, keys);
    EXPECT_LE(cache.num_factors(), cap);

    run_cycle();  // warm replay: the resident cap-1 entries hit
    EXPECT_EQ(cache.factor_hits(), static_cast<long>(cap) - 1);
    EXPECT_EQ(cache.symbolic_misses(), 1);  // one pattern throughout
}

TEST(FactorCache, ClearDropsEntriesButKeepsHandedOutFactorsAlive) {
    la::FactorCache cache;
    const auto lu = cache.factor(tridiag(10, 0.3));
    cache.clear();
    EXPECT_EQ(cache.num_factors(), 0u);
    EXPECT_EQ(cache.num_symbolic(), 0u);
    // The shared_ptr we hold stays valid and usable.
    const la::Vectord x = lu->solve(la::Vectord(10, 1.0));
    EXPECT_TRUE(std::isfinite(x[0]));
    // Re-request: recomputed, not the same object.
    const auto lu2 = cache.factor(tridiag(10, 0.3));
    EXPECT_NE(lu.get(), lu2.get());
}
