/// \file test_api_engine.cpp
/// \brief Engine facade pins: every solver path reachable through
///        opmsim::api::Engine must produce BIT-IDENTICAL results to the
///        legacy free function it wraps (caching is transparent), a warm
///        handle must reuse its caches (zero orderings on the second
///        run), and run_batch must equal the per-scenario loop.
///
/// Systems under test mirror the repo's standard trio: the RC low-pass
/// (MNA DAE), the fractional transmission line (dense -> sparse, alpha =
/// 1/2), and a small 3-D power grid (second-order multi-term model + MNA
/// descriptor model of the same physical grid).

#include <gtest/gtest.h>

#include <cmath>

#include "api/engine.hpp"
#include "circuit/mna.hpp"
#include "circuit/power_grid.hpp"
#include "circuit/tline.hpp"
#include "opm/adaptive.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "transient/grunwald.hpp"
#include "transient/steppers.hpp"

namespace api = opmsim::api;
namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;
namespace circuit = opmsim::circuit;
namespace transient = opmsim::transient;

namespace {

/// RC low-pass as an MNA DAE (the quickstart circuit).
opm::DescriptorSystem make_rc() {
    circuit::Netlist nl("rc lowpass");
    const la::index_t in = nl.node("in");
    const la::index_t out = nl.node("out");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("R1", in, out, 1e3);
    nl.capacitor("C1", out, 0, 1e-6);
    circuit::MnaLayout layout;
    opm::DescriptorSystem sys = circuit::build_mna(nl, &layout);
    sys.c = circuit::node_voltage_selector(layout, {out});
    return sys;
}

circuit::PowerGrid make_grid() {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 3;
    spec.nz = 2;
    spec.num_loads = 4;
    spec.load_channels = 2;
    spec.decap_alpha = 0.8;  // fractional decaps: orders {1.8, 1, 0}
    return circuit::build_power_grid(spec);
}

double exact_diff(const la::Matrixd& a, const la::Matrixd& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return 1e300;
    return la::max_abs_diff(a, b);
}

void expect_same_outputs(const std::vector<opmsim::wave::Waveform>& a,
                         const std::vector<opmsim::wave::Waveform>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t c = 0; c < a.size(); ++c) {
        ASSERT_EQ(a[c].size(), b[c].size());
        for (std::size_t k = 0; k < a[c].size(); ++k) {
            EXPECT_EQ(a[c].values()[k], b[c].values()[k]) << "ch " << c << " k " << k;
            EXPECT_EQ(a[c].times()[k], b[c].times()[k]) << "ch " << c << " k " << k;
        }
    }
}

} // namespace

// ---------------------------------------------------------------------------
// Bit-equivalence: facade vs legacy free functions, all five methods.
// ---------------------------------------------------------------------------

TEST(ApiEngine, OpmRecurrenceBitIdenticalOnRc) {
    const opm::DescriptorSystem sys = make_rc();
    const std::vector<wave::Source> u = {wave::step(1.0)};

    const opm::OpmResult legacy = opm::simulate_opm(sys, u, 5e-3, 200);

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(sys);
    api::Scenario sc;
    sc.sources = u;
    sc.t_end = 5e-3;
    sc.steps = 200;
    const api::SolveResult got = engine.run(h, sc);

    EXPECT_EQ(got.method, api::Method::opm);
    EXPECT_EQ(exact_diff(legacy.coeffs, got.states), 0.0);
    expect_same_outputs(legacy.outputs, got.outputs);
}

TEST(ApiEngine, OpmFractionalBitIdenticalOnTline) {
    const opm::DenseDescriptorSystem line = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.3e-9),
                                         wave::step(0.0)};
    opm::OpmOptions opt;
    opt.alpha = circuit::kTlineAlpha;
    opt.path = opm::OpmPath::toeplitz;
    const la::index_t m = 256;  // above the fft crossover: exercises plans

    const opm::OpmResult legacy = opm::simulate_opm(line, u, 5e-9, m, opt);

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(line);
    api::Scenario sc;
    sc.sources = u;
    sc.t_end = 5e-9;
    sc.steps = m;
    sc.config = opt;
    const api::SolveResult got = engine.run(h, sc);

    EXPECT_EQ(got.diag.history_backend, opm::HistoryBackend::fft);
    EXPECT_EQ(exact_diff(legacy.coeffs, got.states), 0.0);
    expect_same_outputs(legacy.outputs, got.outputs);
}

TEST(ApiEngine, MultiTermBitIdenticalOnPowerGrid) {
    const circuit::PowerGrid pg = make_grid();
    opm::MultiTermOptions opt;
    opt.path = opm::MultiTermPath::toeplitz;
    const la::index_t m = 220;

    const opm::OpmResult legacy =
        opm::simulate_multiterm(pg.second_order, pg.inputs, 3e-9, m, opt);

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(pg.second_order);
    api::Scenario sc;
    sc.sources = pg.inputs;
    sc.t_end = 3e-9;
    sc.steps = m;
    sc.config = opt;
    const api::SolveResult got = engine.run(h, sc);

    EXPECT_EQ(got.method, api::Method::multiterm);
    EXPECT_EQ(exact_diff(legacy.coeffs, got.states), 0.0);
    expect_same_outputs(legacy.outputs, got.outputs);
}

TEST(ApiEngine, AdaptiveBitIdenticalOnRc) {
    const opm::DescriptorSystem sys = make_rc();
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 2e-4)};
    opm::AdaptiveOptions opt;
    opt.tol = 1e-5;

    const opm::AdaptiveResult legacy =
        opm::simulate_opm_adaptive(sys, u, 5e-3, opt);

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(sys);
    api::Scenario sc;
    sc.sources = u;
    sc.t_end = 5e-3;
    sc.config = opt;
    const api::SolveResult got = engine.run(h, sc);

    EXPECT_EQ(got.method, api::Method::adaptive);
    EXPECT_EQ(exact_diff(legacy.coeffs, got.states), 0.0);
    ASSERT_EQ(legacy.steps.size(), got.steps.size());
    for (std::size_t j = 0; j < legacy.steps.size(); ++j)
        EXPECT_EQ(legacy.steps[j], got.steps[j]);
    expect_same_outputs(legacy.outputs, got.outputs);
}

TEST(ApiEngine, TransientBitIdenticalOnPowerGridMna) {
    const circuit::PowerGrid pg = make_grid();
    for (const auto method :
         {transient::Method::backward_euler, transient::Method::trapezoidal,
          transient::Method::gear2}) {
        transient::TransientOptions opt;
        opt.method = method;
        const transient::TransientResult legacy =
            transient::simulate_transient(pg.mna, pg.inputs, 3e-9, 120, opt);

        api::Engine engine;
        const api::SystemHandle h = engine.add_system(pg.mna);
        api::Scenario sc;
        sc.sources = pg.inputs;
        sc.t_end = 3e-9;
        sc.steps = 120;
        sc.config = opt;
        const api::SolveResult got = engine.run(h, sc);

        EXPECT_EQ(got.method, api::Method::transient);
        EXPECT_EQ(exact_diff(legacy.states, got.states), 0.0)
            << transient::method_name(method);
        expect_same_outputs(legacy.outputs, got.outputs);
        if (method == transient::Method::gear2) {
            EXPECT_EQ(got.diag.refactor_count, 1);
        }
    }
}

TEST(ApiEngine, GrunwaldBitIdenticalOnTline) {
    const opm::DescriptorSystem line =
        circuit::make_fractional_tline().to_sparse();
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.3e-9),
                                         wave::step(0.0)};
    transient::GrunwaldOptions opt;
    opt.alpha = circuit::kTlineAlpha;

    const transient::GrunwaldResult legacy =
        transient::simulate_grunwald(line, u, 5e-9, 256, opt);

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(line);
    api::Scenario sc;
    sc.sources = u;
    sc.t_end = 5e-9;
    sc.steps = 256;
    sc.config = opt;
    const api::SolveResult got = engine.run(h, sc);

    EXPECT_EQ(got.method, api::Method::grunwald);
    EXPECT_EQ(exact_diff(legacy.states, got.states), 0.0);
    expect_same_outputs(legacy.outputs, got.outputs);
}

// ---------------------------------------------------------------------------
// Cache reuse: a warm handle performs zero orderings (and, for identical
// scenarios, zero numeric factorizations), and FFT plans are served from
// the bundle.
// ---------------------------------------------------------------------------

TEST(ApiEngine, SecondRunReusesSymbolicAndNumericFactors) {
    const opm::DescriptorSystem sys = make_rc();
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(sys);
    api::Scenario sc;
    sc.sources = {wave::step(1.0)};
    sc.t_end = 5e-3;
    sc.steps = 200;

    const api::SolveResult cold = engine.run(h, sc);
    EXPECT_GE(cold.diag.orderings, 1);
    EXPECT_GE(cold.diag.factorizations, 1);

    const api::SolveResult warm = engine.run(h, sc);
    EXPECT_EQ(warm.diag.orderings, 0);
    EXPECT_EQ(warm.diag.factorizations, 0);
    EXPECT_GE(warm.diag.factor_cache_hits, 1);
    EXPECT_EQ(exact_diff(cold.states, warm.states), 0.0);
}

TEST(ApiEngine, CrossMethodRunsShareTheSymbolicAnalysis) {
    // opm, transient and grunwald all factor (aE - bA) pencils of one
    // pattern: after the first run, NO further method pays an ordering.
    const opm::DescriptorSystem line =
        circuit::make_fractional_tline().to_sparse();
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.3e-9),
                                         wave::step(0.0)};
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(line);

    api::Scenario frac;
    frac.sources = u;
    frac.t_end = 5e-9;
    frac.steps = 200;
    opm::OpmOptions fopt;
    fopt.alpha = circuit::kTlineAlpha;
    frac.config = fopt;
    const api::SolveResult first = engine.run(h, frac);
    EXPECT_EQ(first.diag.orderings, 1);

    api::Scenario gl = frac;
    transient::GrunwaldOptions gopt;
    gopt.alpha = circuit::kTlineAlpha;
    gl.config = gopt;
    EXPECT_EQ(engine.run(h, gl).diag.orderings, 0);

    api::Scenario trap = frac;
    trap.config = transient::TransientOptions{};
    EXPECT_EQ(engine.run(h, trap).diag.orderings, 0);

    api::Scenario integer = frac;
    integer.config = opm::OpmOptions{};  // alpha = 1 recurrence path
    EXPECT_EQ(engine.run(h, integer).diag.orderings, 0);
}

TEST(ApiEngine, FftPlansAndSeriesComeFromTheBundleWhenWarm) {
    const opm::DenseDescriptorSystem line = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.3e-9),
                                         wave::step(0.0)};
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(line);
    api::Scenario sc;
    sc.sources = u;
    sc.t_end = 5e-9;
    sc.steps = 256;
    opm::OpmOptions opt;
    opt.alpha = circuit::kTlineAlpha;
    opt.path = opm::OpmPath::toeplitz;
    opt.history = opm::HistoryBackend::fft;
    sc.config = opt;

    engine.run(h, sc);
    const api::Engine::CacheStats after_cold = engine.cache_stats(h);
    EXPECT_GE(after_cold.plan_misses, 1);
    EXPECT_GE(after_cold.series_misses, 1);

    engine.run(h, sc);
    const api::Engine::CacheStats after_warm = engine.cache_stats(h);
    EXPECT_EQ(after_warm.plan_misses, after_cold.plan_misses);
    EXPECT_GT(after_warm.plan_hits, after_cold.plan_hits);
    EXPECT_EQ(after_warm.series_misses, after_cold.series_misses);
    EXPECT_GT(after_warm.series_hits, after_cold.series_hits);
}

TEST(ApiEngine, AdaptiveWarmRunPerformsZeroOrderings) {
    const opm::DescriptorSystem sys = make_rc();
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(sys);
    api::Scenario sc;
    sc.sources = {wave::smooth_step(1.0, 0.0, 2e-4)};
    sc.t_end = 5e-3;
    opm::AdaptiveOptions opt;
    opt.tol = 1e-5;
    sc.config = opt;

    const api::SolveResult cold = engine.run(h, sc);
    EXPECT_EQ(cold.diag.orderings, 1);  // one pattern, many step sizes
    const api::SolveResult warm = engine.run(h, sc);
    EXPECT_EQ(warm.diag.orderings, 0);
    EXPECT_EQ(exact_diff(cold.states, warm.states), 0.0);
}

// ---------------------------------------------------------------------------
// Batched execution.
// ---------------------------------------------------------------------------

TEST(ApiEngine, RunBatchEqualsPerScenarioLoop) {
    const circuit::PowerGrid pg = make_grid();
    opm::MultiTermOptions opt;
    opt.path = opm::MultiTermPath::toeplitz;

    // Scenarios differing only in their sources (scaled load currents).
    std::vector<api::Scenario> batch;
    for (int s = 0; s < 4; ++s) {
        api::Scenario sc;
        sc.t_end = 3e-9;
        sc.steps = 220;
        sc.config = opt;
        const double gain = 1.0 + 0.25 * static_cast<double>(s);
        for (std::size_t i = 0; i < pg.inputs.size(); ++i) {
            const wave::Source base = pg.inputs[i];
            if (i == 0)
                sc.sources.push_back(base);  // shared VDD ramp
            else
                sc.sources.push_back(
                    [base, gain](double t) { return gain * base(t); });
        }
        batch.push_back(std::move(sc));
    }

    api::Engine batch_engine;
    const api::SystemHandle hb = batch_engine.add_system(pg.second_order);
    const std::vector<api::SolveResult> got =
        batch_engine.run_batch(hb, batch);

    api::Engine loop_engine;
    const api::SystemHandle hl = loop_engine.add_system(pg.second_order);
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t s = 0; s < batch.size(); ++s) {
        const api::SolveResult ref = loop_engine.run(hl, batch[s]);
        const double scale = 1.0 + ref.states.max_abs();
        EXPECT_LE(exact_diff(ref.states, got[s].states) / scale, 1e-14)
            << "scenario " << s;
    }

    // The batch reused one numeric factorization: scenario 0 factored, the
    // rest hit the cache (sources do not enter the pencil).
    EXPECT_GE(got[0].diag.factorizations, 1);
    for (std::size_t s = 1; s < got.size(); ++s) {
        EXPECT_EQ(got[s].diag.factorizations, 0) << "scenario " << s;
        EXPECT_EQ(got[s].diag.orderings, 0) << "scenario " << s;
        EXPECT_GE(got[s].diag.factor_cache_hits, 1) << "scenario " << s;
    }
}

// ---------------------------------------------------------------------------
// Dispatch validation.
// ---------------------------------------------------------------------------

TEST(ApiEngine, MismatchedSystemKindThrows) {
    const circuit::PowerGrid pg = make_grid();
    api::Engine engine;
    const api::SystemHandle desc = engine.add_system(pg.mna);
    const api::SystemHandle multi = engine.add_system(pg.second_order);

    api::Scenario wants_multi;
    wants_multi.sources = pg.inputs;
    wants_multi.t_end = 1e-9;
    wants_multi.steps = 10;
    wants_multi.config = opm::MultiTermOptions{};
    EXPECT_THROW(engine.run(desc, wants_multi), std::invalid_argument);

    api::Scenario wants_desc;
    wants_desc.sources = pg.inputs;
    wants_desc.t_end = 1e-9;
    wants_desc.steps = 10;
    wants_desc.config = opm::OpmOptions{};
    EXPECT_THROW(engine.run(multi, wants_desc), std::invalid_argument);

    EXPECT_THROW(engine.run(api::SystemHandle{}, wants_desc),
                 std::invalid_argument);
}

TEST(ApiEngine, MethodNamesAreStable) {
    EXPECT_STREQ(api::method_name(api::method_of(opm::OpmOptions{})), "opm");
    EXPECT_STREQ(api::method_name(api::method_of(opm::MultiTermOptions{})),
                 "multiterm");
    EXPECT_STREQ(api::method_name(api::method_of(opm::AdaptiveOptions{})),
                 "adaptive");
    EXPECT_STREQ(
        api::method_name(api::method_of(transient::TransientOptions{})),
        "transient");
    EXPECT_STREQ(
        api::method_name(api::method_of(transient::GrunwaldOptions{})),
        "grunwald");
}

// ---------------------------------------------------------------------------
// Lifecycle: remove_system invalidation and the warm-cache LRU tier.
// ---------------------------------------------------------------------------

TEST(ApiEngine, RemoveSystemInvalidatesHandleAndNeverReusesIds) {
    api::Engine engine;
    const api::SystemHandle a = engine.add_system(make_rc());
    const api::SystemHandle b = engine.add_system(make_rc());
    EXPECT_EQ(engine.num_systems(), 2u);

    api::Scenario sc;
    sc.sources = {wave::step(1.0)};
    sc.t_end = 5e-3;
    sc.steps = 64;
    const api::SolveResult before = engine.run(b, sc);

    engine.remove_system(a);
    EXPECT_EQ(engine.num_systems(), 1u);
    EXPECT_THROW(engine.run(a, sc), std::invalid_argument);
    EXPECT_THROW((void)engine.caches(a), std::invalid_argument);
    EXPECT_THROW(engine.remove_system(a), std::invalid_argument);

    // Slots are never reused: a later registration cannot alias the
    // removed handle, and the survivor still runs (bit-identically).
    const api::SystemHandle c = engine.add_system(make_rc());
    EXPECT_NE(c.id, a.id);
    const api::SolveResult after = engine.run(b, sc);
    expect_same_outputs(before.outputs, after.outputs);
}

TEST(ApiEngine, CacheCapacityPurgesTheColdestSystemOnly) {
    api::Engine engine;
    engine.set_cache_capacity(1);
    const api::SystemHandle a = engine.add_system(make_rc());
    const api::SystemHandle b = engine.add_system(make_rc());

    api::Scenario sc;
    sc.sources = {wave::step(1.0)};
    sc.t_end = 5e-3;
    sc.steps = 64;

    const api::SolveResult a_cold = engine.run(a, sc);
    EXPECT_GE(a_cold.diag.orderings, 1);
    // Running `b` makes it the most-recently-used handle; with capacity 1
    // that purges `a`'s warm caches.
    (void)engine.run(b, sc);
    const api::SolveResult b_warm = engine.run(b, sc);
    EXPECT_EQ(b_warm.diag.orderings, 0);  // b stayed warm (it is the MRU)
    const api::SolveResult a_again = engine.run(a, sc);
    EXPECT_GE(a_again.diag.orderings, 1);  // a was purged: re-analyzes

    // Purging never changes results, only warm-up cost.
    expect_same_outputs(a_cold.outputs, a_again.outputs);

    // Unlimited capacity restores plain warm behavior.
    engine.set_cache_capacity(0);
    (void)engine.run(a, sc);
    const api::SolveResult a_warm = engine.run(a, sc);
    EXPECT_EQ(a_warm.diag.orderings, 0);
}
