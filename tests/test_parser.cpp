/// \file test_parser.cpp
/// \brief Tests for the SPICE-style netlist parser.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mna.hpp"
#include "circuit/parser.hpp"
#include "opm/solver.hpp"

namespace circuit = opmsim::circuit;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace wave = opmsim::wave;

TEST(SpiceNumber, SuffixesParse) {
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("5"), 5.0);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("4.7k"), 4700.0);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("100n"), 100e-9);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("2meg"), 2e6);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("3m"), 3e-3);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("10pF"), 10e-12);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("1.5u"), 1.5e-6);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("-2.5f"), -2.5e-15);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("5V"), 5.0);
    EXPECT_DOUBLE_EQ(circuit::parse_spice_number("1T"), 1e12);
}

TEST(SpiceNumber, RejectsGarbage) {
    EXPECT_THROW(circuit::parse_spice_number("abc"), std::invalid_argument);
    EXPECT_THROW(circuit::parse_spice_number(""), std::invalid_argument);
}

TEST(Parser, RcDeckRoundTrip) {
    const auto deck = circuit::parse_netlist(R"(
* rc lowpass
V1 in 0 DC 1
R1 in out 1k
C1 out 0 1u
.tran 10u 5m
.end
)");
    EXPECT_EQ(deck.netlist.num_nodes(), 2);
    EXPECT_EQ(deck.inputs.size(), 1u);
    EXPECT_DOUBLE_EQ(deck.tran_step, 10e-6);
    EXPECT_DOUBLE_EQ(deck.tran_stop, 5e-3);
    EXPECT_DOUBLE_EQ(deck.inputs[0](1.0), 1.0);

    // Simulate the parsed deck end to end.
    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_mna(deck.netlist, &lay);
    sys.c = circuit::node_voltage_selector(lay, {deck.node("out")});
    const auto res = opm::simulate_opm(
        sys, deck.inputs, deck.tran_stop,
        static_cast<la::index_t>(deck.tran_stop / deck.tran_step));
    EXPECT_NEAR(res.outputs[0].at(1e-3), 1.0 - std::exp(-1.0), 2e-3);
}

TEST(Parser, TitleLineIsSkipped) {
    const auto deck = circuit::parse_netlist(
        "my fancy circuit title\nR1 a 0 50\nV1 a 0 DC 2\n.end\n");
    EXPECT_EQ(deck.netlist.title(), "my fancy circuit title");
    EXPECT_EQ(deck.netlist.num_nodes(), 1);
}

TEST(Parser, SourceShapes) {
    const auto deck = circuit::parse_netlist(R"(
V1 a 0 SIN(0 2 1k)
V2 b 0 PULSE(0 1 1u 1n 1n 5u 20u)
V3 c 0 PWL(0 0 1m 1 2m 0)
V4 d 0 EXP(0 1 0 1m)
I1 e 0 DC 3m
R1 a 0 1
R2 b 0 1
R3 c 0 1
R4 d 0 1
R5 e 0 1
)");
    ASSERT_EQ(deck.inputs.size(), 5u);
    // SIN: value at quarter period = amplitude.
    EXPECT_NEAR(deck.inputs[0](0.25e-3), 2.0, 1e-9);
    // PULSE: inside the flat top.
    EXPECT_NEAR(deck.inputs[1](3e-6), 1.0, 1e-9);
    EXPECT_NEAR(deck.inputs[1](21.5e-6 + 1.5e-6), 1.0, 1e-9);  // periodic
    // PWL: peak at 1 ms.
    EXPECT_NEAR(deck.inputs[2](1e-3), 1.0, 1e-12);
    EXPECT_NEAR(deck.inputs[2](1.5e-3), 0.5, 1e-12);
    // EXP: one time constant.
    EXPECT_NEAR(deck.inputs[3](1e-3), 1.0 - std::exp(-1.0), 1e-9);
    // DC current source.
    EXPECT_NEAR(deck.inputs[4](0.5), 3e-3, 1e-15);
}

TEST(Parser, CpeExtensionAndContinuation) {
    const auto deck = circuit::parse_netlist(
        "P1 a 0 CPE(2.2u\n+ 0.5)\nR1 a 0 10\nV1 a 0 DC 1\n");
    const auto& els = deck.netlist.elements();
    ASSERT_GE(els.size(), 1u);
    EXPECT_EQ(els[0].kind, circuit::ElementKind::cpe);
    EXPECT_DOUBLE_EQ(els[0].value, 2.2e-6);
    EXPECT_DOUBLE_EQ(els[0].alpha, 0.5);
}

TEST(Parser, VccsCard) {
    const auto deck = circuit::parse_netlist(
        "G1 out 0 in 0 0.01\nR1 in 0 1k\nR2 out 0 2k\nI1 in 0 DC 1m\n");
    EXPECT_EQ(deck.netlist.count(circuit::ElementKind::vccs), 1);
}

TEST(Parser, CommentsAndSemicolons) {
    const auto deck = circuit::parse_netlist(R"(
* full-line comment
R1 a 0 1k ; trailing comment
V1 a 0 DC 1  ; drive
)");
    EXPECT_EQ(deck.netlist.count(circuit::ElementKind::resistor), 1);
}

TEST(Parser, ErrorsCarryLineNumbers) {
    try {
        circuit::parse_netlist("R1 a 0 1k\nL1 b 0\n");
        FAIL() << "expected throw";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
            << e.what();
    }
    // Note the title line: a leading "Q1 ..." would be swallowed as title.
    EXPECT_THROW(circuit::parse_netlist("title\nQ1 a b c model\nR1 a 0 1\n"),
                 std::invalid_argument);
    EXPECT_THROW(circuit::parse_netlist(".tran 1 0.5\nR1 a 0 1\n"),
                 std::invalid_argument);
    EXPECT_THROW(circuit::parse_netlist(""), std::invalid_argument);
}

TEST(Parser, UnknownNodeLookupThrows) {
    const auto deck = circuit::parse_netlist("R1 a 0 1k\nV1 a 0 DC 1\n");
    EXPECT_EQ(deck.node("0"), 0);
    EXPECT_GT(deck.node("a"), 0);
    EXPECT_THROW(static_cast<void>(deck.node("nope")), std::invalid_argument);
}
