/// \file test_util.cpp
/// \brief Tests for the utility layer (tables, timers, checks) and the
///        Kronecker helpers.

#include <gtest/gtest.h>

#include <cmath>

#include "la/dense_lu.hpp"
#include "la/kron.hpp"
#include "util/check.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"

namespace la = opmsim::la;

TEST(TextTable, AlignsColumns) {
    opmsim::TextTable t;
    t.set_header({"Method", "CPU time"});
    t.add_row({"FFT-1", "6.09 ms"});
    t.add_row({"OPM", "3.56 ms"});
    const std::string s = t.str();
    // header, rule, two rows
    EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
    EXPECT_NE(s.find("Method   CPU time"), std::string::npos);
    EXPECT_NE(s.find("------"), std::string::npos);
}

TEST(TextTable, RejectsMismatchedArity) {
    opmsim::TextTable t;
    t.set_header({"a", "b"});
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
    opmsim::TextTable t2;
    EXPECT_THROW(t2.set_header({}), std::invalid_argument);
}

TEST(Format, Helpers) {
    EXPECT_EQ(opmsim::fmt_ms(3.56), "3.56 ms");
    EXPECT_EQ(opmsim::fmt_ms(2500.0), "2.5 s");
    EXPECT_EQ(opmsim::fmt_db(-29.23), "-29.2 dB");
    EXPECT_EQ(opmsim::fmt_g(0.000123456, 3), "0.000123");
}

TEST(Checks, RequireThrowsInvalidArgument) {
    EXPECT_THROW(
        [] { OPMSIM_REQUIRE(false, "user error"); }(), std::invalid_argument);
    EXPECT_THROW([] { OPMSIM_ENSURE(false, "bug"); }(), std::logic_error);
    EXPECT_NO_THROW([] { OPMSIM_REQUIRE(true, "fine"); }());
    try {
        OPMSIM_REQUIRE(1 == 2, "contains context");
        FAIL();
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("contains context"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("test_util.cpp"), std::string::npos);
    }
}

TEST(Checks, NumericalErrorIsARuntimeError) {
    const opmsim::numerical_error e("singular");
    const std::runtime_error& base = e;
    EXPECT_STREQ(base.what(), "singular");
}

TEST(Timer, IsMonotone) {
    opmsim::WallTimer t;
    const double a = t.elapsed_s();
    volatile double sink = 0;
    for (int i = 0; i < 100000; ++i)
        sink = sink + std::sqrt(static_cast<double>(i));
    const double b = t.elapsed_s();
    EXPECT_GE(b, a);
    t.reset();
    EXPECT_LT(t.elapsed_s(), b + 1.0);
    EXPECT_GE(t.elapsed_ms(), 0.0);
}

TEST(Kron, KnownSmallProduct) {
    la::Matrixd a{{1, 2}, {3, 4}};
    la::Matrixd b{{0, 1}, {1, 0}};
    const la::Matrixd k = la::kron(a, b);
    ASSERT_EQ(k.rows(), 4);
    EXPECT_DOUBLE_EQ(k(0, 1), 1.0);   // a00 * b01
    EXPECT_DOUBLE_EQ(k(0, 3), 2.0);   // a01 * b01
    EXPECT_DOUBLE_EQ(k(3, 0), 3.0);   // a10 * b10
    EXPECT_DOUBLE_EQ(k(2, 2), 0.0);
}

TEST(Kron, VecUnvecRoundTrip) {
    la::Matrixd x{{1, 2, 3}, {4, 5, 6}};
    const la::Vectord v = la::vec(x);
    ASSERT_EQ(v.size(), 6u);
    EXPECT_DOUBLE_EQ(v[0], 1.0);  // column-major stacking
    EXPECT_DOUBLE_EQ(v[1], 4.0);
    const la::Matrixd y = la::unvec(v, 2, 3);
    EXPECT_LT(la::max_abs_diff(x, y), 0.0 + 1e-300);
    EXPECT_THROW(la::unvec(v, 2, 2), std::invalid_argument);
}

TEST(Kron, VecIdentity) {
    // vec(A X B) = (B^T (x) A) vec(X) — the identity eq. (15) rests on.
    la::Matrixd a{{1, 2}, {0, 1}};
    la::Matrixd x{{3, 1}, {2, 4}};
    la::Matrixd b{{1, 1}, {0, 2}};
    const la::Vectord lhs = la::vec(a * x * b);
    const la::Vectord rhs = la::matvec(la::kron(b.transposed(), a), la::vec(x));
    for (std::size_t i = 0; i < lhs.size(); ++i) EXPECT_NEAR(lhs[i], rhs[i], 1e-13);
}

TEST(Dense, NormsAndTranspose) {
    la::Matrixd a{{3, -4}, {0, 0}};
    EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
    EXPECT_DOUBLE_EQ(a.frobenius(), 5.0);
    const la::Matrixd at = a.transposed();
    EXPECT_DOUBLE_EQ(at(1, 0), -4.0);
    EXPECT_DOUBLE_EQ(at(0, 0), 3.0);
}

TEST(Dense, ComplexLuSolves) {
    using c = la::cplx;
    la::Matrixz a(2, 2);
    a(0, 0) = c(1, 1);
    a(0, 1) = c(0, 2);
    a(1, 0) = c(3, 0);
    a(1, 1) = c(1, -1);
    la::Vectorz b = {c(1, 0), c(0, 1)};
    const la::Vectorz x = la::DenseLu<c>(a).solve(b);
    // verify A x = b
    for (int i = 0; i < 2; ++i) {
        c acc(0, 0);
        for (int j = 0; j < 2; ++j) acc += a(i, j) * x[static_cast<std::size_t>(j)];
        EXPECT_LT(std::abs(acc - b[static_cast<std::size_t>(i)]), 1e-13);
    }
}

TEST(Dense, DeterminantTracksPivotSign) {
    la::Matrixd a{{0, 1}, {1, 0}};  // det = -1, needs a row swap
    EXPECT_NEAR(la::DenseLu<double>(a).det(), -1.0, 1e-14);
    la::Matrixd b{{2, 0}, {0, 3}};
    EXPECT_NEAR(la::DenseLu<double>(b).det(), 6.0, 1e-14);
}

TEST(Dense, InverseRoundTrip) {
    la::Matrixd a{{4, 7, 2}, {3, 6, 1}, {2, 5, 3}};
    const la::Matrixd inv = la::inverse(a);
    EXPECT_LT(la::max_abs_diff(a * inv, la::Matrixd::identity(3)), 1e-12);
}
