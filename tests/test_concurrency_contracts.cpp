/// \file test_concurrency_contracts.cpp
/// \brief Regression layer for the locking contracts the thread-safety
///        annotations (util/annotations.hpp) encode statically.
///
/// Each test hammers one shared structure from reader and writer threads
/// at once.  On a pre-annotation tree these are genuine data races (the
/// stats getters read counters and container sizes with no lock; the
/// server's listener fd could be closed twice by stop() racing a
/// client-requested shutdown) — TSan CI fails there.  The assertions here
/// pin the sequential-consistency facts that hold once every access is
/// under the mutex: counter sums equal call counts regardless of
/// interleaving, and shutdown paths converge exactly once.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "fftx/convolve.hpp"
#include "la/factor_cache.hpp"
#include "la/sparse.hpp"
#include "opm/solve_cache.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace la = opmsim::la;
namespace fftx = opmsim::fftx;
namespace opm = opmsim::opm;
namespace svc = opmsim::svc;

namespace {

/// Small nonsingular matrix whose values depend on `variant`, so distinct
/// variants produce distinct value hashes over one shared pattern.
la::CscMatrix diag_bumped(la::index_t n, double variant) {
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t.add(i, i, 3.0 + variant + 0.1 * static_cast<double>(i));
        if (i + 1 < n) t.add(i, i + 1, -0.25);
    }
    return la::CscMatrix(t);
}

}  // namespace

TEST(ConcurrencyContracts, FactorCacheStatsGettersRaceInserts) {
    la::FactorCache cache;
    constexpr int kWriters = 3;
    constexpr int kPerWriter = 40;
    constexpr int kVariants = 5;  // more lookups than distinct pencils

    std::atomic<bool> done{false};
    // Readers poll every getter while the writers insert.  The VALUES they
    // observe are transient; what matters is that the reads are clean
    // (TSan) and never tear into something impossible (negative counters,
    // hits+misses exceeding the final total).
    std::thread reader([&] {
        while (!done.load(std::memory_order_relaxed)) {
            EXPECT_GE(cache.symbolic_hits(), 0);
            EXPECT_GE(cache.symbolic_misses(), 0);
            EXPECT_GE(cache.factor_hits(), 0);
            EXPECT_GE(cache.factor_misses(), 0);
            EXPECT_LE(cache.num_symbolic(), 1u);  // one shared pattern
            EXPECT_LE(cache.num_factors(), static_cast<std::size_t>(kVariants));
        }
    });

    std::vector<std::thread> writers;
    for (int w = 0; w < kWriters; ++w)
        writers.emplace_back([&cache, w] {
            for (int i = 0; i < kPerWriter; ++i) {
                const auto a = diag_bumped(6, static_cast<double>((w + i) % kVariants));
                const auto lu = cache.factor(a);
                ASSERT_NE(lu, nullptr);
                ASSERT_EQ(lu->size(), 6);
            }
        });
    for (auto& t : writers) t.join();
    done.store(true, std::memory_order_relaxed);
    reader.join();

    // Every lookup either hit or missed — the counters are exact because
    // each factor() call holds the mutex across its lookup+insert.  The
    // symbolic layer is only consulted on a numeric miss (a numeric hit
    // returns before it), so its lookups equal the numeric misses.
    const long total = static_cast<long>(kWriters) * kPerWriter;
    EXPECT_EQ(cache.factor_hits() + cache.factor_misses(), total);
    EXPECT_EQ(cache.symbolic_hits() + cache.symbolic_misses(),
              cache.factor_misses());
    EXPECT_EQ(cache.symbolic_misses(), 1);  // one shared pattern
    EXPECT_EQ(cache.num_symbolic(), 1u);
    EXPECT_EQ(cache.num_factors(), static_cast<std::size_t>(kVariants));
}

TEST(ConcurrencyContracts, ConvPlanCacheStatsGettersRaceGets) {
    fftx::ConvPlanCache cache;
    constexpr int kThreads = 3;
    constexpr int kPerThread = 60;
    constexpr int kKernels = 4;

    std::atomic<bool> done{false};
    std::thread reader([&] {
        while (!done.load(std::memory_order_relaxed)) {
            EXPECT_GE(cache.hits(), 0);
            EXPECT_GE(cache.misses(), 0);
            EXPECT_LE(cache.size(), static_cast<std::size_t>(kKernels));
        }
    });

    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w)
        workers.emplace_back([&cache, w] {
            for (int i = 0; i < kPerThread; ++i) {
                const int k = (w + i) % kKernels;
                std::vector<double> kernel(8, 1.0 + 0.5 * k);
                kernel[0] = 2.0 + k;
                const auto plan = cache.get(kernel.data(), kernel.size(), 64);
                ASSERT_NE(plan, nullptr);
            }
        });
    for (auto& t : workers) t.join();
    done.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(cache.hits() + cache.misses(),
              static_cast<long>(kThreads) * kPerThread);
    EXPECT_EQ(cache.size(), static_cast<std::size_t>(kKernels));
}

TEST(ConcurrencyContracts, SolveCachesSeriesMemoIsCoherentUnderContention) {
    // Serial reference rows first — concurrent hits must be bit-identical.
    opm::SolveCaches reference;
    const la::Vectord ref_series = reference.frac_diff_series(0.5, 32);
    const la::Vectord ref_weights = reference.grunwald_weights(0.5, 32);

    opm::SolveCaches shared;
    constexpr int kThreads = 4;
    constexpr int kPerThread = 50;
    std::atomic<int> mismatches{0};

    std::atomic<bool> done{false};
    std::thread reader([&] {
        while (!done.load(std::memory_order_relaxed)) {
            EXPECT_GE(shared.series_hits(), 0);
            EXPECT_GE(shared.series_misses(), 0);
        }
    });

    std::vector<std::thread> workers;
    for (int w = 0; w < kThreads; ++w)
        workers.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                const la::Vectord s = shared.frac_diff_series(0.5, 32);
                const la::Vectord g = shared.grunwald_weights(0.5, 32);
                if (s != ref_series || g != ref_weights)
                    mismatches.fetch_add(1, std::memory_order_relaxed);
            }
        });
    for (auto& t : workers) t.join();
    done.store(true, std::memory_order_relaxed);
    reader.join();

    EXPECT_EQ(mismatches.load(), 0);
    // 2 lookups per iteration; exactly 2 misses total (first compute of
    // each row), every other lookup hit the memo.
    const long total = 2L * kThreads * kPerThread;
    EXPECT_EQ(shared.series_hits() + shared.series_misses(), total);
    EXPECT_EQ(shared.series_misses(), 2);
}

TEST(ConcurrencyContracts, ServerStopRacesClientRequestedShutdown) {
    // stop() and a client-requested shutdown both tear the listener down.
    // Pre-annotation, the two paths could close the same listen fd twice
    // (closing an unrelated, freshly-reused descriptor the second time);
    // now the fd is published and retired under listener_mutex_, so any
    // interleaving converges to one close.  Hammer the race window.
    for (int round = 0; round < 10; ++round) {
        svc::ServerOptions opt;
        opt.tcp_port = 0;  // ephemeral loopback
        svc::Server server(opt);
        server.start();

        svc::Client client;
        client.connect_tcp(server.port());

        std::thread t1([&client] {
            try {
                client.shutdown_server();
            } catch (...) {
                // The server may already be gone mid-call; transport
                // errors are an accepted outcome of losing the race.
            }
        });
        std::thread t2([&server] { server.stop(); });
        t1.join();
        t2.join();
        // stop() is idempotent once the dust settles.
        server.stop();
    }
    SUCCEED();
}
