/// \file test_fast_history.cpp
/// \brief The fast history-convolution engine against the naive oracle:
///        irfft round trips, RealConvPlan linear convolution, HistoryEngine
///        backend equivalence, and end-to-end solver / Grünwald agreement.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "fftx/convolve.hpp"
#include "fftx/fft.hpp"
#include "opm/fast_history.hpp"
#include "opm/operational.hpp"
#include "opm/solver.hpp"
#include "transient/grunwald.hpp"

namespace fftx = opmsim::fftx;
namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

namespace {

la::Vectord random_vector(std::size_t n, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    la::Vectord v(n);
    for (auto& x : v) x = dist(gen);
    return v;
}

/// y[t] = sum_u a[u] b[t-u], the quadratic-time reference.
la::Vectord conv_naive(const la::Vectord& a, const la::Vectord& b) {
    la::Vectord y(a.size() + b.size() - 1, 0.0);
    for (std::size_t i = 0; i < a.size(); ++i)
        for (std::size_t j = 0; j < b.size(); ++j) y[i + j] += a[i] * b[j];
    return y;
}

/// The 3-state MIMO descriptor system from test_opm_solver.
opm::DenseDescriptorSystem mimo_system() {
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0.2, 0}, {0, 1, 0}, {0.1, 0, 1}};
    sys.a = la::Matrixd{{-2, 1, 0}, {0, -3, 1}, {0.5, 0, -1}};
    sys.b = la::Matrixd{{1, 0}, {0, 1}, {1, 1}};
    return sys;
}

} // namespace

TEST(Irfft, RoundTripsRealSignals) {
    // 100 exercises the Bluestein path, 128 the radix-2 path.
    for (const std::size_t n : {1u, 7u, 100u, 128u}) {
        const la::Vectord x = random_vector(n, 42 + static_cast<unsigned>(n));
        const std::vector<fftx::cplx> spec = fftx::fft_real(x);
        const la::Vectord back = fftx::irfft(spec);
        ASSERT_EQ(back.size(), n);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(back[i], x[i], 1e-12) << "n=" << n << " i=" << i;
    }
}

TEST(ConvolveReal, MatchesNaiveConvolution) {
    for (const auto& [na, nb] : std::vector<std::pair<std::size_t, std::size_t>>{
             {3, 5}, {17, 9}, {64, 64}, {100, 33}}) {
        const la::Vectord a = random_vector(na, 1);
        const la::Vectord b = random_vector(nb, 2);
        const la::Vectord ref = conv_naive(a, b);
        const la::Vectord got = fftx::convolve_real(a, b);
        ASSERT_EQ(got.size(), ref.size());
        for (std::size_t i = 0; i < ref.size(); ++i)
            EXPECT_NEAR(got[i], ref[i], 1e-11) << na << "x" << nb << " @" << i;
    }
}

TEST(RealConvPlan, AccumulatesWindowsAndPackedPairs) {
    const std::size_t nk = 31, nx = 20;
    const la::Vectord k = random_vector(nk, 3);
    const la::Vectord xa = random_vector(nx, 4);
    const la::Vectord xb = random_vector(nx, 5);
    const la::Vectord ra = conv_naive(xa, k);
    const la::Vectord rb = conv_naive(xb, k);

    fftx::RealConvPlan plan(k.data(), nk, nx);
    const std::size_t t0 = 8, nt = 12;

    // Single-channel windowed accumulate: starts from a nonzero y, so the
    // += semantics are exercised too.
    la::Vectord ya(nt, 1.0);
    plan.accumulate(xa.data(), nx, ya.data(), t0, nt);
    for (std::size_t t = 0; t < nt; ++t)
        EXPECT_NEAR(ya[t], 1.0 + ra[t0 + t], 1e-11) << t;

    // Packed two-channel variant against both references.
    la::Vectord pa(nt, 0.0), pb(nt, 0.0);
    plan.accumulate2(xa.data(), xb.data(), nx, pa.data(), pb.data(), t0, nt);
    for (std::size_t t = 0; t < nt; ++t) {
        EXPECT_NEAR(pa[t], ra[t0 + t], 1e-11) << t;
        EXPECT_NEAR(pb[t], rb[t0 + t], 1e-11) << t;
    }
}

TEST(HistoryEngine, BackendsMatchNaiveOracle) {
    const la::index_t n = 3;
    for (const la::index_t m : {1, 5, 63, 64, 100, 257}) {
        const la::Vectord coeffs = random_vector(static_cast<std::size_t>(m), 7);
        la::Matrixd cols(n, m);
        const la::Vectord vals =
            random_vector(static_cast<std::size_t>(n * m), 8);
        for (la::index_t j = 0; j < m; ++j)
            for (la::index_t i = 0; i < n; ++i)
                cols(i, j) = vals[static_cast<std::size_t>(j * n + i)];

        opm::HistoryEngine ref(coeffs, n, m, opm::HistoryBackend::naive);
        opm::HistoryEngine blk(coeffs, n, m, opm::HistoryBackend::blocked);
        opm::HistoryEngine fft(coeffs, n, m, opm::HistoryBackend::fft);
        la::Vectord hr, hb, hf;
        for (la::index_t j = 0; j < m; ++j) {
            ref.history(j, hr);
            blk.history(j, hb);
            fft.history(j, hf);
            for (la::index_t i = 0; i < n; ++i) {
                EXPECT_NEAR(hb[static_cast<std::size_t>(i)],
                            hr[static_cast<std::size_t>(i)], 1e-10)
                    << "blocked m=" << m << " j=" << j;
                EXPECT_NEAR(hf[static_cast<std::size_t>(i)],
                            hr[static_cast<std::size_t>(i)], 1e-10)
                    << "fft m=" << m << " j=" << j;
            }
            ref.push(j, cols.col(j));
            blk.push(j, cols.col(j));
            fft.push(j, cols.col(j));
        }
    }
}

TEST(HistoryEngine, RejectsOutOfOrderPushes) {
    opm::HistoryEngine eng({1.0, 0.5}, 1, 2, opm::HistoryBackend::naive);
    const double x = 1.0;
    EXPECT_THROW(eng.push(1, &x), std::invalid_argument);
}

TEST(ToeplitzApply, BackendsMatchNaive) {
    const la::index_t n = 4;
    for (const la::index_t m : {3, 64, 100, 256}) {
        opm::UpperToeplitz op;
        op.coeffs = random_vector(static_cast<std::size_t>(m), 11);
        la::Matrixd x(n, m);
        const la::Vectord vals =
            random_vector(static_cast<std::size_t>(n * m), 12);
        for (la::index_t j = 0; j < m; ++j)
            for (la::index_t i = 0; i < n; ++i)
                x(i, j) = vals[static_cast<std::size_t>(j * n + i)];

        const la::Matrixd ref =
            opm::toeplitz_apply(op, x, opm::HistoryBackend::naive);
        for (const auto be :
             {opm::HistoryBackend::blocked, opm::HistoryBackend::fft}) {
            const la::Matrixd got = opm::toeplitz_apply(op, x, be);
            EXPECT_LT(la::max_abs_diff(ref, got), 1e-10) << "m=" << m;
        }
    }
}

/// End-to-end: the fast backends reproduce the naive sweep across orders,
/// forms, and both power-of-two and non-power-of-two m.
class FastSweep : public ::testing::TestWithParam<double> {};

TEST_P(FastSweep, MatchesNaiveSweepBothForms) {
    const double alpha = GetParam();
    const auto sys = mimo_system();
    const std::vector<wave::Source> u = {wave::step(1.0), wave::sine(0.5, 1.0)};
    for (const auto form : {opm::OpmForm::differential, opm::OpmForm::integral}) {
        for (const la::index_t m : {100, 256}) {
            opm::OpmOptions base;
            base.alpha = alpha;
            base.form = form;
            base.path = opm::OpmPath::toeplitz;
            base.history = opm::HistoryBackend::naive;
            const auto ref = opm::simulate_opm(sys, u, 1.5, m, base);

            for (const auto be : {opm::HistoryBackend::blocked,
                                  opm::HistoryBackend::fft,
                                  opm::HistoryBackend::automatic}) {
                opm::OpmOptions opt = base;
                opt.history = be;
                const auto got = opm::simulate_opm(sys, u, 1.5, m, opt);
                EXPECT_LT(la::max_abs_diff(ref.coeffs, got.coeffs), 1e-10)
                    << "alpha=" << alpha << " m=" << m
                    << " form=" << static_cast<int>(form)
                    << " backend=" << static_cast<int>(be);
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Alphas, FastSweep,
                         ::testing::Values(0.3, 0.5, 1.0, 1.7));

TEST(FastSweep, GrunwaldBackendsMatchNaive) {
    const auto sys = mimo_system().to_sparse();
    const std::vector<wave::Source> u = {wave::step(1.0), wave::sine(0.5, 1.0)};
    for (const double alpha : {0.3, 0.5, 1.0, 1.7}) {
        for (const la::index_t m : {100, 256}) {
            opmsim::transient::GrunwaldOptions base;
            base.alpha = alpha;
            base.history = opm::HistoryBackend::naive;
            const auto ref =
                opmsim::transient::simulate_grunwald(sys, u, 1.5, m, base);
            for (const auto be : {opm::HistoryBackend::blocked,
                                  opm::HistoryBackend::fft,
                                  opm::HistoryBackend::automatic}) {
                auto opt = base;
                opt.history = be;
                const auto got =
                    opmsim::transient::simulate_grunwald(sys, u, 1.5, m, opt);
                EXPECT_LT(la::max_abs_diff(ref.states, got.states), 1e-10)
                    << "alpha=" << alpha << " m=" << m
                    << " backend=" << static_cast<int>(be);
            }
        }
    }
}
