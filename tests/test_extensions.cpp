/// \file test_extensions.cpp
/// \brief Tests for the extension modules: controlled sources and mutual
///        inductance in MNA, the Laguerre basis, AC analysis, and the
///        numerical Laplace-inversion oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "basis/laguerre.hpp"
#include "circuit/mna.hpp"
#include "circuit/tline.hpp"
#include "la/dense_lu.hpp"
#include "laplace/inversion.hpp"
#include "opm/mittag_leffler.hpp"
#include "opm/solver.hpp"
#include "transient/ac.hpp"

namespace basis = opmsim::basis;
namespace circuit = opmsim::circuit;
namespace la = opmsim::la;
namespace laplace = opmsim::laplace;
namespace opm = opmsim::opm;
namespace transient = opmsim::transient;
namespace wave = opmsim::wave;

namespace {

/// DC solve of an MNA system: x = -A^{-1} B u0.
la::Vectord dc_solve(const opm::DescriptorSystem& sys, double u0) {
    const la::Matrixd a = sys.a.to_dense();
    const la::Matrixd b = sys.b.to_dense();
    la::Vectord rhs(static_cast<std::size_t>(a.rows()));
    for (la::index_t i = 0; i < a.rows(); ++i)
        rhs[static_cast<std::size_t>(i)] = -b(i, 0) * u0;
    return la::solve_dense(a, rhs);
}

} // namespace

TEST(ControlledSources, VcvsAmplifier) {
    // Ideal x10 amplifier: E1 out 0 (in,0) gain 10, loads resistive.
    circuit::Netlist nl;
    const auto in = nl.node("in"), out = nl.node("out");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("Rin", in, 0, 1e6);
    nl.vcvs("E1", out, 0, in, 0, 10.0);
    nl.resistor("Rload", out, 0, 1e3);
    const auto sys = circuit::build_mna(nl);
    const la::Vectord x = dc_solve(sys, 0.5);
    EXPECT_NEAR(x[1], 5.0, 1e-9);  // v_out = 10 * 0.5
}

TEST(ControlledSources, CccsCurrentMirror) {
    // F1 mirrors the current of V1 (a 0 V ammeter) into a load resistor.
    circuit::Netlist nl;
    const auto a = nl.node("a"), b = nl.node("b"), out = nl.node("out");
    nl.vsource("Vdrive", a, 0, 0);
    nl.vsource("Vsense", a, b, 1);  // 0 V ammeter in series
    nl.resistor("R1", b, 0, 100.0);
    nl.cccs("F1", out, 0, "Vsense", 2.0);
    nl.resistor("Rload", out, 0, 50.0);
    const auto sys = circuit::build_mna(nl);
    // u = (1, 0): 1 V across 100 ohm -> 10 mA; mirrored x2 into 50 ohm
    // (injected INTO the node) -> v_out = -2*0.01*50 ... sign: current
    // into `out` raises its potential: v = +1.0 * sign of i_sense.
    const la::Matrixd ad = sys.a.to_dense();
    const la::Matrixd bd = sys.b.to_dense();
    la::Vectord rhs(static_cast<std::size_t>(ad.rows()), 0.0);
    for (la::index_t i = 0; i < ad.rows(); ++i) rhs[static_cast<std::size_t>(i)] = -bd(i, 0);
    const la::Vectord x = la::solve_dense(ad, rhs);
    // i(Vsense) flows a->b (drive pushes current through R1) = +10 mA with
    // our branch convention; the mirrored 20 mA into 50 ohm gives 1 V.
    EXPECT_NEAR(std::abs(x[2]), 1.0, 1e-9);
}

TEST(ControlledSources, CcvsTransresistance) {
    circuit::Netlist nl;
    const auto a = nl.node("a"), out = nl.node("out");
    nl.vsource("V1", a, 0, 0);
    nl.resistor("R1", a, 0, 200.0);
    nl.ccvs("H1", out, 0, "V1", 50.0);  // v_out = 50 * i(V1)
    nl.resistor("Rload", out, 0, 1e3);
    const auto sys = circuit::build_mna(nl);
    const la::Vectord x = dc_solve(sys, 1.0);
    // i(V1): 1 V into 200 ohm -> 5 mA through the source branch.
    EXPECT_NEAR(std::abs(x[1]), 0.25, 1e-9);  // |v_out| = 50 * 5 mA
}

TEST(ControlledSources, UnknownControlBranchThrows) {
    circuit::Netlist nl;
    nl.resistor("R1", 1, 0, 1.0);
    nl.cccs("F1", 1, 0, "Vmissing", 1.0);
    EXPECT_THROW(circuit::build_mna(nl), std::invalid_argument);
}

TEST(MutualInductance, CoupledBranchesStampSymmetrically) {
    circuit::Netlist nl;
    nl.vsource("V1", 1, 0, 0);
    nl.inductor("L1", 1, 0, 4e-9);
    nl.inductor("L2", 2, 0, 1e-9);
    nl.resistor("R2", 2, 0, 50.0);
    nl.mutual("K1", "L1", "L2", 0.5);
    circuit::MnaLayout lay;
    const auto sys = circuit::build_mna(nl, &lay);
    // M = 0.5 * sqrt(4n * 1n) = 1 nH, symmetric across the branch rows.
    const double m = 0.5 * std::sqrt(4e-9 * 1e-9);
    // branch order: V1, L1, L2 -> indices 2, 3, 4 (2 nodes first).
    EXPECT_DOUBLE_EQ(sys.e.coeff(3, 4), m);
    EXPECT_DOUBLE_EQ(sys.e.coeff(4, 3), m);
    EXPECT_DOUBLE_EQ(sys.e.coeff(3, 3), 4e-9);
}

TEST(MutualInductance, TransformerCouplesEnergy) {
    // 1:1 transformer (k = 0.999): secondary sees ~the primary drive.
    circuit::Netlist nl;
    const auto p = nl.node("p"), s = nl.node("s");
    nl.vsource("V1", p, 0, 0);
    nl.inductor("Lp", p, 0, 1e-6);
    nl.inductor("Ls", s, 0, 1e-6);
    nl.mutual("K1", "Lp", "Ls", 0.999);
    nl.resistor("Rload", s, 0, 1e3);
    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_mna(nl, &lay);
    sys.c = circuit::node_voltage_selector(lay, {s});
    const double f = 1e6;
    const auto res = opm::simulate_opm(sys, {wave::sine(1.0, f)}, 4e-6, 2048);
    // After start-up the secondary amplitude approaches k * primary.
    double peak = 0;
    for (double t = 2e-6; t < 4e-6; t += 1e-8)
        peak = std::max(peak, std::abs(res.outputs[0].at(t)));
    EXPECT_NEAR(peak, 0.999, 0.05);
}

TEST(MutualInductance, RejectsBadCoupling) {
    circuit::Netlist nl;
    EXPECT_THROW(nl.mutual("K1", "L1", "L2", 1.0), std::invalid_argument);
    EXPECT_THROW(nl.mutual("K1", "L1", "L1", 0.5), std::invalid_argument);
    circuit::Netlist nl2;
    nl2.inductor("L1", 1, 0, 1e-9);
    nl2.resistor("R1", 1, 0, 1.0);
    nl2.mutual("K1", "L1", "Lmissing", 0.5);
    EXPECT_THROW(circuit::build_mna(nl2), std::invalid_argument);
}

TEST(Laguerre, PolynomialsSatisfyRecurrence) {
    double l[4];
    basis::laguerre_all(3, 2.0, l);
    EXPECT_DOUBLE_EQ(l[0], 1.0);
    EXPECT_DOUBLE_EQ(l[1], -1.0);             // 1 - x
    EXPECT_DOUBLE_EQ(l[2], -1.0);             // (x^2 - 4x + 2)/2
    EXPECT_NEAR(l[3], -1.0 / 3.0, 1e-14);     // (-x^3 + 9x^2 - 18x + 6)/6
}

TEST(Laguerre, ProjectsDecayingExponentialCompactly) {
    // f(t) = e^{-3t} lies close to the span of the first few Laguerre
    // functions when sigma matches the decay scale.
    basis::LaguerreBasis b(4.0, 10, 6.0);
    const auto f = [](double t) { return std::exp(-3.0 * t); };
    const la::Vectord c = b.project(f);
    for (double t : {0.3, 1.0, 2.5})
        EXPECT_NEAR(b.synthesize(c, t), f(t), 2e-3) << t;
}

TEST(Laguerre, IntegrationMatrixIntegrates) {
    basis::LaguerreBasis b(6.0, 24, 4.0);
    // g = f' with f(t) = t e^{-t}; integral of g recovers f (f(0) = 0).
    const auto fp = [](double t) { return (1.0 - t) * std::exp(-t); };
    const la::Vectord cfp = b.project(fp);
    const la::Matrixd p = b.integration_matrix();
    la::Vectord integ(24, 0.0);
    for (la::index_t j = 0; j < 24; ++j)
        for (la::index_t i = 0; i < 24; ++i)
            integ[static_cast<std::size_t>(j)] += p(i, j) * cfp[static_cast<std::size_t>(i)];
    for (double t : {0.5, 1.5, 3.0})
        EXPECT_NEAR(b.synthesize(integ, t), t * std::exp(-t), 5e-3) << t;
}

TEST(AcAnalysis, RcPoleMagnitudeAndPhase) {
    // H(jw) = 1/(1 + jw RC): check -3 dB point and phase.
    opm::DenseDescriptorSystem sys;
    const double rc = 1e-3;
    sys.e = la::Matrixd{{rc}};
    sys.a = la::Matrixd{{-1.0}};
    sys.b = la::Matrixd{{1.0}};
    const double w0 = 1.0 / rc;
    const auto res = transient::ac_analysis(sys, 1.0, {w0 / 100.0, w0, w0 * 100.0});
    EXPECT_NEAR(res.magnitude(0, 0, 0), 1.0, 1e-3);
    EXPECT_NEAR(res.magnitude(1, 0, 0), 1.0 / std::sqrt(2.0), 1e-9);
    EXPECT_NEAR(res.phase(1, 0, 0), -std::numbers::pi / 4.0, 1e-9);
    EXPECT_NEAR(res.magnitude(2, 0, 0), 0.01, 1e-4);
}

TEST(AcAnalysis, FractionalSlopeIsMinusTwentyAlphaPerDecade) {
    // d^{1/2} x = -x + u: |H| ~ w^{-1/2} and phase -> -45 deg at high w.
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1.0}};
    sys.a = la::Matrixd{{-1.0}};
    sys.b = la::Matrixd{{1.0}};
    const auto sweep = transient::log_sweep(1e3, 1e5, 3);
    const auto res = transient::ac_analysis(sys, 0.5, sweep);
    const double slope_db =
        20.0 * std::log10(res.magnitude(2, 0, 0) / res.magnitude(0, 0, 0)) / 2.0;
    EXPECT_NEAR(slope_db, -10.0, 0.5);  // -20*alpha dB/dec
    EXPECT_NEAR(res.phase(2, 0, 0), -0.5 * std::numbers::pi / 2.0, 0.02);
}

TEST(AcAnalysis, TlineRollsOff) {
    const auto tl = circuit::make_fractional_tline();
    const auto sweep = transient::log_sweep(1e8, 1e11, 16);
    const auto res = transient::ac_analysis(tl, 0.5, sweep);
    // far-end voltage per near-end drive: passband ~ divider, then decay.
    EXPECT_GT(res.magnitude(0, 1, 0), 0.3);
    EXPECT_LT(res.magnitude(15, 1, 0), 0.05);
}

TEST(Laplace, StehfestInvertsExponential) {
    // F(s) = 1/(s+2) -> f(t) = e^{-2t}.  Stehfest at n = 14 delivers a few
    // significant digits in double precision (its well-known ceiling).
    const auto f = [](double s) { return 1.0 / (s + 2.0); };
    for (double t : {0.1, 0.5, 1.5})
        EXPECT_NEAR(laplace::stehfest_invert(f, t), std::exp(-2.0 * t),
                    5e-4 * std::exp(-2.0 * t))
            << t;
}

TEST(Laplace, TalbotInvertsOscillatory) {
    // F(s) = w/(s^2+w^2) -> sin(w t): Stehfest fails here, Talbot must not.
    const double w = 3.0;
    const laplace::LaplaceFn f = [w](laplace::cplx s) { return w / (s * s + w * w); };
    for (double t : {0.3, 1.0, 2.0})
        EXPECT_NEAR(laplace::talbot_invert(f, t), std::sin(w * t), 1e-6) << t;
}

TEST(Laplace, TalbotMatchesMittagLefflerForFractionalRelaxation) {
    // L[t^{a} E_{a,a+1}(-t^a)] = 1/(s(s^a+1)): the step response of
    // d^a x = -x + 1.
    const double alpha = 0.5;
    const laplace::LaplaceFn f = [alpha](laplace::cplx s) {
        return 1.0 / (s * (std::pow(s, alpha) + 1.0));
    };
    for (double t : {0.25, 1.0, 3.0})
        EXPECT_NEAR(laplace::talbot_invert(f, t),
                    opm::ml_step_response(alpha, -1.0, 1.0, t), 1e-7)
            << t;
}

TEST(Laplace, SystemTransformMatchesOpmOnTline) {
    // End-to-end: Talbot inversion of the t-line far-end step response vs
    // OPM time marching.
    const auto tl = circuit::make_fractional_tline();
    const auto fhat = laplace::system_transform(
        tl, circuit::kTlineAlpha,
        {laplace::step_transform(1.0), laplace::step_transform(0.0)},
        /*channel=*/1);
    const laplace::LaplaceFn fr = [&](laplace::cplx s) { return fhat(s); };

    opm::OpmOptions oo;
    oo.alpha = circuit::kTlineAlpha;
    const auto res = opm::simulate_opm(tl, {wave::step(1.0), wave::step(0.0)},
                                       2.7e-9, 2048, oo);
    for (double t : {0.5e-9, 1.5e-9, 2.5e-9})
        EXPECT_NEAR(res.outputs[1].at(t), laplace::talbot_invert(fr, t), 5e-3)
            << t;
}

TEST(Laplace, ValidatesArguments) {
    const auto f = [](double s) { return 1.0 / s; };
    EXPECT_THROW(laplace::stehfest_invert(f, -1.0), std::invalid_argument);
    EXPECT_THROW(laplace::stehfest_invert(f, 1.0, 13), std::invalid_argument);
    const laplace::LaplaceFn g = [](laplace::cplx s) { return 1.0 / s; };
    EXPECT_THROW(laplace::talbot_invert(g, 0.0), std::invalid_argument);
}
