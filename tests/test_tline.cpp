/// \file test_tline.cpp
/// \brief Tests for the fractional transmission-line generator (the Table I
///        substitute model): dimensions, stability, physics sanity.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/tline.hpp"
#include "la/eig.hpp"
#include "opm/solver.hpp"
#include "transient/grunwald.hpp"

namespace circuit = opmsim::circuit;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace wave = opmsim::wave;

TEST(Tline, DefaultMatchesPaperDimensions) {
    const auto sys = circuit::make_fractional_tline();
    EXPECT_EQ(sys.num_states(), 7);   // paper: 7 state variables
    EXPECT_EQ(sys.num_inputs(), 2);   // paper: 2 inputs
    EXPECT_EQ(sys.num_outputs(), 2);  // paper: 2 outputs
}

TEST(Tline, SectionCountScalesStates) {
    circuit::FractionalTlineSpec spec;
    for (la::index_t s : {1, 2, 3, 8}) {
        spec.sections = s;
        EXPECT_EQ(circuit::make_fractional_tline(spec).num_states(), 4 * s - 1);
    }
}

TEST(Tline, RejectsNonphysicalSpec) {
    circuit::FractionalTlineSpec spec;
    spec.sections = 0;
    EXPECT_THROW(circuit::make_fractional_tline(spec), std::invalid_argument);
    spec = {};
    spec.l = -1e-9;
    EXPECT_THROW(circuit::make_fractional_tline(spec), std::invalid_argument);
}

TEST(Tline, SatisfiesMatignonStabilityForHalfOrder) {
    // |arg(lambda)| > alpha*pi/2 for every pencil eigenvalue (E^{-1}A).
    const auto sys = circuit::make_fractional_tline();
    const auto eigs = la::generalized_eig_values(sys.e, sys.a);
    EXPECT_EQ(eigs.size(), 7u);
    EXPECT_TRUE(la::fractional_stable(eigs, circuit::kTlineAlpha, 1e-6));
}

TEST(Tline, StabilityHoldsAcrossSpecSweep) {
    circuit::FractionalTlineSpec spec;
    for (double k : {0.0, 1e-4, 1e-3}) {
        for (la::index_t s : {1, 2, 4}) {
            spec.k = k;
            spec.sections = s;
            const auto sys = circuit::make_fractional_tline(spec);
            const auto eigs = la::generalized_eig_values(sys.e, sys.a);
            EXPECT_TRUE(la::fractional_stable(eigs, 0.5, 0.0))
                << "k=" << k << " sections=" << s;
        }
    }
}

TEST(Tline, DcGainMatchesResistiveDivider) {
    // At DC (L and skin terms inert, CPE open): far-end voltage follows
    // the R-ladder divider from port 1 with the load to port 2 grounded.
    circuit::FractionalTlineSpec spec;  // defaults: 2 sections
    const auto sys = circuit::make_fractional_tline(spec);
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    const auto res = opm::simulate_opm(sys, {wave::step(1.0), wave::step(0.0)},
                                       400e-9, 4000, opt);
    const double expect =
        spec.r_load / (2.0 * spec.r + spec.r_load);  // 50/70 for defaults
    EXPECT_NEAR(res.outputs[1].at(390e-9), expect, 0.07);
}

TEST(Tline, QuiescentWithoutExcitation) {
    const auto sys = circuit::make_fractional_tline();
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    const auto res = opm::simulate_opm(sys, {wave::step(0.0), wave::step(0.0)},
                                       2.7e-9, 64, opt);
    EXPECT_LT(res.coeffs.max_abs(), 1e-14);
}

TEST(Tline, ReciprocalPortDriveReachesFarEnd) {
    // Driving port 2 must move the near-end current output, confirming the
    // 2-port coupling is wired both ways.
    const auto sys = circuit::make_fractional_tline();
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    const auto res = opm::simulate_opm(sys, {wave::step(0.0), wave::step(1.0)},
                                       2.7e-9, 128, opt);
    EXPECT_GT(res.outputs[0].max_abs(), 1e-4);  // i1 responds to u2
}

TEST(Tline, OpmAgreesWithGrunwaldReference) {
    // Independent fractional discretization agrees on the Table I setup.
    const auto sys = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {
        wave::smooth_pulse(1.0, 0.1e-9, 0.5e-9, 0.6e-9, 0.5e-9), wave::step(0.0)};
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    const auto o = opm::simulate_opm(sys, u, 2.7e-9, 512, opt);
    opmsim::transient::GrunwaldOptions gopt;
    gopt.alpha = 0.5;
    const auto g = opmsim::transient::simulate_grunwald(sys.to_sparse(), u,
                                                        2.7e-9, 512, gopt);
    for (std::size_t ch = 0; ch < 2; ++ch)
        EXPECT_LT(wave::relative_l2(g.outputs[ch], o.outputs[ch]), 2e-2) << ch;
}

TEST(Tline, SkinEffectTermAddsDamping) {
    // Raising K must reduce the ringing (peak overshoot) of the far-end
    // step response — basic physics of the skin-effect loss.
    circuit::FractionalTlineSpec lossless, lossy;
    lossless.k = 0.0;
    lossy.k = 5e-4;
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    const std::vector<wave::Source> u = {wave::step(1.0), wave::step(0.0)};
    const auto r0 =
        opm::simulate_opm(circuit::make_fractional_tline(lossless), u, 2.7e-9, 256, opt);
    const auto r1 =
        opm::simulate_opm(circuit::make_fractional_tline(lossy), u, 2.7e-9, 256, opt);
    EXPECT_LT(r1.outputs[1].max_abs(), r0.outputs[1].max_abs() + 1e-12);
}
