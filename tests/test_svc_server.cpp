/// \file test_svc_server.cpp
/// \brief End-to-end pins for the scenario daemon (svc/server.hpp).
///
/// The service stack's headline guarantee: a scenario submitted through
/// the socket produces a SolveResult BIT-IDENTICAL to running the same
/// Scenario on an in-process Engine — for every method, and whether the
/// submit ran alone or coalesced with other clients' submits into one
/// multi-RHS micro-batch.  On top of that sit the service-only behaviors:
/// fault containment across coalesced strangers, cache snapshots that let
/// a RESTARTED daemon answer its first request with zero orderings and
/// zero SoE refits, handle invalidation, and clean client-driven
/// shutdown.

#include <gtest/gtest.h>

#include <dirent.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <future>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"

namespace api = opmsim::api;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace svc = opmsim::svc;
namespace transient = opmsim::transient;
using opmsim::ErrorCode;

namespace {

/// Per-test unique Unix-socket path (tests may run concurrently).
std::string unique_socket(const char* tag) {
    static int counter = 0;
    return "/tmp/opmsim_test_" + std::to_string(::getpid()) + "_" + tag + "_" +
           std::to_string(counter++) + ".sock";
}

/// The shared fixture circuit: a small RC ladder driven at node 0.
opm::DescriptorSystem rc_ladder(la::index_t n) {
    la::Triplets e(n, n), a(n, n), b(n, 1);
    for (la::index_t i = 0; i < n; ++i) {
        e.add(i, i, 1e-9);
        double g = 0.0;
        if (i > 0) {
            a.add(i, i - 1, 1e-3);
            g += 1e-3;
        }
        if (i + 1 < n) {
            a.add(i, i + 1, 1e-3);
            g += 1e-3;
        }
        a.add(i, i, -(g + (i == 0 ? 1e-3 : 0.0)));
    }
    b.add(0, 0, 1e-3);
    opm::DescriptorSystem sys;
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);
    return sys;
}

opm::MultiTermSystem rlc_multiterm() {
    la::Triplets a2(3, 3), a0(3, 3), b0(3, 1);
    for (la::index_t i = 0; i < 3; ++i) {
        a2.add(i, i, 1e-12);
        double g = 0.0;
        if (i > 0) {
            a0.add(i, i - 1, -1e-3);
            g += 1e-3;
        }
        if (i + 1 < 3) {
            a0.add(i, i + 1, -1e-3);
            g += 1e-3;
        }
        a0.add(i, i, g + 1e-3);
    }
    b0.add(0, 0, 1e-3);
    opm::MultiTermSystem sys;
    sys.lhs.push_back({2.0, la::CscMatrix(a2)});
    sys.lhs.push_back({0.0, la::CscMatrix(a0)});
    sys.rhs.push_back({0.0, la::CscMatrix(b0)});
    return sys;
}

void expect_result_bits(const api::SolveResult& got,
                        const api::SolveResult& want) {
    EXPECT_EQ(got.status.code, want.status.code);
    EXPECT_EQ(static_cast<int>(got.method), static_cast<int>(want.method));
    ASSERT_EQ(got.outputs.size(), want.outputs.size());
    for (std::size_t c = 0; c < want.outputs.size(); ++c) {
        ASSERT_EQ(got.outputs[c].size(), want.outputs[c].size());
        for (std::size_t k = 0; k < want.outputs[c].size(); ++k) {
            EXPECT_EQ(got.outputs[c].times()[k], want.outputs[c].times()[k]);
            EXPECT_EQ(got.outputs[c].values()[k], want.outputs[c].values()[k]);
        }
    }
    ASSERT_EQ(got.states.rows(), want.states.rows());
    ASSERT_EQ(got.states.cols(), want.states.cols());
    for (la::index_t j = 0; j < want.states.cols(); ++j)
        for (la::index_t i = 0; i < want.states.rows(); ++i)
            EXPECT_EQ(got.states(i, j), want.states(i, j))
                << "state (" << i << "," << j << ")";
    EXPECT_EQ(got.grid, want.grid);
    EXPECT_EQ(got.steps, want.steps);
}

svc::WireScenario base_scenario() {
    svc::WireScenario sc;
    sc.sources = {svc::SourceSpec::step(1.0)};
    sc.t_end = 1e-5;
    sc.steps = 64;
    return sc;
}

} // namespace

// ----------------------------------------------------- loopback bit-identity

TEST(SvcServer, LoopbackBitIdenticalToInProcessForEveryMethod) {
    svc::ServerOptions opt;
    opt.socket_path.clear();
    opt.tcp_port = 0;  // ephemeral loopback TCP
    opt.batch_window = 0.0;
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_tcp(server.port());
    const std::uint64_t h = client.register_system(rc_ladder(8));

    api::Engine local;
    const api::SystemHandle lh = local.add_system(rc_ladder(8));

    opm::OpmOptions frac;
    frac.alpha = 0.5;
    frac.path = opm::OpmPath::toeplitz;
    transient::GrunwaldOptions gl;
    gl.alpha = 0.8;
    const api::MethodConfig configs[] = {
        opm::OpmOptions{}, frac, opm::AdaptiveOptions{},
        transient::TransientOptions{}, gl};
    for (const api::MethodConfig& c : configs) {
        svc::WireScenario sc = base_scenario();
        sc.config = c;
        const api::SolveResult remote = client.submit(h, sc);
        ASSERT_TRUE(remote.status.ok())
            << sc.to_scenario().method_name() << ": "
            << remote.status.message;
        const api::SolveResult in_process = local.run(lh, sc.to_scenario());
        expect_result_bits(remote, in_process);
    }

    client.close();
    server.stop();
}

TEST(SvcServer, MultiTermLoopbackBitIdenticalOverUnixSocket) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("mt");
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rlc_multiterm());

    api::Engine local;
    const api::SystemHandle lh = local.add_system(rlc_multiterm());

    svc::WireScenario sc = base_scenario();
    sc.config = opm::MultiTermOptions{};
    const api::SolveResult remote = client.submit(h, sc);
    ASSERT_TRUE(remote.status.ok()) << remote.status.message;
    expect_result_bits(remote, local.run(lh, sc.to_scenario()));

    client.close();
    server.stop();
}

// ------------------------------------------------- cross-client coalescing

TEST(SvcServer, CrossClientCoalescedBatchBitIdenticalToSerialRuns) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("coalesce");
    opt.batch_window = 0.25;  // generous: both clients' bursts must join
    opt.max_batch = 16;
    svc::Server server(opt);
    server.start();

    svc::Client alice, bob;
    alice.connect_unix(opt.socket_path);
    bob.connect_unix(opt.socket_path);
    const std::uint64_t h = alice.register_system(rc_ladder(8));

    // Batch-compatible scenarios (same grid + options, different sources):
    // the integer-order OPM recurrence path is bitwise-stable under
    // multi-RHS batching, so coalesced == serial must hold EXACTLY.
    std::vector<svc::WireScenario> scenarios;
    for (int k = 0; k < 6; ++k) {
        svc::WireScenario sc = base_scenario();
        sc.sources = {svc::SourceSpec::sine(1.0, 2e4 * (k + 1))};
        scenarios.push_back(sc);
    }

    std::vector<std::future<api::SolveResult>> futures;
    for (int k = 0; k < 6; ++k) {
        svc::Client& c = (k % 2 == 0) ? alice : bob;
        futures.push_back(c.submit_async(h, scenarios[k]));
    }
    std::vector<api::SolveResult> remote;
    for (auto& f : futures) remote.push_back(f.get());

    // Serial oracle: each scenario alone on a FRESH engine (cache state
    // never changes results, so cold-vs-warm is irrelevant to bit-identity).
    for (int k = 0; k < 6; ++k) {
        ASSERT_TRUE(remote[k].status.ok()) << remote[k].status.message;
        api::Engine local;
        const api::SystemHandle lh = local.add_system(rc_ladder(8));
        expect_result_bits(remote[k], local.run(lh, scenarios[k].to_scenario()));
    }

    // The six submits arrived within one window: they must have coalesced.
    const svc::ServiceStats stats = server.stats();
    EXPECT_GE(stats.largest_batch, 2u);
    EXPECT_GE(stats.coalesced, 2u);
    EXPECT_LT(stats.batches, 6u);

    alice.close();
    bob.close();
    server.stop();
}

TEST(SvcServer, PoisonedSiblingCannotTakeDownItsCoalescedBatchMates) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("poison");
    opt.batch_window = 0.25;
    svc::Server server(opt);
    server.start();

    svc::Client alice, bob;
    alice.connect_unix(opt.socket_path);
    bob.connect_unix(opt.socket_path);
    const std::uint64_t h = alice.register_system(rc_ladder(8));

    svc::WireScenario healthy = base_scenario();
    svc::WireScenario poisoned = base_scenario();
    // NaN amplitude passes structural validation but poisons the sweep;
    // PR 6 fault containment reruns the batch member-by-member so the
    // healthy strangers still complete.
    poisoned.sources = {
        svc::SourceSpec::sine(std::numeric_limits<double>::quiet_NaN(), 1e4)};

    auto fa = alice.submit_async(h, healthy);
    auto fp = bob.submit_async(h, poisoned);
    auto fb = bob.submit_async(h, healthy);

    const api::SolveResult ra = fa.get();
    const api::SolveResult rp = fp.get();
    const api::SolveResult rb = fb.get();

    EXPECT_FALSE(rp.status.ok());
    ASSERT_TRUE(ra.status.ok()) << ra.status.message;
    ASSERT_TRUE(rb.status.ok()) << rb.status.message;

    api::Engine local;
    const api::SystemHandle lh = local.add_system(rc_ladder(8));
    const api::SolveResult want = local.run(lh, healthy.to_scenario());
    expect_result_bits(ra, want);
    expect_result_bits(rb, want);

    alice.close();
    bob.close();
    server.stop();
}

// --------------------------------------------------- snapshot warm restart

TEST(SvcServer, SnapshotWarmStartsAFreshDaemonWithZeroOrderingsAndRefits) {
    const std::string snapshot =
        "/tmp/opmsim_test_" + std::to_string(::getpid()) + "_warm.snap";

    // A scenario that exercises BOTH expensive warm-up paths: a fill-
    // reducing ordering + symbolic analysis for the pencil, and an SoE
    // compression fit for the fractional history.
    svc::WireScenario sc = base_scenario();
    opm::OpmOptions frac;
    frac.alpha = 0.5;
    frac.path = opm::OpmPath::toeplitz;
    frac.history = opm::HistoryBackend::soe;
    sc.config = frac;

    api::SolveResult cold;
    {
        svc::ServerOptions opt;
        opt.socket_path = unique_socket("warmA");
        svc::Server server(opt);
        server.start();
        svc::Client client;
        client.connect_unix(opt.socket_path);
        const std::uint64_t h = client.register_system(rc_ladder(8));

        cold = client.submit(h, sc);
        ASSERT_TRUE(cold.status.ok()) << cold.status.message;
        EXPECT_GE(cold.diag.orderings, 1);
        EXPECT_GE(cold.diag.soe_fits, 1);

        client.save_caches(h, snapshot);
        client.shutdown_server();
        server.wait_for_shutdown();
        server.stop();
    }

    // A FRESH daemon (new Engine, empty caches) that loads the snapshot
    // must serve its very first request entirely from the warm caches.
    {
        svc::ServerOptions opt;
        opt.socket_path = unique_socket("warmB");
        svc::Server server(opt);
        server.start();
        svc::Client client;
        client.connect_unix(opt.socket_path);
        const std::uint64_t h = client.register_system(rc_ladder(8));
        client.load_caches(h, snapshot);

        const api::SolveResult warm = client.submit(h, sc);
        ASSERT_TRUE(warm.status.ok()) << warm.status.message;
        EXPECT_EQ(warm.diag.orderings, 0);
        EXPECT_EQ(warm.diag.soe_fits, 0);
        expect_result_bits(warm, cold);

        client.close();
        server.stop();
    }
    std::remove(snapshot.c_str());
}

// ----------------------------------------------- lifecycle + clean shutdown

TEST(SvcServer, RemovedHandleFailsAsDataAndLoadErrorsAreReported) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("lifecycle");
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(4));

    client.remove_system(h);
    const api::SolveResult res = client.submit(h, base_scenario());
    EXPECT_EQ(res.status.code, ErrorCode::invalid_scenario);

    // Control-path failures arrive as error frames -> solver_error.
    const std::uint64_t h2 = client.register_system(rc_ladder(4));
    EXPECT_THROW(client.load_caches(h2, "/nonexistent/opmsim.snap"),
                 opmsim::solver_error);
    // The connection survives both failures.
    client.ping();

    client.close();
    server.stop();
}

// ------------------------------------------- stats & lifecycle under load

TEST(SvcServer, StatsAndWaitForShutdownAreSafeUnderConcurrentClients) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("concurrent");
    svc::Server server(opt);
    server.start();

    std::uint64_t handle = 0;
    {
        svc::Client setup;
        setup.connect_unix(opt.socket_path);
        handle = setup.register_system(rc_ladder(8));
        setup.close();
    }

    // A thread parked in wait_for_shutdown() (the daemon main's idle
    // loop), a thread hammering stats(), and three client threads
    // submitting concurrently — everything must stay data-race free
    // (this test runs under TSan in CI) and the counters must add up.
    std::thread waiter([&server] { server.wait_for_shutdown(); });
    std::atomic<bool> polling{true};
    std::thread poller([&server, &polling] {
        while (polling.load()) {
            const svc::ServiceStats s = server.stats();
            EXPECT_LE(s.batches, s.requests);
        }
    });

    constexpr int kClients = 3, kSubmits = 4;
    std::vector<std::thread> clients;
    for (int c = 0; c < kClients; ++c)
        clients.emplace_back([&opt, handle] {
            svc::Client client;
            client.connect_unix(opt.socket_path);
            for (int k = 0; k < kSubmits; ++k) {
                const api::SolveResult res =
                    client.submit(handle, base_scenario());
                EXPECT_TRUE(res.status.ok()) << res.status.message;
            }
            client.close();
        });
    for (std::thread& t : clients) t.join();
    polling.store(false);
    poller.join();

    EXPECT_EQ(server.stats().requests,
              static_cast<std::uint64_t>(kClients * kSubmits));

    svc::Client last;
    last.connect_unix(opt.socket_path);
    last.shutdown_server();
    waiter.join();  // wait_for_shutdown() saw the client-driven shutdown
    last.close();
    server.stop();
}

namespace {

/// Open descriptors of this process — the fd-leak oracle for failed
/// start() paths.
int count_open_fds() {
    int n = 0;
    DIR* d = ::opendir("/proc/self/fd");
    if (d == nullptr) return -1;
    while (::readdir(d) != nullptr) ++n;
    ::closedir(d);
    return n;
}

} // namespace

TEST(SvcServer, StartFailuresAreCleanAndLeakNeitherFdsNorThreads) {
    // Bind conflict: a second daemon on an already-taken TCP port.
    svc::ServerOptions taken;
    taken.socket_path.clear();
    taken.tcp_port = 0;
    svc::Server first(taken);
    first.start();

    svc::ServerOptions conflict;
    conflict.socket_path.clear();
    conflict.tcp_port = first.port();
    svc::Server second(conflict);
    const int fds_before = count_open_fds();
    try {
        second.start();
        FAIL() << "start() on a taken port must throw";
    } catch (const opmsim::solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::internal_error);
    }
    EXPECT_EQ(count_open_fds(), fds_before);  // no leaked socket fd
    first.stop();

    // Unreachable socket path: bind fails before any thread spawns.
    svc::ServerOptions bad;
    bad.socket_path = "/nonexistent_opmsim_dir/daemon.sock";
    svc::Server broken(bad);
    const int fds_before2 = count_open_fds();
    try {
        broken.start();
        FAIL() << "start() on a bad socket path must throw";
    } catch (const opmsim::solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::internal_error);
    }
    EXPECT_EQ(count_open_fds(), fds_before2);

    // Failed starts leave the process fully serviceable: a fresh daemon
    // on a sane endpoint starts and serves.
    svc::ServerOptions good;
    good.socket_path = unique_socket("afterfail");
    svc::Server healthy(good);
    healthy.start();
    svc::Client client;
    client.connect_unix(good.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(4));
    EXPECT_TRUE(client.submit(h, base_scenario()).status.ok());
    client.close();
    healthy.stop();
}

TEST(SvcServer, ClientFrameCapDropsOversizedRepliesAsTransportFailure) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("framecap");
    svc::Server server(opt);
    server.start();

    // A 64-byte reply cap: the handshake and the register ack fit, but a
    // solve result cannot — the client must sever the connection rather
    // than trust the oversized length field.
    svc::ClientOptions copt;
    copt.max_frame_bytes = 64;
    svc::Client client(copt);
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    const api::SolveResult res = client.submit(h, base_scenario());
    EXPECT_EQ(res.status.code, ErrorCode::internal_error);
    client.close();

    // The daemon shrugs off the severed connection.
    svc::Client normal;
    normal.connect_unix(opt.socket_path);
    EXPECT_TRUE(normal.submit(h, base_scenario()).status.ok());
    normal.close();
    server.stop();
}

TEST(SvcServer, ClientDrivenShutdownIsClean) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("shutdown");
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    client.ping();
    client.shutdown_server();  // server acks, then stops dispatching
    server.wait_for_shutdown();
    server.stop();
    client.close();

    // The socket file is gone: a second daemon can bind the same path.
    svc::Server second(opt);
    second.start();
    svc::Client again;
    again.connect_unix(opt.socket_path);
    again.ping();
    again.close();
    second.stop();
}
