/// \file test_fftx.cpp
/// \brief Tests for the FFT substrate (radix-2 + Bluestein).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fftx/fft.hpp"

using opmsim::fftx::cplx;

namespace {

std::vector<cplx> test_signal(std::size_t n, unsigned seed) {
    std::vector<cplx> x(n);
    unsigned s = seed;
    for (auto& v : x) {
        s = s * 1664525u + 1013904223u;
        const double re = static_cast<double>(s % 2000) / 1000.0 - 1.0;
        s = s * 1664525u + 1013904223u;
        const double im = static_cast<double>(s % 2000) / 1000.0 - 1.0;
        v = cplx(re, im);
    }
    return x;
}

double max_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

} // namespace

TEST(Fft, PowerOfTwoHelpers) {
    using opmsim::fftx::is_pow2;
    using opmsim::fftx::next_pow2;
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(100));
    EXPECT_EQ(next_pow2(100), 128u);
    EXPECT_EQ(next_pow2(128), 128u);
    EXPECT_EQ(next_pow2(1), 1u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
    std::vector<cplx> x(8, cplx(0, 0));
    x[0] = cplx(1, 0);
    opmsim::fftx::fft(x);
    for (const auto& v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-14);
        EXPECT_NEAR(v.imag(), 0.0, 1e-14);
    }
}

TEST(Fft, DcGivesSingleBin) {
    std::vector<cplx> x(16, cplx(2.5, 0));
    opmsim::fftx::fft(x);
    EXPECT_NEAR(x[0].real(), 40.0, 1e-12);
    for (std::size_t k = 1; k < 16; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInRightBin) {
    const std::size_t n = 32;
    std::vector<cplx> x(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double t = 2.0 * std::numbers::pi * 5.0 * static_cast<double>(k) /
                         static_cast<double>(n);
        x[k] = cplx(std::cos(t), 0.0);
    }
    opmsim::fftx::fft(x);
    EXPECT_NEAR(std::abs(x[5]), static_cast<double>(n) / 2.0, 1e-10);
    EXPECT_NEAR(std::abs(x[n - 5]), static_cast<double>(n) / 2.0, 1e-10);
    EXPECT_NEAR(std::abs(x[3]), 0.0, 1e-10);
}

/// Round-trip and naive-DFT agreement across power-of-two and Bluestein
/// sizes.
class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
    const std::size_t n = GetParam();
    const std::vector<cplx> x = test_signal(n, 42);
    std::vector<cplx> fast = x;
    opmsim::fftx::fft(fast);
    const std::vector<cplx> ref = opmsim::fftx::dft_naive(x);
    EXPECT_LT(max_diff(fast, ref), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, RoundTripIsIdentity) {
    const std::size_t n = GetParam();
    const std::vector<cplx> x = test_signal(n, 7);
    std::vector<cplx> y = x;
    opmsim::fftx::fft(y);
    opmsim::fftx::ifft(y);
    EXPECT_LT(max_diff(x, y), 1e-11 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalHolds) {
    const std::size_t n = GetParam();
    const std::vector<cplx> x = test_signal(n, 99);
    std::vector<cplx> f = x;
    opmsim::fftx::fft(f);
    double et = 0, ef = 0;
    for (const auto& v : x) et += std::norm(v);
    for (const auto& v : f) ef += std::norm(v);
    EXPECT_NEAR(ef, et * static_cast<double>(n), 1e-9 * et * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(2, 4, 8, 64, 256,   // radix-2
                                           3, 5, 7, 12, 100, 127, 360));  // Bluestein

TEST(Fft, LinearityProperty) {
    const std::size_t n = 100;
    const auto x = test_signal(n, 1);
    const auto y = test_signal(n, 2);
    std::vector<cplx> xy(n);
    for (std::size_t i = 0; i < n; ++i) xy[i] = 2.0 * x[i] + cplx(0, 1) * y[i];
    auto fx = x, fy = y, fxy = xy;
    opmsim::fftx::fft(fx);
    opmsim::fftx::fft(fy);
    opmsim::fftx::fft(fxy);
    double m = 0;
    for (std::size_t i = 0; i < n; ++i)
        m = std::max(m, std::abs(fxy[i] - (2.0 * fx[i] + cplx(0, 1) * fy[i])));
    EXPECT_LT(m, 1e-10 * static_cast<double>(n));
}

TEST(Fft, RealSignalHasConjugateSymmetry) {
    std::vector<double> x(100);
    for (std::size_t k = 0; k < x.size(); ++k)
        x[k] = std::sin(0.3 * static_cast<double>(k)) + 0.2 * static_cast<double>(k % 7);
    const auto f = opmsim::fftx::fft_real(x);
    for (std::size_t k = 1; k < x.size(); ++k)
        EXPECT_LT(std::abs(f[k] - std::conj(f[x.size() - k])), 1e-9);
}

/// The fused radix-4 production kernel against the plain radix-2
/// reference, forward and (unnormalized) inverse, across 4^k sizes (all
/// stages fused), 2·4^k sizes (one radix-2 opening stage), and — via the
/// Bluestein wrapper exercised by fft() on non-power-of-two sizes — the
/// naive-DFT suite above.
class Radix4Sizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Radix4Sizes, MatchesRadix2Kernel) {
    const std::size_t n = GetParam();
    const std::vector<cplx> x = test_signal(n, 1234);
    for (const int sign : {-1, +1}) {
        std::vector<cplx> r4 = x;
        std::vector<cplx> r2 = x;
        if (sign < 0)
            opmsim::fftx::fft(r4);  // production = fused radix-4
        else
            opmsim::fftx::ifft_unnormalized(r4);
        opmsim::fftx::fft_pow2_radix2(r2, sign);
        EXPECT_LT(max_diff(r4, r2), 1e-12 * static_cast<double>(n))
            << "n=" << n << " sign=" << sign;
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Radix4Sizes,
                         ::testing::Values(4, 16, 64, 256, 1024, 4096,  // 4^k
                                           2, 8, 32, 128, 512, 2048));  // 2*4^k

TEST(Fft, Radix2ReferenceRejectsNonPowerOfTwo) {
    std::vector<cplx> x(12, cplx(1.0, 0.0));
    EXPECT_THROW(opmsim::fftx::fft_pow2_radix2(x, -1), std::invalid_argument);
}

TEST(Fft, IrfftRfftRoundTripProperty) {
    // irfft(rfft(x)) == x across radix-4, radix-2-opening, and Bluestein
    // sizes, on signals with decade-scale dynamic range.
    unsigned s = 91;
    for (const std::size_t n : {1u, 2u, 5u, 12u, 27u, 64u, 100u, 127u, 256u,
                                360u, 500u, 512u}) {
        std::vector<double> x(n);
        for (auto& v : x) {
            s = s * 1664525u + 1013904223u;
            const double mag = static_cast<double>(s % 2000) / 1000.0 - 1.0;
            s = s * 1664525u + 1013904223u;
            v = mag * std::pow(10.0, static_cast<double>(s % 4));
        }
        const auto back = opmsim::fftx::irfft(opmsim::fftx::fft_real(x));
        ASSERT_EQ(back.size(), n);
        double scale = 0;
        for (const double v : x) scale = std::max(scale, std::abs(v));
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_NEAR(back[i], x[i], 1e-12 * scale * static_cast<double>(n))
                << "n=" << n << " i=" << i;
    }
}

TEST(Fft, SizeOneIsIdentity) {
    std::vector<cplx> x = {cplx(3.0, -2.0)};
    opmsim::fftx::fft(x);
    EXPECT_NEAR(x[0].real(), 3.0, 1e-15);
    opmsim::fftx::ifft(x);
    EXPECT_NEAR(x[0].real(), 3.0, 1e-15);
}
