/// \file test_fftx.cpp
/// \brief Tests for the FFT substrate (radix-2 + Bluestein).

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "fftx/fft.hpp"

using opmsim::fftx::cplx;

namespace {

std::vector<cplx> test_signal(std::size_t n, unsigned seed) {
    std::vector<cplx> x(n);
    unsigned s = seed;
    for (auto& v : x) {
        s = s * 1664525u + 1013904223u;
        const double re = static_cast<double>(s % 2000) / 1000.0 - 1.0;
        s = s * 1664525u + 1013904223u;
        const double im = static_cast<double>(s % 2000) / 1000.0 - 1.0;
        v = cplx(re, im);
    }
    return x;
}

double max_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
    double m = 0;
    for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

} // namespace

TEST(Fft, PowerOfTwoHelpers) {
    using opmsim::fftx::is_pow2;
    using opmsim::fftx::next_pow2;
    EXPECT_TRUE(is_pow2(1));
    EXPECT_TRUE(is_pow2(64));
    EXPECT_FALSE(is_pow2(0));
    EXPECT_FALSE(is_pow2(100));
    EXPECT_EQ(next_pow2(100), 128u);
    EXPECT_EQ(next_pow2(128), 128u);
    EXPECT_EQ(next_pow2(1), 1u);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
    std::vector<cplx> x(8, cplx(0, 0));
    x[0] = cplx(1, 0);
    opmsim::fftx::fft(x);
    for (const auto& v : x) {
        EXPECT_NEAR(v.real(), 1.0, 1e-14);
        EXPECT_NEAR(v.imag(), 0.0, 1e-14);
    }
}

TEST(Fft, DcGivesSingleBin) {
    std::vector<cplx> x(16, cplx(2.5, 0));
    opmsim::fftx::fft(x);
    EXPECT_NEAR(x[0].real(), 40.0, 1e-12);
    for (std::size_t k = 1; k < 16; ++k) EXPECT_NEAR(std::abs(x[k]), 0.0, 1e-12);
}

TEST(Fft, SingleToneLandsInRightBin) {
    const std::size_t n = 32;
    std::vector<cplx> x(n);
    for (std::size_t k = 0; k < n; ++k) {
        const double t = 2.0 * std::numbers::pi * 5.0 * static_cast<double>(k) /
                         static_cast<double>(n);
        x[k] = cplx(std::cos(t), 0.0);
    }
    opmsim::fftx::fft(x);
    EXPECT_NEAR(std::abs(x[5]), static_cast<double>(n) / 2.0, 1e-10);
    EXPECT_NEAR(std::abs(x[n - 5]), static_cast<double>(n) / 2.0, 1e-10);
    EXPECT_NEAR(std::abs(x[3]), 0.0, 1e-10);
}

/// Round-trip and naive-DFT agreement across power-of-two and Bluestein
/// sizes.
class FftSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FftSizes, MatchesNaiveDft) {
    const std::size_t n = GetParam();
    const std::vector<cplx> x = test_signal(n, 42);
    std::vector<cplx> fast = x;
    opmsim::fftx::fft(fast);
    const std::vector<cplx> ref = opmsim::fftx::dft_naive(x);
    EXPECT_LT(max_diff(fast, ref), 1e-9 * static_cast<double>(n));
}

TEST_P(FftSizes, RoundTripIsIdentity) {
    const std::size_t n = GetParam();
    const std::vector<cplx> x = test_signal(n, 7);
    std::vector<cplx> y = x;
    opmsim::fftx::fft(y);
    opmsim::fftx::ifft(y);
    EXPECT_LT(max_diff(x, y), 1e-11 * static_cast<double>(n));
}

TEST_P(FftSizes, ParsevalHolds) {
    const std::size_t n = GetParam();
    const std::vector<cplx> x = test_signal(n, 99);
    std::vector<cplx> f = x;
    opmsim::fftx::fft(f);
    double et = 0, ef = 0;
    for (const auto& v : x) et += std::norm(v);
    for (const auto& v : f) ef += std::norm(v);
    EXPECT_NEAR(ef, et * static_cast<double>(n), 1e-9 * et * static_cast<double>(n));
}

INSTANTIATE_TEST_SUITE_P(Sizes, FftSizes,
                         ::testing::Values(2, 4, 8, 64, 256,   // radix-2
                                           3, 5, 7, 12, 100, 127, 360));  // Bluestein

TEST(Fft, LinearityProperty) {
    const std::size_t n = 100;
    const auto x = test_signal(n, 1);
    const auto y = test_signal(n, 2);
    std::vector<cplx> xy(n);
    for (std::size_t i = 0; i < n; ++i) xy[i] = 2.0 * x[i] + cplx(0, 1) * y[i];
    auto fx = x, fy = y, fxy = xy;
    opmsim::fftx::fft(fx);
    opmsim::fftx::fft(fy);
    opmsim::fftx::fft(fxy);
    double m = 0;
    for (std::size_t i = 0; i < n; ++i)
        m = std::max(m, std::abs(fxy[i] - (2.0 * fx[i] + cplx(0, 1) * fy[i])));
    EXPECT_LT(m, 1e-10 * static_cast<double>(n));
}

TEST(Fft, RealSignalHasConjugateSymmetry) {
    std::vector<double> x(100);
    for (std::size_t k = 0; k < x.size(); ++k)
        x[k] = std::sin(0.3 * static_cast<double>(k)) + 0.2 * static_cast<double>(k % 7);
    const auto f = opmsim::fftx::fft_real(x);
    for (std::size_t k = 1; k < x.size(); ++k)
        EXPECT_LT(std::abs(f[k] - std::conj(f[x.size() - k])), 1e-9);
}

TEST(Fft, SizeOneIsIdentity) {
    std::vector<cplx> x = {cplx(3.0, -2.0)};
    opmsim::fftx::fft(x);
    EXPECT_NEAR(x[0].real(), 3.0, 1e-15);
    opmsim::fftx::ifft(x);
    EXPECT_NEAR(x[0].real(), 3.0, 1e-15);
}
