#!/usr/bin/env python3
"""Self-test for ci/lint_invariants.py: prove every rule actually fires.

A linter that silently stops matching (because a refactor moved the shape
it greps for) is worse than no linter — it keeps reporting green.  This
test copies the real tree into a scratch directory, injects ONE synthetic
violation per rule, and asserts the rule reports it; plus the control:
the pristine copy must pass.

Runs under plain python3 (no pytest):  python3 tests/test_lint_invariants.py
"""

from __future__ import annotations

import pathlib
import re
import shutil
import sys
import tempfile

REPO = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "ci"))

import lint_invariants  # noqa: E402  (needs the sys.path insert above)

# Only what the linter reads — keeps each scratch copy small.
LINT_INPUTS = [
    "src/util/status.hpp",
    "src/util/fault_inject.hpp",
    "src/opm/diagnostics.hpp",
    "src/api/registry.cpp",
    "src/svc/wire.cpp",
    "docs/robustness.md",
    "ci/diagnostics_fields.txt",
] + [f"src/{rel}" for rel in lint_invariants.SWEEP_FILES] \
  + [p.relative_to(REPO).as_posix() for p in sorted((REPO / "tests").glob("*.cpp"))]


def make_tree(tmp: pathlib.Path) -> pathlib.Path:
    root = tmp / "repo"
    for rel in LINT_INPUTS:
        dst = root / rel
        dst.parent.mkdir(parents=True, exist_ok=True)
        shutil.copyfile(REPO / rel, dst)
    return root


def edit(root: pathlib.Path, rel: str, pattern: str, replacement: str) -> None:
    path = root / rel
    text = path.read_text(encoding="utf-8")
    new = re.sub(pattern, replacement, text, count=1)
    if new == text:
        raise AssertionError(f"self-test injection no-op: /{pattern}/ "
                             f"did not match in {rel}")
    path.write_text(new, encoding="utf-8")


failures: list[str] = []


def check(label: str, ok: bool, detail: str = "") -> None:
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {label}" + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        failures.append(label)


def expect_fires(label: str, rule_prefix: str,
                 inject, *, expect_substr: str = "") -> None:
    """Copy the tree, apply `inject(root)`, assert the rule reports it."""
    with tempfile.TemporaryDirectory() as tmp:
        root = make_tree(pathlib.Path(tmp))
        inject(root)
        findings = lint_invariants.run(root)
        hits = [f for f in findings if f.startswith(rule_prefix)
                and expect_substr in f]
        others = [f for f in findings if not f.startswith(rule_prefix)]
        check(label, bool(hits),
              f"expected a '{rule_prefix}' finding"
              + (f" containing '{expect_substr}'" if expect_substr else "")
              + f"; got {findings!r}")
        # The injection must not shotgun unrelated rules (a noisy linter
        # trains people to ignore it).  diagnostics edits legitimately
        # cascade into their own rule only.
        check(f"{label} (no collateral findings)", not others,
              f"unrelated findings: {others!r}")


print("lint_invariants self-test")

# Control: the pristine tree passes.
with tempfile.TemporaryDirectory() as tmp:
    root = make_tree(pathlib.Path(tmp))
    findings = lint_invariants.run(root)
    check("pristine tree passes", not findings, repr(findings))

# Rule 1a: a new ErrorCode enumerator with no name case / docs row.
expect_fires(
    "error-code-wire fires on an undocumented enumerator",
    "error-code-wire",
    lambda root: edit(root, "src/util/status.hpp",
                      r"\binternal_error,", "internal_error,\n    solver_haunted,"),
    expect_substr="solver_haunted")

# Rule 1b: decode_status() bound left behind the last enumerator.
expect_fires(
    "error-code-wire fires on a stale wire decode bound",
    "error-code-wire",
    lambda root: edit(root, "src/svc/wire.cpp",
                      r'checked_enum\(r, ErrorCode::unavailable, "error code"',
                      'checked_enum(r, ErrorCode::cancelled, "error code"'),
    expect_substr="cancelled")

# Rule 2a: a field inserted MID-struct (reorders the wire layout).
expect_fires(
    "diagnostics-append fires on a mid-struct insertion",
    "diagnostics-append",
    lambda root: edit(root, "src/opm/diagnostics.hpp",
                      r"\n    double sweep_seconds = 0\.0;",
                      "\n    int sneaky_insert = 0;"
                      "\n    double sweep_seconds = 0.0;"),
    expect_substr="sneaky_insert")

# Rule 2b: a field appended WITHOUT manifest/codec updates.
expect_fires(
    "diagnostics-append fires on an append missing manifest+codec",
    "diagnostics-append",
    lambda root: edit(root, "src/opm/diagnostics.hpp",
                      r"\n    int soe_fits = 0;",
                      "\n    int soe_fits = 0;\n    int orphan_field = 0;"),
    expect_substr="orphan_field")

# Rule 3: a sweep file that stops consulting RunControl (every occurrence
# renamed, not just the first — one survivor would legitimately pass).
def drop_runcontrol(root: pathlib.Path) -> None:
    path = root / "src/transient/steppers.cpp"
    path.write_text(
        re.sub(r"\b(RunControl|check_run_control|PencilSolve)\b",
               "Uncontrolled", path.read_text(encoding="utf-8")),
        encoding="utf-8")


expect_fires(
    "runcontrol-sweeps fires when a sweep drops RunControl",
    "runcontrol-sweeps",
    drop_runcontrol,
    expect_substr="steppers.cpp")

# Rule 4: options_equal grows a comparison the wire codec doesn't carry.
expect_fires(
    "options-wire-parity fires on a compared-but-not-encoded field",
    "options-wire-parity",
    lambda root: edit(root, "src/api/registry.cpp",
                      r"return a\.alpha == b\.alpha && a\.history == b\.history &&",
                      "return a.alpha == b.alpha && a.ghost == b.ghost && "
                      "a.history == b.history &&"),
    expect_substr="ghost")

# Rule 5: a naked std::runtime_error outside the taxonomy files.
expect_fires(
    "naked-throw fires on a raw runtime_error in src/",
    "naked-throw",
    lambda root: edit(root, "src/api/registry.cpp",
                      r"bool options_equal",
                      'inline void oops() { throw std::runtime_error("x"); }\n'
                      "bool options_equal"),
    expect_substr="registry.cpp")

# Rule 6: a fault site no test ever arms.
expect_fires(
    "fault-sites-armed fires on an unarmed Site enumerator",
    "fault-sites-armed",
    lambda root: edit(root, "src/util/fault_inject.hpp",
                      r"\n    site_count_,",
                      "\n    cosmic_ray,\n    site_count_,"),
    expect_substr="cosmic_ray")

if failures:
    print(f"self-test: {len(failures)} check(s) FAILED", file=sys.stderr)
    sys.exit(1)
print("self-test: every rule fires and the pristine tree passes")
