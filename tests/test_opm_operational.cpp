/// \file test_opm_operational.cpp
/// \brief Tests for fractional series and operational matrices — including
///        the paper's worked example (eq. 23-24) verified digit for digit.

#include <gtest/gtest.h>

#include <cmath>

#include "basis/bpf.hpp"
#include "la/dense_lu.hpp"
#include "opm/fractional_series.hpp"
#include "opm/operational.hpp"

namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace basis = opmsim::basis;

TEST(FractionalSeries, BinomialKnownValues) {
    const la::Vectord c = opm::binomial_coeffs(1.5, 4);
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    EXPECT_DOUBLE_EQ(c[1], 1.5);
    EXPECT_DOUBLE_EQ(c[2], 0.375);   // 1.5*0.5/2
    EXPECT_DOUBLE_EQ(c[3], -0.0625); // 1.5*0.5*(-0.5)/6
}

TEST(FractionalSeries, IntegerAlphaTerminates) {
    const la::Vectord c = opm::binomial_coeffs(2.0, 6);
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    EXPECT_DOUBLE_EQ(c[1], 2.0);
    EXPECT_DOUBLE_EQ(c[2], 1.0);
    for (std::size_t k = 3; k < 6; ++k) EXPECT_DOUBLE_EQ(c[k], 0.0);
}

TEST(FractionalSeries, PaperEq23Coefficients) {
    // rho_{3/2,4}(q) = 1 - 3q + 4.5q^2 - 5.5q^3 (paper eq. 23).
    const la::Vectord c = opm::frac_diff_series(1.5, 4);
    ASSERT_EQ(c.size(), 4u);
    EXPECT_NEAR(c[0], 1.0, 1e-14);
    EXPECT_NEAR(c[1], -3.0, 1e-14);
    EXPECT_NEAR(c[2], 4.5, 1e-14);
    EXPECT_NEAR(c[3], -5.5, 1e-14);
}

TEST(FractionalSeries, AlphaOneMatchesBpfPattern) {
    // ((1-q)/(1+q))^1 = 1 - 2q + 2q^2 - 2q^3 + ...
    const la::Vectord c = opm::frac_diff_series(1.0, 6);
    EXPECT_NEAR(c[0], 1.0, 1e-14);
    for (std::size_t k = 1; k < 6; ++k)
        EXPECT_NEAR(c[k], (k % 2 ? -2.0 : 2.0), 1e-13) << k;
}

TEST(FractionalSeries, AlphaZeroIsIdentity) {
    const la::Vectord c = opm::frac_diff_series(0.0, 5);
    EXPECT_DOUBLE_EQ(c[0], 1.0);
    for (std::size_t k = 1; k < 5; ++k) EXPECT_DOUBLE_EQ(c[k], 0.0);
}

TEST(FractionalSeries, DiffAndIntSeriesAreInverse) {
    // rho_alpha * rho_{-alpha} = 1 in the truncated ring.
    for (double alpha : {0.3, 0.5, 1.2, 1.7}) {
        const la::Vectord d = opm::frac_diff_series(alpha, 12);
        const la::Vectord h = opm::frac_int_series(alpha, 12);
        const la::Vectord prod = opm::poly_mul_trunc(d, h, 12);
        EXPECT_NEAR(prod[0], 1.0, 1e-12);
        for (std::size_t k = 1; k < 12; ++k) EXPECT_NEAR(prod[k], 0.0, 1e-11) << k;
    }
}

TEST(FractionalSeries, GrunwaldWeightsKnown) {
    // (1-q)^{1/2}: w = 1, -1/2, -1/8, -1/16, ...
    const la::Vectord w = opm::grunwald_weights(0.5, 4);
    EXPECT_DOUBLE_EQ(w[0], 1.0);
    EXPECT_DOUBLE_EQ(w[1], -0.5);
    EXPECT_DOUBLE_EQ(w[2], -0.125);
    EXPECT_DOUBLE_EQ(w[3], -0.0625);
}

TEST(OperationalMatrix, PaperEq24Matrix) {
    // D^{3/2}_{(4)} = (2/h)^{3/2} * [[1,-3,4.5,-5.5], ...] (paper eq. 24).
    const double h = 0.1;
    const la::Matrixd d = opm::frac_differential_matrix(1.5, h, 4);
    const double s = std::pow(2.0 / h, 1.5);
    EXPECT_NEAR(d(0, 0), s, 1e-9);
    EXPECT_NEAR(d(0, 1), -3.0 * s, 1e-9);
    EXPECT_NEAR(d(0, 2), 4.5 * s, 1e-9);
    EXPECT_NEAR(d(0, 3), -5.5 * s, 1e-9);
    EXPECT_NEAR(d(1, 2), -3.0 * s, 1e-9);
    EXPECT_NEAR(d(2, 2), s, 1e-9);
    EXPECT_NEAR(d(1, 0), 0.0, 1e-15);
}

TEST(OperationalMatrix, PaperIdentityDThreeHalvesSquaredIsDCubed) {
    // The paper notes (D^{3/2}_{(4)})^2 equals the integer-order matrix
    // power — exact in the nilpotent ring.
    const double h = 0.25;
    const la::Matrixd d32 = opm::frac_differential_matrix(1.5, h, 4);
    const la::Matrixd d = basis::bpf_differential_matrix(h, 4);
    EXPECT_LT(la::max_abs_diff(d32 * d32, d * d * d), 1e-6 * d32.max_abs());
}

TEST(OperationalMatrix, AlphaOneMatchesBpf) {
    const la::Matrixd d1 = opm::frac_differential_matrix(1.0, 0.3, 8);
    const la::Matrixd d2 = basis::bpf_differential_matrix(0.3, 8);
    EXPECT_LT(la::max_abs_diff(d1, d2), 1e-12);
    const la::Matrixd h1 = opm::frac_integral_matrix(1.0, 0.3, 8);
    const la::Matrixd h2 = basis::bpf_integral_matrix(0.3, 8);
    EXPECT_LT(la::max_abs_diff(h1, h2), 1e-12);
}

/// Semigroup property D^a D^b = D^{a+b} for the uniform Toeplitz operators.
class FracSemigroup : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(FracSemigroup, Holds) {
    const auto [a, b] = GetParam();
    const double h = 0.2;
    const la::index_t m = 10;
    const la::Matrixd da = opm::frac_differential_matrix(a, h, m);
    const la::Matrixd db = opm::frac_differential_matrix(b, h, m);
    const la::Matrixd dab = opm::frac_differential_matrix(a + b, h, m);
    EXPECT_LT(la::max_abs_diff(da * db, dab), 1e-8 * dab.max_abs());
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, FracSemigroup,
    ::testing::Values(std::make_pair(0.5, 0.5), std::make_pair(0.25, 0.75),
                      std::make_pair(0.5, 1.0), std::make_pair(0.9, 0.9),
                      std::make_pair(1.5, 0.5), std::make_pair(0.1, 0.2)));

TEST(OperationalMatrix, FracIntegralIsInverseOfFracDifferential) {
    for (double alpha : {0.5, 0.8, 1.3}) {
        const la::Matrixd d = opm::frac_differential_matrix(alpha, 0.5, 8);
        const la::Matrixd h = opm::frac_integral_matrix(alpha, 0.5, 8);
        EXPECT_LT(la::max_abs_diff(d * h, la::Matrixd::identity(8)), 1e-9)
            << alpha;
    }
}

TEST(OperationalMatrix, UpperToeplitzDensify) {
    opm::UpperToeplitz t;
    t.coeffs = {1.0, -2.0, 3.0};
    const la::Matrixd d = t.to_dense();
    EXPECT_DOUBLE_EQ(d(0, 2), 3.0);
    EXPECT_DOUBLE_EQ(d(1, 2), -2.0);
    EXPECT_DOUBLE_EQ(d(2, 2), 1.0);
    EXPECT_DOUBLE_EQ(d(2, 0), 0.0);
}

TEST(AdaptiveFractional, EqualStepsFallBackToUniform) {
    const la::Vectord steps(5, 0.2);
    const la::Matrixd d = opm::frac_differential_matrix_adaptive(0.5, steps);
    EXPECT_LT(la::max_abs_diff(d, opm::frac_differential_matrix(0.5, 0.2, 5)),
              1e-10);
}

TEST(AdaptiveFractional, IntegerOrderIsMatrixPower) {
    la::Vectord steps = {0.1, 0.2, 0.15, 0.3};
    const la::Matrixd d2 = opm::frac_differential_matrix_adaptive(2.0, steps);
    const la::Matrixd d = basis::bpf_differential_matrix_adaptive(steps);
    EXPECT_LT(la::max_abs_diff(d2, d * d), 1e-9 * d2.max_abs());
}

TEST(AdaptiveFractional, EigPathSquareRootSquares) {
    // (D~^{1/2})^2 = D~ for distinct steps (paper eq. 25).
    la::Vectord steps = {0.1, 0.17, 0.23, 0.31, 0.44};
    const la::Matrixd dh = opm::frac_differential_matrix_adaptive(0.5, steps);
    const la::Matrixd d = basis::bpf_differential_matrix_adaptive(steps);
    EXPECT_LT(la::max_abs_diff(dh * dh, d), 1e-8 * d.max_abs());
}

TEST(AdaptiveFractional, NearUniformApproachesUniform) {
    // Mildly perturbed steps: the eig-path matrix should be close to the
    // uniform Toeplitz one (continuity of the matrix function).  The
    // perturbation must stay well above the eigendecomposition's
    // conditioning limit — clustering eigenvalues closer than ~1e-3
    // relative makes V blow up like (1/sep)^(m-1), the reason the paper
    // demands "no two steps exactly the same" for eq. (25).
    const la::index_t m = 6;
    la::Vectord steps(static_cast<std::size_t>(m));
    for (la::index_t i = 0; i < m; ++i)
        steps[static_cast<std::size_t>(i)] = 0.2 * (1.0 + 0.02 * static_cast<double>(i + 1));
    const la::Matrixd da = opm::frac_differential_matrix_adaptive(0.5, steps);
    const la::Matrixd du = opm::frac_differential_matrix(0.5, 0.2, m);
    EXPECT_LT(la::max_abs_diff(da, du), 0.25 * du.max_abs());
}

TEST(AdaptiveFractional, RepeatedStepsThrowForFractionalOrder) {
    la::Vectord steps = {0.1, 0.2, 0.1};
    EXPECT_THROW(opm::frac_differential_matrix_adaptive(0.5, steps),
                 opmsim::numerical_error);
}

TEST(OperationalMatrix, InvalidArgumentsThrow) {
    EXPECT_THROW(opm::frac_differential_toeplitz(-0.5, 0.1, 4),
                 std::invalid_argument);
    EXPECT_THROW(opm::frac_differential_toeplitz(0.5, 0.0, 4),
                 std::invalid_argument);
    EXPECT_THROW(opm::frac_differential_toeplitz(0.5, 0.1, 0),
                 std::invalid_argument);
}
