/// \file test_svc_wire.cpp
/// \brief Wire-protocol pins for the scenario service (svc/wire.hpp).
///
/// Three properties are pinned here:
///   1. Round-trip fidelity — every struct the protocol ships decodes to a
///      value equivalent to what was encoded.  Doubles travel
///      bit-preserved, so equivalence is BITWISE for numeric payloads; for
///      MethodConfig it is api::batch_compatible (the daemon's coalescing
///      predicate), which compares exactly the fields that travel.
///   2. Defensive decoding — truncating the payload at EVERY prefix
///      length, or corrupting ANY single byte, either decodes cleanly or
///      throws an exception that classifies as invalid_scenario.  Never
///      UB, never a crash, never an unbounded allocation.
///   3. Version negotiation — exact-major matching, tolerant-minor
///      skew, and forward-compatible trailing fields inside struct blocks
///      (a newer encoder's extra bytes are skipped).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <vector>

#include "api/engine.hpp"
#include "api/registry.hpp"
#include "svc/wire.hpp"

namespace api = opmsim::api;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace svc = opmsim::svc;
namespace transient = opmsim::transient;
namespace util = opmsim::util;
namespace wave = opmsim::wave;
using opmsim::Diagnostics;
using opmsim::ErrorCode;
using opmsim::Status;

namespace {

constexpr std::size_t kMaxPayload = std::size_t{1} << 28;

/// Attempt `fn`; returns the taxonomy classification of whatever it threw
/// (ErrorCode::ok when it did not throw).  This is the "never UB" oracle:
/// any decode failure must surface as a classifiable C++ exception.
template <class Fn>
ErrorCode classify(Fn&& fn) {
    try {
        fn();
        return ErrorCode::ok;
    } catch (...) {
        return opmsim::status_from_current_exception().code;
    }
}

svc::WireScenario rich_scenario() {
    svc::WireScenario sc;
    sc.sources = {svc::SourceSpec::step(2.5, 1e-4),
                  svc::SourceSpec::pwl({0.0, 1e-3, 2e-3}, {0.0, 1.0, 0.25})};
    sc.t_end = 3e-3;
    sc.steps = 96;
    opm::OpmOptions o;
    o.alpha = 0.5;
    o.form = opm::OpmForm::integral;
    o.path = opm::OpmPath::toeplitz;
    o.history = opm::HistoryBackend::soe;
    o.soe_tol = 1e-7;
    o.x0 = la::Vectord{{0.25, -1.5}};
    o.quad_points = 6;
    o.quad_panels = 2;
    sc.config = o;
    return sc;
}

std::vector<std::uint8_t> encode_scenario_bytes(const svc::WireScenario& sc) {
    util::ByteWriter w;
    svc::encode(w, sc);
    return w.data();
}

svc::WireScenario decode_scenario_bytes(const std::vector<std::uint8_t>& b) {
    util::ByteReader r(b.data(), b.size());
    return svc::decode_scenario(r);
}

/// Sample-equality oracle for sources: the decoded spec's closure must be
/// bit-identical to the original's at every probe time.
void expect_sources_equal(const svc::SourceSpec& a, const svc::SourceSpec& b) {
    ASSERT_EQ(a.kind, b.kind);
    const wave::Source sa = a.make();
    const wave::Source sb = b.make();
    for (int k = -4; k <= 40; ++k) {
        const double t = k * 7.3e-5;
        EXPECT_EQ(sa(t), sb(t)) << "t = " << t;
    }
}

void expect_waveform_bits(const wave::Waveform& a, const wave::Waveform& b) {
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t k = 0; k < a.size(); ++k) {
        EXPECT_EQ(a.times()[k], b.times()[k]);
        EXPECT_EQ(a.values()[k], b.values()[k]);
    }
}

void expect_matrix_bits(const la::Matrixd& a, const la::Matrixd& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (la::index_t j = 0; j < a.cols(); ++j)
        for (la::index_t i = 0; i < a.rows(); ++i)
            EXPECT_EQ(a(i, j), b(i, j)) << "(" << i << "," << j << ")";
}

void expect_csc_bits(const la::CscMatrix& a, const la::CscMatrix& b) {
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    ASSERT_EQ(a.col_ptr(), b.col_ptr());
    ASSERT_EQ(a.row_ind(), b.row_ind());
    ASSERT_EQ(a.values(), b.values());
}

} // namespace

// ---------------------------------------------------------------- framing

TEST(SvcWire, FrameHeaderRoundTrip) {
    for (std::uint8_t t = 0; t <= svc::kMaxMsgType; ++t) {
        svc::FrameHeader h;
        h.type = static_cast<svc::MsgType>(t);
        h.request_id = 0x0123456789ABCDEFull + t;
        h.payload_len = 1000 + t;
        util::ByteWriter w;
        svc::encode_frame_header(w, h);
        ASSERT_EQ(w.size(), svc::kFrameHeaderBytes);
        const svc::FrameHeader d =
            svc::decode_frame_header(w.data().data(), w.size(), kMaxPayload);
        EXPECT_EQ(d.ver_major, svc::kProtoMajor);
        EXPECT_EQ(d.ver_minor, svc::kProtoMinor);
        EXPECT_EQ(d.type, h.type);
        EXPECT_EQ(d.request_id, h.request_id);
        EXPECT_EQ(d.payload_len, h.payload_len);
    }
}

TEST(SvcWire, FrameHeaderRejectsTruncationBadMagicAndSkew) {
    svc::FrameHeader h;
    h.type = svc::MsgType::submit;
    h.request_id = 7;
    h.payload_len = 64;
    util::ByteWriter w;
    svc::encode_frame_header(w, h);
    std::vector<std::uint8_t> bytes = w.data();

    // Truncated header: every short length must be rejected.
    for (std::size_t n = 0; n < svc::kFrameHeaderBytes; ++n)
        EXPECT_EQ(classify([&] {
                      svc::decode_frame_header(bytes.data(), n, kMaxPayload);
                  }),
                  ErrorCode::invalid_scenario)
            << "n = " << n;

    // Bad magic.
    {
        auto b = bytes;
        b[0] ^= 0xFF;
        EXPECT_EQ(classify([&] {
                      svc::decode_frame_header(b.data(), b.size(), kMaxPayload);
                  }),
                  ErrorCode::invalid_scenario);
    }
    // Major-version skew is an incompatible change: reject.
    {
        auto b = bytes;
        b[4] = static_cast<std::uint8_t>(svc::kProtoMajor + 1);
        EXPECT_EQ(classify([&] {
                      svc::decode_frame_header(b.data(), b.size(), kMaxPayload);
                  }),
                  ErrorCode::invalid_scenario);
    }
    // Minor-version skew is additive: accept (min-wins happens at hello).
    {
        auto b = bytes;
        b[6] = static_cast<std::uint8_t>(svc::kProtoMinor + 1);
        const svc::FrameHeader d =
            svc::decode_frame_header(b.data(), b.size(), kMaxPayload);
        EXPECT_EQ(d.ver_minor, svc::kProtoMinor + 1);
    }
    // Unknown message type.
    {
        auto b = bytes;
        b[8] = svc::kMaxMsgType + 1;
        EXPECT_EQ(classify([&] {
                      svc::decode_frame_header(b.data(), b.size(), kMaxPayload);
                  }),
                  ErrorCode::invalid_scenario);
    }
    // Absurd payload length: capped BEFORE any allocation happens.
    {
        auto b = bytes;
        const std::uint64_t huge = std::uint64_t{1} << 60;
        std::memcpy(b.data() + 20, &huge, sizeof huge);
        EXPECT_EQ(classify([&] {
                      svc::decode_frame_header(b.data(), b.size(), kMaxPayload);
                  }),
                  ErrorCode::invalid_scenario);
    }
}

// ------------------------------------------------------------ round trips

TEST(SvcWire, SourceSpecRoundTripEveryKind) {
    const svc::SourceSpec specs[] = {
        svc::SourceSpec::step(1.5, 2e-4),
        svc::SourceSpec::pulse(2.0, 1e-4, 5e-5, 4e-4, 5e-5),
        svc::SourceSpec::pulse_train(1.0, 0.0, 1e-5, 2e-4, 1e-5, 1e-3),
        svc::SourceSpec::sine(0.75, 1.3e4, 0.4),
        svc::SourceSpec::exp_decay(3.0, 2e-4),
        svc::SourceSpec::pwl({0.0, 1e-3, 1.5e-3}, {0.0, 2.0, -1.0}),
        svc::SourceSpec::smooth_step(1.0, 1e-4, 5e-5),
        svc::SourceSpec::smooth_pulse(1.0, 1e-4, 5e-5, 3e-4, 5e-5),
        svc::SourceSpec::smooth_pulse_train(1.0, 0.0, 1e-5, 2e-4, 1e-5, 1e-3),
    };
    for (const svc::SourceSpec& s : specs) {
        util::ByteWriter w;
        svc::encode(w, s);
        const auto bytes = w.data();
        util::ByteReader r(bytes.data(), bytes.size());
        const svc::SourceSpec d = svc::decode_source_spec(r);
        EXPECT_EQ(r.remaining(), 0u);
        expect_sources_equal(s, d);
    }
}

TEST(SvcWire, MethodConfigRoundTripEveryAlternative) {
    opm::OpmOptions opm_opt;
    opm_opt.alpha = 0.5;
    opm_opt.form = opm::OpmForm::integral;
    opm_opt.path = opm::OpmPath::recurrence;
    opm_opt.history = opm::HistoryBackend::fft;
    opm_opt.soe_tol = 1e-6;
    opm_opt.x0 = la::Vectord{{1.0, -2.0, 0.5}};
    opm_opt.quad_points = 8;
    opm_opt.quad_panels = 3;

    opm::MultiTermOptions mt_opt;
    mt_opt.path = opm::MultiTermPath::toeplitz;
    mt_opt.history = opm::HistoryBackend::blocked;
    mt_opt.soe_tol = 2e-7;
    mt_opt.quad_points = 5;
    mt_opt.quad_panels = 2;

    opm::AdaptiveOptions ad_opt;
    ad_opt.alpha = 0.75;
    ad_opt.tol = 1e-5;
    ad_opt.h_init = 1e-6;
    ad_opt.h_min = 1e-9;
    ad_opt.h_max = 1e-3;
    ad_opt.history = opm::HistoryBackend::soe;
    ad_opt.soe_tol = 1e-9;
    ad_opt.x0 = la::Vectord{{0.125}};
    ad_opt.quad_points = 4;
    ad_opt.max_steps = 5000;
    ad_opt.max_consecutive_rejects = 12;

    transient::TransientOptions tr_opt;
    tr_opt.method = transient::Method::gear2;
    tr_opt.x0 = la::Vectord{{3.0, 4.0}};

    transient::GrunwaldOptions gl_opt;
    gl_opt.alpha = 0.8;
    gl_opt.history = opm::HistoryBackend::soe;
    gl_opt.soe_tol = 5e-8;
    gl_opt.x0 = la::Vectord{{-1.0}};

    const api::MethodConfig configs[] = {opm_opt, mt_opt, ad_opt, tr_opt,
                                         gl_opt};
    for (const api::MethodConfig& c : configs) {
        util::ByteWriter w;
        svc::encode(w, c);
        const auto bytes = w.data();
        util::ByteReader r(bytes.data(), bytes.size());
        const api::MethodConfig d = svc::decode_method_config(r);
        EXPECT_EQ(r.remaining(), 0u);
        ASSERT_EQ(c.index(), d.index());

        // batch_compatible compares exactly the option fields that travel
        // (caches/control never do): a config that round-trips must
        // coalesce with its original.
        api::Scenario a, b;
        a.t_end = b.t_end = 1e-3;
        a.steps = b.steps = 32;
        a.config = c;
        b.config = d;
        EXPECT_TRUE(api::batch_compatible(a, b))
            << "alternative " << c.index();
        EXPECT_STREQ(a.method_name(), b.method_name());
    }
}

TEST(SvcWire, ScenarioRoundTrip) {
    const svc::WireScenario sc = rich_scenario();
    const auto bytes = encode_scenario_bytes(sc);
    const svc::WireScenario d = decode_scenario_bytes(bytes);

    EXPECT_EQ(d.t_end, sc.t_end);
    EXPECT_EQ(d.steps, sc.steps);
    ASSERT_EQ(d.sources.size(), sc.sources.size());
    for (std::size_t k = 0; k < sc.sources.size(); ++k)
        expect_sources_equal(sc.sources[k], d.sources[k]);

    const api::Scenario a = sc.to_scenario();
    const api::Scenario b = d.to_scenario();
    EXPECT_TRUE(api::batch_compatible(a, b));
}

TEST(SvcWire, EmptyScenarioRoundTrip) {
    const svc::WireScenario sc;  // no sources, t_end = 0, steps = 0
    const svc::WireScenario d = decode_scenario_bytes(encode_scenario_bytes(sc));
    EXPECT_TRUE(d.sources.empty());
    EXPECT_EQ(d.t_end, 0.0);
    EXPECT_EQ(d.steps, 0);
    EXPECT_EQ(d.config.index(), sc.config.index());
}

TEST(SvcWire, StatusDiagnosticsAndStatsRoundTrip) {
    {
        const Status st{ErrorCode::nonfinite_input, "NaN at column 17"};
        util::ByteWriter w;
        svc::encode(w, st);
        const auto b = w.data();
        util::ByteReader r(b.data(), b.size());
        const Status d = svc::decode_status(r);
        EXPECT_EQ(d.code, st.code);
        EXPECT_EQ(d.message, st.message);
    }
    {
        Diagnostics dg;
        dg.factor_seconds = 0.25;
        dg.sweep_seconds = 1.5;
        dg.solve_seconds = 0.75;
        dg.rhs_solved = 4096;
        dg.history_backend = opm::HistoryBackend::soe;
        dg.soe_modes = 48;
        dg.soe_fit_error = 3e-9;
        dg.orderings = 2;
        dg.factor_cache_hits = 5;
        dg.degradations = {"supernodal->scalar"};
        dg.soe_fits = 3;
        util::ByteWriter w;
        svc::encode(w, dg);
        const auto b = w.data();
        util::ByteReader r(b.data(), b.size());
        const Diagnostics d = svc::decode_diagnostics(r);
        EXPECT_EQ(d.factor_seconds, dg.factor_seconds);
        EXPECT_EQ(d.sweep_seconds, dg.sweep_seconds);
        EXPECT_EQ(d.solve_seconds, dg.solve_seconds);
        EXPECT_EQ(d.rhs_solved, dg.rhs_solved);
        EXPECT_EQ(d.history_backend, dg.history_backend);
        EXPECT_EQ(d.soe_modes, dg.soe_modes);
        EXPECT_EQ(d.soe_fit_error, dg.soe_fit_error);
        EXPECT_EQ(d.orderings, dg.orderings);
        EXPECT_EQ(d.factor_cache_hits, dg.factor_cache_hits);
        EXPECT_EQ(d.degradations, dg.degradations);
        EXPECT_EQ(d.soe_fits, dg.soe_fits);
    }
    {
        const svc::ServiceStats st{11, 4, 7, 5, 13, 2, 1, 3};
        util::ByteWriter w;
        svc::encode(w, st);
        const auto b = w.data();
        util::ByteReader r(b.data(), b.size());
        const svc::ServiceStats d = svc::decode_service_stats(r);
        EXPECT_EQ(d.requests, st.requests);
        EXPECT_EQ(d.batches, st.batches);
        EXPECT_EQ(d.coalesced, st.coalesced);
        EXPECT_EQ(d.largest_batch, st.largest_batch);
        EXPECT_EQ(d.shed, st.shed);
        EXPECT_EQ(d.deadline_expired, st.deadline_expired);
        EXPECT_EQ(d.drains, st.drains);
        EXPECT_EQ(d.reconnects_seen, st.reconnects_seen);
    }
}

TEST(SvcWire, ServiceStatsFromAMinorZeroEncoderDecodesWithZeroNewCounters) {
    // A minor-0 peer's stats block ends after largest_batch; the minor-1
    // survivability counters it cannot know must decode as zero, not as
    // garbage or a decode error.
    util::ByteWriter w;
    {
        const auto tok = w.begin_block();
        w.u64(11);
        w.u64(4);
        w.u64(7);
        w.u64(5);
        w.end_block(tok);
    }
    const auto b = w.data();
    util::ByteReader r(b.data(), b.size());
    const svc::ServiceStats d = svc::decode_service_stats(r);
    EXPECT_EQ(d.requests, 11u);
    EXPECT_EQ(d.largest_batch, 5u);
    EXPECT_EQ(d.shed, 0u);
    EXPECT_EQ(d.deadline_expired, 0u);
    EXPECT_EQ(d.drains, 0u);
    EXPECT_EQ(d.reconnects_seen, 0u);
}

TEST(SvcWire, FrameCapFuzzRejectsEveryLengthBeyondTheBound) {
    // The same decode_frame_header bound protects BOTH directions (server
    // reader and, since PR 10, the client's receive path): fuzz payload
    // lengths against a spread of caps — at, below, above and far beyond
    // each cap must classify cleanly, never allocate, never crash.
    svc::FrameHeader h;
    h.type = svc::MsgType::result;
    h.request_id = 99;
    const std::size_t caps[] = {0, 1, 64, 4096, kMaxPayload};
    for (const std::size_t cap : caps) {
        const std::uint64_t probes[] = {
            0,
            1,
            cap > 0 ? cap - 1 : 0,
            cap,
            cap + 1,
            cap * 2 + 17,
            std::uint64_t{1} << 40,
            ~std::uint64_t{0}};
        for (const std::uint64_t len : probes) {
            h.payload_len = len;
            util::ByteWriter w;
            svc::encode_frame_header(w, h);
            const ErrorCode code = classify([&] {
                const svc::FrameHeader d =
                    svc::decode_frame_header(w.data().data(), w.size(), cap);
                EXPECT_EQ(d.payload_len, len);
            });
            EXPECT_EQ(code, len <= cap ? ErrorCode::ok
                                       : ErrorCode::invalid_scenario)
                << "cap " << cap << " len " << len;
        }
    }
}

TEST(SvcWire, DescriptorAndMultiTermSystemsRoundTripBitwise) {
    la::Triplets e(3, 3), a(3, 3), b(3, 1), c(1, 3);
    e.add(0, 0, 1e-9);
    e.add(1, 1, 2e-9);
    e.add(2, 2, 1.5e-9);
    a.add(0, 0, -2e-3);
    a.add(0, 1, 1e-3);
    a.add(1, 0, 1e-3);
    a.add(1, 1, -2e-3);
    a.add(1, 2, 1e-3);
    a.add(2, 1, 1e-3);
    a.add(2, 2, -1e-3);
    b.add(0, 0, 1e-3);
    c.add(0, 2, 1.0);

    opm::DescriptorSystem sys;
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);
    sys.c = la::CscMatrix(c);
    {
        util::ByteWriter w;
        svc::encode(w, sys);
        const auto bytes = w.data();
        util::ByteReader r(bytes.data(), bytes.size());
        const opm::DescriptorSystem d = svc::decode_descriptor(r);
        expect_csc_bits(d.e, sys.e);
        expect_csc_bits(d.a, sys.a);
        expect_csc_bits(d.b, sys.b);
        expect_csc_bits(d.c, sys.c);
    }

    opm::MultiTermSystem mt;
    mt.lhs.push_back({1.5, sys.e});
    mt.lhs.push_back({0.0, sys.a});
    mt.rhs.push_back({0.0, sys.b});
    mt.c = sys.c;
    {
        util::ByteWriter w;
        svc::encode(w, mt);
        const auto bytes = w.data();
        util::ByteReader r(bytes.data(), bytes.size());
        const opm::MultiTermSystem d = svc::decode_multiterm(r);
        ASSERT_EQ(d.lhs.size(), mt.lhs.size());
        ASSERT_EQ(d.rhs.size(), mt.rhs.size());
        for (std::size_t k = 0; k < mt.lhs.size(); ++k) {
            EXPECT_EQ(d.lhs[k].order, mt.lhs[k].order);
            expect_csc_bits(d.lhs[k].mat, mt.lhs[k].mat);
        }
        for (std::size_t k = 0; k < mt.rhs.size(); ++k) {
            EXPECT_EQ(d.rhs[k].order, mt.rhs[k].order);
            expect_csc_bits(d.rhs[k].mat, mt.rhs[k].mat);
        }
        expect_csc_bits(d.c, mt.c);
    }
}

TEST(SvcWire, SolveResultRoundTripBitwise) {
    // A real solve, so the result carries non-trivial waveforms, states,
    // grid and diagnostics.
    la::Triplets e(2, 2), a(2, 2), b(2, 1);
    e.add(0, 0, 1e-9);
    e.add(1, 1, 1e-9);
    a.add(0, 0, -2e-3);
    a.add(0, 1, 1e-3);
    a.add(1, 0, 1e-3);
    a.add(1, 1, -1e-3);
    b.add(0, 0, 1e-3);
    opm::DescriptorSystem sys;
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(std::move(sys));
    api::Scenario sc;
    sc.sources = {wave::step(1.0)};
    sc.t_end = 1e-5;
    sc.steps = 24;
    const api::SolveResult res = engine.run(h, sc);

    util::ByteWriter w;
    svc::encode(w, res);
    const auto bytes = w.data();
    util::ByteReader r(bytes.data(), bytes.size());
    const api::SolveResult d = svc::decode_result(r);
    EXPECT_EQ(r.remaining(), 0u);

    EXPECT_EQ(d.method, res.method);
    EXPECT_EQ(d.status.code, res.status.code);
    EXPECT_EQ(d.status.message, res.status.message);
    ASSERT_EQ(d.outputs.size(), res.outputs.size());
    for (std::size_t k = 0; k < res.outputs.size(); ++k)
        expect_waveform_bits(d.outputs[k], res.outputs[k]);
    expect_matrix_bits(d.states, res.states);
    EXPECT_EQ(d.grid, res.grid);
    EXPECT_EQ(d.steps, res.steps);
    EXPECT_EQ(d.diag.rhs_solved, res.diag.rhs_solved);
    EXPECT_EQ(d.diag.orderings, res.diag.orderings);
    EXPECT_EQ(d.diag.factor_seconds, res.diag.factor_seconds);
    EXPECT_EQ(d.diag.soe_fits, res.diag.soe_fits);
}

// ----------------------------------------------------- defensive decoding

TEST(SvcWire, ScenarioTruncationAtEveryPrefixIsRejectedCleanly) {
    const auto bytes = encode_scenario_bytes(rich_scenario());
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + n);
        EXPECT_EQ(classify([&] { decode_scenario_bytes(prefix); }),
                  ErrorCode::invalid_scenario)
            << "prefix length " << n;
    }
}

TEST(SvcWire, ScenarioSingleByteCorruptionNeverCrashes) {
    const auto bytes = encode_scenario_bytes(rich_scenario());
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        auto corrupted = bytes;
        corrupted[i] ^= 0xFF;
        // Either the corruption lands in a value (decodes fine, garbage
        // numbers the validation layer will catch) or in structure (clean
        // invalid_scenario).  Anything else — crash, hang, huge alloc —
        // fails the test by construction.
        const ErrorCode code =
            classify([&] { decode_scenario_bytes(corrupted); });
        EXPECT_TRUE(code == ErrorCode::ok ||
                    code == ErrorCode::invalid_scenario)
            << "byte " << i << " -> code " << static_cast<int>(code);
    }
}

TEST(SvcWire, ResultTruncationAtEveryPrefixIsRejectedCleanly) {
    api::SolveResult res;
    res.method = api::Method::transient;
    res.status = {ErrorCode::ok, ""};
    res.outputs = {wave::Waveform({0.0, 1.0}, {0.5, 0.25})};
    res.states = la::Matrixd(2, 3);
    res.states(1, 2) = 42.0;
    res.grid = la::Vectord{{0.0, 0.5, 1.0}};
    res.diag.rhs_solved = 3;
    util::ByteWriter w;
    svc::encode(w, res);
    const auto bytes = w.data();
    for (std::size_t n = 0; n < bytes.size(); ++n) {
        EXPECT_EQ(classify([&] {
                      util::ByteReader r(bytes.data(), n);
                      svc::decode_result(r);
                  }),
                  ErrorCode::invalid_scenario)
            << "prefix length " << n;
    }
}

// ---------------------------------------------------- forward compatibility

TEST(SvcWire, TrailingFieldsFromNewerEncodersAreSkipped) {
    // Emulate a minor-version-bumped encoder: same scenario layout plus
    // extra trailing fields inside the length-prefixed block.  An
    // old decoder must consume the block and ignore what it doesn't know.
    const svc::WireScenario sc = rich_scenario();
    util::ByteWriter w;
    {
        const auto tok = w.begin_block();
        w.u64(sc.sources.size());
        for (const svc::SourceSpec& s : sc.sources) svc::encode(w, s);
        w.f64(sc.t_end);
        w.i64(sc.steps);
        svc::encode(w, sc.config);
        w.f64(3.14159);  // hypothetical future field
        w.str("future-field");
        w.end_block(tok);
    }
    const auto bytes = w.data();
    const svc::WireScenario d = decode_scenario_bytes(bytes);
    EXPECT_EQ(d.t_end, sc.t_end);
    EXPECT_EQ(d.steps, sc.steps);
    ASSERT_EQ(d.sources.size(), sc.sources.size());

    api::Scenario a = sc.to_scenario();
    api::Scenario b = d.to_scenario();
    EXPECT_TRUE(api::batch_compatible(a, b));
}
