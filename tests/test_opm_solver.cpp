/// \file test_opm_solver.cpp
/// \brief Tests for the core OPM solvers: analytic oracles, path and form
///        equivalences, the Kronecker ground truth, and fractional FDEs.

#include <gtest/gtest.h>

#include <cmath>

#include "basis/bpf.hpp"
#include "basis/legendre.hpp"
#include "opm/kron_reference.hpp"
#include "opm/mittag_leffler.hpp"
#include "opm/operational.hpp"
#include "opm/solver.hpp"
#include "transient/steppers.hpp"

namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

namespace {

/// Scalar test system: d^alpha x = lambda x + u, y = x.
opm::DenseDescriptorSystem scalar_system(double lambda) {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd{{1.0}};
    s.a = la::Matrixd{{lambda}};
    s.b = la::Matrixd{{1.0}};
    return s;
}

/// RC lowpass as an ODE: x' = -x/(RC) + u/(RC).
opm::DenseDescriptorSystem rc_system(double rc) {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd{{rc}};
    s.a = la::Matrixd{{-1.0}};
    s.b = la::Matrixd{{1.0}};
    return s;
}

} // namespace

TEST(OpmSolver, RcStepResponseMatchesClosedForm) {
    const double rc = 1e-3;
    const auto res = opm::simulate_opm(rc_system(rc), {wave::step(1.0)},
                                       5.0 * rc, 400);
    const wave::Waveform& v = res.outputs.front();
    for (double frac : {0.2, 0.5, 0.9}) {
        const double t = 5.0 * rc * frac;
        EXPECT_NEAR(v.at(t), 1.0 - std::exp(-t / rc), 2e-4) << t;
    }
}

TEST(OpmSolver, ValidationRejectsBadInput) {
    const auto sys = rc_system(1.0).to_sparse();
    EXPECT_THROW(opm::simulate_opm(sys, {}, 1.0, 8), std::invalid_argument);
    EXPECT_THROW(opm::simulate_opm(sys, {wave::step(1.0)}, -1.0, 8),
                 std::invalid_argument);
    EXPECT_THROW(opm::simulate_opm(sys, {wave::step(1.0)}, 1.0, 0),
                 std::invalid_argument);
    opm::OpmOptions bad;
    bad.alpha = -0.5;
    EXPECT_THROW(opm::simulate_opm(sys, {wave::step(1.0)}, 1.0, 8, bad),
                 std::invalid_argument);
    opm::OpmOptions badpath;
    badpath.alpha = 0.5;
    badpath.path = opm::OpmPath::recurrence;
    EXPECT_THROW(opm::simulate_opm(sys, {wave::step(1.0)}, 1.0, 8, badpath),
                 std::invalid_argument);
}

TEST(OpmSolver, RecurrenceAndToeplitzPathsAgreeExactly) {
    // For alpha = 1 both paths solve the same algebra; results must agree
    // to roundoff, not just discretization error.
    const auto sys = rc_system(0.5);
    const std::vector<wave::Source> u = {wave::sine(1.0, 2.0)};
    opm::OpmOptions o1, o2;
    o1.path = opm::OpmPath::recurrence;
    o2.path = opm::OpmPath::toeplitz;
    const auto r1 = opm::simulate_opm(sys, u, 2.0, 64, o1);
    const auto r2 = opm::simulate_opm(sys, u, 2.0, 64, o2);
    EXPECT_LT(la::max_abs_diff(r1.coeffs, r2.coeffs), 1e-10);
}

TEST(OpmSolver, MatchesKroneckerReference) {
    // Column sweep == dense eq. (15) solve, for a 3-state MIMO system.
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0.2, 0}, {0, 1, 0}, {0.1, 0, 1}};
    sys.a = la::Matrixd{{-2, 1, 0}, {0, -3, 1}, {0.5, 0, -1}};
    sys.b = la::Matrixd{{1, 0}, {0, 1}, {1, 1}};
    const la::index_t m = 12;
    const double t_end = 1.5;
    const std::vector<wave::Source> u = {wave::step(1.0), wave::sine(0.5, 1.0)};

    for (double alpha : {1.0, 0.5, 1.5}) {
        opm::OpmOptions opt;
        opt.alpha = alpha;
        const auto res = opm::simulate_opm(sys, u, t_end, m, opt);

        // Build the same U the solver used and solve eq. (15) densely.
        la::Matrixd umat(2, m);
        const la::Vectord edges = wave::uniform_edges(t_end, m);
        for (int i = 0; i < 2; ++i) {
            const la::Vectord ui = wave::project_average(u[i], edges, 4);
            for (la::index_t j = 0; j < m; ++j) umat(i, j) = ui[static_cast<std::size_t>(j)];
        }
        const la::Matrixd d =
            opm::frac_differential_matrix(alpha, t_end / m, m);
        const la::Matrixd xref =
            opm::solve_kronecker_reference(sys.e, sys.a, sys.b, umat, d);
        EXPECT_LT(la::max_abs_diff(res.coeffs, xref), 1e-8 * (1 + xref.max_abs()))
            << "alpha=" << alpha;
    }
}

TEST(OpmSolver, EndpointStatesMatchTrapezoidalExactly) {
    // OPM (alpha=1) unwound to endpoints IS the trapezoidal rule when the
    // input averages equal the endpoint means — true for PWL inputs with
    // breakpoints on the grid.
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0}, {0, 2}};
    sys.a = la::Matrixd{{-1, 0.5}, {0.2, -3}};
    sys.b = la::Matrixd{{1}, {0.5}};
    const double t_end = 1.0;
    const la::index_t m = 10;
    // ramp over exactly 2 grid steps, then hold: averages == endpoint means.
    const std::vector<wave::Source> u = {wave::pwl({0.0, 0.2}, {0.0, 1.0})};

    const auto o = opm::simulate_opm(sys, u, t_end, m);
    const auto endpoint = opm::endpoint_outputs_from_coeffs(
        sys.to_sparse().c, o.coeffs, o.edges);

    opmsim::transient::TransientOptions topt;
    topt.method = opmsim::transient::Method::trapezoidal;
    const auto tr = opmsim::transient::simulate_transient(sys.to_sparse(), u,
                                                          t_end, m, topt);
    for (std::size_t ch = 0; ch < endpoint.size(); ++ch)
        for (std::size_t k = 0; k < tr.times.size(); ++k)
            EXPECT_NEAR(endpoint[ch].values()[k], tr.outputs[ch].values()[k],
                        1e-11)
                << "ch " << ch << " k " << k;
}

TEST(OpmSolver, HandlesSingularEDae) {
    // x1' = -x1 + x2; 0 = x2 - u  (algebraic row).
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0}, {0, 0}};
    sys.a = la::Matrixd{{-1, 1}, {0, -1}};
    sys.b = la::Matrixd{{0}, {1}};
    const auto res = opm::simulate_opm(sys, {wave::step(1.0)}, 4.0, 256);
    // x2 == u == 1; x1 -> 1 - e^{-t}.
    EXPECT_NEAR(res.outputs[1].at(2.0), 1.0, 1e-9);
    EXPECT_NEAR(res.outputs[0].at(2.0), 1.0 - std::exp(-2.0), 1e-3);
}

TEST(OpmSolver, InitialConditionRelaxation) {
    // x' = -2x, x(0) = 3: x(t) = 3 e^{-2t}.
    opm::OpmOptions opt;
    opt.x0 = {3.0};
    opm::DenseDescriptorSystem sys = scalar_system(-2.0);
    const auto res = opm::simulate_opm(sys, {wave::step(0.0)}, 2.0, 256, opt);
    for (double t : {0.25, 1.0, 1.75})
        EXPECT_NEAR(res.outputs[0].at(t), 3.0 * std::exp(-2.0 * t), 1e-3) << t;
}

/// Fractional step responses against the Mittag-Leffler oracle, swept
/// over the differential order.
class FractionalOracle : public ::testing::TestWithParam<double> {};

TEST_P(FractionalOracle, StepResponseMatchesMittagLeffler) {
    const double alpha = GetParam();
    const double lambda = -1.0;
    const double t_end = 2.0;
    opm::OpmOptions opt;
    opt.alpha = alpha;
    const auto res = opm::simulate_opm(scalar_system(lambda), {wave::step(1.0)},
                                       t_end, 512, opt);
    double max_err = 0;
    for (double t = 0.25; t <= 1.9; t += 0.15) {
        const double exact = opm::ml_step_response(alpha, lambda, 1.0, t);
        max_err = std::max(max_err, std::abs(res.outputs[0].at(t) - exact));
    }
    // BPF/OPM converges slowly near the t=0 singularity for small alpha;
    // away from it the match should be tight.
    EXPECT_LT(max_err, alpha < 0.4 ? 2e-2 : 5e-3) << "alpha=" << alpha;
}

INSTANTIATE_TEST_SUITE_P(Alphas, FractionalOracle,
                         ::testing::Values(0.3, 0.5, 0.7, 0.9, 1.0, 1.25, 1.5));

TEST(OpmSolver, IntegralFormAgreesWithDifferentialForm) {
    const auto sys = rc_system(0.3);
    const std::vector<wave::Source> u = {wave::step(1.0)};
    opm::OpmOptions od, oi;
    oi.form = opm::OpmForm::integral;
    const auto rd = opm::simulate_opm(sys, u, 1.5, 128, od);
    const auto ri = opm::simulate_opm(sys, u, 1.5, 128, oi);
    // Same discretization order; both approximate the same solution.
    EXPECT_LT(wave::relative_l2(rd.outputs[0], ri.outputs[0]), 2e-3);
}

TEST(OpmSolver, IntegralFormFractionalMatchesOracle) {
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    opt.form = opm::OpmForm::integral;
    const auto res = opm::simulate_opm(scalar_system(-1.0), {wave::step(1.0)},
                                       2.0, 512, opt);
    double max_err = 0;
    for (double t = 0.25; t <= 1.9; t += 0.2)
        max_err = std::max(max_err, std::abs(res.outputs[0].at(t) -
                                             opm::ml_step_response(0.5, -1.0, 1.0, t)));
    EXPECT_LT(max_err, 1e-2);
}

TEST(OpmSolver, ConvergesWithM) {
    // Discretization error decreases monotonically (roughly O(h^2)) in m.
    const auto sys = rc_system(0.2);
    const std::vector<wave::Source> u = {wave::sine(1.0, 1.0)};
    double prev_err = 1e9;
    for (const la::index_t m : {16, 32, 64, 128}) {
        const auto res = opm::simulate_opm(sys, u, 1.0, m);
        double err = 0;
        // closed form for x' = (-x + sin(2 pi t)) / 0.2 ... use a fine OPM
        // run as reference instead of the integral formula.
        const auto ref = opm::simulate_opm(sys, u, 1.0, 2048);
        err = wave::relative_l2(ref.outputs[0], res.outputs[0]);
        EXPECT_LT(err, prev_err * 0.7) << m;
        prev_err = err;
    }
}

TEST(GenericBasis, BpfBasisMatchesNativeSolver) {
    const auto sys = rc_system(0.25);
    const std::vector<wave::Source> u = {wave::step(1.0)};
    const opmsim::basis::BpfBasis bpf(1.0, 16);
    const auto gen = opm::simulate_generic_basis(sys, u, bpf);
    opm::OpmOptions opt;
    opt.form = opm::OpmForm::integral;
    const auto nat = opm::simulate_opm(sys, u, 1.0, 16, opt);
    EXPECT_LT(la::max_abs_diff(gen.coeffs, nat.coeffs), 1e-9);
}

TEST(GenericBasis, LegendreIsSpectrallyAccurateOnSmoothDrive) {
    const auto sys = rc_system(0.25);
    const std::vector<wave::Source> u = {wave::sine(1.0, 0.8)};
    const opmsim::basis::LegendreBasis leg(1.0, 20);
    const auto gen = opm::simulate_generic_basis(sys, u, leg);
    const auto ref = opm::simulate_opm(sys, u, 1.0, 4096);
    // 20 Legendre modes beat 4096 block pulses handily on smooth data;
    // just require close agreement with the fine reference.
    EXPECT_LT(wave::relative_l2(ref.outputs[0], gen.outputs[0]), 1e-3);
}

TEST(GenericBasis, InitialConditionHandled) {
    const opmsim::basis::LegendreBasis leg(1.0, 16);
    const auto gen = opm::simulate_generic_basis(scalar_system(-2.0),
                                                 {wave::step(0.0)}, leg, {3.0});
    for (double t : {0.2, 0.6})
        EXPECT_NEAR(gen.outputs[0].at(t), 3.0 * std::exp(-2.0 * t), 1e-4) << t;
}

TEST(OpmSolver, WindowedMatchesMonolithicExactly) {
    // Restarting every `window` columns with the chained endpoint state is
    // algebraically the same trapezoidal recurrence — roundoff-level match.
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0}, {0, 2}};
    sys.a = la::Matrixd{{-1, 0.4}, {0.1, -3}};
    sys.b = la::Matrixd{{1}, {0.5}};
    const auto s = sys.to_sparse();
    const std::vector<wave::Source> u = {wave::sine(1.0, 1.3)};
    const auto mono = opm::simulate_opm(s, u, 2.0, 120);
    for (const la::index_t window : {1, 7, 40, 120, 500}) {
        const auto win = opm::simulate_opm_windowed(s, u, 2.0, 120, window);
        EXPECT_LT(la::max_abs_diff(mono.coeffs, win.coeffs), 1e-11)
            << "window=" << window;
    }
}

TEST(OpmSolver, WindowedSupportsInitialConditionAndRejectsFractional) {
    opm::DenseDescriptorSystem sys = scalar_system(-2.0);
    const auto s = sys.to_sparse();
    opm::OpmOptions opt;
    opt.x0 = {3.0};
    const auto win =
        opm::simulate_opm_windowed(s, {wave::step(0.0)}, 2.0, 128, 16, opt);
    EXPECT_NEAR(win.outputs[0].at(1.0), 3.0 * std::exp(-2.0), 1e-3);

    opm::OpmOptions frac;
    frac.alpha = 0.5;
    EXPECT_THROW(
        opm::simulate_opm_windowed(s, {wave::step(1.0)}, 1.0, 16, 4, frac),
        std::invalid_argument);
}

TEST(OpmSolver, TimingFieldsPopulated) {
    const auto res = opm::simulate_opm(rc_system(1.0), {wave::step(1.0)}, 1.0, 32);
    EXPECT_GE(res.diag.factor_seconds, 0.0);
    EXPECT_GE(res.diag.sweep_seconds, 0.0);
    EXPECT_EQ(res.coeffs.cols(), 32);
    EXPECT_EQ(res.edges.size(), 33u);
}
