/// \file test_svc_chaos.cpp
/// \brief Network-chaos pins for the scenario daemon (label: faultinject).
///
/// PR 10's survivability contract, driven through the deterministic fault
/// harness's socket sites (util/fault_inject.hpp):
///
///   - a frame torn mid-payload, or a connection dropped after a request
///     was fully received, kills exactly that connection — every pending
///     future on it fails exactly once with internal_error, the daemon
///     keeps serving everyone else;
///   - a retrying client (ClientOptions::retry) reconnects, re-handshakes
///     and recovers a result BIT-IDENTICAL to the unfaulted run;
///   - admission control sheds excess submits fast with `overloaded`
///     while admitted work completes bit-identical to an in-process run;
///   - drain() finishes in-flight work, writes the warm-cache
///     auto-snapshot, rejects new submits with `unavailable`, and a
///     restarted daemon warm-starts from the snapshot with zero orderings;
///   - a wire deadline expires as deadline_exceeded DATA whether it dies
///     in the queue (never touching the Engine) or mid-sweep;
///   - a peer that stops reading its replies trips the write timeout and
///     is dropped instead of wedging the dispatcher.
///
/// Every fault is armed through ScopedFault so a failed ASSERT cannot
/// leave a site armed for later tests.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "svc/client.hpp"
#include "svc/server.hpp"
#include "util/fault_inject.hpp"

namespace api = opmsim::api;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace svc = opmsim::svc;
namespace util = opmsim::util;
using opmsim::ErrorCode;
using opmsim::fault::FaultSpec;
using opmsim::fault::ScopedFault;
using opmsim::fault::Site;

namespace {

std::string unique_socket(const char* tag) {
    static int counter = 0;
    return "/tmp/opmsim_chaos_" + std::to_string(::getpid()) + "_" + tag +
           "_" + std::to_string(counter++) + ".sock";
}

opm::DescriptorSystem rc_ladder(la::index_t n) {
    la::Triplets e(n, n), a(n, n), b(n, 1);
    for (la::index_t i = 0; i < n; ++i) {
        e.add(i, i, 1e-9);
        double g = 0.0;
        if (i > 0) {
            a.add(i, i - 1, 1e-3);
            g += 1e-3;
        }
        if (i + 1 < n) {
            a.add(i, i + 1, 1e-3);
            g += 1e-3;
        }
        a.add(i, i, -(g + (i == 0 ? 1e-3 : 0.0)));
    }
    b.add(0, 0, 1e-3);
    opm::DescriptorSystem sys;
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);
    return sys;
}

svc::WireScenario base_scenario() {
    svc::WireScenario sc;
    sc.sources = {svc::SourceSpec::step(1.0)};
    sc.t_end = 1e-5;
    sc.steps = 64;
    return sc;
}

/// A scenario that exercises both expensive warm-up paths (ordering +
/// SoE fit), so snapshot warm starts are observable in the diagnostics.
svc::WireScenario frac_scenario() {
    svc::WireScenario sc = base_scenario();
    opm::OpmOptions frac;
    frac.alpha = 0.5;
    frac.path = opm::OpmPath::toeplitz;
    frac.history = opm::HistoryBackend::soe;
    sc.config = frac;
    return sc;
}

void expect_result_bits(const api::SolveResult& got,
                        const api::SolveResult& want) {
    EXPECT_EQ(got.status.code, want.status.code);
    ASSERT_EQ(got.outputs.size(), want.outputs.size());
    for (std::size_t c = 0; c < want.outputs.size(); ++c) {
        ASSERT_EQ(got.outputs[c].size(), want.outputs[c].size());
        for (std::size_t k = 0; k < want.outputs[c].size(); ++k) {
            EXPECT_EQ(got.outputs[c].times()[k], want.outputs[c].times()[k]);
            EXPECT_EQ(got.outputs[c].values()[k], want.outputs[c].values()[k]);
        }
    }
    ASSERT_EQ(got.states.rows(), want.states.rows());
    ASSERT_EQ(got.states.cols(), want.states.cols());
    for (la::index_t j = 0; j < want.states.cols(); ++j)
        for (la::index_t i = 0; i < want.states.rows(); ++i)
            EXPECT_EQ(got.states(i, j), want.states(i, j));
    EXPECT_EQ(got.grid, want.grid);
    EXPECT_EQ(got.steps, want.steps);
}

} // namespace

// -------------------------------------------------------- torn / dropped

TEST(SvcChaos, TornFrameKillsOnlyThatConnectionAndFailsExactlyOnce) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("torn");
    opt.batch_window = 0.0;
    svc::Server server(opt);
    server.start();

    svc::Client victim;
    victim.connect_unix(opt.socket_path);
    const std::uint64_t h = victim.register_system(rc_ladder(8));

    // The next frame the server reads from ANY connection tears between
    // header and payload — that is the victim's submit.
    api::SolveResult res;
    {
        const ScopedFault torn(Site::sock_read_torn);
        res = victim.submit(h, base_scenario());
        EXPECT_GE(torn.fires(), 1);
    }
    EXPECT_EQ(res.status.code, ErrorCode::internal_error);

    // The daemon itself survived: a fresh client gets real service.
    svc::Client healthy;
    healthy.connect_unix(opt.socket_path);
    const api::SolveResult ok = healthy.submit(h, base_scenario());
    ASSERT_TRUE(ok.status.ok()) << ok.status.message;

    victim.close();
    healthy.close();
    server.stop();
}

TEST(SvcChaos, ServerDeathMidPipelineFailsEveryPendingFutureExactlyOnce) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("death");
    opt.batch_window = 5.0;  // park the pipeline inside the batch window
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    std::vector<std::future<api::SolveResult>> futures;
    for (int k = 0; k < 8; ++k)
        futures.push_back(client.submit_async(h, base_scenario()));

    server.stop();  // daemon dies with the whole pipeline in flight

    // Every future resolves (no hang, no drop); transport failures come
    // back as internal_error data.  std::future itself traps double-set,
    // so resolution here also proves exactly-once delivery.
    for (auto& f : futures) {
        const api::SolveResult res = f.get();
        if (!res.status.ok()) {
            EXPECT_EQ(res.status.code, ErrorCode::internal_error)
                << res.status.message;
        }
    }
    client.close();
}

TEST(SvcChaos, RetryingClientRecoversBitIdenticalResultAfterConnDrop) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("retry");
    opt.batch_window = 0.0;
    svc::Server server(opt);
    server.start();

    svc::ClientOptions copt;
    copt.retry.max_attempts = 4;
    copt.retry.base_backoff = 1e-3;
    copt.retry.jitter_seed = 42;
    svc::Client client(copt);
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    // Unfaulted oracle first (cache state never changes results).
    const api::SolveResult want = client.submit(h, frac_scenario());
    ASSERT_TRUE(want.status.ok()) << want.status.message;

    api::SolveResult got;
    {
        // The server drops the connection right after it fully receives
        // the next frame — the retried submit — before any reply.
        const ScopedFault drop(Site::conn_drop);
        got = client.submit(h, frac_scenario());
        EXPECT_EQ(drop.fires(), 1);
    }
    ASSERT_TRUE(got.status.ok()) << got.status.message;
    expect_result_bits(got, want);

    EXPECT_GE(client.reconnects(), 1u);
    EXPECT_GE(server.stats().reconnects_seen, 1u);

    client.close();
    server.stop();
}

TEST(SvcChaos, WriteFaultDropsTheConnectionButNotTheDaemon) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("wfail");
    opt.batch_window = 0.0;
    svc::Server server(opt);
    server.start();

    svc::Client victim;
    victim.connect_unix(opt.socket_path);
    const std::uint64_t h = victim.register_system(rc_ladder(8));

    // The server's next reply write fails (EPIPE-shaped); send_frame drops
    // the connection, and the victim's pending submit fails as data.
    api::SolveResult res;
    {
        const ScopedFault wfail(Site::sock_write_fail);
        res = victim.submit(h, base_scenario());
        EXPECT_GE(wfail.fires(), 1);
    }
    EXPECT_EQ(res.status.code, ErrorCode::internal_error);

    svc::Client healthy;
    healthy.connect_unix(opt.socket_path);
    const api::SolveResult ok = healthy.submit(h, base_scenario());
    ASSERT_TRUE(ok.status.ok()) << ok.status.message;

    victim.close();
    healthy.close();
    server.stop();
}

// ------------------------------------------------------ overload shedding

TEST(SvcChaos, QueueFullShedsOverloadedFastAndAdmittedWorkIsUnaffected) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("shed");
    opt.batch_window = 0.0;  // zero-width window: no coalescing grace
    opt.max_queue = 1;
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    // Stall every dispatch round so the (single-slot) queue stays full
    // while the reader sheds the rest of the burst on arrival.
    const ScopedFault stall(Site::dispatch_stall, FaultSpec{0, 1 << 20});

    std::vector<std::future<api::SolveResult>> futures;
    for (int k = 0; k < 16; ++k)
        futures.push_back(client.submit_async(h, base_scenario()));

    api::Engine local;
    const api::SystemHandle lh = local.add_system(rc_ladder(8));
    const api::SolveResult want = local.run(lh, base_scenario().to_scenario());

    int ok = 0, shed = 0;
    for (auto& f : futures) {
        const api::SolveResult res = f.get();
        if (res.status.ok()) {
            ++ok;
            expect_result_bits(res, want);  // admitted => full service
        } else {
            ASSERT_EQ(res.status.code, ErrorCode::overloaded)
                << res.status.message;
            ++shed;
        }
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(shed, 1);
    EXPECT_EQ(ok + shed, 16);

    const svc::ServiceStats stats = server.stats();
    EXPECT_EQ(stats.shed, static_cast<std::uint64_t>(shed));
    EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(ok));
    EXPECT_GE(stall.fires(), 1);

    client.close();
    server.stop();
}

TEST(SvcChaos, PerConnectionPipelineBoundShedsExcessSubmits) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("perconn");
    opt.batch_window = 0.0;
    opt.max_pending_per_conn = 1;
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    const ScopedFault stall(Site::dispatch_stall, FaultSpec{0, 1 << 20});
    std::vector<std::future<api::SolveResult>> futures;
    for (int k = 0; k < 8; ++k)
        futures.push_back(client.submit_async(h, base_scenario()));

    int ok = 0, shed = 0;
    for (auto& f : futures) {
        const api::SolveResult res = f.get();
        if (res.status.ok())
            ++ok;
        else {
            ASSERT_EQ(res.status.code, ErrorCode::overloaded)
                << res.status.message;
            ++shed;
        }
    }
    EXPECT_GE(ok, 1);
    EXPECT_GE(shed, 1);
    EXPECT_EQ(ok + shed, 8);

    client.close();
    server.stop();
}

// ------------------------------------------------------------------ drain

TEST(SvcChaos, DrainFlushesInflightSnapshotsCachesAndWarmStartsARestart) {
    const std::string snapdir =
        "/tmp/opmsim_chaos_drain_" + std::to_string(::getpid());
    ::mkdir(snapdir.c_str(), 0700);

    svc::ServerOptions opt;
    opt.socket_path = unique_socket("drainA");
    opt.batch_window = 0.5;  // in-flight submit parks in the window
    opt.snapshot_dir = snapdir;
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    // Warm the caches and grab the oracle bits.
    const api::SolveResult cold = client.submit(h, frac_scenario());
    ASSERT_TRUE(cold.status.ok()) << cold.status.message;
    EXPECT_GE(cold.diag.orderings, 1);
    EXPECT_GE(cold.diag.soe_fits, 1);

    // In-flight work when the drain begins must still complete.
    auto inflight = client.submit_async(h, frac_scenario());
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.begin_drain();

    // New submits are refused while draining — as data, in one round trip.
    const api::SolveResult refused = client.submit(h, frac_scenario());
    EXPECT_EQ(refused.status.code, ErrorCode::unavailable);

    const api::SolveResult flushed = inflight.get();
    ASSERT_TRUE(flushed.status.ok()) << flushed.status.message;
    expect_result_bits(flushed, cold);

    server.wait_for_shutdown();
    server.stop();
    EXPECT_EQ(server.stats().drains, 1u);
    client.close();

    // The auto-snapshot exists and warm-starts a FRESH daemon: its very
    // first request does zero orderings and zero SoE refits.
    const std::string snap = snapdir + "/opmsim_h" + std::to_string(h) +
                             ".snap";
    struct stat st {};
    ASSERT_EQ(::stat(snap.c_str(), &st), 0) << "missing snapshot " << snap;

    svc::ServerOptions opt2;
    opt2.socket_path = unique_socket("drainB");
    svc::Server second(opt2);
    second.start();
    svc::Client again;
    again.connect_unix(opt2.socket_path);
    const std::uint64_t h2 = again.register_system(rc_ladder(8));
    again.load_caches(h2, snap);
    const api::SolveResult warm = again.submit(h2, frac_scenario());
    ASSERT_TRUE(warm.status.ok()) << warm.status.message;
    EXPECT_EQ(warm.diag.orderings, 0);
    EXPECT_EQ(warm.diag.soe_fits, 0);
    expect_result_bits(warm, cold);

    again.close();
    second.stop();
    std::remove(snap.c_str());
    ::rmdir(snapdir.c_str());
}

// -------------------------------------------------------------- deadlines

TEST(SvcChaos, DeadlineExpiredWhileQueuedIsShedBeforeTheEngine) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("dlqueue");
    opt.batch_window = 0.0;
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    api::SolveResult res;
    {
        // One 50 ms dispatcher stall outlives the 10 ms wire deadline: the
        // job expires in the queue and is shed pre-dispatch.
        const ScopedFault stall(Site::dispatch_stall);
        res = client.submit(h, base_scenario(), /*deadline_ms=*/10);
        EXPECT_EQ(stall.fires(), 1);
    }
    EXPECT_EQ(res.status.code, ErrorCode::deadline_exceeded);

    const svc::ServiceStats stats = server.stats();
    EXPECT_GE(stats.deadline_expired, 1u);
    // requests counts DISPATCHED submits only: the expired job never
    // touched the Engine.
    EXPECT_EQ(stats.requests, 0u);

    client.close();
    server.stop();
}

TEST(SvcChaos, DeadlineExpiryMidSweepComesBackAsData) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("dlsweep");
    opt.batch_window = 0.0;
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    api::SolveResult res;
    {
        // A generous wire deadline arms the sweep's cooperative check; the
        // fault harness forces that check to expire mid-sweep.
        const ScopedFault expire(Site::deadline);
        res = client.submit(h, base_scenario(), /*deadline_ms=*/60'000);
        EXPECT_GE(expire.fires(), 1);
    }
    EXPECT_EQ(res.status.code, ErrorCode::deadline_exceeded);
    EXPECT_GE(server.stats().deadline_expired, 1u);

    // The connection and daemon survive a deadline like any other
    // failure-as-data.
    const api::SolveResult ok = client.submit(h, base_scenario());
    ASSERT_TRUE(ok.status.ok()) << ok.status.message;

    client.close();
    server.stop();
}

// ---------------------------------------------------------- write timeout

TEST(SvcChaos, StalledReaderTripsWriteTimeoutInsteadOfWedgingDispatch) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("stall");
    opt.batch_window = 0.0;
    opt.write_timeout = 0.2;
    svc::Server server(opt);
    server.start();

    svc::Client healthy;
    healthy.connect_unix(opt.socket_path);
    const std::uint64_t h = healthy.register_system(rc_ladder(32));

    // A raw peer that submits a scenario with a multi-megabyte result and
    // then never reads: the reply write fills the socket buffer, blocks,
    // and must be abandoned at the 0.2 s write timeout.
    const int raw = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(raw, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, opt.socket_path.c_str(),
                opt.socket_path.size() + 1);
    ASSERT_EQ(::connect(raw, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr),
              0);

    svc::WireScenario big = base_scenario();
    big.steps = 20'000;  // 32 x 20'001 state matrix ≈ 5 MB on the wire
    util::ByteWriter body;
    body.u64(h);
    svc::encode(body, big);
    svc::FrameHeader hdr;
    hdr.type = svc::MsgType::submit;
    hdr.request_id = 1;
    hdr.payload_len = body.size();
    util::ByteWriter frame;
    svc::encode_frame_header(frame, hdr);
    frame.bytes(body.data().data(), body.size());
    ASSERT_EQ(::write(raw, frame.data().data(), frame.size()),
              static_cast<ssize_t>(frame.size()));

    // The healthy client must get service while/after the stalled reply is
    // timed out — the dispatcher is blocked at most ~write_timeout.
    const auto t0 = std::chrono::steady_clock::now();
    const api::SolveResult ok = healthy.submit(h, base_scenario());
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    ASSERT_TRUE(ok.status.ok()) << ok.status.message;
    EXPECT_LT(seconds, 10.0);
    healthy.ping();  // dispatcher demonstrably alive

    ::close(raw);
    healthy.close();
    server.stop();
}

// ------------------------------------------------- close()-vs-inflight cbs

TEST(SvcChaos, CloseDuringInflightSubmitCbInvokesEveryCallbackExactlyOnce) {
    svc::ServerOptions opt;
    opt.socket_path = unique_socket("closecb");
    opt.batch_window = 0.25;  // park the callbacks' submits in the window
    svc::Server server(opt);
    server.start();

    svc::Client client;
    client.connect_unix(opt.socket_path);
    const std::uint64_t h = client.register_system(rc_ladder(8));

    constexpr int kInflight = 16;
    std::atomic<int> fired[kInflight];
    for (auto& f : fired) f.store(0);

    for (int k = 0; k < kInflight; ++k)
        client.submit_cb(h, base_scenario(), [&fired, k](api::SolveResult res) {
            // Either a real result or the transport failure — but exactly
            // one of them, exactly once.
            if (!res.status.ok()) {
                EXPECT_EQ(res.status.code, ErrorCode::internal_error);
            }
            fired[k].fetch_add(1);
        });

    // close() joins the receive thread, which fails every still-pending
    // callback on its way out — after this line everything has fired.
    client.close();
    for (int k = 0; k < kInflight; ++k)
        EXPECT_EQ(fired[k].load(), 1) << "callback " << k;

    server.stop();
}
