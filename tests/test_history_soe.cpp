/// \file test_history_soe.cpp
/// \brief The sum-of-exponentials streaming history backend against the
///        exact backends: fitter contracts, engine-level oracles for every
///        consumer (single-term, multi-term, Grünwald), the SolveCaches
///        memo, resident-state bounds, and the degenerate-m boundary audit
///        of resolve() / plan construction.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "opm/fast_history.hpp"
#include "opm/fractional_series.hpp"
#include "opm/multiterm.hpp"
#include "opm/soe.hpp"
#include "opm/solve_cache.hpp"
#include "opm/solver.hpp"
#include "transient/grunwald.hpp"

namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

namespace {

constexpr double kSoeTol = 1e-8;

la::Matrixd random_columns(la::index_t n, la::index_t m, unsigned seed) {
    std::mt19937 gen(seed);
    std::uniform_real_distribution<double> dist(-1.0, 1.0);
    la::Matrixd x(n, m);
    for (la::index_t j = 0; j < m; ++j)
        for (la::index_t i = 0; i < n; ++i) x(i, j) = dist(gen);
    return x;
}

/// The 3-state MIMO descriptor system shared with test_opm_solver.
opm::DescriptorSystem mimo_system() {
    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd{{1, 0.2, 0}, {0, 1, 0}, {0.1, 0, 1}};
    sys.a = la::Matrixd{{-2, 1, 0}, {0, -3, 1}, {0.5, 0, -1}};
    sys.b = la::Matrixd{{1, 0}, {0, 1}, {1, 1}};
    return sys.to_sparse();
}

std::vector<wave::Source> mimo_inputs() {
    return {wave::step(1.0), wave::sine(0.5, 3.0)};
}

double max_coeff_diff(const la::Matrixd& a, const la::Matrixd& b) {
    EXPECT_EQ(a.rows(), b.rows());
    EXPECT_EQ(a.cols(), b.cols());
    double err = 0.0;
    for (la::index_t j = 0; j < a.cols(); ++j)
        for (la::index_t i = 0; i < a.rows(); ++i)
            err = std::max(err, std::abs(a(i, j) - b(i, j)));
    return err;
}

} // namespace

// ---- the fitters ----------------------------------------------------------

TEST(SoeFit, CompressesFractionalRowsAtTolerance) {
    // The three kernel families every consumer feeds the engine: the rho
    // series (differential sweeps), the integral series, and the GL
    // weights.  fit_error is the EXACT l1 tail error, so asserting on it
    // is asserting the streaming history-sum error bound itself.
    const la::index_t m = 4096;
    for (const double alpha : {0.3, 0.5, 0.8}) {
        const la::Vectord rho = opm::frac_diff_series(alpha, m);
        const opm::SoeFit f = opm::fit_soe_row(rho.data(), m, 64, kSoeTol);
        EXPECT_LE(f.fit_error, kSoeTol) << "rho alpha=" << alpha;
        EXPECT_GT(f.modes(), 0);
        EXPECT_LT(f.modes(), 256) << "compression failed, K ~ m";
        for (la::index_t k = 0; k < f.modes(); ++k)
            EXPECT_LE(std::abs(f.rates[static_cast<std::size_t>(k)]), 1.0);
    }
    const la::Vectord gi = opm::frac_int_series(0.5, m);
    EXPECT_LE(opm::fit_soe_row(gi.data(), m, 64, kSoeTol).fit_error, kSoeTol);
    const la::Vectord gl = opm::grunwald_weights(0.5, m);
    EXPECT_LE(opm::fit_soe_row(gl.data(), m, 64, kSoeTol).fit_error, kSoeTol);
}

TEST(SoeFit, ZeroTailAndShortRowsYieldZeroModes) {
    la::Vectord row(128, 0.0);
    row[0] = 2.0;
    row[1] = -1.0;  // inside the window: tail is identically zero
    const opm::SoeFit f = opm::fit_soe_row(row.data(), 128, 64, kSoeTol);
    EXPECT_EQ(f.modes(), 0);
    EXPECT_EQ(f.fit_error, 0.0);
    // len <= window: nothing to fit at all.
    const opm::SoeFit g = opm::fit_soe_row(row.data(), 64, 64, kSoeTol);
    EXPECT_EQ(g.modes(), 0);
}

TEST(SoeFit, KernelFitIsUniformlyRelativeAndKGrowsSlowly) {
    // K-vs-tolerance: each extra ~2 digits of tolerance costs a bounded
    // number of extra modes (K ~ log(tmax/tmin) * log(1/tol)), which is
    // the whole complexity claim of the backend.
    int k_prev = 0;
    for (const double tol : {1e-4, 1e-6, 1e-8}) {
        const opm::SoeKernelFit kf = opm::fit_soe_kernel(0.5, 1e-4, 2.0, tol);
        EXPECT_LE(kf.rel_error, tol);
        EXPECT_LT(kf.modes(), 128);
        EXPECT_GE(kf.modes(), k_prev - 16);  // monotone up to grid jitter
        k_prev = static_cast<int>(kf.modes());
        // Spot-check the advertised relative error off the fit grid.
        const double inv_g = 1.0 / std::tgamma(0.5);
        for (const double u : {1.3e-4, 3.7e-3, 0.11, 1.7}) {
            double s = 0.0;
            for (la::index_t k = 0; k < kf.modes(); ++k)
                s += kf.weights[static_cast<std::size_t>(k)] *
                     std::exp(-kf.lambdas[static_cast<std::size_t>(k)] * u);
            const double exact = std::pow(u, -0.5) * inv_g;
            EXPECT_LE(std::abs(s - exact) / exact, 4.0 * tol) << "u=" << u;
        }
    }
}

TEST(SoeFit, RejectsBadParameters) {
    la::Vectord row(8, 1.0);
    EXPECT_THROW(opm::fit_soe_row(row.data(), 8, 0, kSoeTol),
                 std::invalid_argument);
    EXPECT_THROW(opm::fit_soe_row(row.data(), 8, 4, 0.0),
                 std::invalid_argument);
    EXPECT_THROW(opm::fit_soe_kernel(1.5, 1e-3, 1.0, kSoeTol),
                 std::invalid_argument);
    EXPECT_THROW(opm::fit_soe_kernel(0.5, 1.0, 0.5, kSoeTol),
                 std::invalid_argument);
}

// ---- streaming engine vs the naive oracle ---------------------------------

TEST(SoeHistoryEngine, MatchesNaiveOnFractionalRows) {
    const la::index_t n = 4, m = 1024;
    const la::Matrixd x = random_columns(n, m, 77);
    for (const double alpha : {0.4, 0.8}) {
        const la::Vectord row = opm::frac_diff_series(alpha, m);
        opm::HistoryEngine naive(row, n, m, opm::HistoryBackend::naive,
                                 nullptr);
        opm::HistoryEngine soe(row, n, m, opm::HistoryBackend::soe, nullptr,
                               kSoeTol);
        EXPECT_EQ(soe.backend(), opm::HistoryBackend::soe);
        EXPECT_GT(soe.soe_modes(), 0);
        EXPECT_LE(soe.soe_fit_error(), kSoeTol);
        la::Vectord hn, hs;
        double err = 0.0;
        for (la::index_t j = 0; j < m; ++j) {
            naive.history(j, hn);
            soe.history(j, hs);
            for (la::index_t i = 0; i < n; ++i)
                err = std::max(err, std::abs(hn[static_cast<std::size_t>(i)] -
                                             hs[static_cast<std::size_t>(i)]));
            naive.push(j, x.col(j));
            soe.push(j, x.col(j));
        }
        // Streaming error bound: fit_error * max|X| (X in [-1, 1] here).
        EXPECT_LE(err, 4.0 * kSoeTol) << "alpha=" << alpha;
    }
}

TEST(SoeHistoryEngine, StateIsOKnNotOmn) {
    // The acceptance claim: resident history state O((K + window) n),
    // independent of m.  Compare m = 16384 against m = 2048 — the exact
    // backends grow 8x here, the soe engine must not grow at all (the
    // fitted tables differ only in K by a handful of modes).
    const la::index_t n = 8;
    const la::Vectord row_small = opm::frac_diff_series(0.5, 2048);
    const la::Vectord row_big = opm::frac_diff_series(0.5, 16384);
    opm::HistoryEngine small(row_small, n, 2048, opm::HistoryBackend::soe,
                             nullptr, kSoeTol);
    opm::HistoryEngine big(row_big, n, 16384, opm::HistoryBackend::soe,
                           nullptr, kSoeTol);
    opm::HistoryEngine fft(row_big, n, 16384, opm::HistoryBackend::fft,
                           nullptr);
    EXPECT_LE(big.resident_state_bytes(),
              2 * small.resident_state_bytes() + (1 << 16));
    EXPECT_LT(big.resident_state_bytes(), fft.resident_state_bytes() / 4);
}

TEST(SoeHistoryEngine, FrontierOnlyQueriesAreEnforced) {
    const la::Vectord row = opm::frac_diff_series(0.5, 256);
    opm::HistoryEngine eng(row, 2, 256, opm::HistoryBackend::soe, nullptr,
                           kSoeTol);
    la::Vectord h;
    eng.history(0, h);
    const la::Vectord x(2, 1.0);
    eng.push(0, x.data());
    eng.push(1, x.data());
    // Columns behind the frontier are gone — the engine must say so, not
    // silently return the wrong sum.
    EXPECT_THROW(eng.history(1, h), std::invalid_argument);
    eng.history(2, h);  // frontier: fine
}

// ---- consumers ------------------------------------------------------------

TEST(SoeSolvers, OpmBothFormsMatchNaive) {
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    const la::index_t m = 1024;
    for (const double alpha : {0.5, 1.5}) {
        for (const opm::OpmForm form :
             {opm::OpmForm::differential, opm::OpmForm::integral}) {
            opm::OpmOptions on;
            on.alpha = alpha;
            on.form = form;
            on.history = opm::HistoryBackend::naive;
            opm::OpmOptions os = on;
            os.history = opm::HistoryBackend::soe;
            os.soe_tol = kSoeTol;
            const opm::OpmResult rn = opm::simulate_opm(sys, u, 2.0, m, on);
            const opm::OpmResult rs = opm::simulate_opm(sys, u, 2.0, m, os);
            EXPECT_LT(max_coeff_diff(rn.coeffs, rs.coeffs), 1e-6)
                << "alpha=" << alpha << " form=" << static_cast<int>(form);
            EXPECT_EQ(rs.diag.history_backend, opm::HistoryBackend::soe);
            EXPECT_GT(rs.diag.soe_modes, 0);
            EXPECT_GE(rs.diag.soe_fit_error, 0.0);
            EXPECT_LE(rs.diag.soe_fit_error, kSoeTol);
            EXPECT_EQ(rn.diag.soe_modes, 0);
            EXPECT_EQ(rn.diag.soe_fit_error, -1.0);
        }
    }
}

TEST(SoeSolvers, GrunwaldMatchesNaive) {
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    opmsim::transient::GrunwaldOptions gn;
    gn.alpha = 0.5;
    gn.history = opm::HistoryBackend::naive;
    opmsim::transient::GrunwaldOptions gs = gn;
    gs.history = opm::HistoryBackend::soe;
    gs.soe_tol = kSoeTol;
    const auto rn = opmsim::transient::simulate_grunwald(sys, u, 2.0, 1024, gn);
    const auto rs = opmsim::transient::simulate_grunwald(sys, u, 2.0, 1024, gs);
    EXPECT_LT(max_coeff_diff(rn.states, rs.states), 1e-6);
    EXPECT_EQ(rs.diag.history_backend, opm::HistoryBackend::soe);
    EXPECT_GT(rs.diag.soe_modes, 0);
}

TEST(SoeSolvers, MultiTermMatchesNaive) {
    // Mixed integer/fractional orders: exercises the per-term fits and the
    // rho_1 cascade (order 1.5) inside the grouped engine.
    opm::MultiTermSystem sys;
    la::Matrixd a2{{1.0, 0.1}, {0.0, 1.0}};
    la::Matrixd a1{{0.5, 0.0}, {0.2, 0.4}};
    la::Matrixd a0{{1.5, -0.3}, {0.0, 1.2}};
    sys.lhs.push_back({1.5, la::CscMatrix::from_dense(a2)});
    sys.lhs.push_back({0.7, la::CscMatrix::from_dense(a1)});
    sys.lhs.push_back({0.0, la::CscMatrix::from_dense(a0)});
    sys.rhs.push_back({0.5, la::CscMatrix::from_dense(la::Matrixd{{1.0}, {0.5}})});
    sys.rhs.push_back({0.0, la::CscMatrix::from_dense(la::Matrixd{{0.3}, {1.0}})});
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.05, 0.3)};

    opm::MultiTermOptions on;
    on.path = opm::MultiTermPath::toeplitz;
    on.history = opm::HistoryBackend::naive;
    opm::MultiTermOptions os = on;
    os.history = opm::HistoryBackend::soe;
    os.soe_tol = kSoeTol;
    const opm::OpmResult rn = opm::simulate_multiterm(sys, u, 1.5, 700, on);
    const opm::OpmResult rs = opm::simulate_multiterm(sys, u, 1.5, 700, os);
    EXPECT_LT(max_coeff_diff(rn.coeffs, rs.coeffs), 1e-6);
    EXPECT_EQ(rs.diag.history_backend, opm::HistoryBackend::soe);
    EXPECT_GT(rs.diag.soe_modes, 0);
    EXPECT_LE(rs.diag.soe_fit_error, kSoeTol);
}

TEST(SoeSolvers, BatchedScenariosMatchSingleRuns) {
    const opm::DescriptorSystem sys = mimo_system();
    std::vector<std::vector<wave::Source>> scen = {
        mimo_inputs(), {wave::sine(1.0, 2.0), wave::step(0.5)}};
    opm::OpmOptions opt;
    opt.alpha = 0.6;
    opt.history = opm::HistoryBackend::soe;
    const auto batch = opm::simulate_opm_batch(sys, scen, 1.0, 256, opt);
    ASSERT_EQ(batch.size(), 2u);
    for (std::size_t s = 0; s < scen.size(); ++s) {
        const auto solo = opm::simulate_opm(sys, scen[s], 1.0, 256, opt);
        // The stacked-row engine applies identical per-mode recurrences to
        // each scenario's rows, so batch == solo to roundoff.
        EXPECT_LT(max_coeff_diff(batch[s].coeffs, solo.coeffs), 1e-12);
        EXPECT_EQ(batch[s].diag.history_backend, opm::HistoryBackend::soe);
        EXPECT_GT(batch[s].diag.soe_modes, 0);
    }
}

// ---- SolveCaches memoization ----------------------------------------------

TEST(SoeCaches, FittedTablesAreMemoizedAndBitIdentical) {
    opm::SolveCaches caches;
    const la::Vectord row = opm::frac_diff_series(0.5, 2048);
    const long miss0 = caches.series_misses();
    const opm::SoeFit cold = caches.soe_row(row, 2048, 64, kSoeTol);
    EXPECT_EQ(caches.series_misses(), miss0 + 1);
    const long hit0 = caches.series_hits();
    const opm::SoeFit warm = caches.soe_row(row, 2048, 64, kSoeTol);
    EXPECT_EQ(caches.series_hits(), hit0 + 1);
    ASSERT_EQ(cold.modes(), warm.modes());
    for (la::index_t k = 0; k < cold.modes(); ++k) {
        EXPECT_EQ(cold.rates[static_cast<std::size_t>(k)],
                  warm.rates[static_cast<std::size_t>(k)]);
        EXPECT_EQ(cold.weights[static_cast<std::size_t>(k)],
                  warm.weights[static_cast<std::size_t>(k)]);
    }
    // The uncached fit is the same table (determinism of the fitter).
    const opm::SoeFit direct = opm::fit_soe_row(row.data(), 2048, 64, kSoeTol);
    EXPECT_EQ(direct.fit_error, cold.fit_error);

    // Kernel memo, same contract.
    const opm::SoeKernelFit kc = caches.soe_kernel(0.5, 1e-3, 2.0, kSoeTol);
    const opm::SoeKernelFit kw = caches.soe_kernel(0.5, 1e-3, 2.0, kSoeTol);
    ASSERT_EQ(kc.modes(), kw.modes());
    EXPECT_EQ(kc.rel_error, kw.rel_error);
    // A different tolerance is a different key, not a stale hit.
    const opm::SoeKernelFit k2 = caches.soe_kernel(0.5, 1e-3, 2.0, 1e-4);
    EXPECT_LE(k2.modes(), kc.modes());
}

TEST(SoeCaches, CachedRunMatchesUncachedRun) {
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    opm::OpmOptions opt;
    opt.alpha = 0.5;
    opt.history = opm::HistoryBackend::soe;
    const opm::OpmResult cold = opm::simulate_opm(sys, u, 1.0, 512, opt);
    opm::SolveCaches caches;
    opt.caches = &caches;
    const opm::OpmResult warm1 = opm::simulate_opm(sys, u, 1.0, 512, opt);
    const opm::OpmResult warm2 = opm::simulate_opm(sys, u, 1.0, 512, opt);
    EXPECT_EQ(max_coeff_diff(cold.coeffs, warm1.coeffs), 0.0);
    EXPECT_EQ(max_coeff_diff(cold.coeffs, warm2.coeffs), 0.0);
    EXPECT_GT(caches.series_hits(), 0);
}

// ---- degenerate m / resolve() boundary audit (satellite) ------------------

TEST(HistoryBoundary, AutomaticResolvesNaiveBelowPanelWidth) {
    using HB = opm::HistoryBackend;
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::automatic, 0), HB::naive);
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::automatic, 1), HB::naive);
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::automatic, 63), HB::naive);
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::automatic, 64), HB::blocked);
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::automatic, 191), HB::blocked);
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::automatic, 192), HB::fft);
    // Explicit choices always stick — soe is opt-in only.
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::soe, 5), HB::soe);
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::fft, 1), HB::fft);
    EXPECT_EQ(opm::HistoryEngine::resolve(HB::naive, 1 << 20), HB::naive);
}

TEST(HistoryBoundary, DegenerateColumnCountsAreExactForEveryBackend) {
    // m in {0, 1, 2, 3, 5} x every backend (explicit fft included: m far
    // below any plan size must construct zero-size plans cleanly), pinned
    // against the naive oracle.
    using HB = opm::HistoryBackend;
    const la::index_t n = 3;
    for (const la::index_t m : {0, 1, 2, 3, 5, 64, 65}) {
        const la::Vectord row =
            opm::frac_diff_series(0.5, std::max<la::index_t>(m, 1));
        const la::Matrixd x =
            random_columns(n, std::max<la::index_t>(m, 1), 1234 + m);
        for (const HB be :
             {HB::naive, HB::blocked, HB::fft, HB::automatic, HB::soe}) {
            opm::HistoryEngine oracle(row, n, m, HB::naive, nullptr);
            opm::HistoryEngine eng(row, n, m, be, nullptr, kSoeTol);
            la::Vectord ho, he;
            for (la::index_t j = 0; j < m; ++j) {
                oracle.history(j, ho);
                eng.history(j, he);
                for (la::index_t i = 0; i < n; ++i)
                    EXPECT_NEAR(he[static_cast<std::size_t>(i)],
                                ho[static_cast<std::size_t>(i)], 1e-9)
                        << "m=" << m << " backend=" << static_cast<int>(be)
                        << " j=" << j;
                oracle.push(j, x.col(j));
                eng.push(j, x.col(j));
            }
        }
    }
}

TEST(HistoryBoundary, DegenerateGridsRunThroughTheSolvers) {
    // End-to-end m = 1 and m = 2 on every path that builds history
    // engines or fft plans — the original failure mode was plan
    // construction tripping on sub-plan-size m.
    const opm::DescriptorSystem sys = mimo_system();
    const auto u = mimo_inputs();
    for (const la::index_t m : {1, 2}) {
        for (const auto be :
             {opm::HistoryBackend::automatic, opm::HistoryBackend::fft,
              opm::HistoryBackend::soe}) {
            opm::OpmOptions opt;
            opt.alpha = 0.5;
            opt.history = be;
            const opm::OpmResult r = opm::simulate_opm(sys, u, 0.5, m, opt);
            EXPECT_EQ(r.coeffs.cols(), m);
            for (la::index_t j = 0; j < m; ++j)
                for (la::index_t i = 0; i < 3; ++i)
                    EXPECT_TRUE(std::isfinite(r.coeffs(i, j)));
        }
    }
    // DiffHistoryEngine / offline applies at m = 1 (input-derivative path).
    const la::Matrixd u1 = random_columns(2, 1, 9);
    const la::Matrixd y =
        opm::diff_toeplitz_apply(0.5, 0.1, u1, opm::HistoryBackend::fft,
                                 nullptr);
    EXPECT_EQ(y.cols(), 1);
}
