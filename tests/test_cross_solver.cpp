/// \file test_cross_solver.cpp
/// \brief Cross-solver oracle harness: the same multi-term systems solved
///        by every route the library offers — the fast multi-term sweep
///        (per history backend), the single-term solver where the system
///        is reducible, the dense Kronecker ground truth, and the
///        Grünwald–Letnikov stepper — asserting pairwise agreement.
///
/// All solver invocations go through the opmsim::api::Engine facade (one
/// Engine per comparison, often holding both system representations), so
/// this harness doubles as an integration test of the unified dispatch:
/// the scenarios differ only in their MethodConfig, and the per-system
/// caches are live while methods and backends vary — any cache leakage
/// between configurations would break the oracles below.
///
/// The exact-agreement checks (multiterm vs naive oracle, vs single-term
/// solver, vs Kronecker) pin identical algebra evaluated by different
/// code paths and must match to near roundoff.  The Grünwald comparison
/// crosses *discretizations* (GL is a different first-order scheme), so
/// it is held to a coarse tolerance that shrinks with h.

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "api/engine.hpp"
#include "opm/kron_reference.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "transient/grunwald.hpp"

namespace api = opmsim::api;
namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

namespace {

la::Matrixd random_matrix(la::index_t r, la::index_t c, std::mt19937& gen,
                          double scale) {
    std::uniform_real_distribution<double> dist(-scale, scale);
    la::Matrixd m(r, c);
    for (la::index_t j = 0; j < c; ++j)
        for (la::index_t i = 0; i < r; ++i) m(i, j) = dist(gen);
    return m;
}

/// Randomized multi-term system with K left-hand terms whose orders mix
/// integers and fractionals.  The leading term is diagonally dominant and
/// the lower-order couplings are kept small, so every pencil in every
/// solver is well-conditioned and the cross-checks measure algorithmic
/// agreement, not conditioning luck.
opm::MultiTermSystem random_system(unsigned seed, const std::vector<double>& orders,
                                   la::index_t n, la::index_t p,
                                   const std::vector<double>& rhs_orders) {
    std::mt19937 gen(seed);
    opm::MultiTermSystem sys;
    for (std::size_t k = 0; k < orders.size(); ++k) {
        la::Matrixd a = random_matrix(n, n, gen, k == 0 ? 0.2 : 0.4);
        if (k == 0)
            for (la::index_t i = 0; i < n; ++i) a(i, i) += 1.0;
        if (orders[k] == 0.0)  // keep the zero-order term dissipative
            for (la::index_t i = 0; i < n; ++i) a(i, i) += 1.0;
        sys.lhs.push_back({orders[k], la::CscMatrix::from_dense(a)});
    }
    for (const double b : rhs_orders)
        sys.rhs.push_back(
            {b, la::CscMatrix::from_dense(random_matrix(n, p, gen, 1.0))});
    return sys;
}

std::vector<wave::Source> test_inputs(la::index_t p) {
    std::vector<wave::Source> u;
    for (la::index_t i = 0; i < p; ++i) {
        if (i % 2 == 0)
            u.push_back(wave::smooth_step(1.0 + 0.5 * static_cast<double>(i),
                                          0.05, 0.3));
        else
            u.push_back(wave::sine(0.8, 0.9 + 0.3 * static_cast<double>(i)));
    }
    return u;
}

double rel_diff(const la::Matrixd& a, const la::Matrixd& b) {
    return la::max_abs_diff(a, b) / (1.0 + a.max_abs());
}

/// Facade shorthand: one scenario against a handle.
api::SolveResult run(api::Engine& eng, api::SystemHandle h,
                     const std::vector<wave::Source>& sources, double t_end,
                     la::index_t steps, api::MethodConfig config) {
    api::Scenario sc;
    sc.sources = sources;
    sc.t_end = t_end;
    sc.steps = steps;
    sc.config = std::move(config);
    return eng.run(h, sc);
}

struct Scenario {
    unsigned seed;
    std::vector<double> orders;      ///< K = 1..4, mixed integer/fractional
    std::vector<double> rhs_orders;  ///< includes beta_l > 0
    la::index_t n, p, m;             ///< m deliberately not a power of two
};

const std::vector<Scenario>& scenarios() {
    static const std::vector<Scenario> s = {
        {11, {0.6}, {0.0}, 2, 1, 97},
        {12, {1.0, 0.0}, {0.0}, 3, 2, 130},
        {13, {1.5, 0.7, 0.0}, {0.5, 0.0}, 2, 1, 201},
        {14, {2.0, 1.3, 1.0, 0.0}, {1.0, 0.0}, 2, 2, 150},
    };
    return s;
}

} // namespace

/// (a) The fast multi-term path, every backend against the naive oracle —
/// all through ONE warm Engine handle per system, so the comparison also
/// pins that cached pencils/plans/series cannot bleed across backends.
TEST(CrossSolver, MultiTermBackendsAgreeOnRandomSystems) {
    for (const Scenario& sc : scenarios()) {
        const auto sys = random_system(sc.seed, sc.orders, sc.n, sc.p,
                                       sc.rhs_orders);
        const auto u = test_inputs(sc.p);
        api::Engine engine;
        const api::SystemHandle h = engine.add_system(sys);

        opm::MultiTermOptions base;
        base.path = opm::MultiTermPath::toeplitz;
        base.history = opm::HistoryBackend::naive;
        const auto ref = run(engine, h, u, 1.5, sc.m, base);
        for (const auto be : {opm::HistoryBackend::blocked,
                              opm::HistoryBackend::fft,
                              opm::HistoryBackend::automatic}) {
            opm::MultiTermOptions opt = base;
            opt.history = be;
            const auto got = run(engine, h, u, 1.5, sc.m, opt);
            EXPECT_LT(rel_diff(ref.states, got.states), 1e-10)
                << "seed=" << sc.seed << " K=" << sc.orders.size()
                << " m=" << sc.m << " backend=" << static_cast<int>(be);
        }
        // The soe backend is approximate by contract: pinned at its fit
        // tolerance (soe_tol = 1e-8 kernel compression; the exact backends
        // above pin 1e-10), through the same warm Engine handle.
        {
            opm::MultiTermOptions opt = base;
            opt.history = opm::HistoryBackend::soe;
            opt.soe_tol = 1e-8;
            const auto got = run(engine, h, u, 1.5, sc.m, opt);
            EXPECT_LT(rel_diff(ref.states, got.states), 1e-6)
                << "seed=" << sc.seed << " K=" << sc.orders.size()
                << " m=" << sc.m << " backend=soe";
        }
    }
}

/// (b) K = 2 systems with orders {alpha, 0} are exactly the single-term
/// descriptor problem E d^alpha x = A x + B u with E = A_1, A = -A_0 —
/// one Engine holds both representations of the same physics.
TEST(CrossSolver, ReducibleSystemsMatchSingleTermSolver) {
    for (const double alpha : {0.5, 1.0, 1.4}) {
        const auto sys = random_system(21, {alpha, 0.0}, 3, 2, {0.0});
        const auto u = test_inputs(2);
        const la::index_t m = 140;

        opm::DescriptorSystem d;
        d.e = sys.lhs[0].mat;
        d.a = la::CscMatrix::add(-1.0, sys.lhs[1].mat, 0.0, sys.lhs[1].mat);
        d.b = sys.rhs[0].mat;

        api::Engine engine;
        const api::SystemHandle hm = engine.add_system(sys);
        const api::SystemHandle hd = engine.add_system(d);

        opm::MultiTermOptions mopt;
        mopt.path = opm::MultiTermPath::toeplitz;
        const auto mt = run(engine, hm, u, 2.0, m, mopt);

        opm::OpmOptions sopt;
        sopt.alpha = alpha;
        sopt.path = opm::OpmPath::toeplitz;
        const auto st = run(engine, hd, u, 2.0, m, sopt);

        EXPECT_LT(rel_diff(st.states, mt.states), 1e-9) << "alpha=" << alpha;
    }
}

/// (c) The dense Kronecker ground truth — the "do not solve it this way"
/// formulation of eq. (15)/(27), solved that way.
TEST(CrossSolver, MultiTermMatchesKroneckerOracle) {
    for (const Scenario& sc : {scenarios()[0], scenarios()[2]}) {
        const la::index_t m = 33;  // O((nm)^3): keep the oracle small
        const double t_end = 1.2;
        const auto sys = random_system(sc.seed, sc.orders, sc.n, sc.p,
                                       sc.rhs_orders);
        const auto inputs = test_inputs(sc.p);

        api::Engine engine;
        const api::SystemHandle h = engine.add_system(sys);
        opm::MultiTermOptions opt;
        opt.path = opm::MultiTermPath::toeplitz;
        const auto mt = run(engine, h, inputs, t_end, m, opt);

        // Same BPF input coefficients the solver used.
        const la::Vectord edges = wave::uniform_edges(t_end, m);
        la::Matrixd u(sc.p, m);
        for (la::index_t i = 0; i < sc.p; ++i) {
            const la::Vectord ui = wave::project_average(
                inputs[static_cast<std::size_t>(i)], edges, opt.quad_points,
                opt.quad_panels);
            for (la::index_t j = 0; j < m; ++j)
                u(i, j) = ui[static_cast<std::size_t>(j)];
        }
        const la::Matrixd ref = opm::solve_multiterm_kronecker_reference(
            sys, u, t_end / static_cast<double>(m));
        EXPECT_LT(rel_diff(ref, mt.states), 1e-8)
            << "seed=" << sc.seed << " K=" << sc.orders.size();
    }
}

/// (d) Grünwald–Letnikov on the half-order companion embedding of a
/// commensurate multi-term system: a different discretization entirely,
/// so agreement is at the truncation-error level and tightens with m.
TEST(CrossSolver, CommensurateSystemMatchesGrunwaldStepper) {
    // d^{1/2} relaxation: the K = 2 system d^{0.5} x + x = u.
    opm::MultiTermSystem mt;
    {
        la::Triplets one(1, 1);
        one.add(0, 0, 1.0);
        mt.lhs.push_back({0.5, la::CscMatrix(one)});
        mt.lhs.push_back({0.0, la::CscMatrix(one)});
        mt.rhs.push_back({0.0, la::CscMatrix(one)});
    }
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.2)};
    const double t_end = 2.0;
    const la::index_t m = 900;  // non-power-of-two

    opm::DescriptorSystem d;
    {
        la::Triplets e(1, 1), a(1, 1), b(1, 1);
        e.add(0, 0, 1.0);
        a.add(0, 0, -1.0);
        b.add(0, 0, 1.0);
        d.e = la::CscMatrix(e);
        d.a = la::CscMatrix(a);
        d.b = la::CscMatrix(b);
    }

    api::Engine engine;
    const api::SystemHandle hm = engine.add_system(mt);
    const api::SystemHandle hd = engine.add_system(d);
    const auto res = run(engine, hm, u, t_end, m, opm::MultiTermOptions{});

    opmsim::transient::GrunwaldOptions gopt;
    gopt.alpha = 0.5;
    const auto gl = run(engine, hd, u, t_end, m, gopt);

    for (double t : {0.5, 1.0, 1.8})
        EXPECT_NEAR(res.outputs[0].at(t), gl.outputs[0].at(t), 1.5e-2) << t;
}

/// (d') Bagley–Torvik form x'' + d^{3/2} x + x = u through the 4-state
/// alpha = 1/2 companion system, marched with Grünwald–Letnikov.
TEST(CrossSolver, BagleyTorvikMatchesGrunwaldCompanion) {
    opm::MultiTermSystem mt;
    {
        la::Triplets one(1, 1);
        one.add(0, 0, 1.0);
        mt.lhs.push_back({2.0, la::CscMatrix(one)});
        mt.lhs.push_back({1.5, la::CscMatrix(one)});
        mt.lhs.push_back({0.0, la::CscMatrix(one)});
        mt.rhs.push_back({0.0, la::CscMatrix(one)});
    }
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.3)};
    const double t_end = 3.0;
    const la::index_t m = 1200;

    // zeta = d^{1/2}: z = (x, zeta x, x', zeta^3 x); zeta z4 = u - z1 - z4.
    opm::DescriptorSystem comp;
    {
        la::Triplets e(4, 4), a(4, 4), b(4, 1);
        for (int i = 0; i < 4; ++i) e.add(i, i, 1.0);
        a.add(0, 1, 1.0);
        a.add(1, 2, 1.0);
        a.add(2, 3, 1.0);
        a.add(3, 0, -1.0);
        a.add(3, 3, -1.0);
        b.add(3, 0, 1.0);
        comp.e = la::CscMatrix(e);
        comp.a = la::CscMatrix(a);
        comp.b = la::CscMatrix(b);
        la::Triplets c(1, 4);
        c.add(0, 0, 1.0);
        comp.c = la::CscMatrix(c);
    }

    api::Engine engine;
    const api::SystemHandle hm = engine.add_system(mt);
    const api::SystemHandle hc = engine.add_system(comp);
    const auto res = run(engine, hm, u, t_end, m, opm::MultiTermOptions{});

    opmsim::transient::GrunwaldOptions gopt;
    gopt.alpha = 0.5;
    const auto gl = run(engine, hc, u, t_end, m, gopt);

    for (double t : {0.8, 1.5, 2.7})
        EXPECT_NEAR(res.outputs[0].at(t), gl.outputs[0].at(t), 4e-2) << t;
}

/// (e) IC-bearing oracle, enabled by GrunwaldOptions::x0: the fractional
/// relaxation d^{0.5} x = -x + u started from x0 = 0.7, solved by OPM and
/// by Grünwald–Letnikov with the SAME Caputo-shift convention.  Different
/// discretizations, so truncation-level tolerance.
TEST(CrossSolver, InitialConditionOraclesAgreeAcrossSolvers) {
    opm::DescriptorSystem d;
    {
        la::Triplets e(1, 1), a(1, 1), b(1, 1);
        e.add(0, 0, 1.0);
        a.add(0, 0, -1.0);
        b.add(0, 0, 1.0);
        d.e = la::CscMatrix(e);
        d.a = la::CscMatrix(a);
        d.b = la::CscMatrix(b);
    }
    const std::vector<wave::Source> u = {wave::smooth_step(0.5, 0.0, 0.2)};
    const double t_end = 2.0;
    const la::index_t m = 1500;
    const la::Vectord x0 = {0.7};

    api::Engine engine;
    const api::SystemHandle h = engine.add_system(d);

    opm::OpmOptions oopt;
    oopt.alpha = 0.5;
    oopt.x0 = x0;
    const auto opm_res = run(engine, h, u, t_end, m, oopt);

    opmsim::transient::GrunwaldOptions gopt;
    gopt.alpha = 0.5;
    gopt.x0 = x0;
    const auto gl = run(engine, h, u, t_end, m, gopt);

    EXPECT_EQ(gl.states(0, 0), 0.7);  // x(0) = x0 is part of the result
    for (double t : {0.3, 0.9, 1.7})
        EXPECT_NEAR(opm_res.outputs[0].at(t), gl.outputs[0].at(t), 1.5e-2) << t;
}

/// (e') The x0 handling is EXACTLY the documented Caputo shift: GL with x0
/// must equal GL with zero IC on the shifted system (extra constant input
/// carrying A x0) plus x0 — to the last bit.
TEST(CrossSolver, GrunwaldInitialStateIsTheCaputoShift) {
    std::mt19937 gen(77);
    const la::index_t n = 3;
    la::Matrixd am = random_matrix(n, n, gen, 0.4);
    for (la::index_t i = 0; i < n; ++i) am(i, i) -= 1.5;
    const la::Matrixd bm = random_matrix(n, 1, gen, 1.0);

    opm::DescriptorSystem sys;
    sys.e = la::CscMatrix::identity(n);
    sys.a = la::CscMatrix::from_dense(am);
    sys.b = la::CscMatrix::from_dense(bm);

    const la::Vectord x0 = {0.3, -0.2, 0.5};
    const la::Vectord ax0 = sys.a.matvec(x0);
    const std::vector<wave::Source> u = {wave::sine(1.0, 0.7)};
    const double t_end = 1.5;
    const la::index_t m = 200;

    opmsim::transient::GrunwaldOptions opt;
    opt.alpha = 0.6;
    opt.x0 = x0;
    const auto with_ic = opmsim::transient::simulate_grunwald(sys, u, t_end, m, opt);

    // Shifted system: same E/A, inputs extended with a unit step feeding
    // the constant A x0 column.
    opm::DescriptorSystem shifted = sys;
    {
        la::Matrixd b2(n, 2);
        for (la::index_t i = 0; i < n; ++i) {
            b2(i, 0) = bm(i, 0);
            b2(i, 1) = ax0[static_cast<std::size_t>(i)];
        }
        shifted.b = la::CscMatrix::from_dense(b2, /*drop_tol=*/-1.0);
    }
    opmsim::transient::GrunwaldOptions zopt;
    zopt.alpha = 0.6;
    const auto zero_ic = opmsim::transient::simulate_grunwald(
        shifted, {u[0], wave::step(1.0)}, t_end, m, zopt);

    for (la::index_t k = 0; k <= m; ++k)
        for (la::index_t i = 0; i < n; ++i)
            EXPECT_NEAR(with_ic.states(i, k),
                        zero_ic.states(i, k) + x0[static_cast<std::size_t>(i)],
                        1e-13)
                << "k=" << k << " i=" << i;
}
