/// \file test_opm_adaptive.cpp
/// \brief Tests for adaptive-step OPM (paper §III-B, eq. 25).

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "opm/adaptive.hpp"
#include "opm/mittag_leffler.hpp"
#include "opm/solver.hpp"

namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

namespace {

opm::DenseDescriptorSystem scalar_system(double lambda) {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd{{1.0}};
    s.a = la::Matrixd{{lambda}};
    s.b = la::Matrixd{{1.0}};
    return s;
}

/// Two-time-scale system: fast transient then slow drift — the classic
/// motivation for adaptive stepping.
opm::DenseDescriptorSystem stiff_system() {
    opm::DenseDescriptorSystem s;
    s.e = la::Matrixd::identity(2);
    s.a = la::Matrixd{{-200.0, 0.0}, {0.0, -0.5}};
    s.b = la::Matrixd{{200.0}, {0.5}};
    return s;
}

} // namespace

TEST(AdaptiveOpm, TracksRcResponseWithinTolerance) {
    opm::AdaptiveOptions opt;
    opt.tol = 1e-5;
    const auto res = opm::simulate_opm_adaptive(scalar_system(-1.0),
                                                {wave::step(1.0)}, 5.0, opt);
    EXPECT_GT(res.accepted, 0);
    for (double t : {0.5, 2.0, 4.5})
        EXPECT_NEAR(res.outputs[0].at(t), 1.0 - std::exp(-t), 5e-3) << t;
    // edges cover the horizon
    EXPECT_NEAR(res.edges.back(), 5.0, 1e-9);
}

TEST(AdaptiveOpm, UsesFewerStepsThanUniformAtEqualAccuracy) {
    // The stiff system needs small steps only during the fast transient.
    opm::AdaptiveOptions opt;
    opt.tol = 1e-4;
    opt.h_init = 1e-3;
    opt.h_max = 1.0;
    const auto res =
        opm::simulate_opm_adaptive(stiff_system(), {wave::step(1.0)}, 10.0, opt);

    // Uniform OPM would need h ~ the smallest adaptive step everywhere.
    double hmin = 1e300, hmax = 0;
    for (double h : res.steps) {
        hmin = std::min(hmin, h);
        hmax = std::max(hmax, h);
    }
    EXPECT_GT(hmax / hmin, 20.0) << "controller should stretch the step widely";
    const la::index_t uniform_equivalent =
        static_cast<la::index_t>(10.0 / hmin);
    EXPECT_LT(static_cast<double>(res.accepted),
              0.25 * static_cast<double>(uniform_equivalent));

    // Accuracy: both states near their closed forms at spot times.
    for (double t : {0.05, 1.0, 8.0}) {
        EXPECT_NEAR(res.outputs[0].at(t), 1.0 - std::exp(-200.0 * t), 2e-2) << t;
        EXPECT_NEAR(res.outputs[1].at(t), 1.0 - std::exp(-0.5 * t), 2e-2) << t;
    }
}

TEST(AdaptiveOpm, GrowsStepOnSmoothProblems) {
    opm::AdaptiveOptions opt;
    opt.tol = 1e-3;
    opt.h_init = 0.01;
    opt.h_max = 2.0;
    const auto res = opm::simulate_opm_adaptive(scalar_system(-0.2),
                                                {wave::step(1.0)}, 10.0, opt);
    EXPECT_GT(res.steps.back(), 4.0 * res.steps.front());
}

TEST(AdaptiveOpm, RejectsThenShrinksOnSharpFeature) {
    // A pulse in the middle of an otherwise quiet window forces rejections.
    opm::AdaptiveOptions opt;
    opt.tol = 1e-5;
    opt.h_init = 0.5;
    opt.h_max = 1.0;
    const auto res = opm::simulate_opm_adaptive(
        scalar_system(-1.0), {wave::pulse(1.0, 4.0, 0.05, 0.5, 0.05)}, 10.0, opt);
    EXPECT_GT(res.rejected, 0);
    EXPECT_NEAR(res.outputs[0].at(4.4),
                // response inside the pulse: roughly 1 - e^{-(t-4)}
                1.0 - std::exp(-0.35), 0.1);
}

TEST(AdaptiveOpm, FractionalAdaptiveMatchesOracle) {
    opm::AdaptiveOptions opt;
    opt.alpha = 0.5;
    opt.tol = 1e-4;
    opt.h_init = 0.02;
    const auto res = opm::simulate_opm_adaptive(scalar_system(-1.0),
                                                {wave::step(1.0)}, 2.0, opt);
    for (double t : {0.5, 1.0, 1.8})
        EXPECT_NEAR(res.outputs[0].at(t),
                    opm::ml_step_response(0.5, -1.0, 1.0, t), 2e-2)
            << t;
}

TEST(AdaptiveOpm, ConstantStepIntegerOrderIsExactlyTrapezoidal) {
    // Pin the controller to a constant step at alpha = 1: the engine's
    // integral-form sweep is algebraically the trapezoidal rule, identical
    // to the uniform differential-form solver.
    opm::AdaptiveOptions opt;
    opt.tol = 1e0;  // everything accepted
    opt.h_init = opt.h_min = opt.h_max = 1.0 / 16.0;
    const auto ad = opm::simulate_opm_adaptive(scalar_system(-1.0),
                                               {wave::step(1.0)}, 1.0, opt);
    ASSERT_EQ(ad.steps.size(), 16u);
    const auto un = opm::simulate_opm(scalar_system(-1.0), {wave::step(1.0)},
                                      1.0, 16);
    EXPECT_LT(la::max_abs_diff(ad.coeffs, un.coeffs), 1e-10);
}

TEST(AdaptiveOpm, ConstantStepFractionalAgreesWithUniformAndOracle) {
    // Same pinned-step run at alpha = 1/2.  The engine's exact
    // Riemann-Liouville operator and the uniform solver's series operator
    // are different discretizations of the same dynamics: both must sit on
    // the Mittag-Leffler solution, and on each other, at O(h) accuracy —
    // equal steps are exactly the case the paper's eq. (25) excludes.
    opm::AdaptiveOptions opt;
    opt.alpha = 0.5;
    opt.tol = 1e0;
    opt.h_init = opt.h_min = opt.h_max = 1.0 / 128.0;
    const auto ad = opm::simulate_opm_adaptive(scalar_system(-1.0),
                                               {wave::step(1.0)}, 2.0, opt);
    ASSERT_EQ(ad.steps.size(), 256u);
    opm::OpmOptions uo;
    uo.alpha = 0.5;
    const auto un = opm::simulate_opm(scalar_system(-1.0), {wave::step(1.0)},
                                      2.0, 256, uo);
    EXPECT_LT(wave::relative_l2(un.outputs[0], ad.outputs[0]), 1e-2);
    for (double t : {0.5, 1.0, 1.8})
        EXPECT_NEAR(ad.outputs[0].at(t),
                    opm::ml_step_response(0.5, -1.0, 1.0, t), 1e-2)
            << t;
}

TEST(AdaptiveOpm, FractionalMixedStepsRemainAccurate) {
    // Bounding h_max forces the controller through several step regimes,
    // so the history mixes step sizes freely — the case that breaks the
    // eigendecomposition route and that the Riemann-Liouville operator
    // handles natively.
    opm::AdaptiveOptions opt;
    opt.alpha = 0.5;
    opt.tol = 5e-5;
    opt.h_init = 1.0 / 128.0;
    opt.h_max = 1.0 / 8.0;
    const auto res = opm::simulate_opm_adaptive(scalar_system(-1.0),
                                                {wave::step(1.0)}, 2.0, opt);
    for (double t : {0.5, 1.0, 1.8})
        EXPECT_NEAR(res.outputs[0].at(t),
                    opm::ml_step_response(0.5, -1.0, 1.0, t), 1e-2)
            << t;
}

TEST(AdaptiveOpm, HonorsStepBudget) {
    opm::AdaptiveOptions opt;
    opt.tol = 1e-14;  // unreachable
    opt.h_min = 1e-6;
    opt.h_init = 1e-6;
    opt.max_steps = 50;
    EXPECT_THROW(opm::simulate_opm_adaptive(scalar_system(-1.0),
                                            {wave::sine(1.0, 60.0)}, 1.0, opt),
                 std::invalid_argument);
}

TEST(AdaptiveOpm, ValidatesOptions) {
    opm::AdaptiveOptions bad;
    bad.tol = -1.0;
    EXPECT_THROW(opm::simulate_opm_adaptive(scalar_system(-1.0),
                                            {wave::step(1.0)}, 1.0, bad),
                 std::invalid_argument);
    opm::AdaptiveOptions bad2;
    bad2.h_init = 1.0;
    bad2.h_max = 0.1;
    EXPECT_THROW(opm::simulate_opm_adaptive(scalar_system(-1.0),
                                            {wave::step(1.0)}, 1.0, bad2),
                 std::invalid_argument);
}

TEST(AdaptiveOpm, InitialConditionSupported) {
    opm::AdaptiveOptions opt;
    opt.tol = 1e-5;
    opt.x0 = {2.0};
    const auto res = opm::simulate_opm_adaptive(scalar_system(-1.0),
                                                {wave::step(0.0)}, 3.0, opt);
    for (double t : {0.5, 2.5})
        EXPECT_NEAR(res.outputs[0].at(t), 2.0 * std::exp(-t), 1e-2) << t;
}

TEST(AdaptiveOpm, FactorizationCacheBoundsWork) {
    // With halving/doubling quantization, far fewer pencils than steps.
    opm::AdaptiveOptions opt;
    opt.tol = 1e-4;
    const auto res = opm::simulate_opm_adaptive(scalar_system(-1.0),
                                                {wave::step(1.0)}, 5.0, opt);
    EXPECT_GT(res.accepted, 4);
    EXPECT_LE(res.diag.factorizations + res.diag.factor_cache_hits,
              res.accepted + res.rejected + 2);
}
