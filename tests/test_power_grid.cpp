/// \file test_power_grid.cpp
/// \brief Tests for the 3-D power-grid generator (the Table II substrate):
///        sizes, structure, determinism, and cross-model agreement.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/power_grid.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "transient/steppers.hpp"

namespace circuit = opmsim::circuit;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace wave = opmsim::wave;

namespace {

circuit::PowerGridSpec small_spec() {
    circuit::PowerGridSpec s;
    s.nx = 6;
    s.ny = 5;
    s.nz = 3;
    s.num_loads = 4;
    s.load_channels = 2;
    return s;
}

} // namespace

TEST(PowerGrid, ModelSizesMatchTopology) {
    const auto spec = small_spec();
    const auto pg = circuit::build_power_grid(spec);
    const la::index_t n_nodes = spec.nx * spec.ny * spec.nz;
    const la::index_t n_vias = spec.nx * spec.ny * (spec.nz - 1);
    EXPECT_EQ(pg.second_order.num_states(), n_nodes);
    EXPECT_EQ(pg.mna.num_states(), n_nodes + n_vias);
    EXPECT_EQ(pg.mna_layout.num_inductors, n_vias);
    EXPECT_EQ(pg.mna_layout.num_vsources, 0);  // pads are Norton models
    // paper ratio check: second-order strictly smaller than MNA.
    EXPECT_LT(pg.second_order.num_states(), pg.mna.num_states());
}

TEST(PowerGrid, InputChannelCount) {
    const auto spec = small_spec();
    const auto pg = circuit::build_power_grid(spec);
    EXPECT_EQ(static_cast<la::index_t>(pg.inputs.size()),
              1 + spec.load_channels);
    EXPECT_EQ(pg.mna.num_inputs(), 1 + spec.load_channels);
}

TEST(PowerGrid, GridNodeIndexing) {
    const auto spec = small_spec();
    EXPECT_EQ(circuit::grid_node(spec, 0, 0, 0), 1);
    EXPECT_EQ(circuit::grid_node(spec, 1, 0, 0), 2);
    EXPECT_EQ(circuit::grid_node(spec, 0, 1, 0), 1 + spec.nx);
    EXPECT_EQ(circuit::grid_node(spec, 0, 0, 1), 1 + spec.nx * spec.ny);
    EXPECT_THROW(circuit::grid_node(spec, spec.nx, 0, 0), std::invalid_argument);
}

TEST(PowerGrid, ConductanceAndCapacitanceAreSymmetric) {
    const auto pg = circuit::build_power_grid(small_spec());
    // The second-order matrices (node space) must be symmetric: C, G, Gamma.
    for (const auto& term : pg.second_order.lhs) {
        const la::Matrixd m = term.mat.to_dense();
        EXPECT_LT(la::max_abs_diff(m, m.transposed()), 1e-14)
            << "order " << term.order;
    }
}

TEST(PowerGrid, DeterministicForFixedSeed) {
    const auto a = circuit::build_power_grid(small_spec());
    const auto b = circuit::build_power_grid(small_spec());
    EXPECT_EQ(a.netlist.elements().size(), b.netlist.elements().size());
    const la::Matrixd ba = a.mna.b.to_dense();
    const la::Matrixd bb = b.mna.b.to_dense();
    EXPECT_LT(la::max_abs_diff(ba, bb), 0.0 + 1e-300);

    auto spec2 = small_spec();
    spec2.seed = 1234;
    const auto c = circuit::build_power_grid(spec2);
    // different seed -> loads land elsewhere (B differs)
    EXPECT_GT(la::max_abs_diff(ba, c.mna.b.to_dense()), 0.0);
}

TEST(PowerGrid, MonitorsAreValidBottomLayerNodes) {
    const auto spec = small_spec();
    const auto pg = circuit::build_power_grid(spec);
    ASSERT_EQ(pg.monitors.size(), 3u);
    for (const auto n : pg.monitors) {
        EXPECT_GE(n, 1);
        EXPECT_LE(n, spec.nx * spec.ny);  // z = 0 layer
    }
    EXPECT_EQ(pg.second_order.c.rows(), 3);
    EXPECT_EQ(pg.mna.c.rows(), 3);
}

TEST(PowerGrid, SupplyRampSettlesNearVdd) {
    // With no loads switching (peak = 0), every node must settle to ~VDD.
    auto spec = small_spec();
    spec.load_peak = 0.0;
    const auto pg = circuit::build_power_grid(spec);
    opmsim::transient::TransientOptions topt;
    topt.method = opmsim::transient::Method::trapezoidal;
    const auto res = opmsim::transient::simulate_transient(
        pg.mna, pg.inputs, 4e-9, 400, topt);
    for (const auto& y : res.outputs)
        EXPECT_NEAR(y.at(3.9e-9), spec.vdd, 5e-3);
}

TEST(PowerGrid, LoadsCauseIrDrop) {
    const auto pg = circuit::build_power_grid(small_spec());
    opmsim::transient::TransientOptions topt;
    topt.method = opmsim::transient::Method::trapezoidal;
    const auto res = opmsim::transient::simulate_transient(
        pg.mna, pg.inputs, 3e-9, 300, topt);
    // After the ramp, the monitored bottom nodes dip below VDD when loads
    // fire but stay above 50% (sane sizing).
    double vmin = 1e9;
    for (const auto& y : res.outputs)
        for (double t = 1.2e-9; t < 2.9e-9; t += 0.05e-9) vmin = std::min(vmin, y.at(t));
    EXPECT_LT(vmin, 0.9999);
    EXPECT_GT(vmin, 0.5);
}

TEST(PowerGrid, CrossModelAgreement) {
    // The same physical grid through both formulations: second-order OPM
    // vs MNA trapezoidal must coincide on the monitored nodes.
    const auto pg = circuit::build_power_grid(small_spec());
    const double t_end = 2e-9;
    const la::index_t m = 400;

    const auto so = opm::simulate_multiterm(pg.second_order, pg.inputs, t_end, m);
    opmsim::transient::TransientOptions topt;
    topt.method = opmsim::transient::Method::trapezoidal;
    const auto tr = opmsim::transient::simulate_transient(pg.mna, pg.inputs,
                                                          t_end, m, topt);
    const auto ref = opm::endpoint_outputs_from_coeffs(pg.second_order.c,
                                                       so.coeffs, so.edges);
    const double err = wave::average_relative_error_db(ref, tr.outputs);
    EXPECT_LT(err, -55.0) << "models should agree well below -55 dB";
}

TEST(PowerGrid, RejectsDegenerateSpecs) {
    circuit::PowerGridSpec spec;
    spec.nx = 1;
    EXPECT_THROW(circuit::build_power_grid(spec), std::invalid_argument);
    spec = {};
    spec.num_loads = 0;
    EXPECT_THROW(circuit::build_power_grid(spec), std::invalid_argument);
}
