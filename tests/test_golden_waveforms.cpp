/// \file test_golden_waveforms.cpp
/// \brief Golden-waveform regression tests for the example scenarios.
///
/// The committed reference values below were produced by the seed solver
/// (pre-engine-unification) at double precision; the tolerances sit orders
/// of magnitude above legitimate backend-level roundoff differences
/// (~1e-13) but far below any physical shift.  If a solver refactor moves
/// these numbers, it changed the physics, not just the arithmetic —
/// investigate before touching the constants.

#include <gtest/gtest.h>

#include <vector>

#include "circuit/mna.hpp"
#include "circuit/power_grid.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"

namespace circuit = opmsim::circuit;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace wave = opmsim::wave;

namespace {

struct GoldenSample {
    double t;
    double v;
};

} // namespace

/// examples/supercapacitor.cpp: fractional CPE charging through 10 ohm,
/// alpha = 0.6, t_end = 20 s, m = 2000.
TEST(GoldenWaveforms, SupercapacitorCharging) {
    const double alpha = 0.6, r = 10.0, c = 0.05;
    circuit::Netlist nl("supercap charger");
    const la::index_t in = nl.node("charger");
    const la::index_t cap = nl.node("cap");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("R1", in, cap, r);
    nl.cpe("Csc", cap, 0, c, alpha);

    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_fractional_mna(nl, alpha, &lay);
    sys.c = circuit::node_voltage_selector(lay, {cap});

    opm::OpmOptions opt;
    opt.alpha = alpha;
    const auto res = opm::simulate_opm(sys, {wave::step(1.0)}, 20.0, 2000, opt);

    const std::vector<GoldenSample> golden = {
        {0.5, 6.634615593117529e-01},  {1.0, 7.644278403850410e-01},
        {2.0, 8.419406853101705e-01},  {5.0, 9.095914964064366e-01},
        {10.0, 9.411032365096873e-01}, {19.0, 9.603504918985275e-01},
        {19.995, 9.615752164547561e-01},
    };
    for (const auto& g : golden)
        EXPECT_NEAR(res.outputs[0].at(g.t), g.v, 1e-9) << "t=" << g.t;
}

/// examples/power_grid_ir_drop.cpp: 12x12x3 grid, 24 loads, m = 300 steps
/// of 10 ps — mid-simulation and end states of all three monitors, on
/// both multi-term execution paths.
TEST(GoldenWaveforms, PowerGridIrDropEndStates) {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 12;
    spec.nz = 3;
    spec.num_loads = 24;
    spec.load_channels = 4;
    spec.load_peak = 8e-3;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);

    // {channel, t(mid) value, t(end) value} recorded per monitor.
    const double mid_t = 1.5e-9;
    const std::vector<double> golden_mid = {9.870685653784728e-01,
                                            9.960496953988405e-01,
                                            9.860604383325303e-01};
    const std::vector<double> golden_end = {9.874266131017616e-01,
                                            9.964344953351907e-01,
                                            9.859264180973202e-01};

    for (const auto path :
         {opm::MultiTermPath::recurrence, opm::MultiTermPath::toeplitz}) {
        opm::MultiTermOptions opt;
        opt.path = path;
        const auto res =
            opm::simulate_multiterm(pg.second_order, pg.inputs, 3e-9, 300, opt);
        ASSERT_EQ(res.outputs.size(), golden_end.size());
        // The two paths discretize identically (same algebra); the banded
        // recurrence is exact in a different association order, so the
        // cross-path tolerance is looser than the per-path one.
        const double tol = path == opm::MultiTermPath::recurrence ? 1e-9 : 1e-7;
        for (std::size_t ch = 0; ch < golden_end.size(); ++ch) {
            EXPECT_NEAR(res.outputs[ch].at(mid_t), golden_mid[ch], tol)
                << "path=" << static_cast<int>(path) << " ch=" << ch;
            EXPECT_NEAR(res.outputs[ch].values().back(), golden_end[ch], tol)
                << "path=" << static_cast<int>(path) << " ch=" << ch;
        }
    }
}

/// The fractional-decap grid variant (decap_alpha < 1) is pinned too: it
/// runs the batched multi-term fast path on a real circuit, and its
/// physics must stay put as the engines evolve.  Reference values from
/// the naive-oracle backend at the same grid.
TEST(GoldenWaveforms, FractionalDecapGridMatchesOracleBackend) {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 6;
    spec.nz = 2;
    spec.num_loads = 8;
    spec.load_channels = 2;
    spec.load_peak = 8e-3;
    spec.decap_alpha = 0.8;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    EXPECT_DOUBLE_EQ(pg.second_order.lhs.front().order, 1.8);

    opm::MultiTermOptions naive;
    naive.history = opm::HistoryBackend::naive;
    const auto ref =
        opm::simulate_multiterm(pg.second_order, pg.inputs, 2e-9, 200, naive);
    opm::MultiTermOptions fast;
    fast.history = opm::HistoryBackend::automatic;
    const auto got =
        opm::simulate_multiterm(pg.second_order, pg.inputs, 2e-9, 200, fast);
    EXPECT_LT(la::max_abs_diff(ref.coeffs, got.coeffs),
              1e-10 * (1.0 + ref.coeffs.max_abs()));
    // Supply still settles near VDD despite the lossy decaps.
    for (const auto& w : got.outputs) EXPECT_NEAR(w.at(1.9e-9), 1.0, 0.1);
}
