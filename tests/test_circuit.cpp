/// \file test_circuit.cpp
/// \brief Tests for the netlist and MNA assembly (stamp-level checks
///        against hand-derived matrices and DC/transient closed forms).

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/second_order.hpp"
#include "la/dense_lu.hpp"
#include "opm/solver.hpp"

namespace circuit = opmsim::circuit;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace wave = opmsim::wave;

TEST(Netlist, NodeBookkeeping) {
    circuit::Netlist nl;
    const la::index_t a = nl.node("a");
    const la::index_t b = nl.node("b");
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(nl.node("a"), a);  // idempotent lookup
    nl.resistor("R1", a, b, 10.0);
    nl.vsource("V1", a, 0, 0);
    EXPECT_EQ(nl.num_nodes(), 2);
    EXPECT_EQ(nl.num_inputs(), 1);
    EXPECT_EQ(nl.count(circuit::ElementKind::resistor), 1);
}

TEST(Netlist, RejectsNonphysicalValues) {
    circuit::Netlist nl;
    EXPECT_THROW(nl.resistor("R", 1, 0, -5.0), std::invalid_argument);
    EXPECT_THROW(nl.capacitor("C", 1, 0, 0.0), std::invalid_argument);
    EXPECT_THROW(nl.cpe("Z", 1, 0, 1e-6, 2.5), std::invalid_argument);
}

TEST(Mna, ResistorDividerDcSolution) {
    // V1(1V) - R1(2k) - mid - R2(1k) - gnd: v_mid = 1/3.
    circuit::Netlist nl;
    const auto in = nl.node("in"), mid = nl.node("mid");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("R1", in, mid, 2e3);
    nl.resistor("R2", mid, 0, 1e3);
    circuit::MnaLayout lay;
    const opm::DescriptorSystem sys = circuit::build_mna(nl, &lay);
    EXPECT_EQ(lay.size(), 3);  // 2 nodes + 1 vsource current

    // DC: 0 = A x + B u -> x = -A^{-1} B u.
    const la::Matrixd a = sys.a.to_dense();
    const la::Matrixd b = sys.b.to_dense();
    la::Vectord rhs(3);
    for (la::index_t i = 0; i < 3; ++i) rhs[static_cast<std::size_t>(i)] = -b(i, 0);
    const la::Vectord x = la::solve_dense(a, rhs);
    EXPECT_NEAR(x[static_cast<std::size_t>(lay.voltage_index(in))], 1.0, 1e-12);
    EXPECT_NEAR(x[static_cast<std::size_t>(lay.voltage_index(mid))], 1.0 / 3.0, 1e-12);
    // Source current: 1V across 3k total -> 1/3 mA drawn from the source.
    EXPECT_NEAR(std::abs(x[2]), 1.0 / 3e3, 1e-12);
}

TEST(Mna, CapacitorStampsIntoE) {
    circuit::Netlist nl;
    nl.capacitor("C1", 1, 2, 3e-12);
    nl.resistor("R1", 1, 0, 1.0);
    nl.resistor("R2", 2, 0, 1.0);
    const opm::DescriptorSystem sys = circuit::build_mna(nl);
    EXPECT_DOUBLE_EQ(sys.e.coeff(0, 0), 3e-12);
    EXPECT_DOUBLE_EQ(sys.e.coeff(0, 1), -3e-12);
    EXPECT_DOUBLE_EQ(sys.e.coeff(1, 0), -3e-12);
    EXPECT_DOUBLE_EQ(sys.e.coeff(1, 1), 3e-12);
    // conductances land in A with negative sign (A = -G).
    EXPECT_DOUBLE_EQ(sys.a.coeff(0, 0), -1.0);
}

TEST(Mna, InductorBranchRelation) {
    // V - L loop: branch row enforces L di/dt = v1.
    circuit::Netlist nl;
    nl.vsource("V1", 1, 0, 0);
    nl.inductor("L1", 1, 0, 2e-9);
    circuit::MnaLayout lay;
    const opm::DescriptorSystem sys = circuit::build_mna(nl, &lay);
    ASSERT_EQ(lay.size(), 3);  // v1, i_V, i_L
    const la::index_t il = 2;  // branches in element order: V1 first, L1 next
    EXPECT_DOUBLE_EQ(sys.e.coeff(il, il), 2e-9);
    EXPECT_DOUBLE_EQ(sys.a.coeff(il, 0), 1.0);   // L di/dt = +v1
    EXPECT_DOUBLE_EQ(sys.a.coeff(0, il), -1.0);  // KCL: i_L leaves node 1
}

TEST(Mna, VsourceIsAlgebraicRow) {
    circuit::Netlist nl;
    nl.vsource("V1", 1, 0, 0);
    nl.resistor("R1", 1, 0, 1e3);
    const opm::DescriptorSystem sys = circuit::build_mna(nl);
    // Row 1 (branch) has no E entries: pure algebraic constraint.
    EXPECT_DOUBLE_EQ(sys.e.coeff(1, 1), 0.0);
    EXPECT_DOUBLE_EQ(sys.a.coeff(1, 0), -1.0);  // -(v1) + u = 0 form: A=-A0
    EXPECT_DOUBLE_EQ(sys.b.coeff(1, 0), 1.0);
}

TEST(Mna, VccsStampSigns) {
    // VCCS injecting gm*(v3-v4) into node1/out of node2.
    circuit::Netlist nl;
    nl.ensure_node(4);
    for (la::index_t n = 1; n <= 4; ++n)
        nl.resistor("R" + std::to_string(n), n, 0, 1.0);
    nl.vccs("G1", 1, 2, 3, 4, 0.5);
    const opm::DescriptorSystem sys = circuit::build_mna(nl);
    // A = -A0: injection into node 1 gives +gm at (0, 2).
    EXPECT_DOUBLE_EQ(sys.a.coeff(0, 2), 0.5);
    EXPECT_DOUBLE_EQ(sys.a.coeff(0, 3), -0.5);
    EXPECT_DOUBLE_EQ(sys.a.coeff(1, 2), -0.5);
    EXPECT_DOUBLE_EQ(sys.a.coeff(1, 3), 0.5);
}

TEST(Mna, RcTransientThroughOpm) {
    // End-to-end: netlist -> MNA -> OPM -> analytic RC response.
    circuit::Netlist nl;
    const auto in = nl.node("in"), out = nl.node("out");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("R1", in, out, 1e3);
    nl.capacitor("C1", out, 0, 1e-9);
    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_mna(nl, &lay);
    sys.c = circuit::node_voltage_selector(lay, {out});
    const double tau = 1e-6;
    const auto res = opm::simulate_opm(sys, {wave::step(1.0)}, 5 * tau, 500);
    for (double t : {0.5 * tau, 2.0 * tau})
        EXPECT_NEAR(res.outputs[0].at(t), 1.0 - std::exp(-t / tau), 1e-3) << t;
}

TEST(Mna, CpeRejectedByIntegerBuilder) {
    circuit::Netlist nl;
    nl.cpe("Z1", 1, 0, 1e-6, 0.5);
    nl.resistor("R1", 1, 0, 1.0);
    EXPECT_THROW(circuit::build_mna(nl), std::invalid_argument);
}

TEST(Mna, FractionalBuilderProducesSingleOrderSystem) {
    // R-CPE relaxation: c d^a v = (u - v)/R.
    circuit::Netlist nl;
    const auto in = nl.node("in"), out = nl.node("out");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("R1", in, out, 2.0);
    nl.cpe("Z1", out, 0, 3.0, 0.5);
    const opm::DescriptorSystem sys = circuit::build_fractional_mna(nl, 0.5);
    EXPECT_DOUBLE_EQ(sys.e.coeff(1, 1), 3.0);  // CPE stamp in E
    EXPECT_DOUBLE_EQ(sys.e.coeff(0, 0), 0.0);  // resistive node: algebraic
}

TEST(Mna, FractionalBuilderRejectsWrongOrder) {
    circuit::Netlist nl;
    nl.cpe("Z1", 1, 0, 1.0, 0.5);
    nl.resistor("R1", 1, 0, 1.0);
    EXPECT_THROW(circuit::build_fractional_mna(nl, 0.7), std::invalid_argument);
    circuit::Netlist nl2;
    nl2.capacitor("C1", 1, 0, 1.0);
    EXPECT_THROW(circuit::build_fractional_mna(nl2, 0.5), std::invalid_argument);
}

TEST(Mna, MultitermGroupsDistinctOrders) {
    circuit::Netlist nl;
    nl.resistor("R1", 1, 0, 1.0);
    nl.capacitor("C1", 1, 0, 2.0);
    nl.cpe("Z1", 1, 0, 3.0, 0.5);
    nl.cpe("Z2", 1, 0, 4.0, 0.5);   // same order: merged into one term
    nl.isource("I1", 1, 0, 0);
    const opm::MultiTermSystem mt = circuit::build_multiterm_mna(nl);
    ASSERT_EQ(mt.lhs.size(), 3u);  // orders 0, 0.5, 1
    EXPECT_DOUBLE_EQ(mt.lhs[0].order, 0.0);
    EXPECT_DOUBLE_EQ(mt.lhs[1].order, 0.5);
    EXPECT_DOUBLE_EQ(mt.lhs[2].order, 1.0);
    EXPECT_DOUBLE_EQ(mt.lhs[1].mat.coeff(0, 0), 7.0);  // 3 + 4 merged
}

TEST(SecondOrder, SeriesRlcMatchesMnaThroughOpm) {
    // Same physical RLC driven by a current source, both formulations.
    circuit::Netlist nl;
    const auto n1 = nl.node("n1");
    nl.isource("I1", n1, 0, 0);
    nl.resistor("R1", n1, 0, 2.0);
    nl.capacitor("C1", n1, 0, 0.5);
    nl.inductor("L1", n1, 0, 1.0);

    opm::MultiTermSystem so = circuit::build_second_order(nl);
    circuit::MnaLayout lay;
    opm::DescriptorSystem mna = circuit::build_mna(nl, &lay);
    la::Triplets sel(1, 1);
    sel.add(0, 0, 1.0);
    so.c = la::CscMatrix(sel);
    mna.c = circuit::node_voltage_selector(lay, {n1});

    const std::vector<wave::Source> u = {wave::smooth_step(1e-3, 0.0, 0.5)};
    const auto r_so = opm::simulate_multiterm(so, u, 8.0, 1024);
    const auto r_mna = opm::simulate_opm(mna, u, 8.0, 1024);
    EXPECT_LT(wave::relative_l2(r_mna.outputs[0], r_so.outputs[0]), 2e-3);
}

TEST(SecondOrder, RejectsVsourceAndCpe) {
    circuit::Netlist nl;
    nl.vsource("V1", 1, 0, 0);
    nl.resistor("R1", 1, 0, 1.0);
    EXPECT_THROW(circuit::build_second_order(nl), std::invalid_argument);

    circuit::Netlist nl2;
    nl2.cpe("Z1", 1, 0, 1.0, 0.5);
    EXPECT_THROW(circuit::build_second_order(nl2), std::invalid_argument);
}

TEST(Mna, NodeVoltageSelectorValidation) {
    circuit::MnaLayout lay;
    lay.num_nodes = 3;
    EXPECT_THROW(circuit::node_voltage_selector(lay, {0}), std::invalid_argument);
    EXPECT_THROW(circuit::node_voltage_selector(lay, {4}), std::invalid_argument);
    const la::CscMatrix c = circuit::node_voltage_selector(lay, {2, 3});
    EXPECT_DOUBLE_EQ(c.coeff(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(c.coeff(1, 2), 1.0);
}
