/// \file test_robustness.cpp
/// \brief Numerical-health and failure-isolation layer: the error
///        taxonomy, the LU condition/pivot-growth monitors, every edge of
///        the graceful-degradation ladder (exercised through deterministic
///        fault injection), cooperative run control, and the fault
///        harness's own firing-window semantics.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/power_grid.hpp"
#include "circuit/tline.hpp"
#include "la/dense.hpp"
#include "la/dense_lu.hpp"
#include "la/sparse.hpp"
#include "la/sparse_lu.hpp"
#include "opm/diagnostics.hpp"
#include "opm/solve_cache.hpp"
#include "transient/grunwald.hpp"
#include "util/fault_inject.hpp"
#include "util/status.hpp"
#include "wave/sources.hpp"

namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace circuit = opmsim::circuit;
namespace fault = opmsim::fault;
namespace transient = opmsim::transient;
namespace wave = opmsim::wave;

using opmsim::Diagnostics;
using opmsim::ErrorCode;
using opmsim::Status;
using opmsim::solver_error;
using Kernel = la::SparseLuOptions::Kernel;

namespace {

/// Deterministic xorshift PRNG (no <random> to keep values platform-fixed).
class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed * 0x9E3779B97F4A7C15ull + 1) {}
    double uniform() {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return static_cast<double>(s_ % 1000003u + 1) / 1000004.0;
    }
    la::index_t index(la::index_t bound) {
        return static_cast<la::index_t>(uniform() * static_cast<double>(bound)) %
               bound;
    }

private:
    std::uint64_t s_;
};

/// Random diagonally-bumped sparse matrix (always nonsingular).
la::CscMatrix random_sparse(la::index_t n, la::index_t extra_per_row, Rng& rng) {
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t.add(i, i, 4.0 + rng.uniform());
        for (la::index_t k = 0; k < extra_per_row; ++k)
            t.add(i, rng.index(n), rng.uniform() - 0.5);
    }
    return la::CscMatrix(t);
}

la::CscMatrix power_grid_pencil(la::index_t nxy, double lead = 2.0 / 1e-11) {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = nxy;
    spec.nz = 3;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    return la::CscMatrix::add(lead, pg.mna.e, -1.0, pg.mna.a);
}

la::Vectord dense_oracle(const la::CscMatrix& a, const la::Vectord& b) {
    return la::solve_dense(a.to_dense(), b);
}

bool has_degradation(const Diagnostics& diag, const std::string& prefix) {
    for (const std::string& d : diag.degradations)
        if (d.rfind(prefix, 0) == 0) return true;
    return false;
}

double max_abs_err(const la::Vectord& a, const la::Vectord& b) {
    double m = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/// Every fault-armed test runs through this fixture so a failing assertion
/// can never leak an armed site into later tests.
class FaultLadder : public ::testing::Test {
protected:
    void TearDown() override { fault::disarm_all(); }
};

} // namespace

// ---- taxonomy -------------------------------------------------------------

TEST(StatusTaxonomy, DefaultStatusIsOkAndCodesHaveStableNames) {
    const Status st;
    EXPECT_TRUE(st.ok());
    EXPECT_EQ(st.code, ErrorCode::ok);
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::ok), "ok");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::nonfinite_input),
                 "nonfinite_input");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::singular_pencil),
                 "singular_pencil");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::pivot_breakdown),
                 "pivot_breakdown");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::nonfinite_state),
                 "nonfinite_state");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::deadline_exceeded),
                 "deadline_exceeded");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::cancelled), "cancelled");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::invalid_scenario),
                 "invalid_scenario");
    EXPECT_STREQ(opmsim::error_code_name(ErrorCode::internal_error),
                 "internal_error");
}

TEST(StatusTaxonomy, SolverErrorCarriesItsCodeAndIsANumericalError) {
    const solver_error e(ErrorCode::nonfinite_state, "boom");
    EXPECT_EQ(e.code(), ErrorCode::nonfinite_state);
    // The taxonomy must not break existing catch(numerical_error) retries.
    const opmsim::numerical_error* base = &e;
    EXPECT_STREQ(base->what(), "boom");
}

TEST(StatusTaxonomy, CurrentExceptionClassification) {
    const auto classify = [](auto&& thrower) -> Status {
        try {
            thrower();
        } catch (...) {
            return opmsim::status_from_current_exception();
        }
        return {};
    };
    Status st = classify(
        [] { throw solver_error(ErrorCode::deadline_exceeded, "late"); });
    EXPECT_EQ(st.code, ErrorCode::deadline_exceeded);
    EXPECT_EQ(st.message, "late");

    st = classify([] { throw opmsim::numerical_error("pivot died"); });
    EXPECT_EQ(st.code, ErrorCode::pivot_breakdown);

    st = classify([] { throw std::invalid_argument("bad scenario"); });
    EXPECT_EQ(st.code, ErrorCode::invalid_scenario);

    st = classify([] { throw std::runtime_error("surprise"); });
    EXPECT_EQ(st.code, ErrorCode::internal_error);

    st = classify([] { throw 42; });
    EXPECT_EQ(st.code, ErrorCode::internal_error);
}

// ---- condition / pivot-growth monitors ------------------------------------

TEST(LuMonitors, DenseWellConditionedMatrixReportsHealthyEstimates) {
    la::Matrixd a(3, 3);
    a(0, 0) = 2.0;
    a(1, 1) = 3.0;
    a(2, 2) = 4.0;
    a(0, 1) = 0.5;
    const la::DenseLu<double> lu(a);
    // kappa_1(A) is ~2.4; the Hager estimate must land the right order.
    EXPECT_GT(lu.rcond_estimate(), 0.1);
    EXPECT_LE(lu.rcond_estimate(), 1.0 + 1e-12);
    EXPECT_GE(lu.pivot_growth(), 1.0 - 1e-12);  // no elimination growth here
    EXPECT_LT(lu.pivot_growth(), 2.0);
    EXPECT_NEAR(lu.anorm1(), 4.0, 1e-15);  // max column abs sum
}

TEST(LuMonitors, DenseIllConditionedMatrixReportsTinyRcond) {
    // Hilbert matrix, the classic ill-conditioned test case:
    // kappa_1(H_10) ~ 3.5e13, so rcond must come out near 1e-14.
    const la::index_t n = 10;
    la::Matrixd h(n, n);
    for (la::index_t i = 0; i < n; ++i)
        for (la::index_t j = 0; j < n; ++j)
            h(i, j) = 1.0 / static_cast<double>(i + j + 1);
    const la::DenseLu<double> lu(h);
    EXPECT_GT(lu.rcond_estimate(), 0.0);
    EXPECT_LT(lu.rcond_estimate(), 1e-11);
}

TEST(LuMonitors, DenseSingularMessageNamesThePivotColumn) {
    la::Matrixd a(3, 3);
    a(0, 0) = 1.0;
    a(2, 2) = 1.0;  // column 1 identically zero
    try {
        const la::DenseLu<double> lu(a);
        FAIL() << "expected solver_error(singular_pencil)";
    } catch (const solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::singular_pencil);
        const std::string msg = e.what();
        EXPECT_NE(msg.find("pivot column 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("max|A|"), std::string::npos) << msg;
    }
}

TEST(LuMonitors, DenseTransposeSolveMatchesKnownSolution) {
    Rng rng(7);
    const la::index_t n = 6;
    la::Matrixd a(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        for (la::index_t j = 0; j < n; ++j) a(i, j) = rng.uniform() - 0.5;
        a(i, i) += 4.0;
    }
    la::Vectord x(static_cast<std::size_t>(n));
    for (la::index_t i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] = rng.uniform();
    la::Vectord b(static_cast<std::size_t>(n), 0.0);
    for (la::index_t j = 0; j < n; ++j)  // b = A^T x
        for (la::index_t i = 0; i < n; ++i)
            b[static_cast<std::size_t>(j)] +=
                a(i, j) * x[static_cast<std::size_t>(i)];
    const la::DenseLu<double> lu(a);
    lu.solve_transpose_in_place(b);
    EXPECT_LT(max_abs_err(b, x), 1e-12);
}

TEST(LuMonitors, SparseMonitorsAgreeWithDenseOnPowerGridPencil) {
    const la::CscMatrix a = power_grid_pencil(3);
    const la::SparseLu slu(a);
    const la::DenseLu<double> dlu(a.to_dense());
    EXPECT_GT(slu.rcond_estimate(), 0.0);
    EXPECT_LE(slu.rcond_estimate(), 1.0 + 1e-12);
    // Same estimator on the same matrix: the two must agree to the order.
    const double ratio = slu.rcond_estimate() / dlu.rcond_estimate();
    EXPECT_GT(ratio, 0.05);
    EXPECT_LT(ratio, 20.0);
    EXPECT_GT(slu.pivot_growth(), 0.0);
    EXPECT_TRUE(std::isfinite(slu.pivot_growth()));
    EXPECT_NEAR(slu.anorm1(), dlu.anorm1(), 1e-9 * dlu.anorm1());
}

TEST(LuMonitors, SparseTransposeSolveMatchesKnownSolution) {
    Rng rng(11);
    const la::index_t n = 12;
    const la::CscMatrix a = random_sparse(n, 3, rng);
    la::Vectord x(static_cast<std::size_t>(n));
    for (la::index_t i = 0; i < n; ++i)
        x[static_cast<std::size_t>(i)] = rng.uniform() - 0.5;
    // b = A^T x straight off the CSC arrays.
    la::Vectord b(static_cast<std::size_t>(n), 0.0);
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_ind();
    const auto& vv = a.values();
    for (la::index_t j = 0; j < n; ++j)
        for (la::index_t p = cp[static_cast<std::size_t>(j)];
             p < cp[static_cast<std::size_t>(j) + 1]; ++p)
            b[static_cast<std::size_t>(j)] +=
                vv[static_cast<std::size_t>(p)] *
                x[static_cast<std::size_t>(ri[static_cast<std::size_t>(p)])];
    const la::SparseLu lu(a);
    lu.solve_transpose_in_place(b);
    EXPECT_LT(max_abs_err(b, x), 1e-10);
}

// ---- the graceful-degradation ladder, edge by edge ------------------------

TEST_F(FaultLadder, RejectedSupernodalPivotFallsBackToScalarKernel) {
    const la::CscMatrix a = power_grid_pencil(4);  // n >= 32, supernodal path
    const la::Vectord ones(static_cast<std::size_t>(a.rows()), 1.0);
    const la::Vectord ref = dense_oracle(a, ones);

    const fault::ScopedFault guard(fault::Site::supernodal_pivot,
                                   {.skip = 0, .fire = 1});
    Diagnostics diag;
    opm::PencilSolve ps(nullptr, a, diag);
    EXPECT_EQ(guard.fires(), 1);
    EXPECT_EQ(ps.lu().kernel_used(), Kernel::scalar);
    EXPECT_TRUE(has_degradation(diag, "supernodal_fallback"))
        << ::testing::PrintToString(diag.degradations);
    EXPECT_GT(diag.rcond_estimate, 0.0);

    la::Vectord b = ones;
    ps.solve(b.data(), 1, a.rows());
    double xmax = 0.0;
    for (double v : ref) xmax = std::max(xmax, std::abs(v));
    EXPECT_LT(max_abs_err(b, ref), 1e-9 * (1.0 + xmax));
}

TEST_F(FaultLadder, RejectedScalarPivotEscalatesToStrictPivotingRefactor) {
    Rng rng(3);
    const la::CscMatrix a = random_sparse(8, 2, rng);  // n < 32: scalar kernel
    const la::Vectord ones(8, 1.0);
    const la::Vectord ref = dense_oracle(a, ones);

    const fault::ScopedFault guard(fault::Site::scalar_pivot,
                                   {.skip = 0, .fire = 1});
    Diagnostics diag;
    opm::PencilSolve ps(nullptr, a, diag);
    // First factorization consumed the firing window and threw; the strict
    // pivot_tol = 1.0 retry then succeeded.
    EXPECT_EQ(guard.fires(), 1);
    EXPECT_TRUE(has_degradation(diag, "pivot_tol_refactor"))
        << ::testing::PrintToString(diag.degradations);

    la::Vectord b = ones;
    ps.solve(b.data(), 1, 8);
    EXPECT_LT(max_abs_err(b, ref), 1e-10);
}

TEST_F(FaultLadder, PerturbedFactorTriggersIterativeRefinement) {
    Rng rng(5);
    const la::CscMatrix a = random_sparse(10, 2, rng);
    la::Vectord b(10);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform();
    const la::Vectord ref = dense_oracle(a, b);

    // Scale one stored factor value by 0.1%: the raw solve is ~1e-3 off,
    // which must trip the residual check and be refined away.
    const fault::ScopedFault guard(fault::Site::factor_values,
                                   {.skip = 0, .fire = 1, .value = 1.001});
    Diagnostics diag;
    opm::PencilSolve ps(nullptr, a, diag);
    la::Vectord x = b;
    ps.solve(x.data(), 1, 10);
    EXPECT_GE(diag.refinement_iters, 1);
    EXPECT_LT(max_abs_err(x, ref), 1e-8);
}

TEST_F(FaultLadder, NonFiniteSolutionInvalidatesCachedFactorAndRecovers) {
    Rng rng(9);
    const la::CscMatrix a = random_sparse(9, 2, rng);
    la::Vectord b(9);
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = rng.uniform() - 0.5;
    const la::Vectord ref = dense_oracle(a, b);

    // The first factorization lands in the cache with a NaN poisoned into
    // it; the finite-RHS / non-finite-solution guard must invalidate that
    // cache entry, refactor fresh (the fault window is exhausted by then)
    // and re-solve.
    opm::SolveCaches caches;
    const fault::ScopedFault guard(fault::Site::factor_values,
                                   {.skip = 0, .fire = 1});
    Diagnostics diag;
    opm::PencilSolve ps(&caches, a, diag);
    la::Vectord x = b;
    ps.solve(x.data(), 1, 9);
    EXPECT_TRUE(has_degradation(diag, "cache_invalidated"))
        << ::testing::PrintToString(diag.degradations);
    for (double v : x) EXPECT_TRUE(std::isfinite(v));
    EXPECT_LT(max_abs_err(x, ref), 1e-10);

    // The poisoned factor must never be served again: a fresh PencilSolve
    // on the same caches gets the clean rebuilt factor.
    Diagnostics diag2;
    opm::PencilSolve ps2(&caches, a, diag2);
    la::Vectord x2 = b;
    ps2.solve(x2.data(), 1, 9);
    EXPECT_TRUE(diag2.degradations.empty());
    EXPECT_LT(max_abs_err(x2, ref), 1e-10);
}

TEST_F(FaultLadder, NonFinitePencilRejectedUpFront) {
    la::Triplets t(2, 2);
    t.add(0, 0, 1.0);
    t.add(1, 1, std::numeric_limits<double>::quiet_NaN());
    const la::CscMatrix a(t);
    Diagnostics diag;
    try {
        opm::PencilSolve ps(nullptr, a, diag);
        FAIL() << "expected solver_error(nonfinite_input)";
    } catch (const solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::nonfinite_input);
    }
}

TEST_F(FaultLadder, NonFiniteRhsRejectedWithTaxonomyCode) {
    Rng rng(13);
    const la::CscMatrix a = random_sparse(6, 2, rng);
    Diagnostics diag;
    opm::PencilSolve ps(nullptr, a, diag);
    la::Vectord b(6, 1.0);
    b[3] = std::numeric_limits<double>::infinity();
    try {
        ps.solve(b.data(), 1, 6);
        FAIL() << "expected solver_error(nonfinite_input)";
    } catch (const solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::nonfinite_input);
    }
}

// ---- cooperative run control ----------------------------------------------

TEST(RunControl, CancellationTokenSurfacesAsCancelled) {
    std::atomic<bool> stop{true};
    opmsim::util::RunControl rc;
    rc.cancel = &stop;
    try {
        opmsim::util::check_run_control(&rc);
        FAIL() << "expected solver_error(cancelled)";
    } catch (const solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::cancelled);
    }
    stop.store(false);
    EXPECT_NO_THROW(opmsim::util::check_run_control(&rc));
}

TEST(RunControl, ExpiredDeadlineSurfacesAsDeadlineExceeded) {
    opmsim::util::RunControl rc;
    rc.deadline = std::chrono::steady_clock::now() - std::chrono::seconds(1);
    ASSERT_TRUE(rc.has_deadline());
    try {
        opmsim::util::check_run_control(&rc);
        FAIL() << "expected solver_error(deadline_exceeded)";
    } catch (const solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::deadline_exceeded);
    }
}

TEST(RunControl, NullAndDefaultControlsAreNoOps) {
    EXPECT_NO_THROW(opmsim::util::check_run_control(nullptr));
    const opmsim::util::RunControl rc;  // no deadline, no token
    EXPECT_FALSE(rc.has_deadline());
    EXPECT_NO_THROW(opmsim::util::check_run_control(&rc));
}

TEST_F(FaultLadder, InjectedDeadlineFiresEvenWithoutAControl) {
    const fault::ScopedFault guard(fault::Site::deadline, {.skip = 0, .fire = 1});
    try {
        opmsim::util::check_run_control(nullptr);
        FAIL() << "expected solver_error(deadline_exceeded)";
    } catch (const solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::deadline_exceeded);
    }
    // Window exhausted: the next check passes again.
    EXPECT_NO_THROW(opmsim::util::check_run_control(nullptr));
    EXPECT_EQ(guard.fires(), 1);
}

TEST_F(FaultLadder, PoisonedHistoryRowSurfacesAsNonFiniteState) {
    const opm::DescriptorSystem line =
        circuit::make_fractional_tline().to_sparse();
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.3e-9),
                                         wave::step(0.0)};
    transient::GrunwaldOptions opt;
    opt.alpha = circuit::kTlineAlpha;

    // Corrupt the first state row pushed into the Grunwald history.  The
    // poisoned row feeds the NEXT step's RHS, which the pencil solve must
    // classify as nonfinite_state — not nonfinite_input: the inputs were
    // fine, the evolving state went bad mid-sweep.
    const fault::ScopedFault guard(fault::Site::history_nan,
                                   {.skip = 0, .fire = 1});
    try {
        transient::simulate_grunwald(line, u, 5e-9, 16, opt);
        FAIL() << "expected solver_error(nonfinite_state)";
    } catch (const solver_error& e) {
        EXPECT_EQ(e.code(), ErrorCode::nonfinite_state);
    }
    EXPECT_EQ(guard.fires(), 1);
}

// ---- the fault harness itself ---------------------------------------------

TEST_F(FaultLadder, FiringWindowIsDeterministic) {
    const fault::ScopedFault guard(fault::Site::scalar_pivot,
                                   {.skip = 2, .fire = 2});
    std::vector<bool> hits;
    for (int i = 0; i < 6; ++i)
        hits.push_back(fault::fire(fault::Site::scalar_pivot));
    const std::vector<bool> expect = {false, false, true, true, false, false};
    EXPECT_EQ(hits, expect);
    EXPECT_EQ(fault::fire_count(fault::Site::scalar_pivot), 2);

    // Re-arming resets the counters (the guard's teardown still disarms).
    fault::arm(fault::Site::scalar_pivot, {.skip = 0, .fire = 1});
    EXPECT_TRUE(fault::fire(fault::Site::scalar_pivot));
    EXPECT_FALSE(fault::fire(fault::Site::scalar_pivot));
    EXPECT_EQ(fault::fire_count(fault::Site::scalar_pivot), 1);
}

TEST_F(FaultLadder, UnarmedSitesNeverFireAndPerturbIsExact) {
    EXPECT_FALSE(fault::enabled());
    EXPECT_FALSE(fault::fire(fault::Site::refactor_pivot));
    EXPECT_EQ(fault::fire_count(fault::Site::refactor_pivot), 0);
    EXPECT_EQ(fault::perturb(fault::Site::factor_values, 3.5), 3.5);

    fault::arm(fault::Site::factor_values, {.skip = 0, .fire = 1, .value = 2.0});
    EXPECT_TRUE(fault::enabled());
    EXPECT_EQ(fault::perturb(fault::Site::factor_values, 3.0), 6.0);
    EXPECT_EQ(fault::perturb(fault::Site::factor_values, 3.0), 3.0);

    fault::arm(fault::Site::factor_values, {.skip = 0, .fire = 1});  // NaN value
    EXPECT_TRUE(std::isnan(fault::perturb(fault::Site::factor_values, 3.0)));

    fault::disarm(fault::Site::factor_values);
    EXPECT_FALSE(fault::enabled());
}
