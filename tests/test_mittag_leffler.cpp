/// \file test_mittag_leffler.cpp
/// \brief Tests for the Mittag-Leffler oracle.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "opm/mittag_leffler.hpp"

namespace opm = opmsim::opm;

TEST(MittagLeffler, ReducesToExponential) {
    for (double z : {-3.0, -1.0, 0.0, 0.5, 2.0})
        EXPECT_NEAR(opm::mittag_leffler(1.0, z), std::exp(z), 1e-12) << z;
}

TEST(MittagLeffler, AlphaTwoIsCoshCos) {
    EXPECT_NEAR(opm::mittag_leffler(2.0, 4.0), std::cosh(2.0), 1e-12);
    EXPECT_NEAR(opm::mittag_leffler(2.0, -4.0), std::cos(2.0), 1e-12);
}

TEST(MittagLeffler, HalfOrderErfcIdentity) {
    // E_{1/2}(-x) = e^{x^2} erfc(x).
    for (double x : {0.5, 1.0, 2.0, 3.0}) {
        const double expect = std::exp(x * x) * std::erfc(x);
        EXPECT_NEAR(opm::mittag_leffler(0.5, -x), expect, 1e-10) << x;
    }
}

TEST(MittagLeffler, SeriesMatchesSpecialCaseOffPath) {
    // Series evaluation (generic beta) against the alpha=1 exponential
    // identity E_{1,2}(z) = (e^z - 1)/z.
    for (double z : {-2.0, -0.5, 1.5})
        EXPECT_NEAR(opm::mittag_leffler(1.0, 2.0, z), (std::exp(z) - 1.0) / z,
                    1e-12)
            << z;
}

TEST(MittagLeffler, AsymptoticJoinsSeriesSmoothly) {
    // Around |z| = 7 the implementation switches from the power series to
    // the asymptotic expansion; values must be continuous across the seam
    // for both sub-diffusive and super-diffusive orders.
    for (double alpha : {0.4, 0.7, 1.3, 1.7}) {
        const double a = opm::mittag_leffler(alpha, 1.0, -6.95);
        const double b = opm::mittag_leffler(alpha, 1.0, -7.05);
        EXPECT_NEAR(a, b, 2e-2 * std::abs(a) + 1e-4) << "alpha=" << alpha;
    }
}

TEST(MittagLeffler, AsymptoticMatchesHalfOrderIdentityDeep) {
    // alpha = 0.5 exactly hits the closed-form erfc branch; alpha nudged by
    // 1e-7 goes through the generic asymptotic code.  At z = -10 both must
    // agree, validating the asymptotic branch against an exact identity.
    const double x = 10.0;
    const double exact = std::exp(x * x) * std::erfc(x);
    const double asym = opm::mittag_leffler(0.5 + 1e-7, 1.0, -x);
    EXPECT_NEAR(asym, exact, 1e-3 * exact);
}

TEST(MittagLeffler, RelaxationIsMonotoneDecreasing) {
    // For 0 < alpha <= 1 and lambda < 0, E_alpha(lambda t^alpha) is
    // completely monotone in t.
    for (double alpha : {0.4, 0.7, 1.0}) {
        double prev = 1.0;
        for (double t = 0.1; t < 8.0; t *= 1.5) {
            const double v = opm::ml_relaxation(alpha, -1.0, 1.0, t);
            EXPECT_LT(v, prev + 1e-12) << "alpha=" << alpha << " t=" << t;
            EXPECT_GT(v, 0.0);
            prev = v;
        }
    }
}

TEST(MittagLeffler, StepResponseLimits) {
    // x(0) = 0; x(inf) -> -b/lambda for stable lambda.
    EXPECT_DOUBLE_EQ(opm::ml_step_response(0.5, -2.0, 1.0, 0.0), 0.0);
    const double late = opm::ml_step_response(0.5, -2.0, 1.0, 500.0);
    EXPECT_NEAR(late, 0.5, 2e-2);
}

TEST(MittagLeffler, FractionalTailIsAlgebraicNotExponential) {
    // Signature fractional behavior: for alpha < 1 the relaxation decays
    // like t^{-alpha}, far slower than exp(-t).
    const double t = 50.0;
    const double frac = opm::ml_relaxation(0.5, -1.0, 1.0, t);
    EXPECT_GT(frac, 1e-3);            // algebraic tail still alive
    EXPECT_LT(std::exp(-t), 1e-20);   // exponential long dead
    // and the tail approaches 1/(Gamma(1-a) t^a):
    EXPECT_NEAR(frac, 1.0 / (std::tgamma(0.5) * std::sqrt(t)), 2e-2 * frac);
}

TEST(MittagLeffler, DomainChecks) {
    EXPECT_THROW(opm::mittag_leffler(0.0, 1.0, 1.0), std::invalid_argument);
    EXPECT_THROW(opm::mittag_leffler(2.5, 1.0, 1.0), std::invalid_argument);
    // beta must be finite, but ANY finite beta (including <= 0) is in
    // domain — the series is entire in beta.
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(opm::mittag_leffler(0.7, inf, 1.0), std::invalid_argument);
    EXPECT_THROW(opm::mittag_leffler(0.7, std::nan(""), 1.0),
                 std::invalid_argument);
    EXPECT_THROW(opm::mittag_leffler(0.7, 1.0, 100.0), std::invalid_argument);
    EXPECT_THROW(opm::ml_relaxation(0.5, -1.0, 1.0, -1.0), std::invalid_argument);
}

TEST(MittagLeffler, ReciprocalGammaPolesAndReflection) {
    // Exactly zero at the poles (the analytic limit of 1/Gamma).
    EXPECT_EQ(opm::reciprocal_gamma(0.0), 0.0);
    EXPECT_EQ(opm::reciprocal_gamma(-1.0), 0.0);
    EXPECT_EQ(opm::reciprocal_gamma(-2.0), 0.0);
    EXPECT_EQ(opm::reciprocal_gamma(-37.0), 0.0);
    // Reference values on and off the positive axis.
    EXPECT_DOUBLE_EQ(opm::reciprocal_gamma(1.0), 1.0);
    EXPECT_DOUBLE_EQ(opm::reciprocal_gamma(2.0), 1.0);
    EXPECT_NEAR(opm::reciprocal_gamma(0.5), 1.0 / std::sqrt(3.14159265358979323846), 1e-15);
    // Gamma(-0.5) = -2 sqrt(pi)  =>  1/Gamma(-0.5) = -1/(2 sqrt(pi)).
    EXPECT_NEAR(opm::reciprocal_gamma(-0.5), -0.28209479177387814, 1e-15);
    // Deep negative axis: tgamma underflows to +-0 here, the reflection
    // formula keeps the reciprocal finite and correctly signed.
    const double deep = opm::reciprocal_gamma(-170.5);
    EXPECT_TRUE(std::isfinite(deep));
    EXPECT_NE(deep, 0.0);
    // Recurrence 1/Gamma(x) = x * (1/Gamma(x+1)) across the seam at 0.5.
    for (const double x : {-5.3, -2.5, -0.5, 0.25, 0.49}) {
        EXPECT_NEAR(opm::reciprocal_gamma(x),
                    x * opm::reciprocal_gamma(x + 1.0),
                    1e-14 * (1.0 + std::abs(opm::reciprocal_gamma(x))))
            << "x=" << x;
    }
}

TEST(MittagLeffler, NonPositiveBetaIdentities) {
    // The beta <= 0 values reachable from solver-side series manipulation:
    // E_{a,0}(z) = z E_{a,a}(z) (the k = 0 term sits on the Gamma pole and
    // vanishes), and E_{1,-1}(z) = z^2 e^z (both leading terms vanish).
    for (const double a : {0.5, 0.8, 1.3}) {
        for (const double z : {-3.0, -0.7, 0.5, 2.0}) {
            EXPECT_NEAR(opm::mittag_leffler(a, 0.0, z),
                        z * opm::mittag_leffler(a, a, z),
                        1e-12 * (1.0 + std::abs(z * opm::mittag_leffler(a, a, z))))
                << "a=" << a << " z=" << z;
        }
    }
    for (const double z : {-2.0, -0.5, 1.0, 3.0}) {
        EXPECT_NEAR(opm::mittag_leffler(1.0, -1.0, z), z * z * std::exp(z),
                    1e-12 * (1.0 + std::abs(z * z * std::exp(z))))
            << "z=" << z;
    }
    // Deep negative z goes through the asymptotic branch; it must also
    // survive beta <= 0 (inv_gamma pole handling inside the divergent sum).
    const double v = opm::mittag_leffler(0.5, 0.0, -40.0);
    EXPECT_TRUE(std::isfinite(v));
    EXPECT_NEAR(v, -40.0 * opm::mittag_leffler(0.5, 0.5, -40.0), 1e-8);
}
