/// \file test_opm_multiterm.cpp
/// \brief Tests for the multi-term OPM solver (high-order + mixed
///        fractional systems) — paper §IV's "high-order differential
///        systems are special cases".

#include <gtest/gtest.h>

#include <cmath>

#include "opm/mittag_leffler.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "transient/grunwald.hpp"

namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

namespace {

la::CscMatrix scalar(double v) {
    la::Triplets t(1, 1);
    t.add(0, 0, v);
    return la::CscMatrix(t);
}

} // namespace

TEST(MultiTerm, ValidationCatchesShapeAndOrderErrors) {
    opm::MultiTermSystem sys;
    EXPECT_THROW(sys.validate(), std::invalid_argument);  // empty
    sys.lhs.push_back({1.0, scalar(1.0)});
    sys.rhs.push_back({-1.0, scalar(1.0)});
    EXPECT_THROW(sys.validate(), std::invalid_argument);  // negative order
    sys.rhs.front().order = 0.0;
    EXPECT_NO_THROW(sys.validate());
}

TEST(MultiTerm, FirstOrderArrangementMatchesDescriptorSolver) {
    // E x' = A x + B u written as multi-term: E d^1 x + (-A) d^0 x = B u.
    opm::DenseDescriptorSystem d;
    d.e = la::Matrixd{{1, 0}, {0, 2}};
    d.a = la::Matrixd{{-1, 0.3}, {0.1, -2}};
    d.b = la::Matrixd{{1}, {0}};
    opm::MultiTermSystem mt;
    mt.lhs.push_back({1.0, la::CscMatrix::from_dense(d.e)});
    la::Matrixd na = d.a;
    na *= -1.0;
    mt.lhs.push_back({0.0, la::CscMatrix::from_dense(na)});
    mt.rhs.push_back({0.0, la::CscMatrix::from_dense(d.b)});

    const std::vector<wave::Source> u = {wave::sine(1.0, 1.5)};
    const auto r1 = opm::simulate_multiterm(mt, u, 2.0, 64);
    const auto r2 = opm::simulate_opm(d, u, 2.0, 64);
    EXPECT_LT(la::max_abs_diff(r1.coeffs, r2.coeffs), 1e-9);
}

TEST(MultiTerm, DampedOscillatorMatchesClosedForm) {
    // x'' + 2 zeta w x' + w^2 x = w^2 u, step input, underdamped.
    const double w = 4.0, zeta = 0.25;
    opm::MultiTermSystem mt;
    mt.lhs.push_back({2.0, scalar(1.0)});
    mt.lhs.push_back({1.0, scalar(2.0 * zeta * w)});
    mt.lhs.push_back({0.0, scalar(w * w)});
    mt.rhs.push_back({0.0, scalar(w * w)});

    const auto res = opm::simulate_multiterm(mt, {wave::step(1.0)}, 3.0, 1024);
    const double wd = w * std::sqrt(1.0 - zeta * zeta);
    for (double t : {0.5, 1.0, 2.0, 2.8}) {
        const double exact =
            1.0 - std::exp(-zeta * w * t) *
                      (std::cos(wd * t) + zeta * w / wd * std::sin(wd * t));
        EXPECT_NEAR(res.outputs[0].at(t), exact, 4e-3) << t;
    }
}

TEST(MultiTerm, RhsDerivativeTermHandledOperationally) {
    // x' + x = u'(t) with u = sin(t): steady response x = (cos t + sin t)/2
    // ... full solution x(t) = (sin t + cos t - e^{-t})/2 for x(0)=0.
    opm::MultiTermSystem mt;
    mt.lhs.push_back({1.0, scalar(1.0)});
    mt.lhs.push_back({0.0, scalar(1.0)});
    mt.rhs.push_back({1.0, scalar(1.0)});  // B d^1 u

    const auto res = opm::simulate_multiterm(mt, {wave::sine(1.0, 1.0 / (2.0 * M_PI))},
                                             6.0, 2048);
    for (double t : {1.0, 3.0, 5.5}) {
        const double exact =
            0.5 * (std::sin(t) + std::cos(t) - std::exp(-t));
        EXPECT_NEAR(res.outputs[0].at(t), exact, 5e-3) << t;
    }
}

TEST(MultiTerm, FractionalRelaxationMatchesOracle) {
    // Single fractional term written through the multi-term interface:
    // d^{0.5} x + x = u.
    opm::MultiTermSystem mt;
    mt.lhs.push_back({0.5, scalar(1.0)});
    mt.lhs.push_back({0.0, scalar(1.0)});
    mt.rhs.push_back({0.0, scalar(1.0)});
    const auto res = opm::simulate_multiterm(mt, {wave::step(1.0)}, 2.0, 512);
    for (double t : {0.4, 1.0, 1.8})
        EXPECT_NEAR(res.outputs[0].at(t),
                    opm::ml_step_response(0.5, -1.0, 1.0, t), 6e-3)
            << t;
}

TEST(MultiTerm, MixedIntegerFractionalBagleyTorvikForm) {
    // Bagley–Torvik-type equation: x'' + d^{3/2} x + x = u (step).
    // Cross-check against a dense Grünwald-style reference built from the
    // half-order companion embedding z = (x, d^{1/2}x, x', d^{3/2}... ):
    // with zeta = d^{1/2}: z1=x, z2=zeta x, z3=zeta^2 x (=x'), z4=zeta^3 x.
    // zeta z4 = x'' = u - z4*?? ... companion: zeta z4 = -z4 - z1 + u.
    opm::MultiTermSystem mt;
    mt.lhs.push_back({2.0, scalar(1.0)});
    mt.lhs.push_back({1.5, scalar(1.0)});
    mt.lhs.push_back({0.0, scalar(1.0)});
    mt.rhs.push_back({0.0, scalar(1.0)});
    const auto res = opm::simulate_multiterm(mt, {wave::step(1.0)}, 4.0, 1024);

    opm::DenseDescriptorSystem comp;
    comp.e = la::Matrixd::identity(4);
    comp.a = la::Matrixd(4, 4);
    comp.a(0, 1) = 1.0;  // zeta z1 = z2
    comp.a(1, 2) = 1.0;  // zeta z2 = z3
    comp.a(2, 3) = 1.0;  // zeta z3 = z4
    comp.a(3, 0) = -1.0; // zeta z4 = -z1 - z4 + u
    comp.a(3, 3) = -1.0;
    comp.b = la::Matrixd(4, 1);
    comp.b(3, 0) = 1.0;
    opm::OpmOptions copt;
    copt.alpha = 0.5;
    const auto ref = opm::simulate_opm(comp, {wave::step(1.0)}, 4.0, 1024, copt);

    for (double t : {0.5, 1.5, 3.0})
        EXPECT_NEAR(res.outputs[0].at(t), ref.outputs[0].at(t), 1e-2) << t;
}

TEST(MultiTerm, RecurrenceAndToeplitzPathsAgree) {
    // Integer orders: the banded (I+Q)^K recurrence and the dense Toeplitz
    // accumulation solve identical algebra.
    const double w = 3.0, zeta = 0.4;
    opm::MultiTermSystem mt;
    mt.lhs.push_back({2.0, scalar(1.0)});
    mt.lhs.push_back({1.0, scalar(2.0 * zeta * w)});
    mt.lhs.push_back({0.0, scalar(w * w)});
    mt.rhs.push_back({1.0, scalar(0.5)});
    mt.rhs.push_back({0.0, scalar(w * w)});

    opm::MultiTermOptions orec, otoe;
    orec.path = opm::MultiTermPath::recurrence;
    otoe.path = opm::MultiTermPath::toeplitz;
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.1, 0.4)};
    const auto r1 = opm::simulate_multiterm(mt, u, 4.0, 128, orec);
    const auto r2 = opm::simulate_multiterm(mt, u, 4.0, 128, otoe);
    EXPECT_LT(la::max_abs_diff(r1.coeffs, r2.coeffs),
              1e-9 * (1.0 + r2.coeffs.max_abs()));
}

TEST(MultiTerm, HistoryBackendsMatchNaiveOracle) {
    // The full backend matrix against the naive extended-precision oracle,
    // on a system that exercises everything at once: a mixed
    // integer/fractional LHS including an alpha > 1 term (engaging the
    // rho_1 cascade on the fast backends), an identity (order 0) term,
    // and RHS input-derivative terms with beta_l > 0 — at power-of-two
    // and non-power-of-two m.
    opm::MultiTermSystem mt;
    mt.lhs.push_back({1.8, scalar(1.0)});
    mt.lhs.push_back({1.0, scalar(0.6)});
    mt.lhs.push_back({0.4, scalar(0.3)});
    mt.lhs.push_back({0.0, scalar(1.0)});
    mt.rhs.push_back({1.2, scalar(0.2)});
    mt.rhs.push_back({0.5, scalar(0.5)});
    mt.rhs.push_back({0.0, scalar(1.0)});
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.1, 0.5)};

    for (const la::index_t m : {100, 256, 301}) {
        opm::MultiTermOptions base;
        base.path = opm::MultiTermPath::toeplitz;
        base.history = opm::HistoryBackend::naive;
        const auto ref = opm::simulate_multiterm(mt, u, 2.0, m, base);
        for (const auto be : {opm::HistoryBackend::blocked,
                              opm::HistoryBackend::fft,
                              opm::HistoryBackend::automatic}) {
            opm::MultiTermOptions opt = base;
            opt.history = be;
            const auto got = opm::simulate_multiterm(mt, u, 2.0, m, opt);
            EXPECT_LT(la::max_abs_diff(ref.coeffs, got.coeffs),
                      1e-10 * (1.0 + ref.coeffs.max_abs()))
                << "m=" << m << " backend=" << static_cast<int>(be);
        }
    }
}

TEST(MultiTerm, RhsDerivativeBackendsMatchNaive) {
    // Isolate the forcing precompute W_l = U D^{beta_l}: with a single
    // order-0 LHS term the sweep is diagonal and the result IS the
    // forcing, so any backend disagreement here indicts
    // diff_toeplitz_apply alone (including its beta > 1 cascade).
    opm::MultiTermSystem mt;
    mt.lhs.push_back({0.0, scalar(1.0)});
    mt.rhs.push_back({1.5, scalar(1.0)});
    mt.rhs.push_back({1.0, scalar(-0.3)});
    const std::vector<wave::Source> u = {wave::sine(1.0, 0.7)};

    for (const la::index_t m : {100, 200}) {
        opm::MultiTermOptions base;
        base.path = opm::MultiTermPath::toeplitz;
        base.history = opm::HistoryBackend::naive;
        const auto ref = opm::simulate_multiterm(mt, u, 2.0, m, base);
        for (const auto be :
             {opm::HistoryBackend::blocked, opm::HistoryBackend::fft}) {
            opm::MultiTermOptions opt = base;
            opt.history = be;
            const auto got = opm::simulate_multiterm(mt, u, 2.0, m, opt);
            EXPECT_LT(la::max_abs_diff(ref.coeffs, got.coeffs),
                      1e-10 * (1.0 + ref.coeffs.max_abs()))
                << "m=" << m << " backend=" << static_cast<int>(be);
        }
    }
}

TEST(MultiTerm, Alpha2CascadePathMatchesNaive) {
    // Pure second-order LHS term: ceil(alpha) - 1 = 1 rho_1 cascade stage
    // on the fast backends vs the full growing row in the oracle.
    const double w = 4.0, zeta = 0.25;
    opm::MultiTermSystem mt;
    mt.lhs.push_back({2.0, scalar(1.0)});
    mt.lhs.push_back({1.0, scalar(2.0 * zeta * w)});
    mt.lhs.push_back({0.0, scalar(w * w)});
    mt.rhs.push_back({0.0, scalar(w * w)});
    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.2)};

    opm::MultiTermOptions base;
    base.path = opm::MultiTermPath::toeplitz;
    base.history = opm::HistoryBackend::naive;
    const auto ref = opm::simulate_multiterm(mt, u, 3.0, 320, base);
    for (const auto be :
         {opm::HistoryBackend::blocked, opm::HistoryBackend::fft}) {
        opm::MultiTermOptions opt = base;
        opt.history = be;
        const auto got = opm::simulate_multiterm(mt, u, 3.0, 320, opt);
        EXPECT_LT(la::max_abs_diff(ref.coeffs, got.coeffs),
                  1e-10 * (1.0 + ref.coeffs.max_abs()))
            << "backend=" << static_cast<int>(be);
    }
}

TEST(MultiTerm, RecurrencePathRejectsFractionalOrders) {
    opm::MultiTermSystem mt;
    mt.lhs.push_back({0.5, scalar(1.0)});
    mt.rhs.push_back({0.0, scalar(1.0)});
    opm::MultiTermOptions opt;
    opt.path = opm::MultiTermPath::recurrence;
    EXPECT_THROW(opm::simulate_multiterm(mt, {wave::step(1.0)}, 1.0, 8, opt),
                 std::invalid_argument);
}

TEST(MultiTerm, InputCountMismatchThrows) {
    opm::MultiTermSystem mt;
    mt.lhs.push_back({1.0, scalar(1.0)});
    mt.rhs.push_back({0.0, scalar(1.0)});
    EXPECT_THROW(opm::simulate_multiterm(mt, {}, 1.0, 8), std::invalid_argument);
}

TEST(MultiTerm, OutputSelectorApplied) {
    opm::MultiTermSystem mt;
    mt.lhs.push_back({1.0, scalar(1.0)});
    mt.lhs.push_back({0.0, scalar(2.0)});
    mt.rhs.push_back({0.0, scalar(2.0)});
    la::Triplets c(1, 1);
    c.add(0, 0, 10.0);  // y = 10 x
    mt.c = la::CscMatrix(c);
    const auto res = opm::simulate_multiterm(mt, {wave::step(1.0)}, 3.0, 256);
    // x -> 1 (steady state of x' = -2x + 2), y -> 10.
    EXPECT_NEAR(res.outputs[0].at(2.9), 10.0, 5e-2);
}
