/// \file test_basis.cpp
/// \brief Tests for the basis-function substrate: block-pulse, Walsh, Haar,
///        shifted Legendre, and their operational matrices.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>

#include "basis/bpf.hpp"
#include "basis/haar.hpp"
#include "basis/legendre.hpp"
#include "basis/walsh.hpp"
#include "la/dense_lu.hpp"

namespace basis = opmsim::basis;
namespace la = opmsim::la;
namespace wave = opmsim::wave;

TEST(Bpf, IntegralMatrixMatchesPaperEq4) {
    const la::Matrixd h = basis::bpf_integral_matrix(2.0, 3);
    // h/2 on the diagonal, h above.
    EXPECT_DOUBLE_EQ(h(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(h(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(h(0, 2), 2.0);
    EXPECT_DOUBLE_EQ(h(1, 2), 2.0);
    EXPECT_DOUBLE_EQ(h(1, 0), 0.0);
}

TEST(Bpf, DifferentialMatrixMatchesPaperEq7) {
    const la::Matrixd d = basis::bpf_differential_matrix(0.5, 4);
    const double s = 4.0;  // 2/h
    EXPECT_DOUBLE_EQ(d(0, 0), s);
    EXPECT_DOUBLE_EQ(d(0, 1), -2 * s);
    EXPECT_DOUBLE_EQ(d(0, 2), 2 * s);
    EXPECT_DOUBLE_EQ(d(0, 3), -2 * s);
    EXPECT_DOUBLE_EQ(d(2, 3), -2 * s);
}

/// D = H^{-1} (paper: eq. 7 "the inverse of (4)"), for several m.
class BpfInverseProperty : public ::testing::TestWithParam<la::index_t> {};

TEST_P(BpfInverseProperty, DTimesHIsIdentity) {
    const la::index_t m = GetParam();
    const double h = 0.37;
    const la::Matrixd prod = basis::bpf_differential_matrix(h, m) *
                             basis::bpf_integral_matrix(h, m);
    EXPECT_LT(la::max_abs_diff(prod, la::Matrixd::identity(m)), 1e-10);
}

TEST_P(BpfInverseProperty, AdaptiveDTimesHIsIdentity) {
    const la::index_t m = GetParam();
    la::Vectord steps(static_cast<std::size_t>(m));
    for (la::index_t i = 0; i < m; ++i)
        steps[static_cast<std::size_t>(i)] = 0.1 + 0.03 * static_cast<double>(i);
    const la::Matrixd prod = basis::bpf_differential_matrix_adaptive(steps) *
                             basis::bpf_integral_matrix_adaptive(steps);
    EXPECT_LT(la::max_abs_diff(prod, la::Matrixd::identity(m)), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Ms, BpfInverseProperty, ::testing::Values(1, 2, 5, 16, 64));

TEST(Bpf, AdaptiveWithEqualStepsMatchesUniform) {
    const la::Vectord steps(6, 0.25);
    EXPECT_LT(la::max_abs_diff(basis::bpf_differential_matrix_adaptive(steps),
                               basis::bpf_differential_matrix(0.25, 6)),
              1e-14);
    EXPECT_LT(la::max_abs_diff(basis::bpf_integral_matrix_adaptive(steps),
                               basis::bpf_integral_matrix(0.25, 6)),
              1e-14);
}

TEST(Bpf, IntegralMatrixIntegratesProjection) {
    // Project f(t)=t on [0,1); H * coeffs should approximate t^2/2.
    basis::BpfBasis b(1.0, 64);
    const la::Vectord f = b.project([](double t) { return t; });
    const la::Matrixd h = b.integration_matrix();
    // integral-of-basis interpretation: int f = f^T H phi, so coefficient
    // vector of the integral is H^T f.
    la::Vectord integ(64, 0.0);
    for (la::index_t j = 0; j < 64; ++j)
        for (la::index_t i = 0; i < 64; ++i)
            integ[static_cast<std::size_t>(j)] += h(i, j) * f[static_cast<std::size_t>(i)];
    for (double t : {0.25, 0.5, 0.9}) {
        EXPECT_NEAR(b.synthesize(integ, t), t * t / 2.0, 1e-2) << t;
    }
}

TEST(Walsh, MatrixIsOrthogonalAndSequencyOrdered) {
    for (const la::index_t m : {2, 4, 8, 16}) {
        const la::Matrixd w = basis::walsh_matrix(m);
        // W W^T = m I.
        EXPECT_LT(la::max_abs_diff(w * w.transposed(),
                                   static_cast<double>(m) * la::Matrixd::identity(m)),
                  1e-12)
            << m;
        // Row r has exactly r sign changes (sequency order).
        for (la::index_t r = 0; r < m; ++r) {
            la::index_t changes = 0;
            for (la::index_t j = 1; j < m; ++j)
                if (w(r, j) != w(r, j - 1)) ++changes;
            EXPECT_EQ(changes, r) << "m=" << m << " row=" << r;
        }
    }
}

TEST(Walsh, NonPowerOfTwoThrows) {
    EXPECT_THROW(basis::walsh_matrix(6), std::invalid_argument);
    EXPECT_THROW(basis::WalshBasis(1.0, 12), std::invalid_argument);
}

TEST(Walsh, FwhtMatchesMatrixTransform) {
    // Natural-order FWHT equals multiplication by the Hadamard matrix;
    // check via energy (norm) preservation and a known vector.
    la::Vectord x = {1.0, 2.0, 3.0, 4.0};
    basis::fwht(x);
    // Hadamard(4) * [1 2 3 4]^T = [10, -2, -4, 0].
    EXPECT_DOUBLE_EQ(x[0], 10.0);
    EXPECT_DOUBLE_EQ(x[1], -2.0);
    EXPECT_DOUBLE_EQ(x[2], -4.0);
    EXPECT_DOUBLE_EQ(x[3], 0.0);
}

TEST(Walsh, ProjectSynthesizeRoundTripOnStaircase) {
    // Any function constant on the m subintervals is represented exactly.
    basis::WalshBasis b(1.0, 8);
    const auto f = [](double t) { return std::floor(t * 8.0); };
    const la::Vectord c = b.project(f);
    for (double t : {0.0625, 0.3125, 0.9375})
        EXPECT_NEAR(b.synthesize(c, t), f(t), 1e-10);
}

TEST(Haar, MatrixIsOrthogonal) {
    for (const la::index_t m : {2, 4, 8, 32}) {
        const la::Matrixd h = basis::haar_matrix(m);
        EXPECT_LT(la::max_abs_diff(h * h.transposed(),
                                   static_cast<double>(m) * la::Matrixd::identity(m)),
                  1e-10)
            << m;
    }
}

TEST(Haar, LocalizedRepresentationOfSpike) {
    // A spike in one subinterval excites only O(log m) Haar coefficients.
    basis::HaarBasis b(1.0, 16);
    const auto f = [](double t) { return (t >= 10.0 / 16 && t < 11.0 / 16) ? 1.0 : 0.0; };
    const la::Vectord c = b.project(f);
    la::index_t nonzero = 0;
    for (double v : c)
        if (std::abs(v) > 1e-12) ++nonzero;
    EXPECT_LE(nonzero, 5);  // 1 + log2(16)
    for (double t : {0.1, 0.5, 10.5 / 16.0})
        EXPECT_NEAR(b.synthesize(c, t), f(t), 1e-10);
}

TEST(Legendre, GaussNodesIntegrateHighDegree) {
    // n-point Gauss is exact through degree 2n-1: check x^9 with n=5.
    const basis::GaussRule r = basis::gauss_legendre(5);
    double acc = 0;
    for (std::size_t i = 0; i < r.nodes.size(); ++i)
        acc += r.weights[i] * std::pow(r.nodes[i], 8);
    EXPECT_NEAR(acc, 2.0 / 9.0, 1e-13);  // int_{-1}^{1} x^8 = 2/9
    double wsum = 0;
    for (double w : r.weights) wsum += w;
    EXPECT_NEAR(wsum, 2.0, 1e-13);
}

TEST(Legendre, ProjectionIsSpectrallyAccurateOnSmooth) {
    basis::LegendreBasis b(1.0, 12);
    const auto f = [](double t) { return std::exp(-2.0 * t) * std::sin(3.0 * t); };
    const la::Vectord c = b.project(f);
    for (double t : {0.1, 0.37, 0.82})
        EXPECT_NEAR(b.synthesize(c, t), f(t), 1e-8) << t;
}

TEST(Legendre, PolynomialReproducedExactly) {
    basis::LegendreBasis b(2.0, 5);
    const auto f = [](double t) { return 1.0 + t + 0.5 * t * t; };
    const la::Vectord c = b.project(f);
    for (double t : {0.0, 0.5, 1.3, 1.9})
        EXPECT_NEAR(b.synthesize(c, t), f(t), 1e-11) << t;
}

/// Operational-matrix correctness across all bases: projecting f' and then
/// integrating with P must reproduce (f - f(0)) projections.
class IntegrationMatrixProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntegrationMatrixProperty, IntegratesDerivative) {
    const double t_end = 1.0;
    const la::index_t m = 16;
    std::unique_ptr<basis::Basis> b;
    switch (GetParam()) {
    case 0: b = std::make_unique<basis::BpfBasis>(t_end, m); break;
    case 1: b = std::make_unique<basis::WalshBasis>(t_end, m); break;
    case 2: b = std::make_unique<basis::HaarBasis>(t_end, m); break;
    default: b = std::make_unique<basis::LegendreBasis>(t_end, m); break;
    }
    // f(t) = sin(2 pi t) (f(0)=0), f'(t) = 2 pi cos(2 pi t).
    const auto fp = [](double t) {
        return 2.0 * std::numbers::pi * std::cos(2.0 * std::numbers::pi * t);
    };
    const auto f = [](double t) { return std::sin(2.0 * std::numbers::pi * t); };
    const la::Vectord cfp = b->project(fp);
    const la::Matrixd p = b->integration_matrix();
    // coefficient vector of int f' = P^T cfp (same transport as eq. 3).
    la::Vectord integ(static_cast<std::size_t>(m), 0.0);
    for (la::index_t j = 0; j < m; ++j)
        for (la::index_t i = 0; i < m; ++i)
            integ[static_cast<std::size_t>(j)] += p(i, j) * cfp[static_cast<std::size_t>(i)];
    // Compare waveforms with a tolerance matched to m=16 piecewise bases.
    const wave::Waveform approx = b->to_waveform(integ, 128);
    // Piecewise-constant bases at m=16 carry ~0.13 staircase error on a
    // full-period sine; Legendre is far below.
    double max_err = 0;
    for (double t = 0.05; t < 0.95; t += 0.02)
        max_err = std::max(max_err, std::abs(approx.at(t) - f(t)));
    EXPECT_LT(max_err, 0.2) << "basis " << b->name();
}

INSTANTIATE_TEST_SUITE_P(AllBases, IntegrationMatrixProperty,
                         ::testing::Values(0, 1, 2, 3));

TEST(BasisInterop, WalshAndHaarIntegralMatricesAreSimilarToBpf) {
    // P_walsh = (1/m) W H W^T must have the same spectrum as H (similarity).
    const la::index_t m = 8;
    const double t_end = 1.0;
    basis::WalshBasis wb(t_end, m);
    const la::Matrixd pw = wb.integration_matrix();
    const la::Matrixd hb = basis::bpf_integral_matrix(t_end / m, m);
    // trace is similarity-invariant.
    double tw = 0, th = 0;
    for (la::index_t i = 0; i < m; ++i) {
        tw += pw(i, i);
        th += hb(i, i);
    }
    EXPECT_NEAR(tw, th, 1e-12);
}

TEST(BasisInterop, ConstantCoeffsSynthesizeToOne) {
    const double t_end = 2.0;
    const la::index_t m = 8;
    const basis::BpfBasis b1(t_end, m);
    const basis::WalshBasis b2(t_end, m);
    const basis::HaarBasis b3(t_end, m);
    const basis::LegendreBasis b4(t_end, m);
    for (const basis::Basis* b :
         std::initializer_list<const basis::Basis*>{&b1, &b2, &b3, &b4}) {
        const la::Vectord k = b->constant_coeffs();
        for (double t : {0.1, 0.9, 1.7})
            EXPECT_NEAR(b->synthesize(k, t), 1.0, 1e-10) << b->name();
    }
}
