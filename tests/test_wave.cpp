/// \file test_wave.cpp
/// \brief Tests for waveforms, the dB error metric, and sources.

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "wave/sources.hpp"
#include "wave/waveform.hpp"

namespace wave = opmsim::wave;
using opmsim::la::Vectord;

TEST(Waveform, RejectsBadInput) {
    EXPECT_THROW(wave::Waveform({0.0, 1.0}, {1.0}), std::invalid_argument);
    EXPECT_THROW(wave::Waveform({0.0, 0.0}, {1.0, 2.0}), std::invalid_argument);
    EXPECT_THROW(wave::Waveform({1.0, 0.5}, {1.0, 2.0}), std::invalid_argument);
}

TEST(Waveform, LinearInterpolationAndClamping) {
    const wave::Waveform w({0.0, 1.0, 2.0}, {0.0, 10.0, 0.0});
    EXPECT_DOUBLE_EQ(w.at(0.5), 5.0);
    EXPECT_DOUBLE_EQ(w.at(1.5), 5.0);
    EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);  // clamped
    EXPECT_DOUBLE_EQ(w.at(3.0), 0.0);   // clamped
    EXPECT_DOUBLE_EQ(w.max_abs(), 10.0);
}

TEST(Waveform, ResampleOnUniformGrid) {
    const wave::Waveform w = wave::Waveform::uniform(0.0, 0.5, {0.0, 1.0, 2.0});
    const wave::Waveform r = w.resampled(wave::linspace(0.0, 1.0, 5));
    EXPECT_DOUBLE_EQ(r.values()[2], 1.0);
    EXPECT_DOUBLE_EQ(r.values()[1], 0.5);
}

TEST(ErrorMetric, IdenticalSignalsGiveMinusInfinity) {
    const wave::Waveform a({0.0, 1.0, 2.0}, {1.0, 2.0, 3.0});
    EXPECT_EQ(wave::relative_error_db(a, a), -std::numeric_limits<double>::infinity());
}

TEST(ErrorMetric, KnownRelativeError) {
    // test = 1.1 * ref -> relative L2 error = 0.1 -> -20 dB.
    Vectord t = wave::linspace(0.0, 1.0, 64);
    Vectord v1(t.size()), v2(t.size());
    for (std::size_t i = 0; i < t.size(); ++i) {
        v1[i] = std::sin(2 * std::numbers::pi * t[i]) + 2.0;
        v2[i] = 1.1 * v1[i];
    }
    const wave::Waveform ref(t, v1), test(t, v2);
    EXPECT_NEAR(wave::relative_error_db(ref, test), -20.0, 1e-6);
    EXPECT_NEAR(wave::relative_l2(ref, test), 0.1, 1e-9);
}

TEST(ErrorMetric, AverageOverChannels) {
    Vectord t = wave::linspace(0.0, 1.0, 16);
    Vectord ones(t.size(), 1.0), tenth(t.size(), 1.1), hundredth(t.size(), 1.01);
    const std::vector<wave::Waveform> ref = {wave::Waveform(t, ones),
                                             wave::Waveform(t, ones)};
    const std::vector<wave::Waveform> test = {wave::Waveform(t, tenth),
                                              wave::Waveform(t, hundredth)};
    // channel errors: -20 dB and -40 dB -> average -30 dB.
    EXPECT_NEAR(wave::average_relative_error_db(ref, test), -30.0, 1e-6);
}

TEST(ErrorMetric, DisjointSpansThrow) {
    const wave::Waveform a({0.0, 1.0}, {1.0, 1.0});
    const wave::Waveform b({2.0, 3.0}, {1.0, 1.0});
    EXPECT_THROW(wave::relative_error_db(a, b), std::invalid_argument);
}

TEST(Sources, StepAndDelay) {
    const auto s = wave::step(2.0, 1.0);
    EXPECT_DOUBLE_EQ(s(0.5), 0.0);
    EXPECT_DOUBLE_EQ(s(1.0), 2.0);
    EXPECT_DOUBLE_EQ(s(5.0), 2.0);
}

TEST(Sources, PulseShape) {
    const auto p = wave::pulse(1.0, 1.0, 1.0, 2.0, 1.0);
    EXPECT_DOUBLE_EQ(p(0.5), 0.0);
    EXPECT_DOUBLE_EQ(p(1.5), 0.5);   // mid rise
    EXPECT_DOUBLE_EQ(p(3.0), 1.0);   // top
    EXPECT_DOUBLE_EQ(p(4.5), 0.5);   // mid fall
    EXPECT_DOUBLE_EQ(p(6.0), 0.0);
}

TEST(Sources, PulseTrainPeriodicity) {
    const auto p = wave::pulse_train(1.0, 0.0, 0.1, 0.3, 0.1, 1.0);
    for (double t : {0.2, 1.2, 7.2}) EXPECT_NEAR(p(t), 1.0, 1e-12) << t;
    for (double t : {0.8, 3.8}) EXPECT_NEAR(p(t), 0.0, 1e-12) << t;
}

TEST(Sources, PulseLongerThanPeriodThrows) {
    EXPECT_THROW(wave::pulse_train(1.0, 0.0, 0.5, 0.5, 0.5, 1.0),
                 std::invalid_argument);
}

TEST(Sources, PwlInterpolatesAndClamps) {
    const auto f = wave::pwl({0.0, 1.0, 3.0}, {0.0, 2.0, 0.0});
    EXPECT_DOUBLE_EQ(f(-1.0), 0.0);
    EXPECT_DOUBLE_EQ(f(0.5), 1.0);
    EXPECT_DOUBLE_EQ(f(2.0), 1.0);
    EXPECT_DOUBLE_EQ(f(9.0), 0.0);
}

TEST(Sources, SmoothStepIsContinuousAndMonotone) {
    const auto f = wave::smooth_step(1.0, 0.0, 1.0);
    EXPECT_DOUBLE_EQ(f(-0.1), 0.0);
    EXPECT_DOUBLE_EQ(f(1.1), 1.0);
    EXPECT_NEAR(f(0.5), 0.5, 1e-12);
    double prev = -1;
    for (double t = 0.0; t <= 1.0; t += 0.01) {
        EXPECT_GE(f(t), prev - 1e-12);
        prev = f(t);
    }
    // C^1: derivative ~0 at the ends.
    const double d0 = (f(0.01) - f(0.0)) / 0.01;
    const double d1 = (f(1.0) - f(0.99)) / 0.01;
    EXPECT_LT(d0, 0.05);
    EXPECT_LT(d1, 0.05);
}

TEST(Sources, SmoothPulseTrainPeriodicity) {
    const auto p = wave::smooth_pulse_train(2.0, 0.5, 0.2, 0.2, 0.2, 1.0);
    EXPECT_NEAR(p(0.5 + 0.3), 2.0, 1e-12);
    EXPECT_NEAR(p(3.5 + 0.3), 2.0, 1e-12);
    EXPECT_NEAR(p(0.4), 0.0, 1e-12);
}

TEST(ProjectAverage, ExactForConstants) {
    const auto c = wave::project_average([](double) { return 3.0; },
                                         {0.0, 0.5, 2.0});
    ASSERT_EQ(c.size(), 2u);
    EXPECT_DOUBLE_EQ(c[0], 3.0);
    EXPECT_DOUBLE_EQ(c[1], 3.0);
}

TEST(ProjectAverage, ExactForCubicWith4PointRule) {
    // 4-point Gauss integrates degree-7 exactly; check t^3 averages.
    const auto c = wave::project_average([](double t) { return t * t * t; },
                                         {0.0, 1.0, 2.0}, 4);
    EXPECT_NEAR(c[0], 0.25, 1e-14);        // (1/1) * [t^4/4] over [0,1]
    EXPECT_NEAR(c[1], (16.0 - 1.0) / 4.0, 1e-13);  // over [1,2]
}

TEST(ProjectAverage, PanelsResolveOscillation) {
    // Average of sin^2(20*pi*t) over [0,1] is exactly 0.5; one 4-pt panel
    // aliases badly, 32 panels nail it.
    const auto f = [](double t) {
        const double s = std::sin(20.0 * std::numbers::pi * t);
        return s * s;
    };
    const auto coarse = wave::project_average(f, {0.0, 1.0}, 4, 1);
    const auto fine = wave::project_average(f, {0.0, 1.0}, 4, 32);
    EXPECT_GT(std::abs(coarse[0] - 0.5), 0.05);
    EXPECT_NEAR(fine[0], 0.5, 1e-9);
}

TEST(ProjectAverage, MidpointRuleOption) {
    const auto c = wave::project_average([](double t) { return t; },
                                         {0.0, 2.0}, 1);
    EXPECT_DOUBLE_EQ(c[0], 1.0);  // midpoint of linear = average
}

TEST(UniformEdges, CoversSpanExactly) {
    const auto e = wave::uniform_edges(2.7e-9, 8);
    ASSERT_EQ(e.size(), 9u);
    EXPECT_DOUBLE_EQ(e.front(), 0.0);
    EXPECT_DOUBLE_EQ(e.back(), 2.7e-9);
}
