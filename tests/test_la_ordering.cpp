/// \file test_la_ordering.cpp
/// \brief AMD ordering coverage: permutation validity, fill quality on the
///        power-grid pattern, degenerate graphs, and the cross-ordering
///        solve oracle (natural | rcm | amd | automatic vs dense LU).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "circuit/power_grid.hpp"
#include "la/dense_lu.hpp"
#include "la/ordering.hpp"
#include "la/sparse.hpp"
#include "la/sparse_lu.hpp"

namespace la = opmsim::la;
namespace circuit = opmsim::circuit;

namespace {

/// Deterministic xorshift PRNG (no <random> to keep values platform-fixed).
class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed * 0x9E3779B97F4A7C15ull + 1) {}
    double uniform() {  // in (0, 1)
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return static_cast<double>(s_ % 1000003u + 1) / 1000004.0;
    }
    la::index_t index(la::index_t bound) {
        return static_cast<la::index_t>(uniform() * static_cast<double>(bound)) % bound;
    }

private:
    std::uint64_t s_;
};

void expect_valid_permutation(const std::vector<la::index_t>& perm, la::index_t n) {
    ASSERT_EQ(static_cast<la::index_t>(perm.size()), n);
    std::vector<bool> seen(static_cast<std::size_t>(n), false);
    for (const la::index_t p : perm) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, n);
        EXPECT_FALSE(seen[static_cast<std::size_t>(p)]) << "duplicate entry " << p;
        seen[static_cast<std::size_t>(p)] = true;
    }
}

la::CscMatrix power_grid_pencil(la::index_t nxy) {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = nxy;
    spec.nz = 3;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    return la::CscMatrix::add(2.0 / 1e-11, pg.mna.e, -1.0, pg.mna.a);
}

la::index_t fill_of(const la::CscMatrix& a, la::SparseLuOptions::Ordering ord) {
    la::SparseLuOptions opt;
    opt.ordering = ord;
    return la::SparseLu(a, opt).nnz_lu();
}

} // namespace

TEST(AmdOrdering, ValidPermutationOnPowerGrid) {
    const la::CscMatrix pencil = power_grid_pencil(8);
    expect_valid_permutation(la::amd_ordering(pencil), pencil.rows());
}

TEST(AmdOrdering, ValidPermutationOnRandomUnsymmetric) {
    Rng rng(11);
    for (const la::index_t n : {3, 17, 60, 151}) {
        la::Triplets t(n, n);
        for (la::index_t i = 0; i < n; ++i) {
            t.add(i, i, 4.0 + rng.uniform());
            for (la::index_t k = 0; k < 4; ++k)
                t.add(i, rng.index(n), rng.uniform() - 0.5);
        }
        const la::CscMatrix a(t);
        expect_valid_permutation(la::amd_ordering(a), n);
    }
}

TEST(AmdOrdering, FillAtMostNaturalOnPowerGrid) {
    const la::CscMatrix pencil = power_grid_pencil(8);
    const la::index_t fill_nat = fill_of(pencil, la::SparseLuOptions::Ordering::natural);
    const la::index_t fill_amd = fill_of(pencil, la::SparseLuOptions::Ordering::amd);
    EXPECT_LE(fill_amd, fill_nat);
    // On a 3-D mesh AMD is not marginal: expect at least 2x less fill
    // (measured ~7x at this size; the loose bound keeps the test robust).
    EXPECT_LT(fill_amd, fill_nat / 2);
}

TEST(AmdOrdering, FillBelowRcmOnPowerGrid) {
    // The acceptance gate of the ordering work: AMD beats RCM on the
    // power-grid pencil (measured ~4x at g=16; assert a conservative
    // strict improvement).
    const la::CscMatrix pencil = power_grid_pencil(8);
    const la::index_t fill_rcm = fill_of(pencil, la::SparseLuOptions::Ordering::rcm);
    const la::index_t fill_amd = fill_of(pencil, la::SparseLuOptions::Ordering::amd);
    EXPECT_LT(fill_amd, fill_rcm);
}

TEST(AmdOrdering, DiagonalMatrix) {
    la::Triplets t(5, 5);
    for (la::index_t i = 0; i < 5; ++i) t.add(i, i, 1.0 + static_cast<double>(i));
    const la::CscMatrix a(t);
    expect_valid_permutation(la::amd_ordering(a), 5);
    const la::Vectord x = la::SparseLu(a).solve({1.0, 2.0, 3.0, 4.0, 5.0});
    for (la::index_t i = 0; i < 5; ++i)
        EXPECT_NEAR(x[static_cast<std::size_t>(i)], 1.0, 1e-15);
}

TEST(AmdOrdering, DenseRowIsDeferred) {
    // One hub row/column touching everything: AMD's dense-row deferral
    // must order it last so it cannot pollute every degree update.
    const la::index_t n = 400;
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) t.add(i, i, 4.0);
    for (la::index_t i = 0; i + 1 < n; ++i) {
        t.add(i, i + 1, -1.0);
        t.add(i + 1, i, -1.0);
    }
    for (la::index_t i = 1; i < n; ++i) {
        t.add(0, i, -0.01);
        t.add(i, 0, -0.01);
    }
    const la::CscMatrix a(t);
    const auto perm = la::amd_ordering(a);
    expect_valid_permutation(perm, n);
    EXPECT_EQ(perm.back(), 0) << "hub vertex should be eliminated last";

    la::Vectord b(static_cast<std::size_t>(n), 1.0);
    la::SparseLuOptions opt;
    opt.ordering = la::SparseLuOptions::Ordering::amd;
    const la::Vectord x = la::SparseLu(a, opt).solve(b);
    const la::Vectord ax = a.matvec(x);
    for (std::size_t i = 0; i < ax.size(); ++i) EXPECT_NEAR(ax[i], 1.0, 1e-10);
}

TEST(AmdOrdering, DisconnectedComponents) {
    // Two cliques and two isolated vertices.
    la::Triplets t(12, 12);
    for (la::index_t i = 0; i < 12; ++i) t.add(i, i, 8.0);
    for (la::index_t i = 0; i < 5; ++i)
        for (la::index_t j = 0; j < 5; ++j)
            if (i != j) t.add(i, j, -1.0);
    for (la::index_t i = 5; i < 10; ++i)
        for (la::index_t j = 5; j < 10; ++j)
            if (i != j) t.add(i, j, -1.0);
    const la::CscMatrix a(t);
    expect_valid_permutation(la::amd_ordering(a), 12);
    la::SparseLuOptions opt;
    opt.ordering = la::SparseLuOptions::Ordering::amd;
    la::Vectord b(12, 1.0);
    const la::Vectord x = la::SparseLu(a, opt).solve(b);
    const la::Vectord ax = a.matvec(x);
    for (std::size_t i = 0; i < ax.size(); ++i) EXPECT_NEAR(ax[i], 1.0, 1e-12);
}

TEST(AutomaticOrdering, PicksRcmOnChainAmdOnMesh) {
    // Tridiagonal chain: mean off-diagonal degree ~2 -> rcm.
    const la::index_t n = 64;
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) t.add(i, i, 2.0);
    for (la::index_t i = 0; i + 1 < n; ++i) {
        t.add(i, i + 1, -1.0);
        t.add(i + 1, i, -1.0);
    }
    const la::CscMatrix chain_mat{t};
    const la::SparseLuSymbolic chain(chain_mat);
    EXPECT_EQ(chain.chosen_ordering(), la::SparseLuOptions::Ordering::rcm);

    // 3-D power grid: mean degree > 2.5 -> amd.
    const la::SparseLuSymbolic mesh(power_grid_pencil(8));
    EXPECT_EQ(mesh.chosen_ordering(), la::SparseLuOptions::Ordering::amd);
}

/// The cross-ordering oracle of the acceptance criteria: all four ordering
/// modes must agree with a dense-LU solve to 1e-12 (relative).
TEST(CrossOrdering, AllModesMatchDenseSolve) {
    const la::CscMatrix pencil = power_grid_pencil(4);
    const la::index_t n = pencil.rows();
    Rng rng(21);
    la::Vectord b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform() - 0.5;

    const la::Vectord xd = la::solve_dense(pencil.to_dense(), b);
    double xscale = 0.0;
    for (const double v : xd) xscale = std::max(xscale, std::abs(v));

    for (const auto ord : {la::SparseLuOptions::Ordering::natural,
                           la::SparseLuOptions::Ordering::rcm,
                           la::SparseLuOptions::Ordering::amd,
                           la::SparseLuOptions::Ordering::automatic}) {
        la::SparseLuOptions opt;
        opt.ordering = ord;
        const la::Vectord xs = la::SparseLu(pencil, opt).solve(b);
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_NEAR(xs[i], xd[i], 1e-12 * xscale)
                << "ordering mode " << static_cast<int>(ord) << " row " << i;
    }
}

TEST(CrossOrdering, AllModesMatchDenseSolveRandom) {
    Rng rng(5);
    const la::index_t n = 50;
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t.add(i, i, 4.0 + rng.uniform());
        for (la::index_t k = 0; k < 4; ++k)
            t.add(i, rng.index(n), rng.uniform() - 0.5);
    }
    const la::CscMatrix a(t);
    la::Vectord b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform() - 0.5;
    const la::Vectord xd = la::solve_dense(a.to_dense(), b);
    double xscale = 0.0;
    for (const double v : xd) xscale = std::max(xscale, std::abs(v));

    for (const auto ord : {la::SparseLuOptions::Ordering::natural,
                           la::SparseLuOptions::Ordering::rcm,
                           la::SparseLuOptions::Ordering::amd,
                           la::SparseLuOptions::Ordering::automatic}) {
        la::SparseLuOptions opt;
        opt.ordering = ord;
        const la::Vectord xs = la::SparseLu(a, opt).solve(b);
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_NEAR(xs[i], xd[i], 1e-12 * xscale);
    }
}
