/// \file test_parser_malformed.cpp
/// \brief Table-driven malformed-netlist rejection: every bad deck must
///        throw std::invalid_argument whose message carries the offending
///        deck line number (where one exists) and a recognizable reason —
///        never a crash, a silent default, or a bare number-parse error.

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/parser.hpp"

namespace circuit = opmsim::circuit;

namespace {

struct BadDeck {
    const char* name;      ///< row label for failure messages
    const char* deck;      ///< full deck text (title on line 1)
    const char* expect1;   ///< required substring of the what() message
    const char* expect2;   ///< second required substring ("" to skip)
};

const std::vector<BadDeck> kBadDecks = {
    {"bad_suffix",
     "* t\nR1 a 0 5#\n.end\n",
     "netlist line 2", "bad suffix"},
    {"not_a_number",
     "* t\nR1 a 0 xyz\n.end\n",
     "netlist line 2", "not a number"},
    {"too_few_fields",
     "* t\nR1 a 0\n.end\n",
     "netlist line 2", "too few fields"},
    {"nonpositive_resistance",
     "* t\nR1 a 0 -5\n.end\n",
     "netlist line 2", "resistance must be positive"},
    {"nonpositive_capacitance",
     "* t\nC1 a 0 0\n.end\n",
     "netlist line 2", "capacitance must be positive"},
    {"cpe_order_out_of_range",
     "* t\nP1 a 0 CPE(1u 2.5)\n.end\n",
     "netlist line 2", "CPE order"},
    {"cpe_missing_alpha",
     "* t\nP1 a 0 CPE(1u)\n.end\n",
     "netlist line 2", "CPE needs c and alpha"},
    // A leading R card keeps the unknown 'Q' line from being consumed by
    // the SPICE first-line-is-the-title convention.
    {"unsupported_element",
     "* t\nR0 a 0 1\nQ1 a 0 b 1\n.end\n",
     "netlist line 3", "unsupported element"},
    {"unsupported_directive",
     "* t\n.ac dec 10 1 1k\n.end\n",
     "netlist line 2", "unsupported directive"},
    {"tran_step_not_below_stop",
     "* t\nR1 a 0 1\n.tran 5 1\n.end\n",
     "netlist line 3", ".tran needs 0 < step < stop"},
    {"tran_missing_args",
     "* t\nR1 a 0 1\n.tran 1n\n.end\n",
     "netlist line 3", ".tran needs step and stop"},
    {"continuation_without_card",
     "* t\n+ 1 2\n.end\n",
     "netlist line 2", "continuation with no previous card"},
    {"card_after_end",
     "* t\nR1 a 0 1\n.end\nR2 b 0 2\n",
     "netlist line 4", "card after .end"},
    {"pwl_single_breakpoint",
     "* t\nV1 in 0 PWL(0 1)\n.end\n",
     "netlist line 2", "PWL needs at least two breakpoints"},
    {"sin_zero_frequency",
     "* t\nV1 in 0 SIN(0 1 0)\n.end\n",
     "netlist line 2", "SIN needs a positive frequency"},
    {"dc_missing_value",
     "* t\nV1 in 0 DC\n.end\n",
     "netlist line 2", "DC needs a value"},
    {"exp_nonpositive_tau",
     "* t\nV1 in 0 EXP(0 1 0 0)\n.end\n",
     "netlist line 2", "EXP needs a positive tau"},
    {"vccs_too_few_nodes",
     "* t\nG1 a 0 b 1\n.end\n",
     "netlist line 2", "VCCS needs 4 nodes and gm"},
    {"empty_deck",
     "",
     "empty deck", ""},
    {"comment_only_deck",
     "* nothing here\n; still nothing\n\n",
     "empty deck", ""},
};

} // namespace

TEST(ParserMalformed, EveryBadDeckThrowsWithLineNumberAndReason) {
    for (const BadDeck& row : kBadDecks) {
        try {
            const circuit::ParsedDeck deck = circuit::parse_netlist(row.deck);
            (void)deck;
            FAIL() << row.name << ": expected std::invalid_argument";
        } catch (const std::invalid_argument& e) {
            const std::string msg = e.what();
            EXPECT_NE(msg.find(row.expect1), std::string::npos)
                << row.name << ": missing '" << row.expect1 << "' in: " << msg;
            if (row.expect2[0] != '\0') {
                EXPECT_NE(msg.find(row.expect2), std::string::npos)
                    << row.name << ": missing '" << row.expect2
                    << "' in: " << msg;
            }
        } catch (const std::exception& e) {
            FAIL() << row.name << ": wrong exception type: " << e.what();
        }
    }
}

TEST(ParserMalformed, DuplicateElementNamesRejectedAtBuildMna) {
    // The parser accepts the deck (names are just labels to it); the MNA
    // builder owns the uniqueness invariant and must name the offender.
    const char* deck_text =
        "* dup\n"
        "V1 in 0 DC 1\n"
        "L1 in mid 1n\n"
        "L1 mid 0 2n\n"
        ".end\n";
    const circuit::ParsedDeck deck = circuit::parse_netlist(deck_text);
    try {
        circuit::build_mna(deck.netlist);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("duplicate branch element name 'L1'"),
                  std::string::npos)
            << msg;
    }
}

TEST(ParserMalformed, UnknownNodeLookupNamesTheNode) {
    const circuit::ParsedDeck deck =
        circuit::parse_netlist("* t\nR1 a 0 1\n.end\n");
    EXPECT_NO_THROW((void)deck.node("a"));
    EXPECT_EQ(deck.node("0"), 0);
    try {
        (void)deck.node("nope");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("unknown node 'nope'"),
                  std::string::npos);
    }
}

TEST(ParserMalformed, GoodDeckStillParses) {
    // Guard the guard: the table above must be rejecting bad decks, not
    // decks in general.
    const char* good =
        "* rc lowpass\n"
        "V1 in 0 PULSE(0 1 0 1n 1n 5n 12n)\n"
        "R1 in out 1k\n"
        "C1 out 0 1u\n"
        ".tran 10n 5u\n"
        ".end\n";
    const circuit::ParsedDeck deck = circuit::parse_netlist(good);
    EXPECT_EQ(deck.inputs.size(), 1u);
    EXPECT_GT(deck.netlist.num_nodes(), 0);
    EXPECT_DOUBLE_EQ(deck.tran_stop, 5e-6);
}
