/// \file test_sparse_lu_supernodal.cpp
/// \brief Supernodal sparse-LU kernel pins: supernode-partition
///        invariants against a dense symbolic-Cholesky oracle, multi-RHS
///        solves against the looped single-RHS oracle, the
///        supernodal-vs-scalar factor pin on the power-grid pencil, the
///        automatic pivot fallback, and supernodal refactorization.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "circuit/power_grid.hpp"
#include "la/dense_lu.hpp"
#include "la/ordering.hpp"
#include "la/sparse.hpp"
#include "la/sparse_lu.hpp"

namespace la = opmsim::la;
namespace circuit = opmsim::circuit;

using Kernel = la::SparseLuOptions::Kernel;
using Ordering = la::SparseLuOptions::Ordering;

namespace {

/// Deterministic xorshift PRNG (no <random> to keep values platform-fixed).
class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed * 0x9E3779B97F4A7C15ull + 1) {}
    double uniform() {
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return static_cast<double>(s_ % 1000003u + 1) / 1000004.0;
    }
    la::index_t index(la::index_t bound) {
        return static_cast<la::index_t>(uniform() * static_cast<double>(bound)) % bound;
    }

private:
    std::uint64_t s_;
};

/// Random diagonally-bumped sparse matrix (always nonsingular).
la::CscMatrix random_sparse(la::index_t n, la::index_t extra_per_row, Rng& rng) {
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t.add(i, i, 4.0 + rng.uniform());
        for (la::index_t k = 0; k < extra_per_row; ++k)
            t.add(i, rng.index(n), rng.uniform() - 0.5);
    }
    return la::CscMatrix(t);
}

la::CscMatrix power_grid_pencil(la::index_t nxy, double lead = 2.0 / 1e-11) {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = nxy;
    spec.nz = 3;
    const circuit::PowerGrid pg = circuit::build_power_grid(spec);
    return la::CscMatrix::add(lead, pg.mna.e, -1.0, pg.mna.a);
}

/// Dense boolean symbolic Cholesky of the permuted symmetrized pattern:
/// the reference L structure the supernode partition must cover.
std::vector<std::vector<bool>> dense_chol_struct(const la::CscMatrix& a,
                                                 const std::vector<la::index_t>& perm) {
    const la::index_t n = a.rows();
    std::vector<la::index_t> inv(static_cast<std::size_t>(n));
    for (la::index_t k = 0; k < n; ++k) inv[static_cast<std::size_t>(perm[static_cast<std::size_t>(k)])] = k;
    std::vector<std::vector<bool>> s(static_cast<std::size_t>(n),
                                     std::vector<bool>(static_cast<std::size_t>(n), false));
    const auto& cp = a.col_ptr();
    const auto& ri = a.row_ind();
    for (la::index_t j = 0; j < n; ++j)
        for (la::index_t p = cp[static_cast<std::size_t>(j)]; p < cp[static_cast<std::size_t>(j) + 1]; ++p) {
            const la::index_t pi = inv[static_cast<std::size_t>(ri[static_cast<std::size_t>(p)])];
            const la::index_t pj = inv[static_cast<std::size_t>(j)];
            s[static_cast<std::size_t>(std::max(pi, pj))][static_cast<std::size_t>(std::min(pi, pj))] = true;
        }
    for (la::index_t k = 0; k < n; ++k) {
        s[static_cast<std::size_t>(k)][static_cast<std::size_t>(k)] = true;
        for (la::index_t i = k + 1; i < n; ++i)
            if (s[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)])
                for (la::index_t j = i + 1; j < n; ++j)
                    if (s[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)])
                        s[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)] = true;
    }
    return s;
}

void check_partition_invariants(const la::CscMatrix& a, la::SparseLuOptions opt) {
    opt.kernel = Kernel::supernodal;
    const la::SparseLuSymbolic sym(a, opt);
    const la::index_t n = sym.size();
    ASSERT_TRUE(sym.has_supernodes());
    const auto& sp = sym.snode_ptr();
    const auto& rp = sym.srow_ptr();
    const auto& sr = sym.srow();
    const la::index_t nsup = sym.num_supernodes();

    // Contiguous, covering, nonempty column runs.
    ASSERT_EQ(sp.front(), 0);
    ASSERT_EQ(sp.back(), n);
    for (la::index_t s = 0; s < nsup; ++s)
        EXPECT_LT(sp[static_cast<std::size_t>(s)], sp[static_cast<std::size_t>(s) + 1]);
    for (la::index_t j = 0; j < n; ++j) {
        const la::index_t s = sym.col_to_snode()[static_cast<std::size_t>(j)];
        EXPECT_GE(j, sp[static_cast<std::size_t>(s)]);
        EXPECT_LT(j, sp[static_cast<std::size_t>(s) + 1]);
    }

    // Below-panel rows: sorted strictly ascending, strictly below the panel.
    for (la::index_t s = 0; s < nsup; ++s) {
        for (la::index_t p = rp[static_cast<std::size_t>(s)]; p < rp[static_cast<std::size_t>(s) + 1]; ++p) {
            EXPECT_GE(sr[static_cast<std::size_t>(p)], sp[static_cast<std::size_t>(s) + 1]);
            if (p > rp[static_cast<std::size_t>(s)]) {
                EXPECT_LT(sr[static_cast<std::size_t>(p - 1)], sr[static_cast<std::size_t>(p)]);
            }
        }
    }

    // After amalgamation every column shares the panel row structure: the
    // reference Cholesky structure of each column must be contained in
    // {its in-panel tail} + the supernode's row list, and every panel row
    // must appear in at least one column's reference structure (the row
    // lists are unions, not over-approximations).
    const auto ref = dense_chol_struct(a, sym.perm_cols());
    for (la::index_t s = 0; s < nsup; ++s) {
        const la::index_t c0 = sp[static_cast<std::size_t>(s)], c1 = sp[static_cast<std::size_t>(s) + 1];
        std::vector<bool> in_rows(static_cast<std::size_t>(n), false);
        for (la::index_t p = rp[static_cast<std::size_t>(s)]; p < rp[static_cast<std::size_t>(s) + 1]; ++p)
            in_rows[static_cast<std::size_t>(sr[static_cast<std::size_t>(p)])] = true;
        for (la::index_t j = c0; j < c1; ++j)
            for (la::index_t i = c1; i < n; ++i)
                if (ref[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]) {
                    EXPECT_TRUE(in_rows[static_cast<std::size_t>(i)])
                        << "missing row " << i << " of column " << j;
                }
        for (la::index_t p = rp[static_cast<std::size_t>(s)]; p < rp[static_cast<std::size_t>(s) + 1]; ++p) {
            const la::index_t i = sr[static_cast<std::size_t>(p)];
            bool hit = false;
            for (la::index_t j = c0; j < c1 && !hit; ++j)
                hit = ref[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)];
            EXPECT_TRUE(hit) << "row " << i << " in no column of supernode " << s;
        }
    }
}

} // namespace

TEST(SupernodalSymbolic, PartitionInvariantsRandom) {
    Rng rng(7);
    check_partition_invariants(random_sparse(40, 3, rng), {});
    check_partition_invariants(random_sparse(73, 2, rng), {});
}

TEST(SupernodalSymbolic, PartitionInvariantsGridAllOrderings) {
    const la::CscMatrix pencil = power_grid_pencil(4);
    for (const Ordering ord : {Ordering::natural, Ordering::rcm, Ordering::amd}) {
        la::SparseLuOptions opt;
        opt.ordering = ord;
        check_partition_invariants(pencil, opt);
    }
}

TEST(SupernodalSymbolic, ScalarKernelSkipsSupernodeAnalysis) {
    Rng rng(3);
    la::SparseLuOptions opt;
    opt.kernel = Kernel::scalar;
    const la::SparseLuSymbolic sym(random_sparse(40, 2, rng), opt);
    EXPECT_FALSE(sym.has_supernodes());
    EXPECT_EQ(sym.num_supernodes(), 0);
}

TEST(SparseLuMultiRhs, MatchesLoopedSingleRhsBitwise) {
    Rng rng(11);
    for (const Kernel kernel : {Kernel::scalar, Kernel::supernodal}) {
        const la::CscMatrix a = random_sparse(60, 3, rng);
        la::SparseLuOptions opt;
        opt.kernel = kernel;
        const la::SparseLu lu(a, opt);
        EXPECT_EQ(lu.kernel_used(), kernel);

        const la::index_t nrhs = 7;
        la::Matrixd b(60, nrhs);
        for (la::index_t r = 0; r < nrhs; ++r)
            for (la::index_t i = 0; i < 60; ++i)
                b(i, r) = std::sin(0.1 * static_cast<double>(i + 60 * r));

        const la::Matrixd x = lu.solve_multi(b);
        for (la::index_t r = 0; r < nrhs; ++r) {
            la::Vectord col(static_cast<std::size_t>(60));
            for (la::index_t i = 0; i < 60; ++i) col[static_cast<std::size_t>(i)] = b(i, r);
            const la::Vectord single = lu.solve(col);
            for (la::index_t i = 0; i < 60; ++i)
                EXPECT_EQ(x(i, r), single[static_cast<std::size_t>(i)])
                    << "kernel " << static_cast<int>(kernel) << " rhs " << r;
        }
    }
}

TEST(SparseLuSupernodal, MatchesScalarOnPowerGridPencil) {
    const la::CscMatrix pencil = power_grid_pencil(8);
    la::SparseLuOptions opt;
    opt.ordering = Ordering::amd;
    opt.kernel = Kernel::scalar;
    const la::SparseLu lu_scalar(pencil, opt);
    opt.kernel = Kernel::supernodal;
    const la::SparseLu lu_super(pencil, opt);

    EXPECT_EQ(lu_scalar.kernel_used(), Kernel::scalar);
    EXPECT_EQ(lu_super.kernel_used(), Kernel::supernodal);
    EXPECT_EQ(lu_super.off_diagonal_pivots(), 0);
    // Same structural fill metric (the grid pencil is structurally
    // symmetric and both kernels keep diagonal pivots).
    EXPECT_EQ(lu_scalar.nnz_lu(), lu_super.nnz_lu());

    la::Vectord b(static_cast<std::size_t>(pencil.rows()));
    for (std::size_t i = 0; i < b.size(); ++i)
        b[i] = std::cos(0.05 * static_cast<double>(i));
    const la::Vectord xs = lu_scalar.solve(b);
    const la::Vectord xu = lu_super.solve(b);
    double scale = 0.0;
    for (const double v : xs) scale = std::max(scale, std::abs(v));
    for (std::size_t i = 0; i < b.size(); ++i)
        EXPECT_NEAR(xs[i], xu[i], 1e-12 * scale);
}

TEST(SparseLuSupernodal, AutomaticFallsBackOnOffDiagonalPivot) {
    // Cyclic permutation pattern: every diagonal is structurally zero, so
    // a diagonal-pivot kernel cannot factor it while the scalar kernel
    // pivots off the diagonal trivially.
    const la::index_t n = 40;
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) t.add((i + 1) % n, i, 1.0 + 0.01 * static_cast<double>(i));
    const la::CscMatrix a(t);

    la::SparseLuOptions opt;  // kernel = automatic
    const la::SparseLu lu(a, opt);
    EXPECT_EQ(lu.kernel_used(), Kernel::scalar);
    EXPECT_GT(lu.off_diagonal_pivots(), 0);
    const la::Vectord x = lu.solve(la::Vectord(static_cast<std::size_t>(n), 1.0));
    // Solution of the cyclic system is well-defined; sanity-check residual.
    const la::Vectord ax = a.matvec(x);
    for (const double v : ax) EXPECT_NEAR(v, 1.0, 1e-12);

    opt.kernel = Kernel::supernodal;
    EXPECT_THROW(la::SparseLu(a, opt), opmsim::numerical_error);
}

TEST(SparseLuSupernodal, RefactorMatchesFreshFactor) {
    const la::CscMatrix pencil = power_grid_pencil(6);
    const la::CscMatrix shifted = power_grid_pencil(6, 2.0 / 0.7e-11);
    la::SparseLuOptions opt;
    opt.kernel = Kernel::supernodal;
    la::SparseLu lu(pencil, opt);
    lu.refactor(shifted);

    const la::SparseLu fresh(shifted, lu.symbolic());
    la::Vectord b(static_cast<std::size_t>(pencil.rows()));
    for (std::size_t i = 0; i < b.size(); ++i) b[i] = 1.0 / (1.0 + static_cast<double>(i));
    const la::Vectord xr = lu.solve(b);
    const la::Vectord xf = fresh.solve(b);
    for (std::size_t i = 0; i < b.size(); ++i) EXPECT_EQ(xr[i], xf[i]);
}

TEST(SparseLuSupernodal, RefactorRejectsDifferentPattern) {
    Rng rng(5);
    const la::CscMatrix a = random_sparse(40, 2, rng);
    const la::CscMatrix other = random_sparse(40, 3, rng);
    la::SparseLuOptions opt;
    opt.kernel = Kernel::supernodal;
    la::SparseLu lu(a, opt);
    EXPECT_THROW(lu.refactor(other), std::invalid_argument);
}

TEST(SparseLuSupernodal, RefactorThrowsWhenPivotFailsThreshold) {
    // Start from a diagonally dominant matrix, refactor with values whose
    // diagonal fails the threshold test — the frozen diagonal-pivot
    // contract cannot hold and the caller must re-factor from scratch.
    const la::index_t n = 6;
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t.add(i, i, 4.0);
        if (i + 1 < n) {
            t.add(i + 1, i, 1.0);
            t.add(i, i + 1, 1.0);
        }
    }
    const la::CscMatrix a(t);
    la::SparseLuOptions opt;
    opt.kernel = Kernel::supernodal;
    opt.pivot_tol = 0.5;
    la::SparseLu lu(a, opt);

    la::Triplets t2(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t2.add(i, i, 1e-9);  // diagonal collapses below the threshold
        if (i + 1 < n) {
            t2.add(i + 1, i, 1.0);
            t2.add(i, i + 1, 1.0);
        }
    }
    EXPECT_THROW(lu.refactor(la::CscMatrix(t2)), opmsim::numerical_error);
}

TEST(SparseLuSupernodal, SolveMultiAgreesWithDenseOracle) {
    Rng rng(21);
    const la::index_t n = 50;
    const la::CscMatrix a = random_sparse(n, 3, rng);
    la::SparseLuOptions opt;
    opt.kernel = Kernel::supernodal;
    const la::SparseLu lu(a, opt);

    la::Matrixd b(n, 3);
    for (la::index_t r = 0; r < 3; ++r)
        for (la::index_t i = 0; i < n; ++i)
            b(i, r) = rng.uniform() - 0.5;
    const la::Matrixd x = lu.solve_multi(b);

    const la::DenseLu<double> dense(a.to_dense());
    for (la::index_t r = 0; r < 3; ++r) {
        la::Vectord col(static_cast<std::size_t>(n));
        for (la::index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = b(i, r);
        const la::Vectord ref = dense.solve(col);
        for (la::index_t i = 0; i < n; ++i)
            EXPECT_NEAR(x(i, r), ref[static_cast<std::size_t>(i)], 1e-11);
    }
}
