/// \file test_la_sparse.cpp
/// \brief Unit + property tests for sparse matrices, RCM, and sparse LU.

#include <gtest/gtest.h>

#include <cstdint>

#include "la/dense_lu.hpp"
#include "la/ordering.hpp"
#include "la/sparse.hpp"
#include "la/sparse_lu.hpp"

namespace la = opmsim::la;

namespace {

/// Deterministic xorshift PRNG (no <random> to keep values platform-fixed).
class Rng {
public:
    explicit Rng(std::uint64_t seed) : s_(seed * 0x9E3779B97F4A7C15ull + 1) {}
    double uniform() {  // in (0, 1)
        s_ ^= s_ << 13;
        s_ ^= s_ >> 7;
        s_ ^= s_ << 17;
        return static_cast<double>(s_ % 1000003u + 1) / 1000004.0;
    }
    la::index_t index(la::index_t bound) {
        return static_cast<la::index_t>(uniform() * static_cast<double>(bound)) % bound;
    }

private:
    std::uint64_t s_;
};

/// Random diagonally-bumped sparse matrix (always nonsingular).
la::CscMatrix random_sparse(la::index_t n, la::index_t extra_per_row, Rng& rng) {
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) {
        t.add(i, i, 4.0 + rng.uniform());
        for (la::index_t k = 0; k < extra_per_row; ++k)
            t.add(i, rng.index(n), rng.uniform() - 0.5);
    }
    return la::CscMatrix(t);
}

} // namespace

TEST(Triplets, DuplicatesAreSummed) {
    la::Triplets t(2, 2);
    t.add(0, 0, 1.0);
    t.add(0, 0, 2.5);
    t.add(1, 0, -1.0);
    la::CscMatrix a(t);
    EXPECT_EQ(a.nnz(), 2);
    EXPECT_DOUBLE_EQ(a.coeff(0, 0), 3.5);
    EXPECT_DOUBLE_EQ(a.coeff(1, 0), -1.0);
    EXPECT_DOUBLE_EQ(a.coeff(1, 1), 0.0);
}

TEST(Triplets, OutOfRangeThrows) {
    la::Triplets t(2, 2);
    EXPECT_THROW(t.add(2, 0, 1.0), std::invalid_argument);
    EXPECT_THROW(t.add(0, -1, 1.0), std::invalid_argument);
}

TEST(CscMatrix, MatvecKnown) {
    la::Matrixd d{{1, 0, 2}, {0, 3, 0}, {4, 0, 5}};
    const la::CscMatrix a = la::CscMatrix::from_dense(d);
    EXPECT_EQ(a.nnz(), 5);
    const la::Vectord y = a.matvec({1.0, 2.0, 3.0});
    EXPECT_DOUBLE_EQ(y[0], 7.0);
    EXPECT_DOUBLE_EQ(y[1], 6.0);
    EXPECT_DOUBLE_EQ(y[2], 19.0);
}

TEST(CscMatrix, TransposeRoundTrip) {
    Rng rng(7);
    const la::CscMatrix a = random_sparse(20, 3, rng);
    const la::CscMatrix att = a.transposed().transposed();
    EXPECT_NEAR(la::max_abs_diff(a.to_dense(), att.to_dense()), 0.0, 0.0);
}

TEST(CscMatrix, MatvecTransposedMatchesTranspose) {
    Rng rng(8);
    const la::CscMatrix a = random_sparse(15, 2, rng);
    la::Vectord x(15);
    for (auto& v : x) v = rng.uniform();
    const la::Vectord y1 = a.matvec_transposed(x);
    const la::Vectord y2 = a.transposed().matvec(x);
    for (std::size_t i = 0; i < y1.size(); ++i) EXPECT_NEAR(y1[i], y2[i], 1e-14);
}

TEST(CscMatrix, AddScaled) {
    la::Matrixd d1{{1, 2}, {0, 3}};
    la::Matrixd d2{{0, 1}, {5, 0}};
    const la::CscMatrix s = la::CscMatrix::add(2.0, la::CscMatrix::from_dense(d1),
                                               -1.0, la::CscMatrix::from_dense(d2));
    EXPECT_DOUBLE_EQ(s.coeff(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(s.coeff(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(s.coeff(1, 0), -5.0);
    EXPECT_DOUBLE_EQ(s.coeff(1, 1), 6.0);
}

TEST(CscMatrix, PermutedIsSymmetricPermutation) {
    la::Matrixd d{{1, 2, 0}, {0, 3, 4}, {5, 0, 6}};
    const la::CscMatrix a = la::CscMatrix::from_dense(d);
    const std::vector<la::index_t> perm = {2, 0, 1};  // new -> old
    const la::CscMatrix p = a.permuted(perm);
    for (la::index_t i = 0; i < 3; ++i)
        for (la::index_t j = 0; j < 3; ++j)
            EXPECT_DOUBLE_EQ(p.coeff(i, j), d(perm[static_cast<std::size_t>(i)],
                                              perm[static_cast<std::size_t>(j)]));
}

TEST(Rcm, ReducesBandwidthOnPath) {
    // A path graph numbered randomly has large bandwidth; RCM restores ~1.
    const la::index_t n = 40;
    const std::vector<la::index_t> shuffle = [&] {
        std::vector<la::index_t> s(static_cast<std::size_t>(n));
        for (la::index_t i = 0; i < n; ++i)
            s[static_cast<std::size_t>(i)] = (i * 23) % n;  // gcd(23,40)=1
        return s;
    }();
    la::Triplets t(n, n);
    for (la::index_t i = 0; i < n; ++i) t.add(i, i, 2.0);
    for (la::index_t i = 0; i + 1 < n; ++i) {
        t.add(shuffle[static_cast<std::size_t>(i)], shuffle[static_cast<std::size_t>(i + 1)], -1.0);
        t.add(shuffle[static_cast<std::size_t>(i + 1)], shuffle[static_cast<std::size_t>(i)], -1.0);
    }
    const la::CscMatrix a(t);
    const auto perm = la::rcm_ordering(a);
    EXPECT_GT(la::bandwidth(a, la::natural_ordering(n)), 10);
    EXPECT_LE(la::bandwidth(a, perm), 2);
}

TEST(Rcm, HandlesDisconnectedComponents) {
    la::Triplets t(6, 6);
    for (la::index_t i = 0; i < 6; ++i) t.add(i, i, 1.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 1.0);
    t.add(3, 4, 1.0);
    t.add(4, 3, 1.0);
    const auto perm = la::rcm_ordering(la::CscMatrix(t));
    std::vector<bool> seen(6, false);
    for (const auto p : perm) {
        ASSERT_GE(p, 0);
        ASSERT_LT(p, 6);
        EXPECT_FALSE(seen[static_cast<std::size_t>(p)]) << "duplicate in permutation";
        seen[static_cast<std::size_t>(p)] = true;
    }
}

TEST(SparseLu, SolvesKnownSystem) {
    la::Matrixd d{{4, 1, 0}, {1, 4, 1}, {0, 1, 4}};
    const la::SparseLu lu(la::CscMatrix::from_dense(d));
    const la::Vectord x = lu.solve({6.0, 12.0, 14.0});
    // Verify A x = b.
    const la::Vectord b = la::CscMatrix::from_dense(d).matvec(x);
    EXPECT_NEAR(b[0], 6.0, 1e-12);
    EXPECT_NEAR(b[1], 12.0, 1e-12);
    EXPECT_NEAR(b[2], 14.0, 1e-12);
}

TEST(SparseLu, SingularMatrixThrows) {
    la::Matrixd d{{1, 2}, {2, 4}};
    EXPECT_THROW(la::SparseLu{la::CscMatrix::from_dense(d)}, opmsim::numerical_error);
}

TEST(SparseLu, StructurallySingularThrows) {
    la::Triplets t(3, 3);
    t.add(0, 0, 1.0);
    t.add(1, 1, 1.0);  // column/row 2 empty
    EXPECT_THROW(la::SparseLu{la::CscMatrix(t)}, opmsim::numerical_error);
}

TEST(SparseLu, PivotingHandlesZeroDiagonal) {
    // MNA-style saddle point: zero diagonal block requires row pivoting.
    // Natural ordering keeps the zero pivot in front so the threshold test
    // must reject the structural diagonal.
    la::Matrixd d{{0, 1}, {1, 1}};
    la::SparseLuOptions opt;
    opt.ordering = la::SparseLuOptions::Ordering::natural;
    const la::SparseLu lu(la::CscMatrix::from_dense(d), opt);
    const la::Vectord x = lu.solve({1.0, 3.0});
    EXPECT_NEAR(x[0], 2.0, 1e-14);
    EXPECT_NEAR(x[1], 1.0, 1e-14);
    EXPECT_GE(lu.off_diagonal_pivots(), 1);
}

/// Property sweep: sparse LU solution matches dense LU on random systems
/// under both orderings.
class SparseLuProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SparseLuProperty, MatchesDenseSolve) {
    const auto [n, seed] = GetParam();
    Rng rng(static_cast<std::uint64_t>(seed));
    const la::CscMatrix a = random_sparse(n, 4, rng);
    la::Vectord b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform() - 0.5;

    for (const auto ord : {la::SparseLuOptions::Ordering::natural,
                           la::SparseLuOptions::Ordering::rcm,
                           la::SparseLuOptions::Ordering::amd,
                           la::SparseLuOptions::Ordering::automatic}) {
        la::SparseLuOptions opt;
        opt.ordering = ord;
        const la::SparseLu lu(a, opt);
        const la::Vectord xs = lu.solve(b);
        const la::Vectord xd = la::solve_dense(a.to_dense(), b);
        for (std::size_t i = 0; i < xs.size(); ++i)
            EXPECT_NEAR(xs[i], xd[i], 1e-9 * (1.0 + std::abs(xd[i])));
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SparseLuProperty,
                         ::testing::Combine(::testing::Values(5, 17, 40, 83),
                                            ::testing::Values(1, 2, 3)));

/// Pins the pivot_tol semantics documented in SparseLuOptions: the
/// structural diagonal is kept iff |a_diag| >= pivot_tol * max|column|.
TEST(SparseLu, PivotTolThresholds) {
    // Column 0 has a tiny diagonal (1e-3) against an off-diagonal 1.0.
    la::Matrixd d{{1e-3, 1.0}, {1.0, 1.0}};
    const la::CscMatrix a = la::CscMatrix::from_dense(d);
    const la::Vectord b = {1.0, 3.0};
    const la::Vectord xd = la::solve_dense(a.to_dense(), b);

    auto factor_with_tol = [&](double tol) {
        la::SparseLuOptions opt;
        opt.ordering = la::SparseLuOptions::Ordering::natural;
        opt.pivot_tol = tol;
        return la::SparseLu(a, opt);
    };

    // tol = 0: any nonzero diagonal is accepted, tiny or not.
    EXPECT_EQ(factor_with_tol(0.0).off_diagonal_pivots(), 0);
    // tol = 0.1: 1e-3 < 0.1 * 1.0, so column 0's diagonal is rejected —
    // and stealing row 1 forces column 1 off-diagonal too (count = 2).
    EXPECT_EQ(factor_with_tol(0.1).off_diagonal_pivots(), 2);
    // tol just below the ratio: 1e-3 >= 1e-4 * 1.0 keeps the diagonal.
    EXPECT_EQ(factor_with_tol(1e-4).off_diagonal_pivots(), 0);
    // tol = 1: strict partial pivoting — only a diagonal that ties the
    // column maximum survives, so here the off-diagonal wins.
    EXPECT_EQ(factor_with_tol(1.0).off_diagonal_pivots(), 2);

    // All thresholds still solve correctly.
    for (const double tol : {0.0, 1e-4, 0.1, 1.0}) {
        const la::Vectord x = factor_with_tol(tol).solve(b);
        EXPECT_NEAR(x[0], xd[0], 1e-11);
        EXPECT_NEAR(x[1], xd[1], 1e-11);
    }

    // tol = 1 with an exact tie: the diagonal is preferred (tie-break).
    la::Matrixd tie{{1.0, 0.5}, {1.0, 1.0}};
    la::SparseLuOptions opt;
    opt.ordering = la::SparseLuOptions::Ordering::natural;
    opt.pivot_tol = 1.0;
    EXPECT_EQ(la::SparseLu(la::CscMatrix::from_dense(tie), opt).off_diagonal_pivots(),
              0);
}

TEST(SparseLu, RefactorMatchesFreshFactorization) {
    Rng rng(13);
    const la::index_t n = 40;
    const la::CscMatrix a = random_sparse(n, 4, rng);

    // Same pattern, different values (scaled + perturbed diagonal).
    la::Triplets t2(n, n);
    {
        const auto& cp = a.col_ptr();
        const auto& ri = a.row_ind();
        const auto& vl = a.values();
        for (la::index_t j = 0; j < n; ++j)
            for (la::index_t p = cp[static_cast<std::size_t>(j)];
                 p < cp[static_cast<std::size_t>(j) + 1]; ++p)
                t2.add(ri[static_cast<std::size_t>(p)], j,
                       -2.5 * vl[static_cast<std::size_t>(p)] +
                           (ri[static_cast<std::size_t>(p)] == j ? 1.0 : 0.0));
    }
    const la::CscMatrix a2(t2);
    ASSERT_EQ(a2.nnz(), a.nnz());

    la::SparseLu lu(a);
    lu.refactor(a2);
    la::Vectord b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform() - 0.5;
    const la::Vectord xr = lu.solve(b);
    const la::Vectord xf = la::SparseLu(a2).solve(b);
    const la::Vectord xd = la::solve_dense(a2.to_dense(), b);
    for (std::size_t i = 0; i < xr.size(); ++i) {
        EXPECT_NEAR(xr[i], xd[i], 1e-9 * (1.0 + std::abs(xd[i])));
        EXPECT_NEAR(xr[i], xf[i], 1e-12 * (1.0 + std::abs(xf[i])));
    }

    // Refactor back to the original values: must match the original factor.
    lu.refactor(a);
    const la::Vectord x0 = lu.solve(b);
    const la::Vectord x0d = la::solve_dense(a.to_dense(), b);
    for (std::size_t i = 0; i < x0.size(); ++i)
        EXPECT_NEAR(x0[i], x0d[i], 1e-9 * (1.0 + std::abs(x0d[i])));
}

TEST(SparseLu, RefactorRejectsPatternMismatch) {
    la::Matrixd d{{4, 1, 0}, {1, 4, 1}, {0, 1, 4}};
    la::SparseLu lu(la::CscMatrix::from_dense(d));
    la::Matrixd other{{4, 1, 1}, {1, 4, 1}, {1, 1, 4}};  // extra corners
    EXPECT_THROW(lu.refactor(la::CscMatrix::from_dense(other)),
                 std::invalid_argument);
    la::Matrixd smaller{{4, 1}, {1, 4}};
    EXPECT_THROW(lu.refactor(la::CscMatrix::from_dense(smaller)),
                 std::invalid_argument);
}

TEST(SparseLu, RefactorThrowsOnVanishedPivot) {
    la::Matrixd d{{4, 1}, {1, 4}};
    la::SparseLu lu(la::CscMatrix::from_dense(d));
    // Same pattern, but values that make the frozen pivot sequence singular.
    la::Triplets t(2, 2);
    t.add(0, 0, 0.0);
    t.add(0, 1, 1.0);
    t.add(1, 0, 0.0);
    t.add(1, 1, 4.0);
    EXPECT_THROW(lu.refactor(la::CscMatrix(t)), opmsim::numerical_error);
}

TEST(SparseLu, SymbolicReuseAcrossSamePatternPencils) {
    Rng rng(17);
    const la::index_t n = 60;
    const la::CscMatrix e = random_sparse(n, 3, rng);
    const la::CscMatrix a = random_sparse(n, 3, rng);

    const la::CscMatrix p1 = la::CscMatrix::add(10.0, e, -1.0, a);
    const la::CscMatrix p2 = la::CscMatrix::add(400.0, e, -1.0, a);
    const la::SparseLu lu1(p1);
    ASSERT_NE(lu1.symbolic(), nullptr);
    const la::SparseLu lu2(p2, lu1.symbolic());
    EXPECT_EQ(lu2.symbolic().get(), lu1.symbolic().get());

    la::Vectord b(static_cast<std::size_t>(n));
    for (auto& v : b) v = rng.uniform() - 0.5;
    const la::Vectord x2 = lu2.solve(b);
    const la::Vectord xd = la::solve_dense(p2.to_dense(), b);
    for (std::size_t i = 0; i < x2.size(); ++i)
        EXPECT_NEAR(x2[i], xd[i], 1e-9 * (1.0 + std::abs(xd[i])));

    // The analysis reports the resolved ordering and a fill prediction
    // that bounds the factor it sized (tight while pivots stay put).
    EXPECT_NE(lu1.symbolic()->chosen_ordering(),
              la::SparseLuOptions::Ordering::automatic);
    if (lu1.off_diagonal_pivots() == 0) {
        EXPECT_GE(lu1.symbolic()->fill_estimate(), lu1.nnz_lu());
    }
}

TEST(SparseLu, ResidualSmallOnLaplacian2D) {
    // 2-D 5-point Laplacian with Dirichlet shift: the canonical mesh case.
    const la::index_t nx = 12, ny = 12, n = nx * ny;
    la::Triplets t(n, n);
    auto id = [nx](la::index_t x, la::index_t y) { return y * nx + x; };
    for (la::index_t y = 0; y < ny; ++y)
        for (la::index_t x = 0; x < nx; ++x) {
            t.add(id(x, y), id(x, y), 4.1);
            if (x + 1 < nx) {
                t.add(id(x, y), id(x + 1, y), -1.0);
                t.add(id(x + 1, y), id(x, y), -1.0);
            }
            if (y + 1 < ny) {
                t.add(id(x, y), id(x, y + 1), -1.0);
                t.add(id(x, y + 1), id(x, y), -1.0);
            }
        }
    const la::CscMatrix a(t);
    const la::SparseLu lu(a);
    la::Vectord b(static_cast<std::size_t>(n), 1.0);
    const la::Vectord x = lu.solve(b);
    const la::Vectord ax = a.matvec(x);
    double rmax = 0;
    for (std::size_t i = 0; i < b.size(); ++i)
        rmax = std::max(rmax, std::abs(b[i] - ax[i]));
    EXPECT_LT(rmax, 1e-11);
    EXPECT_EQ(lu.off_diagonal_pivots(), 0) << "SPD mesh should keep diagonal pivots";
}
