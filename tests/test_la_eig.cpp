/// \file test_la_eig.cpp
/// \brief Tests for the QR eigenvalue solver, triangular eigendecomposition
///        and fractional matrix powers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "la/dense_lu.hpp"
#include "la/eig.hpp"
#include "la/triangular.hpp"

namespace la = opmsim::la;

namespace {

/// Sort eigenvalues by (real, imag) for comparison.
std::vector<la::cplx> sorted(std::vector<la::cplx> v) {
    std::sort(v.begin(), v.end(), [](const la::cplx& a, const la::cplx& b) {
        if (a.real() != b.real()) return a.real() < b.real();
        return a.imag() < b.imag();
    });
    return v;
}

} // namespace

TEST(EigValues, DiagonalMatrix) {
    la::Matrixd a{{3, 0, 0}, {0, -1, 0}, {0, 0, 7}};
    const auto e = sorted(la::eig_values(a));
    ASSERT_EQ(e.size(), 3u);
    EXPECT_NEAR(e[0].real(), -1.0, 1e-10);
    EXPECT_NEAR(e[1].real(), 3.0, 1e-10);
    EXPECT_NEAR(e[2].real(), 7.0, 1e-10);
    for (const auto& l : e) EXPECT_NEAR(l.imag(), 0.0, 1e-10);
}

TEST(EigValues, RotationGivesComplexPair) {
    // [[0,-1],[1,0]] has eigenvalues +-i.
    la::Matrixd a{{0, -1}, {1, 0}};
    const auto e = sorted(la::eig_values(a));
    ASSERT_EQ(e.size(), 2u);
    EXPECT_NEAR(e[0].real(), 0.0, 1e-12);
    EXPECT_NEAR(std::abs(e[0].imag()), 1.0, 1e-12);
    EXPECT_NEAR(e[1].imag(), -e[0].imag(), 1e-12);
}

TEST(EigValues, CompanionMatrixRoots) {
    // Companion of x^3 - 6x^2 + 11x - 6 = (x-1)(x-2)(x-3).
    la::Matrixd a{{6, -11, 6}, {1, 0, 0}, {0, 1, 0}};
    const auto e = sorted(la::eig_values(a));
    ASSERT_EQ(e.size(), 3u);
    EXPECT_NEAR(e[0].real(), 1.0, 1e-8);
    EXPECT_NEAR(e[1].real(), 2.0, 1e-8);
    EXPECT_NEAR(e[2].real(), 3.0, 1e-8);
}

TEST(EigValues, TraceAndDeterminantConsistency) {
    // Invariants: sum(eig) = trace, prod(eig) = det.
    la::Matrixd a{{2, 1, 0, 3}, {1, -1, 2, 0}, {0, 4, 3, 1}, {2, 0, 1, -2}};
    const auto e = la::eig_values(a);
    la::cplx sum(0, 0), prod(1, 0);
    for (const auto& l : e) {
        sum += l;
        prod *= l;
    }
    double trace = 0;
    for (la::index_t i = 0; i < 4; ++i) trace += a(i, i);
    EXPECT_NEAR(sum.real(), trace, 1e-8);
    EXPECT_NEAR(sum.imag(), 0.0, 1e-8);
    EXPECT_NEAR(prod.real(), la::DenseLu<double>(a).det(), 1e-6);
}

TEST(EigValues, LargerRandomSpectrumIsStableUnderSimilarity) {
    // eig(A) == eig(S A S^{-1}) for diagonal S: a weak but effective check
    // on a 20x20 matrix with deterministic pseudo-random entries.
    const la::index_t n = 20;
    la::Matrixd a(n, n);
    unsigned s = 123;
    for (la::index_t j = 0; j < n; ++j)
        for (la::index_t i = 0; i < n; ++i) {
            s = s * 1664525u + 1013904223u;
            a(i, j) = static_cast<double>(s % 2000) / 1000.0 - 1.0;
        }
    la::Matrixd b = a;
    for (la::index_t i = 0; i < n; ++i) {
        const double sc = 1.0 + 0.1 * static_cast<double>(i);
        for (la::index_t j = 0; j < n; ++j) b(i, j) *= sc;
        for (la::index_t j = 0; j < n; ++j) b(j, i) /= sc;
    }
    const auto ea = sorted(la::eig_values(a));
    const auto eb = sorted(la::eig_values(b));
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t k = 0; k < ea.size(); ++k)
        EXPECT_LT(std::abs(ea[k] - eb[k]), 1e-6) << "eigenvalue " << k;
}

TEST(GeneralizedEig, PencilEigenvalues) {
    // E = diag(2, 1), A = diag(-4, -3): lambda = {-2, -3}.
    la::Matrixd e{{2, 0}, {0, 1}};
    la::Matrixd a{{-4, 0}, {0, -3}};
    const auto ev = sorted(la::generalized_eig_values(e, a));
    EXPECT_NEAR(ev[0].real(), -3.0, 1e-12);
    EXPECT_NEAR(ev[1].real(), -2.0, 1e-12);
}

TEST(GeneralizedEig, SingularEThrows) {
    la::Matrixd e{{1, 0}, {0, 0}};
    la::Matrixd a{{1, 0}, {0, 1}};
    EXPECT_THROW(la::generalized_eig_values(e, a), opmsim::numerical_error);
}

TEST(FractionalStable, MatignonSectors) {
    using c = la::cplx;
    // alpha = 1: classic Hurwitz condition.
    EXPECT_TRUE(la::fractional_stable({c(-1, 5)}, 1.0));
    EXPECT_FALSE(la::fractional_stable({c(1e-3, 5)}, 1.0));
    // alpha = 1/2: sector |arg| > pi/4; stable even slightly into RHP.
    EXPECT_TRUE(la::fractional_stable({c(1.0, 2.0)}, 0.5));
    EXPECT_FALSE(la::fractional_stable({c(2.0, 1.0)}, 0.5));
    // alpha = 1.5: needs |arg| > 3pi/4.
    EXPECT_FALSE(la::fractional_stable({c(-1.0, 1.1)}, 1.5));
    EXPECT_TRUE(la::fractional_stable({c(-1.0, 0.1)}, 1.5));
}

TEST(TriangularEig, ReconstructsMatrix) {
    la::Matrixd t{{1, 2, 3}, {0, 2, 1}, {0, 0, 4}};
    const la::TriangularEig e = la::eig_upper_triangular(t);
    // T V = V diag(lambda)
    la::Matrixd tv = t * e.v;
    la::Matrixd vl = e.v;
    for (la::index_t j = 0; j < 3; ++j)
        for (la::index_t i = 0; i < 3; ++i) vl(i, j) *= e.lambda[static_cast<std::size_t>(j)];
    EXPECT_LT(la::max_abs_diff(tv, vl), 1e-12);
    // V * V^{-1} = I
    EXPECT_LT(la::max_abs_diff(e.v * e.v_inv, la::Matrixd::identity(3)), 1e-12);
}

TEST(TriangularEig, RepeatedEigenvaluesThrow) {
    la::Matrixd t{{2, 1}, {0, 2}};
    EXPECT_THROW(la::eig_upper_triangular(t), opmsim::numerical_error);
}

TEST(FractionalPowerUpper, SquareRootSquares) {
    la::Matrixd t{{1, 3, -2}, {0, 4, 1}, {0, 0, 9}};
    const la::Matrixd r = la::fractional_power_upper(t, 0.5);
    EXPECT_LT(la::max_abs_diff(r * r, t), 1e-10);
}

TEST(FractionalPowerUpper, IntegerPowerMatchesMultiplication) {
    la::Matrixd t{{1, 1, 0}, {0, 2, 2}, {0, 0, 5}};
    const la::Matrixd r = la::fractional_power_upper(t, 2.0);
    EXPECT_LT(la::max_abs_diff(r, t * t), 1e-9);
}

TEST(FractionalPowerUpper, NegativePowerIsInverse) {
    la::Matrixd t{{2, 1}, {0, 3}};
    const la::Matrixd r = la::fractional_power_upper(t, -1.0);
    EXPECT_LT(la::max_abs_diff(r * t, la::Matrixd::identity(2)), 1e-12);
}

TEST(FractionalPowerUpper, NonPositiveDiagonalThrows) {
    la::Matrixd t{{-1, 0}, {0, 2}};
    EXPECT_THROW(la::fractional_power_upper(t, 0.5), std::invalid_argument);
}

/// Semigroup property of triangular fractional powers: T^a T^b = T^{a+b}.
class TriPowerSemigroup
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(TriPowerSemigroup, Holds) {
    const auto [a, b] = GetParam();
    la::Matrixd t{{1.0, 0.5, 0.2, 0.1},
                  {0.0, 2.0, 0.7, 0.3},
                  {0.0, 0.0, 3.5, 0.9},
                  {0.0, 0.0, 0.0, 5.0}};
    const la::Matrixd ta = la::fractional_power_upper(t, a);
    const la::Matrixd tb = la::fractional_power_upper(t, b);
    const la::Matrixd tab = la::fractional_power_upper(t, a + b);
    EXPECT_LT(la::max_abs_diff(ta * tb, tab), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Pairs, TriPowerSemigroup,
    ::testing::Values(std::make_pair(0.5, 0.5), std::make_pair(0.3, 0.9),
                      std::make_pair(1.5, 0.5), std::make_pair(0.25, 0.25),
                      std::make_pair(1.2, 1.3)));
