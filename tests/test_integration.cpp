/// \file test_integration.cpp
/// \brief End-to-end integration tests across modules, plus failure
///        injection (singular pencils, inconsistent inputs, bad options).

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/power_grid.hpp"
#include "circuit/tline.hpp"
#include "opm/adaptive.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "transient/fft_solver.hpp"
#include "transient/grunwald.hpp"
#include "transient/steppers.hpp"
#include "util/status.hpp"

namespace circuit = opmsim::circuit;
namespace la = opmsim::la;
namespace opm = opmsim::opm;
namespace wave = opmsim::wave;
namespace transient = opmsim::transient;

TEST(Integration, NetlistToOpmVsTrapezoidalOnRlcLadder) {
    // 6-stage RLC ladder, netlist -> MNA -> both solvers.
    circuit::Netlist nl;
    la::index_t prev = nl.node("in");
    nl.vsource("V1", prev, 0, 0);
    for (int k = 0; k < 6; ++k) {
        const la::index_t mid = nl.node("m" + std::to_string(k));
        const la::index_t nxt = nl.node("n" + std::to_string(k));
        nl.resistor("R" + std::to_string(k), prev, mid, 1.0);
        nl.inductor("L" + std::to_string(k), mid, nxt, 1e-9);
        nl.capacitor("C" + std::to_string(k), nxt, 0, 1e-12);
        prev = nxt;
    }
    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_mna(nl, &lay);
    sys.c = circuit::node_voltage_selector(lay, {prev});

    const std::vector<wave::Source> u = {wave::smooth_step(1.0, 0.0, 0.2e-9)};
    const double t_end = 5e-9;
    const auto o = opm::simulate_opm(sys, u, t_end, 500);
    transient::TransientOptions topt;
    topt.method = transient::Method::trapezoidal;
    const auto t = transient::simulate_transient(sys, u, t_end, 500, topt);
    EXPECT_LT(wave::relative_l2(t.outputs[0], o.outputs[0]), 5e-3);
}

TEST(Integration, FractionalNetlistAcrossThreeSolvers) {
    // R-CPE circuit through OPM, GL and FFT; all three must agree.
    circuit::Netlist nl;
    const auto in = nl.node("in"), out = nl.node("out");
    nl.vsource("V1", in, 0, 0);
    nl.resistor("R1", in, out, 1.0);
    nl.cpe("Z1", out, 0, 1.0, 0.5);
    circuit::MnaLayout lay;
    opm::DescriptorSystem sys = circuit::build_fractional_mna(nl, 0.5, &lay);
    sys.c = circuit::node_voltage_selector(lay, {out});

    const std::vector<wave::Source> u = {wave::smooth_pulse(1.0, 0.5, 1.0, 2.0, 1.0)};
    const double t_end = 8.0;

    opm::OpmOptions oo;
    oo.alpha = 0.5;
    const auto r_opm = opm::simulate_opm(sys, u, t_end, 512, oo);
    transient::GrunwaldOptions go;
    go.alpha = 0.5;
    const auto r_gl = transient::simulate_grunwald(sys, u, t_end, 1024, go);

    // Dense copy for the FFT baseline.
    opm::DenseDescriptorSystem dense;
    dense.e = sys.e.to_dense();
    dense.a = sys.a.to_dense();
    dense.b = sys.b.to_dense();
    dense.c = sys.c.to_dense();
    transient::FftSolverOptions fo;
    fo.alpha = 0.5;
    fo.samples = 512;
    const auto r_fft = transient::simulate_fft(dense, u, t_end, fo);

    EXPECT_LT(wave::relative_l2(r_gl.outputs[0], r_opm.outputs[0]), 1e-2);
    // The FFT baseline carries the fractional wrap-around error (see
    // test_transient.cpp) — bounded but far behind the time-domain methods.
    EXPECT_LT(wave::relative_l2(r_gl.outputs[0], r_fft.outputs[0]), 0.5);
}

TEST(Integration, AdaptiveMatchesUniformOnPowerGridColumn) {
    // Adaptive OPM on a small power grid MNA model vs dense-step uniform.
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 4;
    spec.nz = 2;
    spec.num_loads = 2;
    spec.load_channels = 1;
    const auto pg = circuit::build_power_grid(spec);

    opm::AdaptiveOptions aopt;
    aopt.tol = 1e-5;
    aopt.h_init = 1e-11;
    const auto ad = opm::simulate_opm_adaptive(pg.mna, pg.inputs, 1e-9, aopt);
    const auto un = opm::simulate_opm(pg.mna, pg.inputs, 1e-9, 400);
    for (std::size_t ch = 0; ch < ad.outputs.size(); ++ch)
        EXPECT_LT(wave::relative_l2(un.outputs[ch], ad.outputs[ch]), 2e-2) << ch;
}

TEST(Integration, TlineTableOneSetupRunsEndToEnd) {
    // The exact Table I flow at reduced size, checking all pieces hook up.
    const auto tline = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {wave::step(1.0), wave::step(0.0)};
    opm::OpmOptions oo;
    oo.alpha = circuit::kTlineAlpha;
    const auto o = opm::simulate_opm(tline, u, 2.7e-9, 8, oo);
    EXPECT_EQ(o.coeffs.cols(), 8);
    transient::FftSolverOptions f1{0.5, 8}, f2{0.5, 100};
    const auto r1 = transient::simulate_fft(tline, u, 2.7e-9, f1);
    const auto r2 = transient::simulate_fft(tline, u, 2.7e-9, f2);
    EXPECT_EQ(r1.outputs.size(), 2u);
    EXPECT_EQ(r2.outputs.size(), 2u);
    // sanity: all finite
    for (const auto& w : {o.outputs[0], o.outputs[1], r1.outputs[0], r2.outputs[1]})
        for (double v : w.values()) EXPECT_TRUE(std::isfinite(v));
}

// ---- failure injection ----

TEST(FailureInjection, SingularPencilSurfacesAsNumericalError) {
    // E = 0 and A singular: every pencil d0*E - A is singular.
    opm::DescriptorSystem sys;
    la::Triplets e(2, 2), a(2, 2), b(2, 1);
    a.add(0, 0, 1.0);
    a.add(0, 1, 1.0);
    a.add(1, 0, 1.0);
    a.add(1, 1, 1.0);  // rank 1
    b.add(0, 0, 1.0);
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);
    EXPECT_THROW(opm::simulate_opm(sys, {wave::step(1.0)}, 1.0, 8),
                 opmsim::numerical_error);
}

TEST(FailureInjection, MismatchedShapesRejected) {
    opm::DescriptorSystem sys;
    la::Triplets e(2, 2), a(3, 3), b(2, 1);
    sys.e = la::CscMatrix(e);
    sys.a = la::CscMatrix(a);
    sys.b = la::CscMatrix(b);
    EXPECT_THROW(sys.validate(), std::invalid_argument);
}

TEST(FailureInjection, WrongInputCountRejectedEverywhere) {
    const auto tline = circuit::make_fractional_tline();  // wants 2 inputs
    const std::vector<wave::Source> one = {wave::step(1.0)};
    opm::OpmOptions oo;
    oo.alpha = 0.5;
    EXPECT_THROW(opm::simulate_opm(tline, one, 1e-9, 8, oo),
                 std::invalid_argument);
    EXPECT_THROW(transient::simulate_fft(tline, one, 1e-9, {0.5, 16}),
                 std::invalid_argument);
    transient::GrunwaldOptions go;
    go.alpha = 0.5;
    EXPECT_THROW(transient::simulate_grunwald(tline.to_sparse(), one, 1e-9, 8,
                                              go),
                 std::invalid_argument);
    opm::AdaptiveOptions ao;
    ao.alpha = 0.5;
    EXPECT_THROW(opm::simulate_opm_adaptive(tline, one, 1e-9, ao),
                 std::invalid_argument);
}

TEST(FailureInjection, NonFiniteInputsRejectedWithTaxonomyCode) {
    // A NaN source must not crash the sweep or silently poison the
    // coefficients: the forcing guard rejects it up front with the
    // structured nonfinite_input code.
    const auto sys = circuit::make_fractional_tline();
    const std::vector<wave::Source> u = {
        [](double) { return std::numeric_limits<double>::quiet_NaN(); },
        wave::step(0.0)};
    opm::OpmOptions oo;
    oo.alpha = 0.5;
    try {
        const auto res = opm::simulate_opm(sys, u, 1e-9, 8, oo);
        FAIL() << "expected solver_error(nonfinite_input)";
    } catch (const opmsim::solver_error& e) {
        EXPECT_EQ(e.code(), opmsim::ErrorCode::nonfinite_input);
        EXPECT_NE(std::string(e.what()).find("non-finite"), std::string::npos);
    }
}

TEST(FailureInjection, EmptyNetlistRejected) {
    circuit::Netlist nl;
    EXPECT_THROW(circuit::build_mna(nl), std::invalid_argument);
    EXPECT_THROW(circuit::build_second_order(nl), std::invalid_argument);
}
