/// \file test_la_dense.cpp
/// \brief Unit tests for the dense linear-algebra substrate.

#include <gtest/gtest.h>

#include "la/dense.hpp"
#include "la/dense_lu.hpp"

namespace la = opmsim::la;

TEST(DenseMatrix, ConstructAndIndex) {
    la::Matrixd m(2, 3);
    EXPECT_EQ(m.rows(), 2);
    EXPECT_EQ(m.cols(), 3);
    m(1, 2) = 5.0;
    EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
    EXPECT_DOUBLE_EQ(m(0, 0), 0.0);
}

TEST(DenseMatrix, InitializerList) {
    la::Matrixd m{{1, 2}, {3, 4}};
    EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(DenseMatrix, MatmulKnown) {
    la::Matrixd a{{1, 2}, {3, 4}};
    la::Matrixd b{{5, 6}, {7, 8}};
    la::Matrixd c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(DenseLu, SolveKnown) {
    la::Matrixd a{{4, 3}, {6, 3}};
    const la::Vectord x = la::solve_dense(a, {10.0, 12.0});
    EXPECT_NEAR(x[0], 1.0, 1e-12);
    EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(DenseLu, SingularThrows) {
    la::Matrixd a{{1, 2}, {2, 4}};
    EXPECT_THROW(la::DenseLu<double>{a}, opmsim::numerical_error);
}
