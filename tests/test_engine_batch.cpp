/// \file test_engine_batch.cpp
/// \brief Engine::run_batch pins: grouped multi-RHS batches vs the
///        per-scenario loop (bit-identical on the recurrence path and the
///        marching schemes, 1e-12 on the fft history backend), threaded
///        vs serial determinism (bit-identical at any worker count), and
///        the Diagnostics solve_seconds / rhs_solved counters.

#include <gtest/gtest.h>

#include <cmath>

#include "api/engine.hpp"
#include "circuit/power_grid.hpp"
#include "circuit/tline.hpp"

namespace api = opmsim::api;
namespace opm = opmsim::opm;
namespace la = opmsim::la;
namespace wave = opmsim::wave;
namespace circuit = opmsim::circuit;
namespace transient = opmsim::transient;

namespace {

double exact_diff(const la::Matrixd& a, const la::Matrixd& b) {
    if (a.rows() != b.rows() || a.cols() != b.cols()) return 1e300;
    double m = 0.0;
    for (la::index_t j = 0; j < a.cols(); ++j)
        for (la::index_t i = 0; i < a.rows(); ++i)
            m = std::max(m, std::abs(a(i, j) - b(i, j)));
    return m;
}

circuit::PowerGrid make_grid() {
    circuit::PowerGridSpec spec;
    spec.nx = spec.ny = 4;
    spec.nz = 2;
    spec.num_loads = 4;
    spec.load_channels = 2;
    return circuit::build_power_grid(spec);
}

/// Scenarios differing only in their load-current gains.
std::vector<api::Scenario> source_sweep(const circuit::PowerGrid& pg,
                                        const api::MethodConfig& config,
                                        int count, la::index_t steps,
                                        double t_end) {
    std::vector<api::Scenario> batch;
    for (int s = 0; s < count; ++s) {
        api::Scenario sc;
        sc.t_end = t_end;
        sc.steps = steps;
        sc.config = config;
        const double gain = 1.0 + 0.2 * static_cast<double>(s);
        for (std::size_t i = 0; i < pg.inputs.size(); ++i) {
            const wave::Source base = pg.inputs[i];
            if (i == 0)
                sc.sources.push_back(base);
            else
                sc.sources.push_back(
                    [base, gain](double t) { return gain * base(t); });
        }
        batch.push_back(std::move(sc));
    }
    return batch;
}

} // namespace

TEST(EngineBatch, GroupedOpmRecurrenceEqualsLoopBitwise) {
    const circuit::PowerGrid pg = make_grid();
    const std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 4, 24, 1e-9);

    api::Engine be;
    const api::SystemHandle hb = be.add_system(pg.mna);
    const std::vector<api::SolveResult> got = be.run_batch(hb, batch);

    api::Engine le;
    const api::SystemHandle hl = le.add_system(pg.mna);
    ASSERT_EQ(got.size(), batch.size());
    for (std::size_t s = 0; s < batch.size(); ++s) {
        const api::SolveResult ref = le.run(hl, batch[s]);
        EXPECT_EQ(exact_diff(ref.states, got[s].states), 0.0) << "scenario " << s;
    }
    // One factorization for the whole group; the rest report the share.
    EXPECT_GE(got[0].diag.factorizations, 1);
    for (std::size_t s = 1; s < got.size(); ++s) {
        EXPECT_EQ(got[s].diag.factorizations, 0) << s;
        EXPECT_GE(got[s].diag.factor_cache_hits, 1) << s;
    }
}

TEST(EngineBatch, GroupedTransientAndGrunwaldEqualLoopBitwise) {
    const circuit::PowerGrid pg = make_grid();
    transient::TransientOptions trap;
    trap.method = transient::Method::gear2;
    transient::GrunwaldOptions gl;
    gl.alpha = 0.7;
    gl.history = opm::HistoryBackend::blocked;

    for (const api::MethodConfig& config :
         {api::MethodConfig{trap}, api::MethodConfig{gl}}) {
        const std::vector<api::Scenario> batch =
            source_sweep(pg, config, 3, 20, 1e-9);
        api::Engine be;
        const api::SystemHandle hb = be.add_system(pg.mna);
        const std::vector<api::SolveResult> got = be.run_batch(hb, batch);
        api::Engine le;
        const api::SystemHandle hl = le.add_system(pg.mna);
        for (std::size_t s = 0; s < batch.size(); ++s) {
            const api::SolveResult ref = le.run(hl, batch[s]);
            EXPECT_EQ(exact_diff(ref.states, got[s].states), 0.0)
                << api::method_name(api::method_of(config)) << " scenario " << s;
        }
    }
}

TEST(EngineBatch, GroupedFractionalHistoryBackendsCloseToLoop) {
    // Stacking scenarios changes how the fft backend pairs channels into
    // packed complex transforms, reassociating the floating-point history
    // sums; the alpha = 0.5 cascade then amplifies those last-bit
    // differences over the 256-step recurrence (measured ~4e-10 relative,
    // identical accuracy against the true solution).  naive/blocked
    // process rows independently and must stay bitwise.
    const auto tline = circuit::make_fractional_tline();
    for (const opm::HistoryBackend backend :
         {opm::HistoryBackend::blocked, opm::HistoryBackend::fft}) {
        opm::OpmOptions opt;
        opt.alpha = 0.5;
        opt.path = opm::OpmPath::toeplitz;
        opt.history = backend;

        std::vector<api::Scenario> batch;
        for (int s = 0; s < 3; ++s) {
            api::Scenario sc;
            sc.t_end = 2.7e-9;
            sc.steps = 256;
            sc.config = opt;
            const double gain = 1.0 + 0.3 * static_cast<double>(s);
            sc.sources = {wave::step(gain), wave::step(0.0)};
            batch.push_back(std::move(sc));
        }

        api::Engine be;
        const api::SystemHandle hb = be.add_system(tline);
        const std::vector<api::SolveResult> got = be.run_batch(hb, batch);
        api::Engine le;
        const api::SystemHandle hl = le.add_system(tline);
        for (std::size_t s = 0; s < batch.size(); ++s) {
            const api::SolveResult ref = le.run(hl, batch[s]);
            const double diff = exact_diff(ref.states, got[s].states);
            if (backend == opm::HistoryBackend::fft) {
                const double scale = 1.0 + ref.states.max_abs();
                EXPECT_LE(diff / scale, 1e-8) << "scenario " << s;
            } else {
                EXPECT_EQ(diff, 0.0) << "scenario " << s;
            }
        }
    }
}

TEST(EngineBatch, ThreadedBatchBitIdenticalToSerial) {
    // Mixed-method batch forming several independent groups; the worker
    // pool must not change a single bit of any result.
    const circuit::PowerGrid pg = make_grid();
    transient::TransientOptions trap;
    transient::GrunwaldOptions gl;
    gl.alpha = 0.6;

    std::vector<api::Scenario> batch;
    for (const auto& sub : {source_sweep(pg, opm::OpmOptions{}, 3, 16, 1e-9),
                            source_sweep(pg, trap, 2, 16, 1e-9),
                            source_sweep(pg, gl, 3, 16, 1e-9)})
        batch.insert(batch.end(), sub.begin(), sub.end());

    api::Engine serial_engine;
    const api::SystemHandle hs = serial_engine.add_system(pg.mna);
    const std::vector<api::SolveResult> serial =
        serial_engine.run_batch(hs, batch, {.workers = 1});

    api::Engine threaded_engine;
    const api::SystemHandle ht = threaded_engine.add_system(pg.mna);
    const std::vector<api::SolveResult> threaded =
        threaded_engine.run_batch(ht, batch, {.workers = 4});

    ASSERT_EQ(serial.size(), threaded.size());
    for (std::size_t s = 0; s < serial.size(); ++s) {
        EXPECT_EQ(exact_diff(serial[s].states, threaded[s].states), 0.0)
            << "scenario " << s;
        ASSERT_EQ(serial[s].outputs.size(), threaded[s].outputs.size());
        for (std::size_t o = 0; o < serial[s].outputs.size(); ++o)
            EXPECT_EQ(serial[s].outputs[o].values(), threaded[s].outputs[o].values())
                << "scenario " << s << " output " << o;
    }
}

TEST(EngineBatch, ThreadedWarmRerunStaysBitIdentical) {
    // Second threaded batch on the same handle: everything comes from the
    // (now concurrent) caches and must still match the cold run exactly.
    const circuit::PowerGrid pg = make_grid();
    const std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 4, 16, 1e-9);
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(pg.mna);
    const std::vector<api::SolveResult> cold =
        engine.run_batch(h, batch, {.workers = 4});
    const std::vector<api::SolveResult> warm =
        engine.run_batch(h, batch, {.workers = 4});
    for (std::size_t s = 0; s < batch.size(); ++s)
        EXPECT_EQ(exact_diff(cold[s].states, warm[s].states), 0.0) << s;
    EXPECT_EQ(engine.cache_stats(h).symbolic_misses, 1);
}

TEST(EngineBatch, SolveDiagnosticsCounters) {
    const circuit::PowerGrid pg = make_grid();
    const la::index_t steps = 32;
    const std::vector<api::Scenario> batch =
        source_sweep(pg, opm::OpmOptions{}, 4, steps, 1e-9);
    api::Engine engine;
    const api::SystemHandle h = engine.add_system(pg.mna);
    const std::vector<api::SolveResult> got = engine.run_batch(h, batch);
    long total = 0;
    for (const api::SolveResult& r : got) {
        EXPECT_EQ(r.diag.rhs_solved, steps);
        total += r.diag.rhs_solved;
    }
    EXPECT_EQ(total, steps * static_cast<long>(batch.size()));
    // The shared sweep's solve time is accounted to the first scenario
    // and is a sub-interval of its sweep time.
    EXPECT_GT(got[0].diag.solve_seconds, 0.0);
    EXPECT_LE(got[0].diag.solve_seconds, got[0].diag.sweep_seconds * 1.5 + 1e-6);

    // Single-run paths report the counters too.
    const api::SolveResult single = engine.run(h, batch[0]);
    EXPECT_EQ(single.diag.rhs_solved, steps);
}
