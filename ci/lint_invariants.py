#!/usr/bin/env python3
"""Repo-invariant linter for opmsim.

Enforces cross-file contracts that neither the compiler nor clang-tidy can
see — the places where PR review has historically had to catch "you added
the enum but forgot the wire case" by hand.  Run from anywhere:

    python3 ci/lint_invariants.py [--repo PATH]

Exits 0 when every invariant holds, 1 with one line per violation
otherwise.  The rules (see docs/static_analysis.md for the rationale):

  error-code-wire       every ErrorCode enumerator has a name-switch case,
                        a docs/robustness.md row, and the wire decode bound
                        names the LAST enumerator.
  diagnostics-append    Diagnostics fields only append: the committed
                        manifest (ci/diagnostics_fields.txt) must be an
                        exact ordered prefix of the struct, and every field
                        must appear in both wire codec functions.
  runcontrol-sweeps     every solver sweep file consults RunControl (or
                        delegates to a PencilSolve that does).
  options-wire-parity   every field compared by an options_equal overload
                        travels in the matching wire encode AND decode
                        block (explicit allowlist for fields that
                        deliberately stay process-local).
  naked-throw           src/ does not throw raw std::runtime_error /
                        std::logic_error outside the status/check taxonomy.
  fault-sites-armed     every fault::Site enumerator is armed by at least
                        one test, so the injection points cannot rot.

Parsing is regex-over-comment-stripped-source on purpose: the linter must
run on a bare python3 with no compile step, and the shapes it matches are
the repo's own stable idioms.  If a rule misfires after a legitimate
refactor, fix the rule (or extend an allowlist with a justification) in
the same PR — tests/test_lint_invariants.py proves each rule still fires
on a synthetic violation.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# --------------------------------------------------------------------------
# Allowlists.  Every entry carries its justification; additions require one.
# --------------------------------------------------------------------------

# options_equal compares these fields, but they deliberately do NOT travel
# on the wire.
OPTIONS_WIRE_ALLOWLIST = {
    # The daemon supplies per-system pattern analyses from its own
    # SolveCaches bundle; shipping a client-side symbolic pointer would be
    # meaningless cross-process.  Equality still compares it so in-process
    # Engine reuse distinguishes "caller pinned a symbolic" configs.
    ("transient::TransientOptions", "symbolic"),
}

# Files allowed to throw raw std:: exceptions: the taxonomy roots.
NAKED_THROW_ALLOWLIST = {
    # OPMSIM_CHECK/OPMSIM_REQUIRE funnel here and attach file:line context.
    "util/check.hpp",
    # solver_error and the classify() boundary own the ErrorCode taxonomy.
    "util/status.hpp",
}

# Solver sweep translation units: every one must consult the cooperative
# RunControl (deadline/cancel) machinery, directly or via PencilSolve.
SWEEP_FILES = [
    "opm/solver.cpp",
    "opm/multiterm.cpp",
    "opm/adaptive.cpp",
    "transient/steppers.cpp",
    "transient/grunwald.cpp",
]

RUNCONTROL_RE = re.compile(r"\b(RunControl|check_run_control|PencilSolve)\b")

# --------------------------------------------------------------------------
# Small parsing helpers
# --------------------------------------------------------------------------


def strip_comments(text: str) -> str:
    """Remove // and /* */ comments (keeps line structure for // only)."""
    text = re.sub(r"/\*.*?\*/", " ", text, flags=re.DOTALL)
    return re.sub(r"//[^\n]*", "", text)


def read(repo: pathlib.Path, rel: str) -> str:
    return (repo / rel).read_text(encoding="utf-8")


def enum_body(text: str, enum_name: str) -> str:
    m = re.search(r"enum\s+class\s+" + enum_name + r"\b[^{]*\{(.*?)\}",
                  strip_comments(text), flags=re.DOTALL)
    if m is None:
        raise ValueError(f"enum class {enum_name} not found")
    return m.group(1)


def enum_values(text: str, enum_name: str) -> list[str]:
    names = []
    for part in enum_body(text, enum_name).split(","):
        m = re.match(r"\s*([A-Za-z_]\w*)", part)
        if m:
            names.append(m.group(1))
    return names


def function_body(text: str, signature_re: str) -> str:
    """Return the brace-matched body of the first function whose signature
    matches signature_re (which must match up to, not including, '{')."""
    clean = strip_comments(text)
    m = re.search(signature_re, clean)
    if m is None:
        raise ValueError(f"signature not found: {signature_re}")
    i = clean.index("{", m.end())
    depth = 0
    for j in range(i, len(clean)):
        if clean[j] == "{":
            depth += 1
        elif clean[j] == "}":
            depth -= 1
            if depth == 0:
                return clean[i:j + 1]
    raise ValueError(f"unbalanced braces after: {signature_re}")


def struct_fields(text: str, struct_name: str) -> list[str]:
    """Field names of a plain aggregate, in declaration order."""
    clean = strip_comments(text)
    m = re.search(r"struct\s+" + struct_name + r"\b[^{]*\{", clean)
    if m is None:
        raise ValueError(f"struct {struct_name} not found")
    i = clean.index("{", m.start())
    depth, j = 0, i
    for j in range(i, len(clean)):
        if clean[j] == "{":
            depth += 1
        elif clean[j] == "}":
            depth -= 1
            if depth == 0:
                break
    body = clean[i + 1:j]
    fields = []
    # One declaration per ';' — "Type name;" or "Type name = init;".
    for decl in body.split(";"):
        m2 = re.match(r"\s*[\w:<>,\s*&]+?[\s&*]([A-Za-z_]\w*)\s*(=.*)?$",
                      decl, flags=re.DOTALL)
        if m2:
            fields.append(m2.group(1))
    return fields


# --------------------------------------------------------------------------
# Rules.  Each returns a list of "rule-name: message" strings.
# --------------------------------------------------------------------------


def rule_error_code_wire(repo: pathlib.Path) -> list[str]:
    out = []
    status = read(repo, "src/util/status.hpp")
    codes = enum_values(status, "ErrorCode")
    if not codes:
        return ["error-code-wire: failed to parse ErrorCode enumerators"]

    name_switch = function_body(
        status, r"error_code_name\s*\(\s*ErrorCode\s+\w+\s*\)")
    docs = read(repo, "docs/robustness.md")
    for code in codes:
        if f"ErrorCode::{code}" not in name_switch:
            out.append(f"error-code-wire: ErrorCode::{code} has no "
                       f"error_code_name() case in src/util/status.hpp")
        if code != "ok" and f"`{code}`" not in docs:
            out.append(f"error-code-wire: ErrorCode::{code} has no "
                       f"`{code}` row in docs/robustness.md")

    wire = strip_comments(read(repo, "src/svc/wire.cpp"))
    m = re.search(r'checked_enum\s*\(\s*r\s*,\s*ErrorCode::(\w+)\s*,\s*"error code"',
                  wire)
    if m is None:
        out.append("error-code-wire: decode_status() range check "
                   "(checked_enum ErrorCode bound) not found in src/svc/wire.cpp")
    elif m.group(1) != codes[-1]:
        out.append(f"error-code-wire: decode_status() bounds the wire range at "
                   f"ErrorCode::{m.group(1)} but the last enumerator is "
                   f"ErrorCode::{codes[-1]} — new codes would be rejected as "
                   f"malformed frames")
    return out


def rule_diagnostics_append(repo: pathlib.Path) -> list[str]:
    out = []
    fields = struct_fields(read(repo, "src/opm/diagnostics.hpp"), "Diagnostics")
    if not fields:
        return ["diagnostics-append: failed to parse Diagnostics fields"]

    manifest_path = repo / "ci/diagnostics_fields.txt"
    manifest = [ln.strip() for ln in manifest_path.read_text().splitlines()
                if ln.strip() and not ln.lstrip().startswith("#")]

    # The manifest must be an exact ordered prefix: removals, renames,
    # reorders and mid-struct insertions all break old wire decoders.
    for i, name in enumerate(manifest):
        if i >= len(fields) or fields[i] != name:
            found = fields[i] if i < len(fields) else "<missing>"
            out.append(f"diagnostics-append: Diagnostics field #{i} is "
                       f"'{found}' but the committed manifest says '{name}' — "
                       f"fields may only be APPENDED (wire compat); never "
                       f"remove, rename or reorder")
            break
    else:
        for name in fields[len(manifest):]:
            out.append(f"diagnostics-append: new Diagnostics field '{name}' is "
                       f"not in ci/diagnostics_fields.txt — append it to the "
                       f"manifest in the same PR (and add its codec clauses)")

    wire = read(repo, "src/svc/wire.cpp")
    enc = function_body(
        wire, r"void\s+encode\s*\(\s*util::ByteWriter&\s*\w+\s*,\s*const\s+Diagnostics&")
    dec = function_body(wire, r"Diagnostics\s+decode_diagnostics\s*\(")
    for name in fields:
        if not re.search(r"\bd\." + name + r"\b", enc):
            out.append(f"diagnostics-append: Diagnostics::{name} is never "
                       f"written by encode() in src/svc/wire.cpp")
        if not re.search(r"\bd\." + name + r"\b", dec):
            out.append(f"diagnostics-append: Diagnostics::{name} is never "
                       f"read by decode_diagnostics() in src/svc/wire.cpp")
    return out


def rule_runcontrol_sweeps(repo: pathlib.Path) -> list[str]:
    out = []
    for rel in SWEEP_FILES:
        clean = strip_comments(read(repo, "src/" + rel))
        if not RUNCONTROL_RE.search(clean):
            out.append(f"runcontrol-sweeps: src/{rel} never consults RunControl "
                       f"(no RunControl/check_run_control/PencilSolve use) — "
                       f"its sweep cannot be deadlined or cancelled")
    return out


def parse_options_equal(registry_text: str) -> dict[str, list[str]]:
    """Map qualified option type -> fields its options_equal compares."""
    clean = strip_comments(registry_text)
    overloads = {}
    for m in re.finditer(
            r"bool\s+options_equal\s*\(\s*const\s+([\w:]+)&\s*a\s*,", clean):
        body = function_body(clean[m.start():],
                             r"bool\s+options_equal\s*\(")
        overloads[m.group(1)] = re.findall(r"\ba\.(\w+)\s*==", body)
    return overloads


def wire_option_blocks(wire_text: str) -> tuple[dict[str, str], dict[str, str]]:
    """(encode, decode) maps: qualified option type -> case-block text."""
    clean = strip_comments(wire_text)
    enc_fn = function_body(
        clean, r"void\s+encode\s*\(\s*util::ByteWriter&\s*\w+\s*,"
               r"\s*const\s+api::MethodConfig&")
    dec_fn = function_body(clean, r"api::MethodConfig\s+decode_method_config\s*\(")

    def split_cases(fn_body: str) -> list[str]:
        starts = [m.start() for m in re.finditer(r"case\s+api::Method::", fn_body)]
        return [fn_body[s:e] for s, e in
                zip(starts, starts[1:] + [len(fn_body)])]

    enc, dec = {}, {}
    for block in split_cases(enc_fn):
        m = re.search(r"std::get<([\w:]+)>", block)
        if m:
            enc[m.group(1)] = block
    for block in split_cases(dec_fn):
        m = re.search(r"\b([\w:]+)\s+o\s*;", block)
        if m:
            dec[m.group(1)] = block
    return enc, dec


def rule_options_wire_parity(repo: pathlib.Path) -> list[str]:
    out = []
    overloads = parse_options_equal(read(repo, "src/api/registry.cpp"))
    if not overloads:
        return ["options-wire-parity: no options_equal overloads found in "
                "src/api/registry.cpp"]
    enc, dec = wire_option_blocks(read(repo, "src/svc/wire.cpp"))
    for qtype, fields in overloads.items():
        # registry.cpp writes `opm::OpmOptions`; wire.cpp uses the same
        # qualification, so keys line up directly.
        if qtype not in enc:
            out.append(f"options-wire-parity: no wire encode case found for "
                       f"{qtype} in src/svc/wire.cpp")
            continue
        if qtype not in dec:
            out.append(f"options-wire-parity: no wire decode case found for "
                       f"{qtype} in src/svc/wire.cpp")
            continue
        for f in fields:
            if (qtype, f) in OPTIONS_WIRE_ALLOWLIST:
                continue
            pat = re.compile(r"\bo\." + f + r"\b")
            if not pat.search(enc[qtype]):
                out.append(f"options-wire-parity: {qtype}::{f} is compared by "
                           f"options_equal but never encoded on the wire — "
                           f"equal-looking remote configs could differ")
            if not pat.search(dec[qtype]):
                out.append(f"options-wire-parity: {qtype}::{f} is compared by "
                           f"options_equal but never decoded from the wire")
    return out


NAKED_THROW_RE = re.compile(r"\bthrow\s+std::(runtime_error|logic_error)\b")


def rule_naked_throw(repo: pathlib.Path) -> list[str]:
    out = []
    for path in sorted((repo / "src").rglob("*")):
        if path.suffix not in (".cpp", ".hpp"):
            continue
        rel = path.relative_to(repo / "src").as_posix()
        if rel in NAKED_THROW_ALLOWLIST:
            continue
        clean = strip_comments(path.read_text(encoding="utf-8"))
        for m in NAKED_THROW_RE.finditer(clean):
            line = clean.count("\n", 0, m.start()) + 1
            out.append(f"naked-throw: src/{rel}:{line} throws raw "
                       f"std::{m.group(1)} — use the util/status.hpp taxonomy "
                       f"(solver_error) or util/check.hpp so the Engine "
                       f"boundary can classify it")
    return out


def rule_fault_sites_armed(repo: pathlib.Path) -> list[str]:
    out = []
    sites = [s for s in enum_values(read(repo, "src/util/fault_inject.hpp"),
                                    "Site")
             if s != "site_count_"]
    if not sites:
        return ["fault-sites-armed: failed to parse fault::Site enumerators"]
    tests = "\n".join(p.read_text(encoding="utf-8")
                      for p in sorted((repo / "tests").glob("*.cpp")))
    for site in sites:
        if f"Site::{site}" not in tests:
            out.append(f"fault-sites-armed: fault::Site::{site} is never armed "
                       f"by any test in tests/*.cpp — the injection point can "
                       f"silently rot")
    return out


RULES = [
    rule_error_code_wire,
    rule_diagnostics_append,
    rule_runcontrol_sweeps,
    rule_options_wire_parity,
    rule_naked_throw,
    rule_fault_sites_armed,
]


def run(repo: pathlib.Path) -> list[str]:
    findings = []
    for rule in RULES:
        try:
            findings.extend(rule(repo))
        except (OSError, ValueError) as e:
            name = rule.__name__.removeprefix("rule_").replace("_", "-")
            findings.append(f"{name}: linter could not parse its inputs: {e}")
    return findings


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--repo", default=".",
                    help="repository root (default: current directory)")
    args = ap.parse_args()
    repo = pathlib.Path(args.repo).resolve()
    if not (repo / "src/util/status.hpp").is_file():
        print(f"lint_invariants: {repo} does not look like the opmsim root",
              file=sys.stderr)
        return 2
    findings = run(repo)
    for f in findings:
        print(f)
    if findings:
        print(f"lint_invariants: {len(findings)} violation(s)", file=sys.stderr)
        return 1
    print(f"lint_invariants: all {len(RULES)} invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
