#!/usr/bin/env python3
"""Bench-smoke regression gate.

Compares a fresh one-rep benchmark smoke run against the checked-in
BENCH_kernels.json and fails when a gated benchmark regressed by more than
--factor (default 3x).

The gate is meant to catch complexity regressions (an accidental O(n^2)
reintroduction in the LU or history paths), not scheduler noise, and it
must not fire just because the CI runner is slower than the machine that
recorded the baseline.  To cancel the machine-speed difference, every
compared benchmark's ratio (new_time / baseline_time) is normalized by the
median ratio across *all* compared benchmarks: a uniformly slower runner
moves every ratio equally and the normalized ratios stay ~1, while a
single benchmark blowing up stands out.

Usage:
  check_bench_regression.py BASELINE.json SMOKE.json \
      [--gate REGEX] [--factor 3.0]

Only benchmarks whose name matches --gate (default: the sparse-LU and
multi-term sweeps, the Engine batch throughput, and the streaming SoE
history sweep) are *enforced*; every
benchmark present in both files participates in the median normalization.
"""

import argparse
import json
import re
import statistics
import sys


def check_build_type(path, doc, allow_debug):
    """Refuse Debug-built benchmark JSON (PR 4's checked-in baseline was
    accidentally recorded without release provenance, poisoning every
    comparison against it).  The authoritative signal is the custom
    `opmsim_build_type` context bench_kernels records (the build type the
    measured library was compiled with); `library_build_type` only
    describes the google-benchmark library itself — a distro libbenchmark
    can be a debug build while opmsim is Release — so it is consulted only
    when the custom field is absent (pre-PR-5 emitters)."""
    ctx = doc.get("context", {})
    build = ctx.get("opmsim_build_type", "")
    source = "opmsim_build_type"
    if not build:
        build = ctx.get("library_build_type", "")
        source = "library_build_type"
    if build.lower() == "debug" or not build:
        shown = f"context.{source} = {build!r}" if build else \
            "no build-type provenance recorded"
        msg = (f"{path}: not a Release-built baseline ({shown}) — debug or "
               "unknown-build timings are meaningless as a perf baseline; "
               "regenerate with -DCMAKE_BUILD_TYPE=Release -DOPMSIM_BENCH=ON")
        if allow_debug:
            print(f"WARNING: {msg}", file=sys.stderr)
        else:
            raise SystemExit(f"error: {msg} (or pass --allow-debug)")


def load_times(path, allow_debug=False):
    """name -> real_time in ns (aggregates and error runs skipped)."""
    with open(path) as f:
        doc = json.load(f)
    check_build_type(path, doc, allow_debug)
    times = {}
    for i, b in enumerate(doc.get("benchmarks", [])):
        if b.get("run_type") == "aggregate" or "error_occurred" in b:
            continue
        # A truncated or hand-edited JSON must fail with a message naming
        # the file and entry, not as a bare KeyError traceback the CI log
        # buries.
        name = b.get("name")
        if not name:
            raise SystemExit(
                f"error: {path}: benchmarks[{i}] has no 'name' field — "
                f"malformed benchmark JSON (entry: {b!r})")
        if "real_time" not in b:
            raise SystemExit(
                f"error: {path}: benchmark '{name}' has no 'real_time' "
                "field — malformed or truncated benchmark JSON")
        try:
            t = float(b["real_time"])
        except (TypeError, ValueError):
            # The message already names the file, entry and value; the
            # float() traceback adds nothing for a CI log reader.
            raise SystemExit(
                f"error: {path}: benchmark '{name}' has non-numeric "
                f"real_time {b['real_time']!r}") from None
        # google-benchmark reports per-iteration time in `time_unit`.
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(unit)
        if scale is None:
            raise SystemExit(
                f"error: {path}: benchmark '{name}' has unknown time_unit "
                f"{unit!r} (expected ns/us/ms/s)")
        times[name] = t * scale
    return times


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("smoke")
    ap.add_argument("--gate",
                    default=r"BM_SparseLuGrid|BM_SparseLuRefactor"
                            r"|BM_SparseLuSolveMulti|BM_MultiTermSweep"
                            r"|BM_EngineBatch|BM_HistorySweepSoE",
                    help="regex of benchmark names the gate enforces")
    ap.add_argument("--factor", type=float, default=3.0,
                    help="maximum allowed normalized slowdown")
    ap.add_argument("--allow-debug", action="store_true",
                    help="downgrade the debug-build refusal to a warning")
    args = ap.parse_args()

    base = load_times(args.baseline, args.allow_debug)
    new = load_times(args.smoke, args.allow_debug)
    common = sorted(set(base) & set(new))
    if not common:
        print(f"error: no common benchmarks between {args.baseline} and {args.smoke}")
        return 2

    ratios = {n: new[n] / base[n] for n in common if base[n] > 0}
    gate = re.compile(args.gate)
    # Calibrate the machine-speed factor on the *ungated* benchmarks (the
    # FFT smoke entries) so a genuine uniform regression of the gated set
    # cannot normalize itself away; fall back to all ratios if the smoke
    # filter provided no calibration points.
    calib = [r for n, r in ratios.items() if not gate.search(n)]
    if len(calib) >= 2:
        speed = statistics.median(calib)
        print(f"machine-speed factor (median of {len(calib)} ungated ratios): "
              f"{speed:.2f}x")
    else:
        speed = statistics.median(list(ratios.values()))
        print(f"machine-speed factor (median of all {len(ratios)} ratios): "
              f"{speed:.2f}x")
    print(f"{'benchmark':50s} {'base':>10s} {'smoke':>10s} {'norm':>6s}")
    failed = []
    for n in common:
        norm = ratios[n] / speed
        gated = bool(gate.search(n))
        verdict = ""
        if gated and norm > args.factor:
            verdict = f"  REGRESSED (> {args.factor:.1f}x)"
            failed.append(n)
        elif gated:
            verdict = "  ok"
        print(f"{n:50s} {base[n]/1e6:9.3f}ms {new[n]/1e6:9.3f}ms {norm:5.2f}x{verdict}")

    if failed:
        print(f"\nFAIL: {len(failed)} gated benchmark(s) regressed more than "
              f"{args.factor:.1f}x after speed normalization: {', '.join(failed)}")
        return 1
    print("\nOK: no gated benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
