#pragma once
/// \file check.hpp
/// \brief Precondition / invariant checking for the opmsim library.
///
/// Public API entry points validate their arguments with OPMSIM_REQUIRE
/// (throws std::invalid_argument).  Internal consistency violations that
/// indicate a library bug use OPMSIM_ENSURE (throws std::logic_error).
/// Numerical failures discovered at run time (singular pivot, divergence)
/// throw opmsim::numerical_error.

#include <stdexcept>
#include <string>

namespace opmsim {

/// Thrown when an algorithm fails numerically (e.g. an exactly singular
/// pivot in LU, a non-converging eigenvalue iteration).  Distinct from
/// std::invalid_argument so callers can retry with different parameters.
class numerical_error : public std::runtime_error {
public:
    explicit numerical_error(const std::string& what_arg)
        : std::runtime_error(what_arg) {}
};

namespace detail {
[[noreturn]] inline void throw_invalid(const char* file, int line, const std::string& msg) {
    throw std::invalid_argument(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}
[[noreturn]] inline void throw_logic(const char* file, int line, const std::string& msg) {
    throw std::logic_error(std::string(file) + ":" + std::to_string(line) + ": " + msg);
}
} // namespace detail

} // namespace opmsim

/// Validate a user-facing precondition; throws std::invalid_argument.
#define OPMSIM_REQUIRE(cond, msg)                                              \
    do {                                                                       \
        if (!(cond)) ::opmsim::detail::throw_invalid(__FILE__, __LINE__, msg); \
    } while (0)

/// Validate an internal invariant; throws std::logic_error (library bug).
#define OPMSIM_ENSURE(cond, msg)                                             \
    do {                                                                     \
        if (!(cond)) ::opmsim::detail::throw_logic(__FILE__, __LINE__, msg); \
    } while (0)
