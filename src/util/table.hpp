#pragma once
/// \file table.hpp
/// \brief ASCII table printer used by the benchmark harness to emit rows in
///        the same layout as the paper's Tables I and II.

#include <string>
#include <vector>

namespace opmsim {

/// Column-aligned ASCII table.  Cells are strings; numeric helpers below
/// format doubles consistently across the bench binaries.
class TextTable {
public:
    /// Set the header row (defines the column count).
    void set_header(std::vector<std::string> header);

    /// Append a data row.  Must have the same arity as the header.
    void add_row(std::vector<std::string> row);

    /// Render the table with a rule under the header, e.g.
    ///   Method   CPU time   Relative Error
    ///   ------   --------   --------------
    ///   OPM      3.56 ms    -
    [[nodiscard]] std::string str() const;

    /// Render to stdout.
    void print() const;

private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/// Format a double with \p prec significant digits (general format).
[[nodiscard]] std::string fmt_g(double v, int prec = 4);

/// Format a duration in milliseconds, e.g. "3.56 ms".
[[nodiscard]] std::string fmt_ms(double ms);

/// Format a relative error as decibels, e.g. "-29.2 dB".
[[nodiscard]] std::string fmt_db(double db);

} // namespace opmsim
