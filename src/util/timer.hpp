#pragma once
/// \file timer.hpp
/// \brief Minimal wall-clock stopwatch used by the benchmark harness.

#include <chrono>

namespace opmsim {

/// Wall-clock stopwatch.  Starts running on construction.
class WallTimer {
public:
    WallTimer() : start_(clock::now()) {}

    /// Restart the stopwatch.
    void reset() { start_ = clock::now(); }

    /// Elapsed time since construction / last reset, in seconds.
    [[nodiscard]] double elapsed_s() const {
        return std::chrono::duration<double>(clock::now() - start_).count();
    }

    /// Elapsed time since construction / last reset, in milliseconds.
    [[nodiscard]] double elapsed_ms() const { return elapsed_s() * 1e3; }

private:
    using clock = std::chrono::steady_clock;
    clock::time_point start_;
};

} // namespace opmsim
