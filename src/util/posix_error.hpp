#pragma once
/// \file posix_error.hpp
/// \brief Thread-safe errno formatting for the svc transport layer.
///
/// std::strerror returns a pointer into static storage and is not
/// reentrant (clang-tidy concurrency-mt-unsafe); the svc daemon formats
/// errno from its accept loop, per-connection readers and the dispatcher
/// concurrently, so every errno message goes through errno_message()
/// instead, which is strerror_r over a caller-local buffer.

#include <cstring>
#include <string>

namespace opmsim::util {

namespace detail {
/// Overload dispatch over the two strerror_r flavours: the XSI version
/// returns int and fills the buffer, the GNU version returns the message
/// pointer (which may or may not be the buffer).  Whichever the libc
/// provides, exactly one of these is selected at overload resolution.
inline const char* strerror_result(int rc, const char* buf) {
    return rc == 0 ? buf : "unknown error";
}
inline const char* strerror_result(const char* msg, const char* /*buf*/) {
    return msg;
}
} // namespace detail

/// Message text for `err` (an errno value), safe to call from any thread.
inline std::string errno_message(int err) {
    char buf[256];
    buf[0] = '\0';
    return detail::strerror_result(strerror_r(err, buf, sizeof buf), buf);
}

} // namespace opmsim::util
