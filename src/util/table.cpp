#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace opmsim {

void TextTable::set_header(std::vector<std::string> header) {
    OPMSIM_REQUIRE(!header.empty(), "table header must not be empty");
    header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
    OPMSIM_REQUIRE(row.size() == header_.size(),
                   "row arity does not match header arity");
    rows_.push_back(std::move(row));
}

std::string TextTable::str() const {
    const std::size_t ncol = header_.size();
    std::vector<std::size_t> width(ncol);
    for (std::size_t c = 0; c < ncol; ++c) {
        width[c] = header_[c].size();
        for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
    }
    std::ostringstream os;
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < ncol; ++c) {
            os << row[c];
            if (c + 1 < ncol) os << std::string(width[c] - row[c].size() + 3, ' ');
        }
        os << '\n';
    };
    emit(header_);
    std::vector<std::string> rule(ncol);
    for (std::size_t c = 0; c < ncol; ++c) rule[c] = std::string(width[c], '-');
    emit(rule);
    for (const auto& row : rows_) emit(row);
    return os.str();
}

void TextTable::print() const {
    // Best-effort console output; a failed write to stdout is not an
    // error the table layer can act on (cert-err33-c).
    static_cast<void>(std::fputs(str().c_str(), stdout));
}

std::string fmt_g(double v, int prec) {
    char buf[64];
    static_cast<void>(std::snprintf(buf, sizeof buf, "%.*g", prec, v));
    return buf;
}

std::string fmt_ms(double ms) {
    char buf[64];
    if (ms >= 1000.0)
        static_cast<void>(std::snprintf(buf, sizeof buf, "%.3g s", ms / 1000.0));
    else
        static_cast<void>(std::snprintf(buf, sizeof buf, "%.3g ms", ms));
    return buf;
}

std::string fmt_db(double db) {
    char buf[64];
    static_cast<void>(std::snprintf(buf, sizeof buf, "%.1f dB", db));
    return buf;
}

} // namespace opmsim
