#pragma once
/// \file hash.hpp
/// \brief Byte-range hashing shared by the content-addressed caches.
///
/// The factor cache (la/factor_cache.cpp) and the convolution-plan cache
/// (fftx/convolve.cpp) both fingerprint their keys by hashing raw bytes
/// and verifying exactly behind the hash; this is the one FNV-1a they
/// share so the routines cannot drift apart.

#include <cstddef>
#include <cstdint>

namespace opmsim {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;

/// FNV-1a over an arbitrary byte range, chainable via `seed`.
inline std::uint64_t fnv1a(const void* data, std::size_t bytes,
                           std::uint64_t seed = kFnvOffsetBasis) {
    const auto* p = static_cast<const unsigned char*>(data);
    std::uint64_t h = seed;
    for (std::size_t i = 0; i < bytes; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

} // namespace opmsim
