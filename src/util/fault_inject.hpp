#pragma once
/// \file fault_inject.hpp
/// \brief Deterministic fault-injection harness for robustness tests.
///
/// Compiled into the library unconditionally but a no-op unless a site is
/// armed: the only cost on the hot path is one relaxed atomic load behind
/// `enabled()`.  Tests arm a site with a call-counted window — skip the
/// first `skip` hits, fire the next `fire` hits — so a failure can be
/// placed at an exact call (e.g. "reject the pivot on the third column of
/// the second factorization") and the run replays identically every time.
///
/// Idiomatic hot-path use:
///
///     if (fault::enabled() && fault::fire(fault::Site::scalar_pivot))
///         /* treat this pivot as rejected */;
///
///     if (fault::enabled())
///         v = fault::perturb(fault::Site::factor_values, v);
///
/// All bookkeeping (arm state, call counters) lives behind a mutex so
/// concurrent solver threads may hit the same site under TSan without
/// races; `enabled()` itself is lock-free.

#include <atomic>
#include <limits>

namespace opmsim::fault {

/// Injection points wired into the solver stack.
enum class Site : int {
    scalar_pivot = 0, ///< reject a pivot in the scalar Gilbert-Peierls kernel
    supernodal_pivot, ///< reject a diagonal pivot in the supernodal kernel
    refactor_pivot,   ///< make a frozen pivot vanish during refactor()
    factor_values,    ///< perturb a factor value after factorization
    history_nan,      ///< corrupt a state row before it enters history
    deadline,         ///< force the cooperative deadline check to expire
    sock_read_torn,   ///< tear a svc frame mid-payload on the read path
    sock_write_fail,  ///< fail a svc whole-frame socket write
    conn_drop,        ///< drop a svc connection after a frame is received
    dispatch_stall,   ///< stall the svc dispatcher for one round
    site_count_,      ///< sentinel, not a real site
};

/// When and how a site fires: calls `[skip, skip + fire)` hit; for value
/// sites, `value` is the multiplier applied (NaN means "replace by NaN").
struct FaultSpec {
    long skip = 0;
    long fire = 1;
    double value = std::numeric_limits<double>::quiet_NaN();
};

namespace detail {
extern std::atomic<int> armed_count;
} // namespace detail

/// True when at least one site is armed; relaxed load, safe on hot paths.
inline bool enabled() {
    return detail::armed_count.load(std::memory_order_relaxed) > 0;
}

/// Arm `site` with the given firing window (replaces any previous spec and
/// resets its counters).
void arm(Site site, FaultSpec spec = {});

/// Disarm one site / every site.  disarm_all() is the test-teardown hammer.
void disarm(Site site);
void disarm_all();

/// Count a hit at `site`; returns true when the call falls inside the
/// armed firing window.  Unarmed sites always return false (and do not
/// count calls).
bool fire(Site site);

/// Number of times `site` actually fired since it was last armed.
long fire_count(Site site);

/// Value-site helper: when `site` fires, returns NaN (spec.value NaN) or
/// `v * spec.value`; otherwise returns `v` unchanged.
double perturb(Site site, double v);

/// RAII arming guard: arms `site` on construction, disarms it on scope
/// exit.  This is the only exception-safe way to arm a site in a test
/// body — a failed ASSERT throws past any manual disarm_all(), leaving
/// the site armed for every later test in the process.  Non-copyable;
/// nest one guard per site.
class ScopedFault {
public:
    explicit ScopedFault(Site site, FaultSpec spec = {}) : site_(site) {
        arm(site_, spec);
    }
    ~ScopedFault() { disarm(site_); }
    ScopedFault(const ScopedFault&) = delete;
    ScopedFault& operator=(const ScopedFault&) = delete;

    /// Fires of the guarded site since arming.
    [[nodiscard]] long fires() const { return fire_count(site_); }

private:
    Site site_;
};

} // namespace opmsim::fault
