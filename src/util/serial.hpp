#pragma once
/// \file serial.hpp
/// \brief Bounds-checked little-endian byte serialization primitives.
///
/// The one encode/decode substrate shared by the scenario service's wire
/// protocol (svc/wire.cpp) and the SolveCaches snapshot files
/// (opm/solve_cache.cpp, la/sparse_lu.cpp): fixed-width little-endian
/// integers, bit-preserved doubles (memcpy through uint64, so a decoded
/// value is bit-identical to the encoded one — the property every
/// "daemon == in-process" pin rests on), and length-prefixed strings /
/// vectors.
///
/// Decoding is defensive by construction: every read is bounds-checked
/// and every failure throws solver_error(ErrorCode::invalid_scenario) —
/// truncated, corrupt or adversarial frames surface as a classified,
/// catchable error, never UB.  Element counts are validated against the
/// bytes actually remaining BEFORE allocation, so a corrupt length field
/// cannot request an absurd allocation.
///
/// Forward compatibility idiom: encode a struct as a length-prefixed body
/// (`begin_block`/`end_block` on the writer, `sub_reader` on the reader)
/// and let old decoders skip trailing fields they do not know.

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "util/status.hpp"

namespace opmsim::util {

class ByteWriter {
public:
    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v) { put_uint(v, 2); }
    void u32(std::uint32_t v) { put_uint(v, 4); }
    void u64(std::uint64_t v) { put_uint(v, 8); }
    void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }

    /// Bit-preserving double (NaN payloads and signed zeros included).
    void f64(double v) {
        std::uint64_t bits;
        std::memcpy(&bits, &v, sizeof bits);
        u64(bits);
    }

    void bytes(const void* p, std::size_t n) {
        const auto* b = static_cast<const std::uint8_t*>(p);
        buf_.insert(buf_.end(), b, b + n);
    }

    void str(const std::string& s) {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    void vec_f64(const std::vector<double>& v) {
        u64(v.size());
        for (const double x : v) f64(x);
    }

    template <class Int>
    void vec_int(const std::vector<Int>& v) {
        u64(v.size());
        for (const Int x : v) i64(static_cast<std::int64_t>(x));
    }

    /// Open a length-prefixed block; returns a token for end_block.
    /// The length is patched in when the block closes.
    std::size_t begin_block() {
        u64(0);
        return buf_.size();
    }
    void end_block(std::size_t token) {
        const std::uint64_t len = buf_.size() - token;
        for (int i = 0; i < 8; ++i)
            buf_[token - 8 + static_cast<std::size_t>(i)] =
                static_cast<std::uint8_t>(len >> (8 * i));
    }

    [[nodiscard]] const std::vector<std::uint8_t>& data() const { return buf_; }
    [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }
    [[nodiscard]] std::size_t size() const { return buf_.size(); }

private:
    void put_uint(std::uint64_t v, int nbytes) {
        for (int i = 0; i < nbytes; ++i)
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }

    std::vector<std::uint8_t> buf_;
};

class ByteReader {
public:
    ByteReader(const std::uint8_t* data, std::size_t size)
        : p_(data), n_(size) {}
    explicit ByteReader(const std::vector<std::uint8_t>& buf)
        : p_(buf.data()), n_(buf.size()) {}

    [[nodiscard]] std::size_t remaining() const { return n_ - pos_; }
    [[nodiscard]] bool empty() const { return pos_ >= n_; }

    std::uint8_t u8() {
        need(1, "u8");
        return p_[pos_++];
    }
    std::uint16_t u16() { return static_cast<std::uint16_t>(get_uint(2, "u16")); }
    std::uint32_t u32() { return static_cast<std::uint32_t>(get_uint(4, "u32")); }
    std::uint64_t u64() { return get_uint(8, "u64"); }
    std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

    double f64() {
        const std::uint64_t bits = u64();
        double v;
        std::memcpy(&v, &bits, sizeof v);
        return v;
    }

    std::string str() {
        const std::size_t len = count(1, "string");
        std::string s(reinterpret_cast<const char*>(p_ + pos_), len);
        pos_ += len;
        return s;
    }

    std::vector<double> vec_f64() {
        const std::size_t len = count(8, "f64 vector");
        std::vector<double> v(len);
        for (std::size_t i = 0; i < len; ++i) v[i] = f64();
        return v;
    }

    template <class Int>
    std::vector<Int> vec_int() {
        const std::size_t len = count(8, "int vector");
        std::vector<Int> v(len);
        for (std::size_t i = 0; i < len; ++i) v[i] = static_cast<Int>(i64());
        return v;
    }

    /// A length-prefixed count, validated so that count * elem_size fits in
    /// the remaining bytes (corrupt lengths fail BEFORE allocation).
    std::size_t count(std::size_t elem_size, const char* what) {
        const std::uint64_t len = u64();
        if (elem_size != 0 && len > remaining() / elem_size)
            fail(std::string("length ") + std::to_string(len) + " of " + what +
                 " exceeds the " + std::to_string(remaining()) +
                 " bytes remaining");
        return static_cast<std::size_t>(len);
    }

    /// Consume a length-prefixed block and return a reader over its body
    /// (the forward-compatibility idiom: decode known fields from the sub
    /// reader, ignore whatever trails them).
    ByteReader sub_reader() {
        const std::size_t len = count(1, "block");
        ByteReader r(p_ + pos_, len);
        pos_ += len;
        return r;
    }

    void skip(std::size_t n) {
        need(n, "skip");
        pos_ += n;
    }

    [[noreturn]] void fail(const std::string& what) const {
        throw solver_error(ErrorCode::invalid_scenario,
                           "decode error at byte " + std::to_string(pos_) +
                               "/" + std::to_string(n_) + ": " + what);
    }

private:
    void need(std::size_t k, const char* what) const {
        if (k > remaining())
            fail(std::string("truncated input reading ") + what);
    }
    std::uint64_t get_uint(int nbytes, const char* what) {
        need(static_cast<std::size_t>(nbytes), what);
        std::uint64_t v = 0;
        for (int i = 0; i < nbytes; ++i)
            v |= static_cast<std::uint64_t>(p_[pos_ + static_cast<std::size_t>(i)])
                 << (8 * i);
        pos_ += static_cast<std::size_t>(nbytes);
        return v;
    }

    const std::uint8_t* p_ = nullptr;
    std::size_t n_ = 0;
    std::size_t pos_ = 0;
};

} // namespace opmsim::util
