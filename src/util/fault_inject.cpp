#include "util/fault_inject.hpp"

#include <cmath>

#include "util/annotations.hpp"

namespace opmsim::fault {

namespace detail {
std::atomic<int> armed_count{0};
} // namespace detail

namespace {

struct SiteState {
    bool armed = false;
    FaultSpec spec;
    long calls = 0;
    long fired = 0;
};

constexpr int kSites = static_cast<int>(Site::site_count_);

/// All mutable harness state behind one capability, so the thread-safety
/// analysis can see that every SiteState access holds the mutex (a bare
/// function-local `static std::mutex` can't be named in GUARDED_BY).
struct Registry {
    util::Mutex m;
    SiteState sites[kSites] GUARDED_BY(m);

    SiteState& site(Site s) REQUIRES(m) { return sites[static_cast<int>(s)]; }
};

Registry& registry() {
    static Registry r;
    return r;
}

} // namespace

void arm(Site site, FaultSpec spec) {
    Registry& r = registry();
    const util::MutexLock lock(r.m);
    SiteState& st = r.site(site);
    if (!st.armed) detail::armed_count.fetch_add(1, std::memory_order_relaxed);
    st.armed = true;
    st.spec = spec;
    st.calls = 0;
    st.fired = 0;
}

void disarm(Site site) {
    Registry& r = registry();
    const util::MutexLock lock(r.m);
    SiteState& st = r.site(site);
    if (st.armed) detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    st.armed = false;
}

void disarm_all() {
    Registry& r = registry();
    const util::MutexLock lock(r.m);
    for (SiteState& st : r.sites) {
        if (st.armed) detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
        st.armed = false;
    }
}

bool fire(Site site) {
    Registry& r = registry();
    const util::MutexLock lock(r.m);
    SiteState& st = r.site(site);
    if (!st.armed) return false;
    const long call = st.calls++;
    const bool hit = call >= st.spec.skip && call < st.spec.skip + st.spec.fire;
    if (hit) ++st.fired;
    return hit;
}

long fire_count(Site site) {
    Registry& r = registry();
    const util::MutexLock lock(r.m);
    return r.site(site).fired;
}

double perturb(Site site, double v) {
    Registry& r = registry();
    const util::MutexLock lock(r.m);
    SiteState& st = r.site(site);
    if (!st.armed) return v;
    const long call = st.calls++;
    if (call < st.spec.skip || call >= st.spec.skip + st.spec.fire) return v;
    ++st.fired;
    return std::isnan(st.spec.value) ? st.spec.value : v * st.spec.value;
}

} // namespace opmsim::fault
