#include "util/fault_inject.hpp"

#include <cmath>
#include <mutex>

namespace opmsim::fault {

namespace detail {
std::atomic<int> armed_count{0};
} // namespace detail

namespace {

struct SiteState {
    bool armed = false;
    FaultSpec spec;
    long calls = 0;
    long fired = 0;
};

constexpr int kSites = static_cast<int>(Site::site_count_);

std::mutex& state_mutex() {
    static std::mutex m;
    return m;
}

SiteState* states() {
    static SiteState s[kSites];
    return s;
}

} // namespace

void arm(Site site, FaultSpec spec) {
    const std::lock_guard<std::mutex> lock(state_mutex());
    SiteState& st = states()[static_cast<int>(site)];
    if (!st.armed) detail::armed_count.fetch_add(1, std::memory_order_relaxed);
    st.armed = true;
    st.spec = spec;
    st.calls = 0;
    st.fired = 0;
}

void disarm(Site site) {
    const std::lock_guard<std::mutex> lock(state_mutex());
    SiteState& st = states()[static_cast<int>(site)];
    if (st.armed) detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
    st.armed = false;
}

void disarm_all() {
    const std::lock_guard<std::mutex> lock(state_mutex());
    for (int i = 0; i < kSites; ++i) {
        SiteState& st = states()[i];
        if (st.armed) detail::armed_count.fetch_sub(1, std::memory_order_relaxed);
        st.armed = false;
    }
}

bool fire(Site site) {
    const std::lock_guard<std::mutex> lock(state_mutex());
    SiteState& st = states()[static_cast<int>(site)];
    if (!st.armed) return false;
    const long call = st.calls++;
    const bool hit = call >= st.spec.skip && call < st.spec.skip + st.spec.fire;
    if (hit) ++st.fired;
    return hit;
}

long fire_count(Site site) {
    const std::lock_guard<std::mutex> lock(state_mutex());
    return states()[static_cast<int>(site)].fired;
}

double perturb(Site site, double v) {
    const std::lock_guard<std::mutex> lock(state_mutex());
    SiteState& st = states()[static_cast<int>(site)];
    if (!st.armed) return v;
    const long call = st.calls++;
    if (call < st.spec.skip || call >= st.spec.skip + st.spec.fire) return v;
    ++st.fired;
    return std::isnan(st.spec.value) ? st.spec.value : v * st.spec.value;
}

} // namespace opmsim::fault
