#pragma once
/// \file denormals.hpp
/// \brief Flush-to-zero control for benchmark timing fidelity.
///
/// Diffusive circuit responses decay spatially below the normalized
/// double range, and x86 cores execute subnormal arithmetic 10-100x
/// slower than normal arithmetic — enough to corrupt scaling studies
/// (a 2x larger RC ladder can appear 17x slower).  Benchmarks call
/// enable_flush_to_zero() so timings reflect algorithmic cost; the
/// library itself stays strict-IEEE by default.

#if defined(__SSE2__)
#include <pmmintrin.h>
#include <xmmintrin.h>
#endif

namespace opmsim {

/// Enable flush-to-zero / denormals-are-zero on this thread (no-op on
/// targets without SSE2).
inline void enable_flush_to_zero() {
#if defined(__SSE2__)
    _MM_SET_FLUSH_ZERO_MODE(_MM_FLUSH_ZERO_ON);
    _MM_SET_DENORMALS_ZERO_MODE(_MM_DENORMALS_ZERO_ON);
#endif
}

} // namespace opmsim
