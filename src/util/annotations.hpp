#pragma once
/// \file annotations.hpp
/// \brief Clang thread-safety capability annotations + annotated mutex types.
///
/// opmsim's concurrency surface (run_batch worker pools, the shared
/// FactorCache/ConvPlanCache/series memos, the svc daemon's
/// reader/dispatcher threading model) is guarded at compile time by
/// Clang's -Wthread-safety analysis: every mutex is a declared
/// *capability*, every piece of state it protects is GUARDED_BY it, and
/// every private helper that assumes the lock is held says so with
/// REQUIRES.  A forgotten lock (or a lock taken twice) is then a hard
/// compile error in the CI thread-safety job
/// (-Wthread-safety -Wthread-safety-beta -Werror, clang only) instead of
/// an interleaving TSan may or may not reach on a 1-CPU runner.
///
/// The analysis needs lock/unlock functions it can see, and libstdc++'s
/// std::mutex / std::lock_guard carry no attributes — so this header also
/// provides the thin annotated wrappers the codebase uses instead:
///
///   * util::Mutex     — std::mutex with ACQUIRE/RELEASE-annotated methods;
///   * util::MutexLock — a SCOPED_CAPABILITY lock_guard replacement that
///                       also satisfies BasicLockable, so it plugs into
///                       std::condition_variable_any (util::CondVar);
///   * util::CondVar   — condition_variable_any; pair it with MutexLock
///                       and an explicit `while (!pred) cv.wait(lock);`
///                       loop (lambda predicates hide the guarded reads
///                       from the analysis).
///
/// On every non-Clang compiler (and on Clang without the attribute) the
/// macros expand to nothing and Mutex/MutexLock are zero-cost veneers over
/// std::mutex, so gcc builds are untouched.
///
/// Discipline (see docs/static_analysis.md): annotate, don't suppress.
/// Shapes the analysis cannot express (lock-then-return, conditional
/// locking) are refactored into `*_locked()` helpers with REQUIRES; the
/// NO_THREAD_SAFETY_ANALYSIS escape hatch is reserved for the annotated
/// wrapper internals below and must carry a justification comment anywhere
/// else (ci/lint_invariants.py-adjacent review rule).

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define OPMSIM_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef OPMSIM_THREAD_ANNOTATION
#define OPMSIM_THREAD_ANNOTATION(x)  // no-op off Clang
#endif

#define CAPABILITY(x) OPMSIM_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY OPMSIM_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) OPMSIM_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) OPMSIM_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRE(...) OPMSIM_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define RELEASE(...) OPMSIM_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
    OPMSIM_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define REQUIRES(...) \
    OPMSIM_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define EXCLUDES(...) OPMSIM_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ACQUIRED_BEFORE(...) \
    OPMSIM_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
    OPMSIM_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define RETURN_CAPABILITY(x) OPMSIM_THREAD_ANNOTATION(lock_returned(x))
#define ASSERT_CAPABILITY(x) OPMSIM_THREAD_ANNOTATION(assert_capability(x))
#define NO_THREAD_SAFETY_ANALYSIS \
    OPMSIM_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace opmsim::util {

/// std::mutex as a declared capability.  Use through MutexLock; the bare
/// lock()/unlock() exist for the wrapper and for adopting interfaces that
/// need BasicLockable.
class CAPABILITY("mutex") Mutex {
public:
    Mutex() = default;
    Mutex(const Mutex&) = delete;
    Mutex& operator=(const Mutex&) = delete;

    void lock() ACQUIRE() { m_.lock(); }
    void unlock() RELEASE() { m_.unlock(); }
    bool try_lock() TRY_ACQUIRE(true) { return m_.try_lock(); }

private:
    std::mutex m_;
};

/// Scoped lock over util::Mutex (the std::lock_guard of this codebase).
/// Also BasicLockable, so util::CondVar::wait(lock) / wait_until(lock, t)
/// can release and reacquire it around the block — the capability state
/// before and after a wait is identical, which is exactly what the
/// analysis assumes.
class SCOPED_CAPABILITY MutexLock {
public:
    explicit MutexLock(Mutex& m) ACQUIRE(m) : mu_(m) { mu_.lock(); }
    ~MutexLock() RELEASE() { mu_.unlock(); }

    MutexLock(const MutexLock&) = delete;
    MutexLock& operator=(const MutexLock&) = delete;

    /// BasicLockable surface for condition_variable_any only — calling
    /// these by hand defeats the scope discipline.
    void lock() ACQUIRE() { mu_.lock(); }
    void unlock() RELEASE() { mu_.unlock(); }

private:
    Mutex& mu_;
};

/// Condition variable compatible with util::Mutex/MutexLock.  Always wait
/// in an explicit predicate loop —
///     while (!pred) cv.wait(lock);
/// — not with the lambda-predicate overload: the lambda is a separate
/// function body to the analysis, so guarded reads inside it would need
/// their own (unattachable) REQUIRES.
using CondVar = std::condition_variable_any;

} // namespace opmsim::util
