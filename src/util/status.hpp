#pragma once
/// \file status.hpp
/// \brief Structured error taxonomy and cooperative run control.
///
/// The solver core keeps throwing (deep call stacks unwind naturally and
/// tier-1 callers expect exceptions), but every throw that crosses the
/// Engine boundary is classified into an ErrorCode and reported as data in
/// `SolveResult::status` — a failed scenario in a batch marks itself and
/// leaves its siblings untouched.
///
/// Taxonomy:
///   invalid_scenario   malformed request (bad sizes, t_end <= 0, ...)
///   nonfinite_input    NaN/Inf in the pencil, sources, or RHS
///   singular_pencil    structurally/numerically singular after all retries
///   pivot_breakdown    pivot rejected and the degradation ladder exhausted
///   nonfinite_state    the evolving state became NaN/Inf mid-sweep
///   deadline_exceeded  BatchOptions::deadline expired mid-solve
///   cancelled          the caller's cancellation token was set
///   internal_error     anything unclassified (library bug)
///   overloaded         service admission control shed the request (queue
///                      or per-connection bound hit); retry after backoff
///   unavailable        the service is draining toward shutdown; do not
///                      retry against this instance

#include <atomic>
#include <chrono>
#include <exception>
#include <stdexcept>
#include <string>

#include "util/check.hpp"
#include "util/fault_inject.hpp"

namespace opmsim {

enum class ErrorCode : int {
    ok = 0,
    invalid_scenario,
    nonfinite_input,
    singular_pencil,
    pivot_breakdown,
    nonfinite_state,
    deadline_exceeded,
    cancelled,
    internal_error,
    // Service-tier admission codes (PR 10).  Appended so the u8 wire
    // encoding of every earlier code is unchanged across the minor bump.
    overloaded,
    unavailable,
};

inline const char* error_code_name(ErrorCode code) {
    switch (code) {
    case ErrorCode::ok: return "ok";
    case ErrorCode::invalid_scenario: return "invalid_scenario";
    case ErrorCode::nonfinite_input: return "nonfinite_input";
    case ErrorCode::singular_pencil: return "singular_pencil";
    case ErrorCode::pivot_breakdown: return "pivot_breakdown";
    case ErrorCode::nonfinite_state: return "nonfinite_state";
    case ErrorCode::deadline_exceeded: return "deadline_exceeded";
    case ErrorCode::cancelled: return "cancelled";
    case ErrorCode::internal_error: return "internal_error";
    case ErrorCode::overloaded: return "overloaded";
    case ErrorCode::unavailable: return "unavailable";
    }
    return "?";
}

/// Failure-as-data carried on SolveResult.  Default-constructed == ok.
struct Status {
    ErrorCode code = ErrorCode::ok;
    std::string message;

    bool ok() const { return code == ErrorCode::ok; }
};

/// A numerical_error that knows its taxonomy code.  Deriving from
/// numerical_error keeps every existing `catch (const numerical_error&)`
/// retry path (supernodal fallback, Gear refactor fallback) working.
class solver_error : public numerical_error {
public:
    solver_error(ErrorCode code, const std::string& what_arg)
        : numerical_error(what_arg), code_(code) {}

    ErrorCode code() const { return code_; }

private:
    ErrorCode code_;
};

/// Classify the in-flight exception (call from inside a catch block).
inline Status status_from_current_exception() {
    try {
        throw;
    } catch (const solver_error& e) {
        return {e.code(), e.what()};
    } catch (const numerical_error& e) {
        return {ErrorCode::pivot_breakdown, e.what()};
    } catch (const std::invalid_argument& e) {
        return {ErrorCode::invalid_scenario, e.what()};
    } catch (const std::exception& e) {
        return {ErrorCode::internal_error, e.what()};
    } catch (...) {
        return {ErrorCode::internal_error, "unknown exception"};
    }
}

namespace util {

/// Cooperative deadline + cancellation token, checked by the solver loops
/// at sweep-step granularity.  A default-constructed deadline (epoch)
/// means "no deadline"; `cancel` may be null.  The struct is trivially
/// copyable and shared read-only across worker threads.
struct RunControl {
    std::chrono::steady_clock::time_point deadline{};
    const std::atomic<bool>* cancel = nullptr;

    bool has_deadline() const { return deadline.time_since_epoch().count() != 0; }
};

/// Throw solver_error(cancelled / deadline_exceeded) when the control says
/// to stop.  Null `control` is a cheap no-op, except that the fault
/// harness can still force a deadline expiry at this site.
inline void check_run_control(const RunControl* control) {
    if (fault::enabled() && fault::fire(fault::Site::deadline))
        throw solver_error(ErrorCode::deadline_exceeded,
                           "solve deadline expired (fault injection)");
    if (control == nullptr) return;
    if (control->cancel != nullptr && control->cancel->load(std::memory_order_relaxed))
        throw solver_error(ErrorCode::cancelled, "solve cancelled by caller");
    if (control->has_deadline() &&
        std::chrono::steady_clock::now() > control->deadline)
        throw solver_error(ErrorCode::deadline_exceeded, "solve deadline expired");
}

} // namespace util
} // namespace opmsim
