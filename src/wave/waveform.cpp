#include "wave/waveform.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace opmsim::wave {

Waveform::Waveform(Vectord t, Vectord v) : t_(std::move(t)), v_(std::move(v)) {
    OPMSIM_REQUIRE(t_.size() == v_.size(), "Waveform: time/value size mismatch");
    for (std::size_t i = 1; i < t_.size(); ++i)
        OPMSIM_REQUIRE(t_[i] > t_[i - 1], "Waveform: times must strictly increase");
}

Waveform Waveform::uniform(double t0, double dt, Vectord v) {
    OPMSIM_REQUIRE(dt > 0.0, "Waveform::uniform: dt must be positive");
    Vectord t(v.size());
    for (std::size_t k = 0; k < v.size(); ++k) t[k] = t0 + static_cast<double>(k) * dt;
    return Waveform(std::move(t), std::move(v));
}

double Waveform::at(double t) const {
    OPMSIM_REQUIRE(!t_.empty(), "Waveform::at: empty waveform");
    if (t <= t_.front()) return v_.front();
    if (t >= t_.back()) return v_.back();
    const auto it = std::upper_bound(t_.begin(), t_.end(), t);
    const std::size_t hi = static_cast<std::size_t>(it - t_.begin());
    const std::size_t lo = hi - 1;
    const double w = (t - t_[lo]) / (t_[hi] - t_[lo]);
    return v_[lo] + w * (v_[hi] - v_[lo]);
}

Waveform Waveform::resampled(const Vectord& grid) const {
    Vectord v(grid.size());
    for (std::size_t k = 0; k < grid.size(); ++k) v[k] = at(grid[k]);
    return Waveform(grid, std::move(v));
}

double Waveform::max_abs() const {
    double m = 0;
    for (double v : v_) m = std::max(m, std::abs(v));
    return m;
}

Vectord linspace(double t0, double t1, std::size_t n) {
    OPMSIM_REQUIRE(n >= 2 && t1 > t0, "linspace: need n>=2 and t1>t0");
    Vectord g(n);
    const double dt = (t1 - t0) / static_cast<double>(n - 1);
    for (std::size_t k = 0; k < n; ++k) g[k] = t0 + static_cast<double>(k) * dt;
    g.back() = t1;
    return g;
}

double relative_l2(const Waveform& reference, const Waveform& test, std::size_t npts) {
    OPMSIM_REQUIRE(!reference.empty() && !test.empty(),
                   "relative_l2: empty waveform");
    const double t0 = std::max(reference.t_front(), test.t_front());
    const double t1 = std::min(reference.t_back(), test.t_back());
    OPMSIM_REQUIRE(t1 > t0, "relative_l2: waveforms do not overlap in time");
    const Vectord grid = linspace(t0, t1, npts);
    double num = 0, den = 0;
    for (double t : grid) {
        const double r = reference.at(t);
        const double d = r - test.at(t);
        num += d * d;
        den += r * r;
    }
    if (den == 0.0) return std::sqrt(num) == 0.0 ? 0.0 : std::numeric_limits<double>::infinity();
    return std::sqrt(num / den);
}

double relative_error_db(const Waveform& reference, const Waveform& test,
                         std::size_t npts) {
    const double rel = relative_l2(reference, test, npts);
    if (rel == 0.0) return -std::numeric_limits<double>::infinity();
    return 20.0 * std::log10(rel);
}

double average_relative_error_db(const std::vector<Waveform>& reference,
                                 const std::vector<Waveform>& test,
                                 std::size_t npts) {
    OPMSIM_REQUIRE(reference.size() == test.size() && !reference.empty(),
                   "average_relative_error_db: channel count mismatch");
    double sum = 0;
    for (std::size_t c = 0; c < reference.size(); ++c)
        sum += relative_error_db(reference[c], test[c], npts);
    return sum / static_cast<double>(reference.size());
}

} // namespace opmsim::wave
