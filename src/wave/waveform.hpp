#pragma once
/// \file waveform.hpp
/// \brief Sampled waveforms and the paper's accuracy metric.
///
/// Every solver in opmsim returns its response as Waveforms — (time, value)
/// sample pairs, not necessarily uniform (adaptive OPM produces nonuniform
/// grids).  The comparison metric is the paper's eq. (30):
///     err = 20*log10( ||y_a - y_b||_2 / ||y_a||_2 )   [dB]
/// evaluated after resampling both signals onto a common time grid.

#include <vector>

#include "la/dense.hpp"

namespace opmsim::wave {

using la::index_t;
using la::Vectord;

/// A scalar signal sampled at strictly increasing times.
class Waveform {
public:
    Waveform() = default;

    /// Construct from parallel (time, value) arrays.
    Waveform(Vectord t, Vectord v);

    /// Uniform grid convenience: samples at t0 + k*dt, k = 0..v.size()-1.
    static Waveform uniform(double t0, double dt, Vectord v);

    [[nodiscard]] std::size_t size() const { return t_.size(); }
    [[nodiscard]] bool empty() const { return t_.empty(); }
    [[nodiscard]] const Vectord& times() const { return t_; }
    [[nodiscard]] const Vectord& values() const { return v_; }

    [[nodiscard]] double t_front() const { return t_.front(); }
    [[nodiscard]] double t_back() const { return t_.back(); }

    /// Linear interpolation (clamped at the ends).
    [[nodiscard]] double at(double t) const;

    /// Resample onto an arbitrary grid by linear interpolation.
    [[nodiscard]] Waveform resampled(const Vectord& grid) const;

    /// Pointwise max |v|.
    [[nodiscard]] double max_abs() const;

private:
    Vectord t_, v_;
};

/// The paper's relative error metric (eq. 30), in dB.  `reference` plays
/// the role of y_OPM in the paper (the denominator).  Both waveforms are
/// resampled onto `npts` uniform points across the overlap of their spans.
/// Returns -inf dB if the signals match exactly.
double relative_error_db(const Waveform& reference, const Waveform& test,
                         std::size_t npts = 512);

/// Same metric averaged over several output channels (Table II's "average
/// relative error": the mean of the per-channel dB values).
double average_relative_error_db(const std::vector<Waveform>& reference,
                                 const std::vector<Waveform>& test,
                                 std::size_t npts = 512);

/// Plain relative L2 mismatch (linear, not dB) on a common grid.
double relative_l2(const Waveform& reference, const Waveform& test,
                   std::size_t npts = 512);

/// Uniform grid with n points covering [t0, t1] inclusive.
Vectord linspace(double t0, double t1, std::size_t n);

} // namespace opmsim::wave
