#pragma once
/// \file sources.hpp
/// \brief Excitation sources and their projections onto time grids.
///
/// A Source is a scalar function of time.  The factories below cover the
/// stimuli used in the paper's experiments (steps for the transmission-line
/// study, switching-current pulse trains for the power grid) plus the usual
/// SPICE-style shapes.  project_average() computes the BPF coefficients
/// f_i = (1/h_i) * integral of f over interval i (paper eq. 2) with
/// per-interval Gauss–Legendre quadrature.

#include <functional>
#include <vector>

#include "la/dense.hpp"

namespace opmsim::wave {

using Source = std::function<double(double)>;

/// u(t) = level * 1[t >= t0].
Source step(double level = 1.0, double t0 = 0.0);

/// Single trapezoidal pulse: rises over [t0, t0+rise], holds until
/// t0+rise+width, falls over `fall`.
Source pulse(double level, double t0, double rise, double width, double fall);

/// Periodic trapezoidal pulse train with the given period.
Source pulse_train(double level, double t0, double rise, double width,
                   double fall, double period);

/// u(t) = amp * sin(2*pi*freq*t + phase).
Source sine(double amp, double freq, double phase = 0.0);

/// u(t) = amp * exp(-t/tau) * 1[t >= 0].
Source exp_decay(double amp, double tau);

/// Piecewise-linear source through (t, v) breakpoints (SPICE PWL); constant
/// extrapolation outside.
Source pwl(std::vector<double> t, std::vector<double> v);

/// C^1 step: raised-cosine ramp from 0 to `level` over [t0, t0 + rise].
Source smooth_step(double level, double t0, double rise);

/// Single C^1 pulse with raised-cosine edges (rise/fall) and a flat top.
Source smooth_pulse(double level, double t0, double rise, double width,
                    double fall);

/// Periodic version of smooth_pulse.
Source smooth_pulse_train(double level, double t0, double rise, double width,
                          double fall, double period);

/// Point samples f(t_k) on a grid.
la::Vectord sample(const Source& f, const la::Vectord& grid);

/// Interval averages (1/h_i) * integral over [edges[i], edges[i+1]) using
/// composite Gauss–Legendre quadrature: each interval is split into
/// `panels` equal panels integrated with an `npts`-point rule.  edges has
/// m+1 entries; the result has m.  Raise `panels` when the source carries
/// content far above the interval rate (e.g. switching ripple).
la::Vectord project_average(const Source& f, const la::Vectord& edges,
                            int npts = 4, int panels = 1);

/// Interval edges for m uniform steps on [0, T).
la::Vectord uniform_edges(double t_end, la::index_t m);

} // namespace opmsim::wave
