#include "wave/sources.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace opmsim::wave {

Source step(double level, double t0) {
    return [=](double t) { return t >= t0 ? level : 0.0; };
}

namespace {
/// One trapezoid evaluated at local time dt >= 0.
double trapezoid(double dt, double level, double rise, double width, double fall) {
    if (dt < 0) return 0.0;
    if (dt < rise) return rise > 0 ? level * dt / rise : level;
    dt -= rise;
    if (dt < width) return level;
    dt -= width;
    if (dt < fall) return level * (1.0 - dt / fall);
    return 0.0;
}
} // namespace

Source pulse(double level, double t0, double rise, double width, double fall) {
    OPMSIM_REQUIRE(rise >= 0 && width >= 0 && fall >= 0, "pulse: negative segment");
    return [=](double t) { return trapezoid(t - t0, level, rise, width, fall); };
}

Source pulse_train(double level, double t0, double rise, double width,
                   double fall, double period) {
    OPMSIM_REQUIRE(period > 0, "pulse_train: period must be positive");
    OPMSIM_REQUIRE(rise + width + fall <= period,
                   "pulse_train: pulse longer than period");
    return [=](double t) {
        if (t < t0) return 0.0;
        const double local = std::fmod(t - t0, period);
        return trapezoid(local, level, rise, width, fall);
    };
}

Source sine(double amp, double freq, double phase) {
    return [=](double t) {
        return amp * std::sin(2.0 * std::numbers::pi * freq * t + phase);
    };
}

Source exp_decay(double amp, double tau) {
    OPMSIM_REQUIRE(tau > 0, "exp_decay: tau must be positive");
    return [=](double t) { return t >= 0 ? amp * std::exp(-t / tau) : 0.0; };
}

Source pwl(std::vector<double> t, std::vector<double> v) {
    OPMSIM_REQUIRE(t.size() == v.size() && !t.empty(), "pwl: bad breakpoints");
    for (std::size_t i = 1; i < t.size(); ++i)
        OPMSIM_REQUIRE(t[i] > t[i - 1], "pwl: times must strictly increase");
    return [t = std::move(t), v = std::move(v)](double x) {
        if (x <= t.front()) return v.front();
        if (x >= t.back()) return v.back();
        const auto it = std::upper_bound(t.begin(), t.end(), x);
        const std::size_t hi = static_cast<std::size_t>(it - t.begin());
        const std::size_t lo = hi - 1;
        const double w = (x - t[lo]) / (t[hi] - t[lo]);
        return v[lo] + w * (v[hi] - v[lo]);
    };
}

namespace {
/// Raised-cosine transition from 0 to 1 on [0, 1].
double coserp(double x) {
    if (x <= 0) return 0.0;
    if (x >= 1) return 1.0;
    return 0.5 * (1.0 - std::cos(std::numbers::pi * x));
}

/// One smooth trapezoid at local time dt >= 0.
double smooth_trapezoid(double dt, double level, double rise, double width,
                        double fall) {
    if (dt < 0) return 0.0;
    if (dt < rise) return rise > 0 ? level * coserp(dt / rise) : level;
    dt -= rise;
    if (dt < width) return level;
    dt -= width;
    if (dt < fall) return level * coserp(1.0 - dt / fall);
    return 0.0;
}
} // namespace

Source smooth_step(double level, double t0, double rise) {
    OPMSIM_REQUIRE(rise > 0, "smooth_step: rise must be positive");
    return [=](double t) { return level * coserp((t - t0) / rise); };
}

Source smooth_pulse(double level, double t0, double rise, double width,
                    double fall) {
    OPMSIM_REQUIRE(rise >= 0 && width >= 0 && fall >= 0,
                   "smooth_pulse: negative segment");
    return [=](double t) {
        return smooth_trapezoid(t - t0, level, rise, width, fall);
    };
}

Source smooth_pulse_train(double level, double t0, double rise, double width,
                          double fall, double period) {
    OPMSIM_REQUIRE(period > 0, "smooth_pulse_train: period must be positive");
    OPMSIM_REQUIRE(rise + width + fall <= period,
                   "smooth_pulse_train: pulse longer than period");
    return [=](double t) {
        if (t < t0) return 0.0;
        const double local = std::fmod(t - t0, period);
        return smooth_trapezoid(local, level, rise, width, fall);
    };
}

la::Vectord sample(const Source& f, const la::Vectord& grid) {
    la::Vectord out(grid.size());
    for (std::size_t k = 0; k < grid.size(); ++k) out[k] = f(grid[k]);
    return out;
}

la::Vectord project_average(const Source& f, const la::Vectord& edges, int npts,
                            int panels) {
    OPMSIM_REQUIRE(edges.size() >= 2, "project_average: need at least one interval");
    OPMSIM_REQUIRE(npts >= 1 && npts <= 8, "project_average: npts in [1,8]");
    OPMSIM_REQUIRE(panels >= 1 && panels <= 1024, "project_average: panels in [1,1024]");

    // Gauss–Legendre nodes/weights on [-1, 1] for small orders.
    static const double n2[] = {-0.5773502691896257, 0.5773502691896257};
    static const double w2[] = {1.0, 1.0};
    static const double n4[] = {-0.8611363115940526, -0.3399810435848563,
                                0.3399810435848563, 0.8611363115940526};
    static const double w4[] = {0.3478548451374538, 0.6521451548625461,
                                0.6521451548625461, 0.3478548451374538};

    // Average of f over one panel [a, b] via the selected rule.
    const auto panel_avg = [npts, &f](double a, double b) {
        double acc = 0;
        if (npts == 1) {
            acc = f(0.5 * (a + b)) * 2.0;  // midpoint, weight 2 on [-1,1]
        } else if (npts <= 2) {
            for (int k = 0; k < 2; ++k)
                acc += w2[k] * f(0.5 * (a + b) + 0.5 * (b - a) * n2[k]);
        } else {
            for (int k = 0; k < 4; ++k)
                acc += w4[k] * f(0.5 * (a + b) + 0.5 * (b - a) * n4[k]);
        }
        return 0.5 * acc;  // (1/(b-a)) * integral
    };

    la::Vectord out(edges.size() - 1);
    for (std::size_t i = 0; i + 1 < edges.size(); ++i) {
        const double a = edges[i], b = edges[i + 1];
        OPMSIM_REQUIRE(b > a, "project_average: edges must strictly increase");
        double acc = 0;
        const double w = (b - a) / panels;
        for (int pnl = 0; pnl < panels; ++pnl)
            acc += panel_avg(a + pnl * w, a + (pnl + 1) * w);
        out[i] = acc / panels;  // equal panels: average of panel averages
    }
    return out;
}

la::Vectord uniform_edges(double t_end, la::index_t m) {
    OPMSIM_REQUIRE(t_end > 0 && m >= 1, "uniform_edges: need t_end>0, m>=1");
    la::Vectord e(static_cast<std::size_t>(m) + 1);
    const double h = t_end / static_cast<double>(m);
    for (la::index_t k = 0; k <= m; ++k) e[static_cast<std::size_t>(k)] = h * static_cast<double>(k);
    e.back() = t_end;
    return e;
}

} // namespace opmsim::wave
