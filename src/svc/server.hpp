#pragma once
/// \file server.hpp
/// \brief The opmsim scenario daemon: an Engine behind a socket, with
///        dynamic micro-batching of concurrent scenario submissions.
///
/// The Server owns one api::Engine and exposes it over a Unix-domain (or
/// loopback TCP) socket speaking the wire protocol of svc/wire.hpp.
/// Clients register systems once, then submit scenarios against the
/// returned handles; the daemon keeps each handle's SolveCaches warm
/// across requests and — via SolveCaches::{save,load} — across restarts.
///
/// Concurrency model: accept and per-connection reader threads only parse
/// frames; every Engine interaction happens on ONE dispatcher thread, so
/// the Engine's single-threaded contract (add/remove/run) holds by
/// construction.  The dispatcher is also where dynamic micro-batching
/// lives: when a submit arrives it waits up to `batch_window` for more
/// submits, then partitions the collected jobs by system handle and runs
/// each partition as ONE Engine::run_batch call — batch-compatible
/// scenarios from DIFFERENT clients coalesce into one multi-RHS sweep
/// (one factorization, blocked triangular solves), and PR 6's fault
/// containment guarantees a poisoned submission cannot take its
/// batch-mates down.  Control messages (register/remove/save/load/stats/
/// shutdown) act as barriers: coalescing never reorders a submit across
/// them, so "register, submit, remove" behaves sequentially per
/// connection.
///
/// Every reply frame echoes its request_id, so clients may pipeline
/// requests freely; per-connection writes are serialized by a mutex.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "svc/wire.hpp"
#include "util/annotations.hpp"

namespace opmsim::svc {

struct ServerOptions {
    /// Unix-domain socket path.  When empty, the server listens on
    /// loopback TCP instead (`tcp_port`).
    std::string socket_path;
    /// TCP port on 127.0.0.1 (0 = ephemeral; read the bound port back
    /// with Server::port()).  Used only when `socket_path` is empty.
    int tcp_port = 0;
    /// Coalescing window in seconds: how long the dispatcher holds the
    /// first submit of a batch open for others to join.  0 disables
    /// coalescing (every submit runs alone — still through run_batch, so
    /// behavior is identical, just unbatched).
    double batch_window = 1e-3;
    /// Max submits coalesced into one dispatch round.
    int max_batch = 64;
    /// Worker threads Engine::run_batch may use per dispatch
    /// (BatchOptions::workers; thread count never changes results).
    int batch_workers = 1;
    /// Hard cap on a single frame's payload (decode error beyond it) —
    /// a corrupt or adversarial length field cannot trigger an absurd
    /// allocation.
    std::size_t max_frame_bytes = std::size_t{1} << 28;
    /// Engine::set_cache_capacity value (0 = unlimited): the LRU bound on
    /// how many registered systems keep warm caches.
    std::size_t cache_capacity = 0;
    /// Admission control: max decoded submits waiting for the dispatcher
    /// (0 = unbounded).  A submit arriving with the queue full is rejected
    /// on the reader thread with ErrorCode::overloaded — the client learns
    /// in one round trip instead of queueing behind work that will miss
    /// every deadline anyway.
    std::size_t max_queue = 4096;
    /// Per-connection in-flight submit bound (0 = unbounded): one
    /// pipelining client cannot occupy the whole dispatch queue; its
    /// excess submits are shed with ErrorCode::overloaded.
    std::size_t max_pending_per_conn = 0;
    /// SO_SNDTIMEO on accepted sockets, in seconds (0 disables).  A peer
    /// that stops reading its replies blocks the dispatcher's reply write
    /// at most this long, then the connection is dropped — one stalled
    /// reader cannot wedge every other client's dispatch.
    double write_timeout = 30.0;
    /// When non-empty, a graceful drain snapshots every registered
    /// system's warm caches (SolveCaches::save) to
    /// `<snapshot_dir>/opmsim_h<handle>.snap` before shutdown, so the next
    /// daemon can warm-start with zero orderings and zero SoE refits.
    std::string snapshot_dir;
};

class Server {
public:
    explicit Server(ServerOptions opt = {});
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /// Bind, listen and spawn the accept + dispatcher threads.  Throws
    /// solver_error(internal_error) when the socket cannot be set up.
    void start();

    /// Close the listener and every connection, join all threads.  Safe to
    /// call twice; the destructor calls it.
    void stop();

    /// Begin a graceful drain and return immediately (signal-handler
    /// friendly): the listener closes, new submits are rejected with
    /// ErrorCode::unavailable, and once the dispatcher has flushed every
    /// queued job it writes the optional cache snapshots
    /// (ServerOptions::snapshot_dir) and signals shutdown — at which point
    /// wait_for_shutdown() returns and the owner should call stop().
    /// No-op when the server is not running or already draining/stopping.
    void begin_drain();

    /// Blocking graceful shutdown: begin_drain(), wait for the dispatcher
    /// to flush in-flight work and write the auto-snapshot, then stop().
    void drain();

    /// Block until a client's shutdown request arrives (or stop() is
    /// called from another thread).  The daemon main's idle loop.
    void wait_for_shutdown();

    /// Bound TCP port (meaningful after start() in TCP mode).
    [[nodiscard]] int port() const { return port_; }
    [[nodiscard]] const std::string& socket_path() const {
        return opt_.socket_path;
    }

    /// Micro-batching counters (also served to clients via MsgType::stats).
    [[nodiscard]] ServiceStats stats() const;

private:
    struct Connection {
        /// Set once by accept_loop() before the reader thread spawns (and
        /// before the connection is published), then never reassigned —
        /// read-only to every thread, so it needs no capability.
        int fd = -1;
        util::Mutex write_mutex;  ///< serializes whole-frame socket writes
        std::thread reader;
        /// Submits admitted for this connection and not yet replied to —
        /// the max_pending_per_conn admission counter.  Atomic rather than
        /// GUARDED_BY: the reader increments, the dispatcher decrements,
        /// and an off-by-one during the race window only shifts the shed
        /// threshold by one request.
        std::atomic<std::uint64_t> inflight{0};
    };

    /// One decoded request waiting for the dispatcher.
    struct Job {
        std::shared_ptr<Connection> conn;
        FrameHeader hdr;
        std::vector<std::uint8_t> payload;  ///< raw body (control messages)
        // Decoded submit fields (valid when hdr.type == MsgType::submit;
        // decoding happens on the reader thread so malformed submissions
        // are rejected before they can stall the dispatcher).
        std::uint64_t handle = 0;
        WireScenario scenario;
        /// Wire deadline_ms as received (0 = none) — part of the dispatch
        /// partition key so requests with different budgets never share a
        /// sweep-wide RunControl.
        std::uint64_t deadline_ms = 0;
        /// Absolute expiry (arrival + deadline_ms); epoch means none.
        std::chrono::steady_clock::time_point deadline{};

        [[nodiscard]] bool has_deadline() const {
            return deadline.time_since_epoch().count() != 0;
        }
    };

    void accept_loop();
    void reader_loop(const std::shared_ptr<Connection>& conn);
    void dispatch_loop();
    void handle_control(Job& job);
    void dispatch_submits(std::vector<Job> batch);
    /// Dispatcher-thread drain epilogue: write the auto-snapshots and
    /// signal shutdown.
    void finish_drain();
    void send_frame(Connection& conn, MsgType type, std::uint64_t request_id,
                    const std::vector<std::uint8_t>& payload);
    void send_error(Connection& conn, std::uint64_t request_id,
                    const Status& st);
    void close_listener();

    ServerOptions opt_;
    api::Engine engine_;

    /// Guards the listener fd: close_listener() runs from stop() (any
    /// thread) AND from the dispatcher on a client shutdown request, and
    /// those may race — an unguarded fd could be shut down twice, the
    /// second time on a number the kernel has already reused.
    /// accept_loop() snapshots the fd under this lock each iteration.
    util::Mutex listener_mutex_;
    int listen_fd_ GUARDED_BY(listener_mutex_) = -1;
    /// Bound TCP port.  Written by start() before any thread spawns, then
    /// read-only — no capability needed.
    int port_ = 0;

    std::thread accept_thread_;
    std::thread dispatch_thread_;

    util::Mutex conn_mutex_;
    std::vector<std::shared_ptr<Connection>> connections_
        GUARDED_BY(conn_mutex_);

    util::Mutex queue_mutex_;
    util::CondVar queue_cv_;
    std::deque<Job> queue_ GUARDED_BY(queue_mutex_);
    /// Submits currently in queue_ (controls excluded) — the max_queue
    /// admission counter, maintained by the reader (push) and dispatcher
    /// (pop) under queue_mutex_.
    std::size_t queued_submits_ GUARDED_BY(queue_mutex_) = 0;
    bool stopping_ GUARDED_BY(queue_mutex_) = false;
    /// Graceful-drain flag: readers reject new submits with
    /// ErrorCode::unavailable, and the dispatcher runs finish_drain() once
    /// the queue empties.
    bool draining_ GUARDED_BY(queue_mutex_) = false;
    /// start()/stop() lifecycle flag; shares queue_mutex_ because stop()
    /// already reads it together with stopping_ (a lone unguarded bool
    /// here was a data race between start() and a concurrent stop()).
    bool started_ GUARDED_BY(queue_mutex_) = false;

    /// Handles of currently registered systems, for the drain snapshot.
    /// Touched only on the dispatcher thread (register/remove control
    /// handlers, finish_drain), which is also the only Engine user — no
    /// capability needed, same single-thread contract as engine_.
    std::vector<std::uint64_t> live_handles_;

    /// mutable: stats() is const but must lock.
    mutable util::Mutex stats_mutex_;
    ServiceStats stats_ GUARDED_BY(stats_mutex_);

    util::Mutex shutdown_mutex_;
    util::CondVar shutdown_cv_;
    bool shutdown_requested_ GUARDED_BY(shutdown_mutex_) = false;
};

} // namespace opmsim::svc
