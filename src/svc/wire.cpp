#include "svc/wire.hpp"

#include <utility>

#include "wave/sources.hpp"

namespace opmsim::svc {

// ---------------------------------------------------------------- framing

void encode_frame_header(util::ByteWriter& w, const FrameHeader& h) {
    w.u32(kFrameMagic);
    w.u16(h.ver_major);
    w.u16(h.ver_minor);
    w.u8(static_cast<std::uint8_t>(h.type));
    w.u8(0);
    w.u8(0);
    w.u8(0);
    w.u64(h.request_id);
    w.u64(h.payload_len);
}

FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t n,
                                std::size_t max_payload) {
    util::ByteReader r(data, n);
    if (r.remaining() < kFrameHeaderBytes) r.fail("truncated frame header");
    if (r.u32() != kFrameMagic) r.fail("bad frame magic");
    FrameHeader h;
    h.ver_major = r.u16();
    h.ver_minor = r.u16();
    if (h.ver_major != kProtoMajor)
        r.fail("unsupported protocol major version " +
               std::to_string(h.ver_major) + " (this build speaks " +
               std::to_string(kProtoMajor) + ")");
    const std::uint8_t t = r.u8();
    if (t > kMaxMsgType)
        r.fail("unknown message type " + std::to_string(t));
    h.type = static_cast<MsgType>(t);
    r.skip(3);
    h.request_id = r.u64();
    h.payload_len = r.u64();
    if (h.payload_len > max_payload)
        r.fail("frame payload of " + std::to_string(h.payload_len) +
               " bytes exceeds the " + std::to_string(max_payload) +
               "-byte limit");
    return h;
}

// ------------------------------------------------------------- SourceSpec

std::size_t SourceSpec::param_count(Kind kind) {
    switch (kind) {
    case Kind::step: return 2;
    case Kind::pulse: return 5;
    case Kind::pulse_train: return 6;
    case Kind::sine: return 3;
    case Kind::exp_decay: return 2;
    case Kind::pwl: return 0;
    case Kind::smooth_step: return 3;
    case Kind::smooth_pulse: return 5;
    case Kind::smooth_pulse_train: return 6;
    }
    return 0;
}

wave::Source SourceSpec::make() const {
    OPMSIM_REQUIRE(params.size() == param_count(kind),
                   "SourceSpec: parameter count does not match the kind");
    const std::vector<double>& p = params;
    switch (kind) {
    case Kind::step: return wave::step(p[0], p[1]);
    case Kind::pulse: return wave::pulse(p[0], p[1], p[2], p[3], p[4]);
    case Kind::pulse_train:
        return wave::pulse_train(p[0], p[1], p[2], p[3], p[4], p[5]);
    case Kind::sine: return wave::sine(p[0], p[1], p[2]);
    case Kind::exp_decay: return wave::exp_decay(p[0], p[1]);
    case Kind::pwl: return wave::pwl(t, v);
    case Kind::smooth_step: return wave::smooth_step(p[0], p[1], p[2]);
    case Kind::smooth_pulse:
        return wave::smooth_pulse(p[0], p[1], p[2], p[3], p[4]);
    case Kind::smooth_pulse_train:
        return wave::smooth_pulse_train(p[0], p[1], p[2], p[3], p[4], p[5]);
    }
    OPMSIM_ENSURE(false, "SourceSpec::make: unreachable kind");
}

namespace {
SourceSpec spec_of(SourceSpec::Kind kind, std::vector<double> params) {
    SourceSpec s;
    s.kind = kind;
    s.params = std::move(params);
    return s;
}
} // namespace

SourceSpec SourceSpec::step(double level, double t0) {
    return spec_of(Kind::step, {level, t0});
}
SourceSpec SourceSpec::pulse(double level, double t0, double rise, double width,
                             double fall) {
    return spec_of(Kind::pulse, {level, t0, rise, width, fall});
}
SourceSpec SourceSpec::pulse_train(double level, double t0, double rise,
                                   double width, double fall, double period) {
    return spec_of(Kind::pulse_train, {level, t0, rise, width, fall, period});
}
SourceSpec SourceSpec::sine(double amp, double freq, double phase) {
    return spec_of(Kind::sine, {amp, freq, phase});
}
SourceSpec SourceSpec::exp_decay(double amp, double tau) {
    return spec_of(Kind::exp_decay, {amp, tau});
}
SourceSpec SourceSpec::pwl(std::vector<double> t, std::vector<double> v) {
    SourceSpec s;
    s.kind = Kind::pwl;
    s.t = std::move(t);
    s.v = std::move(v);
    return s;
}
SourceSpec SourceSpec::smooth_step(double level, double t0, double rise) {
    return spec_of(Kind::smooth_step, {level, t0, rise});
}
SourceSpec SourceSpec::smooth_pulse(double level, double t0, double rise,
                                    double width, double fall) {
    return spec_of(Kind::smooth_pulse, {level, t0, rise, width, fall});
}
SourceSpec SourceSpec::smooth_pulse_train(double level, double t0, double rise,
                                          double width, double fall,
                                          double period) {
    return spec_of(Kind::smooth_pulse_train,
                   {level, t0, rise, width, fall, period});
}

void encode(util::ByteWriter& w, const SourceSpec& s) {
    const std::size_t tok = w.begin_block();
    w.u8(static_cast<std::uint8_t>(s.kind));
    w.vec_f64(s.params);
    w.vec_f64(s.t);
    w.vec_f64(s.v);
    w.end_block(tok);
}

SourceSpec decode_source_spec(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    SourceSpec s;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(SourceSpec::Kind::smooth_pulse_train))
        r.fail("unknown source kind " + std::to_string(kind));
    s.kind = static_cast<SourceSpec::Kind>(kind);
    s.params = r.vec_f64();
    s.t = r.vec_f64();
    s.v = r.vec_f64();
    if (s.params.size() != SourceSpec::param_count(s.kind))
        r.fail("source parameter count does not match its kind");
    if (s.kind == SourceSpec::Kind::pwl && s.t.size() != s.v.size())
        r.fail("pwl breakpoint arrays differ in length");
    return s;
}

// ------------------------------------------------------------ MethodConfig

namespace {

/// Decode-side enum range guards: values beyond the last enumerator are a
/// classified decode error, never a wild enum.
template <class Enum>
Enum checked_enum(util::ByteReader& r, Enum last, const char* what) {
    const std::uint8_t v = r.u8();
    if (v > static_cast<std::uint8_t>(last))
        r.fail(std::string("invalid ") + what + " enum value " +
               std::to_string(v));
    return static_cast<Enum>(v);
}

opm::HistoryBackend decode_history(util::ByteReader& r) {
    return checked_enum(r, opm::HistoryBackend::soe, "history backend");
}

} // namespace

void encode(util::ByteWriter& w, const api::MethodConfig& config) {
    w.u8(static_cast<std::uint8_t>(config.index()));
    const std::size_t tok = w.begin_block();
    // Exactly the fields options_equal() compares (api/registry.cpp) — the
    // process-local caches/control/symbolic pointers never travel.
    switch (api::method_of(config)) {
    case api::Method::opm: {
        const auto& o = std::get<opm::OpmOptions>(config);
        w.f64(o.alpha);
        w.u8(static_cast<std::uint8_t>(o.form));
        w.u8(static_cast<std::uint8_t>(o.path));
        w.u8(static_cast<std::uint8_t>(o.history));
        w.f64(o.soe_tol);
        w.vec_f64(o.x0);
        w.i32(o.quad_points);
        w.i32(o.quad_panels);
        break;
    }
    case api::Method::multiterm: {
        const auto& o = std::get<opm::MultiTermOptions>(config);
        w.u8(static_cast<std::uint8_t>(o.path));
        w.u8(static_cast<std::uint8_t>(o.history));
        w.f64(o.soe_tol);
        w.i32(o.quad_points);
        w.i32(o.quad_panels);
        break;
    }
    case api::Method::adaptive: {
        const auto& o = std::get<opm::AdaptiveOptions>(config);
        w.f64(o.alpha);
        w.f64(o.tol);
        w.f64(o.atol);
        w.f64(o.h_init);
        w.f64(o.h_min);
        w.f64(o.h_max);
        w.u8(static_cast<std::uint8_t>(o.history));
        w.f64(o.soe_tol);
        w.vec_f64(o.x0);
        w.i32(o.quad_points);
        w.i64(o.max_steps);
        w.i64(o.max_consecutive_rejects);
        break;
    }
    case api::Method::transient: {
        const auto& o = std::get<transient::TransientOptions>(config);
        w.u8(static_cast<std::uint8_t>(o.method));
        w.vec_f64(o.x0);
        break;
    }
    case api::Method::grunwald: {
        const auto& o = std::get<transient::GrunwaldOptions>(config);
        w.f64(o.alpha);
        w.u8(static_cast<std::uint8_t>(o.history));
        w.f64(o.soe_tol);
        w.vec_f64(o.x0);
        break;
    }
    }
    w.end_block(tok);
}

api::MethodConfig decode_method_config(util::ByteReader& outer) {
    const std::uint8_t tag = outer.u8();
    if (tag > static_cast<std::uint8_t>(api::Method::grunwald))
        outer.fail("unknown method tag " + std::to_string(tag));
    util::ByteReader r = outer.sub_reader();
    switch (static_cast<api::Method>(tag)) {
    case api::Method::opm: {
        opm::OpmOptions o;
        o.alpha = r.f64();
        o.form = checked_enum(r, opm::OpmForm::integral, "OPM form");
        o.path = checked_enum(r, opm::OpmPath::toeplitz, "OPM path");
        o.history = decode_history(r);
        o.soe_tol = r.f64();
        o.x0 = r.vec_f64();
        o.quad_points = r.i32();
        o.quad_panels = r.i32();
        return o;
    }
    case api::Method::multiterm: {
        opm::MultiTermOptions o;
        o.path = checked_enum(r, opm::MultiTermPath::toeplitz, "multiterm path");
        o.history = decode_history(r);
        o.soe_tol = r.f64();
        o.quad_points = r.i32();
        o.quad_panels = r.i32();
        return o;
    }
    case api::Method::adaptive: {
        opm::AdaptiveOptions o;
        o.alpha = r.f64();
        o.tol = r.f64();
        o.atol = r.f64();
        o.h_init = r.f64();
        o.h_min = r.f64();
        o.h_max = r.f64();
        o.history = decode_history(r);
        o.soe_tol = r.f64();
        o.x0 = r.vec_f64();
        o.quad_points = r.i32();
        o.max_steps = static_cast<la::index_t>(r.i64());
        o.max_consecutive_rejects = static_cast<la::index_t>(r.i64());
        return o;
    }
    case api::Method::transient: {
        transient::TransientOptions o;
        o.method = checked_enum(r, transient::Method::gear2, "transient method");
        o.x0 = r.vec_f64();
        // o.symbolic stays null: the daemon's per-system SolveCaches supply
        // the pattern analysis instead.
        return o;
    }
    case api::Method::grunwald: {
        transient::GrunwaldOptions o;
        o.alpha = r.f64();
        o.history = decode_history(r);
        o.soe_tol = r.f64();
        o.x0 = r.vec_f64();
        return o;
    }
    }
    outer.fail("unreachable method tag");
}

// ---------------------------------------------------------------- Scenario

void encode(util::ByteWriter& w, const WireScenario& sc) {
    const std::size_t tok = w.begin_block();
    w.u64(sc.sources.size());
    for (const SourceSpec& s : sc.sources) encode(w, s);
    w.f64(sc.t_end);
    w.i64(sc.steps);
    encode(w, sc.config);
    w.end_block(tok);
}

WireScenario decode_scenario(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    WireScenario sc;
    const std::size_t nsrc = r.count(8, "sources");
    sc.sources.reserve(nsrc);
    for (std::size_t k = 0; k < nsrc; ++k)
        sc.sources.push_back(decode_source_spec(r));
    sc.t_end = r.f64();
    sc.steps = static_cast<la::index_t>(r.i64());
    sc.config = decode_method_config(r);
    return sc;
}

api::Scenario WireScenario::to_scenario() const {
    api::Scenario sc;
    sc.sources.reserve(sources.size());
    for (const SourceSpec& s : sources) sc.sources.push_back(s.make());
    sc.t_end = t_end;
    sc.steps = steps;
    sc.config = config;
    return sc;
}

// ------------------------------------------------------- Status/Diagnostics

void encode(util::ByteWriter& w, const Status& st) {
    const std::size_t tok = w.begin_block();
    w.u8(static_cast<std::uint8_t>(st.code));
    w.str(st.message);
    w.end_block(tok);
}

Status decode_status(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    Status st;
    st.code = checked_enum(r, ErrorCode::unavailable, "error code");
    st.message = r.str();
    return st;
}

void encode(util::ByteWriter& w, const Diagnostics& d) {
    const std::size_t tok = w.begin_block();
    w.f64(d.factor_seconds);
    w.f64(d.sweep_seconds);
    w.f64(d.solve_seconds);
    w.i64(d.rhs_solved);
    w.u8(static_cast<std::uint8_t>(d.history_backend));
    w.i32(d.soe_modes);
    w.f64(d.soe_fit_error);
    w.i64(d.kernel_evals);
    w.u8(static_cast<std::uint8_t>(d.ordering));
    w.i32(d.orderings);
    w.i32(d.factorizations);
    w.i32(d.refactor_count);
    w.i32(d.factor_cache_hits);
    w.f64(d.rcond_estimate);
    w.f64(d.pivot_growth);
    w.i64(d.refinement_iters);
    w.u64(d.degradations.size());
    for (const std::string& s : d.degradations) w.str(s);
    w.i32(d.soe_fits);
    // New Diagnostics fields are appended here (and at the END of the
    // struct) so old decoders skip them via the block length.
    w.end_block(tok);
}

Diagnostics decode_diagnostics(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    Diagnostics d;
    d.factor_seconds = r.f64();
    d.sweep_seconds = r.f64();
    d.solve_seconds = r.f64();
    d.rhs_solved = r.i64();
    d.history_backend = decode_history(r);
    d.soe_modes = r.i32();
    d.soe_fit_error = r.f64();
    d.kernel_evals = r.i64();
    d.ordering = checked_enum(r, la::SparseLuOptions::Ordering::automatic,
                              "pencil ordering");
    d.orderings = r.i32();
    d.factorizations = r.i32();
    d.refactor_count = r.i32();
    d.factor_cache_hits = r.i32();
    d.rcond_estimate = r.f64();
    d.pivot_growth = r.f64();
    d.refinement_iters = r.i64();
    const std::size_t ndeg = r.count(8, "degradations");
    d.degradations.reserve(ndeg);
    for (std::size_t k = 0; k < ndeg; ++k) d.degradations.push_back(r.str());
    d.soe_fits = r.i32();
    return d;
}

// ------------------------------------------------------- numeric containers

void encode(util::ByteWriter& w, const wave::Waveform& wf) {
    const std::size_t tok = w.begin_block();
    w.vec_f64(wf.times());
    w.vec_f64(wf.values());
    w.end_block(tok);
}

wave::Waveform decode_waveform(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    std::vector<double> t = r.vec_f64();
    std::vector<double> v = r.vec_f64();
    if (t.size() != v.size())
        r.fail("waveform time/value arrays differ in length");
    if (t.empty()) return {};
    return {std::move(t), std::move(v)};
}

void encode(util::ByteWriter& w, const la::Matrixd& m) {
    const std::size_t tok = w.begin_block();
    w.i64(m.rows());
    w.i64(m.cols());
    const std::size_t n = static_cast<std::size_t>(m.rows()) *
                          static_cast<std::size_t>(m.cols());
    for (std::size_t k = 0; k < n; ++k) w.f64(m.data()[k]);
    w.end_block(tok);
}

la::Matrixd decode_matrix(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    const std::int64_t rows = r.i64();
    const std::int64_t cols = r.i64();
    if (rows < 0 || cols < 0) r.fail("negative matrix dimension");
    const std::uint64_t n =
        static_cast<std::uint64_t>(rows) * static_cast<std::uint64_t>(cols);
    if (n > r.remaining() / 8)
        r.fail("matrix body shorter than rows*cols doubles");
    la::Matrixd m(static_cast<la::index_t>(rows), static_cast<la::index_t>(cols));
    for (std::uint64_t k = 0; k < n; ++k) m.data()[k] = r.f64();
    return m;
}

void encode(util::ByteWriter& w, const la::CscMatrix& m) {
    const std::size_t tok = w.begin_block();
    w.i64(m.rows());
    w.i64(m.cols());
    w.vec_int(m.col_ptr());
    w.vec_int(m.row_ind());
    w.vec_f64(m.values());
    w.end_block(tok);
}

la::CscMatrix decode_csc(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    const auto rows = static_cast<la::index_t>(r.i64());
    const auto cols = static_cast<la::index_t>(r.i64());
    std::vector<la::index_t> colp = r.vec_int<la::index_t>();
    std::vector<la::index_t> rowi = r.vec_int<la::index_t>();
    std::vector<double> val = r.vec_f64();
    // from_parts enforces the CSC invariants; its std::invalid_argument
    // classifies as invalid_scenario at the service boundary.
    return la::CscMatrix::from_parts(rows, cols, std::move(colp),
                                     std::move(rowi), std::move(val));
}

// ------------------------------------------------------------- SolveResult

void encode(util::ByteWriter& w, const api::SolveResult& res) {
    const std::size_t tok = w.begin_block();
    w.u8(static_cast<std::uint8_t>(res.method));
    encode(w, res.status);
    w.u64(res.outputs.size());
    for (const wave::Waveform& wf : res.outputs) encode(w, wf);
    encode(w, res.states);
    w.vec_f64(res.grid);
    w.vec_f64(res.steps);
    encode(w, res.diag);
    w.end_block(tok);
}

api::SolveResult decode_result(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    api::SolveResult res;
    const std::uint8_t m = r.u8();
    if (m > static_cast<std::uint8_t>(api::Method::grunwald))
        r.fail("unknown method tag " + std::to_string(m));
    res.method = static_cast<api::Method>(m);
    res.status = decode_status(r);
    const std::size_t nout = r.count(8, "output waveforms");
    res.outputs.reserve(nout);
    for (std::size_t k = 0; k < nout; ++k)
        res.outputs.push_back(decode_waveform(r));
    res.states = decode_matrix(r);
    res.grid = r.vec_f64();
    res.steps = r.vec_f64();
    res.diag = decode_diagnostics(r);
    return res;
}

// ----------------------------------------------------------------- systems

void encode(util::ByteWriter& w, const opm::DescriptorSystem& sys) {
    const std::size_t tok = w.begin_block();
    encode(w, sys.e);
    encode(w, sys.a);
    encode(w, sys.b);
    encode(w, sys.c);
    w.end_block(tok);
}

opm::DescriptorSystem decode_descriptor(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    opm::DescriptorSystem sys;
    sys.e = decode_csc(r);
    sys.a = decode_csc(r);
    sys.b = decode_csc(r);
    sys.c = decode_csc(r);
    return sys;
}

void encode(util::ByteWriter& w, const opm::MultiTermSystem& sys) {
    const std::size_t tok = w.begin_block();
    w.u64(sys.lhs.size());
    for (const opm::LhsTerm& t : sys.lhs) {
        w.f64(t.order);
        encode(w, t.mat);
    }
    w.u64(sys.rhs.size());
    for (const opm::RhsTerm& t : sys.rhs) {
        w.f64(t.order);
        encode(w, t.mat);
    }
    encode(w, sys.c);
    w.end_block(tok);
}

opm::MultiTermSystem decode_multiterm(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    opm::MultiTermSystem sys;
    const std::size_t nlhs = r.count(16, "lhs terms");
    sys.lhs.reserve(nlhs);
    for (std::size_t k = 0; k < nlhs; ++k) {
        opm::LhsTerm t;
        t.order = r.f64();
        t.mat = decode_csc(r);
        sys.lhs.push_back(std::move(t));
    }
    const std::size_t nrhs = r.count(16, "rhs terms");
    sys.rhs.reserve(nrhs);
    for (std::size_t k = 0; k < nrhs; ++k) {
        opm::RhsTerm t;
        t.order = r.f64();
        t.mat = decode_csc(r);
        sys.rhs.push_back(std::move(t));
    }
    sys.c = decode_csc(r);
    return sys;
}

// ------------------------------------------------------------------- stats

void encode(util::ByteWriter& w, const ServiceStats& s) {
    const std::size_t tok = w.begin_block();
    w.u64(s.requests);
    w.u64(s.batches);
    w.u64(s.coalesced);
    w.u64(s.largest_batch);
    // Minor-1 survivability counters — appended at the END of the block so
    // a minor-0 decoder skips them with the rest of the trailing bytes.
    w.u64(s.shed);
    w.u64(s.deadline_expired);
    w.u64(s.drains);
    w.u64(s.reconnects_seen);
    w.end_block(tok);
}

ServiceStats decode_service_stats(util::ByteReader& outer) {
    util::ByteReader r = outer.sub_reader();
    ServiceStats s;
    s.requests = r.u64();
    s.batches = r.u64();
    s.coalesced = r.u64();
    s.largest_batch = r.u64();
    // A minor-0 encoder stops here; the counters it cannot know stay 0.
    if (r.remaining() >= 8) s.shed = r.u64();
    if (r.remaining() >= 8) s.deadline_expired = r.u64();
    if (r.remaining() >= 8) s.drains = r.u64();
    if (r.remaining() >= 8) s.reconnects_seen = r.u64();
    return s;
}

} // namespace opmsim::svc
