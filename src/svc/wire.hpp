#pragma once
/// \file wire.hpp
/// \brief Versioned wire-level Scenario API for the opmsim service.
///
/// The scenario daemon (svc/server.hpp) and its clients speak a
/// length-prefixed binary protocol: every message is one frame — a fixed
/// 28-byte header followed by `payload_len` body bytes — and every struct
/// body is encoded with the bounds-checked little-endian primitives of
/// util/serial.hpp.  Doubles travel bit-preserved, so a scenario decoded
/// by the daemon produces results bit-identical to running the same
/// Scenario in process, and a SolveResult decoded by the client is
/// bit-identical to what the daemon's Engine returned — the property the
/// loopback tests pin.
///
/// Frame header layout (all little-endian):
///     u32  magic        "OPMS"
///     u16  ver_major    incompatible-change counter; must match exactly
///     u16  ver_minor    additive-change counter; min(client,server) wins
///     u8   type         MsgType
///     u8[3] reserved    zero
///     u64  request_id   echoed verbatim on the response frame(s)
///     u64  payload_len  body bytes following the header
///
/// Forward compatibility: struct bodies are length-prefixed blocks
/// (ByteWriter::begin_block / ByteReader::sub_reader), so a minor-version
/// bump may append fields and old decoders skip the trailing bytes they do
/// not know.  Decoding is defensive end to end — truncated, corrupt or
/// version-skewed input throws solver_error(ErrorCode::invalid_scenario),
/// never UB (tests/test_svc_wire.cpp fuzzes this).
///
/// Sources on the wire: wave::Source is an opaque std::function, so the
/// protocol ships SourceSpec — a tagged parameter record covering every
/// factory in wave/sources.hpp — and the daemon instantiates the actual
/// closures with SourceSpec::make().

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "api/scenario.hpp"
#include "opm/multiterm.hpp"
#include "util/serial.hpp"

namespace opmsim::svc {

// ---------------------------------------------------------------- framing

/// "OPMS" as a little-endian u32.
inline constexpr std::uint32_t kFrameMagic = 0x534D504F;
inline constexpr std::uint16_t kProtoMajor = 1;
/// Minor 1 (PR 10) appends: an optional u64 `deadline_ms` after the
/// scenario in submit bodies, a u8 reconnect flag in hello bodies, and the
/// {shed, deadline_expired, drains, reconnects_seen} ServiceStats counters.
/// All are trailing-block additions: a minor-0 peer negotiates them away
/// (min-wins) and a minor-1 decoder tolerates their absence.
inline constexpr std::uint16_t kProtoMinor = 1;
inline constexpr std::size_t kFrameHeaderBytes = 28;

enum class MsgType : std::uint8_t {
    hello = 0,            ///< client -> server, first frame; body empty, or
                          ///<   (minor >= 1) u8 reconnect flag
    hello_ack,            ///< server -> client: u16 major, u16 minor (negotiated)
    ok,                   ///< generic success reply; body depends on request
    error,                ///< failure reply; body = Status
    register_descriptor,  ///< body = DescriptorSystem; ok body = u64 handle
    register_multiterm,   ///< body = MultiTermSystem;  ok body = u64 handle
    remove_system,        ///< body = u64 handle; ok body empty
    submit,               ///< body = u64 handle + WireScenario, then
                          ///<   (minor >= 1) u64 deadline_ms (0 = none)
    result,               ///< reply to submit; body = SolveResult
    save_caches,          ///< body = u64 handle + str path; ok body empty
    load_caches,          ///< body = u64 handle + str path; ok body empty
    stats,                ///< body empty
    stats_reply,          ///< body = ServiceStats
    shutdown,             ///< body empty; server replies ok, then stops
    ping,                 ///< body empty
    pong,                 ///< reply to ping
};
inline constexpr std::uint8_t kMaxMsgType =
    static_cast<std::uint8_t>(MsgType::pong);

struct FrameHeader {
    std::uint16_t ver_major = kProtoMajor;
    std::uint16_t ver_minor = kProtoMinor;
    MsgType type = MsgType::ping;
    std::uint64_t request_id = 0;
    std::uint64_t payload_len = 0;
};

/// Append the 28 header bytes for `h` to `w`.
void encode_frame_header(util::ByteWriter& w, const FrameHeader& h);

/// Decode and validate a header from `n >= kFrameHeaderBytes` bytes:
/// magic, exact major-version match (minor skew is fine — that is what
/// minor versions are for), known type, payload_len <= max_payload.
/// Violations throw solver_error(ErrorCode::invalid_scenario).
FrameHeader decode_frame_header(const std::uint8_t* data, std::size_t n,
                                std::size_t max_payload);

// --------------------------------------------------------------- payloads

/// Serializable excitation source: a tag plus the factory's parameters
/// (wave::Source itself is an opaque closure).  `params` is the factory
/// argument list in declaration order; `t`/`v` are used by `pwl` only.
struct SourceSpec {
    enum class Kind : std::uint8_t {
        step = 0,            ///< params: level, t0
        pulse,               ///< params: level, t0, rise, width, fall
        pulse_train,         ///< params: level, t0, rise, width, fall, period
        sine,                ///< params: amp, freq, phase
        exp_decay,           ///< params: amp, tau
        pwl,                 ///< t, v breakpoint arrays
        smooth_step,         ///< params: level, t0, rise
        smooth_pulse,        ///< params: level, t0, rise, width, fall
        smooth_pulse_train,  ///< params: level, t0, rise, width, fall, period
    };

    Kind kind = Kind::step;
    std::vector<double> params;
    std::vector<double> t, v;  ///< pwl breakpoints

    /// Instantiate the wave::Source this spec describes.  Throws
    /// std::invalid_argument when the parameter count does not match the
    /// kind (a decoded spec is always consistent — the decoder validates).
    [[nodiscard]] wave::Source make() const;

    /// The factory's parameter count for `kind` (0 for pwl).
    static std::size_t param_count(Kind kind);

    // Factory helpers mirroring wave/sources.hpp.
    static SourceSpec step(double level = 1.0, double t0 = 0.0);
    static SourceSpec pulse(double level, double t0, double rise, double width,
                            double fall);
    static SourceSpec pulse_train(double level, double t0, double rise,
                                  double width, double fall, double period);
    static SourceSpec sine(double amp, double freq, double phase = 0.0);
    static SourceSpec exp_decay(double amp, double tau);
    static SourceSpec pwl(std::vector<double> t, std::vector<double> v);
    static SourceSpec smooth_step(double level, double t0, double rise);
    static SourceSpec smooth_pulse(double level, double t0, double rise,
                                   double width, double fall);
    static SourceSpec smooth_pulse_train(double level, double t0, double rise,
                                         double width, double fall,
                                         double period);
};

/// The wire-level Scenario: api::Scenario with SourceSpecs in place of the
/// unserializable closures.  The MethodConfig travels with exactly the
/// fields api/registry.cpp's options_equal() compares — the process-local
/// `caches`/`control` pointers (Engine-injected) and
/// TransientOptions::symbolic (decoded null; the daemon's per-system
/// caches supply the analysis) never cross the wire, so two scenarios that
/// coalesce into one micro-batch in process also coalesce through the
/// daemon.
struct WireScenario {
    std::vector<SourceSpec> sources;
    double t_end = 0.0;
    la::index_t steps = 0;
    api::MethodConfig config = opm::OpmOptions{};

    /// Instantiate the in-process Scenario (sources materialized).
    [[nodiscard]] api::Scenario to_scenario() const;
};

/// Daemon micro-batching + survivability counters (stats_reply body).
/// The last four are minor-1 additions: the encoder appends them inside
/// the length-prefixed block and the decoder reads them only when bytes
/// remain, so minor-0 peers interoperate in both directions.
struct ServiceStats {
    std::uint64_t requests = 0;       ///< submit frames executed
    std::uint64_t batches = 0;        ///< run_batch sweeps dispatched
    std::uint64_t coalesced = 0;      ///< submits that shared a sweep with >= 1 other
    std::uint64_t largest_batch = 0;  ///< max submits in one sweep
    std::uint64_t shed = 0;           ///< submits rejected by admission control
    std::uint64_t deadline_expired = 0;  ///< submits answered deadline_exceeded
    std::uint64_t drains = 0;            ///< graceful drains begun
    std::uint64_t reconnects_seen = 0;   ///< hello frames flagged as reconnects
};

// Struct codecs.  Every encoder writes one length-prefixed block; every
// decoder consumes one and validates enums / counts / cross-field
// consistency, throwing solver_error(ErrorCode::invalid_scenario) on any
// violation.
void encode(util::ByteWriter& w, const SourceSpec& s);
SourceSpec decode_source_spec(util::ByteReader& r);

void encode(util::ByteWriter& w, const api::MethodConfig& config);
api::MethodConfig decode_method_config(util::ByteReader& r);

void encode(util::ByteWriter& w, const WireScenario& sc);
WireScenario decode_scenario(util::ByteReader& r);

void encode(util::ByteWriter& w, const Status& st);
Status decode_status(util::ByteReader& r);

void encode(util::ByteWriter& w, const Diagnostics& d);
Diagnostics decode_diagnostics(util::ByteReader& r);

void encode(util::ByteWriter& w, const wave::Waveform& wf);
wave::Waveform decode_waveform(util::ByteReader& r);

void encode(util::ByteWriter& w, const la::Matrixd& m);
la::Matrixd decode_matrix(util::ByteReader& r);

void encode(util::ByteWriter& w, const la::CscMatrix& m);
la::CscMatrix decode_csc(util::ByteReader& r);

void encode(util::ByteWriter& w, const api::SolveResult& res);
api::SolveResult decode_result(util::ByteReader& r);

void encode(util::ByteWriter& w, const opm::DescriptorSystem& sys);
opm::DescriptorSystem decode_descriptor(util::ByteReader& r);

void encode(util::ByteWriter& w, const opm::MultiTermSystem& sys);
opm::MultiTermSystem decode_multiterm(util::ByteReader& r);

void encode(util::ByteWriter& w, const ServiceStats& s);
ServiceStats decode_service_stats(util::ByteReader& r);

} // namespace opmsim::svc
