#include "svc/client.hpp"

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "util/posix_error.hpp"

namespace opmsim::svc {

namespace {

bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t k = ::read(fd, buf + got, n - got);
        if (k > 0) {
            got += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
    std::size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL: a daemon that died mid-send must surface as EPIPE
        // (a retryable transport failure), not a process-killing SIGPIPE.
        const ssize_t k = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
        if (k > 0) {
            put += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

[[noreturn]] void transport_fail(const std::string& what) {
    throw solver_error(ErrorCode::internal_error, "svc::Client: " + what);
}

/// connect() bounded by `timeout` seconds (<= 0: plain blocking connect).
/// The socket is flipped to non-blocking for the dial and restored after,
/// so a daemon that accepted but wedged cannot park the caller in
/// ::connect forever.  Returns false with `why` set on failure.
bool connect_with_timeout(int fd, const sockaddr* addr, socklen_t len,
                          double timeout, std::string& why) {
    if (timeout <= 0) {
        if (::connect(fd, addr, len) != 0) {
            why = util::errno_message(errno);
            return false;
        }
        return true;
    }
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
    bool ok = ::connect(fd, addr, len) == 0;
    if (!ok && (errno == EINPROGRESS || errno == EAGAIN)) {
        pollfd pfd{};
        pfd.fd = fd;
        pfd.events = POLLOUT;
        const int ms = static_cast<int>(timeout * 1e3);
        const int rc = ::poll(&pfd, 1, ms > 0 ? ms : 1);
        if (rc <= 0) {
            why = rc == 0 ? "connect timed out" : util::errno_message(errno);
        } else {
            int err = 0;
            socklen_t errlen = sizeof err;
            ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen);
            if (err == 0)
                ok = true;
            else
                why = util::errno_message(err);
        }
    } else if (!ok) {
        why = util::errno_message(errno);
    }
    ::fcntl(fd, F_SETFL, flags);
    return ok;
}

} // namespace

Client::Client(ClientOptions opt) : opt_(std::move(opt)) {
    if (opt_.retry.max_attempts < 1) opt_.retry.max_attempts = 1;
    jitter_rng_.seed(opt_.retry.jitter_seed);
}

Client::~Client() { close(); }

void Client::connect_unix(const std::string& path) {
    OPMSIM_REQUIRE(fd_ < 0, "svc::Client: already connected");
    OPMSIM_REQUIRE(path.size() < sizeof sockaddr_un{}.sun_path,
                   "svc::Client: socket path too long");
    endpoint_ = Endpoint::unix_sock;
    unix_path_ = path;
    dial(/*reconnect=*/false);
}

void Client::connect_tcp(int port) {
    OPMSIM_REQUIRE(fd_ < 0, "svc::Client: already connected");
    endpoint_ = Endpoint::tcp;
    tcp_port_ = port;
    dial(/*reconnect=*/false);
}

void Client::dial(bool reconnect) {
    int fd = -1;
    std::string why;
    bool ok = false;
    if (endpoint_ == Endpoint::unix_sock) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            transport_fail(std::string("socket: ") + util::errno_message(errno));
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        std::memcpy(addr.sun_path, unix_path_.c_str(), unix_path_.size() + 1);
        ok = connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof addr, opt_.connect_timeout, why);
        if (!ok) why = "connect(" + unix_path_ + "): " + why;
    } else {
        OPMSIM_REQUIRE(endpoint_ == Endpoint::tcp,
                       "svc::Client: no endpoint recorded");
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            transport_fail(std::string("socket: ") + util::errno_message(errno));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(tcp_port_));
        ok = connect_with_timeout(fd, reinterpret_cast<const sockaddr*>(&addr),
                                  sizeof addr, opt_.connect_timeout, why);
        if (!ok)
            why = "connect(127.0.0.1:" + std::to_string(tcp_port_) + "): " + why;
    }
    if (!ok) {
        ::close(fd);
        transport_fail(why);
    }
    fd_ = fd;
    try {
        handshake(reconnect);
    } catch (...) {
        // Leave no half-open connection behind: a failed handshake tears
        // the socket and receiver down so the next dial starts clean.
        close();
        throw;
    }
}

void Client::handshake(bool reconnect) {
    receiver_ = std::thread([this] { receive_loop(); });
    // Minor-1 hello body: one reconnect flag byte.  A minor-0 server
    // ignores the body entirely, so this needs no negotiation.
    std::vector<std::uint8_t> hello_body{
        static_cast<std::uint8_t>(reconnect ? 1 : 0)};

    std::promise<std::pair<MsgType, std::vector<std::uint8_t>>> promise;
    auto future = promise.get_future();
    std::uint64_t id;
    {
        // Register BEFORE sending so a fast reply cannot race the map
        // insert; the id must be reserved and mapped atomically.
        const util::MutexLock lock(pending_mutex_);
        id = next_id_++;
        pending_[id].deliver = [&promise](MsgType t,
                                          std::vector<std::uint8_t> body) {
            promise.set_value({t, std::move(body)});
        };
    }
    util::ByteWriter w;
    FrameHeader h;
    h.type = MsgType::hello;
    h.request_id = id;
    h.payload_len = hello_body.size();
    encode_frame_header(w, h);
    w.bytes(hello_body.data(), hello_body.size());
    {
        const util::MutexLock lock(write_mutex_);
        if (!write_all(fd_, w.data().data(), w.size())) {
            {
                const util::MutexLock plock(pending_mutex_);
                pending_.erase(id);
            }
            transport_fail("hello send failed");
        }
    }
    if (opt_.connect_timeout > 0 &&
        future.wait_for(std::chrono::duration<double>(opt_.connect_timeout)) ==
            std::future_status::timeout) {
        // Hung daemon: sever the socket; the receiver wakes, fails the
        // pending entry (exactly-once), and we report the timeout.
        transport_broken_.store(true, std::memory_order_release);
        ::shutdown(fd_, SHUT_RDWR);
        (void)future.get();
        transport_fail("handshake timed out after " +
                       std::to_string(opt_.connect_timeout) + "s");
    }
    const auto [type, payload] = future.get();
    if (type != MsgType::hello_ack) transport_fail("handshake rejected");
    util::ByteReader r(payload.data(), payload.size());
    const std::uint16_t major = r.u16();
    if (major != kProtoMajor)
        transport_fail("server speaks protocol major " + std::to_string(major));
    minor_ = r.u16();
}

void Client::reconnect() {
    OPMSIM_REQUIRE(endpoint_ != Endpoint::none,
                   "svc::Client: reconnect before connect");
    close();
    dial(/*reconnect=*/true);
    transport_broken_.store(false, std::memory_order_release);
    reconnects_.fetch_add(1, std::memory_order_relaxed);
}

void Client::close() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    if (receiver_.joinable()) receiver_.join();
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    minor_ = 0;
}

void Client::fail_all_pending(const std::string& why) {
    std::map<std::uint64_t, Pending> orphans;
    {
        const util::MutexLock lock(pending_mutex_);
        orphans.swap(pending_);
    }
    util::ByteWriter w;
    encode(w, Status{ErrorCode::internal_error, why});
    for (auto& [id, p] : orphans) p.deliver(MsgType::error, w.data());
}

void Client::receive_loop() {
    std::vector<std::uint8_t> header(kFrameHeaderBytes);
    for (;;) {
        if (!read_exact(fd_, header.data(), header.size())) break;
        FrameHeader hdr;
        try {
            hdr = decode_frame_header(header.data(), header.size(),
                                      opt_.max_frame_bytes);
        } catch (...) {
            break;  // framing lost (or an absurd length): unusable
        }
        std::vector<std::uint8_t> payload(hdr.payload_len);
        if (!read_exact(fd_, payload.data(), payload.size())) break;
        Pending p;
        {
            const util::MutexLock lock(pending_mutex_);
            const auto it = pending_.find(hdr.request_id);
            if (it == pending_.end()) continue;  // stray reply: drop
            p = std::move(it->second);
            pending_.erase(it);
        }
        p.deliver(hdr.type, std::move(payload));
    }
    // Publish the breakage BEFORE delivering the failures: a retry loop
    // woken by its failed future must see the flag.
    transport_broken_.store(true, std::memory_order_release);
    fail_all_pending("connection closed");
}

void Client::sleep_backoff(int attempt) {
    double jitter;
    {
        const util::MutexLock lock(retry_mutex_);
        jitter = std::uniform_real_distribution<double>(0.0, 0.5)(jitter_rng_);
    }
    double delay = opt_.retry.base_backoff;
    for (int i = 0; i < attempt; ++i) delay *= opt_.retry.multiplier;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(delay * (1.0 + jitter)));
}

std::pair<MsgType, std::vector<std::uint8_t>> Client::call(
    MsgType type, const std::vector<std::uint8_t>& payload) {
    OPMSIM_REQUIRE(fd_ >= 0, "svc::Client: not connected");
    std::promise<std::pair<MsgType, std::vector<std::uint8_t>>> promise;
    std::future<std::pair<MsgType, std::vector<std::uint8_t>>> future =
        promise.get_future();
    std::uint64_t id;
    {
        // Register BEFORE sending so a fast reply cannot race the map
        // insert; the id must be reserved and mapped atomically.
        const util::MutexLock lock(pending_mutex_);
        id = next_id_++;
        pending_[id].deliver = [&promise](MsgType t,
                                          std::vector<std::uint8_t> body) {
            promise.set_value({t, std::move(body)});
        };
    }
    util::ByteWriter w;
    FrameHeader h;
    h.type = type;
    h.request_id = id;
    h.payload_len = payload.size();
    encode_frame_header(w, h);
    w.bytes(payload.data(), payload.size());
    {
        const util::MutexLock lock(write_mutex_);
        if (!write_all(fd_, w.data().data(), w.size())) {
            transport_broken_.store(true, std::memory_order_release);
            {
                const util::MutexLock plock(pending_mutex_);
                pending_.erase(id);
            }
            transport_fail("send failed (connection closed)");
        }
    }
    auto [rtype, body] = future.get();
    if (rtype == MsgType::error) {
        util::ByteReader r(body.data(), body.size());
        const Status st = decode_status(r);
        throw solver_error(st.code, st.message);
    }
    return {rtype, std::move(body)};
}

std::pair<MsgType, std::vector<std::uint8_t>> Client::retry_call(
    MsgType type, const std::vector<std::uint8_t>& payload) {
    const RetryPolicy& rp = opt_.retry;
    for (int attempt = 0;; ++attempt) {
        try {
            return call(type, payload);
        } catch (const solver_error& e) {
            // Control calls are not known idempotent: only the explicit
            // "admission control shed this before doing anything" signal
            // is safe to retry.
            if (e.code() != ErrorCode::overloaded || !rp.retry_overloaded ||
                attempt + 1 >= rp.max_attempts)
                throw;
        }
        sleep_backoff(attempt);
    }
}

std::uint64_t Client::register_system(const opm::DescriptorSystem& sys) {
    util::ByteWriter w;
    encode(w, sys);
    const auto [type, body] = retry_call(MsgType::register_descriptor, w.data());
    util::ByteReader r(body.data(), body.size());
    return r.u64();
}

std::uint64_t Client::register_system(const opm::MultiTermSystem& sys) {
    util::ByteWriter w;
    encode(w, sys);
    const auto [type, body] = retry_call(MsgType::register_multiterm, w.data());
    util::ByteReader r(body.data(), body.size());
    return r.u64();
}

void Client::remove_system(std::uint64_t handle) {
    util::ByteWriter w;
    w.u64(handle);
    retry_call(MsgType::remove_system, w.data());
}

api::SolveResult Client::submit(std::uint64_t handle, const WireScenario& sc,
                                std::uint64_t deadline_ms) {
    const RetryPolicy& rp = opt_.retry;
    for (int attempt = 0;; ++attempt) {
        api::SolveResult res;
        if (transport_broken_.load(std::memory_order_acquire) &&
            rp.retry_transport && endpoint_ != Endpoint::none) {
            // A previous attempt (or any other call) lost the connection:
            // redial + re-handshake before spending this attempt.
            try {
                reconnect();
            } catch (...) {
                res.status = status_from_current_exception();
            }
        }
        if (res.status.ok()) res = submit_async(handle, sc, deadline_ms).get();
        if (res.status.ok()) return res;

        // Transport internal_error (flag raised by whoever saw the pipe
        // die) is retryable; a server-side internal_error is not.
        const bool transport =
            res.status.code == ErrorCode::internal_error &&
            transport_broken_.load(std::memory_order_acquire);
        const bool retryable =
            (res.status.code == ErrorCode::overloaded && rp.retry_overloaded) ||
            (transport && rp.retry_transport && endpoint_ != Endpoint::none);
        if (!retryable || attempt + 1 >= rp.max_attempts) return res;
        sleep_backoff(attempt);
    }
}

std::future<api::SolveResult> Client::submit_async(std::uint64_t handle,
                                                   const WireScenario& sc,
                                                   std::uint64_t deadline_ms) {
    auto promise = std::make_shared<std::promise<api::SolveResult>>();
    std::future<api::SolveResult> future = promise->get_future();
    submit_cb(
        handle, sc,
        [promise](api::SolveResult res) { promise->set_value(std::move(res)); },
        deadline_ms);
    return future;
}

void Client::submit_cb(std::uint64_t handle, const WireScenario& sc,
                       std::function<void(api::SolveResult)> cb,
                       std::uint64_t deadline_ms) {
    OPMSIM_REQUIRE(fd_ >= 0, "svc::Client: not connected");
    util::ByteWriter body;
    body.u64(handle);
    encode(body, sc);
    // Appended minor-1 field; a minor-0 peer negotiated it away, so the
    // deadline is silently dropped rather than sent as trailing garbage.
    if (minor_ >= 1) body.u64(deadline_ms);

    std::uint64_t id;
    {
        const util::MutexLock lock(pending_mutex_);
        id = next_id_++;
        pending_[id].deliver = [cb = std::move(cb)](
                                   MsgType type,
                                   std::vector<std::uint8_t> payload) {
            api::SolveResult res;
            try {
                util::ByteReader r(payload.data(), payload.size());
                if (type == MsgType::result) {
                    res = decode_result(r);
                } else if (type == MsgType::error) {
                    res.status = decode_status(r);
                } else {
                    res.status = {ErrorCode::internal_error,
                                  "unexpected reply type"};
                }
            } catch (...) {
                res.status = status_from_current_exception();
            }
            cb(std::move(res));
        };
    }
    util::ByteWriter w;
    FrameHeader h;
    h.type = MsgType::submit;
    h.request_id = id;
    h.payload_len = body.size();
    encode_frame_header(w, h);
    w.bytes(body.data().data(), body.size());
    bool sent;
    {
        const util::MutexLock lock(write_mutex_);
        sent = write_all(fd_, w.data().data(), w.size());
    }
    if (!sent) {
        transport_broken_.store(true, std::memory_order_release);
        // Deliver the failure outside every lock: the callback is free to
        // submit again.  Exactly-once with the receiver's fail_all_pending:
        // whoever erases the map entry delivers; the other path finds the
        // entry gone and does nothing.
        Pending orphan;
        {
            const util::MutexLock plock(pending_mutex_);
            const auto it = pending_.find(id);
            if (it == pending_.end()) return;  // receiver already failed it
            orphan = std::move(it->second);
            pending_.erase(it);
        }
        util::ByteWriter err;
        encode(err, Status{ErrorCode::internal_error,
                           "send failed (connection closed)"});
        orphan.deliver(MsgType::error, err.data());
    }
}

void Client::save_caches(std::uint64_t handle, const std::string& path) {
    util::ByteWriter w;
    w.u64(handle);
    w.str(path);
    retry_call(MsgType::save_caches, w.data());
}

void Client::load_caches(std::uint64_t handle, const std::string& path) {
    util::ByteWriter w;
    w.u64(handle);
    w.str(path);
    retry_call(MsgType::load_caches, w.data());
}

ServiceStats Client::stats() {
    const auto [type, body] = retry_call(MsgType::stats, {});
    util::ByteReader r(body.data(), body.size());
    return decode_service_stats(r);
}

void Client::ping() { retry_call(MsgType::ping, {}); }

void Client::shutdown_server() { retry_call(MsgType::shutdown, {}); }

} // namespace opmsim::svc
