#include "svc/client.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "util/posix_error.hpp"

namespace opmsim::svc {

namespace {

constexpr std::size_t kMaxReplyBytes = std::size_t{1} << 28;

bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t k = ::read(fd, buf + got, n - got);
        if (k > 0) {
            got += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
    std::size_t put = 0;
    while (put < n) {
        const ssize_t k = ::write(fd, buf + put, n - put);
        if (k > 0) {
            put += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

[[noreturn]] void transport_fail(const std::string& what) {
    throw solver_error(ErrorCode::internal_error, "svc::Client: " + what);
}

} // namespace

Client::~Client() { close(); }

void Client::connect_unix(const std::string& path) {
    OPMSIM_REQUIRE(fd_ < 0, "svc::Client: already connected");
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) transport_fail(std::string("socket: ") + util::errno_message(errno));
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    OPMSIM_REQUIRE(path.size() < sizeof addr.sun_path,
                   "svc::Client: socket path too long");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
        const std::string why = util::errno_message(errno);
        ::close(fd);
        transport_fail("connect(" + path + "): " + why);
    }
    fd_ = fd;
    handshake();
}

void Client::connect_tcp(int port) {
    OPMSIM_REQUIRE(fd_ < 0, "svc::Client: already connected");
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) transport_fail(std::string("socket: ") + util::errno_message(errno));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
        0) {
        const std::string why = util::errno_message(errno);
        ::close(fd);
        transport_fail("connect(127.0.0.1:" + std::to_string(port) +
                       "): " + why);
    }
    fd_ = fd;
    handshake();
}

void Client::handshake() {
    receiver_ = std::thread([this] { receive_loop(); });
    const auto [type, payload] = call(MsgType::hello, {});
    if (type != MsgType::hello_ack) transport_fail("handshake rejected");
    util::ByteReader r(payload.data(), payload.size());
    const std::uint16_t major = r.u16();
    if (major != kProtoMajor)
        transport_fail("server speaks protocol major " + std::to_string(major));
    minor_ = r.u16();
}

void Client::close() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    if (receiver_.joinable()) receiver_.join();
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void Client::fail_all_pending(const std::string& why) {
    std::map<std::uint64_t, Pending> orphans;
    {
        const util::MutexLock lock(pending_mutex_);
        orphans.swap(pending_);
    }
    util::ByteWriter w;
    encode(w, Status{ErrorCode::internal_error, why});
    for (auto& [id, p] : orphans) p.deliver(MsgType::error, w.data());
}

void Client::receive_loop() {
    std::vector<std::uint8_t> header(kFrameHeaderBytes);
    for (;;) {
        if (!read_exact(fd_, header.data(), header.size())) break;
        FrameHeader hdr;
        try {
            hdr = decode_frame_header(header.data(), header.size(),
                                      kMaxReplyBytes);
        } catch (...) {
            break;  // framing lost; the connection is unusable
        }
        std::vector<std::uint8_t> payload(hdr.payload_len);
        if (!read_exact(fd_, payload.data(), payload.size())) break;
        Pending p;
        {
            const util::MutexLock lock(pending_mutex_);
            const auto it = pending_.find(hdr.request_id);
            if (it == pending_.end()) continue;  // stray reply: drop
            p = std::move(it->second);
            pending_.erase(it);
        }
        p.deliver(hdr.type, std::move(payload));
    }
    fail_all_pending("connection closed");
}

std::uint64_t Client::send_request(MsgType type,
                                   const std::vector<std::uint8_t>& payload) {
    OPMSIM_REQUIRE(fd_ >= 0, "svc::Client: not connected");
    std::uint64_t id;
    {
        const util::MutexLock lock(pending_mutex_);
        id = next_id_++;
    }
    util::ByteWriter w;
    FrameHeader h;
    h.type = type;
    h.request_id = id;
    h.payload_len = payload.size();
    encode_frame_header(w, h);
    w.bytes(payload.data(), payload.size());
    const util::MutexLock lock(write_mutex_);
    if (!write_all(fd_, w.data().data(), w.size()))
        transport_fail("send failed (connection closed)");
    return id;
}

std::pair<MsgType, std::vector<std::uint8_t>> Client::call(
    MsgType type, const std::vector<std::uint8_t>& payload) {
    std::promise<std::pair<MsgType, std::vector<std::uint8_t>>> promise;
    std::future<std::pair<MsgType, std::vector<std::uint8_t>>> future =
        promise.get_future();
    std::uint64_t id;
    {
        // Register BEFORE sending so a fast reply cannot race the map
        // insert; the id must be reserved and mapped atomically.
        const util::MutexLock lock(pending_mutex_);
        id = next_id_++;
        pending_[id].deliver = [&promise](MsgType t,
                                          std::vector<std::uint8_t> body) {
            promise.set_value({t, std::move(body)});
        };
    }
    util::ByteWriter w;
    FrameHeader h;
    h.type = type;
    h.request_id = id;
    h.payload_len = payload.size();
    encode_frame_header(w, h);
    w.bytes(payload.data(), payload.size());
    {
        const util::MutexLock lock(write_mutex_);
        if (!write_all(fd_, w.data().data(), w.size())) {
            {
                const util::MutexLock plock(pending_mutex_);
                pending_.erase(id);
            }
            transport_fail("send failed (connection closed)");
        }
    }
    auto [rtype, body] = future.get();
    if (rtype == MsgType::error) {
        util::ByteReader r(body.data(), body.size());
        const Status st = decode_status(r);
        throw solver_error(st.code, st.message);
    }
    return {rtype, std::move(body)};
}

std::uint64_t Client::register_system(const opm::DescriptorSystem& sys) {
    util::ByteWriter w;
    encode(w, sys);
    const auto [type, body] = call(MsgType::register_descriptor, w.data());
    util::ByteReader r(body.data(), body.size());
    return r.u64();
}

std::uint64_t Client::register_system(const opm::MultiTermSystem& sys) {
    util::ByteWriter w;
    encode(w, sys);
    const auto [type, body] = call(MsgType::register_multiterm, w.data());
    util::ByteReader r(body.data(), body.size());
    return r.u64();
}

void Client::remove_system(std::uint64_t handle) {
    util::ByteWriter w;
    w.u64(handle);
    call(MsgType::remove_system, w.data());
}

api::SolveResult Client::submit(std::uint64_t handle, const WireScenario& sc) {
    return submit_async(handle, sc).get();
}

std::future<api::SolveResult> Client::submit_async(std::uint64_t handle,
                                                   const WireScenario& sc) {
    auto promise = std::make_shared<std::promise<api::SolveResult>>();
    std::future<api::SolveResult> future = promise->get_future();
    submit_cb(handle, sc, [promise](api::SolveResult res) {
        promise->set_value(std::move(res));
    });
    return future;
}

void Client::submit_cb(std::uint64_t handle, const WireScenario& sc,
                       std::function<void(api::SolveResult)> cb) {
    OPMSIM_REQUIRE(fd_ >= 0, "svc::Client: not connected");
    util::ByteWriter body;
    body.u64(handle);
    encode(body, sc);

    std::uint64_t id;
    {
        const util::MutexLock lock(pending_mutex_);
        id = next_id_++;
        pending_[id].deliver = [cb = std::move(cb)](
                                   MsgType type,
                                   std::vector<std::uint8_t> payload) {
            api::SolveResult res;
            try {
                util::ByteReader r(payload.data(), payload.size());
                if (type == MsgType::result) {
                    res = decode_result(r);
                } else if (type == MsgType::error) {
                    res.status = decode_status(r);
                } else {
                    res.status = {ErrorCode::internal_error,
                                  "unexpected reply type"};
                }
            } catch (...) {
                res.status = status_from_current_exception();
            }
            cb(std::move(res));
        };
    }
    util::ByteWriter w;
    FrameHeader h;
    h.type = MsgType::submit;
    h.request_id = id;
    h.payload_len = body.size();
    encode_frame_header(w, h);
    w.bytes(body.data().data(), body.size());
    bool sent;
    {
        const util::MutexLock lock(write_mutex_);
        sent = write_all(fd_, w.data().data(), w.size());
    }
    if (!sent) {
        // Deliver the failure outside every lock: the callback is free to
        // submit again.
        Pending orphan;
        {
            const util::MutexLock plock(pending_mutex_);
            const auto it = pending_.find(id);
            if (it == pending_.end()) return;  // receiver already failed it
            orphan = std::move(it->second);
            pending_.erase(it);
        }
        util::ByteWriter err;
        encode(err, Status{ErrorCode::internal_error,
                           "send failed (connection closed)"});
        orphan.deliver(MsgType::error, err.data());
    }
}

void Client::save_caches(std::uint64_t handle, const std::string& path) {
    util::ByteWriter w;
    w.u64(handle);
    w.str(path);
    call(MsgType::save_caches, w.data());
}

void Client::load_caches(std::uint64_t handle, const std::string& path) {
    util::ByteWriter w;
    w.u64(handle);
    w.str(path);
    call(MsgType::load_caches, w.data());
}

ServiceStats Client::stats() {
    const auto [type, body] = call(MsgType::stats, {});
    util::ByteReader r(body.data(), body.size());
    return decode_service_stats(r);
}

void Client::ping() { call(MsgType::ping, {}); }

void Client::shutdown_server() { call(MsgType::shutdown, {}); }

} // namespace opmsim::svc
