#pragma once
/// \file client.hpp
/// \brief Client library for the opmsim scenario daemon.
///
/// A Client owns one connection to an svc::Server and exposes the wire
/// protocol as typed calls.  A background receive thread demultiplexes
/// reply frames by request_id, so requests may be pipelined: the async
/// submit paths (submit_async / submit_cb) let a caller keep many
/// scenarios in flight — which is exactly what makes the daemon's
/// micro-batching window fill up — while the blocking helpers stay
/// one-liner convenient.
///
/// Failure model: a reply carrying MsgType::error is rethrown in the
/// caller's thread as solver_error with the server's taxonomy code.  A
/// failed *scenario* is not an error frame — Engine::run_batch reports
/// failure as data, so submit() returns a SolveResult whose `status`
/// carries the code and the transport stays healthy.  A broken connection
/// fails every pending call with ErrorCode::internal_error.

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "svc/wire.hpp"
#include "util/annotations.hpp"

namespace opmsim::svc {

class Client {
public:
    Client() = default;
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connect to a Unix-domain socket and perform the hello handshake.
    void connect_unix(const std::string& path);
    /// Connect to a loopback TCP port and perform the hello handshake.
    void connect_tcp(int port);

    [[nodiscard]] bool connected() const { return fd_ >= 0; }
    /// The minor protocol version negotiated by the handshake.
    [[nodiscard]] std::uint16_t negotiated_minor() const { return minor_; }

    /// Register a system with the daemon's Engine; returns the wire handle.
    std::uint64_t register_system(const opm::DescriptorSystem& sys);
    std::uint64_t register_system(const opm::MultiTermSystem& sys);
    void remove_system(std::uint64_t handle);

    /// Run one scenario (blocking).  Failure — whether the scenario's or
    /// the transport's — comes back as data in the result's `status`, so a
    /// load driver never needs try/catch around its request loop.
    api::SolveResult submit(std::uint64_t handle, const WireScenario& sc);
    /// Pipelined submit; same failure-as-data contract as submit().
    std::future<api::SolveResult> submit_async(std::uint64_t handle,
                                               const WireScenario& sc);
    /// Callback submit for open-loop load generation: `cb` runs on the
    /// receive thread the moment the result frame arrives (keep it cheap —
    /// timestamping and queueing, not processing).  Transport failures
    /// deliver a result with status.code == internal_error.
    void submit_cb(std::uint64_t handle, const WireScenario& sc,
                   std::function<void(api::SolveResult)> cb);

    /// Snapshot the handle's warm caches to a file on the DAEMON's host.
    void save_caches(std::uint64_t handle, const std::string& path);
    /// Merge a snapshot into the handle's caches (fingerprint-verified).
    void load_caches(std::uint64_t handle, const std::string& path);

    [[nodiscard]] ServiceStats stats();
    void ping();
    /// Ask the daemon to stop accepting work and exit its dispatch loop.
    void shutdown_server();

    void close();

private:
    struct Pending {
        std::function<void(MsgType, std::vector<std::uint8_t>)> deliver;
    };

    void handshake();
    void receive_loop();
    std::uint64_t send_request(MsgType type,
                               const std::vector<std::uint8_t>& payload);
    /// Send and wait for the reply frame; throws on error frames.
    std::pair<MsgType, std::vector<std::uint8_t>> call(
        MsgType type, const std::vector<std::uint8_t>& payload);
    void fail_all_pending(const std::string& why);

    /// Socket fd.  Written only while single-threaded (connect_* before the
    /// receiver thread spawns; close() after it joins), so it needs no
    /// capability — the receiver and senders only ever read it.
    int fd_ = -1;
    std::uint16_t minor_ = 0;  ///< set once by handshake(), then read-only
    std::thread receiver_;
    util::Mutex write_mutex_;  ///< serializes whole-frame socket writes
    util::Mutex pending_mutex_;
    std::map<std::uint64_t, Pending> pending_ GUARDED_BY(pending_mutex_);
    std::uint64_t next_id_ GUARDED_BY(pending_mutex_) = 1;
};

} // namespace opmsim::svc
