#pragma once
/// \file client.hpp
/// \brief Client library for the opmsim scenario daemon.
///
/// A Client owns one connection to an svc::Server and exposes the wire
/// protocol as typed calls.  A background receive thread demultiplexes
/// reply frames by request_id, so requests may be pipelined: the async
/// submit paths (submit_async / submit_cb) let a caller keep many
/// scenarios in flight — which is exactly what makes the daemon's
/// micro-batching window fill up — while the blocking helpers stay
/// one-liner convenient.
///
/// Failure model: a reply carrying MsgType::error is rethrown in the
/// caller's thread as solver_error with the server's taxonomy code.  A
/// failed *scenario* is not an error frame — Engine::run_batch reports
/// failure as data, so submit() returns a SolveResult whose `status`
/// carries the code and the transport stays healthy.  A broken connection
/// fails every pending call with ErrorCode::internal_error — each
/// registered callback exactly once, never dropped, never double-fired.
///
/// Survivability (PR 10): ClientOptions carries a RetryPolicy.  The
/// blocking submit() — idempotent by construction: the daemon recomputes,
/// it does not mutate — retries on `overloaded` (admission-control shed)
/// and on transport failure, reconnecting + re-handshaking automatically
/// with deterministic seeded exponential backoff.  Control calls are NOT
/// known idempotent, so they retry only on `overloaded`, where the server
/// guarantees nothing happened.  Connect/handshake are bounded by
/// `connect_timeout` so a hung daemon cannot block a caller forever.
///
/// Threading contract: submit_cb/submit_async/call may be issued from any
/// thread, but connect/close/reconnect — and therefore blocking submit()
/// retries, which may reconnect — assume ONE controller thread (the same
/// contract as connect/close always had).  Callbacks must not call
/// close() (the receive thread cannot join itself).

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "svc/wire.hpp"
#include "util/annotations.hpp"

namespace opmsim::svc {

/// Deterministic retry schedule for the client's safe-to-retry paths.
/// Attempt k (0-based) sleeps `base_backoff * multiplier^k * (1 + j)`
/// seconds before retrying, where j ~ U[0, 0.5) from a jitter_seed-seeded
/// generator — reproducible in tests, decorrelated in a fleet.
struct RetryPolicy {
    int max_attempts = 1;        ///< total tries (1 = no retry)
    double base_backoff = 0.01;  ///< first retry delay, seconds
    double multiplier = 2.0;     ///< exponential growth per attempt
    std::uint64_t jitter_seed = 0;
    bool retry_overloaded = true;  ///< retry admission-control sheds
    bool retry_transport = true;   ///< reconnect + retry submits on broken pipes
};

struct ClientOptions {
    RetryPolicy retry;
    /// Budget for connect() + the hello handshake, seconds (0 disables):
    /// a hung or drained daemon fails fast instead of blocking forever.
    double connect_timeout = 5.0;
    /// Hard cap on a reply frame's payload — mirrors the server-side
    /// bound, so a corrupt length field from a bad server cannot drive an
    /// absurd client-side allocation.
    std::size_t max_frame_bytes = std::size_t{1} << 28;
};

class Client {
public:
    Client() = default;
    explicit Client(ClientOptions opt);
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    /// Connect to a Unix-domain socket and perform the hello handshake.
    void connect_unix(const std::string& path);
    /// Connect to a loopback TCP port and perform the hello handshake.
    void connect_tcp(int port);

    [[nodiscard]] bool connected() const { return fd_ >= 0; }
    /// The minor protocol version negotiated by the handshake.
    [[nodiscard]] std::uint16_t negotiated_minor() const { return minor_; }
    /// Automatic reconnects performed by the retry machinery so far.
    [[nodiscard]] std::uint64_t reconnects() const {
        return reconnects_.load(std::memory_order_relaxed);
    }

    /// Register a system with the daemon's Engine; returns the wire handle.
    std::uint64_t register_system(const opm::DescriptorSystem& sys);
    std::uint64_t register_system(const opm::MultiTermSystem& sys);
    void remove_system(std::uint64_t handle);

    /// Run one scenario (blocking).  Failure — whether the scenario's or
    /// the transport's — comes back as data in the result's `status`, so a
    /// load driver never needs try/catch around its request loop.  This is
    /// the retrying path: `overloaded` sheds and transport failures are
    /// retried per ClientOptions::retry (submits are idempotent).
    /// `deadline_ms` > 0 travels on the wire (negotiated minor >= 1) and
    /// bounds the server-side solve; past it the result comes back as
    /// deadline_exceeded data.
    api::SolveResult submit(std::uint64_t handle, const WireScenario& sc,
                            std::uint64_t deadline_ms = 0);
    /// Pipelined submit; same failure-as-data contract as submit(), but
    /// single-shot — the retry loop lives in blocking submit() only.
    std::future<api::SolveResult> submit_async(std::uint64_t handle,
                                               const WireScenario& sc,
                                               std::uint64_t deadline_ms = 0);
    /// Callback submit for open-loop load generation: `cb` runs on the
    /// receive thread the moment the result frame arrives (keep it cheap —
    /// timestamping and queueing, not processing).  Transport failures
    /// deliver a result with status.code == internal_error.
    void submit_cb(std::uint64_t handle, const WireScenario& sc,
                   std::function<void(api::SolveResult)> cb,
                   std::uint64_t deadline_ms = 0);

    /// Snapshot the handle's warm caches to a file on the DAEMON's host.
    void save_caches(std::uint64_t handle, const std::string& path);
    /// Merge a snapshot into the handle's caches (fingerprint-verified).
    void load_caches(std::uint64_t handle, const std::string& path);

    [[nodiscard]] ServiceStats stats();
    void ping();
    /// Ask the daemon to stop accepting work and exit its dispatch loop.
    void shutdown_server();

    void close();

private:
    struct Pending {
        std::function<void(MsgType, std::vector<std::uint8_t>)> deliver;
    };

    enum class Endpoint : std::uint8_t { none, unix_sock, tcp };

    /// Dial the recorded endpoint and handshake (the shared body of
    /// connect_unix/connect_tcp/reconnect).
    void dial(bool reconnect);
    void handshake(bool reconnect);
    /// Tear down and re-dial the recorded endpoint with the reconnect
    /// flag set; throws when the daemon is unreachable.
    void reconnect();
    void receive_loop();
    /// Send and wait for the reply frame; throws on error frames.
    std::pair<MsgType, std::vector<std::uint8_t>> call(
        MsgType type, const std::vector<std::uint8_t>& payload);
    /// call() with the RetryPolicy's overloaded-only retry (control calls
    /// are not known idempotent, so transport failures propagate).
    std::pair<MsgType, std::vector<std::uint8_t>> retry_call(
        MsgType type, const std::vector<std::uint8_t>& payload);
    void fail_all_pending(const std::string& why);
    /// Sleep the deterministic exponential-backoff delay for `attempt`.
    void sleep_backoff(int attempt);

    /// Socket fd.  Written only while single-threaded (connect/dial before
    /// the receiver thread spawns; close() after it joins — controller
    /// thread contract), so it needs no capability — the receiver and
    /// senders only ever read it.
    int fd_ = -1;
    std::uint16_t minor_ = 0;  ///< (re)set by each handshake / close()
    std::thread receiver_;
    ClientOptions opt_;
    Endpoint endpoint_ = Endpoint::none;  ///< recorded by connect_* for redial
    std::string unix_path_;
    int tcp_port_ = 0;
    /// Set (release) by whoever discovers the connection died — the
    /// receiver's exit path, a failed send — and read (acquire) by the
    /// retry loop to distinguish transport internal_error from a
    /// server-side one.  Cleared by a successful reconnect.
    std::atomic<bool> transport_broken_{false};
    std::atomic<std::uint64_t> reconnects_{0};
    util::Mutex write_mutex_;  ///< serializes whole-frame socket writes
    util::Mutex pending_mutex_;
    std::map<std::uint64_t, Pending> pending_ GUARDED_BY(pending_mutex_);
    std::uint64_t next_id_ GUARDED_BY(pending_mutex_) = 1;
    /// Backoff jitter stream; its own mutex so concurrent blocking
    /// submits from different threads stay race-free.
    util::Mutex retry_mutex_;
    std::mt19937_64 jitter_rng_ GUARDED_BY(retry_mutex_){0};
};

} // namespace opmsim::svc
