#include "svc/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <utility>

#include "util/posix_error.hpp"

namespace opmsim::svc {

namespace {

/// Blocking full-buffer read; false on EOF/error (connection gone).
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t k = ::read(fd, buf + got, n - got);
        if (k > 0) {
            got += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
    std::size_t put = 0;
    while (put < n) {
        const ssize_t k = ::write(fd, buf + put, n - put);
        if (k > 0) {
            put += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

[[noreturn]] void socket_fail(const std::string& what) {
    throw solver_error(ErrorCode::internal_error,
                       "svc::Server: " + what + ": " + util::errno_message(errno));
}

} // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {
    if (opt_.max_batch < 1) opt_.max_batch = 1;
    engine_.set_cache_capacity(opt_.cache_capacity);
}

Server::~Server() { stop(); }

void Server::start() {
    {
        const util::MutexLock lock(queue_mutex_);
        OPMSIM_REQUIRE(!started_, "svc::Server: start() called twice");
    }
    // Build the listener in a local fd and publish it under listener_mutex_
    // only once it is fully set up: accept_loop() must never observe a
    // half-configured socket, and a failure here must not leak the fd.
    int fd = -1;
    const auto fail = [&fd](const std::string& what) {
        if (fd >= 0) ::close(fd);
        socket_fail(what);
    };
    if (!opt_.socket_path.empty()) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) fail("socket(AF_UNIX)");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        OPMSIM_REQUIRE(opt_.socket_path.size() < sizeof addr.sun_path,
                       "svc::Server: socket path too long");
        std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
                    opt_.socket_path.size() + 1);
        ::unlink(opt_.socket_path.c_str());  // stale socket from a crash
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0)
            fail("bind(" + opt_.socket_path + ")");
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) fail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0)
            fail("bind(127.0.0.1:" + std::to_string(opt_.tcp_port) + ")");
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
        port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    if (::listen(fd, 64) != 0) fail("listen");
    {
        const util::MutexLock lock(listener_mutex_);
        listen_fd_ = fd;
    }
    {
        const util::MutexLock lock(queue_mutex_);
        started_ = true;
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

void Server::close_listener() {
    // Serialized: stop() and the dispatcher's client-shutdown path may
    // both get here, and the second caller must see -1 — shutting down an
    // already-closed (possibly kernel-reused) fd number would hit an
    // unrelated descriptor.
    const util::MutexLock lock(listener_mutex_);
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void Server::stop() {
    {
        const util::MutexLock lock(queue_mutex_);
        if (stopping_ && !started_) return;
        stopping_ = true;
    }
    queue_cv_.notify_all();
    close_listener();
    {
        const util::MutexLock lock(conn_mutex_);
        for (const std::shared_ptr<Connection>& c : connections_)
            if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    if (dispatch_thread_.joinable()) dispatch_thread_.join();
    std::vector<std::shared_ptr<Connection>> conns;
    {
        const util::MutexLock lock(conn_mutex_);
        conns.swap(connections_);
    }
    for (const std::shared_ptr<Connection>& c : conns) {
        if (c->reader.joinable()) c->reader.join();
        if (c->fd >= 0) ::close(c->fd);
    }
    if (!opt_.socket_path.empty()) ::unlink(opt_.socket_path.c_str());
    {
        const util::MutexLock lock(queue_mutex_);
        started_ = false;
    }
    {
        const util::MutexLock lock(shutdown_mutex_);
        shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
}

void Server::wait_for_shutdown() {
    util::MutexLock lock(shutdown_mutex_);
    while (!shutdown_requested_) shutdown_cv_.wait(lock);
}

ServiceStats Server::stats() const {
    const util::MutexLock lock(stats_mutex_);
    return stats_;
}

void Server::accept_loop() {
    for (;;) {
        int lfd;
        {
            const util::MutexLock lock(listener_mutex_);
            lfd = listen_fd_;
        }
        if (lfd < 0) return;  // close_listener() already ran
        // accept() on the snapshot, not under the lock: close_listener()
        // must be able to shut the socket down to wake this blocking call.
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // listener closed: stop() is in progress
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            const util::MutexLock lock(conn_mutex_);
            connections_.push_back(conn);
        }
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
    }
}

void Server::send_frame(Connection& conn, MsgType type,
                        std::uint64_t request_id,
                        const std::vector<std::uint8_t>& payload) {
    util::ByteWriter w;
    FrameHeader h;
    h.type = type;
    h.request_id = request_id;
    h.payload_len = payload.size();
    encode_frame_header(w, h);
    w.bytes(payload.data(), payload.size());
    const util::MutexLock lock(conn.write_mutex);
    write_all(conn.fd, w.data().data(), w.size());
}

void Server::send_error(Connection& conn, std::uint64_t request_id,
                        const Status& st) {
    util::ByteWriter w;
    encode(w, st);
    send_frame(conn, MsgType::error, request_id, w.data());
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
    std::vector<std::uint8_t> header(kFrameHeaderBytes);
    for (;;) {
        if (!read_exact(conn->fd, header.data(), header.size())) return;
        FrameHeader hdr;
        try {
            hdr = decode_frame_header(header.data(), header.size(),
                                      opt_.max_frame_bytes);
        } catch (...) {
            // A bad header means framing is lost; report and drop the
            // connection (we cannot resynchronize a byte stream).
            send_error(*conn, 0, status_from_current_exception());
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
        }
        std::vector<std::uint8_t> payload(hdr.payload_len);
        if (!read_exact(conn->fd, payload.data(), payload.size())) return;

        Job job;
        job.conn = conn;
        job.hdr = hdr;
        if (hdr.type == MsgType::submit) {
            // Decode on the reader thread: malformed submissions are
            // rejected here and never occupy the dispatcher.
            try {
                util::ByteReader r(payload.data(), payload.size());
                job.handle = r.u64();
                job.scenario = decode_scenario(r);
            } catch (...) {
                send_error(*conn, hdr.request_id,
                           status_from_current_exception());
                continue;
            }
        } else if (hdr.type == MsgType::ping) {
            send_frame(*conn, MsgType::pong, hdr.request_id, {});
            continue;
        } else {
            job.payload = std::move(payload);
        }
        {
            const util::MutexLock lock(queue_mutex_);
            if (stopping_) return;
            queue_.push_back(std::move(job));
        }
        queue_cv_.notify_one();
    }
}

void Server::dispatch_loop() {
    for (;;) {
        std::vector<Job> submits;
        Job control;
        bool have_control = false;
        {
            util::MutexLock lock(queue_mutex_);
            while (!stopping_ && queue_.empty()) queue_cv_.wait(lock);
            if (stopping_ && queue_.empty()) return;
            if (queue_.front().hdr.type != MsgType::submit) {
                control = std::move(queue_.front());
                queue_.pop_front();
                have_control = true;
            } else {
                // Micro-batching: hold the window open from the FIRST
                // submit, absorbing every further submit that arrives —
                // but never across a control message (the barrier).
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(opt_.batch_window));
                for (;;) {
                    while (!queue_.empty() &&
                           queue_.front().hdr.type == MsgType::submit &&
                           submits.size() <
                               static_cast<std::size_t>(opt_.max_batch)) {
                        submits.push_back(std::move(queue_.front()));
                        queue_.pop_front();
                    }
                    if (stopping_ ||
                        submits.size() >=
                            static_cast<std::size_t>(opt_.max_batch) ||
                        (!queue_.empty() &&
                         queue_.front().hdr.type != MsgType::submit))
                        break;
                    if (queue_cv_.wait_until(lock, deadline) ==
                        std::cv_status::timeout) {
                        // Window closed; absorb whatever raced in before
                        // the timeout fired.
                        while (!queue_.empty() &&
                               queue_.front().hdr.type == MsgType::submit &&
                               submits.size() <
                                   static_cast<std::size_t>(opt_.max_batch)) {
                            submits.push_back(std::move(queue_.front()));
                            queue_.pop_front();
                        }
                        break;
                    }
                }
            }
        }
        if (have_control) {
            handle_control(control);
            if (control.hdr.type == MsgType::shutdown) return;
        } else if (!submits.empty()) {
            dispatch_submits(std::move(submits));
        }
    }
}

void Server::dispatch_submits(std::vector<Job> batch) {
    // Partition by system handle, preserving arrival order within each
    // partition; each partition is ONE Engine::run_batch call, so
    // batch-compatible scenarios from different clients share one
    // multi-RHS sweep and incompatible ones still share the handle's
    // warm caches.
    std::map<std::uint64_t, std::vector<std::size_t>> by_handle;
    for (std::size_t i = 0; i < batch.size(); ++i)
        by_handle[batch[i].handle].push_back(i);

    for (const auto& [handle, members] : by_handle) {
        std::vector<api::Scenario> scenarios;
        scenarios.reserve(members.size());
        bool materialized = true;
        try {
            for (const std::size_t i : members)
                scenarios.push_back(batch[i].scenario.to_scenario());
        } catch (...) {
            // Source instantiation failed (bad factory parameters):
            // reject the whole partition member-by-member below.
            materialized = false;
        }

        std::vector<api::SolveResult> results;
        if (materialized) {
            try {
                api::Engine::BatchOptions bopt;
                bopt.workers = opt_.batch_workers;
                results = engine_.run_batch(api::SystemHandle{handle},
                                            scenarios, bopt);
            } catch (...) {
                // Bad handle (or Engine-level failure): every member gets
                // the same classified error.
                const Status st = status_from_current_exception();
                for (const std::size_t i : members)
                    send_error(*batch[i].conn, batch[i].hdr.request_id, st);
                continue;
            }
        } else {
            // Re-run members individually so healthy ones still complete.
            results.reserve(members.size());
            for (const std::size_t i : members) {
                api::SolveResult res;
                try {
                    res = engine_.run(api::SystemHandle{handle},
                                      batch[i].scenario.to_scenario());
                } catch (...) {
                    res.status = status_from_current_exception();
                }
                results.push_back(std::move(res));
            }
        }

        for (std::size_t k = 0; k < members.size(); ++k) {
            const Job& job = batch[members[k]];
            util::ByteWriter w;
            encode(w, results[k]);
            send_frame(*job.conn, MsgType::result, job.hdr.request_id,
                       w.data());
        }

        const util::MutexLock lock(stats_mutex_);
        stats_.requests += members.size();
        stats_.batches += 1;
        if (members.size() >= 2) stats_.coalesced += members.size();
        if (members.size() > stats_.largest_batch)
            stats_.largest_batch = members.size();
    }
}

void Server::handle_control(Job& job) {
    Connection& conn = *job.conn;
    const std::uint64_t id = job.hdr.request_id;
    try {
        util::ByteReader r(job.payload.data(), job.payload.size());
        switch (job.hdr.type) {
        case MsgType::hello: {
            util::ByteWriter w;
            w.u16(kProtoMajor);
            w.u16(std::min(kProtoMinor, job.hdr.ver_minor));
            send_frame(conn, MsgType::hello_ack, id, w.data());
            break;
        }
        case MsgType::register_descriptor: {
            const api::SystemHandle h = engine_.add_system(decode_descriptor(r));
            util::ByteWriter w;
            w.u64(h.id);
            send_frame(conn, MsgType::ok, id, w.data());
            break;
        }
        case MsgType::register_multiterm: {
            const api::SystemHandle h = engine_.add_system(decode_multiterm(r));
            util::ByteWriter w;
            w.u64(h.id);
            send_frame(conn, MsgType::ok, id, w.data());
            break;
        }
        case MsgType::remove_system: {
            engine_.remove_system(api::SystemHandle{r.u64()});
            send_frame(conn, MsgType::ok, id, {});
            break;
        }
        case MsgType::save_caches: {
            const std::uint64_t handle = r.u64();
            const std::string path = r.str();
            engine_.caches(api::SystemHandle{handle}).save(path);
            send_frame(conn, MsgType::ok, id, {});
            break;
        }
        case MsgType::load_caches: {
            const std::uint64_t handle = r.u64();
            const std::string path = r.str();
            engine_.caches(api::SystemHandle{handle}).load(path);
            send_frame(conn, MsgType::ok, id, {});
            break;
        }
        case MsgType::stats: {
            util::ByteWriter w;
            encode(w, stats());
            send_frame(conn, MsgType::stats_reply, id, w.data());
            break;
        }
        case MsgType::shutdown: {
            send_frame(conn, MsgType::ok, id, {});
            {
                const util::MutexLock lock(queue_mutex_);
                stopping_ = true;
            }
            queue_cv_.notify_all();
            close_listener();
            {
                const util::MutexLock lock(shutdown_mutex_);
                shutdown_requested_ = true;
            }
            shutdown_cv_.notify_all();
            break;
        }
        default:
            send_error(conn, id,
                       {ErrorCode::invalid_scenario,
                        "message type not valid as a request"});
            break;
        }
    } catch (...) {
        send_error(conn, id, status_from_current_exception());
    }
}

} // namespace opmsim::svc
