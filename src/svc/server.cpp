#include "svc/server.hpp"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <sys/time.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <map>
#include <utility>

#include "util/fault_inject.hpp"
#include "util/posix_error.hpp"

namespace opmsim::svc {

namespace {

/// Blocking full-buffer read; false on EOF/error (connection gone).
bool read_exact(int fd, std::uint8_t* buf, std::size_t n) {
    std::size_t got = 0;
    while (got < n) {
        const ssize_t k = ::read(fd, buf + got, n - got);
        if (k > 0) {
            got += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

bool write_all(int fd, const std::uint8_t* buf, std::size_t n) {
    std::size_t put = 0;
    while (put < n) {
        // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as
        // EPIPE (we drop the connection), not as a process-killing SIGPIPE.
        const ssize_t k = ::send(fd, buf + put, n - put, MSG_NOSIGNAL);
        if (k > 0) {
            put += static_cast<std::size_t>(k);
        } else if (k < 0 && errno == EINTR) {
            continue;
        } else {
            return false;
        }
    }
    return true;
}

[[noreturn]] void socket_fail(const std::string& what) {
    throw solver_error(ErrorCode::internal_error,
                       "svc::Server: " + what + ": " + util::errno_message(errno));
}

/// How long fault::Site::dispatch_stall freezes the dispatcher per fire —
/// long enough for a test's reader threads to pile the queue up behind it.
constexpr auto kDispatchStall = std::chrono::milliseconds(50);

} // namespace

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {
    if (opt_.max_batch < 1) opt_.max_batch = 1;
    engine_.set_cache_capacity(opt_.cache_capacity);
}

Server::~Server() { stop(); }

void Server::start() {
    {
        const util::MutexLock lock(queue_mutex_);
        OPMSIM_REQUIRE(!started_, "svc::Server: start() called twice");
    }
    // Build the listener in a local fd and publish it under listener_mutex_
    // only once it is fully set up: accept_loop() must never observe a
    // half-configured socket, and a failure here must not leak the fd.
    int fd = -1;
    const auto fail = [&fd](const std::string& what) {
        if (fd >= 0) ::close(fd);
        socket_fail(what);
    };
    if (!opt_.socket_path.empty()) {
        fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) fail("socket(AF_UNIX)");
        sockaddr_un addr{};
        addr.sun_family = AF_UNIX;
        OPMSIM_REQUIRE(opt_.socket_path.size() < sizeof addr.sun_path,
                       "svc::Server: socket path too long");
        std::memcpy(addr.sun_path, opt_.socket_path.c_str(),
                    opt_.socket_path.size() + 1);
        ::unlink(opt_.socket_path.c_str());  // stale socket from a crash
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0)
            fail("bind(" + opt_.socket_path + ")");
    } else {
        fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) fail("socket(AF_INET)");
        const int one = 1;
        ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(static_cast<std::uint16_t>(opt_.tcp_port));
        if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
            0)
            fail("bind(127.0.0.1:" + std::to_string(opt_.tcp_port) + ")");
        sockaddr_in bound{};
        socklen_t len = sizeof bound;
        ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
        port_ = static_cast<int>(ntohs(bound.sin_port));
    }
    if (::listen(fd, 64) != 0) fail("listen");
    {
        const util::MutexLock lock(listener_mutex_);
        listen_fd_ = fd;
    }
    {
        const util::MutexLock lock(queue_mutex_);
        started_ = true;
        stopping_ = false;
        draining_ = false;
    }
    accept_thread_ = std::thread([this] { accept_loop(); });
    dispatch_thread_ = std::thread([this] { dispatch_loop(); });
}

void Server::close_listener() {
    // Serialized: stop() and the dispatcher's client-shutdown path may
    // both get here, and the second caller must see -1 — shutting down an
    // already-closed (possibly kernel-reused) fd number would hit an
    // unrelated descriptor.
    const util::MutexLock lock(listener_mutex_);
    if (listen_fd_ >= 0) {
        ::shutdown(listen_fd_, SHUT_RDWR);
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
}

void Server::stop() {
    {
        const util::MutexLock lock(queue_mutex_);
        if (stopping_ && !started_) return;
        stopping_ = true;
    }
    queue_cv_.notify_all();
    close_listener();
    {
        const util::MutexLock lock(conn_mutex_);
        for (const std::shared_ptr<Connection>& c : connections_)
            if (c->fd >= 0) ::shutdown(c->fd, SHUT_RDWR);
    }
    if (accept_thread_.joinable()) accept_thread_.join();
    if (dispatch_thread_.joinable()) dispatch_thread_.join();
    std::vector<std::shared_ptr<Connection>> conns;
    {
        const util::MutexLock lock(conn_mutex_);
        conns.swap(connections_);
    }
    for (const std::shared_ptr<Connection>& c : conns) {
        if (c->reader.joinable()) c->reader.join();
        if (c->fd >= 0) ::close(c->fd);
    }
    if (!opt_.socket_path.empty()) ::unlink(opt_.socket_path.c_str());
    {
        const util::MutexLock lock(queue_mutex_);
        started_ = false;
        queue_.clear();  // undelivered jobs die with their connections
        queued_submits_ = 0;
    }
    {
        const util::MutexLock lock(shutdown_mutex_);
        shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
}

void Server::wait_for_shutdown() {
    util::MutexLock lock(shutdown_mutex_);
    while (!shutdown_requested_) shutdown_cv_.wait(lock);
}

void Server::begin_drain() {
    {
        const util::MutexLock lock(queue_mutex_);
        if (!started_ || stopping_ || draining_) return;
        draining_ = true;
    }
    {
        const util::MutexLock lock(stats_mutex_);
        ++stats_.drains;
    }
    // No new connections, no new submits (the readers now shed them with
    // `unavailable`); the dispatcher flushes what is already queued and
    // then runs finish_drain().
    close_listener();
    queue_cv_.notify_all();
}

void Server::drain() {
    {
        const util::MutexLock lock(queue_mutex_);
        if (!started_) return;
    }
    begin_drain();
    wait_for_shutdown();
    stop();
}

void Server::finish_drain() {
    // Dispatcher-thread epilogue: every queued job has been flushed.  The
    // dispatcher is the Engine's only user, so snapshotting warm caches
    // here needs no extra synchronization.
    if (!opt_.snapshot_dir.empty()) {
        for (const std::uint64_t h : live_handles_) {
            try {
                engine_.caches(api::SystemHandle{h})
                    .save(opt_.snapshot_dir + "/opmsim_h" + std::to_string(h) +
                          ".snap");
            } catch (...) {
                // Best effort: a full disk or bad directory must not keep
                // the daemon from completing its drain.
            }
        }
    }
    {
        const util::MutexLock lock(shutdown_mutex_);
        shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
}

ServiceStats Server::stats() const {
    const util::MutexLock lock(stats_mutex_);
    return stats_;
}

void Server::accept_loop() {
    for (;;) {
        int lfd;
        {
            const util::MutexLock lock(listener_mutex_);
            lfd = listen_fd_;
        }
        if (lfd < 0) return;  // close_listener() already ran
        // accept() on the snapshot, not under the lock: close_listener()
        // must be able to shut the socket down to wake this blocking call.
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR) continue;
            return;  // listener closed: stop() is in progress
        }
        if (opt_.write_timeout > 0) {
            // Reply writes must not block forever on a peer that stopped
            // reading: past this budget the write fails and send_frame
            // drops the connection instead of wedging the dispatcher.
            timeval tv{};
            tv.tv_sec = static_cast<time_t>(opt_.write_timeout);
            tv.tv_usec = static_cast<suseconds_t>(
                (opt_.write_timeout - static_cast<double>(tv.tv_sec)) * 1e6);
            ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
        }
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        {
            const util::MutexLock lock(conn_mutex_);
            connections_.push_back(conn);
        }
        conn->reader = std::thread([this, conn] { reader_loop(conn); });
    }
}

void Server::send_frame(Connection& conn, MsgType type,
                        std::uint64_t request_id,
                        const std::vector<std::uint8_t>& payload) {
    util::ByteWriter w;
    FrameHeader h;
    h.type = type;
    h.request_id = request_id;
    h.payload_len = payload.size();
    encode_frame_header(w, h);
    w.bytes(payload.data(), payload.size());
    const util::MutexLock lock(conn.write_mutex);
    const bool write_faulted =
        fault::enabled() && fault::fire(fault::Site::sock_write_fail);
    if (write_faulted || !write_all(conn.fd, w.data().data(), w.size())) {
        // Stalled (SO_SNDTIMEO expired) or broken peer: drop it so no
        // later reply blocks here again; its reader_loop wakes and exits.
        ::shutdown(conn.fd, SHUT_RDWR);
    }
}

void Server::send_error(Connection& conn, std::uint64_t request_id,
                        const Status& st) {
    util::ByteWriter w;
    encode(w, st);
    send_frame(conn, MsgType::error, request_id, w.data());
}

void Server::reader_loop(const std::shared_ptr<Connection>& conn) {
    std::vector<std::uint8_t> header(kFrameHeaderBytes);
    for (;;) {
        if (!read_exact(conn->fd, header.data(), header.size())) return;
        FrameHeader hdr;
        try {
            hdr = decode_frame_header(header.data(), header.size(),
                                      opt_.max_frame_bytes);
        } catch (...) {
            // A bad header means framing is lost; report and drop the
            // connection (we cannot resynchronize a byte stream).
            send_error(*conn, 0, status_from_current_exception());
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
        }
        if (fault::enabled() && fault::fire(fault::Site::sock_read_torn)) {
            // Chaos harness: the frame tears between header and payload —
            // exactly what a peer crashing mid-send looks like.  Framing
            // is lost, so the connection must go.
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
        }
        std::vector<std::uint8_t> payload(hdr.payload_len);
        if (!read_exact(conn->fd, payload.data(), payload.size())) return;
        if (fault::enabled() && fault::fire(fault::Site::conn_drop)) {
            // Chaos harness: the connection dies AFTER the request is
            // fully received but before any reply — the window where only
            // an idempotent-retry client recovers.
            ::shutdown(conn->fd, SHUT_RDWR);
            return;
        }

        Job job;
        job.conn = conn;
        job.hdr = hdr;
        if (hdr.type == MsgType::submit) {
            // Decode on the reader thread: malformed submissions are
            // rejected here and never occupy the dispatcher.
            try {
                util::ByteReader r(payload.data(), payload.size());
                job.handle = r.u64();
                job.scenario = decode_scenario(r);
                // Minor >= 1 clients append a per-request deadline after
                // the scenario block; 0 (and absence) mean none.
                if (r.remaining() >= 8) job.deadline_ms = r.u64();
            } catch (...) {
                send_error(*conn, hdr.request_id,
                           status_from_current_exception());
                continue;
            }
            if (job.deadline_ms > 0) {
                // Clamp to ~1 year: an adversarial u64 must not overflow
                // the steady_clock arithmetic into a deadline in the past.
                constexpr std::uint64_t kMaxDeadlineMs = 366ull * 86'400'000ull;
                job.deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(
                        std::min(job.deadline_ms, kMaxDeadlineMs));
            }
            // Admission control — shed on the reader thread, in one round
            // trip, while the dispatcher is free to ignore overload
            // entirely.  Controls are exempt: they are cheap barriers and
            // rejecting them would turn overload into spurious client
            // exceptions.
            Status shed_status;
            {
                const util::MutexLock lock(queue_mutex_);
                if (stopping_) return;
                if (draining_) {
                    shed_status = {ErrorCode::unavailable,
                                   "server is draining; resubmit elsewhere"};
                } else if (opt_.max_queue > 0 &&
                           queued_submits_ >= opt_.max_queue) {
                    shed_status = {
                        ErrorCode::overloaded,
                        "dispatch queue full (max_queue=" +
                            std::to_string(opt_.max_queue) + ")"};
                } else if (opt_.max_pending_per_conn > 0 &&
                           conn->inflight.load(std::memory_order_relaxed) >=
                               opt_.max_pending_per_conn) {
                    shed_status = {
                        ErrorCode::overloaded,
                        "connection pipeline full (max_pending_per_conn=" +
                            std::to_string(opt_.max_pending_per_conn) + ")"};
                } else {
                    conn->inflight.fetch_add(1, std::memory_order_relaxed);
                    ++queued_submits_;
                    queue_.push_back(std::move(job));
                }
            }
            if (shed_status.code != ErrorCode::ok) {
                {
                    const util::MutexLock lock(stats_mutex_);
                    ++stats_.shed;
                }
                send_error(*conn, hdr.request_id, shed_status);
                continue;
            }
            queue_cv_.notify_one();
            continue;
        }
        if (hdr.type == MsgType::ping) {
            send_frame(*conn, MsgType::pong, hdr.request_id, {});
            continue;
        }
        job.payload = std::move(payload);
        {
            const util::MutexLock lock(queue_mutex_);
            if (stopping_) return;
            queue_.push_back(std::move(job));
        }
        queue_cv_.notify_one();
    }
}

void Server::dispatch_loop() {
    for (;;) {
        std::vector<Job> submits;
        Job control;
        bool have_control = false;
        bool drained = false;
        {
            util::MutexLock lock(queue_mutex_);
            while (!stopping_ && !draining_ && queue_.empty())
                queue_cv_.wait(lock);
            if (stopping_ && queue_.empty()) return;
            if (draining_ && queue_.empty()) {
                drained = true;
            } else if (queue_.front().hdr.type != MsgType::submit) {
                control = std::move(queue_.front());
                queue_.pop_front();
                have_control = true;
            } else {
                // Micro-batching: hold the window open from the FIRST
                // submit, absorbing every further submit that arrives —
                // but never across a control message (the barrier).
                const auto absorb = [&]() REQUIRES(queue_mutex_) {
                    while (!queue_.empty() &&
                           queue_.front().hdr.type == MsgType::submit &&
                           submits.size() <
                               static_cast<std::size_t>(opt_.max_batch)) {
                        submits.push_back(std::move(queue_.front()));
                        queue_.pop_front();
                        --queued_submits_;
                    }
                };
                const auto deadline =
                    std::chrono::steady_clock::now() +
                    std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(opt_.batch_window));
                for (;;) {
                    absorb();
                    // While draining the window never waits: no new submit
                    // can be admitted, so flush what we already hold.
                    if (stopping_ || draining_ ||
                        submits.size() >=
                            static_cast<std::size_t>(opt_.max_batch) ||
                        (!queue_.empty() &&
                         queue_.front().hdr.type != MsgType::submit))
                        break;
                    if (queue_cv_.wait_until(lock, deadline) ==
                        std::cv_status::timeout) {
                        // Window closed; absorb whatever raced in before
                        // the timeout fired.
                        absorb();
                        break;
                    }
                }
            }
        }
        if (drained) {
            finish_drain();
            return;
        }
        if (have_control) {
            handle_control(control);
            if (control.hdr.type == MsgType::shutdown) return;
        } else if (!submits.empty()) {
            if (fault::enabled() && fault::fire(fault::Site::dispatch_stall))
                std::this_thread::sleep_for(kDispatchStall);
            dispatch_submits(std::move(submits));
        }
    }
}

void Server::dispatch_submits(std::vector<Job> batch) {
    // Jobs whose wire deadline expired while queued are shed HERE, before
    // any Engine work: the reply is deadline_exceeded as data (the same
    // thing a mid-sweep expiry produces), but the Engine never sees them.
    {
        const auto now = std::chrono::steady_clock::now();
        std::vector<Job> live, expired;
        live.reserve(batch.size());
        for (Job& job : batch) {
            if (job.has_deadline() && now >= job.deadline)
                expired.push_back(std::move(job));
            else
                live.push_back(std::move(job));
        }
        batch = std::move(live);
        // Stats BEFORE replies: the reply is what lets a client observe
        // the shed, and stats() right after it must already reflect it.
        if (!expired.empty()) {
            const util::MutexLock lock(stats_mutex_);
            stats_.deadline_expired += expired.size();
        }
        for (const Job& job : expired) {
            api::SolveResult res;
            res.status = {ErrorCode::deadline_exceeded,
                          "request deadline expired before dispatch"};
            util::ByteWriter w;
            encode(w, res);
            send_frame(*job.conn, MsgType::result, job.hdr.request_id,
                       w.data());
            job.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
        }
    }

    // Partition by (system handle, wire deadline), preserving arrival
    // order within each partition; each partition is ONE Engine::run_batch
    // call, so batch-compatible scenarios from different clients share one
    // multi-RHS sweep and incompatible ones still share the handle's
    // warm caches.  The deadline is part of the key because run_batch's
    // budget is sweep-wide: requests with different budgets must not
    // inherit each other's.
    std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::size_t>>
        by_handle;
    for (std::size_t i = 0; i < batch.size(); ++i)
        by_handle[{batch[i].handle, batch[i].deadline_ms}].push_back(i);

    for (const auto& [key, members] : by_handle) {
        const std::uint64_t handle = key.first;
        std::vector<api::Scenario> scenarios;
        scenarios.reserve(members.size());
        bool materialized = true;
        try {
            for (const std::size_t i : members)
                scenarios.push_back(batch[i].scenario.to_scenario());
        } catch (...) {
            // Source instantiation failed (bad factory parameters):
            // reject the whole partition member-by-member below.
            materialized = false;
        }

        // Sweep-wide budget: every member of this partition shares the
        // same wire deadline_ms (it is in the partition key), so the
        // tightest ABSOLUTE expiry — the earliest arrival — bounds the
        // sweep.  An expiry mid-sweep comes back as deadline_exceeded
        // data via the PR 6 containment path.
        double budget_seconds = 0.0;
        if (key.second > 0) {
            auto earliest = batch[members.front()].deadline;
            for (const std::size_t i : members)
                earliest = std::min(earliest, batch[i].deadline);
            budget_seconds = std::chrono::duration<double>(
                                 earliest - std::chrono::steady_clock::now())
                                 .count();
            // The pre-dispatch shed above ran moments ago; if the clock
            // crossed the line since, a minimal positive budget makes the
            // first sweep-step check expire it as data.
            if (budget_seconds <= 0.0) budget_seconds = 1e-9;
        }

        std::vector<api::SolveResult> results;
        if (materialized) {
            try {
                api::Engine::BatchOptions bopt;
                bopt.workers = opt_.batch_workers;
                bopt.deadline = budget_seconds;
                results = engine_.run_batch(api::SystemHandle{handle},
                                            scenarios, bopt);
            } catch (...) {
                // Bad handle (or Engine-level failure): every member gets
                // the same classified error.  A deadline that expires in
                // the SHARED phase of the sweep (before per-member
                // containment can attribute it) lands here too, so it
                // still counts as deadline_expired.
                const Status st = status_from_current_exception();
                if (st.code == ErrorCode::deadline_exceeded) {
                    const util::MutexLock lock(stats_mutex_);
                    stats_.deadline_expired += members.size();
                }
                for (const std::size_t i : members) {
                    send_error(*batch[i].conn, batch[i].hdr.request_id, st);
                    batch[i].conn->inflight.fetch_sub(
                        1, std::memory_order_relaxed);
                }
                continue;
            }
        } else {
            // Re-run members individually so healthy ones still complete.
            results.reserve(members.size());
            for (const std::size_t i : members) {
                api::SolveResult res;
                try {
                    res = engine_.run(api::SystemHandle{handle},
                                      batch[i].scenario.to_scenario());
                } catch (...) {
                    res.status = status_from_current_exception();
                }
                results.push_back(std::move(res));
            }
        }

        // Stats BEFORE replies: a client that reads stats() the moment its
        // reply lands must already see this sweep accounted for.
        {
            std::uint64_t expired_in_sweep = 0;
            for (const api::SolveResult& res : results)
                if (res.status.code == ErrorCode::deadline_exceeded)
                    ++expired_in_sweep;
            const util::MutexLock lock(stats_mutex_);
            stats_.requests += members.size();
            stats_.batches += 1;
            stats_.deadline_expired += expired_in_sweep;
            if (members.size() >= 2) stats_.coalesced += members.size();
            if (members.size() > stats_.largest_batch)
                stats_.largest_batch = members.size();
        }
        for (std::size_t k = 0; k < members.size(); ++k) {
            const Job& job = batch[members[k]];
            util::ByteWriter w;
            encode(w, results[k]);
            send_frame(*job.conn, MsgType::result, job.hdr.request_id,
                       w.data());
            job.conn->inflight.fetch_sub(1, std::memory_order_relaxed);
        }
    }
}

void Server::handle_control(Job& job) {
    Connection& conn = *job.conn;
    const std::uint64_t id = job.hdr.request_id;
    try {
        util::ByteReader r(job.payload.data(), job.payload.size());
        switch (job.hdr.type) {
        case MsgType::hello: {
            // Minor >= 1 clients append a u8 flag marking an automatic
            // reconnect after a transport failure (old clients send an
            // empty body) — the daemon-side signal that peers are seeing
            // drops.
            if (!job.payload.empty() && job.payload[0] != 0) {
                const util::MutexLock lock(stats_mutex_);
                ++stats_.reconnects_seen;
            }
            util::ByteWriter w;
            w.u16(kProtoMajor);
            w.u16(std::min(kProtoMinor, job.hdr.ver_minor));
            send_frame(conn, MsgType::hello_ack, id, w.data());
            break;
        }
        case MsgType::register_descriptor: {
            const api::SystemHandle h = engine_.add_system(decode_descriptor(r));
            live_handles_.push_back(h.id);
            util::ByteWriter w;
            w.u64(h.id);
            send_frame(conn, MsgType::ok, id, w.data());
            break;
        }
        case MsgType::register_multiterm: {
            const api::SystemHandle h = engine_.add_system(decode_multiterm(r));
            live_handles_.push_back(h.id);
            util::ByteWriter w;
            w.u64(h.id);
            send_frame(conn, MsgType::ok, id, w.data());
            break;
        }
        case MsgType::remove_system: {
            const std::uint64_t h = r.u64();
            engine_.remove_system(api::SystemHandle{h});
            live_handles_.erase(
                std::remove(live_handles_.begin(), live_handles_.end(), h),
                live_handles_.end());
            send_frame(conn, MsgType::ok, id, {});
            break;
        }
        case MsgType::save_caches: {
            const std::uint64_t handle = r.u64();
            const std::string path = r.str();
            engine_.caches(api::SystemHandle{handle}).save(path);
            send_frame(conn, MsgType::ok, id, {});
            break;
        }
        case MsgType::load_caches: {
            const std::uint64_t handle = r.u64();
            const std::string path = r.str();
            engine_.caches(api::SystemHandle{handle}).load(path);
            send_frame(conn, MsgType::ok, id, {});
            break;
        }
        case MsgType::stats: {
            util::ByteWriter w;
            encode(w, stats());
            send_frame(conn, MsgType::stats_reply, id, w.data());
            break;
        }
        case MsgType::shutdown: {
            send_frame(conn, MsgType::ok, id, {});
            {
                const util::MutexLock lock(queue_mutex_);
                stopping_ = true;
            }
            queue_cv_.notify_all();
            close_listener();
            {
                const util::MutexLock lock(shutdown_mutex_);
                shutdown_requested_ = true;
            }
            shutdown_cv_.notify_all();
            break;
        }
        default:
            send_error(conn, id,
                       {ErrorCode::invalid_scenario,
                        "message type not valid as a request"});
            break;
        }
    } catch (...) {
        send_error(conn, id, status_from_current_exception());
    }
}

} // namespace opmsim::svc
