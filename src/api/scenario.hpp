#pragma once
/// \file scenario.hpp
/// \brief Unified scenario / result types for the opmsim Engine facade.
///
/// A Scenario is one simulation request in method-agnostic form: the
/// excitation sources, the horizon, the time resolution, and a tagged
/// per-method configuration.  The tag IS the method selection — the
/// MethodConfig variant holds exactly the existing per-solver options
/// struct, so every option the free functions accept is reachable through
/// the facade, and adding a solver path means adding one variant
/// alternative (and one registry adapter, api/registry.hpp).
///
/// SolveResult is the method-agnostic view of the five legacy result
/// structs: output waveforms, a state trajectory, a time grid and the
/// shared Diagnostics.  The `states`/`grid` columns mean slightly
/// different things per family (BPF interval averages on interval edges
/// for the OPM solvers, endpoint states on step times for the marching
/// schemes) — `Method` + the per-family docs below disambiguate.

#include <type_traits>
#include <variant>
#include <vector>

#include "opm/adaptive.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "transient/grunwald.hpp"
#include "transient/steppers.hpp"
#include "util/status.hpp"

namespace opmsim::api {

using la::index_t;
using la::Vectord;

/// The five solver paths the Engine dispatches to.
enum class Method {
    opm,        ///< block-pulse OPM, single order (opm::simulate_opm)
    multiterm,  ///< multi-term OPM (opm::simulate_multiterm)
    adaptive,   ///< adaptive-step OPM (opm::simulate_opm_adaptive)
    transient,  ///< b-Euler / trapezoidal / Gear (transient::simulate_transient)
    grunwald    ///< Grünwald–Letnikov stepper (transient::simulate_grunwald)
};

/// Tagged per-method configuration; the active alternative selects the
/// solver path.  These are the existing option structs — the Engine
/// overrides only their cache plumbing (`caches` is set to the handle's
/// bundle; a value you put there is ignored).
using MethodConfig = std::variant<opm::OpmOptions, opm::MultiTermOptions,
                                  opm::AdaptiveOptions,
                                  transient::TransientOptions,
                                  transient::GrunwaldOptions>;

// The variant alternative order IS the Method enum order (method_of maps
// index -> enum); pin the coupling so inserting a solver into one list
// but not the other is a compile error, not a misdispatch.
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(Method::opm),
                                 MethodConfig>,
                             opm::OpmOptions>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(Method::multiterm),
                                 MethodConfig>,
                             opm::MultiTermOptions>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(Method::adaptive),
                                 MethodConfig>,
                             opm::AdaptiveOptions>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(Method::transient),
                                 MethodConfig>,
                             transient::TransientOptions>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(Method::grunwald),
                                 MethodConfig>,
                             transient::GrunwaldOptions>);

/// Which method a config selects (variant alternative -> Method).
Method method_of(const MethodConfig& config);

/// Stable display name ("opm", "multiterm", ...).
const char* method_name(Method m);

/// One simulation request against a registered system.
struct Scenario {
    /// Excitation sources; count must match the system's input count.
    std::vector<wave::Source> sources;
    /// Simulation horizon [0, t_end).
    double t_end = 0.0;
    /// Time resolution: the BPF column count m for opm/multiterm, the
    /// step count for transient/grunwald.  Ignored by `adaptive` (the
    /// controller chooses its own grid from AdaptiveOptions).
    index_t steps = 0;
    /// Method selection + options; defaults to plain OPM.
    MethodConfig config = opm::OpmOptions{};

    /// The method this scenario selects — the stable tag for dispatch,
    /// logging and the wire protocol, so callers never pattern-match the
    /// variant index themselves.
    [[nodiscard]] Method method() const { return method_of(config); }

    /// Stable display name of the selected method ("opm", "multiterm",
    /// ...); wire- and log-friendly.
    [[nodiscard]] const char* method_name() const {
        return api::method_name(method_of(config));
    }
};

/// Method-agnostic result.
struct SolveResult {
    Method method = Method::opm;

    /// Outcome of this scenario.  Engine::run throws on failure, so a
    /// result it returns is always ok; Engine::run_batch contains failures
    /// instead — a failed scenario carries its taxonomy code and message
    /// here with empty outputs/states, and its siblings are unaffected.
    Status status;

    /// Output waveforms y = C x, one per output channel — directly
    /// comparable across methods (each waveform carries its own grid).
    std::vector<wave::Waveform> outputs;

    /// State trajectory.  OPM family (opm/multiterm/adaptive): the n x m
    /// BPF coefficient matrix (interval averages of the Caputo-shifted
    /// variable — identical to the legacy `coeffs`).  Marching family
    /// (transient/grunwald): the n x (m+1) endpoint states including
    /// x(0) — identical to the legacy `states`.
    la::Matrixd states;

    /// Time grid: interval edges (m+1) for the OPM family, step times
    /// (m+1) for the marching family.
    Vectord grid;

    /// Accepted step lengths (adaptive only; empty otherwise).
    Vectord steps;

    /// Uniform timing / cache diagnostics (opm/diagnostics.hpp).
    Diagnostics diag;
};

} // namespace opmsim::api
