#pragma once
/// \file registry.hpp
/// \brief Solver registry: the dispatch table behind Engine::run.
///
/// Each of the five solver paths is wrapped by one SolverAdapter that
/// (a) declares which system representation it needs (descriptor vs
/// multi-term), (b) copies the Scenario's per-method options, injects the
/// handle's SolveCaches bundle, and calls the legacy free function, and
/// (c) maps the legacy result onto the uniform SolveResult.  The adapters
/// are the ONLY place the facade touches solver-specific types, so the
/// Engine itself stays method-agnostic and a new solver path plugs in by
/// appending a MethodConfig alternative and a registry row.

#include <span>

#include "api/scenario.hpp"

namespace opmsim::api {

/// The system views an adapter may draw from; exactly one of the two
/// pointers matching the adapter's requirement is non-null for a given
/// handle.
struct SystemView {
    const opm::DescriptorSystem* descriptor = nullptr;
    const opm::MultiTermSystem* multiterm = nullptr;
    opm::SolveCaches* caches = nullptr;  ///< the handle's cache bundle
    /// The batch's deadline/cancellation token (null for Engine::run);
    /// adapters inject it into the per-method options.
    const util::RunControl* control = nullptr;
};

struct SolverAdapter {
    Method method;
    const char* name;
    /// True when the adapter consumes the MultiTermSystem representation
    /// (only `multiterm`); every other path needs a DescriptorSystem.
    bool needs_multiterm;
    SolveResult (*run)(const SystemView& sys, const Scenario& scenario);
    /// Batched runner for a source-only scenario group (all scenarios
    /// batch_compatible with each other): one factorization, multi-RHS
    /// sweeps.  nullptr for methods without a batched path (adaptive
    /// chooses per-solution step grids, multiterm's K history engines are
    /// per-run) — the Engine falls back to a sequential loop of `run`.
    std::vector<SolveResult> (*run_group)(const SystemView& sys,
                                          std::span<const Scenario> group);
};

/// The registry row for a method (every Method has exactly one).
const SolverAdapter& adapter_for(Method m);

/// True when two scenarios may share one batched sweep: same method, time
/// grid and per-method options — they differ in their sources only.
bool batch_compatible(const Scenario& a, const Scenario& b);

} // namespace opmsim::api
