#include "api/engine.hpp"

#include <atomic>
#include <chrono>
#include <exception>
#include <string>
#include <thread>

#include "api/registry.hpp"
#include "fftx/convolve.hpp"
#include "util/check.hpp"
#include "util/status.hpp"

namespace opmsim::api {

namespace {

/// Resolve the system view an adapter needs from a registry entry
/// (shared by run() and the run_batch group executor).  Error messages
/// name the method through the scenario's stable tag.
SystemView view_for(const opm::DescriptorSystem* descriptor,
                    const opm::MultiTermSystem* multiterm,
                    opm::SolveCaches* caches, const SolverAdapter& adapter,
                    const Scenario& scenario) {
    SystemView view;
    view.caches = caches;
    if (adapter.needs_multiterm) {
        OPMSIM_REQUIRE(multiterm != nullptr,
                       std::string("Engine::run: scenario method '") +
                           scenario.method_name() +
                           "' needs a MultiTermSystem handle");
        view.multiterm = multiterm;
    } else {
        OPMSIM_REQUIRE(descriptor != nullptr,
                       std::string("Engine::run: scenario method '") +
                           scenario.method_name() +
                           "' needs a DescriptorSystem handle");
        view.descriptor = descriptor;
    }
    return view;
}

} // namespace

SystemHandle Engine::add_system(opm::DescriptorSystem sys) {
    sys.validate();
    Entry e;
    e.descriptor = std::make_unique<opm::DescriptorSystem>(std::move(sys));
    e.caches = std::make_unique<opm::SolveCaches>();
    systems_.push_back(std::move(e));
    return {systems_.size() - 1};
}

SystemHandle Engine::add_system(const opm::DenseDescriptorSystem& sys) {
    return add_system(sys.to_sparse());
}

SystemHandle Engine::add_system(opm::MultiTermSystem sys) {
    sys.validate();
    Entry e;
    e.multiterm = std::make_unique<opm::MultiTermSystem>(std::move(sys));
    e.caches = std::make_unique<opm::SolveCaches>();
    systems_.push_back(std::move(e));
    return {systems_.size() - 1};
}

const Engine::Entry& Engine::entry(SystemHandle handle) const {
    OPMSIM_REQUIRE(handle.valid() && handle.id < systems_.size(),
                   "Engine: invalid system handle");
    OPMSIM_REQUIRE(systems_[handle.id].live(),
                   "Engine: system handle was removed (remove_system)");
    return systems_[handle.id];
}

void Engine::remove_system(SystemHandle handle) {
    entry(handle);  // validates: in range and not already removed
    Entry& e = systems_[handle.id];
    e.descriptor.reset();
    e.multiterm.reset();
    e.caches.reset();
    e.warm = false;
}

void Engine::set_cache_capacity(std::size_t max_warm) {
    cache_capacity_ = max_warm;
    touch({});  // enforce the new cap immediately (no handle to favor)
}

std::size_t Engine::num_systems() const {
    std::size_t n = 0;
    for (const Entry& e : systems_)
        if (e.live()) ++n;
    return n;
}

void Engine::touch(SystemHandle handle) {
    if (handle.valid() && handle.id < systems_.size() &&
        systems_[handle.id].live()) {
        systems_[handle.id].last_used = ++use_tick_;
        systems_[handle.id].warm = true;
    }
    if (cache_capacity_ == 0) return;
    for (;;) {
        std::size_t warm = 0;
        Entry* coldest = nullptr;
        for (Entry& e : systems_) {
            if (!e.live() || !e.warm) continue;
            ++warm;
            if (coldest == nullptr || e.last_used < coldest->last_used)
                coldest = &e;
        }
        if (warm <= cache_capacity_ || coldest == nullptr) return;
        coldest->caches->purge();
        coldest->warm = false;
    }
}

SolveResult Engine::run(SystemHandle handle, const Scenario& scenario) {
    const Entry& e = entry(handle);
    touch(handle);
    const SolverAdapter& adapter = adapter_for(scenario.method());
    const SystemView view = view_for(e.descriptor.get(), e.multiterm.get(),
                                     e.caches.get(), adapter, scenario);
    return adapter.run(view, scenario);
}

std::vector<SolveResult> Engine::run_batch(SystemHandle handle,
                                           std::span<const Scenario> scenarios) {
    return run_batch(handle, scenarios, {});
}

std::vector<SolveResult> Engine::run_batch(SystemHandle handle,
                                           std::span<const Scenario> scenarios,
                                           const BatchOptions& opt) {
    const Entry& e = entry(handle);
    touch(handle);
    const std::size_t ns = scenarios.size();
    std::vector<SolveResult> out(ns);
    if (ns == 0) return out;

    // Cooperative run control shared by every group in this batch.
    util::RunControl control;
    if (opt.deadline > 0.0)
        control.deadline =
            std::chrono::steady_clock::now() +
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(opt.deadline));
    control.cancel = opt.cancel;

    // Pre-validate every scenario: malformed requests are marked
    // invalid_scenario here and never reach a solver (or poison a group).
    const auto validate = [&](const Scenario& sc) -> Status {
        const SolverAdapter& adapter = adapter_for(method_of(sc.config));
        const bool have_repr = adapter.needs_multiterm ? e.multiterm != nullptr
                                                       : e.descriptor != nullptr;
        if (!have_repr)
            return {ErrorCode::invalid_scenario,
                    std::string("scenario method '") + sc.method_name() +
                        (adapter.needs_multiterm
                             ? "' needs a MultiTermSystem handle"
                             : "' needs a DescriptorSystem handle")};
        const index_t p = adapter.needs_multiterm ? e.multiterm->num_inputs()
                                                  : e.descriptor->num_inputs();
        if (static_cast<index_t>(sc.sources.size()) != p)
            return {ErrorCode::invalid_scenario,
                    "scenario has " + std::to_string(sc.sources.size()) +
                        " sources, system has " + std::to_string(p) + " inputs"};
        if (!(sc.t_end > 0.0))
            return {ErrorCode::invalid_scenario, "t_end must be positive"};
        if (method_of(sc.config) != Method::adaptive && sc.steps < 1)
            return {ErrorCode::invalid_scenario, "steps must be >= 1"};
        return {};
    };
    std::vector<char> runnable(ns, 1);
    for (std::size_t i = 0; i < ns; ++i) {
        Status st = validate(scenarios[i]);
        if (!st.ok()) {
            out[i].method = method_of(scenarios[i].config);
            out[i].status = std::move(st);
            runnable[i] = 0;
        }
    }

    // Group batch-compatible scenarios (first-appearance order).  The
    // grouping is independent of the worker count, so serial and threaded
    // batches perform identical arithmetic.
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < ns; ++i) {
        if (!runnable[i]) continue;
        bool placed = false;
        for (std::vector<std::size_t>& g : groups) {
            if (batch_compatible(scenarios[g.front()], scenarios[i])) {
                g.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed) groups.push_back({i});
    }

    // Failure containment: every scenario failure — in a shared group
    // sweep or an individual run — lands in that scenario's status; no
    // exception escapes run_batch.
    const auto mark_failed = [&](std::size_t i, Status st) {
        out[i] = SolveResult{};
        out[i].method = method_of(scenarios[i].config);
        out[i].status = std::move(st);
    };
    const auto run_one = [&](const SolverAdapter& adapter,
                             const SystemView& view, std::size_t i) {
        try {
            out[i] = adapter.run(view, scenarios[i]);
        } catch (...) {
            mark_failed(i, status_from_current_exception());
        }
    };
    auto execute_group = [&](const std::vector<std::size_t>& g) {
        const Scenario& first = scenarios[g.front()];
        const SolverAdapter& adapter = adapter_for(method_of(first.config));
        SystemView view = view_for(e.descriptor.get(), e.multiterm.get(),
                                   e.caches.get(), adapter, first);
        view.control = &control;
        if (g.size() > 1 && adapter.run_group != nullptr) {
            try {
                std::vector<Scenario> block;
                block.reserve(g.size());
                for (const std::size_t i : g) block.push_back(scenarios[i]);
                std::vector<SolveResult> rs = adapter.run_group(view, block);
                for (std::size_t k = 0; k < g.size(); ++k)
                    out[g[k]] = std::move(rs[k]);
                return;
            } catch (...) {
                Status st = status_from_current_exception();
                if (st.code == ErrorCode::deadline_exceeded ||
                    st.code == ErrorCode::cancelled) {
                    // Stop requests apply to every member; retrying would
                    // only re-trip the same check.
                    for (const std::size_t i : g) mark_failed(i, st);
                    return;
                }
                // One member poisoned the shared sweep.  Isolate it: run
                // each member alone so the healthy siblings still get
                // their (bit-identical to run()) results and only the
                // offender reports its failure.
            }
            for (const std::size_t i : g) run_one(adapter, view, i);
        } else {
            for (const std::size_t i : g) run_one(adapter, view, i);
        }
    };

    const std::size_t workers = std::min<std::size_t>(
        opt.workers > 0 ? static_cast<std::size_t>(opt.workers) : 1,
        groups.size());
    if (workers <= 1) {
        for (const std::vector<std::size_t>& g : groups) execute_group(g);
        return out;
    }

    // Worker pool over groups: results land at fixed scenario indices, so
    // completion order cannot reorder anything.  execute_group contains
    // scenario failures itself; the catch-all is a last-resort backstop so
    // nothing can terminate a worker thread.
    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        for (;;) {
            const std::size_t gi = next.fetch_add(1);
            if (gi >= groups.size()) return;
            try {
                execute_group(groups[gi]);
            } catch (...) {
                const Status st = status_from_current_exception();
                for (const std::size_t i : groups[gi]) mark_failed(i, st);
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t wi = 0; wi < workers; ++wi) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
    return out;
}

Engine::CacheStats Engine::cache_stats(SystemHandle handle) const {
    const Entry& e = entry(handle);
    const opm::SolveCaches& c = *e.caches;
    CacheStats s;
    s.symbolic_hits = c.factors.symbolic_hits();
    s.symbolic_misses = c.factors.symbolic_misses();
    s.factor_hits = c.factors.factor_hits();
    s.factor_misses = c.factors.factor_misses();
    s.plan_hits = c.plans->hits();
    s.plan_misses = c.plans->misses();
    s.series_hits = c.series_hits();
    s.series_misses = c.series_misses();
    return s;
}

opm::SolveCaches& Engine::caches(SystemHandle handle) {
    return *entry(handle).caches;
}

} // namespace opmsim::api
