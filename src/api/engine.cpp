#include "api/engine.hpp"

#include "api/registry.hpp"
#include "fftx/convolve.hpp"
#include "util/check.hpp"

namespace opmsim::api {

SystemHandle Engine::add_system(opm::DescriptorSystem sys) {
    sys.validate();
    Entry e;
    e.descriptor = std::make_unique<opm::DescriptorSystem>(std::move(sys));
    e.caches = std::make_unique<opm::SolveCaches>();
    systems_.push_back(std::move(e));
    return {systems_.size() - 1};
}

SystemHandle Engine::add_system(const opm::DenseDescriptorSystem& sys) {
    return add_system(sys.to_sparse());
}

SystemHandle Engine::add_system(opm::MultiTermSystem sys) {
    sys.validate();
    Entry e;
    e.multiterm = std::make_unique<opm::MultiTermSystem>(std::move(sys));
    e.caches = std::make_unique<opm::SolveCaches>();
    systems_.push_back(std::move(e));
    return {systems_.size() - 1};
}

const Engine::Entry& Engine::entry(SystemHandle handle) const {
    OPMSIM_REQUIRE(handle.valid() && handle.id < systems_.size(),
                   "Engine: invalid system handle");
    return systems_[handle.id];
}

SolveResult Engine::run(SystemHandle handle, const Scenario& scenario) {
    const Entry& e = entry(handle);
    const Method method = method_of(scenario.config);
    const SolverAdapter& adapter = adapter_for(method);

    SystemView view;
    view.caches = e.caches.get();
    if (adapter.needs_multiterm) {
        OPMSIM_REQUIRE(e.multiterm != nullptr,
                       std::string("Engine::run: method '") + adapter.name +
                           "' needs a MultiTermSystem handle");
        view.multiterm = e.multiterm.get();
    } else {
        OPMSIM_REQUIRE(e.descriptor != nullptr,
                       std::string("Engine::run: method '") + adapter.name +
                           "' needs a DescriptorSystem handle");
        view.descriptor = e.descriptor.get();
    }
    return adapter.run(view, scenario);
}

std::vector<SolveResult> Engine::run_batch(SystemHandle handle,
                                           std::span<const Scenario> scenarios) {
    std::vector<SolveResult> out;
    out.reserve(scenarios.size());
    for (const Scenario& sc : scenarios) out.push_back(run(handle, sc));
    return out;
}

Engine::CacheStats Engine::cache_stats(SystemHandle handle) const {
    const Entry& e = entry(handle);
    const opm::SolveCaches& c = *e.caches;
    CacheStats s;
    s.symbolic_hits = c.factors.symbolic_hits();
    s.symbolic_misses = c.factors.symbolic_misses();
    s.factor_hits = c.factors.factor_hits();
    s.factor_misses = c.factors.factor_misses();
    s.plan_hits = c.plans->hits();
    s.plan_misses = c.plans->misses();
    s.series_hits = c.series_hits();
    s.series_misses = c.series_misses();
    return s;
}

opm::SolveCaches& Engine::caches(SystemHandle handle) {
    return *entry(handle).caches;
}

} // namespace opmsim::api
