#include "api/engine.hpp"

#include <atomic>
#include <exception>
#include <thread>

#include "api/registry.hpp"
#include "fftx/convolve.hpp"
#include "util/check.hpp"

namespace opmsim::api {

namespace {

/// Resolve the system view an adapter needs from a registry entry
/// (shared by run() and the run_batch group executor).
SystemView view_for(const opm::DescriptorSystem* descriptor,
                    const opm::MultiTermSystem* multiterm,
                    opm::SolveCaches* caches, const SolverAdapter& adapter) {
    SystemView view;
    view.caches = caches;
    if (adapter.needs_multiterm) {
        OPMSIM_REQUIRE(multiterm != nullptr,
                       std::string("Engine::run: method '") + adapter.name +
                           "' needs a MultiTermSystem handle");
        view.multiterm = multiterm;
    } else {
        OPMSIM_REQUIRE(descriptor != nullptr,
                       std::string("Engine::run: method '") + adapter.name +
                           "' needs a DescriptorSystem handle");
        view.descriptor = descriptor;
    }
    return view;
}

} // namespace

SystemHandle Engine::add_system(opm::DescriptorSystem sys) {
    sys.validate();
    Entry e;
    e.descriptor = std::make_unique<opm::DescriptorSystem>(std::move(sys));
    e.caches = std::make_unique<opm::SolveCaches>();
    systems_.push_back(std::move(e));
    return {systems_.size() - 1};
}

SystemHandle Engine::add_system(const opm::DenseDescriptorSystem& sys) {
    return add_system(sys.to_sparse());
}

SystemHandle Engine::add_system(opm::MultiTermSystem sys) {
    sys.validate();
    Entry e;
    e.multiterm = std::make_unique<opm::MultiTermSystem>(std::move(sys));
    e.caches = std::make_unique<opm::SolveCaches>();
    systems_.push_back(std::move(e));
    return {systems_.size() - 1};
}

const Engine::Entry& Engine::entry(SystemHandle handle) const {
    OPMSIM_REQUIRE(handle.valid() && handle.id < systems_.size(),
                   "Engine: invalid system handle");
    return systems_[handle.id];
}

SolveResult Engine::run(SystemHandle handle, const Scenario& scenario) {
    const Entry& e = entry(handle);
    const SolverAdapter& adapter = adapter_for(method_of(scenario.config));
    const SystemView view = view_for(e.descriptor.get(), e.multiterm.get(),
                                     e.caches.get(), adapter);
    return adapter.run(view, scenario);
}

std::vector<SolveResult> Engine::run_batch(SystemHandle handle,
                                           std::span<const Scenario> scenarios) {
    return run_batch(handle, scenarios, {});
}

std::vector<SolveResult> Engine::run_batch(SystemHandle handle,
                                           std::span<const Scenario> scenarios,
                                           const BatchOptions& opt) {
    const Entry& e = entry(handle);
    const std::size_t ns = scenarios.size();
    std::vector<SolveResult> out(ns);
    if (ns == 0) return out;

    // Group batch-compatible scenarios (first-appearance order).  The
    // grouping is independent of the worker count, so serial and threaded
    // batches perform identical arithmetic.
    std::vector<std::vector<std::size_t>> groups;
    for (std::size_t i = 0; i < ns; ++i) {
        bool placed = false;
        for (std::vector<std::size_t>& g : groups) {
            if (batch_compatible(scenarios[g.front()], scenarios[i])) {
                g.push_back(i);
                placed = true;
                break;
            }
        }
        if (!placed) groups.push_back({i});
    }

    auto execute_group = [&](const std::vector<std::size_t>& g) {
        const Scenario& first = scenarios[g.front()];
        const SolverAdapter& adapter = adapter_for(method_of(first.config));
        const SystemView view = view_for(e.descriptor.get(), e.multiterm.get(),
                                         e.caches.get(), adapter);
        if (g.size() > 1 && adapter.run_group != nullptr) {
            std::vector<Scenario> block;
            block.reserve(g.size());
            for (const std::size_t i : g) block.push_back(scenarios[i]);
            std::vector<SolveResult> rs = adapter.run_group(view, block);
            for (std::size_t k = 0; k < g.size(); ++k)
                out[g[k]] = std::move(rs[k]);
        } else {
            for (const std::size_t i : g) out[i] = adapter.run(view, scenarios[i]);
        }
    };

    const std::size_t workers = std::min<std::size_t>(
        opt.workers > 0 ? static_cast<std::size_t>(opt.workers) : 1,
        groups.size());
    if (workers <= 1) {
        for (const std::vector<std::size_t>& g : groups) execute_group(g);
        return out;
    }

    // Worker pool over groups: results land at fixed scenario indices, so
    // completion order cannot reorder anything; the first failing group
    // (in submission order) is rethrown after the pool drains.
    std::atomic<std::size_t> next{0};
    std::vector<std::exception_ptr> errors(groups.size());
    auto worker = [&] {
        for (;;) {
            const std::size_t gi = next.fetch_add(1);
            if (gi >= groups.size()) return;
            try {
                execute_group(groups[gi]);
            } catch (...) {
                errors[gi] = std::current_exception();
            }
        }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t wi = 0; wi < workers; ++wi) pool.emplace_back(worker);
    for (std::thread& th : pool) th.join();
    for (const std::exception_ptr& err : errors)
        if (err) std::rethrow_exception(err);
    return out;
}

Engine::CacheStats Engine::cache_stats(SystemHandle handle) const {
    const Entry& e = entry(handle);
    const opm::SolveCaches& c = *e.caches;
    CacheStats s;
    s.symbolic_hits = c.factors.symbolic_hits();
    s.symbolic_misses = c.factors.symbolic_misses();
    s.factor_hits = c.factors.factor_hits();
    s.factor_misses = c.factors.factor_misses();
    s.plan_hits = c.plans->hits();
    s.plan_misses = c.plans->misses();
    s.series_hits = c.series_hits();
    s.series_misses = c.series_misses();
    return s;
}

opm::SolveCaches& Engine::caches(SystemHandle handle) {
    return *entry(handle).caches;
}

} // namespace opmsim::api
