#pragma once
/// \file engine.hpp
/// \brief opmsim::Engine — one facade over all five solver paths, with
///        per-system cross-run caching and batched scenario execution.
///
/// The paper's point is that ONE operational-matrix formulation subsumes
/// integer, high-order and fractional circuit simulation; the Engine is
/// that claim as an API.  Register a system once, then run any Scenario
/// against it — plain OPM, multi-term OPM, adaptive OPM, the classic
/// steppers, or Grünwald–Letnikov — and get the same Scenario/SolveResult
/// shapes back, so cross-method harnesses (Table II, the cross-solver
/// oracles, every bench) stop re-implementing dispatch by hand.
///
/// The scaling payoff is the per-system SolveCaches bundle the Engine
/// threads into every run (opm/solve_cache.hpp):
///  * sparse LU symbolic analyses keyed by pencil pattern — the second
///    run on a handle performs ZERO fill-reducing orderings, across
///    methods (every (aE - bA) combination shares one pattern);
///  * whole numeric factors keyed by pattern + values — scenarios that
///    differ only in their sources reuse one factorization (the
///    multi-RHS sweep run_batch exploits);
///  * FFT convolution plans and rho-series rows keyed by their content.
/// Caching is transparent: results are bit-identical to the legacy free
/// functions (pinned by tests/test_api_engine.cpp).
///
/// Lifecycle: Engine owns the registered systems and their caches;
/// SystemHandles are cheap indices that stay valid until remove_system()
/// retires them (slots are never reused, so a removed handle fails fast
/// instead of aliasing a newer system).  run() never mutates the
/// registered system, only its cache bundle.  A long-lived multi-tenant
/// Engine (the svc daemon) can bound warm-cache memory with
/// set_cache_capacity(): beyond the cap, the least-recently-run system's
/// SolveCaches contents are purged (the bundle's address stays stable —
/// caches() references remain valid, the next run on that handle just
/// re-analyzes).  run(), add_system() and remove_system() are
/// single-threaded by contract;
/// run_batch() may execute independent scenario groups on an internal
/// worker pool (BatchOptions::workers) — the cache bundle serializes its
/// own lookups, so this is safe, but do not call other methods on the
/// same Engine while a batch is in flight.
///
/// Usage:
///     api::Engine engine;
///     const api::SystemHandle rc = engine.add_system(build_mna(nl));
///     api::Scenario sc;
///     sc.sources = {wave::step(1.0)};
///     sc.t_end = 5e-3;
///     sc.steps = 200;             // config defaults to OpmOptions{}
///     api::SolveResult res = engine.run(rc, sc);

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "api/scenario.hpp"
#include "opm/solve_cache.hpp"

namespace opmsim::api {

/// Opaque handle to a system registered with an Engine.
struct SystemHandle {
    std::size_t id = static_cast<std::size_t>(-1);
    [[nodiscard]] bool valid() const { return id != static_cast<std::size_t>(-1); }
};

class Engine {
public:
    Engine() = default;
    Engine(const Engine&) = delete;
    Engine& operator=(const Engine&) = delete;
    Engine(Engine&&) = default;
    Engine& operator=(Engine&&) = default;

    /// Register a descriptor system E x' = A x + B u (validated here).
    /// Serves the opm / adaptive / transient / grunwald methods.
    SystemHandle add_system(opm::DescriptorSystem sys);

    /// Dense convenience overload (converted to sparse).
    SystemHandle add_system(const opm::DenseDescriptorSystem& sys);

    /// Register a multi-term system sum_k A_k d^{alpha_k} x = ...
    /// (validated here).  Serves the multiterm method.
    SystemHandle add_system(opm::MultiTermSystem sys);

    /// Retire a registered system: frees the system matrices and the
    /// warm-cache bundle.  The handle (and any SolveCaches& obtained from
    /// caches()) becomes invalid — subsequent run()/caches() calls on it
    /// throw std::invalid_argument.  Handle ids are never reused.
    /// Single-threaded like add_system(); must not race a run_batch.
    void remove_system(SystemHandle handle);

    /// Cap the number of systems keeping WARM caches (0 = unlimited, the
    /// default).  Each run()/run_batch() marks its handle most-recently
    /// used; when more than `max_warm` handles hold warm contents, the
    /// coldest bundle is purged (SolveCaches::purge()) — the system stays
    /// registered and re-warms on its next run.  A daemon serving many
    /// tenants uses this as its cache-eviction tier.
    void set_cache_capacity(std::size_t max_warm);

    /// Run one scenario.  Throws std::invalid_argument when the scenario's
    /// method does not fit the handle's system representation (multiterm
    /// needs a MultiTermSystem, everything else a DescriptorSystem).
    SolveResult run(SystemHandle handle, const Scenario& scenario);

    /// run_batch execution knobs.
    struct BatchOptions {
        /// Worker threads executing independent scenario *groups*
        /// concurrently; 1 keeps everything on the calling thread, and
        /// values <= 0 are clamped to 1.  The thread count never changes
        /// results: scenario grouping and the batched multi-RHS sweeps are
        /// applied identically at any value, so a threaded batch is
        /// bit-identical to a serial one.
        int workers = 1;
        /// Wall-clock budget for the whole batch in seconds; <= 0 means
        /// none.  The solver loops check it at sweep-step granularity, so
        /// scenarios still running when it expires finish their current
        /// step and fail with `deadline_exceeded` status.
        double deadline = 0.0;
        /// Optional cooperative cancellation token (non-owning).  Setting
        /// it to true makes in-flight scenarios fail with `cancelled`
        /// status at their next sweep-step check.
        const std::atomic<bool>* cancel = nullptr;
    };

    /// Run a batch of scenarios against one handle, sharing the handle's
    /// caches, with results in scenario order.  Scenarios that are
    /// batch-compatible (same method, grid and options — differing in
    /// their sources only) are grouped and executed as ONE batched
    /// multi-RHS sweep per group when the method supports it (opm,
    /// transient, grunwald): one factorization and one blocked triangular
    /// solve per time step across the whole group.  Methods without a
    /// batched path (multiterm, adaptive) run their group as a loop that
    /// still reuses one numeric factorization through the cache.  Results
    /// match calling run() in a loop up to floating-point reassociation
    /// in the batched fft history backend (bit-identical elsewhere).
    ///
    /// Fault containment: unlike run(), run_batch never lets a scenario
    /// failure escape as an exception.  Malformed scenarios are marked
    /// `invalid_scenario` up front and never reach a solver; a scenario
    /// that fails inside a shared group sweep poisons only itself — the
    /// group is re-run member by member, so its healthy siblings get
    /// their (bit-identical to run()) results and only the offender
    /// carries a failed `SolveResult::status`.  Result order is always
    /// the scenario order, failures included.
    std::vector<SolveResult> run_batch(SystemHandle handle,
                                       std::span<const Scenario> scenarios);
    std::vector<SolveResult> run_batch(SystemHandle handle,
                                       std::span<const Scenario> scenarios,
                                       const BatchOptions& opt);

    /// Aggregate cache counters for a handle (test / introspection).
    struct CacheStats {
        long symbolic_hits = 0, symbolic_misses = 0;
        long factor_hits = 0, factor_misses = 0;
        long plan_hits = 0, plan_misses = 0;
        long series_hits = 0, series_misses = 0;
    };
    [[nodiscard]] CacheStats cache_stats(SystemHandle handle) const;

    /// The handle's cache bundle (non-owning; valid for the Engine's life).
    [[nodiscard]] opm::SolveCaches& caches(SystemHandle handle);

    /// Number of live (not removed) registered systems.
    [[nodiscard]] std::size_t num_systems() const;

private:
    struct Entry {
        std::unique_ptr<opm::DescriptorSystem> descriptor;
        std::unique_ptr<opm::MultiTermSystem> multiterm;
        std::unique_ptr<opm::SolveCaches> caches;  ///< stable address
        std::uint64_t last_used = 0;  ///< LRU clock tick of the last run
        bool warm = false;            ///< caches may hold warm contents
        [[nodiscard]] bool live() const {
            return descriptor != nullptr || multiterm != nullptr;
        }
    };
    const Entry& entry(SystemHandle handle) const;
    /// Mark `handle` most-recently-used and purge the coldest warm bundle
    /// while more than cache_capacity_ handles are warm.
    void touch(SystemHandle handle);

    std::vector<Entry> systems_;
    std::uint64_t use_tick_ = 0;
    std::size_t cache_capacity_ = 0;  ///< 0 = unlimited
};

} // namespace opmsim::api
