#include "api/registry.hpp"

#include "util/check.hpp"

namespace opmsim::api {

Method method_of(const MethodConfig& config) {
    return static_cast<Method>(config.index());
}

const char* method_name(Method m) {
    switch (m) {
    case Method::opm: return "opm";
    case Method::multiterm: return "multiterm";
    case Method::adaptive: return "adaptive";
    case Method::transient: return "transient";
    case Method::grunwald: return "grunwald";
    }
    return "?";
}

namespace {

SolveResult run_opm(const SystemView& sys, const Scenario& sc) {
    opm::OpmOptions opt = std::get<opm::OpmOptions>(sc.config);
    opt.caches = sys.caches;
    opm::OpmResult r =
        opm::simulate_opm(*sys.descriptor, sc.sources, sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::opm;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.coeffs);
    out.grid = std::move(r.edges);
    out.diag = r.diag;
    return out;
}

SolveResult run_multiterm(const SystemView& sys, const Scenario& sc) {
    opm::MultiTermOptions opt = std::get<opm::MultiTermOptions>(sc.config);
    opt.caches = sys.caches;
    opm::OpmResult r = opm::simulate_multiterm(*sys.multiterm, sc.sources,
                                               sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::multiterm;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.coeffs);
    out.grid = std::move(r.edges);
    out.diag = r.diag;
    return out;
}

SolveResult run_adaptive(const SystemView& sys, const Scenario& sc) {
    opm::AdaptiveOptions opt = std::get<opm::AdaptiveOptions>(sc.config);
    opt.caches = sys.caches;
    opm::AdaptiveResult r =
        opm::simulate_opm_adaptive(*sys.descriptor, sc.sources, sc.t_end, opt);
    SolveResult out;
    out.method = Method::adaptive;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.coeffs);
    out.grid = std::move(r.edges);
    out.steps = std::move(r.steps);
    out.diag = r.diag;
    return out;
}

SolveResult run_transient(const SystemView& sys, const Scenario& sc) {
    transient::TransientOptions opt =
        std::get<transient::TransientOptions>(sc.config);
    opt.caches = sys.caches;
    transient::TransientResult r = transient::simulate_transient(
        *sys.descriptor, sc.sources, sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::transient;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.states);
    out.grid = std::move(r.times);
    out.diag = r.diag;
    return out;
}

SolveResult run_grunwald(const SystemView& sys, const Scenario& sc) {
    transient::GrunwaldOptions opt =
        std::get<transient::GrunwaldOptions>(sc.config);
    opt.caches = sys.caches;
    transient::GrunwaldResult r = transient::simulate_grunwald(
        *sys.descriptor, sc.sources, sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::grunwald;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.states);
    out.grid = std::move(r.times);
    out.diag = r.diag;
    return out;
}

constexpr SolverAdapter kRegistry[] = {
    {Method::opm, "opm", false, &run_opm},
    {Method::multiterm, "multiterm", true, &run_multiterm},
    {Method::adaptive, "adaptive", false, &run_adaptive},
    {Method::transient, "transient", false, &run_transient},
    {Method::grunwald, "grunwald", false, &run_grunwald},
};

} // namespace

const SolverAdapter& adapter_for(Method m) {
    for (const SolverAdapter& a : kRegistry)
        if (a.method == m) return a;
    OPMSIM_ENSURE(false, "adapter_for: unknown method");
}

} // namespace opmsim::api
