#include "api/registry.hpp"

#include "util/check.hpp"

namespace opmsim::api {

Method method_of(const MethodConfig& config) {
    return static_cast<Method>(config.index());
}

const char* method_name(Method m) {
    switch (m) {
    case Method::opm: return "opm";
    case Method::multiterm: return "multiterm";
    case Method::adaptive: return "adaptive";
    case Method::transient: return "transient";
    case Method::grunwald: return "grunwald";
    }
    return "?";
}

namespace {

SolveResult run_opm(const SystemView& sys, const Scenario& sc) {
    opm::OpmOptions opt = std::get<opm::OpmOptions>(sc.config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    opm::OpmResult r =
        opm::simulate_opm(*sys.descriptor, sc.sources, sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::opm;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.coeffs);
    out.grid = std::move(r.edges);
    out.diag = r.diag;
    return out;
}

SolveResult run_multiterm(const SystemView& sys, const Scenario& sc) {
    opm::MultiTermOptions opt = std::get<opm::MultiTermOptions>(sc.config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    opm::OpmResult r = opm::simulate_multiterm(*sys.multiterm, sc.sources,
                                               sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::multiterm;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.coeffs);
    out.grid = std::move(r.edges);
    out.diag = r.diag;
    return out;
}

SolveResult run_adaptive(const SystemView& sys, const Scenario& sc) {
    opm::AdaptiveOptions opt = std::get<opm::AdaptiveOptions>(sc.config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    opm::AdaptiveResult r =
        opm::simulate_opm_adaptive(*sys.descriptor, sc.sources, sc.t_end, opt);
    SolveResult out;
    out.method = Method::adaptive;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.coeffs);
    out.grid = std::move(r.edges);
    out.steps = std::move(r.steps);
    out.diag = r.diag;
    return out;
}

SolveResult run_transient(const SystemView& sys, const Scenario& sc) {
    transient::TransientOptions opt =
        std::get<transient::TransientOptions>(sc.config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    transient::TransientResult r = transient::simulate_transient(
        *sys.descriptor, sc.sources, sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::transient;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.states);
    out.grid = std::move(r.times);
    out.diag = r.diag;
    return out;
}

SolveResult run_grunwald(const SystemView& sys, const Scenario& sc) {
    transient::GrunwaldOptions opt =
        std::get<transient::GrunwaldOptions>(sc.config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    transient::GrunwaldResult r = transient::simulate_grunwald(
        *sys.descriptor, sc.sources, sc.t_end, sc.steps, opt);
    SolveResult out;
    out.method = Method::grunwald;
    out.outputs = std::move(r.outputs);
    out.states = std::move(r.states);
    out.grid = std::move(r.times);
    out.diag = r.diag;
    return out;
}

// ---- batched group runners (source-only scenario groups) -----------------

std::vector<std::vector<wave::Source>> group_sources(
    std::span<const Scenario> group) {
    std::vector<std::vector<wave::Source>> srcs;
    srcs.reserve(group.size());
    for (const Scenario& sc : group) srcs.push_back(sc.sources);
    return srcs;
}

std::vector<SolveResult> run_opm_group(const SystemView& sys,
                                       std::span<const Scenario> group) {
    opm::OpmOptions opt = std::get<opm::OpmOptions>(group.front().config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    std::vector<opm::OpmResult> rs =
        opm::simulate_opm_batch(*sys.descriptor, group_sources(group),
                                group.front().t_end, group.front().steps, opt);
    std::vector<SolveResult> out(rs.size());
    for (std::size_t s = 0; s < rs.size(); ++s) {
        out[s].method = Method::opm;
        out[s].outputs = std::move(rs[s].outputs);
        out[s].states = std::move(rs[s].coeffs);
        out[s].grid = std::move(rs[s].edges);
        out[s].diag = rs[s].diag;
    }
    return out;
}

std::vector<SolveResult> run_transient_group(const SystemView& sys,
                                             std::span<const Scenario> group) {
    transient::TransientOptions opt =
        std::get<transient::TransientOptions>(group.front().config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    std::vector<transient::TransientResult> rs = transient::simulate_transient_batch(
        *sys.descriptor, group_sources(group), group.front().t_end,
        group.front().steps, opt);
    std::vector<SolveResult> out(rs.size());
    for (std::size_t s = 0; s < rs.size(); ++s) {
        out[s].method = Method::transient;
        out[s].outputs = std::move(rs[s].outputs);
        out[s].states = std::move(rs[s].states);
        out[s].grid = std::move(rs[s].times);
        out[s].diag = rs[s].diag;
    }
    return out;
}

std::vector<SolveResult> run_grunwald_group(const SystemView& sys,
                                            std::span<const Scenario> group) {
    transient::GrunwaldOptions opt =
        std::get<transient::GrunwaldOptions>(group.front().config);
    opt.caches = sys.caches;
    opt.control = sys.control;
    std::vector<transient::GrunwaldResult> rs = transient::simulate_grunwald_batch(
        *sys.descriptor, group_sources(group), group.front().t_end,
        group.front().steps, opt);
    std::vector<SolveResult> out(rs.size());
    for (std::size_t s = 0; s < rs.size(); ++s) {
        out[s].method = Method::grunwald;
        out[s].outputs = std::move(rs[s].outputs);
        out[s].states = std::move(rs[s].states);
        out[s].grid = std::move(rs[s].times);
        out[s].diag = rs[s].diag;
    }
    return out;
}

constexpr SolverAdapter kRegistry[] = {
    {Method::opm, "opm", false, &run_opm, &run_opm_group},
    {Method::multiterm, "multiterm", true, &run_multiterm, nullptr},
    {Method::adaptive, "adaptive", false, &run_adaptive, nullptr},
    {Method::transient, "transient", false, &run_transient, &run_transient_group},
    {Method::grunwald, "grunwald", false, &run_grunwald, &run_grunwald_group},
};

// ---- per-method options equality (sources excluded by construction;
// the `caches` pointer is Engine-injected and ignored) ---------------------

bool options_equal(const opm::OpmOptions& a, const opm::OpmOptions& b) {
    return a.alpha == b.alpha && a.form == b.form && a.path == b.path &&
           a.history == b.history && a.soe_tol == b.soe_tol && a.x0 == b.x0 &&
           a.quad_points == b.quad_points && a.quad_panels == b.quad_panels;
}

bool options_equal(const opm::MultiTermOptions& a,
                   const opm::MultiTermOptions& b) {
    return a.path == b.path && a.history == b.history &&
           a.soe_tol == b.soe_tol && a.quad_points == b.quad_points &&
           a.quad_panels == b.quad_panels;
}

bool options_equal(const opm::AdaptiveOptions& a, const opm::AdaptiveOptions& b) {
    return a.alpha == b.alpha && a.tol == b.tol && a.atol == b.atol &&
           a.h_init == b.h_init && a.h_min == b.h_min && a.h_max == b.h_max &&
           a.history == b.history && a.soe_tol == b.soe_tol && a.x0 == b.x0 &&
           a.quad_points == b.quad_points && a.max_steps == b.max_steps &&
           a.max_consecutive_rejects == b.max_consecutive_rejects;
}

bool options_equal(const transient::TransientOptions& a,
                   const transient::TransientOptions& b) {
    return a.method == b.method && a.x0 == b.x0 && a.symbolic == b.symbolic;
}

bool options_equal(const transient::GrunwaldOptions& a,
                   const transient::GrunwaldOptions& b) {
    return a.alpha == b.alpha && a.history == b.history &&
           a.soe_tol == b.soe_tol && a.x0 == b.x0;
}

} // namespace

const SolverAdapter& adapter_for(Method m) {
    for (const SolverAdapter& a : kRegistry)
        if (a.method == m) return a;
    OPMSIM_ENSURE(false, "adapter_for: unknown method");
}

bool batch_compatible(const Scenario& a, const Scenario& b) {
    if (a.t_end != b.t_end || a.steps != b.steps ||
        a.config.index() != b.config.index())
        return false;
    return std::visit(
        [&b](const auto& oa) {
            return options_equal(
                oa, std::get<std::decay_t<decltype(oa)>>(b.config));
        },
        a.config);
}

} // namespace opmsim::api
