#pragma once
/// \file inversion.hpp
/// \brief Numerical inverse Laplace transform (Talbot + Gaver–Stehfest).
///
/// The operational-matrix literature the paper builds on ([1] Bellman,
/// [3] Davies & Martin, [5] Cohen) is rooted in numerical Laplace-transform
/// inversion; this module provides the two classic quadratures as yet
/// another independent oracle for fractional responses:
///  * Talbot's deformed-contour method — complex evaluations of F(s),
///    spectral accuracy for analytic transforms;
///  * Gaver–Stehfest — real evaluations only, works well for smooth
///    monotone time functions, famously fragile beyond ~14 terms.
/// For a fractional descriptor system, X(s) = (s^alpha E - A)^{-1} B U(s)
/// is easy to evaluate, so x(t) = L^{-1}[X](t) cross-checks OPM/GL/FFT.

#include <complex>
#include <functional>

#include "opm/solver.hpp"

namespace opmsim::laplace {

using cplx = std::complex<double>;

/// A Laplace-domain function F(s) defined on the right half-plane /
/// Talbot contour region.
using LaplaceFn = std::function<cplx(cplx)>;

/// Talbot inversion: f(t) from M complex samples of F along the cotangent
/// contour (Abate–Valkó fixed-Talbot parameters).  Requires t > 0.
double talbot_invert(const LaplaceFn& f, double t, int m = 32);

/// Gaver–Stehfest inversion with n terms (n even, <= 18): f(t) from
/// real samples F(k ln2 / t).  Requires t > 0.
double stehfest_invert(const std::function<double(double)>& f, double t,
                       int n = 14);

/// Laplace-domain response of a fractional descriptor system for one
/// output channel:  Y(s) = [C (s^alpha E - A)^{-1} B U(s)]_channel, where
/// each input has transform u_hat[i](s).
LaplaceFn system_transform(const opm::DenseDescriptorSystem& sys, double alpha,
                           std::vector<LaplaceFn> u_hat, la::index_t channel);

/// Transform of the unit step: 1/s.
LaplaceFn step_transform(double level = 1.0);

} // namespace opmsim::laplace
