#include "laplace/inversion.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "la/dense_lu.hpp"
#include "util/check.hpp"

namespace opmsim::laplace {

double talbot_invert(const LaplaceFn& f, double t, int m) {
    OPMSIM_REQUIRE(t > 0.0, "talbot_invert: t must be positive");
    OPMSIM_REQUIRE(m >= 8 && m <= 128, "talbot_invert: m in [8,128]");

    // Fixed-Talbot (Abate–Valkó): contour s(theta) = r*theta(cot(theta)+i),
    // r = 2m/(5t), theta_k = (2k+1)pi/(2m)... using the midpoint variant:
    const double r = 2.0 * static_cast<double>(m) / (5.0 * t);
    double sum = 0.5 * std::exp(r * t) * f(cplx(r, 0.0)).real();
    for (int k = 1; k < m; ++k) {
        const double theta =
            static_cast<double>(k) * std::numbers::pi / static_cast<double>(m);
        const double cot = std::cos(theta) / std::sin(theta);
        const cplx s(r * theta * cot, r * theta);
        // ds/dtheta contribution: (1 + i*sigma(theta)), sigma = theta +
        // (theta*cot - 1)*cot.
        const double sigma = theta + (theta * cot - 1.0) * cot;
        const cplx factor = std::exp(s * t) * f(s) * cplx(1.0, sigma);
        sum += factor.real();
    }
    return sum * r / static_cast<double>(m);
}

double stehfest_invert(const std::function<double(double)>& f, double t, int n) {
    OPMSIM_REQUIRE(t > 0.0, "stehfest_invert: t must be positive");
    OPMSIM_REQUIRE(n >= 2 && n <= 18 && n % 2 == 0,
                   "stehfest_invert: n must be even, in [2,18]");

    const double ln2 = std::numbers::ln2;
    double sum = 0.0;
    for (int k = 1; k <= n; ++k) {
        // Stehfest weight V_k.
        double vk = 0.0;
        const int jmin = (k + 1) / 2;
        const int jmax = std::min(k, n / 2);
        for (int j = jmin; j <= jmax; ++j) {
            double term = std::pow(static_cast<double>(j), n / 2) *
                          std::tgamma(2.0 * j + 1.0);
            term /= std::tgamma(static_cast<double>(n) / 2.0 - j + 1.0) *
                    std::tgamma(static_cast<double>(j) + 1.0) *
                    std::tgamma(static_cast<double>(j - 1) + 1.0) *
                    std::tgamma(static_cast<double>(k - j) + 1.0) *
                    std::tgamma(2.0 * j - k + 1.0);
            vk += term;
        }
        if ((k + n / 2) % 2 != 0) vk = -vk;
        sum += vk * f(static_cast<double>(k) * ln2 / t);
    }
    return sum * ln2 / t;
}

LaplaceFn system_transform(const opm::DenseDescriptorSystem& sys, double alpha,
                           std::vector<LaplaceFn> u_hat, la::index_t channel) {
    OPMSIM_REQUIRE(alpha > 0.0, "system_transform: alpha must be positive");
    OPMSIM_REQUIRE(static_cast<la::index_t>(u_hat.size()) == sys.num_inputs(),
                   "system_transform: input transform count mismatch");
    OPMSIM_REQUIRE(channel >= 0 && channel < sys.num_outputs(),
                   "system_transform: output channel out of range");
    return [sys, alpha, u_hat = std::move(u_hat), channel](cplx s) -> cplx {
        const la::index_t n = sys.num_states();
        const cplx sa = std::pow(s, alpha);
        la::Matrixz pencil(n, n);
        for (la::index_t j = 0; j < n; ++j)
            for (la::index_t i = 0; i < n; ++i)
                pencil(i, j) = sa * sys.e(i, j) - sys.a(i, j);
        la::Vectorz rhs(static_cast<std::size_t>(n), cplx(0, 0));
        for (la::index_t c = 0; c < sys.num_inputs(); ++c) {
            const cplx uc = u_hat[static_cast<std::size_t>(c)](s);
            for (la::index_t i = 0; i < n; ++i)
                rhs[static_cast<std::size_t>(i)] += sys.b(i, c) * uc;
        }
        const la::Vectorz x = la::DenseLu<cplx>(std::move(pencil)).solve(rhs);
        if (sys.c.rows() == 0) return x[static_cast<std::size_t>(channel)];
        cplx y(0, 0);
        for (la::index_t i = 0; i < n; ++i)
            y += sys.c(channel, i) * x[static_cast<std::size_t>(i)];
        return y;
    };
}

LaplaceFn step_transform(double level) {
    return [level](cplx s) { return level / s; };
}

} // namespace opmsim::laplace
