#include "transient/steppers.hpp"

#include <optional>

#include "la/sparse_lu.hpp"
#include "opm/solve_cache.hpp"
#include "util/check.hpp"
#include "util/status.hpp"
#include "util/timer.hpp"

namespace opmsim::transient {

const char* method_name(Method m) {
    switch (m) {
    case Method::backward_euler: return "b-Euler";
    case Method::trapezoidal: return "Trapezoidal";
    case Method::gear2: return "Gear";
    }
    return "?";
}

std::vector<TransientResult> simulate_transient_batch(
    const opm::DescriptorSystem& sys,
    const std::vector<std::vector<wave::Source>>& inputs, double t_end,
    index_t steps, const TransientOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(!inputs.empty(), "simulate_transient_batch: empty scenario list");
    OPMSIM_REQUIRE(t_end > 0.0 && steps >= 1, "simulate_transient: bad time grid");
    const index_t n = sys.num_states();
    const index_t p = sys.num_inputs();
    const index_t nscen = static_cast<index_t>(inputs.size());
    const index_t nr = n * nscen;
    for (const auto& src : inputs)
        OPMSIM_REQUIRE(static_cast<index_t>(src.size()) == p,
                       "simulate_transient: input count mismatch");
    OPMSIM_REQUIRE(opt.x0.empty() || static_cast<index_t>(opt.x0.size()) == n,
                   "simulate_transient: x0 size mismatch");

    const double h = t_end / static_cast<double>(steps);
    const index_t m = steps;

    Vectord times(static_cast<std::size_t>(m) + 1);
    for (index_t k = 0; k <= m; ++k)
        times[static_cast<std::size_t>(k)] = h * static_cast<double>(k);

    // Pencils.  Gear's first step is backward Euler, so it needs a second
    // pencil (E/h - A) — same pattern, different lead coefficient: a copy
    // of the BDF2 factor refactorized numerically, no second analysis or
    // symbolic pass.
    Diagnostics diag;
    WallTimer t;
    const double lead = (opt.method == Method::backward_euler) ? 1.0 / h
                        : (opt.method == Method::trapezoidal)  ? 2.0 / h
                                                               : 1.5 / h;
    const la::CscMatrix pencil = la::CscMatrix::add(lead, sys.e, -1.0, sys.a);
    if (opt.symbolic)
        OPMSIM_REQUIRE(opt.symbolic->size() == n,
                       "simulate_transient: shared symbolic size mismatch");
    // Factor acquisition, most-shared first: a caller-provided symbolic
    // wins (legacy bench_table2 threading), then the cross-run cache
    // bundle, then a fresh analysis.
    std::shared_ptr<const la::SparseLu> lu_ptr;
    std::optional<opm::PencilSolve> ps;
    if (opt.symbolic) {
        lu_ptr = std::make_shared<const la::SparseLu>(pencil, opt.symbolic);
        ++diag.factorizations;
        diag.ordering = opt.symbolic->chosen_ordering();
    } else {
        ps.emplace(opt.caches, pencil, diag, opt.control);
        lu_ptr = ps->factor();
    }
    const la::SparseLu& lu = *lu_ptr;
    const std::shared_ptr<const la::SparseLuSymbolic> symbolic = lu.symbolic();
    std::unique_ptr<la::SparseLu> lu_start;
    if (opt.method == Method::gear2) {
        const la::CscMatrix start = la::CscMatrix::add(1.0 / h, sys.e, -1.0, sys.a);
        lu_start = std::make_unique<la::SparseLu>(lu);
        try {
            lu_start->refactor(start);
            ++diag.refactor_count;
        } catch (const numerical_error&) {
            // The frozen BDF2 pivot sequence can cancel exactly on the
            // backward-Euler pencil; re-pivot with a fresh numeric
            // factorization (same shared analysis).
            lu_start = std::make_unique<la::SparseLu>(start, symbolic);
            ++diag.factorizations;
        }
    }
    diag.factor_seconds = t.elapsed_s();

    // March the S scenarios side by side: states stacked scenario-major
    // (rows [s*n, (s+1)*n)), one multi-RHS solve per step.
    t.reset();
    WallTimer st;
    la::Matrixd states(nr, m + 1);
    if (!opt.x0.empty())
        for (index_t s = 0; s < nscen; ++s)
            for (index_t i = 0; i < n; ++i)
                states(s * n + i, 0) = opt.x0[static_cast<std::size_t>(i)];

    Vectord ut(static_cast<std::size_t>(p));
    Vectord bu_prev(static_cast<std::size_t>(nr), 0.0);
    for (index_t s = 0; s < nscen; ++s) {
        // B u at t = 0 (needed by the trapezoidal combination).
        const auto& src = inputs[static_cast<std::size_t>(s)];
        for (index_t i = 0; i < p; ++i)
            ut[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(i)](0.0);
        sys.b.gaxpy(1.0, ut.data(), bu_prev.data() + s * n);
    }

    Vectord xm1(static_cast<std::size_t>(nr), 0.0), xm2(static_cast<std::size_t>(nr), 0.0);
    if (!opt.x0.empty())
        for (index_t s = 0; s < nscen; ++s)
            for (index_t i = 0; i < n; ++i)
                xm1[static_cast<std::size_t>(s * n + i)] = opt.x0[static_cast<std::size_t>(i)];

    Vectord rhs(static_cast<std::size_t>(nr));
    Vectord bu(static_cast<std::size_t>(nr));
    for (index_t k = 1; k <= m; ++k) {
        const double tk = times[static_cast<std::size_t>(k)];
        std::fill(bu.begin(), bu.end(), 0.0);
        for (index_t s = 0; s < nscen; ++s) {
            const auto& src = inputs[static_cast<std::size_t>(s)];
            for (index_t i = 0; i < p; ++i)
                ut[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(i)](tk);
            sys.b.gaxpy(1.0, ut.data(), bu.data() + s * n);
        }

        std::fill(rhs.begin(), rhs.end(), 0.0);
        const la::SparseLu* step_lu = &lu;
        switch (opt.method) {
        case Method::backward_euler:
            // (E/h - A) x_k = (E/h) x_{k-1} + B u_k
            for (index_t s = 0; s < nscen; ++s)
                sys.e.gaxpy(1.0 / h, xm1.data() + s * n, rhs.data() + s * n);
            la::axpy(1.0, bu, rhs);
            break;
        case Method::trapezoidal:
            // (2E/h - A) x_k = (2E/h + A) x_{k-1} + B(u_k + u_{k-1})
            for (index_t s = 0; s < nscen; ++s) {
                sys.e.gaxpy(2.0 / h, xm1.data() + s * n, rhs.data() + s * n);
                sys.a.gaxpy(1.0, xm1.data() + s * n, rhs.data() + s * n);
            }
            la::axpy(1.0, bu, rhs);
            la::axpy(1.0, bu_prev, rhs);
            break;
        case Method::gear2:
            if (k == 1) {
                for (index_t s = 0; s < nscen; ++s)
                    sys.e.gaxpy(1.0 / h, xm1.data() + s * n, rhs.data() + s * n);
                la::axpy(1.0, bu, rhs);
                step_lu = lu_start.get();
            } else {
                // (1.5E/h - A) x_k = (E/h)(2 x_{k-1} - 0.5 x_{k-2}) + B u_k
                for (index_t s = 0; s < nscen; ++s) {
                    sys.e.gaxpy(2.0 / h, xm1.data() + s * n, rhs.data() + s * n);
                    sys.e.gaxpy(-0.5 / h, xm2.data() + s * n, rhs.data() + s * n);
                }
                la::axpy(1.0, bu, rhs);
            }
            break;
        }
        if (step_lu == &lu && ps) {
            ps->solve(rhs.data(), nscen, n);
        } else {
            // Gear's backward-Euler start pencil / caller-provided symbolic
            // path: direct solve, same bookkeeping PencilSolve would do.
            util::check_run_control(opt.control);
            st.reset();
            step_lu->solve_in_place(rhs.data(), nscen, n);
            diag.solve_seconds += st.elapsed_s();
            diag.rhs_solved += nscen;
        }
        for (index_t i = 0; i < nr; ++i) states(i, k) = rhs[static_cast<std::size_t>(i)];
        std::swap(xm2, xm1);
        std::swap(xm1, rhs);
        std::swap(bu_prev, bu);
    }
    diag.sweep_seconds = t.elapsed_s();

    // Per-scenario results + outputs y = C x at the step times.
    const index_t q = sys.num_outputs();
    std::vector<TransientResult> out(static_cast<std::size_t>(nscen));
    Vectord col(static_cast<std::size_t>(n));
    for (index_t s = 0; s < nscen; ++s) {
        TransientResult& res = out[static_cast<std::size_t>(s)];
        res.times = times;
        if (nscen == 1) {
            res.states = std::move(states);  // single scenario: no copy
        } else {
            res.states = la::Matrixd(n, m + 1);
            for (index_t k = 0; k <= m; ++k)
                for (index_t i = 0; i < n; ++i)
                    res.states(i, k) = states(s * n + i, k);
        }
        if (s == 0) {
            res.diag = diag;
        } else {
            res.diag.ordering = diag.ordering;
            // Report the shared batch factor as a cache hit only when a
            // cache bundle actually served it.
            if (opt.caches != nullptr) res.diag.factor_cache_hits = 1;
        }
        res.diag.rhs_solved = m;
        res.symbolic = symbolic;

        la::Matrixd y(q, m + 1);
        for (index_t k = 0; k <= m; ++k) {
            for (index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = res.states(i, k);
            if (sys.c.rows() > 0) {
                const Vectord yk = sys.c.matvec(col);
                for (index_t i = 0; i < q; ++i) y(i, k) = yk[static_cast<std::size_t>(i)];
            } else {
                for (index_t i = 0; i < q; ++i) y(i, k) = col[static_cast<std::size_t>(i)];
            }
        }
        for (index_t i = 0; i < q; ++i) {
            Vectord v(static_cast<std::size_t>(m) + 1);
            for (index_t k = 0; k <= m; ++k) v[static_cast<std::size_t>(k)] = y(i, k);
            res.outputs.emplace_back(res.times, std::move(v));
        }
    }
    return out;
}

TransientResult simulate_transient(const opm::DescriptorSystem& sys,
                                   const std::vector<wave::Source>& inputs,
                                   double t_end, index_t steps,
                                   const TransientOptions& opt) {
    std::vector<TransientResult> res =
        simulate_transient_batch(sys, {inputs}, t_end, steps, opt);
    return std::move(res.front());
}

} // namespace opmsim::transient
