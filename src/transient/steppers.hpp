#pragma once
/// \file steppers.hpp
/// \brief Classic implicit time-stepping baselines (Table II comparison).
///
/// Backward Euler, trapezoidal and Gear's 2nd-order BDF on the descriptor
/// system E x' = A x + B u — the "advanced transient analysis methods" the
/// paper measures OPM against.  All three factor one constant pencil and
/// reuse it for every step, so their cost profile matches OPM's
/// (one factorization + m solves).

#include <memory>

#include "la/sparse_lu.hpp"
#include "opm/solver.hpp"

namespace opmsim::transient {

using la::index_t;
using la::Vectord;

enum class Method {
    backward_euler,  ///< O(h) LTE; the paper's "b-Euler" rows
    trapezoidal,     ///< O(h^2); A-stable
    gear2            ///< BDF2, O(h^2); L-stable (the paper's "Gear")
};

struct TransientOptions {
    // NOTE: keep api/registry.cpp options_equal() in sync when adding fields
    // (it decides run_batch scenario grouping; `caches` is excluded).
    Method method = Method::trapezoidal;
    Vectord x0;  ///< initial state; empty = zero
    /// Optional shared pattern analysis for the implicit pencil
    /// (lead*E - A).  Its pattern is the same for every method and step
    /// size, so a caller running several baselines on one system (e.g.
    /// bench_table2_power_grid) can analyze once and reuse; when empty,
    /// the analysis is computed here and returned in
    /// TransientResult::symbolic.  Takes precedence over `caches`.
    std::shared_ptr<const la::SparseLuSymbolic> symbolic;
    /// Optional cross-run cache bundle (same semantics as
    /// OpmOptions::caches); consulted when `symbolic` is empty.
    opm::SolveCaches* caches = nullptr;
    /// Optional cooperative deadline / cancellation token (non-owning;
    /// util/status.hpp), checked at step granularity.  Injected by
    /// Engine::run_batch; excluded from options_equal like `caches`.
    const util::RunControl* control = nullptr;
};

struct TransientResult {
    la::Matrixd states;  ///< n x (m+1), including the initial state
    Vectord times;       ///< m+1 time points
    std::vector<wave::Waveform> outputs;

    /// Uniform timing / cache diagnostics (opm/diagnostics.hpp).
    Diagnostics diag;

    /// The pencil's pattern analysis (feed back into TransientOptions to
    /// skip the ordering on the next same-system run).
    std::shared_ptr<const la::SparseLuSymbolic> symbolic;
};

/// March m uniform steps over [0, t_end].
TransientResult simulate_transient(const opm::DescriptorSystem& sys,
                                   const std::vector<wave::Source>& inputs,
                                   double t_end, index_t steps,
                                   const TransientOptions& opt = {});

/// Batched variant: S source sets, one factorization, one multi-RHS
/// triangular solve per step across all S scenarios (bit-identical per
/// scenario to S separate runs).  Shared factor work is accounted to the
/// first result's Diagnostics; each result reports its own rhs_solved.
std::vector<TransientResult> simulate_transient_batch(
    const opm::DescriptorSystem& sys,
    const std::vector<std::vector<wave::Source>>& inputs, double t_end,
    index_t steps, const TransientOptions& opt = {});

/// Name for table output ("b-Euler", "Trapezoidal", "Gear").
const char* method_name(Method m);

} // namespace opmsim::transient
