#pragma once
/// \file fft_solver.hpp
/// \brief Frequency-domain fractional solver — the paper's FFT baseline.
///
/// Implements the method OPM is compared against in Table I: the input is
/// transformed with an FFT, the response is computed per frequency sample
/// by solving the complex pencil
///     ((j w_k)^alpha E - A) X_k = B U_k,
/// and the time-domain response is recovered with the inverse FFT.  The
/// paper's "FFT-1" uses 8 frequency samples, "FFT-2" uses 100.  The known
/// weaknesses the paper calls out — hard-to-control aliasing error from
/// the implicit periodic extension, and complex arithmetic throughout —
/// are faithfully present.

#include "opm/solver.hpp"

namespace opmsim::transient {

struct FftSolverOptions {
    double alpha = 1.0;      ///< fractional order of the system
    la::index_t samples = 100;  ///< frequency sampling points (any size; the
                                ///< FFT substrate handles non powers of two)
};

struct FftSolverResult {
    std::vector<wave::Waveform> outputs;  ///< y(t) at the sample times
    double solve_seconds = 0.0;           ///< end-to-end solve time
};

/// Simulate E d^alpha x = A x + B u on [0, t_end) with the FFT method.
/// Requires an invertible A (the DC pencil).  Dense pencils only — the
/// method is O(samples * n^3) with complex arithmetic.
FftSolverResult simulate_fft(const opm::DenseDescriptorSystem& sys,
                             const std::vector<wave::Source>& inputs,
                             double t_end, const FftSolverOptions& opt = {});

} // namespace opmsim::transient
