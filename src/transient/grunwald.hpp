#pragma once
/// \file grunwald.hpp
/// \brief Grünwald–Letnikov fractional time stepper (extra baseline).
///
/// Not in the paper, but the standard time-domain discretization of
/// fractional derivatives:
///     d^alpha x(t_k) ~= h^{-alpha} sum_{j=0..k} w_j x_{k-j},
///     w_j = (-1)^j C(alpha, j),
/// giving the implicit marching scheme
///     (w_0 h^{-alpha} E - A) x_k = B u_k - h^{-alpha} E sum_{j>=1} w_j x_{k-j}.
/// Like OPM's fractional path its history convolutions cost O(n m^2)
/// directly, or O(n m log^2 m) through the fast history engine — a useful
/// independent cross-check for every fractional experiment (Fig. E
/// compares OPM / GL / FFT against the Mittag-Leffler oracle).

#include "opm/solver.hpp"

namespace opmsim::transient {

struct GrunwaldOptions {
    double alpha = 0.5;  ///< fractional order, > 0
    /// History-sum backend (same semantics as OpmOptions::history).
    opm::HistoryBackend history = opm::HistoryBackend::automatic;
};

struct GrunwaldResult {
    la::Matrixd states;  ///< n x (m+1) including x(0) = 0
    la::Vectord times;
    std::vector<wave::Waveform> outputs;
    double solve_seconds = 0.0;
};

/// March m uniform GL steps over [0, t_end]; zero initial state.
GrunwaldResult simulate_grunwald(const opm::DescriptorSystem& sys,
                                 const std::vector<wave::Source>& inputs,
                                 double t_end, la::index_t steps,
                                 const GrunwaldOptions& opt = {});

} // namespace opmsim::transient
