#pragma once
/// \file grunwald.hpp
/// \brief Grünwald–Letnikov fractional time stepper (extra baseline).
///
/// Not in the paper, but the standard time-domain discretization of
/// fractional derivatives:
///     d^alpha x(t_k) ~= h^{-alpha} sum_{j=0..k} w_j x_{k-j},
///     w_j = (-1)^j C(alpha, j),
/// giving the implicit marching scheme
///     (w_0 h^{-alpha} E - A) x_k = B u_k - h^{-alpha} E sum_{j>=1} w_j x_{k-j}.
/// Like OPM's fractional path its history convolutions cost O(n m^2)
/// directly, or O(n m log^2 m) through the fast history engine — a useful
/// independent cross-check for every fractional experiment (Fig. E
/// compares OPM / GL / FFT against the Mittag-Leffler oracle).

#include "opm/solver.hpp"

namespace opmsim::transient {

struct GrunwaldOptions {
    // NOTE: keep api/registry.cpp options_equal() in sync when adding fields
    // (it decides run_batch scenario grouping; `caches` is excluded).
    double alpha = 0.5;  ///< fractional order, > 0
    /// History-sum backend (same semantics as OpmOptions::history).
    opm::HistoryBackend history = opm::HistoryBackend::automatic;
    /// Absolute l1 fit tolerance for the `soe` history backend (same
    /// semantics as OpmOptions::soe_tol; ignored by the exact backends).
    double soe_tol = 1e-8;
    /// Initial state, Caputo convention — the same shift as
    /// OpmOptions::x0 / AdaptiveOptions::x0: x(t) = x0 + z(t) with
    /// E d^alpha z = A z + (B u + A x0) and z(0) = 0 (the fractional
    /// derivative of the constant x0 vanishes).  Empty = zero.  This is
    /// what makes IC-bearing cross-solver oracles against the OPM paths
    /// possible.
    la::Vectord x0;
    /// Optional cross-run cache bundle (same semantics as
    /// OpmOptions::caches).
    opm::SolveCaches* caches = nullptr;
    /// Optional cooperative deadline / cancellation token (non-owning;
    /// util/status.hpp), checked at step granularity.  Injected by
    /// Engine::run_batch; excluded from options_equal like `caches`.
    const util::RunControl* control = nullptr;
};

struct GrunwaldResult {
    la::Matrixd states;  ///< n x (m+1) including x(0) = x0 (zero if empty)
    la::Vectord times;
    std::vector<wave::Waveform> outputs;

    /// Uniform timing / cache diagnostics (opm/diagnostics.hpp).
    Diagnostics diag;
};

/// March m uniform GL steps over [0, t_end].
GrunwaldResult simulate_grunwald(const opm::DescriptorSystem& sys,
                                 const std::vector<wave::Source>& inputs,
                                 double t_end, la::index_t steps,
                                 const GrunwaldOptions& opt = {});

/// Batched variant: S source sets, one factorization, one shared
/// Grünwald–Letnikov history engine over the stacked n*S state rows and
/// one multi-RHS triangular solve per step.  Matches S separate runs up
/// to floating-point reassociation in the fft history backend
/// (bit-identical on naive/blocked).  Shared factor work is accounted to
/// the first result's Diagnostics; each result reports its own rhs_solved.
std::vector<GrunwaldResult> simulate_grunwald_batch(
    const opm::DescriptorSystem& sys,
    const std::vector<std::vector<wave::Source>>& inputs, double t_end,
    la::index_t steps, const GrunwaldOptions& opt = {});

} // namespace opmsim::transient
