#include "transient/ac.hpp"

#include <cmath>
#include <numbers>

#include "la/dense_lu.hpp"
#include "util/check.hpp"

namespace opmsim::transient {

double AcResult::magnitude(std::size_t k, la::index_t out, la::index_t in) const {
    return std::abs(points.at(k).h(out, in));
}

double AcResult::phase(std::size_t k, la::index_t out, la::index_t in) const {
    return std::arg(points.at(k).h(out, in));
}

la::Vectord log_sweep(double w_lo, double w_hi, la::index_t npts) {
    OPMSIM_REQUIRE(w_lo > 0 && w_hi > w_lo && npts >= 2,
                   "log_sweep: need 0 < w_lo < w_hi, npts >= 2");
    la::Vectord w(static_cast<std::size_t>(npts));
    const double step = std::log(w_hi / w_lo) / static_cast<double>(npts - 1);
    for (la::index_t k = 0; k < npts; ++k)
        w[static_cast<std::size_t>(k)] = w_lo * std::exp(step * static_cast<double>(k));
    return w;
}

AcResult ac_analysis(const opm::DenseDescriptorSystem& sys, double alpha,
                     const la::Vectord& omegas) {
    OPMSIM_REQUIRE(alpha > 0.0, "ac_analysis: alpha must be positive");
    const la::index_t n = sys.num_states();
    const la::index_t p = sys.num_inputs();
    const la::index_t q = sys.num_outputs();

    AcResult res;
    res.points.reserve(omegas.size());
    for (const double w : omegas) {
        OPMSIM_REQUIRE(w > 0.0, "ac_analysis: frequencies must be positive");
        // (jw)^alpha on the principal branch.
        const double mag = std::pow(w, alpha);
        const double ang = alpha * std::numbers::pi / 2.0;
        const la::cplx sa(mag * std::cos(ang), mag * std::sin(ang));

        la::Matrixz pencil(n, n);
        for (la::index_t j = 0; j < n; ++j)
            for (la::index_t i = 0; i < n; ++i)
                pencil(i, j) = sa * sys.e(i, j) - sys.a(i, j);
        const la::DenseLu<la::cplx> lu(std::move(pencil));

        AcPoint pt;
        pt.omega = w;
        pt.h = la::Matrixz(q, p);
        la::Vectorz col(static_cast<std::size_t>(n));
        for (la::index_t c = 0; c < p; ++c) {
            for (la::index_t i = 0; i < n; ++i)
                col[static_cast<std::size_t>(i)] = sys.b(i, c);
            lu.solve_in_place(col);
            if (sys.c.rows() > 0) {
                for (la::index_t o = 0; o < q; ++o) {
                    la::cplx y(0, 0);
                    for (la::index_t i = 0; i < n; ++i)
                        y += sys.c(o, i) * col[static_cast<std::size_t>(i)];
                    pt.h(o, c) = y;
                }
            } else {
                for (la::index_t o = 0; o < q; ++o)
                    pt.h(o, c) = col[static_cast<std::size_t>(o)];
            }
        }
        res.points.push_back(std::move(pt));
    }
    return res;
}

} // namespace opmsim::transient
