#pragma once
/// \file ac.hpp
/// \brief Small-signal AC (frequency-response) analysis.
///
/// Complements the time-domain solvers: evaluates the transfer matrix
///     H(jw) = C ((jw)^alpha E - A)^{-1} B
/// over a frequency sweep.  Fractional systems show their signature here —
/// |H| slopes of -20*alpha dB/dec and constant phase alpha*90 degrees —
/// which tests use to validate generated models (e.g. the skin-effect
/// transmission line's half-order roll-off).

#include <complex>

#include "opm/solver.hpp"

namespace opmsim::transient {

struct AcPoint {
    double omega = 0.0;                  ///< angular frequency [rad/s]
    la::Matrixz h;                       ///< q x p transfer matrix at jw
};

struct AcResult {
    std::vector<AcPoint> points;

    /// |H(c_out, c_in)| at sweep index k.
    [[nodiscard]] double magnitude(std::size_t k, la::index_t out,
                                   la::index_t in) const;
    /// Phase [rad] of H(c_out, c_in) at sweep index k.
    [[nodiscard]] double phase(std::size_t k, la::index_t out,
                               la::index_t in) const;
};

/// Logarithmic sweep: npts frequencies from w_lo to w_hi (rad/s).
la::Vectord log_sweep(double w_lo, double w_hi, la::index_t npts);

/// Evaluate the transfer matrix over the given angular frequencies.
AcResult ac_analysis(const opm::DenseDescriptorSystem& sys, double alpha,
                     const la::Vectord& omegas);

} // namespace opmsim::transient
