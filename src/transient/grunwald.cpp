#include "transient/grunwald.hpp"

#include <cmath>
#include <limits>

#include "la/sparse_lu.hpp"
#include "opm/fractional_series.hpp"
#include "opm/solve_cache.hpp"
#include "util/check.hpp"
#include "util/fault_inject.hpp"
#include "util/timer.hpp"

namespace opmsim::transient {

std::vector<GrunwaldResult> simulate_grunwald_batch(
    const opm::DescriptorSystem& sys,
    const std::vector<std::vector<wave::Source>>& inputs, double t_end,
    la::index_t steps, const GrunwaldOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(!inputs.empty(), "simulate_grunwald_batch: empty scenario list");
    OPMSIM_REQUIRE(t_end > 0.0 && steps >= 1, "simulate_grunwald: bad time grid");
    OPMSIM_REQUIRE(opt.alpha > 0.0, "simulate_grunwald: alpha must be positive");
    const la::index_t n = sys.num_states();
    const la::index_t p = sys.num_inputs();
    const la::index_t nscen = static_cast<la::index_t>(inputs.size());
    const la::index_t nr = n * nscen;
    for (const auto& src : inputs)
        OPMSIM_REQUIRE(static_cast<la::index_t>(src.size()) == p,
                       "simulate_grunwald: input count mismatch");
    OPMSIM_REQUIRE(opt.x0.empty() || static_cast<la::index_t>(opt.x0.size()) == n,
                   "simulate_grunwald: x0 size must equal the state count");

    const la::index_t m = steps;
    const double h = t_end / static_cast<double>(m);
    const double ha = std::pow(h, -opt.alpha);
    const la::Vectord w = opt.caches != nullptr
                              ? opt.caches->grunwald_weights(opt.alpha, m + 1)
                              : opm::grunwald_weights(opt.alpha, m + 1);

    Diagnostics diag;
    diag.history_backend = opm::HistoryEngine::resolve(opt.history, m + 1);
    la::Vectord times(static_cast<std::size_t>(m) + 1);
    for (la::index_t k = 0; k <= m; ++k)
        times[static_cast<std::size_t>(k)] = h * static_cast<double>(k);

    WallTimer timer;
    const la::CscMatrix pencil =
        la::CscMatrix::add(w[0] * ha, sys.e, -1.0, sys.a);
    opm::PencilSolve ps(opt.caches, pencil, diag, opt.control);
    diag.factor_seconds = timer.elapsed_s();

    // Caputo shift: march z = x - x0 (z_0 = 0) with the constant forcing
    // term A x0 folded into every step's RHS; x0 is added back below.
    la::Vectord ax0;
    if (!opt.x0.empty()) ax0 = sys.a.matvec(opt.x0);

    // The history sum sum_{j>=1} w_j z_{k-j} is exactly the engine's
    // Toeplitz form sum_{i<k} w_{k-i} z_i over columns 0..m (z_0 = 0);
    // batched scenarios stack as extra rows of the shared engine.
    timer.reset();
    la::Matrixd states(nr, m + 1);
    if (!opt.x0.empty())
        for (la::index_t s = 0; s < nscen; ++s)
            for (la::index_t i = 0; i < n; ++i)
                states(s * n + i, 0) = opt.x0[static_cast<std::size_t>(i)];
    opm::HistoryEngine eng(w, nr, m + 1, opt.history, opt.caches, opt.soe_tol);
    if (eng.backend() == opm::HistoryBackend::soe) {
        diag.soe_modes = static_cast<int>(eng.soe_modes());
        diag.soe_fit_error = eng.soe_fit_error();
        diag.soe_fits = static_cast<int>(eng.soe_fresh_fits());
    }
    la::Vectord z0(static_cast<std::size_t>(nr), 0.0);
    eng.push(0, z0.data());

    la::Vectord ut(static_cast<std::size_t>(p));
    la::Vectord rhs(static_cast<std::size_t>(nr));
    la::Vectord hist(static_cast<std::size_t>(nr));
    for (la::index_t k = 1; k <= m; ++k) {
        const double tk = times[static_cast<std::size_t>(k)];
        std::fill(rhs.begin(), rhs.end(), 0.0);
        for (la::index_t s = 0; s < nscen; ++s) {
            const auto& src = inputs[static_cast<std::size_t>(s)];
            for (la::index_t i = 0; i < p; ++i)
                ut[static_cast<std::size_t>(i)] = src[static_cast<std::size_t>(i)](tk);
            sys.b.gaxpy(1.0, ut.data(), rhs.data() + s * n);
            if (!ax0.empty())
                for (la::index_t i = 0; i < n; ++i)
                    rhs[static_cast<std::size_t>(s * n + i)] += ax0[static_cast<std::size_t>(i)];
        }

        eng.history(k, hist);
        for (la::index_t s = 0; s < nscen; ++s)
            sys.e.gaxpy(-ha, hist.data() + s * n, rhs.data() + s * n);
        ps.solve(rhs.data(), nscen, n);
        for (la::index_t i = 0; i < nr; ++i) {
            states(i, k) = rhs[static_cast<std::size_t>(i)];
            if (!opt.x0.empty())
                states(i, k) += opt.x0[static_cast<std::size_t>(i % n)];
        }
        if (fault::enabled() && fault::fire(fault::Site::history_nan))
            rhs[0] = std::numeric_limits<double>::quiet_NaN();
        eng.push(k, rhs.data());
    }
    diag.sweep_seconds = timer.elapsed_s();

    // Per-scenario results + outputs.
    const la::index_t q = sys.num_outputs();
    std::vector<GrunwaldResult> out(static_cast<std::size_t>(nscen));
    la::Vectord col(static_cast<std::size_t>(n));
    for (la::index_t s = 0; s < nscen; ++s) {
        GrunwaldResult& res = out[static_cast<std::size_t>(s)];
        res.times = times;
        if (nscen == 1) {
            res.states = std::move(states);  // single scenario: no copy
        } else {
            res.states = la::Matrixd(n, m + 1);
            for (la::index_t k = 0; k <= m; ++k)
                for (la::index_t i = 0; i < n; ++i)
                    res.states(i, k) = states(s * n + i, k);
        }
        if (s == 0) {
            res.diag = diag;
        } else {
            res.diag.history_backend = diag.history_backend;
            res.diag.soe_modes = diag.soe_modes;
            res.diag.soe_fit_error = diag.soe_fit_error;
            res.diag.ordering = diag.ordering;
            // Report the shared batch factor as a cache hit only when a
            // cache bundle actually served it.
            if (opt.caches != nullptr) res.diag.factor_cache_hits = 1;
        }
        res.diag.rhs_solved = m;
        for (la::index_t o = 0; o < q; ++o) {
            la::Vectord v(static_cast<std::size_t>(m) + 1, 0.0);
            for (la::index_t k = 0; k <= m; ++k) {
                for (la::index_t i = 0; i < n; ++i)
                    col[static_cast<std::size_t>(i)] = res.states(i, k);
                if (sys.c.rows() > 0) {
                    const la::Vectord yk = sys.c.matvec(col);
                    v[static_cast<std::size_t>(k)] = yk[static_cast<std::size_t>(o)];
                } else {
                    v[static_cast<std::size_t>(k)] = col[static_cast<std::size_t>(o)];
                }
            }
            res.outputs.emplace_back(res.times, std::move(v));
        }
    }
    return out;
}

GrunwaldResult simulate_grunwald(const opm::DescriptorSystem& sys,
                                 const std::vector<wave::Source>& inputs,
                                 double t_end, la::index_t steps,
                                 const GrunwaldOptions& opt) {
    std::vector<GrunwaldResult> res =
        simulate_grunwald_batch(sys, {inputs}, t_end, steps, opt);
    return std::move(res.front());
}

} // namespace opmsim::transient
