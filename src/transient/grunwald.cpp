#include "transient/grunwald.hpp"

#include <cmath>

#include "la/sparse_lu.hpp"
#include "opm/fractional_series.hpp"
#include "opm/solve_cache.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace opmsim::transient {

GrunwaldResult simulate_grunwald(const opm::DescriptorSystem& sys,
                                 const std::vector<wave::Source>& inputs,
                                 double t_end, la::index_t steps,
                                 const GrunwaldOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(t_end > 0.0 && steps >= 1, "simulate_grunwald: bad time grid");
    OPMSIM_REQUIRE(opt.alpha > 0.0, "simulate_grunwald: alpha must be positive");
    const la::index_t n = sys.num_states();
    const la::index_t p = sys.num_inputs();
    OPMSIM_REQUIRE(static_cast<la::index_t>(inputs.size()) == p,
                   "simulate_grunwald: input count mismatch");
    OPMSIM_REQUIRE(opt.x0.empty() || static_cast<la::index_t>(opt.x0.size()) == n,
                   "simulate_grunwald: x0 size must equal the state count");

    const la::index_t m = steps;
    const double h = t_end / static_cast<double>(m);
    const double ha = std::pow(h, -opt.alpha);
    const la::Vectord w = opt.caches != nullptr
                              ? opt.caches->grunwald_weights(opt.alpha, m + 1)
                              : opm::grunwald_weights(opt.alpha, m + 1);

    GrunwaldResult res;
    res.diag.history_backend = opm::HistoryEngine::resolve(opt.history, m + 1);
    res.times.resize(static_cast<std::size_t>(m) + 1);
    for (la::index_t k = 0; k <= m; ++k)
        res.times[static_cast<std::size_t>(k)] = h * static_cast<double>(k);
    res.states = la::Matrixd(n, m + 1);

    WallTimer timer;
    const la::CscMatrix pencil =
        la::CscMatrix::add(w[0] * ha, sys.e, -1.0, sys.a);
    const auto lu = opm::acquire_factor(opt.caches, pencil, res.diag);
    res.diag.factor_seconds = timer.elapsed_s();

    // Caputo shift: march z = x - x0 (z_0 = 0) with the constant forcing
    // term A x0 folded into every step's RHS; x0 is added back below.
    la::Vectord ax0;
    if (!opt.x0.empty()) ax0 = sys.a.matvec(opt.x0);
    for (la::index_t i = 0; i < n; ++i)
        res.states(i, 0) = opt.x0.empty() ? 0.0 : opt.x0[static_cast<std::size_t>(i)];

    // The history sum sum_{j>=1} w_j z_{k-j} is exactly the engine's
    // Toeplitz form sum_{i<k} w_{k-i} z_i over columns 0..m (z_0 = 0).
    timer.reset();
    opm::HistoryEngine eng(w, n, m + 1, opt.history, opt.caches);
    la::Vectord z0(static_cast<std::size_t>(n), 0.0);
    eng.push(0, z0.data());

    la::Vectord ut(static_cast<std::size_t>(p));
    la::Vectord rhs(static_cast<std::size_t>(n));
    la::Vectord hist(static_cast<std::size_t>(n));
    for (la::index_t k = 1; k <= m; ++k) {
        const double tk = res.times[static_cast<std::size_t>(k)];
        for (la::index_t i = 0; i < p; ++i)
            ut[static_cast<std::size_t>(i)] = inputs[static_cast<std::size_t>(i)](tk);
        std::fill(rhs.begin(), rhs.end(), 0.0);
        sys.b.gaxpy(1.0, ut, rhs);
        if (!ax0.empty()) la::axpy(1.0, ax0, rhs);

        eng.history(k, hist);
        sys.e.gaxpy(-ha, hist, rhs);
        lu->solve_in_place(rhs);
        for (la::index_t i = 0; i < n; ++i) {
            res.states(i, k) = rhs[static_cast<std::size_t>(i)];
            if (!opt.x0.empty())
                res.states(i, k) += opt.x0[static_cast<std::size_t>(i)];
        }
        eng.push(k, rhs.data());
    }

    // Outputs.
    const la::index_t q = sys.num_outputs();
    la::Vectord col(static_cast<std::size_t>(n));
    for (la::index_t o = 0; o < q; ++o) {
        la::Vectord v(static_cast<std::size_t>(m) + 1, 0.0);
        for (la::index_t k = 0; k <= m; ++k) {
            for (la::index_t i = 0; i < n; ++i) col[static_cast<std::size_t>(i)] = res.states(i, k);
            if (sys.c.rows() > 0) {
                const la::Vectord yk = sys.c.matvec(col);
                v[static_cast<std::size_t>(k)] = yk[static_cast<std::size_t>(o)];
            } else {
                v[static_cast<std::size_t>(k)] = col[static_cast<std::size_t>(o)];
            }
        }
        res.outputs.emplace_back(res.times, std::move(v));
    }
    res.diag.sweep_seconds = timer.elapsed_s();
    res.solve_seconds = res.diag.factor_seconds + res.diag.sweep_seconds;
    return res;
}

} // namespace opmsim::transient
