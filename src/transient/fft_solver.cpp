#include "transient/fft_solver.hpp"

#include <cmath>
#include <numbers>

#include "fftx/fft.hpp"
#include "la/dense_lu.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace opmsim::transient {

namespace {

using la::cplx;

/// Principal branch of (j*w)^alpha.
cplx jw_pow(double w, double alpha) {
    if (w == 0.0) return alpha == 0.0 ? cplx(1.0, 0.0) : cplx(0.0, 0.0);
    const double mag = std::pow(std::abs(w), alpha);
    const double ang = (w > 0 ? 1.0 : -1.0) * alpha * std::numbers::pi / 2.0;
    return cplx(mag * std::cos(ang), mag * std::sin(ang));
}

} // namespace

FftSolverResult simulate_fft(const opm::DenseDescriptorSystem& sys,
                             const std::vector<wave::Source>& inputs,
                             double t_end, const FftSolverOptions& opt) {
    const la::index_t n = sys.num_states();
    const la::index_t p = sys.num_inputs();
    const la::index_t q = sys.num_outputs();
    const la::index_t m = opt.samples;
    OPMSIM_REQUIRE(m >= 2, "simulate_fft: need at least 2 samples");
    OPMSIM_REQUIRE(t_end > 0.0, "simulate_fft: t_end must be positive");
    OPMSIM_REQUIRE(opt.alpha > 0.0, "simulate_fft: alpha must be positive");
    OPMSIM_REQUIRE(static_cast<la::index_t>(inputs.size()) == p,
                   "simulate_fft: input count mismatch");

    WallTimer timer;
    const double dt = t_end / static_cast<double>(m);

    // Forward FFT of each input channel, sampled at t_k = k*dt.
    std::vector<std::vector<cplx>> uf(static_cast<std::size_t>(p));
    for (la::index_t i = 0; i < p; ++i) {
        std::vector<cplx>& ui = uf[static_cast<std::size_t>(i)];
        ui.resize(static_cast<std::size_t>(m));
        for (la::index_t k = 0; k < m; ++k)
            ui[static_cast<std::size_t>(k)] =
                inputs[static_cast<std::size_t>(i)](dt * static_cast<double>(k));
        fftx::fft(ui);
    }

    // Per-sample pencil solves; frequencies follow DFT wrap-around order.
    la::Matrixz ez(n, n), az(n, n), bz(n, p);
    for (la::index_t j = 0; j < n; ++j)
        for (la::index_t i = 0; i < n; ++i) {
            ez(i, j) = sys.e(i, j);
            az(i, j) = sys.a(i, j);
        }
    for (la::index_t j = 0; j < p; ++j)
        for (la::index_t i = 0; i < n; ++i) bz(i, j) = sys.b(i, j);

    std::vector<std::vector<cplx>> xf(
        static_cast<std::size_t>(n), std::vector<cplx>(static_cast<std::size_t>(m)));
    la::Vectorz rhs(static_cast<std::size_t>(n));
    for (la::index_t k = 0; k < m; ++k) {
        const double freq = (k <= m / 2) ? static_cast<double>(k)
                                         : static_cast<double>(k - m);
        const double w = 2.0 * std::numbers::pi * freq / t_end;
        const cplx s = jw_pow(w, opt.alpha);

        la::Matrixz pencil = az;
        pencil *= cplx(-1.0, 0.0);
        for (la::index_t j = 0; j < n; ++j)
            for (la::index_t i = 0; i < n; ++i) pencil(i, j) += s * ez(i, j);

        std::fill(rhs.begin(), rhs.end(), cplx(0, 0));
        for (la::index_t j = 0; j < p; ++j) {
            const cplx ukj = uf[static_cast<std::size_t>(j)][static_cast<std::size_t>(k)];
            for (la::index_t i = 0; i < n; ++i) rhs[static_cast<std::size_t>(i)] += bz(i, j) * ukj;
        }
        const la::Vectorz xk = la::DenseLu<cplx>(std::move(pencil)).solve(rhs);
        for (la::index_t i = 0; i < n; ++i)
            xf[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)] =
                xk[static_cast<std::size_t>(i)];
    }

    // Inverse FFT back to the time domain.
    for (la::index_t i = 0; i < n; ++i) fftx::ifft(xf[static_cast<std::size_t>(i)]);

    FftSolverResult res;
    la::Vectord times(static_cast<std::size_t>(m));
    for (la::index_t k = 0; k < m; ++k)
        times[static_cast<std::size_t>(k)] = dt * static_cast<double>(k);

    for (la::index_t o = 0; o < q; ++o) {
        la::Vectord v(static_cast<std::size_t>(m), 0.0);
        for (la::index_t k = 0; k < m; ++k) {
            double y = 0.0;
            if (sys.c.rows() > 0) {
                for (la::index_t i = 0; i < n; ++i)
                    y += sys.c(o, i) *
                         xf[static_cast<std::size_t>(i)][static_cast<std::size_t>(k)].real();
            } else {
                y = xf[static_cast<std::size_t>(o)][static_cast<std::size_t>(k)].real();
            }
            v[static_cast<std::size_t>(k)] = y;
        }
        res.outputs.emplace_back(times, std::move(v));
    }
    res.solve_seconds = timer.elapsed_s();
    return res;
}

} // namespace opmsim::transient
