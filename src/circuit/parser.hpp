#pragma once
/// \file parser.hpp
/// \brief SPICE-style netlist deck parser.
///
/// Parses the familiar subset of a SPICE deck into a circuit::Netlist plus
/// the source waveforms and analysis directive, so benches/tests/users can
/// describe circuits as text:
///
///     * rc lowpass
///     V1 in 0 PULSE(0 1 0 1n 1n 5n 12n)
///     R1 in out 1k
///     C1 out 0 1u
///     P1 out 0 CPE(2.2u 0.5)        ; fractional element (opmsim extension)
///     .tran 10n 5u
///     .end
///
/// Supported cards:
///   R/L/C name n+ n- value            (value with SPICE suffixes f..T)
///   V/I   name n+ n- <spec>           spec: DC v | SIN(..) | PULSE(..) |
///                                     PWL(t v ...) | EXP(v0 v1 td tau)
///   P     name n+ n- CPE(c alpha)     constant-phase element
///   G     name n+ n- nc+ nc- gm       VCCS
///   .tran h tstop | .end | comments (* or ;) | continuation (+)
///
/// Each independent source gets its own input channel in deck order.

#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "wave/sources.hpp"

namespace opmsim::circuit {

/// Result of parsing a deck.
struct ParsedDeck {
    Netlist netlist;
    std::vector<wave::Source> inputs;  ///< one per independent source
    std::vector<std::string> input_names;
    double tran_step = 0.0;  ///< .tran h (0 if absent)
    double tran_stop = 0.0;  ///< .tran tstop (0 if absent)

    /// Look up a node index by deck name ("0" is ground).
    [[nodiscard]] index_t node(const std::string& name) const;

    std::vector<std::pair<std::string, index_t>> node_table;  ///< name -> id
};

/// Parse a deck from text.  Throws std::invalid_argument with a
/// line-numbered message on malformed input.
ParsedDeck parse_netlist(const std::string& text);

/// Parse a single SPICE number with magnitude suffix: "4.7k" -> 4700,
/// "100n" -> 1e-7, "2meg" -> 2e6, "5" -> 5.  Trailing unit letters after
/// the suffix are ignored ("10pF" -> 1e-11).
double parse_spice_number(const std::string& token);

} // namespace opmsim::circuit
