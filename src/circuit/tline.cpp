#include "circuit/tline.hpp"

#include "util/check.hpp"

namespace opmsim::circuit {

opm::DenseDescriptorSystem make_fractional_tline(const FractionalTlineSpec& spec) {
    OPMSIM_REQUIRE(spec.sections >= 1, "make_fractional_tline: sections >= 1");
    OPMSIM_REQUIRE(spec.r >= 0 && spec.l > 0 && spec.k >= 0 && spec.c > 0 &&
                       spec.c_end > 0 && spec.r_load > 0,
                   "make_fractional_tline: nonphysical element value");

    const la::index_t s_count = spec.sections;
    const la::index_t n = 4 * s_count - 1;

    opm::DenseDescriptorSystem sys;
    sys.e = la::Matrixd(n, n);
    sys.a = la::Matrixd(n, n);
    sys.b = la::Matrixd(n, 2);
    sys.c = la::Matrixd(2, n);

    // State indices for section s (1-based).
    auto ii = [](la::index_t s) { return 4 * (s - 1); };      // i_s
    auto iih = [](la::index_t s) { return 4 * (s - 1) + 1; }; // i_s^{1/2}
    auto iv = [](la::index_t s) { return 4 * (s - 1) + 2; };  // v_s
    auto ivh = [](la::index_t s) { return 4 * (s - 1) + 3; }; // v_s^{1/2}

    for (la::index_t s = 1; s <= s_count; ++s) {
        // d^{1/2} i_s = i_s^h
        sys.e(ii(s), ii(s)) = 1.0;
        sys.a(ii(s), iih(s)) = 1.0;

        // L d^{1/2} i_s^h = v_{s-1} - v_s - R i_s - K i_s^h
        // (L zeta^2 i = L di/dt; K zeta i = K i_h: series R + sL + K sqrt(s))
        sys.e(iih(s), iih(s)) = spec.l;
        sys.a(iih(s), ii(s)) = -spec.r;
        sys.a(iih(s), iih(s)) = -spec.k;
        sys.a(iih(s), iv(s)) = -1.0;
        if (s == 1)
            sys.b(iih(s), 0) = 1.0;  // v_0 = near-end source u1
        else
            sys.a(iih(s), iv(s - 1)) = 1.0;

        if (s < s_count) {
            // Interior node: ideal capacitor through the half-order pair.
            // d^{1/2} v_s = v_s^h;  C d^{1/2} v_s^h = i_s - i_{s+1}
            sys.e(iv(s), iv(s)) = 1.0;
            sys.a(iv(s), ivh(s)) = 1.0;
            sys.e(ivh(s), ivh(s)) = spec.c;
            sys.a(ivh(s), ii(s)) = 1.0;
            sys.a(ivh(s), ii(s + 1)) = -1.0;
        } else {
            // Far-end node: CPE (i = c_end d^{1/2} v) + load to source u2.
            // c_end d^{1/2} v_S = i_S - (v_S - u2)/R_load
            sys.e(iv(s), iv(s)) = spec.c_end;
            sys.a(iv(s), ii(s)) = 1.0;
            sys.a(iv(s), iv(s)) = -1.0 / spec.r_load;
            sys.b(iv(s), 1) = 1.0 / spec.r_load;
        }
    }

    // Outputs: near-end current and far-end voltage.
    sys.c(0, ii(1)) = 1.0;
    sys.c(1, iv(s_count)) = 1.0;
    return sys;
}

} // namespace opmsim::circuit
