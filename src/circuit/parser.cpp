#include "circuit/parser.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <unordered_map>

#include "util/check.hpp"

namespace opmsim::circuit {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& msg) {
    throw std::invalid_argument("netlist line " + std::to_string(line_no) + ": " + msg);
}

std::string lowercase(std::string s) {
    std::transform(s.begin(), s.end(), s.begin(),
                   [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
    return s;
}

/// Split a card into tokens; '(' ')' ',' '=' count as whitespace so
/// "PULSE(0 1 0 1n)" and "SIN(0,1,1k)" tokenize uniformly.
std::vector<std::string> tokenize(const std::string& line) {
    std::string cleaned = line;
    for (char& c : cleaned)
        if (c == '(' || c == ')' || c == ',' || c == '=') c = ' ';
    std::istringstream is(cleaned);
    std::vector<std::string> toks;
    std::string t;
    while (is >> t) toks.push_back(t);
    return toks;
}

/// Strip comments: '*' at start of line, ';' anywhere.
std::string strip_comment(const std::string& line) {
    if (!line.empty() && line[0] == '*') return "";
    const auto semi = line.find(';');
    return semi == std::string::npos ? line : line.substr(0, semi);
}

} // namespace

double parse_spice_number(const std::string& token) {
    OPMSIM_REQUIRE(!token.empty(), "parse_spice_number: empty token");
    std::size_t pos = 0;
    double v;
    try {
        v = std::stod(token, &pos);
    } catch (const std::exception&) {
        throw std::invalid_argument("parse_spice_number: not a number: '" + token + "'");
    }
    std::string suffix = lowercase(token.substr(pos));
    if (suffix.rfind("meg", 0) == 0) return v * 1e6;
    if (suffix.rfind("mil", 0) == 0) return v * 25.4e-6;
    if (suffix.empty()) return v;
    switch (suffix[0]) {
    case 'f': return v * 1e-15;
    case 'p': return v * 1e-12;
    case 'n': return v * 1e-9;
    case 'u': return v * 1e-6;
    case 'm': return v * 1e-3;
    case 'k': return v * 1e3;
    case 'g': return v * 1e9;
    case 't': return v * 1e12;
    default:
        // Bare unit letters ("5V", "3A", "10Hz") are ignored.
        if (std::isalpha(static_cast<unsigned char>(suffix[0]))) return v;
        throw std::invalid_argument("parse_spice_number: bad suffix on '" + token + "'");
    }
}

index_t ParsedDeck::node(const std::string& name) const {
    if (name == "0") return 0;
    for (const auto& [n, id] : node_table)
        if (n == name) return id;
    throw std::invalid_argument("ParsedDeck::node: unknown node '" + name + "'");
}

namespace {

/// Build the Source for a V/I card tail (tokens after the two nodes).
wave::Source parse_source_spec(const std::vector<std::string>& t, std::size_t i,
                               std::size_t line_no) {
    if (i >= t.size()) fail(line_no, "missing source value");
    const std::string kind = lowercase(t[i]);

    auto num = [&](std::size_t k, double dflt = 0.0) {
        return (i + k < t.size()) ? parse_spice_number(t[i + k]) : dflt;
    };

    if (kind == "dc") {
        if (i + 1 >= t.size()) fail(line_no, "DC needs a value");
        return wave::step(parse_spice_number(t[i + 1]));
    }
    if (kind == "sin") {
        // SIN(voff vamp freq [td])
        const double voff = num(1), vamp = num(2), freq = num(3), td = num(4);
        if (freq <= 0) fail(line_no, "SIN needs a positive frequency");
        return [=](double x) {
            if (x < td) return voff;
            return voff + vamp * std::sin(2.0 * 3.14159265358979323846 * freq * (x - td));
        };
    }
    if (kind == "pulse") {
        // PULSE(v1 v2 td tr tf pw per) — v1 assumed 0-based baseline shift.
        const double v1 = num(1), v2 = num(2), td = num(3);
        const double tr = num(4, 1e-12), tf = num(5, 1e-12);
        const double pw = num(6), per = num(7, 0.0);
        const wave::Source p =
            per > 0.0 ? wave::pulse_train(v2 - v1, td, tr, pw, tf, per)
                      : wave::pulse(v2 - v1, td, tr, pw, tf);
        return [=](double x) { return v1 + p(x); };
    }
    if (kind == "pwl") {
        std::vector<double> ts, vs;
        for (std::size_t k = i + 1; k + 1 < t.size(); k += 2) {
            ts.push_back(parse_spice_number(t[k]));
            vs.push_back(parse_spice_number(t[k + 1]));
        }
        if (ts.size() < 2) fail(line_no, "PWL needs at least two breakpoints");
        return wave::pwl(std::move(ts), std::move(vs));
    }
    if (kind == "exp") {
        // EXP(v0 v1 td tau): v0 -> v1 with time constant tau after td.
        const double v0 = num(1), v1 = num(2), td = num(3), tau = num(4, 1e-9);
        if (tau <= 0) fail(line_no, "EXP needs a positive tau");
        return [=](double x) {
            if (x < td) return v0;
            return v1 + (v0 - v1) * std::exp(-(x - td) / tau);
        };
    }
    // Bare number: DC level.
    return wave::step(parse_spice_number(t[i]));
}

} // namespace

ParsedDeck parse_netlist(const std::string& text) {
    ParsedDeck deck;

    // Join continuation lines ('+' prefix) and drop comments.
    std::vector<std::pair<std::size_t, std::string>> cards;
    {
        std::istringstream is(text);
        std::string line;
        std::size_t line_no = 0;
        while (std::getline(is, line)) {
            ++line_no;
            line = strip_comment(line);
            const auto first = line.find_first_not_of(" \t\r");
            if (first == std::string::npos) continue;
            if (line[first] == '+') {
                if (cards.empty()) fail(line_no, "continuation with no previous card");
                cards.back().second += " " + line.substr(first + 1);
            } else {
                cards.emplace_back(line_no, line.substr(first));
            }
        }
    }
    // SPICE convention: the first line is the title (unless it's a card we
    // recognize — be forgiving for programmatic decks).
    std::size_t start = 0;
    if (!cards.empty()) {
        const char c0 = static_cast<char>(std::tolower(
            static_cast<unsigned char>(cards[0].second[0])));
        const bool looks_like_card =
            std::string("rlcvipg.").find(c0) != std::string::npos &&
            tokenize(cards[0].second).size() >= 2;
        if (!looks_like_card) {
            deck.netlist = Netlist(cards[0].second);
            start = 1;
        }
    }

    auto node_id = [&](const std::string& name) -> index_t {
        if (name == "0" || lowercase(name) == "gnd") return 0;
        for (const auto& [n, id] : deck.node_table)
            if (n == name) return id;
        const index_t id = deck.netlist.node(name);
        deck.node_table.emplace_back(name, id);
        return id;
    };

    bool ended = false;
    for (std::size_t c = start; c < cards.size(); ++c) {
        const auto& [line_no, card] = cards[c];
        if (ended) fail(line_no, "card after .end");
        const std::vector<std::string> t = tokenize(card);
        if (t.empty()) continue;
        const std::string head = lowercase(t[0]);

        if (head[0] == '.') {
            if (head == ".end") {
                ended = true;
            } else if (head == ".tran") {
                if (t.size() < 3) fail(line_no, ".tran needs step and stop");
                deck.tran_step = parse_spice_number(t[1]);
                deck.tran_stop = parse_spice_number(t[2]);
                if (deck.tran_step <= 0 || deck.tran_stop <= deck.tran_step)
                    fail(line_no, ".tran needs 0 < step < stop");
            } else {
                fail(line_no, "unsupported directive '" + t[0] + "'");
            }
            continue;
        }

        if (t.size() < 4) fail(line_no, "too few fields on card '" + t[0] + "'");
        const std::string& name = t[0];
        const index_t n1 = node_id(t[1]);
        const index_t n2 = node_id(t[2]);

        try {
            switch (head[0]) {
            case 'r':
                deck.netlist.resistor(name, n1, n2, parse_spice_number(t[3]));
                break;
            case 'l':
                deck.netlist.inductor(name, n1, n2, parse_spice_number(t[3]));
                break;
            case 'c':
                deck.netlist.capacitor(name, n1, n2, parse_spice_number(t[3]));
                break;
            case 'p': {  // CPE: P name n+ n- CPE(c alpha)  (opmsim extension)
                std::size_t i = 3;
                if (lowercase(t[3]) == "cpe") ++i;
                if (i + 1 >= t.size()) fail(line_no, "CPE needs c and alpha");
                deck.netlist.cpe(name, n1, n2, parse_spice_number(t[i]),
                                 parse_spice_number(t[i + 1]));
                break;
            }
            case 'g': {  // VCCS: G name n+ n- nc+ nc- gm
                if (t.size() < 6) fail(line_no, "VCCS needs 4 nodes and gm");
                const index_t cp = node_id(t[3]);
                const index_t cn = node_id(t[4]);
                deck.netlist.vccs(name, n1, n2, cp, cn, parse_spice_number(t[5]));
                break;
            }
            case 'v': {
                const index_t ch = static_cast<index_t>(deck.inputs.size());
                deck.netlist.vsource(name, n1, n2, ch);
                deck.inputs.push_back(parse_source_spec(t, 3, line_no));
                deck.input_names.push_back(name);
                break;
            }
            case 'i': {
                const index_t ch = static_cast<index_t>(deck.inputs.size());
                deck.netlist.isource(name, n1, n2, ch, 1.0);
                deck.inputs.push_back(parse_source_spec(t, 3, line_no));
                deck.input_names.push_back(name);
                break;
            }
            default:
                fail(line_no, "unsupported element '" + t[0] + "'");
            }
        } catch (const std::invalid_argument& e) {
            // Re-tag netlist/number errors with the deck line.
            fail(line_no, e.what());
        }
    }

    OPMSIM_REQUIRE(deck.netlist.num_nodes() > 0, "parse_netlist: empty deck");
    return deck;
}

} // namespace opmsim::circuit
