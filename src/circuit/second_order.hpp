#pragma once
/// \file second_order.hpp
/// \brief Nodal-analysis second-order model of RLC-I networks (paper §V-B).
///
/// For a network of resistors, capacitors, inductors and current sources,
/// plain nodal analysis (no branch currents) gives
///     C v' + G v + sum_L (1/L) integral(v1 - v2) = i_inj(t);
/// differentiating once yields the second-order model the paper simulates
/// with OPM:
///     C v'' + G v' + Gamma v = d/dt i_inj(t),
/// where Gamma is the inductance-weighted branch Laplacian.  The input
/// derivative is *not* computed numerically — it is expressed through the
/// operational matrix (a right-hand term of order 1 in the multi-term
/// system), exactly the trick that makes OPM natural for high-order models.
///
/// Size advantage: n = N (node count) instead of MNA's N + #L + #V —
/// the paper's "75 K vs 110 K" comparison.

#include "circuit/netlist.hpp"
#include "opm/multiterm.hpp"

namespace opmsim::circuit {

/// Build the second-order model.  The netlist may contain R, C, L, current
/// sources and VCCS only (no voltage sources, no CPEs); every node should
/// have a capacitor for a regular mass matrix.  Throws
/// std::invalid_argument on unsupported elements.
opm::MultiTermSystem build_second_order(const Netlist& nl);

} // namespace opmsim::circuit
