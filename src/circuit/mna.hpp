#pragma once
/// \file mna.hpp
/// \brief Modified nodal analysis: netlist -> descriptor / multi-term models.
///
/// State vector layout: [node voltages 1..N | inductor currents | voltage
/// source currents].  The assembled system follows the paper's convention
///     E x' = A x + B u
/// (i.e. A = -(conductance side) of the classic  C x' + G x = B u  MNA
/// form).  Voltage sources contribute algebraic rows, so E is singular —
/// a genuine DAE, which OPM handles unchanged (paper §III).
///
/// Circuits containing CPEs assemble into a MultiTermSystem
///     sum_k A_k d^{alpha_k} x = B u
/// with one term per distinct differential order (0, 1, and each CPE
/// order), or — when *all* dynamic elements share one order alpha — into a
/// single-order fractional descriptor system E d^alpha x = A x + B u.

#include "circuit/netlist.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"

namespace opmsim::circuit {

/// Index bookkeeping for the MNA state vector.
struct MnaLayout {
    index_t num_nodes = 0;       ///< N (ground excluded)
    index_t num_inductors = 0;   ///< branch-current states
    index_t num_vsources = 0;    ///< branch-current states
    index_t num_controlled = 0;  ///< VCVS/CCVS branch-current states
    [[nodiscard]] index_t size() const {
        return num_nodes + num_inductors + num_vsources + num_controlled;
    }
    /// State index of node voltage v_n (n in 1..N).
    [[nodiscard]] index_t voltage_index(index_t node) const { return node - 1; }
};

/// Assemble E x' = A x + B u for an integer-order circuit (no CPEs).
/// Throws std::invalid_argument if the netlist contains CPEs.
opm::DescriptorSystem build_mna(const Netlist& nl, MnaLayout* layout = nullptr);

/// Assemble E d^alpha x = A x + B u for a *uniform-order* fractional
/// circuit: every dynamic element must be a CPE of the given order (the
/// resistive/algebraic part is unrestricted).  Capacitors and inductors are
/// rejected — mix them via build_multiterm_mna instead.
opm::DescriptorSystem build_fractional_mna(const Netlist& nl, double alpha,
                                           MnaLayout* layout = nullptr);

/// Assemble the general multi-term form; handles any mix of R, L, C, CPE,
/// and sources.  Terms are grouped by differential order.
opm::MultiTermSystem build_multiterm_mna(const Netlist& nl,
                                         MnaLayout* layout = nullptr);

/// Output selector C picking the voltages of the given (1-based) nodes.
la::CscMatrix node_voltage_selector(const MnaLayout& layout,
                                    const std::vector<index_t>& nodes);

} // namespace opmsim::circuit
