#include "circuit/second_order.hpp"

#include "util/check.hpp"

namespace opmsim::circuit {

opm::MultiTermSystem build_second_order(const Netlist& nl) {
    const index_t n = nl.num_nodes();
    OPMSIM_REQUIRE(n > 0, "build_second_order: empty netlist");
    const index_t p = std::max<index_t>(nl.num_inputs(), 1);

    la::Triplets c2(n, n);   // order 2: capacitances
    la::Triplets g1(n, n);   // order 1: conductances
    la::Triplets gam(n, n);  // order 0: 1/L branch Laplacian
    la::Triplets b(n, p);    // injections (applied at order 1 on the rhs)

    auto stamp = [n](la::Triplets& t, index_t n1, index_t n2, double v) {
        const index_t i1 = n1 - 1, i2 = n2 - 1;
        if (n1 > 0) t.add(i1, i1, v);
        if (n2 > 0) t.add(i2, i2, v);
        if (n1 > 0 && n2 > 0) {
            t.add(i1, i2, -v);
            t.add(i2, i1, -v);
        }
    };

    for (const Element& e : nl.elements()) {
        switch (e.kind) {
        case ElementKind::resistor:
            stamp(g1, e.n1, e.n2, 1.0 / e.value);
            break;
        case ElementKind::capacitor:
            stamp(c2, e.n1, e.n2, e.value);
            break;
        case ElementKind::inductor:
            stamp(gam, e.n1, e.n2, 1.0 / e.value);
            break;
        case ElementKind::isource:
            if (e.n1 > 0) b.add(e.n1 - 1, e.source_id, e.value);
            if (e.n2 > 0) b.add(e.n2 - 1, e.source_id, -e.value);
            break;
        case ElementKind::vccs: {
            if (e.n1 > 0 && e.ctrl_p > 0) g1.add(e.n1 - 1, e.ctrl_p - 1, -e.value);
            if (e.n1 > 0 && e.ctrl_n > 0) g1.add(e.n1 - 1, e.ctrl_n - 1, e.value);
            if (e.n2 > 0 && e.ctrl_p > 0) g1.add(e.n2 - 1, e.ctrl_p - 1, e.value);
            if (e.n2 > 0 && e.ctrl_n > 0) g1.add(e.n2 - 1, e.ctrl_n - 1, -e.value);
            break;
        }
        case ElementKind::vsource:
        case ElementKind::cpe:
        case ElementKind::vcvs:
        case ElementKind::ccvs:
        case ElementKind::cccs:
        case ElementKind::mutual:
            OPMSIM_REQUIRE(false,
                           "build_second_order: element '" + e.name +
                               "' is not supported by the NA second-order form");
        }
    }

    opm::MultiTermSystem sys;
    sys.lhs.push_back({2.0, la::CscMatrix(c2)});
    sys.lhs.push_back({1.0, la::CscMatrix(g1)});
    sys.lhs.push_back({0.0, la::CscMatrix(gam)});
    sys.rhs.push_back({1.0, la::CscMatrix(b)});
    return sys;
}

} // namespace opmsim::circuit
