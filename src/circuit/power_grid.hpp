#pragma once
/// \file power_grid.hpp
/// \brief Parametric 3-D RLC power-grid generator (Table II substrate).
///
/// The paper evaluates OPM on "a 3-D power grid structure with resistors,
/// capacitors and inductors" (75 K-state second-order model / 110 K-state
/// MNA DAE).  The original industrial grid is not available, so this
/// generator produces the same topology class:
///  * nx * ny nodes per metal layer, nz layers;
///  * resistive mesh within each layer;
///  * inductive vias between adjacent layers (pure L, so the second-order
///    nodal model exists);
///  * decoupling capacitance at every node;
///  * VDD pads at the four corners of the top layer, modeled as Norton
///    equivalents (R_pad + injected ramp current) so the network stays
///    voltage-source-free;
///  * switching current loads scattered over the bottom layer (trapezoidal
///    pulse trains with staggered phases).
///
/// Both models of the SAME physical grid are emitted: the second-order NA
/// system (size N = nx*ny*nz) for OPM and the MNA DAE (size N + #vias) for
/// the baseline integrators — mirroring the paper's Table II setup.

#include "circuit/mna.hpp"
#include "circuit/netlist.hpp"
#include "circuit/second_order.hpp"
#include "opm/multiterm.hpp"
#include "opm/solver.hpp"
#include "wave/sources.hpp"

namespace opmsim::circuit {

struct PowerGridSpec {
    index_t nx = 16, ny = 16, nz = 3;

    double seg_r = 1.0;      ///< mesh segment resistance [ohm]
    double node_c = 500e-15; ///< decap per node [F]
    double via_l = 50e-12;   ///< via inductance [H]

    /// Dielectric dispersion order of the decap response: 1.0 gives the
    /// ideal capacitors of the paper's grid; alpha < 1 models lossy CPE
    /// decaps, turning the second-order model into a genuinely fractional
    /// multi-term system  C d^{1+alpha} v + G v' + Gamma v = d/dt i_inj —
    /// the workload the batched fast multi-term path is built for.
    double decap_alpha = 1.0;

    double vdd = 1.0;       ///< supply voltage [V]
    double pad_r = 0.2;     ///< pad Norton resistance [ohm]
    double vdd_rise = 400e-12;  ///< supply ramp time [s]

    index_t num_loads = 16;     ///< switching loads on the bottom layer
    index_t load_channels = 4;  ///< independent load phase groups
    double load_peak = 5e-3;    ///< per-load peak current [A]
    double load_period = 800e-12;
    double load_rise = 200e-12, load_width = 200e-12, load_fall = 200e-12;

    unsigned seed = 42;  ///< deterministic load placement
};

struct PowerGrid {
    Netlist netlist;
    opm::MultiTermSystem second_order;  ///< N states, order {2,1,0}
    opm::DescriptorSystem mna;          ///< N + #vias states, DAE-free here
                                        ///< (no V sources -> E nonsingular)
    MnaLayout mna_layout;
    std::vector<wave::Source> inputs;   ///< channel 0: vdd ramp; 1..: loads
    std::vector<index_t> monitors;      ///< observed nodes (1-based)
};

/// Node id (1-based netlist index) of grid position (x, y, z).
index_t grid_node(const PowerGridSpec& s, index_t x, index_t y, index_t z);

/// Generate the grid and both models.  Output selectors (C matrices) for
/// the monitor nodes are installed in both systems.
PowerGrid build_power_grid(const PowerGridSpec& spec);

} // namespace opmsim::circuit
