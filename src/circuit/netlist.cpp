#include "circuit/netlist.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace opmsim::circuit {

index_t Netlist::node(const std::string& name) {
    const auto it = names_.find(name);
    if (it != names_.end()) return it->second;
    const index_t id = num_nodes_ + 1;
    names_.emplace(name, id);
    ensure_node(id);
    return id;
}

void Netlist::ensure_node(index_t n) {
    OPMSIM_REQUIRE(n >= 0, "Netlist: negative node index");
    num_nodes_ = std::max(num_nodes_, n);
}

void Netlist::add(Element e) {
    ensure_node(e.n1);
    ensure_node(e.n2);
    if (e.kind == ElementKind::vccs) {
        ensure_node(e.ctrl_p);
        ensure_node(e.ctrl_n);
    }
    if (e.kind == ElementKind::vsource || e.kind == ElementKind::isource) {
        OPMSIM_REQUIRE(e.source_id >= 0, "Netlist: source needs a source_id");
        num_inputs_ = std::max(num_inputs_, e.source_id + 1);
    }
    elements_.push_back(std::move(e));
}

void Netlist::resistor(const std::string& name, index_t n1, index_t n2, double r) {
    OPMSIM_REQUIRE(r > 0.0, "Netlist: resistance must be positive");
    add({ElementKind::resistor, name, n1, n2, r, 1.0, 0, 0, -1, {}, {}});
}

void Netlist::capacitor(const std::string& name, index_t n1, index_t n2, double c) {
    OPMSIM_REQUIRE(c > 0.0, "Netlist: capacitance must be positive");
    add({ElementKind::capacitor, name, n1, n2, c, 1.0, 0, 0, -1, {}, {}});
}

void Netlist::inductor(const std::string& name, index_t n1, index_t n2, double l) {
    OPMSIM_REQUIRE(l > 0.0, "Netlist: inductance must be positive");
    add({ElementKind::inductor, name, n1, n2, l, 1.0, 0, 0, -1, {}, {}});
}

void Netlist::cpe(const std::string& name, index_t n1, index_t n2, double c,
                  double alpha) {
    OPMSIM_REQUIRE(c > 0.0, "Netlist: CPE coefficient must be positive");
    OPMSIM_REQUIRE(alpha > 0.0 && alpha < 2.0, "Netlist: CPE order in (0,2)");
    add({ElementKind::cpe, name, n1, n2, c, alpha, 0, 0, -1, {}, {}});
}

void Netlist::vsource(const std::string& name, index_t np, index_t nn,
                      index_t source_id) {
    add({ElementKind::vsource, name, np, nn, 1.0, 1.0, 0, 0, source_id, {}, {}});
}

void Netlist::isource(const std::string& name, index_t np, index_t nn,
                      index_t source_id, double scale) {
    add({ElementKind::isource, name, np, nn, scale, 1.0, 0, 0, source_id, {}, {}});
}

void Netlist::vccs(const std::string& name, index_t np, index_t nn, index_t cp,
                   index_t cn, double gm) {
    add({ElementKind::vccs, name, np, nn, gm, 1.0, cp, cn, -1, {}, {}});
}

void Netlist::vcvs(const std::string& name, index_t np, index_t nn, index_t cp,
                   index_t cn, double gain) {
    add({ElementKind::vcvs, name, np, nn, gain, 1.0, cp, cn, -1, {}, {}});
}

void Netlist::ccvs(const std::string& name, index_t np, index_t nn,
                   const std::string& vsource_name, double r) {
    add({ElementKind::ccvs, name, np, nn, r, 1.0, 0, 0, -1, vsource_name, {}});
}

void Netlist::cccs(const std::string& name, index_t np, index_t nn,
                   const std::string& vsource_name, double gain) {
    add({ElementKind::cccs, name, np, nn, gain, 1.0, 0, 0, -1, vsource_name, {}});
}

void Netlist::mutual(const std::string& name, const std::string& l1,
                     const std::string& l2, double k) {
    OPMSIM_REQUIRE(k > -1.0 && k < 1.0 && k != 0.0,
                   "Netlist: coupling coefficient must be in (-1,1), nonzero");
    OPMSIM_REQUIRE(l1 != l2, "Netlist: mutual inductance needs two inductors");
    add({ElementKind::mutual, name, 0, 0, k, 1.0, 0, 0, -1, l1, l2});
}

index_t Netlist::count(ElementKind k) const {
    return static_cast<index_t>(
        std::count_if(elements_.begin(), elements_.end(),
                      [k](const Element& e) { return e.kind == k; }));
}

} // namespace opmsim::circuit
