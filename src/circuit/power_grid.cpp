#include "circuit/power_grid.hpp"

#include <string>

#include "util/check.hpp"

namespace opmsim::circuit {

index_t grid_node(const PowerGridSpec& s, index_t x, index_t y, index_t z) {
    OPMSIM_REQUIRE(x >= 0 && x < s.nx && y >= 0 && y < s.ny && z >= 0 && z < s.nz,
                   "grid_node: coordinates out of range");
    return 1 + (z * s.ny + y) * s.nx + x;
}

namespace {

/// Deterministic linear-congruential generator for load placement (fixed
/// across platforms, unlike <random> distributions).
class Lcg {
public:
    explicit Lcg(unsigned seed) : state_(seed * 2654435761u + 1u) {}
    index_t next(index_t bound) {
        state_ = state_ * 1664525u + 1013904223u;
        return static_cast<index_t>((state_ >> 8) % static_cast<unsigned>(bound));
    }

private:
    unsigned state_;
};

} // namespace

PowerGrid build_power_grid(const PowerGridSpec& spec) {
    OPMSIM_REQUIRE(spec.nx >= 2 && spec.ny >= 2 && spec.nz >= 1,
                   "build_power_grid: grid must be at least 2x2x1");
    OPMSIM_REQUIRE(spec.num_loads >= 1 && spec.load_channels >= 1,
                   "build_power_grid: need at least one load and channel");
    OPMSIM_REQUIRE(spec.decap_alpha > 0.0 && spec.decap_alpha <= 1.0,
                   "build_power_grid: decap_alpha must lie in (0, 1]");

    PowerGrid pg;
    Netlist& nl = pg.netlist;

    // Metal mesh: resistors between lateral neighbors in every layer.
    for (index_t z = 0; z < spec.nz; ++z)
        for (index_t y = 0; y < spec.ny; ++y)
            for (index_t x = 0; x < spec.nx; ++x) {
                const index_t n = grid_node(spec, x, y, z);
                if (x + 1 < spec.nx)
                    nl.resistor("Rx" + std::to_string(n), n,
                                grid_node(spec, x + 1, y, z), spec.seg_r);
                if (y + 1 < spec.ny)
                    nl.resistor("Ry" + std::to_string(n), n,
                                grid_node(spec, x, y + 1, z), spec.seg_r);
                nl.capacitor("C" + std::to_string(n), n, 0, spec.node_c);
                if (z + 1 < spec.nz)
                    nl.inductor("Lv" + std::to_string(n), n,
                                grid_node(spec, x, y, z + 1), spec.via_l);
            }

    // VDD pads: Norton equivalents at the four corners of the top layer.
    const index_t top = spec.nz - 1;
    const index_t pads[4] = {
        grid_node(spec, 0, 0, top),
        grid_node(spec, spec.nx - 1, 0, top),
        grid_node(spec, 0, spec.ny - 1, top),
        grid_node(spec, spec.nx - 1, spec.ny - 1, top),
    };
    for (int k = 0; k < 4; ++k) {
        nl.resistor("Rpad" + std::to_string(k), pads[k], 0, spec.pad_r);
        nl.isource("Ipad" + std::to_string(k), pads[k], 0, /*source_id=*/0,
                   spec.vdd / spec.pad_r);
    }

    // Switching loads on the bottom layer, grouped into phase channels.
    Lcg rng(spec.seed);
    for (index_t l = 0; l < spec.num_loads; ++l) {
        const index_t x = rng.next(spec.nx);
        const index_t y = rng.next(spec.ny);
        const index_t ch = 1 + l % spec.load_channels;
        // Negative scale: the load *draws* current out of the node.
        nl.isource("Iload" + std::to_string(l), grid_node(spec, x, y, 0), 0, ch,
                   -spec.load_peak);
    }

    // Input channel 0: supply ramp 0 -> 1 over vdd_rise, then hold.
    // Channels 1..k: staggered pulse trains.  Raised-cosine edges keep the
    // stimulus C^1 so the integrators' order (not input corners) governs
    // their error — matching the smooth-workload regime of Table II.
    pg.inputs.push_back(wave::smooth_step(1.0, 0.0, spec.vdd_rise));
    for (index_t ch = 0; ch < spec.load_channels; ++ch) {
        const double t0 = spec.vdd_rise * 1.5 + static_cast<double>(ch) *
                                                    spec.load_period /
                                                    static_cast<double>(spec.load_channels);
        pg.inputs.push_back(wave::smooth_pulse_train(1.0, t0, spec.load_rise,
                                                     spec.load_width,
                                                     spec.load_fall,
                                                     spec.load_period));
    }

    // Monitors: bottom-layer center, bottom corner farthest from pads
    // (worst-case IR drop), and a mid-edge node.
    pg.monitors = {
        grid_node(spec, spec.nx / 2, spec.ny / 2, 0),
        grid_node(spec, spec.nx - 1, spec.ny - 1, 0),
        grid_node(spec, spec.nx / 2, 0, 0),
    };

    // Both models of the same grid.
    pg.second_order = build_second_order(nl);
    pg.mna = build_mna(nl, &pg.mna_layout);

    // Lossy (CPE) decaps: the capacitive term responds at order
    // 1 + alpha < 2.  Only the second-order model expresses this — the
    // integer-order MNA companion has no fractional counterpart — and the
    // resulting mixed orders {1+alpha, 1, 0} force the multi-term solver
    // onto its fast Toeplitz path.
    if (spec.decap_alpha != 1.0)
        pg.second_order.lhs.front().order = 1.0 + spec.decap_alpha;

    // Output selectors.  Node-voltage state indices coincide in both
    // models (voltages come first in the MNA layout).
    la::Triplets csel(static_cast<index_t>(pg.monitors.size()), nl.num_nodes());
    for (std::size_t r = 0; r < pg.monitors.size(); ++r)
        csel.add(static_cast<index_t>(r), pg.monitors[r] - 1, 1.0);
    pg.second_order.c = la::CscMatrix(csel);
    pg.mna.c = node_voltage_selector(pg.mna_layout, pg.monitors);

    return pg;
}

} // namespace opmsim::circuit
