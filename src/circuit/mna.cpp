#include "circuit/mna.hpp"

#include <cmath>
#include <map>

#include "util/check.hpp"

namespace opmsim::circuit {

namespace {

/// Assembly workspace: one triplet accumulator per differential order.
struct Assembly {
    MnaLayout layout;
    std::map<double, la::Triplets> terms;  ///< order -> A_k stamps
    la::Triplets b;                        ///< injections
    Assembly(index_t n, index_t p) : b(n, p) {}

    la::Triplets& term(double order, index_t n) {
        auto it = terms.find(order);
        if (it == terms.end()) it = terms.emplace(order, la::Triplets(n, n)).first;
        return it->second;
    }
};

/// Two-terminal admittance-style stamp (R, C, CPE) into the given term.
/// Node indices are 1-based; ground (0) rows/columns are dropped.
void stamp_branch(la::Triplets& t, const MnaLayout& lay, index_t n1, index_t n2,
                  double value) {
    const index_t i1 = n1 > 0 ? lay.voltage_index(n1) : -1;
    const index_t i2 = n2 > 0 ? lay.voltage_index(n2) : -1;
    if (i1 >= 0) t.add(i1, i1, value);
    if (i2 >= 0) t.add(i2, i2, value);
    if (i1 >= 0 && i2 >= 0) {
        t.add(i1, i2, -value);
        t.add(i2, i1, -value);
    }
}

Assembly assemble(const Netlist& nl) {
    MnaLayout lay;
    lay.num_nodes = nl.num_nodes();
    lay.num_inductors = nl.count(ElementKind::inductor);
    lay.num_vsources = nl.count(ElementKind::vsource);
    lay.num_controlled =
        nl.count(ElementKind::vcvs) + nl.count(ElementKind::ccvs);
    const index_t n = lay.size();
    const index_t p = std::max<index_t>(nl.num_inputs(), 1);

    Assembly as(n, p);
    as.layout = lay;

    // Pass 1: assign branch-current state indices in element order, and
    // record named branches so controlled sources can reference them.
    std::map<std::string, index_t> branch_of;
    std::map<std::string, double> inductance_of;
    {
        index_t next_branch = lay.num_nodes;
        for (const Element& e : nl.elements()) {
            if (e.kind == ElementKind::inductor || e.kind == ElementKind::vsource ||
                e.kind == ElementKind::vcvs || e.kind == ElementKind::ccvs) {
                OPMSIM_REQUIRE(branch_of.emplace(e.name, next_branch).second,
                               "build_mna: duplicate branch element name '" +
                                   e.name + "'");
                ++next_branch;
            }
            if (e.kind == ElementKind::inductor) inductance_of[e.name] = e.value;
        }
    }
    auto ctrl_branch = [&](const Element& e) {
        const auto it = branch_of.find(e.ctrl_name);
        OPMSIM_REQUIRE(it != branch_of.end(),
                       "build_mna: element '" + e.name +
                           "' references unknown branch '" + e.ctrl_name + "'");
        return it->second;
    };

    // Pass 2: stamp.
    for (const Element& e : nl.elements()) {
        const index_t i1 = e.n1 > 0 ? lay.voltage_index(e.n1) : -1;
        const index_t i2 = e.n2 > 0 ? lay.voltage_index(e.n2) : -1;
        switch (e.kind) {
        case ElementKind::resistor:
            stamp_branch(as.term(0.0, n), lay, e.n1, e.n2, 1.0 / e.value);
            break;
        case ElementKind::capacitor:
            stamp_branch(as.term(1.0, n), lay, e.n1, e.n2, e.value);
            break;
        case ElementKind::cpe:
            stamp_branch(as.term(e.alpha, n), lay, e.n1, e.n2, e.value);
            break;
        case ElementKind::inductor: {
            const index_t bi = branch_of.at(e.name);
            la::Triplets& a0 = as.term(0.0, n);
            // KCL: branch current leaves n1, enters n2.
            if (i1 >= 0) a0.add(i1, bi, 1.0);
            if (i2 >= 0) a0.add(i2, bi, -1.0);
            // Branch: L di/dt - (v1 - v2) = 0.
            as.term(1.0, n).add(bi, bi, e.value);
            if (i1 >= 0) a0.add(bi, i1, -1.0);
            if (i2 >= 0) a0.add(bi, i2, 1.0);
            break;
        }
        case ElementKind::vsource: {
            const index_t bv = branch_of.at(e.name);
            la::Triplets& a0 = as.term(0.0, n);
            // i_v flows out of the + terminal into node n1.
            if (i1 >= 0) a0.add(i1, bv, -1.0);
            if (i2 >= 0) a0.add(i2, bv, 1.0);
            // Branch: v1 - v2 = u.
            if (i1 >= 0) a0.add(bv, i1, 1.0);
            if (i2 >= 0) a0.add(bv, i2, -1.0);
            as.b.add(bv, e.source_id, 1.0);
            break;
        }
        case ElementKind::isource:
            if (i1 >= 0) as.b.add(i1, e.source_id, e.value);
            if (i2 >= 0) as.b.add(i2, e.source_id, -e.value);
            break;
        case ElementKind::vccs: {
            la::Triplets& a0 = as.term(0.0, n);
            const index_t cp = e.ctrl_p > 0 ? lay.voltage_index(e.ctrl_p) : -1;
            const index_t cn = e.ctrl_n > 0 ? lay.voltage_index(e.ctrl_n) : -1;
            // gm*(vcp - vcn) injected into n1, drawn from n2.
            if (i1 >= 0 && cp >= 0) a0.add(i1, cp, -e.value);
            if (i1 >= 0 && cn >= 0) a0.add(i1, cn, e.value);
            if (i2 >= 0 && cp >= 0) a0.add(i2, cp, e.value);
            if (i2 >= 0 && cn >= 0) a0.add(i2, cn, -e.value);
            break;
        }
        case ElementKind::vcvs: {
            const index_t be = branch_of.at(e.name);
            la::Triplets& a0 = as.term(0.0, n);
            const index_t cp = e.ctrl_p > 0 ? lay.voltage_index(e.ctrl_p) : -1;
            const index_t cn = e.ctrl_n > 0 ? lay.voltage_index(e.ctrl_n) : -1;
            if (i1 >= 0) a0.add(i1, be, -1.0);
            if (i2 >= 0) a0.add(i2, be, 1.0);
            // Branch: v1 - v2 - gain*(vcp - vcn) = 0.
            if (i1 >= 0) a0.add(be, i1, 1.0);
            if (i2 >= 0) a0.add(be, i2, -1.0);
            if (cp >= 0) a0.add(be, cp, -e.value);
            if (cn >= 0) a0.add(be, cn, e.value);
            break;
        }
        case ElementKind::ccvs: {
            const index_t bh = branch_of.at(e.name);
            const index_t bc = ctrl_branch(e);
            la::Triplets& a0 = as.term(0.0, n);
            if (i1 >= 0) a0.add(i1, bh, -1.0);
            if (i2 >= 0) a0.add(i2, bh, 1.0);
            // Branch: v1 - v2 - r*i_ctrl = 0.
            if (i1 >= 0) a0.add(bh, i1, 1.0);
            if (i2 >= 0) a0.add(bh, i2, -1.0);
            a0.add(bh, bc, -e.value);
            break;
        }
        case ElementKind::cccs: {
            const index_t bc = ctrl_branch(e);
            la::Triplets& a0 = as.term(0.0, n);
            // gain * i_ctrl injected into n1, drawn from n2.
            if (i1 >= 0) a0.add(i1, bc, -e.value);
            if (i2 >= 0) a0.add(i2, bc, e.value);
            break;
        }
        case ElementKind::mutual: {
            const auto l1 = inductance_of.find(e.ctrl_name);
            const auto l2 = inductance_of.find(e.ctrl_name2);
            OPMSIM_REQUIRE(l1 != inductance_of.end() && l2 != inductance_of.end(),
                           "build_mna: mutual '" + e.name +
                               "' references unknown inductors");
            const double m = e.value * std::sqrt(l1->second * l2->second);
            const index_t b1 = branch_of.at(e.ctrl_name);
            const index_t b2 = branch_of.at(e.ctrl_name2);
            // Branch equations gain the coupling: L1 di1/dt + M di2/dt = ...
            la::Triplets& e1 = as.term(1.0, n);
            e1.add(b1, b2, m);
            e1.add(b2, b1, m);
            break;
        }
        }
    }
    // Every system has an order-0 term (possibly structural only).
    as.term(0.0, n);
    return as;
}

} // namespace

opm::MultiTermSystem build_multiterm_mna(const Netlist& nl, MnaLayout* layout) {
    OPMSIM_REQUIRE(nl.num_nodes() > 0, "build_multiterm_mna: empty netlist");
    Assembly as = assemble(nl);
    if (layout) *layout = as.layout;

    opm::MultiTermSystem sys;
    for (const auto& [order, trip] : as.terms)
        sys.lhs.push_back({order, la::CscMatrix(trip)});
    sys.rhs.push_back({0.0, la::CscMatrix(as.b)});
    return sys;
}

namespace {

/// Convert a two-order multi-term assembly into descriptor form
/// E d^alpha x = A x + B u with E = A_alpha and A = -A_0.
opm::DescriptorSystem to_descriptor(opm::MultiTermSystem mt, double alpha,
                                    index_t n) {
    opm::DescriptorSystem sys;
    bool have_dyn = false;
    for (auto& t : mt.lhs) {
        if (t.order == 0.0) {
            sys.a = la::CscMatrix::add(-1.0, t.mat, 0.0, t.mat);
        } else {
            OPMSIM_REQUIRE(t.order == alpha,
                           "netlist contains a dynamic element of order " +
                               std::to_string(t.order) + ", expected " +
                               std::to_string(alpha));
            sys.e = std::move(t.mat);
            have_dyn = true;
        }
    }
    if (!have_dyn) sys.e = la::CscMatrix(la::Triplets(n, n));
    sys.b = std::move(mt.rhs.front().mat);
    return sys;
}

} // namespace

opm::DescriptorSystem build_mna(const Netlist& nl, MnaLayout* layout) {
    OPMSIM_REQUIRE(nl.count(ElementKind::cpe) == 0,
                   "build_mna: netlist contains CPEs; use build_fractional_mna "
                   "or build_multiterm_mna");
    MnaLayout lay;
    opm::MultiTermSystem mt = build_multiterm_mna(nl, &lay);
    if (layout) *layout = lay;
    return to_descriptor(std::move(mt), 1.0, lay.size());
}

opm::DescriptorSystem build_fractional_mna(const Netlist& nl, double alpha,
                                           MnaLayout* layout) {
    OPMSIM_REQUIRE(alpha > 0.0, "build_fractional_mna: alpha must be positive");
    OPMSIM_REQUIRE(nl.count(ElementKind::capacitor) == 0 &&
                       nl.count(ElementKind::inductor) == 0,
                   "build_fractional_mna: integer-order dynamic elements "
                   "present; use build_multiterm_mna");
    MnaLayout lay;
    opm::MultiTermSystem mt = build_multiterm_mna(nl, &lay);
    if (layout) *layout = lay;
    return to_descriptor(std::move(mt), alpha, lay.size());
}

la::CscMatrix node_voltage_selector(const MnaLayout& layout,
                                    const std::vector<index_t>& nodes) {
    la::Triplets t(static_cast<index_t>(nodes.size()), layout.size());
    for (std::size_t r = 0; r < nodes.size(); ++r) {
        OPMSIM_REQUIRE(nodes[r] >= 1 && nodes[r] <= layout.num_nodes,
                       "node_voltage_selector: node index out of range");
        t.add(static_cast<index_t>(r), layout.voltage_index(nodes[r]), 1.0);
    }
    return la::CscMatrix(t);
}

} // namespace opmsim::circuit
