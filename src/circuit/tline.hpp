#pragma once
/// \file tline.hpp
/// \brief Fractional (order-1/2) transmission-line model (Table I substrate).
///
/// The paper's §V-A example is a 7-state, 2-input/2-output transmission-
/// line model with d^{1/2} dynamics, citing fractional-calculus line models
/// ([7],[8]); its numerical data was never published.  This module builds
/// the closest physical equivalent: a cascade of RLC sections whose series
/// impedance includes the skin-effect term K*sqrt(s),
///     Z(s) = R + s L + K sqrt(s),
/// realized in *half-order companion form*: each first-order relation is
/// split through the auxiliary states i_h = d^{1/2} i and v_h = d^{1/2} v,
/// so the whole cascade becomes a single-order system
///     E d^{1/2} x = A x + B u,    y = C x.
/// The far-end node uses a constant-phase element (lossy dielectric), which
/// needs no auxiliary state — with S sections the model has n = 4S - 1
/// states, and the default S = 2 gives exactly the paper's n = 7, p = q = 2.
///
/// State layout (S = 2): {i1, i1h, v1, v1h, i2, i2h, v2};
/// inputs u = (near-end source, far-end source); outputs y = (i1, v2).
/// Passivity: tests verify Matignon's condition |arg(lambda)| > pi/4 on
/// the pencil spectrum.

#include "opm/solver.hpp"

namespace opmsim::circuit {

struct FractionalTlineSpec {
    la::index_t sections = 2;  ///< S >= 1; n = 4S - 1 states
    double r = 10.0;           ///< series resistance per section [ohm]
    double l = 2e-9;           ///< series inductance per section [H]
    double k = 1e-4;           ///< skin-effect coefficient [ohm*s^{1/2}]
    double c = 1e-12;          ///< shunt capacitance per section [F]
    double c_end = 1e-12;      ///< far-end CPE coefficient [F*s^{-1/2}]
    double r_load = 50.0;      ///< far-end termination [ohm]
};

/// Build the half-order-companion state-space model (alpha = 1/2).
opm::DenseDescriptorSystem make_fractional_tline(
    const FractionalTlineSpec& spec = {});

/// The order of the model's fractional derivative.
inline constexpr double kTlineAlpha = 0.5;

} // namespace opmsim::circuit
