#pragma once
/// \file netlist.hpp
/// \brief Circuit netlist: R, L, C, sources, and fractional (CPE) elements.
///
/// The element set covers everything the paper's experiments need:
/// resistors/capacitors/inductors and independent sources for the power
/// grid, plus constant-phase elements (CPEs, "fractances") — the canonical
/// fractional-order circuit element with branch law i = c * d^alpha v —
/// for fractional models.  Node 0 is ground; other nodes are created on
/// first use (by index or by name).

#include <string>
#include <unordered_map>
#include <vector>

#include "la/dense.hpp"

namespace opmsim::circuit {

using la::index_t;

enum class ElementKind {
    resistor,   ///< i = (v1 - v2) / value
    capacitor,  ///< i = value * d(v1 - v2)/dt
    inductor,   ///< value * di/dt = v1 - v2 (branch current is a state)
    cpe,        ///< i = value * d^alpha (v1 - v2), 0 < alpha < 2
    vsource,    ///< v1 - v2 = u[source_id](t) (branch current is a state)
    isource,    ///< injects u[source_id](t) * value into n1, out of n2
    vccs,       ///< injects value * (v_cp - v_cn) into n1, out of n2
    vcvs,       ///< v1 - v2 = value * (v_cp - v_cn) (branch state)
    ccvs,       ///< v1 - v2 = value * i(ctrl_name) (branch state)
    cccs,       ///< injects value * i(ctrl_name) into n1, out of n2
    mutual      ///< coupling k between inductors ctrl_name / ctrl_name2
};

struct Element {
    ElementKind kind;
    std::string name;
    index_t n1 = 0, n2 = 0;      ///< terminal nodes (0 = ground)
    double value = 0.0;          ///< R, C, L, CPE coefficient, gain, or k
    double alpha = 1.0;          ///< CPE order
    index_t ctrl_p = 0, ctrl_n = 0;  ///< VCCS/VCVS sensing nodes
    index_t source_id = -1;      ///< input-vector slot for sources
    std::string ctrl_name;       ///< CCVS/CCCS controlling V-source;
                                 ///< mutual: first inductor
    std::string ctrl_name2;      ///< mutual: second inductor
};

/// Element container with a tiny builder API.
class Netlist {
public:
    explicit Netlist(std::string title = "") : title_(std::move(title)) {}

    /// Map a symbolic node name to an index (creates on first use).
    index_t node(const std::string& name);

    /// Grow the node count to cover index n (for direct-index authoring).
    void ensure_node(index_t n);

    void resistor(const std::string& name, index_t n1, index_t n2, double r);
    void capacitor(const std::string& name, index_t n1, index_t n2, double c);
    void inductor(const std::string& name, index_t n1, index_t n2, double l);
    /// Constant-phase element: i = c * d^alpha (v1 - v2).
    void cpe(const std::string& name, index_t n1, index_t n2, double c, double alpha);
    /// Independent voltage source; `source_id` selects the input channel.
    void vsource(const std::string& name, index_t np, index_t nn, index_t source_id);
    /// Independent current source scaled by `scale`, injecting into np.
    void isource(const std::string& name, index_t np, index_t nn, index_t source_id,
                 double scale = 1.0);
    /// Voltage-controlled current source: gm * (v_cp - v_cn) into np.
    void vccs(const std::string& name, index_t np, index_t nn, index_t cp, index_t cn,
              double gm);
    /// Voltage-controlled voltage source: v(np,nn) = gain * (v_cp - v_cn).
    void vcvs(const std::string& name, index_t np, index_t nn, index_t cp, index_t cn,
              double gain);
    /// Current-controlled voltage source: v(np,nn) = r * i(vsource_name).
    void ccvs(const std::string& name, index_t np, index_t nn,
              const std::string& vsource_name, double r);
    /// Current-controlled current source: gain * i(vsource_name) into np.
    void cccs(const std::string& name, index_t np, index_t nn,
              const std::string& vsource_name, double gain);
    /// Mutual inductance M = k * sqrt(L1 L2) between two named inductors.
    void mutual(const std::string& name, const std::string& l1,
                const std::string& l2, double k);

    [[nodiscard]] const std::string& title() const { return title_; }
    [[nodiscard]] const std::vector<Element>& elements() const { return elements_; }

    /// Number of non-ground nodes (highest node index used).
    [[nodiscard]] index_t num_nodes() const { return num_nodes_; }

    /// Number of input channels (1 + max source_id), 0 if no sources.
    [[nodiscard]] index_t num_inputs() const { return num_inputs_; }

    [[nodiscard]] index_t count(ElementKind k) const;

private:
    void add(Element e);

    std::string title_;
    std::vector<Element> elements_;
    std::unordered_map<std::string, index_t> names_;
    index_t num_nodes_ = 0;
    index_t num_inputs_ = 0;
};

} // namespace opmsim::circuit
