#pragma once
/// \file basis.hpp
/// \brief Common interface for orthogonal function bases.
///
/// The paper builds OPM on block-pulse functions "for illustrative purpose"
/// and notes that "OPM can readily switch to using other basis functions"
/// (Walsh, Haar, Legendre, ...).  This interface is what makes that switch
/// possible in opmsim: every basis provides projection, synthesis, the
/// coefficients of the constant function, and its operational matrix of
/// integration P satisfying  integral_0^t psi(tau) dtau ~= P psi(t).
/// The generic-basis solver (opm::simulate_generic_basis) consumes exactly
/// this interface; bench_fig_basis_ablation compares the bases.

#include <memory>
#include <string>

#include "la/dense.hpp"
#include "wave/sources.hpp"
#include "wave/waveform.hpp"

namespace opmsim::basis {

using la::index_t;
using la::Matrixd;
using la::Vectord;

/// An m-term orthogonal basis on [0, t_end).
class Basis {
public:
    virtual ~Basis() = default;

    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual index_t size() const = 0;
    [[nodiscard]] virtual double t_end() const = 0;

    /// Best-approximation coefficients of f on [0, t_end).
    [[nodiscard]] virtual Vectord project(const wave::Source& f) const = 0;

    /// Evaluate the truncated series sum_i c_i psi_i(t).
    [[nodiscard]] virtual double synthesize(const Vectord& coeffs, double t) const = 0;

    /// Coefficients representing the constant function 1.
    [[nodiscard]] virtual Vectord constant_coeffs() const = 0;

    /// Operational matrix of integration P (m x m).
    [[nodiscard]] virtual Matrixd integration_matrix() const = 0;

    /// Sample a coefficient series onto a waveform (default: npts uniform
    /// samples across [0, t_end)).
    [[nodiscard]] wave::Waveform to_waveform(const Vectord& coeffs,
                                             std::size_t npts = 256) const;
};

} // namespace opmsim::basis
