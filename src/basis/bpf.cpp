#include "basis/bpf.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace opmsim::basis {

// Basis::to_waveform lives here (bpf.cpp is the first basis TU linked).
wave::Waveform Basis::to_waveform(const Vectord& coeffs, std::size_t npts) const {
    OPMSIM_REQUIRE(static_cast<index_t>(coeffs.size()) == size(),
                   "to_waveform: coefficient count mismatch");
    OPMSIM_REQUIRE(npts >= 2, "to_waveform: need at least two samples");
    // Sample at midpoints of npts uniform sub-intervals: piecewise-constant
    // bases are sampled away from their jumps.
    const double t1 = t_end();
    Vectord t(npts), v(npts);
    for (std::size_t k = 0; k < npts; ++k) {
        t[k] = (static_cast<double>(k) + 0.5) * t1 / static_cast<double>(npts);
        v[k] = synthesize(coeffs, t[k]);
    }
    return wave::Waveform(std::move(t), std::move(v));
}

Matrixd bpf_integral_matrix(double h, index_t m) {
    OPMSIM_REQUIRE(h > 0 && m >= 1, "bpf_integral_matrix: need h>0, m>=1");
    Matrixd hm(m, m);
    for (index_t i = 0; i < m; ++i) {
        hm(i, i) = h / 2.0;
        for (index_t j = i + 1; j < m; ++j) hm(i, j) = h;
    }
    return hm;
}

Matrixd bpf_differential_matrix(double h, index_t m) {
    OPMSIM_REQUIRE(h > 0 && m >= 1, "bpf_differential_matrix: need h>0, m>=1");
    Matrixd d(m, m);
    const double s = 2.0 / h;
    for (index_t i = 0; i < m; ++i) {
        d(i, i) = s;
        double c = -2.0 * s;
        for (index_t j = i + 1; j < m; ++j) {
            d(i, j) = c;
            c = -c;
        }
    }
    return d;
}

Matrixd bpf_integral_matrix_adaptive(const Vectord& steps) {
    const index_t m = static_cast<index_t>(steps.size());
    OPMSIM_REQUIRE(m >= 1, "bpf_integral_matrix_adaptive: empty steps");
    Matrixd hm(m, m);
    for (index_t i = 0; i < m; ++i) {
        const double hi = steps[static_cast<std::size_t>(i)];
        OPMSIM_REQUIRE(hi > 0, "bpf_integral_matrix_adaptive: steps must be positive");
        hm(i, i) = hi / 2.0;
        for (index_t j = i + 1; j < m; ++j) hm(i, j) = hi;
    }
    return hm;
}

Matrixd bpf_differential_matrix_adaptive(const Vectord& steps) {
    const index_t m = static_cast<index_t>(steps.size());
    OPMSIM_REQUIRE(m >= 1, "bpf_differential_matrix_adaptive: empty steps");
    Matrixd d(m, m);
    for (index_t j = 0; j < m; ++j) {
        const double hj = steps[static_cast<std::size_t>(j)];
        OPMSIM_REQUIRE(hj > 0, "bpf_differential_matrix_adaptive: steps must be positive");
        d(j, j) = 2.0 / hj;
        double sign = -1.0;
        for (index_t i = j - 1; i >= 0; --i) {
            d(i, j) = sign * 4.0 / hj;
            sign = -sign;
        }
    }
    return d;
}

Vectord interval_midpoints(const Vectord& edges) {
    OPMSIM_REQUIRE(edges.size() >= 2, "interval_midpoints: need >= 2 edges");
    Vectord mid(edges.size() - 1);
    for (std::size_t i = 0; i + 1 < edges.size(); ++i)
        mid[i] = 0.5 * (edges[i] + edges[i + 1]);
    return mid;
}

Vectord edges_from_steps(const Vectord& steps) {
    Vectord e(steps.size() + 1);
    e[0] = 0.0;
    for (std::size_t i = 0; i < steps.size(); ++i) {
        OPMSIM_REQUIRE(steps[i] > 0, "edges_from_steps: steps must be positive");
        e[i + 1] = e[i] + steps[i];
    }
    return e;
}

BpfBasis::BpfBasis(double t_end, index_t m) {
    OPMSIM_REQUIRE(t_end > 0 && m >= 1, "BpfBasis: need t_end>0, m>=1");
    steps_.assign(static_cast<std::size_t>(m), t_end / static_cast<double>(m));
    edges_ = edges_from_steps(steps_);
    edges_.back() = t_end;
}

BpfBasis::BpfBasis(Vectord steps) : steps_(std::move(steps)) {
    OPMSIM_REQUIRE(!steps_.empty(), "BpfBasis: empty steps");
    edges_ = edges_from_steps(steps_);
}

Vectord BpfBasis::project(const wave::Source& f) const {
    return wave::project_average(f, edges_);
}

double BpfBasis::synthesize(const Vectord& coeffs, double t) const {
    OPMSIM_REQUIRE(coeffs.size() == steps_.size(), "synthesize: size mismatch");
    if (t < edges_.front() || t >= edges_.back()) return 0.0;
    const auto it = std::upper_bound(edges_.begin(), edges_.end(), t);
    const std::size_t i = static_cast<std::size_t>(it - edges_.begin()) - 1;
    return coeffs[std::min(i, coeffs.size() - 1)];
}

Vectord BpfBasis::constant_coeffs() const {
    return Vectord(steps_.size(), 1.0);
}

Matrixd BpfBasis::integration_matrix() const {
    return bpf_integral_matrix_adaptive(steps_);
}

} // namespace opmsim::basis
