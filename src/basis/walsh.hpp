#pragma once
/// \file walsh.hpp
/// \brief Walsh functions (sequency-ordered) and their operational matrix.
///
/// Walsh functions are the +-1-valued basis the paper singles out as
/// preferable "if we are only interested in the overall trend of the
/// response waveforms": low sequency indices capture low-frequency content.
/// Because each Walsh function is constant on the m = 2^k BPF subintervals,
/// the Walsh matrix W (rows = functions, columns = subintervals) links the
/// two bases, and all operational matrices transport across:
///     P_walsh = (1/m) W H_bpf W^T.

#include "basis/basis.hpp"

namespace opmsim::basis {

/// Sequency-ordered Walsh matrix: W(i, j) = value of the i-th Walsh
/// function on subinterval j.  m must be a power of two.  Rows are ordered
/// by increasing number of sign changes (sequency).
Matrixd walsh_matrix(index_t m);

/// In-place fast Walsh–Hadamard transform, natural (Hadamard) order,
/// unnormalized.  Size must be a power of two.
void fwht(Vectord& x);

/// Walsh basis on [0, t_end) with m = 2^k terms.
class WalshBasis final : public Basis {
public:
    WalshBasis(double t_end, index_t m);

    [[nodiscard]] std::string name() const override { return "walsh"; }
    [[nodiscard]] index_t size() const override { return m_; }
    [[nodiscard]] double t_end() const override { return t_end_; }
    [[nodiscard]] Vectord project(const wave::Source& f) const override;
    [[nodiscard]] double synthesize(const Vectord& coeffs, double t) const override;
    [[nodiscard]] Vectord constant_coeffs() const override;
    [[nodiscard]] Matrixd integration_matrix() const override;

    [[nodiscard]] const Matrixd& matrix() const { return w_; }

private:
    double t_end_;
    index_t m_;
    Matrixd w_;
};

} // namespace opmsim::basis
