#include "basis/walsh.hpp"

#include <algorithm>
#include <numeric>

#include "basis/bpf.hpp"
#include "fftx/fft.hpp"
#include "util/check.hpp"

namespace opmsim::basis {

void fwht(Vectord& x) {
    const std::size_t n = x.size();
    OPMSIM_REQUIRE(fftx::is_pow2(n), "fwht: size must be a power of two");
    for (std::size_t len = 1; len < n; len <<= 1)
        for (std::size_t i = 0; i < n; i += 2 * len)
            for (std::size_t k = i; k < i + len; ++k) {
                const double a = x[k], b = x[k + len];
                x[k] = a + b;
                x[k + len] = a - b;
            }
}

Matrixd walsh_matrix(index_t m) {
    OPMSIM_REQUIRE(m >= 1 && fftx::is_pow2(static_cast<std::size_t>(m)),
                   "walsh_matrix: m must be a power of two");
    // Natural-order Hadamard via Sylvester recursion, then reorder rows by
    // sequency (number of sign changes) -- robust and unambiguous.
    Matrixd h = Matrixd::identity(1);
    h(0, 0) = 1.0;
    for (index_t n = 1; n < m; n <<= 1) {
        Matrixd h2(2 * n, 2 * n);
        for (index_t i = 0; i < n; ++i)
            for (index_t j = 0; j < n; ++j) {
                const double v = h(i, j);
                h2(i, j) = v;
                h2(i, j + n) = v;
                h2(i + n, j) = v;
                h2(i + n, j + n) = -v;
            }
        h = std::move(h2);
    }
    // Sequency of each row.
    std::vector<index_t> order(static_cast<std::size_t>(m));
    std::iota(order.begin(), order.end(), index_t{0});
    auto sign_changes = [&](index_t r) {
        index_t c = 0;
        for (index_t j = 1; j < m; ++j)
            if (h(r, j) != h(r, j - 1)) ++c;
        return c;
    };
    std::vector<index_t> seq(static_cast<std::size_t>(m));
    for (index_t r = 0; r < m; ++r) seq[static_cast<std::size_t>(r)] = sign_changes(r);
    std::sort(order.begin(), order.end(),
              [&](index_t a, index_t b) {
                  return seq[static_cast<std::size_t>(a)] < seq[static_cast<std::size_t>(b)];
              });
    Matrixd w(m, m);
    for (index_t r = 0; r < m; ++r)
        for (index_t j = 0; j < m; ++j)
            w(r, j) = h(order[static_cast<std::size_t>(r)], j);
    return w;
}

WalshBasis::WalshBasis(double t_end, index_t m)
    : t_end_(t_end), m_(m), w_(walsh_matrix(m)) {
    OPMSIM_REQUIRE(t_end > 0, "WalshBasis: t_end must be positive");
}

Vectord WalshBasis::project(const wave::Source& f) const {
    // BPF averages, then rotate into the Walsh basis: c = (1/m) W fbar.
    const Vectord fbar =
        wave::project_average(f, wave::uniform_edges(t_end_, m_));
    Vectord c(static_cast<std::size_t>(m_), 0.0);
    for (index_t i = 0; i < m_; ++i) {
        double s = 0;
        for (index_t j = 0; j < m_; ++j) s += w_(i, j) * fbar[static_cast<std::size_t>(j)];
        c[static_cast<std::size_t>(i)] = s / static_cast<double>(m_);
    }
    return c;
}

double WalshBasis::synthesize(const Vectord& coeffs, double t) const {
    OPMSIM_REQUIRE(static_cast<index_t>(coeffs.size()) == m_, "synthesize: size mismatch");
    if (t < 0 || t >= t_end_) return 0.0;
    const index_t j = std::min<index_t>(
        static_cast<index_t>(t / t_end_ * static_cast<double>(m_)), m_ - 1);
    double s = 0;
    for (index_t i = 0; i < m_; ++i) s += coeffs[static_cast<std::size_t>(i)] * w_(i, j);
    return s;
}

Vectord WalshBasis::constant_coeffs() const {
    Vectord c(static_cast<std::size_t>(m_), 0.0);
    c[0] = 1.0;  // sequency-0 row is the all-ones function
    return c;
}

Matrixd WalshBasis::integration_matrix() const {
    const Matrixd h = bpf_integral_matrix(t_end_ / static_cast<double>(m_), m_);
    return (1.0 / static_cast<double>(m_)) * (w_ * h * w_.transposed());
}

} // namespace opmsim::basis
