#pragma once
/// \file haar.hpp
/// \brief Haar wavelet basis and its operational matrix.
///
/// Haar wavelets are the third basis family the paper lists.  Like Walsh
/// functions they are piecewise constant on m = 2^k subintervals, so the
/// same change-of-basis trick applies:  P_haar = (1/m) Hr H_bpf Hr^T with
/// Hr the orthogonal (rows scaled to ||row||^2 = m) Haar matrix.
/// Haar's locality makes it the best of the piecewise-constant bases for
/// signals with isolated sharp features.

#include "basis/basis.hpp"

namespace opmsim::basis {

/// Haar matrix, rows = wavelets evaluated on the m subintervals, scaled so
/// that Hr * Hr^T = m * I.  Row 0 is the constant function; row 2^p + q is
/// the wavelet at scale p, offset q, with value +-sqrt(2^p).
/// m must be a power of two.
Matrixd haar_matrix(index_t m);

/// Haar basis on [0, t_end) with m = 2^k terms.
class HaarBasis final : public Basis {
public:
    HaarBasis(double t_end, index_t m);

    [[nodiscard]] std::string name() const override { return "haar"; }
    [[nodiscard]] index_t size() const override { return m_; }
    [[nodiscard]] double t_end() const override { return t_end_; }
    [[nodiscard]] Vectord project(const wave::Source& f) const override;
    [[nodiscard]] double synthesize(const Vectord& coeffs, double t) const override;
    [[nodiscard]] Vectord constant_coeffs() const override;
    [[nodiscard]] Matrixd integration_matrix() const override;

    [[nodiscard]] const Matrixd& matrix() const { return h_; }

private:
    double t_end_;
    index_t m_;
    Matrixd h_;
};

} // namespace opmsim::basis
