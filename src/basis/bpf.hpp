#pragma once
/// \file bpf.hpp
/// \brief Block-pulse functions and their operational matrices (paper §II).
///
/// BPFs are the basis the paper develops OPM on: phi_i(t) = 1 on
/// [ih, (i+1)h), 0 elsewhere (eq. 1).  This module provides
///  * the integral operational matrix H (eq. 4-5),
///  * the differential operational matrix D = H^{-1} (eq. 7),
///  * their adaptive-step generalizations H~ and D~ (eq. 16-17),
///  * projection (interval averages, eq. 2) and staircase synthesis.
/// The *fractional* powers D^alpha live in opm/operational.hpp.

#include "basis/basis.hpp"

namespace opmsim::basis {

/// Uniform-step integral matrix H (eq. 4): h/2 on the diagonal, h above.
Matrixd bpf_integral_matrix(double h, index_t m);

/// Uniform-step differential matrix D = H^{-1} (eq. 7): upper-triangular
/// Toeplitz, first row (2/h) * [1, -2, 2, -2, ...].
Matrixd bpf_differential_matrix(double h, index_t m);

/// Adaptive-step integral matrix H~ (eq. 17): row i is h_i * [0 .. 1/2 1 1 ..].
Matrixd bpf_integral_matrix_adaptive(const Vectord& steps);

/// Adaptive-step differential matrix D~ = H~^{-1} (eq. 17/25): entry (i,j)
/// is 2*(-1)^(j-i)*c/h_j with c=1 on the diagonal and c=2 above it.
Matrixd bpf_differential_matrix_adaptive(const Vectord& steps);

/// Interval midpoints of a step-edge vector (m+1 edges -> m midpoints).
Vectord interval_midpoints(const Vectord& edges);

/// Edges cumulated from step lengths: {0, h0, h0+h1, ...}.
Vectord edges_from_steps(const Vectord& steps);

/// Block-pulse basis object for the generic-basis solver.  Supports
/// nonuniform steps (the Basis interface hides the difference).
class BpfBasis final : public Basis {
public:
    /// Uniform: m intervals of length t_end/m.
    BpfBasis(double t_end, index_t m);

    /// Nonuniform: explicit step lengths (must sum to t_end).
    explicit BpfBasis(Vectord steps);

    [[nodiscard]] std::string name() const override { return "block-pulse"; }
    [[nodiscard]] index_t size() const override {
        return static_cast<index_t>(steps_.size());
    }
    [[nodiscard]] double t_end() const override { return edges_.back(); }
    [[nodiscard]] Vectord project(const wave::Source& f) const override;
    [[nodiscard]] double synthesize(const Vectord& coeffs, double t) const override;
    [[nodiscard]] Vectord constant_coeffs() const override;
    [[nodiscard]] Matrixd integration_matrix() const override;

    [[nodiscard]] const Vectord& edges() const { return edges_; }
    [[nodiscard]] const Vectord& steps() const { return steps_; }

private:
    Vectord steps_;
    Vectord edges_;
};

} // namespace opmsim::basis
