#pragma once
/// \file laguerre.hpp
/// \brief Laguerre-function basis and its operational matrix.
///
/// The last basis family the paper names.  The Laguerre *functions*
/// phi_k(t) = sqrt(sigma) e^{-sigma t/2} L_k(sigma t) are orthonormal on
/// [0, inf) and natural for decaying transients.  Their integration
/// operational matrix follows from the Laplace-domain identity
/// (with w = (s - sigma/2)/(s + sigma/2)):
///     integral of phi_k  =  (2/sigma) [phi_k - 2 phi_{k+1} + 2 phi_{k+2} - ...]
/// — the same alternating upper-Toeplitz pattern as the BPF differential
/// matrix, scaled by 2/sigma.
///
/// Caveats (inherent to the family, visible in bench_fig_basis_ablation):
/// the basis lives on [0, inf), so projections over a finite window [0, T)
/// leak tail energy unless sigma ~ 6/T or larger, and the constant
/// function is not square-integrable (its coefficient series only
/// Abel-converges).

#include "basis/basis.hpp"

namespace opmsim::basis {

/// Evaluate Laguerre polynomials L_0..L_kmax at x (three-term recurrence);
/// out must have kmax+1 entries.
void laguerre_all(index_t kmax, double x, double* out);

/// Laguerre-function basis with m terms on [0, t_end) (projection window).
class LaguerreBasis final : public Basis {
public:
    /// sigma <= 0 selects the default 6 / t_end.
    LaguerreBasis(double t_end, index_t m, double sigma = 0.0);

    [[nodiscard]] std::string name() const override { return "laguerre"; }
    [[nodiscard]] index_t size() const override { return m_; }
    [[nodiscard]] double t_end() const override { return t_end_; }
    [[nodiscard]] Vectord project(const wave::Source& f) const override;
    [[nodiscard]] double synthesize(const Vectord& coeffs, double t) const override;
    [[nodiscard]] Vectord constant_coeffs() const override;
    [[nodiscard]] Matrixd integration_matrix() const override;

    [[nodiscard]] double sigma() const { return sigma_; }

private:
    double t_end_;
    index_t m_;
    double sigma_;
};

} // namespace opmsim::basis
