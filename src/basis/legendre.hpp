#pragma once
/// \file legendre.hpp
/// \brief Shifted Legendre polynomial basis and its operational matrix.
///
/// The polynomial member of the paper's basis list.  On [0, t_end) the
/// basis is psi_k(t) = P_k(2t/t_end - 1); spectral accuracy on smooth
/// waveforms, global ringing on discontinuous ones — the exact trade-off
/// bench_fig_basis_ablation quantifies.  The integration operational matrix
/// follows from the classic identity
///     int_{-1}^{x} P_k = (P_{k+1} - P_{k-1}) / (2k+1).

#include "basis/basis.hpp"

namespace opmsim::basis {

/// Evaluate Legendre polynomials P_0..P_kmax at x via the three-term
/// recurrence; out must have kmax+1 entries.
void legendre_all(index_t kmax, double x, double* out);

/// Gauss–Legendre nodes and weights on [-1, 1] (Newton iteration on P_n).
struct GaussRule {
    Vectord nodes;
    Vectord weights;
};
GaussRule gauss_legendre(index_t n);

/// Shifted Legendre basis with m terms (degrees 0..m-1) on [0, t_end).
class LegendreBasis final : public Basis {
public:
    LegendreBasis(double t_end, index_t m);

    [[nodiscard]] std::string name() const override { return "legendre"; }
    [[nodiscard]] index_t size() const override { return m_; }
    [[nodiscard]] double t_end() const override { return t_end_; }
    [[nodiscard]] Vectord project(const wave::Source& f) const override;
    [[nodiscard]] double synthesize(const Vectord& coeffs, double t) const override;
    [[nodiscard]] Vectord constant_coeffs() const override;
    [[nodiscard]] Matrixd integration_matrix() const override;

private:
    double t_end_;
    index_t m_;
    GaussRule quad_;  ///< projection quadrature (enough nodes for degree m-1)
};

} // namespace opmsim::basis
