#include "basis/haar.hpp"

#include <cmath>

#include "basis/bpf.hpp"
#include "fftx/fft.hpp"
#include "util/check.hpp"

namespace opmsim::basis {

Matrixd haar_matrix(index_t m) {
    OPMSIM_REQUIRE(m >= 1 && fftx::is_pow2(static_cast<std::size_t>(m)),
                   "haar_matrix: m must be a power of two");
    Matrixd h(m, m);
    for (index_t j = 0; j < m; ++j) h(0, j) = 1.0;
    index_t row = 1;
    for (index_t scale = 1; scale < m; scale <<= 1) {
        // `scale` = 2^p wavelets at this level, each supported on m/scale
        // consecutive subintervals.
        const index_t support = m / scale;
        const double amp = std::sqrt(static_cast<double>(scale));
        for (index_t q = 0; q < scale; ++q, ++row) {
            const index_t start = q * support;
            for (index_t j = 0; j < support / 2; ++j) h(row, start + j) = amp;
            for (index_t j = support / 2; j < support; ++j) h(row, start + j) = -amp;
        }
    }
    return h;
}

HaarBasis::HaarBasis(double t_end, index_t m)
    : t_end_(t_end), m_(m), h_(haar_matrix(m)) {
    OPMSIM_REQUIRE(t_end > 0, "HaarBasis: t_end must be positive");
}

Vectord HaarBasis::project(const wave::Source& f) const {
    const Vectord fbar =
        wave::project_average(f, wave::uniform_edges(t_end_, m_));
    Vectord c(static_cast<std::size_t>(m_), 0.0);
    for (index_t i = 0; i < m_; ++i) {
        double s = 0;
        for (index_t j = 0; j < m_; ++j) s += h_(i, j) * fbar[static_cast<std::size_t>(j)];
        c[static_cast<std::size_t>(i)] = s / static_cast<double>(m_);
    }
    return c;
}

double HaarBasis::synthesize(const Vectord& coeffs, double t) const {
    OPMSIM_REQUIRE(static_cast<index_t>(coeffs.size()) == m_, "synthesize: size mismatch");
    if (t < 0 || t >= t_end_) return 0.0;
    const index_t j = std::min<index_t>(
        static_cast<index_t>(t / t_end_ * static_cast<double>(m_)), m_ - 1);
    double s = 0;
    for (index_t i = 0; i < m_; ++i) s += coeffs[static_cast<std::size_t>(i)] * h_(i, j);
    return s;
}

Vectord HaarBasis::constant_coeffs() const {
    Vectord c(static_cast<std::size_t>(m_), 0.0);
    c[0] = 1.0;
    return c;
}

Matrixd HaarBasis::integration_matrix() const {
    const Matrixd hb = bpf_integral_matrix(t_end_ / static_cast<double>(m_), m_);
    return (1.0 / static_cast<double>(m_)) * (h_ * hb * h_.transposed());
}

} // namespace opmsim::basis
