#include "basis/legendre.hpp"

#include <cmath>
#include <numbers>
#include <vector>

#include "util/check.hpp"

namespace opmsim::basis {

void legendre_all(index_t kmax, double x, double* out) {
    out[0] = 1.0;
    if (kmax == 0) return;
    out[1] = x;
    for (index_t k = 2; k <= kmax; ++k)
        out[k] = ((2.0 * static_cast<double>(k) - 1.0) * x * out[k - 1] -
                  (static_cast<double>(k) - 1.0) * out[k - 2]) /
                 static_cast<double>(k);
}

GaussRule gauss_legendre(index_t n) {
    OPMSIM_REQUIRE(n >= 1, "gauss_legendre: n >= 1 required");
    GaussRule r;
    r.nodes.resize(static_cast<std::size_t>(n));
    r.weights.resize(static_cast<std::size_t>(n));
    const index_t half = (n + 1) / 2;
    for (index_t i = 0; i < half; ++i) {
        // Tricomi initial guess, then Newton on P_n.
        double x = std::cos(std::numbers::pi * (static_cast<double>(i) + 0.75) /
                            (static_cast<double>(n) + 0.5));
        double dp = 0;
        for (int it = 0; it < 100; ++it) {
            // Evaluate P_n and P_{n-1}.
            double p0 = 1.0, p1 = x;
            for (index_t k = 2; k <= n; ++k) {
                const double p2 = ((2.0 * static_cast<double>(k) - 1.0) * x * p1 -
                                   (static_cast<double>(k) - 1.0) * p0) /
                                  static_cast<double>(k);
                p0 = p1;
                p1 = p2;
            }
            // P'_n(x) = n (x P_n - P_{n-1}) / (x^2 - 1)
            dp = static_cast<double>(n) * (x * p1 - p0) / (x * x - 1.0);
            const double dx = p1 / dp;
            x -= dx;
            if (std::abs(dx) < 1e-15) break;
        }
        r.nodes[static_cast<std::size_t>(i)] = -x;  // ascending order
        r.nodes[static_cast<std::size_t>(n - 1 - i)] = x;
        const double w = 2.0 / ((1.0 - x * x) * dp * dp);
        r.weights[static_cast<std::size_t>(i)] = w;
        r.weights[static_cast<std::size_t>(n - 1 - i)] = w;
    }
    return r;
}

LegendreBasis::LegendreBasis(double t_end, index_t m)
    : t_end_(t_end), m_(m), quad_(gauss_legendre(std::max<index_t>(m + 8, 24))) {
    OPMSIM_REQUIRE(t_end > 0 && m >= 1, "LegendreBasis: need t_end>0, m>=1");
}

Vectord LegendreBasis::project(const wave::Source& f) const {
    // c_k = (2k+1)/2 * int_{-1}^{1} f(T(x+1)/2) P_k(x) dx
    Vectord c(static_cast<std::size_t>(m_), 0.0);
    std::vector<double> p(static_cast<std::size_t>(m_));
    for (std::size_t q = 0; q < quad_.nodes.size(); ++q) {
        const double x = quad_.nodes[q];
        const double t = 0.5 * t_end_ * (x + 1.0);
        const double fw = f(t) * quad_.weights[q];
        legendre_all(m_ - 1, x, p.data());
        for (index_t k = 0; k < m_; ++k)
            c[static_cast<std::size_t>(k)] += fw * p[static_cast<std::size_t>(k)];
    }
    for (index_t k = 0; k < m_; ++k)
        c[static_cast<std::size_t>(k)] *= (2.0 * static_cast<double>(k) + 1.0) / 2.0;
    return c;
}

double LegendreBasis::synthesize(const Vectord& coeffs, double t) const {
    OPMSIM_REQUIRE(static_cast<index_t>(coeffs.size()) == m_, "synthesize: size mismatch");
    const double x = 2.0 * t / t_end_ - 1.0;
    std::vector<double> p(static_cast<std::size_t>(m_));
    legendre_all(m_ - 1, x, p.data());
    double s = 0;
    for (index_t k = 0; k < m_; ++k)
        s += coeffs[static_cast<std::size_t>(k)] * p[static_cast<std::size_t>(k)];
    return s;
}

Vectord LegendreBasis::constant_coeffs() const {
    Vectord c(static_cast<std::size_t>(m_), 0.0);
    c[0] = 1.0;
    return c;
}

Matrixd LegendreBasis::integration_matrix() const {
    // Row k: integral of psi_k expressed in the basis.  With x = 2t/T - 1,
    //   int_0^t psi_0 = (T/2)(P_0 + P_1),
    //   int_0^t psi_k = (T/2)(P_{k+1} - P_{k-1})/(2k+1), k >= 1
    // (the P_{k+1} term is dropped at the truncation boundary k = m-1).
    Matrixd p(m_, m_);
    const double s = 0.5 * t_end_;
    p(0, 0) = s;
    if (m_ > 1) p(0, 1) = s;
    for (index_t k = 1; k < m_; ++k) {
        const double inv = s / (2.0 * static_cast<double>(k) + 1.0);
        p(k, k - 1) = -inv;
        if (k + 1 < m_) p(k, k + 1) = inv;
    }
    return p;
}

} // namespace opmsim::basis
