#include "basis/laguerre.hpp"

#include <cmath>
#include <vector>

#include "basis/legendre.hpp"
#include "util/check.hpp"

namespace opmsim::basis {

void laguerre_all(index_t kmax, double x, double* out) {
    out[0] = 1.0;
    if (kmax == 0) return;
    out[1] = 1.0 - x;
    for (index_t k = 1; k < kmax; ++k)
        out[k + 1] = ((2.0 * static_cast<double>(k) + 1.0 - x) * out[k] -
                      static_cast<double>(k) * out[k - 1]) /
                     (static_cast<double>(k) + 1.0);
}

LaguerreBasis::LaguerreBasis(double t_end, index_t m, double sigma)
    : t_end_(t_end), m_(m), sigma_(sigma > 0.0 ? sigma : 6.0 / t_end) {
    OPMSIM_REQUIRE(t_end > 0 && m >= 1, "LaguerreBasis: need t_end>0, m>=1");
}

Vectord LaguerreBasis::project(const wave::Source& f) const {
    // c_k = int_0^T f(t) sqrt(sigma) e^{-sigma t/2} L_k(sigma t) dt,
    // composite Gauss-Legendre over [0, T) (enough panels to resolve both
    // the exponential window and the oscillatory L_k).
    const index_t panels = std::max<index_t>(m_, 16);
    const GaussRule rule = gauss_legendre(8);
    Vectord c(static_cast<std::size_t>(m_), 0.0);
    std::vector<double> lk(static_cast<std::size_t>(m_));
    const double w = t_end_ / static_cast<double>(panels);
    for (index_t p = 0; p < panels; ++p) {
        const double a = w * static_cast<double>(p);
        for (std::size_t q = 0; q < rule.nodes.size(); ++q) {
            const double t = a + 0.5 * w * (rule.nodes[q] + 1.0);
            const double weight = 0.5 * w * rule.weights[q];
            const double win = std::sqrt(sigma_) * std::exp(-0.5 * sigma_ * t);
            laguerre_all(m_ - 1, sigma_ * t, lk.data());
            const double fv = f(t) * weight * win;
            for (index_t k = 0; k < m_; ++k)
                c[static_cast<std::size_t>(k)] += fv * lk[static_cast<std::size_t>(k)];
        }
    }
    return c;
}

double LaguerreBasis::synthesize(const Vectord& coeffs, double t) const {
    OPMSIM_REQUIRE(static_cast<index_t>(coeffs.size()) == m_, "synthesize: size mismatch");
    std::vector<double> lk(static_cast<std::size_t>(m_));
    laguerre_all(m_ - 1, sigma_ * t, lk.data());
    const double win = std::sqrt(sigma_) * std::exp(-0.5 * sigma_ * t);
    double s = 0;
    for (index_t k = 0; k < m_; ++k)
        s += coeffs[static_cast<std::size_t>(k)] * lk[static_cast<std::size_t>(k)];
    return win * s;
}

Vectord LaguerreBasis::constant_coeffs() const {
    // <1, phi_k> on [0, inf) = 2 (-1)^k / sqrt(sigma); Abel-convergent only.
    Vectord c(static_cast<std::size_t>(m_));
    double sign = 1.0;
    for (index_t k = 0; k < m_; ++k) {
        c[static_cast<std::size_t>(k)] = 2.0 * sign / std::sqrt(sigma_);
        sign = -sign;
    }
    return c;
}

Matrixd LaguerreBasis::integration_matrix() const {
    Matrixd p(m_, m_);
    for (index_t i = 0; i < m_; ++i) {
        p(i, i) = 2.0 / sigma_;
        double c = -4.0 / sigma_;
        for (index_t j = i + 1; j < m_; ++j) {
            p(i, j) = c;
            c = -c;
        }
    }
    return p;
}

} // namespace opmsim::basis
