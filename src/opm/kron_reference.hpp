#pragma once
/// \file kron_reference.hpp
/// \brief Ground-truth solver for OPM via the full Kronecker system.
///
/// The paper notes (eq. 15 / 27) that the OPM equations can be written as
///     ((D^alpha)^T (x) E - I_m (x) A) vec(X) = (I_m (x) B) vec(U)
/// and then immediately advises *against* solving this directly.  This
/// module solves it directly anyway — as an O((nm)^3) oracle the tests use
/// to prove the production column sweep computes the same X.

#include "opm/multiterm.hpp"
#include "opm/solver.hpp"

namespace opmsim::opm {

/// Solve eq. (15)/(27) densely and return the coefficient matrix X.
/// `d` is any operational matrix (uniform or adaptive, any alpha); `u` is
/// the p x m input coefficient matrix.
la::Matrixd solve_kronecker_reference(const la::Matrixd& e, const la::Matrixd& a,
                                      const la::Matrixd& b, const la::Matrixd& u,
                                      const la::Matrixd& d);

/// Multi-term ground truth: solve
///     (sum_k (D^{alpha_k})^T (x) A_k) vec(X) = vec(sum_l B_l U D^{beta_l})
/// densely with every operational matrix materialized, O((nm)^3).  `u` is
/// the p x m input coefficient matrix and `h` the uniform step — the
/// oracle the cross-solver tests pin the fast multi-term sweep against.
la::Matrixd solve_multiterm_kronecker_reference(const MultiTermSystem& sys,
                                                const la::Matrixd& u, double h);

} // namespace opmsim::opm
