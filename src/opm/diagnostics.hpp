#pragma once
/// \file diagnostics.hpp
/// \brief Uniform solver diagnostics shared by every result struct.
///
/// Before PR 4 the five solver paths reported timing through incompatible
/// fields (GrunwaldResult::solve_seconds vs TransientResult's
/// factor/sweep split vs OpmResult), which forced every cross-method
/// harness to special-case each result type.  Diagnostics is the one
/// shape they all fill now: timing split the same way, the resolved
/// history backend and pencil ordering, and the cache-interaction
/// counters the Engine facade's reuse guarantees are asserted against
/// (a warm run on a cached system must report zero `orderings`).
///
/// Diagnostics is also a wire-level type: the scenario service
/// (svc/wire.cpp) serializes every field below in declaration order, so
/// additions go at the END of the struct and need a matching encoder /
/// decoder clause (old decoders skip unknown trailing fields).

#include <string>
#include <vector>

#include "la/sparse_lu.hpp"
#include "opm/fast_history.hpp"

namespace opmsim {

struct Diagnostics {
    /// Pencil factorization time (construction + LU), seconds.  Near zero
    /// when every factor came from a cache — the pencil assembly and the
    /// cache lookup itself are still inside the timed region.
    double factor_seconds = 0.0;
    /// Column / time-step sweep time (including input projections), seconds.
    double sweep_seconds = 0.0;
    /// Triangular-solve time inside the sweep (forward/backward
    /// substitution through the factored pencil), seconds.  A subset of
    /// sweep_seconds; the remainder is history evaluation, stamping and
    /// projections.
    double solve_seconds = 0.0;
    /// Right-hand-side columns solved FOR THIS RESULT through the pencil
    /// factor(s): one per time step / basis column.  In a batched
    /// multi-RHS sweep every scenario reports its own columns, so the
    /// sweep's total is the sum across the group's results.
    long rhs_solved = 0;

    /// The concrete history backend used by the sweep (`automatic` is
    /// resolved before the sweep starts).  Paths that never evaluate a
    /// Toeplitz history (the alpha = 1 recurrence, the classic steppers,
    /// the adaptive integral sweep) report `naive`.
    opm::HistoryBackend history_backend = opm::HistoryBackend::naive;

    /// Total sum-of-exponentials modes K carried by the history engine
    /// (summed over terms for the multi-term engine; the adaptive soe
    /// path reports Z-modes + G-modes).  0 when the sweep did not use the
    /// soe backend.
    int soe_modes = 0;
    /// Worst fit error of the SoE tables used: l1 tail error for the
    /// discrete row fits, max relative error for the adaptive kernel fit.
    /// -1 when the soe backend was not used.
    double soe_fit_error = -1.0;
    /// History-kernel coefficient evaluations performed by the adaptive
    /// sweep (h_entry calls on the dense path, per-mode coefficient pairs
    /// on the soe path).  The dense path is Theta(steps^2), the soe path
    /// Theta(K * steps) — tests gate sub-quadratic cost on this counter.
    /// 0 for the non-adaptive solvers.
    long kernel_evals = 0;

    /// Ordering chosen for the main pencil's symbolic analysis (the
    /// `automatic` policy is resolved; `natural` when nothing was factored).
    la::SparseLuOptions::Ordering ordering = la::SparseLuOptions::Ordering::natural;

    /// Fill-reducing orderings (symbolic analyses) computed by this call.
    /// Zero means every pattern analysis came from a shared cache or a
    /// caller-provided symbolic.
    int orderings = 0;
    /// Full numeric factorizations performed by this call.
    int factorizations = 0;
    /// Numeric-only refactorizations (frozen pattern/pivots) performed.
    int refactor_count = 0;
    /// Numeric factors served from a FactorCache instead of being computed.
    int factor_cache_hits = 0;

    // --- numerical health (PR 6) -------------------------------------
    /// Hager/Higham 1-norm reciprocal-condition estimate of the main
    /// pencil factor: rcond ~ 1 / (||A||_1 ||A^-1||_1).  Values near
    /// machine epsilon mean the solve digits are suspect.  -1 when no
    /// estimate was computed (nothing factored on this path).
    double rcond_estimate = -1.0;
    /// Pivot-growth factor max|U| / max|A| of the main pencil factor.
    /// Large growth (>> 1e8) flags an unstable elimination even when the
    /// pivots themselves were accepted.  0 when nothing was factored.
    double pivot_growth = 0.0;
    /// Iterative-refinement corrections applied across the sweep's
    /// solves.  0 on a healthy run — refinement only triggers when the
    /// residual check fails, so the bit-exact fast path is untouched.
    long refinement_iters = 0;
    /// Degradation-ladder actions taken to complete this solve, in order
    /// (e.g. "supernodal_fallback", "pivot_tol_refactor", or
    /// "cache_invalidated").  Empty on a healthy run.
    std::vector<std::string> degradations;

    // --- cache freshness (PR 8) --------------------------------------
    /// Sum-of-exponentials tables fitted FRESH by this call (row fits for
    /// the discrete soe history backend, kernel fits for the adaptive
    /// path).  Zero means every table came from the SolveCaches bundle —
    /// the warm-restart guarantee the snapshot loader is gated on.  0 when
    /// the soe backend was not used.
    int soe_fits = 0;
};

} // namespace opmsim
