#pragma once
/// \file fast_history.hpp
/// \brief Fast evaluation of causal Toeplitz history sums.
///
/// Every fractional sweep in opmsim — the OPM differential / integral
/// Toeplitz paths and the Grünwald–Letnikov stepper — advances a column at
/// a time and needs, before solving column j, the history sum
///     H_j = sum_{i<j} c_{j-i} X_i                       (n-vector)
/// against a fixed coefficient row c.  Evaluated directly this is the
/// O(m^2 n) term that dominates all fractional simulations.
///
/// HistoryEngine computes the same sums with three interchangeable
/// backends:
///  * `naive`   — the textbook per-column loop; O(m^2 n).  Kept as the
///                test oracle and for very small m.
///  * `blocked` — identical arithmetic restructured into panel scatters:
///                when a 64-column panel of X completes, its contribution
///                to every future column is accumulated in one
///                register-tiled pass (4 output columns per sweep of the
///                hot panel).  Still O(m^2 n) FLOPs but with ~panel-width
///                fewer passes over X, so it runs close to machine
///                bandwidth.
///  * `fft`     — the fast-convolution-quadrature decomposition by lag:
///                lags below the base width B are summed directly (a
///                sliding window, so the largest Toeplitz coefficients
///                stay in exact arithmetic), while each dyadic level
///                L = B·2^l owns the lag window [L, 2L): whenever a
///                column block [a-L, a) completes, it is FFT-convolved
///                against c[L..2L) and scattered into columns [a, a+2L).
///                Each block is one batched FFT convolution with a
///                per-level cached kernel spectrum (fftx::RealConvPlan),
///                giving O(m log^2 m · n) total.
///  * `automatic` — fft above a measured crossover in m, blocked below.
///
/// Columns must be pushed in order; history(j) may be queried any time
/// after columns 0..j-1 were pushed.  All backends agree to roundoff
/// (~1e-13 relative); tests pin them to the naive oracle at 1e-10.

#include <memory>
#include <vector>

#include "la/dense.hpp"
#include "opm/operational.hpp"

namespace opmsim::fftx {
class RealConvPlan;
}

namespace opmsim::opm {

enum class HistoryBackend {
    naive,     ///< direct per-column accumulation (oracle)
    blocked,   ///< register-tiled panel scatter
    fft,       ///< dyadic blocked FFT convolution
    automatic  ///< fft above a crossover m, blocked below
};

class HistoryEngine {
public:
    /// \param coeffs  Toeplitz first row; coeffs[d] multiplies X_{j-d}.
    ///                Lags beyond the row are treated as zero.
    /// \param n       channel (state) count
    /// \param m       total column count
    HistoryEngine(Vectord coeffs, index_t n, index_t m,
                  HistoryBackend backend = HistoryBackend::automatic);
    ~HistoryEngine();

    HistoryEngine(const HistoryEngine&) = delete;
    HistoryEngine& operator=(const HistoryEngine&) = delete;

    /// out = sum_{i<j} coeffs[j-i] X_i.  Resizes out to n.
    void history(index_t j, Vectord& out);

    /// Commit solved column j (columns must arrive in order 0, 1, ...).
    void push(index_t j, const double* xj);

    /// The concrete backend in use (automatic is resolved at construction).
    [[nodiscard]] HistoryBackend backend() const { return backend_; }

    /// Resolve `automatic` to a concrete backend for m columns.
    static HistoryBackend resolve(HistoryBackend b, index_t m);

private:
    [[nodiscard]] double coef(index_t d) const {
        return d < static_cast<index_t>(c_.size()) ? c_[static_cast<std::size_t>(d)] : 0.0;
    }
    void scatter_panel(index_t a);             ///< blocked: [a-P, a) -> [a, m)
    void scatter_block(index_t a, index_t len);///< fft: [a-len, a) -> [a, a+len)

    Vectord c_;
    index_t n_ = 0;
    index_t m_ = 0;
    HistoryBackend backend_ = HistoryBackend::naive;
    index_t base_ = 0;     ///< panel / base block width
    index_t next_col_ = 0; ///< number of columns pushed so far

    la::Matrixd x_;    ///< committed columns (n x m)
    la::Matrixd acc_;  ///< scattered future contributions (n x m)

    // fft backend state: per-level convolution plans and row scratch.
    std::vector<std::unique_ptr<fftx::RealConvPlan>> plans_;
    Vectord rowa_, rowb_, outa_, outb_;
    std::vector<long double> hacc_;  ///< naive oracle accumulators
};

/// History engine specialized for the differential operator D^alpha.
///
/// For alpha > 1 the series rho_alpha has coefficients *growing* like
/// d^{alpha-1}, so its history sums cancel massively (terms ~150x larger
/// than the result for alpha = 1.7 at m = 256) and FFT roundoff — relative
/// to the term magnitude, not the result — gets amplified through the
/// implicit column recursion.  The standard stabilization from fast
/// convolution quadrature is to factor the operator,
///     rho_alpha = rho_{alpha-k} * rho_1^k,   k = ceil(alpha) - 1,
/// whose factors all have O(1)-bounded kernels (rho_1 = 1 - 2q + 2q^2 - …,
/// rho_beta with beta <= 1 decays like d^{-beta-1}).  The cascade streams
/// the intermediate series V^{(t+1)} = T_{f_t} V^{(t)} and uses
///     strict(T_{f_0 … f_k}) X = sum_t strict(T_{f_t}) V^{(t)},
/// valid because every factor has unit leading coefficient.  Each rho_1
/// factor is applied as the exact two-term recurrence
///     r_j = -r_{j-1} - 2 V_{j-1}     (strict history of rho_1),
/// so only the decaying fractional factor ever touches an FFT — the
/// cascade stays within ~1e-14 (unscaled) of exact arithmetic.  The
/// (2/h)^a scale is applied once to the summed history.
///
/// The cascade is engaged for alpha > 1 on both fast backends (fft and
/// blocked), so they evaluate the same factored operator; the naive
/// oracle keeps the full operator row with extended-precision
/// accumulation instead.
class DiffHistoryEngine {
public:
    DiffHistoryEngine(double alpha, double h, index_t n, index_t m,
                      HistoryBackend backend = HistoryBackend::automatic);

    /// out = sum_{i<j} D^alpha_row[j-i] X_i (scaled, like the raw operator).
    void history(index_t j, Vectord& out);

    /// Commit solved column j (columns must arrive in order 0, 1, ...).
    void push(index_t j, const double* xj);

private:
    double scale_ = 1.0;  ///< (2/h)^alpha, applied after summing stages
    index_t n_ = 0;
    std::unique_ptr<HistoryEngine> frac_;  ///< fractional-factor engine
    /// Per rho_1 stage: strict history r^{(t)}_j.  Extended precision —
    /// the recurrence is marginally stable (|eigenvalue| = 1), so double
    /// roundoff would grow linearly in m and the column recursion of the
    /// sweep amplifies any per-column error by orders of magnitude.
    std::vector<std::vector<long double>> r_;
    Vectord vcol_;
};

/// Y(:,j) = sum_{i<=j} op.coeffs[j-i] X(:,i) — the full (diagonal-included)
/// upper-triangular-Toeplitz apply, used for the integral-form forcing
/// precompute W = G H^alpha.  The fft backend evaluates it as one batched
/// full-length FFT convolution per channel pair (all columns are known up
/// front), O(n m log m); other backends stream through a HistoryEngine.
la::Matrixd toeplitz_apply(const UpperToeplitz& op, const la::Matrixd& x,
                           HistoryBackend backend = HistoryBackend::automatic);

} // namespace opmsim::opm
