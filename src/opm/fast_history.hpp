#pragma once
/// \file fast_history.hpp
/// \brief Fast evaluation of causal Toeplitz history sums.
///
/// Every fractional sweep in opmsim — the OPM differential / integral
/// Toeplitz paths, the multi-term solver, and the Grünwald–Letnikov
/// stepper — advances a column at a time and needs, before solving column
/// j, the history sum
///     H_j = sum_{i<j} c_{j-i} X_i                       (n-vector)
/// against a fixed coefficient row c.  Evaluated directly this is the
/// O(m^2 n) term that dominates all fractional simulations.
///
/// HistoryEngine computes the same sums with three interchangeable
/// backends:
///  * `naive`   — the textbook per-column loop; O(m^2 n).  Kept as the
///                test oracle and for very small m.
///  * `blocked` — identical arithmetic restructured into panel scatters:
///                when a 64-column panel of X completes, its contribution
///                to every future column is accumulated in one
///                register-tiled pass (4 output columns per sweep of the
///                hot panel).  Still O(m^2 n) FLOPs but with ~panel-width
///                fewer passes over X, so it runs close to machine
///                bandwidth.
///  * `fft`     — the fast-convolution-quadrature decomposition by lag:
///                lags below the base width B are summed directly (a
///                sliding window, so the largest Toeplitz coefficients
///                stay in exact arithmetic), while each dyadic level
///                L = B·2^l owns the lag window [L, 2L): whenever a
///                column block [a-L, a) completes, it is FFT-convolved
///                against c[L..2L) and scattered into columns [a, a+2L).
///                Each block is one batched FFT convolution with a
///                per-level cached kernel spectrum (fftx::RealConvPlan),
///                giving O(m log^2 m · n) total.
///  * `soe`     — sum-of-exponentials kernel compression (opm/soe.hpp):
///                the tail lags d >= B of each row are fitted by K modes
///                c_d ~= sum_k w_k r_k^{d-B}, each realized as the scalar
///                recurrence S_k <- r_k S_k + X_enter.  History state is
///                O((K + B) n) — independent of m — and each step costs
///                O((K + B) n), so million-step transients run in O(m)
///                time and O(1) memory.  Approximate at the fit tolerance
///                (reported per engine); OPT-IN ONLY — `automatic` never
///                resolves to it.  Streaming contract: history(j) may only
///                be queried at the frontier j = #pushed (all sweeps
///                comply).
///  * `automatic` — fft above a measured crossover in m, blocked in the
///                midrange, naive below one panel width (where the
///                blocked scatter degenerates to the naive loop plus
///                bookkeeping).
///
/// The engine is *batched*: one instance evaluates the histories of K
/// coefficient rows against the SAME pushed column stream (the multi-term
/// solver's workload — every LHS term sees the solved columns X).  All
/// backends share the committed column storage, and the fft backend
/// computes the forward transform of each completed block once and
/// multiplies it against all K cached kernel spectra
/// (RealConvPlan::forward / accumulate_spectrum), so K terms cost one
/// forward + K inverse transforms per block instead of K of each.
///
/// Columns must be pushed in order; history(j, term) may be queried any
/// time after columns 0..j-1 were pushed.  All backends agree to roundoff
/// (~1e-13 relative); tests pin them to the naive oracle at 1e-10.

#include <complex>
#include <memory>
#include <vector>

#include "la/dense.hpp"
#include "opm/operational.hpp"
#include "opm/soe.hpp"

namespace opmsim::fftx {
class RealConvPlan;
}

namespace opmsim::opm {

struct SolveCaches;  // opm/solve_cache.hpp: optional cross-run cache bundle

enum class HistoryBackend {
    naive,     ///< direct per-column accumulation (oracle)
    blocked,   ///< register-tiled panel scatter
    fft,       ///< dyadic blocked FFT convolution
    automatic, ///< fft above a crossover m, blocked/naive below
    soe        ///< streaming sum-of-exponentials compression (opt-in)
};

class HistoryEngine {
public:
    /// Single-row engine.
    /// \param coeffs  Toeplitz first row; coeffs[d] multiplies X_{j-d}.
    ///                Lags beyond the row are treated as zero.
    /// \param n       channel (state) count
    /// \param m       total column count
    /// \param caches  optional cross-run cache bundle (non-owning); the fft
    ///                backend reuses matching convolution plans from it and
    ///                the soe backend reuses fitted mode tables
    /// \param soe_tol absolute-l1 fit tolerance for the soe backend's
    ///                kernel compression (ignored by the exact backends)
    HistoryEngine(Vectord coeffs, index_t n, index_t m,
                  HistoryBackend backend = HistoryBackend::automatic,
                  SolveCaches* caches = nullptr, double soe_tol = 1e-8);

    /// Batched engine: K coefficient rows evaluated against one shared
    /// column stream.  Rows may have different lengths (short rows are
    /// zero-extended).
    HistoryEngine(std::vector<Vectord> rows, index_t n, index_t m,
                  HistoryBackend backend = HistoryBackend::automatic,
                  SolveCaches* caches = nullptr, double soe_tol = 1e-8);
    ~HistoryEngine();

    HistoryEngine(const HistoryEngine&) = delete;
    HistoryEngine& operator=(const HistoryEngine&) = delete;

    /// out = sum_{i<j} rows[0][j-i] X_i.  Resizes out to n.
    void history(index_t j, Vectord& out) { history(j, 0, out); }

    /// out = sum_{i<j} rows[term][j-i] X_i.  Resizes out to n.
    void history(index_t j, std::size_t term, Vectord& out);

    /// Commit solved column j (columns must arrive in order 0, 1, ...).
    void push(index_t j, const double* xj);

    /// The concrete backend in use (automatic is resolved at construction).
    [[nodiscard]] HistoryBackend backend() const { return backend_; }

    /// Number of coefficient rows served by this engine.
    [[nodiscard]] std::size_t num_terms() const { return rows_.size(); }

    /// Resolve `automatic` to a concrete backend for m columns.  Never
    /// returns `soe`: the approximate backend is strictly opt-in.
    static HistoryBackend resolve(HistoryBackend b, index_t m);

    /// Total SoE mode count across all terms (0 for exact backends).
    [[nodiscard]] index_t soe_modes() const;
    /// Worst per-term SoE l1 fit error (0 for exact backends / zero tails).
    [[nodiscard]] double soe_fit_error() const;
    /// Row fits computed FRESH at construction (not served by the caches
    /// bundle); 0 for exact backends.  Feeds Diagnostics::soe_fits.
    [[nodiscard]] index_t soe_fresh_fits() const { return soe_fresh_fits_; }
    /// Bytes of resident per-step history state: the soe backend's ring
    /// window + mode states + retained window taps; the exact backends
    /// report their full O(m) column/accumulator storage.
    [[nodiscard]] std::size_t resident_state_bytes() const;

private:
    [[nodiscard]] double coef(std::size_t t, index_t d) const {
        const Vectord& c = rows_[t];
        return d < static_cast<index_t>(c.size()) ? c[static_cast<std::size_t>(d)] : 0.0;
    }
    void scatter_panel(std::size_t t, index_t a);  ///< blocked: [a-P, a) -> [a, m)
    void scatter_block(index_t a, index_t len);    ///< fft: [a-len, a) -> [a, a+len), all terms
    fftx::RealConvPlan* level_plan(std::size_t level, std::size_t t,
                                   index_t len);

    std::vector<Vectord> rows_;
    SolveCaches* caches_ = nullptr;  ///< optional, non-owning
    index_t n_ = 0;
    index_t m_ = 0;
    HistoryBackend backend_ = HistoryBackend::naive;
    index_t base_ = 0;     ///< panel / base block width
    index_t next_col_ = 0; ///< number of columns pushed so far

    la::Matrixd x_;                  ///< committed columns (n x m, shared)
    std::vector<la::Matrixd> acc_;   ///< per-term scattered contributions

    // fft backend state: per-(level, term) convolution plans (null where a
    // term's lag window is entirely zero; shared_ptr so a SolveCaches can
    // co-own them across engines), shared forward spectrum, and row
    // scratch.
    std::vector<std::vector<std::shared_ptr<fftx::RealConvPlan>>> plans_;
    std::vector<std::complex<double>> spec_;
    Vectord rowa_, rowb_, outa_, outb_;
    std::vector<long double> hacc_;  ///< naive oracle accumulators

    // soe backend state: per-term fitted mode tables, the sliding ring of
    // the last base_ columns (slot j % base_), and per-term mode states
    // S_k (K x n, mode-major) in extended precision — the marginal
    // |r| = 1 modes (the exact alternating rho_1 tail) would otherwise
    // accumulate double roundoff linearly in m.  This is the ONLY pushed-
    // column storage the backend keeps: O((K + base) n), independent of m.
    std::vector<SoeFit> fits_;
    la::Matrixd ring_;
    std::vector<std::vector<long double>> sstate_;
    index_t soe_fresh_fits_ = 0;
};

/// Batched engine for differential operators D^{alpha_k}: one instance
/// evaluates the scaled strict histories of K operators (mixed integer /
/// fractional orders) against the same pushed column stream.
///
/// For alpha > 1 the series rho_alpha has coefficients *growing* like
/// d^{alpha-1}, so its history sums cancel massively (terms ~150x larger
/// than the result for alpha = 1.7 at m = 256) and FFT roundoff — relative
/// to the term magnitude, not the result — gets amplified through the
/// implicit column recursion.  The standard stabilization from fast
/// convolution quadrature is to factor the operator,
///     rho_alpha = rho_{alpha-k} * rho_1^k,   k = ceil(alpha) - 1,
/// whose factors all have O(1)-bounded kernels (rho_1 = 1 - 2q + 2q^2 - …,
/// rho_beta with beta <= 1 decays like d^{-beta-1}).  The cascade streams
/// the intermediate series V^{(t+1)} = T_{f_t} V^{(t)} and uses
///     strict(T_{f_0 … f_k}) X = sum_t strict(T_{f_t}) V^{(t)},
/// valid because every factor has unit leading coefficient.  Each rho_1
/// factor is applied as the exact two-term recurrence
///     r_j = -r_{j-1} - 2 V_{j-1}     (strict history of rho_1),
/// so only the decaying fractional factor ever touches an FFT — the
/// cascade stays within ~1e-14 (unscaled) of exact arithmetic.  The
/// (2/h)^a scale is applied once to each term's summed history.
///
/// Terms are grouped by cascade depth d = ceil(alpha) - 1 (0 for
/// alpha <= 1): the streams V^{(t)} and histories r^{(t)} depend only on
/// the pushed columns — not on any term's fractional part — so they are
/// computed ONCE and shared by every term, and all terms of equal depth
/// share one batched HistoryEngine over V^{(d)} (one forward FFT per
/// block for the whole group).  alpha = 0 terms are the identity; their
/// strict history is exactly zero and they cost nothing.
///
/// The cascade is engaged for alpha > 1 on both fast backends (fft and
/// blocked), so they evaluate the same factored operator; the naive
/// oracle keeps the full operator rows with extended-precision
/// accumulation instead.
class MultiTermHistoryEngine {
public:
    MultiTermHistoryEngine(const std::vector<double>& alphas, double h,
                           index_t n, index_t m,
                           HistoryBackend backend = HistoryBackend::automatic,
                           SolveCaches* caches = nullptr,
                           double soe_tol = 1e-8);

    /// out = sum_{i<j} D^{alpha_term}_row[j-i] X_i (scaled).
    void history(index_t j, std::size_t term, Vectord& out);

    /// Commit solved column j (columns must arrive in order 0, 1, ...).
    void push(index_t j, const double* xj);

    /// True when history(j, term) is identically zero (alpha_term = 0).
    [[nodiscard]] bool term_is_identity(std::size_t term) const {
        return terms_[term].identity;
    }

    [[nodiscard]] HistoryBackend backend() const { return backend_; }

    /// Aggregate SoE diagnostics over the depth-group engines.
    [[nodiscard]] index_t soe_modes() const;
    [[nodiscard]] double soe_fit_error() const;
    [[nodiscard]] index_t soe_fresh_fits() const;
    [[nodiscard]] std::size_t resident_state_bytes() const;

private:
    struct Term {
        double scale = 1.0;    ///< (2/h)^alpha
        index_t depth = 0;     ///< rho_1 cascade stages below this term
        std::size_t slot = 0;  ///< row index within the depth group
        bool identity = false; ///< alpha == 0: strict history is zero
    };

    std::vector<Term> terms_;
    /// groups_[d]: batched engine over stream V^{(d)} (null when no term
    /// has depth d).
    std::vector<std::unique_ptr<HistoryEngine>> groups_;
    /// Per rho_1 stage: strict history r^{(t)}_j.  Extended precision —
    /// the recurrence is marginally stable (|eigenvalue| = 1), so double
    /// roundoff would grow linearly in m and the column recursion of the
    /// sweep amplifies any per-column error by orders of magnitude.
    std::vector<std::vector<long double>> r_;
    index_t n_ = 0;
    HistoryBackend backend_ = HistoryBackend::naive;
    Vectord vcol_;
};

/// Single-operator D^alpha engine — the single-term solver's interface.
/// Exactly MultiTermHistoryEngine with one term (one shared cascade
/// implementation; see above for the alpha > 1 stabilization).
class DiffHistoryEngine {
public:
    DiffHistoryEngine(double alpha, double h, index_t n, index_t m,
                      HistoryBackend backend = HistoryBackend::automatic,
                      SolveCaches* caches = nullptr, double soe_tol = 1e-8);

    /// out = sum_{i<j} D^alpha_row[j-i] X_i (scaled, like the raw operator).
    void history(index_t j, Vectord& out) { eng_.history(j, 0, out); }

    /// Commit solved column j (columns must arrive in order 0, 1, ...).
    void push(index_t j, const double* xj) { eng_.push(j, xj); }

    [[nodiscard]] HistoryBackend backend() const { return eng_.backend(); }
    [[nodiscard]] index_t soe_modes() const { return eng_.soe_modes(); }
    [[nodiscard]] double soe_fit_error() const { return eng_.soe_fit_error(); }
    [[nodiscard]] index_t soe_fresh_fits() const {
        return eng_.soe_fresh_fits();
    }
    [[nodiscard]] std::size_t resident_state_bytes() const {
        return eng_.resident_state_bytes();
    }

private:
    MultiTermHistoryEngine eng_;
};

/// Y(:,j) = sum_{i<=j} op.coeffs[j-i] X(:,i) — the full (diagonal-included)
/// upper-triangular-Toeplitz apply, used for the integral-form forcing
/// precompute W = G H^alpha.  The fft backend evaluates it as one batched
/// full-length FFT convolution per channel pair (all columns are known up
/// front), O(n m log m); other backends stream through a HistoryEngine.
la::Matrixd toeplitz_apply(const UpperToeplitz& op, const la::Matrixd& x,
                           HistoryBackend backend = HistoryBackend::automatic,
                           SolveCaches* caches = nullptr,
                           double soe_tol = 1e-8);

/// Y = X D^alpha in coefficient space: the full (diagonal-included) apply
/// of the differential operator to a matrix whose columns are all known up
/// front — the multi-term solver's input-derivative precompute
/// W_l = U D^{beta_l}.  For alpha > 1 on the fast backends the operator is
/// applied in cascade form (exact rho_1 recurrences + one decaying
/// fractional Toeplitz factor), so the growing rho_alpha coefficients
/// never enter an FFT; the naive backend applies the full row with
/// extended-precision accumulation (oracle semantics).  alpha = 0 returns
/// X unchanged.
la::Matrixd diff_toeplitz_apply(double alpha, double h, const la::Matrixd& x,
                                HistoryBackend backend = HistoryBackend::automatic,
                                SolveCaches* caches = nullptr,
                                double soe_tol = 1e-8);

} // namespace opmsim::opm
