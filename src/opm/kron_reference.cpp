#include "opm/kron_reference.hpp"

#include "la/dense_lu.hpp"
#include "la/kron.hpp"
#include "opm/operational.hpp"
#include "util/check.hpp"

namespace opmsim::opm {

la::Matrixd solve_kronecker_reference(const la::Matrixd& e, const la::Matrixd& a,
                                      const la::Matrixd& b, const la::Matrixd& u,
                                      const la::Matrixd& d) {
    const index_t n = a.rows();
    const index_t m = d.rows();
    OPMSIM_REQUIRE(e.rows() == n && e.cols() == n && a.cols() == n,
                   "solve_kronecker_reference: E/A shape mismatch");
    OPMSIM_REQUIRE(b.rows() == n && u.rows() == b.cols() && u.cols() == m,
                   "solve_kronecker_reference: B/U shape mismatch");
    OPMSIM_REQUIRE(d.cols() == m, "solve_kronecker_reference: D must be square");

    const la::Matrixd lhs = la::kron(d.transposed(), e) -
                            la::kron(la::Matrixd::identity(m), a);
    const la::Matrixd rhs = b * u;  // vec(B U) = (I (x) B) vec(U)
    const Vectord x = la::DenseLu<double>(lhs).solve(la::vec(rhs));
    return la::unvec(x, n, m);
}

la::Matrixd solve_multiterm_kronecker_reference(const MultiTermSystem& sys,
                                                const la::Matrixd& u, double h) {
    sys.validate();
    OPMSIM_REQUIRE(h > 0.0, "solve_multiterm_kronecker_reference: bad step");
    const index_t n = sys.num_states();
    const index_t m = u.cols();
    OPMSIM_REQUIRE(u.rows() == sys.num_inputs(),
                   "solve_multiterm_kronecker_reference: U row count mismatch");
    OPMSIM_REQUIRE(m >= 1, "solve_multiterm_kronecker_reference: empty grid");

    la::Matrixd lhs(n * m, n * m);
    for (const auto& t : sys.lhs)
        lhs += la::kron(frac_differential_matrix(t.order, h, m).transposed(),
                        t.mat.to_dense());
    la::Matrixd rhs(n, m);
    for (const auto& t : sys.rhs)
        rhs += t.mat.to_dense() * u * frac_differential_matrix(t.order, h, m);

    const Vectord x = la::DenseLu<double>(lhs).solve(la::vec(rhs));
    return la::unvec(x, n, m);
}

} // namespace opmsim::opm
