#include "opm/kron_reference.hpp"

#include "la/dense_lu.hpp"
#include "la/kron.hpp"
#include "util/check.hpp"

namespace opmsim::opm {

la::Matrixd solve_kronecker_reference(const la::Matrixd& e, const la::Matrixd& a,
                                      const la::Matrixd& b, const la::Matrixd& u,
                                      const la::Matrixd& d) {
    const index_t n = a.rows();
    const index_t m = d.rows();
    OPMSIM_REQUIRE(e.rows() == n && e.cols() == n && a.cols() == n,
                   "solve_kronecker_reference: E/A shape mismatch");
    OPMSIM_REQUIRE(b.rows() == n && u.rows() == b.cols() && u.cols() == m,
                   "solve_kronecker_reference: B/U shape mismatch");
    OPMSIM_REQUIRE(d.cols() == m, "solve_kronecker_reference: D must be square");

    const la::Matrixd lhs = la::kron(d.transposed(), e) -
                            la::kron(la::Matrixd::identity(m), a);
    const la::Matrixd rhs = b * u;  // vec(B U) = (I (x) B) vec(U)
    const Vectord x = la::DenseLu<double>(lhs).solve(la::vec(rhs));
    return la::unvec(x, n, m);
}

} // namespace opmsim::opm
