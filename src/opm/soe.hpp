#pragma once
/// \file soe.hpp
/// \brief Sum-of-exponentials compression of fractional history kernels.
///
/// Both fast-history representations in this repo keep the *exact* kernel
/// (Toeplitz rows for the uniform sweeps, closed-form RL entries for the
/// adaptive grid) and pay for it with O(m) history state.  The classical
/// alternative — going back to the diffusive (spectral) representation of
/// the power-law kernel,
///     t^{a-1}/Gamma(a) = integral_0^inf  e^{-s t}  s^{-a}/Gamma(a)Gamma(1-a) ds,
/// is to discretize that Laplace integral on a log grid and compress the
/// quadrature nodes to K ~ log(range) * log(1/tol) modes, after which the
/// whole memory term collapses to K scalar recurrences
///     S_k <- r_k S_k + x_new           (discrete lag kernels)
///     S_k <- e^{-lambda_k h} (S_k + c)  (continuous RL kernel, any step h)
/// with O(K) state and O(K) work per step — the "short memory without
/// forgetting" trick used across the fast fractional-ODE literature.
///
/// Two fitters live here:
///
///  * fit_soe_row — discrete: given a Toeplitz coefficient row c[d]
///    (rho-series, Grünwald weights, integral series), approximate the
///    *tail* lags d >= window by
///        c[d] ~= sum_k w_k r_k^{d - window},      |r_k| <= 1,
///    leaving lags below `window` to the engine's exact sliding window.
///    The dictionary contains BOTH signs r = +-e^{-lambda} (the rho series
///    has a smooth d^{-a-1} component from the q = 1 singularity and an
///    alternating (-1)^d d^{a-1} component from q = -1 — the alternating
///    one dominates for a in (0,1)) plus the exact marginal nodes r = +-1
///    (the rho_1 tail is exactly 2 (-1)^d).  Node placement is a log grid
///    over the decay-rate decades (the discrete diffusive quadrature);
///    the least-squares solve + pruning pass is the Prony-style
///    compression to the final K.
///
///  * fit_soe_kernel — continuous: approximate the Riemann–Liouville
///    kernel u^{alpha-1}/Gamma(alpha) by sum_k w_k e^{-lambda_k u},
///    uniformly in RELATIVE error on [tmin, tmax] (the kernel spans many
///    decades of magnitude; absolute fitting would waste every digit on
///    the left edge).  This is what the adaptive engine integrates in
///    closed form over arbitrary step intervals.
///
/// Both fits are deterministic (fixed node grids, fixed sample grids, one
/// densify-and-retry ladder), so memoizing them in SolveCaches returns
/// bit-identical tables.

#include "la/dense.hpp"

namespace opmsim::opm {

using la::index_t;
using la::Vectord;

/// Discrete sum-of-exponentials approximation of a Toeplitz row tail:
///     c[d] ~= sum_k weights[k] * rates[k]^(d - window)  for d >= window.
/// `weights` are the mode amplitudes AT the window edge (the r^{-window}
/// normalization is folded in, so nothing here ever under/overflows).
struct SoeFit {
    Vectord rates;           ///< r_k, |r_k| <= 1 (both signs occur)
    Vectord weights;         ///< amplitude of mode k at lag d = window
    index_t window = 0;      ///< first lag the modes cover
    double fit_error = 0.0;  ///< sum_{d >= window} |c_d - soe(d)| (exact, l1)
    double tail_l1 = 0.0;    ///< sum_{d >= window} |c_d|

    [[nodiscard]] index_t modes() const {
        return static_cast<index_t>(rates.size());
    }
};

/// Fit the tail lags [window, len) of row c (length len) at absolute-l1
/// target `tol` (per unit of pushed-column magnitude: the history-sum
/// error of the streaming engine is bounded by fit_error * max|X|).
/// A row whose tail is identically zero yields zero modes; a tail the
/// dictionary cannot represent (non-decaying arbitrary data) is returned
/// with its achieved fit_error — callers decide whether to accept.
SoeFit fit_soe_row(const double* c, index_t len, index_t window, double tol);

/// Continuous sum-of-exponentials approximation of the RL kernel:
///     u^{alpha-1}/Gamma(alpha) ~= sum_k weights[k] e^{-lambdas[k] u}
/// uniformly in relative error on [tmin, tmax].
struct SoeKernelFit {
    Vectord lambdas;         ///< decay rates, all > 0
    Vectord weights;
    double alpha = 0.0;
    double tmin = 0.0, tmax = 0.0;
    double rel_error = 0.0;  ///< max relative error on the fit interval

    [[nodiscard]] index_t modes() const {
        return static_cast<index_t>(lambdas.size());
    }
};

/// Fit u^{alpha-1}/Gamma(alpha), alpha in (0, 1), on [tmin, tmax]
/// (0 < tmin < tmax) at relative target `tol`.
SoeKernelFit fit_soe_kernel(double alpha, double tmin, double tmax, double tol);

} // namespace opmsim::opm
