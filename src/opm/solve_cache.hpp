#pragma once
/// \file solve_cache.hpp
/// \brief Per-system cache bundle threaded through every solver path.
///
/// A SolveCaches object holds everything that is reusable across repeated
/// runs of ONE system and is expensive (or at least wasteful) to rebuild:
///
///  * `factors`  — sparse LU symbolic analyses keyed by pencil pattern and
///                 whole numeric factors keyed by pattern + values
///                 (la/factor_cache.hpp);
///  * `plans`    — FFT convolution plans keyed by their kernel taps
///                 (fftx::ConvPlanCache), shared by the history engines and
///                 the offline Toeplitz applies;
///  * memoized operational-matrix coefficient rows keyed by (alpha, m):
///    the rho_alpha series and Grünwald–Letnikov weight rows every
///    fractional sweep starts from.
///
/// Every solver options struct carries an optional non-owning
/// `SolveCaches*`; the legacy free functions default it to null (no
/// caching, behavior identical to before), while the Engine facade
/// (api/engine.hpp) keeps one bundle per registered system and threads it
/// into every run.  Caching never changes results: cache hits return
/// bit-identical objects to what a cold run would construct, which is
/// pinned by tests/test_api_engine.cpp.
///
/// Thread-safety: every layer serializes its own lookups/insertions
/// (la::FactorCache and fftx::ConvPlanCache internally, the series maps
/// via this struct's mutex) and hands out either immutable objects or
/// copies, so one bundle may be shared by Engine::run_batch's worker
/// threads.  The statistics getters are unsynchronized snapshots — read
/// them between runs, not while workers are active.

#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "la/factor_cache.hpp"
#include "opm/diagnostics.hpp"

namespace opmsim::fftx {
class ConvPlanCache;
}

namespace opmsim::opm {

struct SolveCaches {
    SolveCaches();
    ~SolveCaches();
    SolveCaches(const SolveCaches&) = delete;
    SolveCaches& operator=(const SolveCaches&) = delete;

    la::FactorCache factors;
    std::unique_ptr<fftx::ConvPlanCache> plans;

    /// Memoized rho series ((1-q)/(1+q))^alpha mod q^m (unscaled).
    /// Returned by value: the stored row may be evicted (or moved by a
    /// concurrent insert) at any time, so callers get their own copy —
    /// which every solver wanted anyway.
    Vectord frac_diff_series(double alpha, index_t m);
    /// Memoized Grünwald–Letnikov weights (-1)^j C(alpha, j), j < m.
    Vectord grunwald_weights(double alpha, index_t m);

    [[nodiscard]] long series_hits() const { return series_hits_; }
    [[nodiscard]] long series_misses() const { return series_misses_; }

private:
    /// Each map is bounded like the factor/plan caches: a long-lived
    /// handle sweeping many (alpha, m) pairs must not grow without limit,
    /// so an over-full map is dropped wholesale before the next insert
    /// (the rows are pure functions of the key — eviction only costs a
    /// recompute).
    static constexpr std::size_t kMaxSeries = 64;
    using SeriesMap = std::map<std::pair<double, index_t>, Vectord>;
    Vectord memoize(SeriesMap& map, double alpha, index_t m,
                    Vectord (*compute)(double, index_t));

    std::mutex series_mutex_;
    SeriesMap series_;
    SeriesMap weights_;
    long series_hits_ = 0, series_misses_ = 0;
};

/// Factor `pencil`, consulting `caches` when present, and account the work
/// in `diag`.  The returned factor is bit-identical whether it was
/// computed fresh or served from the cache.
std::shared_ptr<const la::SparseLu> acquire_factor(SolveCaches* caches,
                                                   const la::CscMatrix& pencil,
                                                   Diagnostics& diag);

} // namespace opmsim::opm
