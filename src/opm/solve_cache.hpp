#pragma once
/// \file solve_cache.hpp
/// \brief Per-system cache bundle threaded through every solver path.
///
/// A SolveCaches object holds everything that is reusable across repeated
/// runs of ONE system and is expensive (or at least wasteful) to rebuild:
///
///  * `factors`  — sparse LU symbolic analyses keyed by pencil pattern and
///                 whole numeric factors keyed by pattern + values
///                 (la/factor_cache.hpp);
///  * `plans`    — FFT convolution plans keyed by their kernel taps
///                 (fftx::ConvPlanCache), shared by the history engines and
///                 the offline Toeplitz applies;
///  * memoized operational-matrix coefficient rows keyed by (alpha, m):
///    the rho_alpha series and Grünwald–Letnikov weight rows every
///    fractional sweep starts from.
///
/// Every solver options struct carries an optional non-owning
/// `SolveCaches*`; the legacy free functions default it to null (no
/// caching, behavior identical to before), while the Engine facade
/// (api/engine.hpp) keeps one bundle per registered system and threads it
/// into every run.  Caching never changes results: cache hits return
/// bit-identical objects to what a cold run would construct, which is
/// pinned by tests/test_api_engine.cpp.
///
/// Thread-safety: every layer serializes its own lookups/insertions
/// (la::FactorCache and fftx::ConvPlanCache internally, the series maps
/// via this struct's mutex — a util::Mutex capability, every guarded map
/// GUARDED_BY it) and hands out either immutable objects or copies, so
/// one bundle may be shared by Engine::run_batch's worker threads.  The
/// statistics getters take the mutex and may be called while workers are
/// active.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <utility>

#include "la/factor_cache.hpp"
#include "opm/diagnostics.hpp"
#include "opm/soe.hpp"
#include "util/annotations.hpp"
#include "util/status.hpp"

namespace opmsim::fftx {
class ConvPlanCache;
}

namespace opmsim::opm {

struct SolveCaches {
    SolveCaches();
    ~SolveCaches();
    SolveCaches(const SolveCaches&) = delete;
    SolveCaches& operator=(const SolveCaches&) = delete;

    la::FactorCache factors;
    std::unique_ptr<fftx::ConvPlanCache> plans;

    /// Memoized rho series ((1-q)/(1+q))^alpha mod q^m (unscaled).
    /// Returned by value: the stored row may be evicted (or moved by a
    /// concurrent insert) at any time, so callers get their own copy —
    /// which every solver wanted anyway.
    Vectord frac_diff_series(double alpha, index_t m);
    /// Memoized Grünwald–Letnikov weights (-1)^j C(alpha, j), j < m.
    Vectord grunwald_weights(double alpha, index_t m);

    /// Memoized sum-of-exponentials fit of a Toeplitz row tail (soe
    /// history backend).  Keyed by a content hash of the row prefix plus
    /// (len, window, tol): the fitters are deterministic, so a hit returns
    /// a bit-identical table to a cold fit.  In the astronomically
    /// unlikely event of a hash collision the table returned would still
    /// be a valid SoE fit of *some* row at the same (len, window, tol) —
    /// and the stored fit_error would expose it — but we accept the hash
    /// as the identity here, like every content-addressed cache.  `fresh`
    /// (optional) reports whether the fit was computed by this call (true)
    /// or served from the memo (false) — the Diagnostics::soe_fits signal.
    SoeFit soe_row(const Vectord& row, index_t len, index_t window, double tol,
                   bool* fresh = nullptr);
    /// Memoized continuous RL-kernel fit (adaptive soe path), keyed by
    /// (alpha, tmin, tmax, tol).  Callers wanting cache/no-cache
    /// bit-identical runs should canonicalize tmin/tmax (the adaptive
    /// driver rounds them to dyadic classes) before calling.  `fresh` as
    /// in soe_row().
    SoeKernelFit soe_kernel(double alpha, double tmin, double tmax, double tol,
                            bool* fresh = nullptr);

    [[nodiscard]] long series_hits() const {
        const util::MutexLock lock(series_mutex_);
        return series_hits_;
    }
    [[nodiscard]] long series_misses() const {
        const util::MutexLock lock(series_mutex_);
        return series_misses_;
    }

    /// Drop every cached entry (factors, plans, series and SoE memos) —
    /// the Engine's LRU cache tier evicts cold tenants with this.  The
    /// bundle's address is unchanged and it stays fully usable; the next
    /// run simply re-warms it.  Not thread-safe against in-flight runs.
    void purge();

    /// Write a warm-restart snapshot to `path` (atomic: temp file +
    /// rename): the factor cache's symbolic analyses, the rho-series /
    /// Grünwald-weight memos, and the fitted SoE tables — everything a
    /// fresh process needs so its FIRST request reports zero
    /// fill-reducing orderings and zero SoE refits.  Numeric factors and
    /// FFT plans are value-/process-bound and cheap to rebuild, so they
    /// are not snapshotted.  Throws solver_error(internal_error) on I/O
    /// failure.
    void save(const std::string& path);

    /// Merge a snapshot written by save() into this bundle.  The file's
    /// checksum and every symbolic entry's pattern fingerprint are
    /// verified; corruption or version mismatch throws
    /// solver_error(ErrorCode::invalid_scenario) and leaves the bundle
    /// usable (entries loaded before the failure may remain).
    void load(const std::string& path);

private:
    /// Each map is bounded like the factor/plan caches: a long-lived
    /// handle sweeping many (alpha, m) pairs must not grow without limit,
    /// so an over-full map is dropped wholesale before the next insert
    /// (the rows are pure functions of the key — eviction only costs a
    /// recompute).
    static constexpr std::size_t kMaxSeries = 64;
    using SeriesMap = std::map<std::pair<double, index_t>, Vectord>;
    Vectord memoize(SeriesMap& map, double alpha, index_t m,
                    Vectord (*compute)(double, index_t))
        REQUIRES(series_mutex_);

    /// mutable: the stats getters are const but must lock — the svc
    /// daemon polls them while the dispatcher is live.
    mutable util::Mutex series_mutex_;
    SeriesMap series_ GUARDED_BY(series_mutex_);
    SeriesMap weights_ GUARDED_BY(series_mutex_);
    /// SoE fit memos, bounded like the series maps (kMaxSeries entries,
    /// dropped wholesale when over-full — the fits are pure functions of
    /// their keys).
    std::map<std::tuple<std::uint64_t, index_t, index_t, double>, SoeFit>
        soe_rows_ GUARDED_BY(series_mutex_);
    std::map<std::tuple<double, double, double, double>, SoeKernelFit>
        soe_kernels_ GUARDED_BY(series_mutex_);
    long series_hits_ GUARDED_BY(series_mutex_) = 0;
    long series_misses_ GUARDED_BY(series_mutex_) = 0;
};

/// Factor `pencil`, consulting `caches` when present, and account the work
/// in `diag`.  The returned factor is bit-identical whether it was
/// computed fresh or served from the cache.
std::shared_ptr<const la::SparseLu> acquire_factor(SolveCaches* caches,
                                                   const la::CscMatrix& pencil,
                                                   Diagnostics& diag);

/// Same, with explicit factorization options (the degradation ladder's
/// strict-pivoting retry path).
std::shared_ptr<const la::SparseLu> acquire_factor(SolveCaches* caches,
                                                   const la::CscMatrix& pencil,
                                                   const la::SparseLuOptions& opt,
                                                   Diagnostics& diag);

/// One pencil's factor plus guarded solves: the robustness funnel every
/// sweep loop goes through.
///
/// Construction acquires the factor through the graceful-degradation
/// ladder: NaN/Inf guard on the pencil values, then the default
/// (supernodal-preferring) factorization — which itself falls back
/// supernodal -> scalar on a rejected diagonal pivot — then, on pivot
/// breakdown, a scalar refactorization with strict partial pivoting
/// (pivot_tol = 1.0).  Each escalation is recorded in
/// Diagnostics::degradations; the pivot-growth factor and the Hager
/// 1-norm rcond estimate of the factor land in the same Diagnostics.
///
/// solve() wraps SparseLu::solve_in_place with: the cooperative
/// deadline/cancellation check (sweep granularity), NaN/Inf guards on the
/// RHS and the solution, a one-shot stale-factor recovery (a non-finite
/// solution from a finite RHS invalidates the cached factor — it is never
/// served again — and refactors fresh), and residual-checked iterative
/// refinement (<= 2 corrections, only when the residual check fails, so
/// healthy solves stay bit-identical to a raw solve_in_place).  The solve
/// timing / rhs_solved bookkeeping the sweeps used to do inline happens
/// here.
///
/// The pencil is held by reference and must outlive the PencilSolve (the
/// sweep loops keep it in scope); errors surface as opmsim::solver_error
/// carrying the taxonomy code.
class PencilSolve {
public:
    PencilSolve(SolveCaches* caches, const la::CscMatrix& pencil,
                Diagnostics& diag, const util::RunControl* control = nullptr);

    /// Guarded multi-RHS solve, same shape contract as
    /// SparseLu::solve_in_place(b, nrhs, ldb).
    void solve(double* b, index_t nrhs, index_t ldb);

    /// The underlying factor (for symbolic sharing / direct solves on
    /// side pencils).
    [[nodiscard]] const la::SparseLu& lu() const { return *lu_; }
    [[nodiscard]] const std::shared_ptr<const la::SparseLu>& factor() const {
        return lu_;
    }

private:
    void rebuild_factor();
    void refine(double* b, index_t nrhs, index_t ldb);

    SolveCaches* caches_;
    const la::CscMatrix& pencil_;
    Diagnostics& diag_;
    const util::RunControl* control_;
    la::SparseLuOptions opts_{};  ///< options the ladder settled on
    std::shared_ptr<const la::SparseLu> lu_;
    Vectord b0_;     ///< RHS copy for the residual check
    Vectord resid_;  ///< per-column residual / correction scratch
    bool rebuilt_ = false;
    bool first_solve_ = true;
};

} // namespace opmsim::opm
