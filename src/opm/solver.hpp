#pragma once
/// \file solver.hpp
/// \brief OPM simulation of linear and fractional descriptor systems.
///
/// Implements the paper's core algorithm: expand states and inputs in BPFs,
/// replace d^alpha/dt^alpha with the operational matrix D^alpha, and solve
///     E X D^alpha = A X + B U            (eq. 14 / 27)
/// column by column, exploiting the upper-triangular structure of D^alpha.
/// One pencil factorization is reused across all m columns, so the cost is
/// O(n^beta) + m sparse solves + the Toeplitz history accumulation — the
/// paper's §IV quotes O(n m^2) for the latter; the fast history engine
/// (opm/fast_history.hpp) lowers it to O(n m log^2 m).
///
/// Two execution paths:
///  * `recurrence` (integer alpha = 1, differential form): the equation is
///    multiplied through by (I + Q), giving the two-term banded recurrence
///       (2/h E - A) X_j = (2/h E + A) X_{j-1} + B (U_j + U_{j-1}),
///    which is algebraically the trapezoidal rule — O(n m) total sweep.
///  * `toeplitz` (any alpha > 0): the general accumulation
///       (d_0 E - A) X_j = B U_j - E sum_{i<j} d_{j-i} X_i,
///    with the history sum evaluated by the backend selected through
///    OpmOptions::history (naive / blocked direct, or blocked FFT
///    convolution — see HistoryBackend).
/// Both produce identical results for alpha = 1 (verified by tests).
///
/// Initial conditions use the Caputo convention: x(t) = x0 + z(t) with
/// d^alpha z solved for; the fractional derivative of the constant x0
/// vanishes, so E d^a z = A z + (B u + A x0).

#include <vector>

#include "basis/basis.hpp"
#include "la/dense.hpp"
#include "la/sparse.hpp"
#include "opm/diagnostics.hpp"
#include "opm/fast_history.hpp"
#include "wave/sources.hpp"
#include "wave/waveform.hpp"

namespace opmsim::util {
struct RunControl;
}

namespace opmsim::opm {

using la::index_t;
using la::Vectord;

/// Sparse descriptor system E x' = A x + B u, y = C x.  An empty C means
/// y = x (identity observation).
struct DescriptorSystem {
    la::CscMatrix e;  ///< n x n, may be singular (DAE)
    la::CscMatrix a;  ///< n x n
    la::CscMatrix b;  ///< n x p
    la::CscMatrix c;  ///< q x n, or empty

    [[nodiscard]] index_t num_states() const { return a.rows(); }
    [[nodiscard]] index_t num_inputs() const { return b.cols(); }
    [[nodiscard]] index_t num_outputs() const {
        return c.rows() > 0 ? c.rows() : num_states();
    }
    /// Throws std::invalid_argument on inconsistent dimensions.
    void validate() const;
};

/// Dense counterpart for small models (e.g. the 7-state transmission line).
struct DenseDescriptorSystem {
    la::Matrixd e, a, b, c;

    [[nodiscard]] DescriptorSystem to_sparse() const;
    [[nodiscard]] index_t num_states() const { return a.rows(); }
    [[nodiscard]] index_t num_inputs() const { return b.cols(); }
    [[nodiscard]] index_t num_outputs() const {
        return c.rows() > 0 ? c.rows() : num_states();
    }
};

enum class OpmForm {
    differential,  ///< E X D^alpha = A X + B U (the paper's formulation)
    integral       ///< E X = A X H^alpha + B U H^alpha (better for rough u)
};

enum class OpmPath {
    automatic,   ///< recurrence when available, else toeplitz
    recurrence,  ///< O(m) banded sweep; requires alpha == 1, differential
    toeplitz     ///< O(m^2) general sweep
};

struct OpmOptions {
    // NOTE: api/registry.cpp's options_equal() decides run_batch scenario
    // grouping by comparing every field here except `caches` — keep it in
    // sync when adding fields, or grouped batches will silently run with
    // the first scenario's value.
    double alpha = 1.0;                   ///< differential order (> 0)
    OpmForm form = OpmForm::differential;
    OpmPath path = OpmPath::automatic;
    /// History-sum backend for the Toeplitz sweeps: `naive` is the O(m^2)
    /// oracle loop, `blocked` the register-tiled panel scatter, `fft` the
    /// O(m log^2 m) blocked-convolution scheme, `soe` the streaming
    /// sum-of-exponentials compression (O(K) state per row, opt-in);
    /// `automatic` picks among the exact backends by m.
    HistoryBackend history = HistoryBackend::automatic;
    /// Absolute l1 fit tolerance for the `soe` history backend's kernel
    /// compression (ignored by the exact backends).  The history-sum
    /// error per column is bounded by soe_tol * max column magnitude.
    double soe_tol = 1e-8;
    Vectord x0;                           ///< initial state; empty = zero
    int quad_points = 4;                  ///< input projection quadrature
    int quad_panels = 1;                  ///< composite panels per interval
    /// Optional cross-run cache bundle (non-owning; see opm/solve_cache.hpp).
    /// When set, pencil factorizations, FFT plans and rho series are
    /// served from / stored into it.  Results are bit-identical either
    /// way; the Engine facade threads one bundle per registered system.
    SolveCaches* caches = nullptr;
    /// Optional cooperative deadline / cancellation token (non-owning;
    /// util/status.hpp), checked at sweep-step granularity.  Injected by
    /// Engine::run_batch; excluded from options_equal like `caches`.
    const util::RunControl* control = nullptr;
};

struct OpmResult {
    la::Matrixd coeffs;  ///< X: n x m BPF coefficient matrix
    Vectord edges;       ///< m+1 interval edges
    std::vector<wave::Waveform> outputs;  ///< per channel, midpoint samples

    /// Uniform timing / cache diagnostics (opm/diagnostics.hpp).
    Diagnostics diag;
};

/// Simulate on [0, t_end) with m uniform steps.
OpmResult simulate_opm(const DescriptorSystem& sys,
                       const std::vector<wave::Source>& inputs, double t_end,
                       index_t m, const OpmOptions& opt = {});

/// Dense-pencil convenience overload.
OpmResult simulate_opm(const DenseDescriptorSystem& sys,
                       const std::vector<wave::Source>& inputs, double t_end,
                       index_t m, const OpmOptions& opt = {});

/// Batched variant: S source sets against one system, identical grid and
/// options.  The pencil is factored once and every column step performs
/// ONE multi-RHS triangular solve across all S scenarios (the history
/// engines run on the stacked n*S row block), so the per-step factor and
/// history machinery is amortized S ways.  Results are per scenario and
/// match simulate_opm run S times up to floating-point reassociation in
/// the fft history backend (bit-identical on the recurrence path and the
/// naive/blocked backends); the shared work is accounted to the first
/// result's Diagnostics, the per-scenario rhs_solved to each.
std::vector<OpmResult> simulate_opm_batch(
    const DescriptorSystem& sys,
    const std::vector<std::vector<wave::Source>>& inputs, double t_end,
    index_t m, const OpmOptions& opt = {});

/// Windowed (restarted) OPM for long horizons: the m columns are solved in
/// windows of `window` columns each, chaining the end-of-window state as
/// the next window's initial condition.  For alpha = 1 the chaining is
/// exact (the trapezoidal endpoint state is recovered from the averages),
/// so the result matches the monolithic solve to roundoff while the
/// working set stays O(n * window).  Fractional orders are rejected —
/// their memory kernel does not truncate at window boundaries.
OpmResult simulate_opm_windowed(const DescriptorSystem& sys,
                                const std::vector<wave::Source>& inputs,
                                double t_end, index_t m, index_t window,
                                const OpmOptions& opt = {});

/// OPM over an arbitrary orthogonal basis (integral form, dense Kronecker
/// solve):  E X = (A X + B U) P + E x0 k1^T.  This is the "switch the basis
/// functions" capability of §I; O((n m)^3), intended for small studies —
/// the BPF solvers above are the production path.
OpmResult simulate_generic_basis(const DenseDescriptorSystem& sys,
                                 const std::vector<wave::Source>& inputs,
                                 const basis::Basis& bas,
                                 const Vectord& x0 = {});

/// Extract output waveforms y = C X sampled at interval midpoints.
std::vector<wave::Waveform> outputs_from_coeffs(const la::CscMatrix& c,
                                                const la::Matrixd& x,
                                                const Vectord& edges,
                                                const Vectord& x0 = {});

/// Extract output waveforms at the interval *edges* (including t = 0) by
/// unwinding the average: x(t_{j+1}) = 2 X_j - x(t_j).  For alpha = 1 this
/// recovers exactly the trapezoidal-rule endpoint states, which is the
/// natural grid for comparing OPM against classic steppers (Table II).
std::vector<wave::Waveform> endpoint_outputs_from_coeffs(const la::CscMatrix& c,
                                                         const la::Matrixd& x,
                                                         const Vectord& edges,
                                                         const Vectord& x0 = {});

} // namespace opmsim::opm
