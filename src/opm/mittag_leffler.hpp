#pragma once
/// \file mittag_leffler.hpp
/// \brief Mittag-Leffler functions — the analytic oracle for fractional
///        differential equations.
///
/// The scalar FDE  d^alpha x/dt^alpha = lambda x + b u(t)  (Caputo, zero
/// history) has closed-form solutions in terms of E_{alpha,beta}:
///   relaxation (u = 0, x(0) = x0):  x(t) = x0 * E_alpha(lambda t^alpha)
///   step response (x(0) = 0, u = 1): x(t) = b t^alpha E_{alpha,alpha+1}(lambda t^alpha)
/// Tests and the alpha-sweep bench validate every fractional solver in
/// opmsim against these.
///
/// Implementation: exact special cases (alpha = 1, 2, 1/2), power series in
/// long double for moderate |z|, and the z -> -inf asymptotic expansion.

namespace opmsim::opm {

/// Pole-safe reciprocal gamma function 1/Gamma(x): exactly 0 at the
/// poles x = 0, -1, -2, ... (the analytic limit), and evaluated through
/// the reflection formula on the negative axis where tgamma itself
/// under/overflows long before its reciprocal does.  This is the term
/// factor of the ML series, where beta <= 0 makes the pole arguments
/// reachable.
double reciprocal_gamma(double x);

/// Two-parameter Mittag-Leffler E_{alpha,beta}(z) for real z.
/// Supported domain: 0 < alpha <= 2, any finite beta (for beta <= 0 the
/// leading series terms sit on Gamma poles and contribute exactly zero,
/// e.g. E_{a,0}(z) = z E_{a,a}(z)), z <= ~12 (any negative z).
/// Throws std::invalid_argument outside the supported domain.
double mittag_leffler(double alpha, double beta, double z);

/// One-parameter E_alpha(z) = E_{alpha,1}(z).
double mittag_leffler(double alpha, double z);

/// Relaxation solution x(t) of d^a x = lambda x, x(0) = x0 (Caputo).
double ml_relaxation(double alpha, double lambda, double x0, double t);

/// Step response x(t) of d^a x = lambda x + b, x(0) = 0.
double ml_step_response(double alpha, double lambda, double b, double t);

} // namespace opmsim::opm
