#include "opm/mittag_leffler.hpp"

#include <cmath>
#include <complex>
#include <limits>

#include "util/check.hpp"

namespace opmsim::opm {

double reciprocal_gamma(double x) {
    // At the poles x = 0, -1, -2, ... the limit of 1/Gamma is exactly 0;
    // raw 1/tgamma(x) would return 1/(+-inf or NaN) depending on the libm.
    if (x <= 0.0 && x == std::floor(x)) return 0.0;
    // Left of the poles' neighborhood, go through the reflection formula
    //   1/Gamma(x) = Gamma(1 - x) sin(pi x) / pi:
    // tgamma(x) itself underflows to +-0 on much of the negative axis
    // (its magnitude is ~pi / (Gamma(1-x) |sin(pi x)|)), which would turn
    // a perfectly representable reciprocal into +-inf.
    if (x < 0.5)
        return std::tgamma(1.0 - x) *
               std::sin(3.14159265358979323846 * x) / 3.14159265358979323846;
    return 1.0 / std::tgamma(x);
}

namespace {

/// Local shorthand for the public pole-safe reciprocal.
double inv_gamma(double x) { return reciprocal_gamma(x); }

/// Power series sum_k z^k / Gamma(alpha k + beta), long-double accumulation.
double ml_series(double alpha, double beta, double z) {
    long double sum = 0.0L;
    long double zk = 1.0L;  // z^k
    for (int k = 0; k < 400; ++k) {
        const double g = inv_gamma(alpha * k + beta);
        const long double term = zk * static_cast<long double>(g);
        sum += term;
        zk *= z;
        if (k > 4 && std::abs(static_cast<double>(term)) <
                         1e-20 * (1.0 + std::abs(static_cast<double>(sum))) &&
            std::abs(static_cast<double>(zk) * inv_gamma(alpha * (k + 1) + beta)) <
                1e-20 * (1.0 + std::abs(static_cast<double>(sum))))
            break;
    }
    return static_cast<double>(sum);
}

/// Asymptotic expansion for z -> -inf (0 < alpha < 2):
///   E_{a,b}(z) ~ (2/a) Re[zeta^{(1-b)/a} e^{zeta}]    (only when a > 1)
///              - sum_{k>=1} z^{-k} / Gamma(b - a k),
/// where zeta = |z|^{1/a} exp(i pi / a).  The algebraic sum is truncated
/// optimally (stop at the smallest term — it is a divergent asymptotic
/// series).  For a <= 1 the exponential branch lies outside the principal
/// sector and is absent.
double ml_asymptotic_neg(double alpha, double beta, double z) {
    const double x = -z;
    double sum = 0.0;
    double zk = 1.0;
    // Optimal truncation of the divergent series: stop once terms start
    // growing.  Gamma poles (and near-poles) make single magnitudes dip to
    // ~0, so compare against the max of the last two magnitudes instead of
    // the immediate predecessor.
    double m1 = std::numeric_limits<double>::infinity();
    double m2 = std::numeric_limits<double>::infinity();
    for (int k = 1; k <= 40; ++k) {
        zk /= z;  // z^{-k}
        const double term = -zk * inv_gamma(beta - alpha * k);
        const double mag = std::abs(term);
        if (k >= 3 && mag > std::max(m1, m2)) break;
        sum += term;
        m2 = m1;
        m1 = mag;
    }
    if (alpha > 1.0) {
        // Exponentially small (but not negligible at moderate |z|)
        // oscillatory contribution from the principal branch pair.
        const std::complex<double> i(0.0, 1.0);
        const std::complex<double> zeta =
            std::pow(x, 1.0 / alpha) * std::exp(i * (3.14159265358979323846 / alpha));
        const std::complex<double> osc =
            std::pow(zeta, 1.0 - beta) * std::exp(zeta);
        sum += 2.0 / alpha * osc.real();
    }
    return sum;
}

} // namespace

double mittag_leffler(double alpha, double beta, double z) {
    OPMSIM_REQUIRE(alpha > 0.0 && alpha <= 2.0,
                   "mittag_leffler: alpha must be in (0, 2]");
    // The series sum_k z^k / Gamma(alpha k + beta) is entire in beta: for
    // beta <= 0 the leading 1/Gamma terms hit poles and contribute exactly
    // 0 (reciprocal_gamma handles them), e.g. E_{1,-1}(z) = z^2 e^z.
    OPMSIM_REQUIRE(std::isfinite(beta), "mittag_leffler: beta must be finite");

    // Exact special cases.
    if (alpha == 1.0 && beta == 1.0) return std::exp(z);
    if (alpha == 1.0 && beta == 2.0)
        return z == 0.0 ? 1.0 : (std::exp(z) - 1.0) / z;
    if (alpha == 2.0 && beta == 1.0)
        return z >= 0.0 ? std::cosh(std::sqrt(z)) : std::cos(std::sqrt(-z));
    if (alpha == 2.0 && beta == 2.0) {
        if (z == 0.0) return 1.0;
        const double s = std::sqrt(std::abs(z));
        return z > 0.0 ? std::sinh(s) / s : std::sin(s) / s;
    }
    if (alpha == 0.5 && beta == 1.0 && z <= 0.0)
        return std::exp(z * z) * std::erfc(-z);

    // The power series cancels catastrophically once its largest term
    // (~exp(|z|^{1/alpha})) outruns double-precision tgamma, so the switch
    // point shrinks with alpha: |z| <= min(7, 20^alpha).
    const double z_switch = std::min(7.0, std::pow(20.0, alpha));
    if (std::abs(z) <= z_switch) return ml_series(alpha, beta, z);
    if (z < 0.0 && alpha < 2.0) return ml_asymptotic_neg(alpha, beta, z);
    OPMSIM_REQUIRE(false,
                   "mittag_leffler: argument outside the supported domain "
                   "(large positive z for non-special alpha/beta)");
    return std::numeric_limits<double>::quiet_NaN();
}

double mittag_leffler(double alpha, double z) { return mittag_leffler(alpha, 1.0, z); }

double ml_relaxation(double alpha, double lambda, double x0, double t) {
    OPMSIM_REQUIRE(t >= 0.0, "ml_relaxation: t >= 0 required");
    if (t == 0.0) return x0;
    return x0 * mittag_leffler(alpha, 1.0, lambda * std::pow(t, alpha));
}

double ml_step_response(double alpha, double lambda, double b, double t) {
    OPMSIM_REQUIRE(t >= 0.0, "ml_step_response: t >= 0 required");
    if (t == 0.0) return 0.0;
    const double ta = std::pow(t, alpha);
    return b * ta * mittag_leffler(alpha, alpha + 1.0, lambda * ta);
}

} // namespace opmsim::opm
