#pragma once
/// \file multiterm.hpp
/// \brief OPM for multi-term (high-order / mixed fractional) systems.
///
/// Section IV of the paper treats high-order differential systems as
/// special cases of fractional ones.  Real circuit models are *multi-term*:
/// the second-order nodal-analysis model of an RLC power grid reads
///     A2 x'' + A1 x' + A0 x = B0 u + B1 u',
/// and a fractional multi-term generalization is
///     sum_k A_k X D^{alpha_k} = sum_l B_l U D^{beta_l}.
/// Because every D^{alpha} shares the same upper-triangular Toeplitz
/// structure, the column-by-column solve carries over unchanged: the pencil
/// (sum_k d0^(k) A_k) is factored once and each column costs one solve plus
/// the K Toeplitz history sums, which are delegated to the batched
/// MultiTermHistoryEngine (opm/fast_history.hpp) — the same
/// naive | blocked | fft | automatic backends as the single-term solver,
/// selected by MultiTermOptions::history, with the forward FFT of each
/// solved-column block shared across all K terms.  Derivatives of the
/// *input* are handled in the operational-matrix domain (U D^{beta},
/// evaluated by diff_toeplitz_apply) — no numeric differentiation of u(t)
/// is ever performed.

#include "opm/solver.hpp"

namespace opmsim::opm {

/// One left-hand term A_k d^{alpha_k} x.
struct LhsTerm {
    double order;      ///< alpha_k >= 0
    la::CscMatrix mat; ///< A_k, n x n
};

/// One right-hand term B_l d^{beta_l} u.
struct RhsTerm {
    double order;      ///< beta_l >= 0
    la::CscMatrix mat; ///< B_l, n x p
};

/// sum_k A_k d^{alpha_k} x = sum_l B_l d^{beta_l} u,  y = C x.
struct MultiTermSystem {
    std::vector<LhsTerm> lhs;
    std::vector<RhsTerm> rhs;
    la::CscMatrix c;  ///< q x n, or empty for y = x

    [[nodiscard]] index_t num_states() const;
    [[nodiscard]] index_t num_inputs() const;
    [[nodiscard]] index_t num_outputs() const;
    void validate() const;
};

enum class MultiTermPath {
    automatic,   ///< recurrence when every order is an integer
    recurrence,  ///< banded O(K) history per column; integer orders only.
                 ///< The equation is multiplied through by (I+Q)^K, turning
                 ///< every D^{a} into the banded (1-q)^a (1+q)^{K-a} —
                 ///< the multi-term generalization of the trapezoidal rule.
    toeplitz     ///< dense O(j) history per column; any orders
};

struct MultiTermOptions {
    // NOTE: keep api/registry.cpp options_equal() in sync when adding fields
    // (it decides run_batch scenario grouping; `caches` is excluded).
    MultiTermPath path = MultiTermPath::automatic;
    /// History-sum backend for the Toeplitz path (same semantics as
    /// OpmOptions::history): `naive` is the O(K n m^2) oracle loop,
    /// `blocked` the register-tiled panel scatter, `fft` the batched
    /// O(n m log^2 m) blocked-convolution scheme; `automatic` picks by m.
    HistoryBackend history = HistoryBackend::automatic;
    /// Absolute l1 fit tolerance for the `soe` history backend (same
    /// semantics as OpmOptions::soe_tol; ignored by the exact backends).
    double soe_tol = 1e-8;
    int quad_points = 4;  ///< input projection quadrature order
    int quad_panels = 1;  ///< composite panels per interval
    /// Optional cross-run cache bundle (same semantics as
    /// OpmOptions::caches): pencil factors, FFT plans and rho series are
    /// reused across calls without changing results.
    SolveCaches* caches = nullptr;
    /// Optional cooperative deadline / cancellation token (non-owning;
    /// util/status.hpp), checked at sweep-step granularity.  Injected by
    /// Engine::run_batch; excluded from options_equal like `caches`.
    const util::RunControl* control = nullptr;
    /// Zero initial state is assumed (as in the paper); nonzero ICs for
    /// multi-term systems require per-order initial data and are out of
    /// scope for this reproduction.
};

/// Simulate on [0, t_end) with m uniform steps.
OpmResult simulate_multiterm(const MultiTermSystem& sys,
                             const std::vector<wave::Source>& inputs,
                             double t_end, index_t m,
                             const MultiTermOptions& opt = {});

} // namespace opmsim::opm
