#pragma once
/// \file fractional_series.hpp
/// \brief Power-series machinery for fractional operational matrices.
///
/// The paper's eq. (21) defines the fractional differential operational
/// matrix as D^alpha = ((2/h)(1-q)/(1+q))^alpha evaluated at the nilpotent
/// shift q = Q_m.  Because Q_m^m = 0, the formal power series truncated at
/// q^{m-1} is *exact* as a matrix polynomial (eq. 22).  This module
/// computes those truncated series:
///     rho_alpha(q) = (1-q)^alpha * (1+q)^{-alpha}  (mod q^m)
/// via the O(m) coefficient recurrence of (1-q^2) rho' = -2 alpha rho,
/// evaluated in extended precision so the returned rows are correctly
/// rounded (the history sweeps cancel heavily for alpha > 1, and the
/// fast-history cascade relies on row/factorization consistency).
/// The worked example in the paper (eq. 23): rho_{3/2,4} has coefficients
/// {1, -3, 4.5, -5.5} — reproduced exactly by tests.

#include "la/dense.hpp"

namespace opmsim::opm {

using la::index_t;
using la::Vectord;

/// Generalized binomial coefficients: out[k] = C(alpha, k), k = 0..m-1.
Vectord binomial_coeffs(double alpha, index_t m);

/// Coefficients of (1 + s*q)^alpha truncated at q^{m-1} (s = +-1).
Vectord binomial_series(double alpha, double s, index_t m);

/// Truncated product: (a * b) mod q^m.
Vectord poly_mul_trunc(const Vectord& a, const Vectord& b, index_t m);

/// Coefficients of ((1-q)/(1+q))^alpha mod q^m — the paper's rho_{alpha,m}
/// *without* the (2/h)^alpha scale factor.
Vectord frac_diff_series(double alpha, index_t m);

/// Coefficients of ((1+q)/(1-q))^alpha mod q^m — the fractional
/// *integration* series (inverse of the above in the truncated ring).
Vectord frac_int_series(double alpha, index_t m);

/// Grünwald–Letnikov weights w_j = (-1)^j C(alpha, j), j = 0..m-1 — the
/// coefficients of (1-q)^alpha, used by the GL baseline stepper.
Vectord grunwald_weights(double alpha, index_t m);

} // namespace opmsim::opm
