#include "opm/multiterm.hpp"

#include <cmath>

#include "la/sparse_lu.hpp"
#include "opm/fast_history.hpp"
#include "opm/fractional_series.hpp"
#include "opm/solve_cache.hpp"
#include "util/check.hpp"
#include "util/timer.hpp"

namespace opmsim::opm {

index_t MultiTermSystem::num_states() const {
    OPMSIM_REQUIRE(!lhs.empty(), "MultiTermSystem: no left-hand terms");
    return lhs.front().mat.rows();
}

index_t MultiTermSystem::num_inputs() const {
    OPMSIM_REQUIRE(!rhs.empty(), "MultiTermSystem: no right-hand terms");
    return rhs.front().mat.cols();
}

index_t MultiTermSystem::num_outputs() const {
    return c.rows() > 0 ? c.rows() : num_states();
}

void MultiTermSystem::validate() const {
    OPMSIM_REQUIRE(!lhs.empty() && !rhs.empty(),
                   "MultiTermSystem: need at least one term on each side");
    const index_t n = num_states();
    const index_t p = num_inputs();
    for (const auto& t : lhs) {
        OPMSIM_REQUIRE(t.order >= 0.0, "MultiTermSystem: negative lhs order");
        OPMSIM_REQUIRE(t.mat.rows() == n && t.mat.cols() == n,
                       "MultiTermSystem: lhs matrix shape mismatch");
    }
    for (const auto& t : rhs) {
        OPMSIM_REQUIRE(t.order >= 0.0, "MultiTermSystem: negative rhs order");
        OPMSIM_REQUIRE(t.mat.rows() == n && t.mat.cols() == p,
                       "MultiTermSystem: rhs matrix shape mismatch");
    }
    if (c.rows() > 0)
        OPMSIM_REQUIRE(c.cols() == n, "MultiTermSystem: C column count mismatch");
}

namespace {

bool all_integer_orders(const MultiTermSystem& sys) {
    const auto is_int = [](double a) { return a == std::floor(a); };
    for (const auto& t : sys.lhs)
        if (!is_int(t.order)) return false;
    for (const auto& t : sys.rhs)
        if (!is_int(t.order)) return false;
    return true;
}

/// Coefficients of (2/h)^a (1-q)^a (1+q)^{K-a}: the banded operator every
/// order-a term becomes after the equation is multiplied by (I+Q)^K.
Vectord banded_coeffs(double a, index_t k_max, double h) {
    const Vectord num = binomial_series(a, -1.0, k_max + 1);
    const Vectord den = binomial_series(static_cast<double>(k_max) - a, +1.0,
                                        k_max + 1);
    Vectord c = poly_mul_trunc(num, den, k_max + 1);
    const double scale = std::pow(2.0 / h, a);
    for (auto& v : c) v *= scale;
    return c;
}

} // namespace

OpmResult simulate_multiterm(const MultiTermSystem& sys,
                             const std::vector<wave::Source>& inputs,
                             double t_end, index_t m,
                             const MultiTermOptions& opt) {
    sys.validate();
    OPMSIM_REQUIRE(t_end > 0.0 && m >= 1, "simulate_multiterm: bad time grid");
    const index_t n = sys.num_states();
    const index_t p = sys.num_inputs();
    OPMSIM_REQUIRE(static_cast<index_t>(inputs.size()) == p,
                   "simulate_multiterm: input count mismatch");
    const double h = t_end / static_cast<double>(m);

    MultiTermPath path = opt.path;
    const bool integer_ok = all_integer_orders(sys);
    if (path == MultiTermPath::automatic)
        path = integer_ok ? MultiTermPath::recurrence : MultiTermPath::toeplitz;
    OPMSIM_REQUIRE(path != MultiTermPath::recurrence || integer_ok,
                   "simulate_multiterm: the recurrence path requires integer "
                   "differential orders");

    OpmResult res;
    res.edges = wave::uniform_edges(t_end, m);
    res.coeffs = la::Matrixd(n, m);

    // Project inputs: U is p x m.
    la::Matrixd u(p, m);
    for (index_t i = 0; i < p; ++i) {
        const Vectord ui = wave::project_average(inputs[static_cast<std::size_t>(i)],
                                                 res.edges, opt.quad_points,
                                                 opt.quad_panels);
        for (index_t j = 0; j < m; ++j) u(i, j) = ui[static_cast<std::size_t>(j)];
    }

    if (path == MultiTermPath::recurrence) {
        // Banded sweep: multiply through by (I+Q)^K; each term's history
        // depth is K = the largest order, independent of m.
        index_t k_max = 0;
        for (const auto& t : sys.lhs)
            k_max = std::max(k_max, static_cast<index_t>(t.order));
        for (const auto& t : sys.rhs)
            k_max = std::max(k_max, static_cast<index_t>(t.order));

        std::vector<Vectord> cl, cr;
        for (const auto& t : sys.lhs) cl.push_back(banded_coeffs(t.order, k_max, h));
        for (const auto& t : sys.rhs) cr.push_back(banded_coeffs(t.order, k_max, h));

        WallTimer timer;
        la::CscMatrix pencil(la::Triplets(n, n));
        for (std::size_t k = 0; k < sys.lhs.size(); ++k)
            pencil = la::CscMatrix::add(1.0, pencil, cl[k][0], sys.lhs[k].mat);
        PencilSolve ps(opt.caches, pencil, res.diag, opt.control);
        res.diag.factor_seconds = timer.elapsed_s();

        timer.reset();
        Vectord acc(static_cast<std::size_t>(n));
        Vectord rhs(static_cast<std::size_t>(n));
        Vectord up(static_cast<std::size_t>(p));
        la::Matrixd& x = res.coeffs;
        for (index_t j = 0; j < m; ++j) {
            std::fill(rhs.begin(), rhs.end(), 0.0);
            // RHS: sum_l B_l (U banded)_j.
            for (std::size_t l = 0; l < sys.rhs.size(); ++l) {
                std::fill(up.begin(), up.end(), 0.0);
                for (index_t d = 0; d <= k_max && d <= j; ++d) {
                    const double c = cr[l][static_cast<std::size_t>(d)];
                    if (c == 0.0) continue;
                    for (index_t r = 0; r < p; ++r)
                        up[static_cast<std::size_t>(r)] += c * u(r, j - d);
                }
                sys.rhs[l].mat.gaxpy(1.0, up, rhs);
            }
            // LHS history: - sum_k A_k sum_{d>=1} c^{(k)}_d X_{j-d}.
            for (std::size_t k = 0; k < sys.lhs.size(); ++k) {
                std::fill(acc.begin(), acc.end(), 0.0);
                bool any = false;
                for (index_t d = 1; d <= k_max && d <= j; ++d) {
                    const double c = cl[k][static_cast<std::size_t>(d)];
                    if (c == 0.0) continue;
                    any = true;
                    const double* xd = x.col(j - d);
                    for (index_t r = 0; r < n; ++r)
                        acc[static_cast<std::size_t>(r)] += c * xd[r];
                }
                if (any) sys.lhs[k].mat.gaxpy(-1.0, acc, rhs);
            }
            ps.solve(rhs.data(), 1, n);
            for (index_t i = 0; i < n; ++i) x(i, j) = rhs[static_cast<std::size_t>(i)];
        }
        res.diag.sweep_seconds = timer.elapsed_s();
        res.outputs = outputs_from_coeffs(sys.c, res.coeffs, res.edges);
        return res;
    }

    // Toeplitz path: every term goes through the shared history machinery.
    // Forcing F = sum_l B_l (U D^{beta_l}); the inputs are fully known up
    // front, so each W_l = U D^{beta_l} is one offline fast-convolution
    // apply (cascade-stabilized for beta > 1).
    res.diag.history_backend = HistoryEngine::resolve(opt.history, m);
    la::Matrixd f(n, m);
    {
        Vectord wj(static_cast<std::size_t>(p));
        Vectord fj(static_cast<std::size_t>(n));
        for (std::size_t l = 0; l < sys.rhs.size(); ++l) {
            const la::Matrixd w =
                diff_toeplitz_apply(sys.rhs[l].order, h, u, opt.history,
                                    opt.caches, opt.soe_tol);
            for (index_t j = 0; j < m; ++j) {
                for (index_t r = 0; r < p; ++r)
                    wj[static_cast<std::size_t>(r)] = w(r, j);
                std::fill(fj.begin(), fj.end(), 0.0);
                sys.rhs[l].mat.gaxpy(1.0, wj, fj);
                for (index_t i = 0; i < n; ++i) f(i, j) += fj[static_cast<std::size_t>(i)];
            }
        }
    }

    // Pencil: sum_k d0^(k) A_k with d0^(k) = (2/h)^{alpha_k} (every rho
    // series has unit leading coefficient), factored once.
    WallTimer timer;
    la::CscMatrix pencil(la::Triplets(n, n));
    for (const auto& t : sys.lhs)
        pencil = la::CscMatrix::add(1.0, pencil, std::pow(2.0 / h, t.order),
                                    t.mat);
    PencilSolve ps(opt.caches, pencil, res.diag, opt.control);
    res.diag.factor_seconds = timer.elapsed_s();

    // Column sweep: (sum_k d0^(k) A_k) X_j = F_j - sum_k A_k H^(k)_j with
    // the K strict histories H^(k) evaluated by the batched engine (one
    // shared column stream, one forward FFT per block for all terms).
    timer.reset();
    std::vector<double> alphas;
    alphas.reserve(sys.lhs.size());
    for (const auto& t : sys.lhs) alphas.push_back(t.order);
    MultiTermHistoryEngine eng(alphas, h, n, m, opt.history, opt.caches,
                               opt.soe_tol);
    if (eng.backend() == HistoryBackend::soe) {
        res.diag.soe_modes = static_cast<int>(eng.soe_modes());
        res.diag.soe_fit_error = eng.soe_fit_error();
        res.diag.soe_fits = static_cast<int>(eng.soe_fresh_fits());
    }

    Vectord acc(static_cast<std::size_t>(n));
    Vectord rhs(static_cast<std::size_t>(n));
    la::Matrixd& x = res.coeffs;
    for (index_t j = 0; j < m; ++j) {
        for (index_t i = 0; i < n; ++i) rhs[static_cast<std::size_t>(i)] = f(i, j);
        for (std::size_t k = 0; k < sys.lhs.size(); ++k) {
            if (eng.term_is_identity(k)) continue;
            eng.history(j, k, acc);
            sys.lhs[k].mat.gaxpy(-1.0, acc, rhs);
        }
        ps.solve(rhs.data(), 1, n);
        for (index_t i = 0; i < n; ++i) x(i, j) = rhs[static_cast<std::size_t>(i)];
        eng.push(j, rhs.data());
    }
    res.diag.sweep_seconds = timer.elapsed_s();

    res.outputs = outputs_from_coeffs(sys.c, res.coeffs, res.edges);
    return res;
}

} // namespace opmsim::opm
