#include "opm/solve_cache.hpp"

#include "fftx/convolve.hpp"
#include "opm/fractional_series.hpp"

namespace opmsim::opm {

SolveCaches::SolveCaches() : plans(std::make_unique<fftx::ConvPlanCache>()) {}
SolveCaches::~SolveCaches() = default;

Vectord SolveCaches::memoize(SeriesMap& map, double alpha, index_t m,
                             Vectord (*compute)(double, index_t)) {
    const std::lock_guard<std::mutex> lock(series_mutex_);
    const auto key = std::make_pair(alpha, m);
    auto it = map.find(key);
    if (it != map.end()) {
        ++series_hits_;
        return it->second;
    }
    ++series_misses_;
    if (map.size() >= kMaxSeries) map.clear();
    return map.emplace(key, compute(alpha, m)).first->second;
}

Vectord SolveCaches::frac_diff_series(double alpha, index_t m) {
    return memoize(series_, alpha, m, &opm::frac_diff_series);
}

Vectord SolveCaches::grunwald_weights(double alpha, index_t m) {
    return memoize(weights_, alpha, m, &opm::grunwald_weights);
}

std::shared_ptr<const la::SparseLu> acquire_factor(SolveCaches* caches,
                                                   const la::CscMatrix& pencil,
                                                   Diagnostics& diag) {
    if (caches == nullptr) {
        auto lu = std::make_shared<const la::SparseLu>(pencil);
        ++diag.orderings;
        ++diag.factorizations;
        diag.ordering = lu->symbolic()->chosen_ordering();
        return lu;
    }
    bool sym_fresh = false, num_fresh = false;
    auto lu = caches->factors.factor(pencil, {}, &sym_fresh, &num_fresh);
    if (sym_fresh) ++diag.orderings;
    if (num_fresh)
        ++diag.factorizations;
    else
        ++diag.factor_cache_hits;
    diag.ordering = lu->symbolic()->chosen_ordering();
    return lu;
}

} // namespace opmsim::opm
