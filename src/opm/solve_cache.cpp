#include "opm/solve_cache.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>

#include "fftx/convolve.hpp"
#include "opm/fractional_series.hpp"
#include "util/hash.hpp"
#include "util/serial.hpp"
#include "util/timer.hpp"

namespace opmsim::opm {

SolveCaches::SolveCaches() : plans(std::make_unique<fftx::ConvPlanCache>()) {}
SolveCaches::~SolveCaches() = default;

Vectord SolveCaches::memoize(SeriesMap& map, double alpha, index_t m,
                             Vectord (*compute)(double, index_t)) {
    const auto key = std::make_pair(alpha, m);
    auto it = map.find(key);
    if (it != map.end()) {
        ++series_hits_;
        return it->second;
    }
    ++series_misses_;
    if (map.size() >= kMaxSeries) map.clear();
    return map.emplace(key, compute(alpha, m)).first->second;
}

Vectord SolveCaches::frac_diff_series(double alpha, index_t m) {
    const util::MutexLock lock(series_mutex_);
    return memoize(series_, alpha, m, &opm::frac_diff_series);
}

Vectord SolveCaches::grunwald_weights(double alpha, index_t m) {
    const util::MutexLock lock(series_mutex_);
    return memoize(weights_, alpha, m, &opm::grunwald_weights);
}

namespace {
/// FNV-1a over the fitted row prefix — the content part of the soe_row key.
std::uint64_t fnv1a(const double* p, index_t len) {
    std::uint64_t h = 14695981039346656037ULL;
    const auto* b = reinterpret_cast<const unsigned char*>(p);
    const std::size_t nbytes = static_cast<std::size_t>(len) * sizeof(double);
    for (std::size_t i = 0; i < nbytes; ++i) {
        h ^= b[i];
        h *= 1099511628211ULL;
    }
    return h;
}
} // namespace

SoeFit SolveCaches::soe_row(const Vectord& row, index_t len, index_t window,
                            double tol, bool* fresh) {
    const index_t n = std::min<index_t>(len, static_cast<index_t>(row.size()));
    const auto key = std::make_tuple(fnv1a(row.data(), n), n, window, tol);
    const util::MutexLock lock(series_mutex_);
    auto it = soe_rows_.find(key);
    if (it != soe_rows_.end()) {
        ++series_hits_;
        if (fresh != nullptr) *fresh = false;
        return it->second;
    }
    ++series_misses_;
    if (fresh != nullptr) *fresh = true;
    if (soe_rows_.size() >= kMaxSeries) soe_rows_.clear();
    return soe_rows_.emplace(key, fit_soe_row(row.data(), n, window, tol))
        .first->second;
}

SoeKernelFit SolveCaches::soe_kernel(double alpha, double tmin, double tmax,
                                     double tol, bool* fresh) {
    const auto key = std::make_tuple(alpha, tmin, tmax, tol);
    const util::MutexLock lock(series_mutex_);
    auto it = soe_kernels_.find(key);
    if (it != soe_kernels_.end()) {
        ++series_hits_;
        if (fresh != nullptr) *fresh = false;
        return it->second;
    }
    ++series_misses_;
    if (fresh != nullptr) *fresh = true;
    if (soe_kernels_.size() >= kMaxSeries) soe_kernels_.clear();
    return soe_kernels_.emplace(key, fit_soe_kernel(alpha, tmin, tmax, tol))
        .first->second;
}

void SolveCaches::purge() {
    factors.clear();
    plans->clear();
    const util::MutexLock lock(series_mutex_);
    series_.clear();
    weights_.clear();
    soe_rows_.clear();
    soe_kernels_.clear();
}

// ---------------------------------------------------------------------------
// Warm-restart snapshots.  Layout:
//   "OPMSNAP1"  (8-byte magic)
//   u32         format version
//   u64         FNV-1a checksum of the payload bytes
//   u64         payload byte count
//   payload     symbolic entries, series/weight memos, SoE fit tables
// The checksum makes bit rot and truncation a classified load error; the
// per-entry pattern fingerprints (FactorCache::load_symbolic) guard the
// semantic layer on top.

namespace {
constexpr char kSnapshotMagic[8] = {'O', 'P', 'M', 'S', 'N', 'A', 'P', '1'};
constexpr std::uint32_t kSnapshotVersion = 1;

void encode_soe_fit(util::ByteWriter& w, const SoeFit& f) {
    w.vec_f64(f.rates);
    w.vec_f64(f.weights);
    w.i64(f.window);
    w.f64(f.fit_error);
    w.f64(f.tail_l1);
}

SoeFit decode_soe_fit(util::ByteReader& r) {
    SoeFit f;
    f.rates = r.vec_f64();
    f.weights = r.vec_f64();
    f.window = static_cast<index_t>(r.i64());
    f.fit_error = r.f64();
    f.tail_l1 = r.f64();
    if (f.rates.size() != f.weights.size())
        r.fail("SoE fit rate/weight count mismatch");
    return f;
}

void encode_soe_kernel_fit(util::ByteWriter& w, const SoeKernelFit& f) {
    w.vec_f64(f.lambdas);
    w.vec_f64(f.weights);
    w.f64(f.alpha);
    w.f64(f.tmin);
    w.f64(f.tmax);
    w.f64(f.rel_error);
}

SoeKernelFit decode_soe_kernel_fit(util::ByteReader& r) {
    SoeKernelFit f;
    f.lambdas = r.vec_f64();
    f.weights = r.vec_f64();
    f.alpha = r.f64();
    f.tmin = r.f64();
    f.tmax = r.f64();
    f.rel_error = r.f64();
    if (f.lambdas.size() != f.weights.size())
        r.fail("SoE kernel fit rate/weight count mismatch");
    return f;
}
} // namespace

void SolveCaches::save(const std::string& path) {
    util::ByteWriter w;
    factors.save_symbolic(w);
    {
        const util::MutexLock lock(series_mutex_);
        for (const SeriesMap* map : {&series_, &weights_}) {
            w.u64(map->size());
            for (const auto& [key, row] : *map) {
                w.f64(key.first);
                w.i64(key.second);
                w.vec_f64(row);
            }
        }
        w.u64(soe_rows_.size());
        for (const auto& [key, fit] : soe_rows_) {
            w.u64(std::get<0>(key));
            w.i64(std::get<1>(key));
            w.i64(std::get<2>(key));
            w.f64(std::get<3>(key));
            encode_soe_fit(w, fit);
        }
        w.u64(soe_kernels_.size());
        for (const auto& [key, fit] : soe_kernels_) {
            w.f64(std::get<0>(key));
            w.f64(std::get<1>(key));
            w.f64(std::get<2>(key));
            w.f64(std::get<3>(key));
            encode_soe_kernel_fit(w, fit);
        }
    }

    util::ByteWriter file;
    file.bytes(kSnapshotMagic, sizeof kSnapshotMagic);
    file.u32(kSnapshotVersion);
    file.u64(opmsim::fnv1a(w.data().data(), w.size()));
    file.u64(w.size());
    file.bytes(w.data().data(), w.size());

    // Atomic publish: a crash mid-write must never leave a torn snapshot
    // where a restarting daemon would find it.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw solver_error(ErrorCode::internal_error,
                               "SolveCaches::save: cannot open " + tmp);
        out.write(reinterpret_cast<const char*>(file.data().data()),
                  static_cast<std::streamsize>(file.size()));
        if (!out)
            throw solver_error(ErrorCode::internal_error,
                               "SolveCaches::save: write failed on " + tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        // Best-effort cleanup of the temp file while already on the error
        // path; the rename failure below is the actionable error
        // (cert-err33-c).
        static_cast<void>(std::remove(tmp.c_str()));
        throw solver_error(ErrorCode::internal_error,
                           "SolveCaches::save: rename to " + path + " failed");
    }
}

void SolveCaches::load(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw solver_error(ErrorCode::invalid_scenario,
                           "SolveCaches::load: cannot open " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
    util::ByteReader r(bytes.data(), bytes.size());

    char magic[8];
    if (r.remaining() < sizeof magic)
        r.fail("snapshot shorter than its magic");
    for (char& c : magic) c = static_cast<char>(r.u8());
    if (std::memcmp(magic, kSnapshotMagic, sizeof magic) != 0)
        r.fail("not an opmsim cache snapshot (bad magic)");
    const std::uint32_t version = r.u32();
    if (version != kSnapshotVersion)
        r.fail("unsupported snapshot version " + std::to_string(version));
    const std::uint64_t checksum = r.u64();
    const std::size_t payload = r.count(1, "snapshot payload");
    if (payload != r.remaining())
        r.fail("snapshot payload size mismatch");
    if (opmsim::fnv1a(bytes.data() + (bytes.size() - payload), payload) !=
        checksum)
        r.fail("snapshot checksum mismatch (corrupt file)");

    factors.load_symbolic(r);
    const util::MutexLock lock(series_mutex_);
    for (SeriesMap* map : {&series_, &weights_}) {
        const std::uint64_t count = r.count(24, "series entries");
        for (std::uint64_t k = 0; k < count; ++k) {
            const double alpha = r.f64();
            const auto m = static_cast<index_t>(r.i64());
            Vectord row = r.vec_f64();
            map->emplace(std::make_pair(alpha, m), std::move(row));
        }
    }
    {
        const std::uint64_t count = r.count(32, "soe row fits");
        for (std::uint64_t k = 0; k < count; ++k) {
            const std::uint64_t h = r.u64();
            const auto len = static_cast<index_t>(r.i64());
            const auto window = static_cast<index_t>(r.i64());
            const double tol = r.f64();
            SoeFit fit = decode_soe_fit(r);
            soe_rows_.emplace(std::make_tuple(h, len, window, tol),
                              std::move(fit));
        }
    }
    {
        const std::uint64_t count = r.count(32, "soe kernel fits");
        for (std::uint64_t k = 0; k < count; ++k) {
            const double alpha = r.f64();
            const double tmin = r.f64();
            const double tmax = r.f64();
            const double tol = r.f64();
            SoeKernelFit fit = decode_soe_kernel_fit(r);
            soe_kernels_.emplace(std::make_tuple(alpha, tmin, tmax, tol),
                                 std::move(fit));
        }
    }
}

std::shared_ptr<const la::SparseLu> acquire_factor(SolveCaches* caches,
                                                   const la::CscMatrix& pencil,
                                                   const la::SparseLuOptions& opt,
                                                   Diagnostics& diag) {
    if (caches == nullptr) {
        auto lu = std::make_shared<const la::SparseLu>(pencil, opt);
        ++diag.orderings;
        ++diag.factorizations;
        diag.ordering = lu->symbolic()->chosen_ordering();
        return lu;
    }
    bool sym_fresh = false, num_fresh = false;
    auto lu = caches->factors.factor(pencil, opt, &sym_fresh, &num_fresh);
    if (sym_fresh) ++diag.orderings;
    if (num_fresh)
        ++diag.factorizations;
    else
        ++diag.factor_cache_hits;
    diag.ordering = lu->symbolic()->chosen_ordering();
    return lu;
}

std::shared_ptr<const la::SparseLu> acquire_factor(SolveCaches* caches,
                                                   const la::CscMatrix& pencil,
                                                   Diagnostics& diag) {
    return acquire_factor(caches, pencil, {}, diag);
}

// ---------------------------------------------------------------------------
// PencilSolve — the guarded factor/solve funnel.
// ---------------------------------------------------------------------------

PencilSolve::PencilSolve(SolveCaches* caches, const la::CscMatrix& pencil,
                         Diagnostics& diag, const util::RunControl* control)
    : caches_(caches), pencil_(pencil), diag_(diag), control_(control) {
    util::check_run_control(control_);
    const auto& val = pencil_.values();
    for (std::size_t i = 0; i < val.size(); ++i)
        if (!std::isfinite(val[i]))
            throw solver_error(ErrorCode::nonfinite_input,
                               "pencil contains a non-finite value at nnz index " +
                                   std::to_string(i));
    try {
        lu_ = acquire_factor(caches_, pencil_, opts_, diag_);
    } catch (const numerical_error& e) {
        // Ladder escalation: refactor with the scalar kernel under strict
        // partial pivoting (pivot_tol = 1.0).  If this throws too the
        // pencil is genuinely singular and the error propagates.
        diag_.degradations.push_back(std::string("pivot_tol_refactor: ") + e.what());
        opts_.kernel = la::SparseLuOptions::Kernel::scalar;
        opts_.pivot_tol = 1.0;
        lu_ = acquire_factor(caches_, pencil_, opts_, diag_);
    }
    // The automatic kernel's silent supernodal -> scalar pivot fallback
    // (inside SparseLu::factorize) is a ladder edge too — surface it.
    if (opts_.kernel == la::SparseLuOptions::Kernel::automatic &&
        lu_->kernel_used() == la::SparseLuOptions::Kernel::scalar &&
        lu_->symbolic()->has_supernodes() && lu_->size() >= 32)
        diag_.degradations.push_back("supernodal_fallback");
    diag_.pivot_growth = lu_->pivot_growth();
    diag_.rcond_estimate = lu_->rcond_estimate();
}

void PencilSolve::rebuild_factor() {
    // Never serve the stale factor again, then refactor from scratch with
    // whatever options the ladder settled on.
    if (caches_ != nullptr) caches_->factors.invalidate(pencil_);
    lu_ = acquire_factor(caches_, pencil_, opts_, diag_);
}

void PencilSolve::solve(double* b, index_t nrhs, index_t ldb) {
    util::check_run_control(control_);
    const index_t n = lu_->size();
    for (index_t r = 0; r < nrhs; ++r)
        for (index_t i = 0; i < n; ++i)
            if (!std::isfinite(b[static_cast<std::size_t>(r * ldb + i)]))
                throw solver_error(
                    first_solve_ ? ErrorCode::nonfinite_input
                                 : ErrorCode::nonfinite_state,
                    std::string(first_solve_ ? "right-hand side"
                                             : "evolving state") +
                        " is non-finite at row " + std::to_string(i) +
                        " of RHS column " + std::to_string(r));

    b0_.resize(static_cast<std::size_t>(n * nrhs));
    for (index_t r = 0; r < nrhs; ++r)
        for (index_t i = 0; i < n; ++i)
            b0_[static_cast<std::size_t>(r * n + i)] =
                b[static_cast<std::size_t>(r * ldb + i)];

    WallTimer st;
    lu_->solve_in_place(b, nrhs, ldb);
    diag_.solve_seconds += st.elapsed_s();
    diag_.rhs_solved += nrhs;

    const auto block_finite = [&]() {
        for (index_t r = 0; r < nrhs; ++r)
            for (index_t i = 0; i < n; ++i)
                if (!std::isfinite(b[static_cast<std::size_t>(r * ldb + i)]))
                    return false;
        return true;
    };
    if (!block_finite()) {
        // Finite RHS, non-finite solution: the factor itself is corrupt
        // (stale cache entry, perturbed values).  One-shot recovery:
        // invalidate, refactor, re-solve.
        if (rebuilt_)
            throw solver_error(ErrorCode::nonfinite_state,
                               "solution is non-finite after a factor rebuild");
        rebuilt_ = true;
        diag_.degradations.push_back("cache_invalidated");
        rebuild_factor();
        for (index_t r = 0; r < nrhs; ++r)
            for (index_t i = 0; i < n; ++i)
                b[static_cast<std::size_t>(r * ldb + i)] =
                    b0_[static_cast<std::size_t>(r * n + i)];
        st.reset();
        lu_->solve_in_place(b, nrhs, ldb);
        diag_.solve_seconds += st.elapsed_s();
        if (!block_finite())
            throw solver_error(ErrorCode::nonfinite_state,
                               "solution is non-finite after a factor rebuild");
    }

    refine(b, nrhs, ldb);
    first_solve_ = false;
}

void PencilSolve::refine(double* b, index_t nrhs, index_t ldb) {
    const index_t n = lu_->size();
    const double anorm = lu_->anorm1();
    resid_.resize(static_cast<std::size_t>(n));
    for (index_t r = 0; r < nrhs; ++r) {
        double* x = b + r * ldb;
        const double* b0 = b0_.data() + r * n;
        for (int iter = 0; iter <= 2; ++iter) {
            double xinf = 0.0, binf = 0.0;
            for (index_t i = 0; i < n; ++i) {
                xinf = std::max(xinf, std::abs(x[static_cast<std::size_t>(i)]));
                binf = std::max(binf, std::abs(b0[static_cast<std::size_t>(i)]));
            }
            std::copy(b0, b0 + n, resid_.begin());
            pencil_.gaxpy(-1.0, x, resid_.data());
            double rinf = 0.0;
            for (const double v : resid_) rinf = std::max(rinf, std::abs(v));
            // Loose relative threshold: a healthy factor leaves residuals
            // ~1e-13 relative, so refinement never fires on the fast path
            // and grouped/loop runs stay bit-identical.
            if (!(rinf > 1e-9 * (anorm * xinf + binf)) || !std::isfinite(rinf))
                break;
            if (iter == 2) break;  // corrections exhausted; keep best iterate
            lu_->solve_in_place(resid_);
            for (index_t i = 0; i < n; ++i)
                x[static_cast<std::size_t>(i)] += resid_[static_cast<std::size_t>(i)];
            ++diag_.refinement_iters;
        }
    }
}

} // namespace opmsim::opm
