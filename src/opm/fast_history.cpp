#include "opm/fast_history.hpp"

#include <algorithm>
#include <cmath>

#include "fftx/convolve.hpp"
#include "opm/fractional_series.hpp"
#include "util/check.hpp"

namespace opmsim::opm {

namespace {

/// Panel width for the blocked backend and base block for the fft backend.
/// 64 columns of a few-hundred-state system fit comfortably in L1/L2.
constexpr index_t kPanel = 64;

/// Crossover (in columns m) above which the fft backend wins over the
/// blocked direct scatter.  Measured on the bench_kernels history sweep
/// (7-state fractional t-line, g++ 12 -O3): the backends tie near m = 256
/// and fft wins 2.3x at 1024, 4.9x at 4096, 23x at 32768.
constexpr index_t kFftCrossover = 192;

} // namespace

HistoryBackend HistoryEngine::resolve(HistoryBackend b, index_t m) {
    if (b != HistoryBackend::automatic) return b;
    return m >= kFftCrossover ? HistoryBackend::fft : HistoryBackend::blocked;
}

HistoryEngine::HistoryEngine(Vectord coeffs, index_t n, index_t m,
                             HistoryBackend backend)
    : c_(std::move(coeffs)), n_(n), m_(m), backend_(resolve(backend, m)) {
    OPMSIM_REQUIRE(n >= 1 && m >= 1, "HistoryEngine: empty problem");
    x_ = la::Matrixd(n_, m_);
    if (backend_ != HistoryBackend::naive) {
        acc_ = la::Matrixd(n_, m_);
        base_ = std::min(kPanel, m_);
    }
    if (backend_ == HistoryBackend::fft) {
        rowa_.resize(static_cast<std::size_t>(m_));
        rowb_.resize(static_cast<std::size_t>(m_));
        outa_.resize(static_cast<std::size_t>(m_));
        outb_.resize(static_cast<std::size_t>(m_));
    }
}

HistoryEngine::~HistoryEngine() = default;

void HistoryEngine::history(index_t j, Vectord& out) {
    OPMSIM_REQUIRE(j >= 0 && j < m_, "HistoryEngine::history: column out of range");
    OPMSIM_ENSURE(j <= next_col_, "HistoryEngine::history: column not yet reachable");
    out.assign(static_cast<std::size_t>(n_), 0.0);

    if (backend_ == HistoryBackend::naive) {
        // Oracle path: accumulate in extended precision.  For operators
        // with growing coefficient rows (D^alpha, alpha > 1) the sum
        // cancels by orders of magnitude, and a double accumulator would
        // leave the *oracle* as the least accurate backend.
        if (hacc_.empty()) hacc_.resize(static_cast<std::size_t>(n_));
        std::fill(hacc_.begin(), hacc_.end(), 0.0L);
        for (index_t i = 0; i < j; ++i) {
            const double cji = coef(j - i);
            if (cji == 0.0) continue;
            const double* xi = x_.col(i);
            for (index_t r = 0; r < n_; ++r)
                hacc_[static_cast<std::size_t>(r)] +=
                    static_cast<long double>(cji) * xi[r];
        }
        for (index_t r = 0; r < n_; ++r)
            out[static_cast<std::size_t>(r)] =
                static_cast<double>(hacc_[static_cast<std::size_t>(r)]);
        return;
    }

    // Scattered block contributions were accumulated at push time.
    const double* aj = acc_.col(j);
    for (index_t r = 0; r < n_; ++r) out[static_cast<std::size_t>(r)] = aj[r];
    // Direct part: the blocked backend owes the in-panel columns, the fft
    // backend the sliding lag window [1, base).
    const index_t lo = backend_ == HistoryBackend::blocked
                           ? (j / base_) * base_
                           : std::max<index_t>(0, j - base_ + 1);
    for (index_t i = lo; i < j; ++i) {
        const double cji = coef(j - i);
        if (cji == 0.0) continue;
        const double* xi = x_.col(i);
        for (index_t r = 0; r < n_; ++r) out[static_cast<std::size_t>(r)] += cji * xi[r];
    }
}

void HistoryEngine::push(index_t j, const double* xj) {
    OPMSIM_REQUIRE(j == next_col_, "HistoryEngine::push: columns must arrive in order");
    OPMSIM_REQUIRE(j < m_, "HistoryEngine::push: column out of range");
    std::copy(xj, xj + n_, x_.col(j));
    ++next_col_;

    const index_t a = next_col_;
    if (backend_ == HistoryBackend::naive || a % base_ != 0 || a >= m_) return;

    if (backend_ == HistoryBackend::blocked) {
        scatter_panel(a);
        return;
    }
    // fft: every dyadic level whose block ends at a fires.  Level L owns
    // the lag window [L, 2L), so block [a-L, a) contributes to columns
    // [a, a+2L).
    for (index_t len = base_; len < m_ && a % len == 0; len *= 2)
        scatter_block(a, len);
}

/// Blocked backend: fold the completed panel [a-P, a) into every future
/// column.  Processes 4 output columns per pass so each panel column is
/// read once per group while the 4 accumulator columns stay in registers
/// or L1.
void HistoryEngine::scatter_panel(index_t a) {
    const index_t p0 = a - base_;
    for (index_t jj = a; jj < m_; jj += 4) {
        const index_t jn = std::min<index_t>(4, m_ - jj);
        double* a0 = acc_.col(jj);
        double* a1 = jn > 1 ? acc_.col(jj + 1) : nullptr;
        double* a2 = jn > 2 ? acc_.col(jj + 2) : nullptr;
        double* a3 = jn > 3 ? acc_.col(jj + 3) : nullptr;
        for (index_t i = p0; i < a; ++i) {
            const double* xi = x_.col(i);
            const double c0 = coef(jj - i);
            const double c1 = jn > 1 ? coef(jj + 1 - i) : 0.0;
            const double c2 = jn > 2 ? coef(jj + 2 - i) : 0.0;
            const double c3 = jn > 3 ? coef(jj + 3 - i) : 0.0;
            switch (jn) {
            case 4:
                for (index_t r = 0; r < n_; ++r) {
                    const double v = xi[r];
                    a0[r] += c0 * v;
                    a1[r] += c1 * v;
                    a2[r] += c2 * v;
                    a3[r] += c3 * v;
                }
                break;
            case 3:
                for (index_t r = 0; r < n_; ++r) {
                    const double v = xi[r];
                    a0[r] += c0 * v;
                    a1[r] += c1 * v;
                    a2[r] += c2 * v;
                }
                break;
            case 2:
                for (index_t r = 0; r < n_; ++r) {
                    const double v = xi[r];
                    a0[r] += c0 * v;
                    a1[r] += c1 * v;
                }
                break;
            default:
                for (index_t r = 0; r < n_; ++r) a0[r] += c0 * xi[r];
            }
        }
    }
}

/// FFT backend: convolve the completed block [a-len, a) against the lag
/// window c[len .. 2*len-1] and scatter into columns [a, a+2*len).  Lags
/// below `len` belong to finer levels (or to the direct sliding window),
/// so each level's kernel magnitude decays with len — the large small-lag
/// Toeplitz coefficients never pass through an FFT, which keeps the
/// backend within ~1e-13 of the naive oracle even for the steeply scaled
/// differential operators.  The kernel spectrum for each dyadic level is
/// cached across all blocks of that level; state channels are packed two
/// per complex transform.
void HistoryEngine::scatter_block(index_t a, index_t len) {
    const index_t avail = std::min(2 * len, m_ - a);
    if (avail <= 0) return;

    // Level index: len = base * 2^level.  The kernel is shifted down by
    // `len` (k'[d] = c[len + d], d < len): the output window then starts
    // at conv index 0 and the FFT size drops to next_pow2(2*len-1) = 2*len
    // — half the transform work of convolving against the unshifted row.
    std::size_t level = 0;
    for (index_t l = base_; l < len; l *= 2) ++level;
    while (plans_.size() <= level) plans_.push_back(nullptr);
    if (!plans_[level]) {
        const index_t lvl_len = base_ << level;
        Vectord kernel(static_cast<std::size_t>(lvl_len), 0.0);
        for (index_t d = 0; d < lvl_len; ++d)
            kernel[static_cast<std::size_t>(d)] = coef(lvl_len + d);
        plans_[level] = std::make_unique<fftx::RealConvPlan>(
            kernel.data(), kernel.size(), static_cast<std::size_t>(lvl_len));
    }
    fftx::RealConvPlan& plan = *plans_[level];

    const index_t i0 = a - len;
    // Conv index s corresponds to lag len + s - u; s = 2*len - 1 would be
    // lag >= 2*len, which belongs to a coarser level, so it is always zero
    // and the read window can stop at 2*len - 2.
    const index_t nt = std::min(avail, 2 * len - 1);
    const std::size_t ulen = static_cast<std::size_t>(len);
    const std::size_t unt = static_cast<std::size_t>(nt);
    for (index_t r = 0; r < n_; r += 2) {
        const bool pair = r + 1 < n_;
        for (index_t u = 0; u < len; ++u) {
            rowa_[static_cast<std::size_t>(u)] = x_(r, i0 + u);
            if (pair) rowb_[static_cast<std::size_t>(u)] = x_(r + 1, i0 + u);
        }
        std::fill(outa_.begin(), outa_.begin() + static_cast<std::ptrdiff_t>(unt), 0.0);
        if (pair) {
            std::fill(outb_.begin(), outb_.begin() + static_cast<std::ptrdiff_t>(unt), 0.0);
            plan.accumulate2(rowa_.data(), rowb_.data(), ulen, outa_.data(),
                             outb_.data(), 0, unt);
        } else {
            plan.accumulate(rowa_.data(), ulen, outa_.data(), 0, unt);
        }
        for (index_t s = 0; s < nt; ++s) {
            acc_(r, a + s) += outa_[static_cast<std::size_t>(s)];
            if (pair) acc_(r + 1, a + s) += outb_[static_cast<std::size_t>(s)];
        }
    }
}

DiffHistoryEngine::DiffHistoryEngine(double alpha, double h, index_t n,
                                     index_t m, HistoryBackend backend)
    : n_(n) {
    OPMSIM_REQUIRE(alpha > 0.0 && h > 0.0, "DiffHistoryEngine: bad operator");
    scale_ = std::pow(2.0 / h, alpha);
    const HistoryBackend be = HistoryEngine::resolve(backend, m);

    const index_t k = alpha > 1.0 && be != HistoryBackend::naive
                          ? static_cast<index_t>(std::ceil(alpha)) - 1
                          : 0;
    const double frac = alpha - static_cast<double>(k);
    frac_ = std::make_unique<HistoryEngine>(frac_diff_series(frac, m), n, m, be);
    r_.assign(static_cast<std::size_t>(k),
              std::vector<long double>(static_cast<std::size_t>(n), 0.0L));
    vcol_.resize(static_cast<std::size_t>(n));
}

void DiffHistoryEngine::history(index_t j, Vectord& out) {
    // The rho_1 strict histories r^{(t)}_j were advanced at push(j-1);
    // the fractional factor acts on the innermost series V^{(k+1)}.
    frac_->history(j, out);
    for (const std::vector<long double>& rt : r_)
        for (index_t r = 0; r < n_; ++r)
            out[static_cast<std::size_t>(r)] +=
                static_cast<double>(rt[static_cast<std::size_t>(r)]);
    for (auto& v : out) v *= scale_;
}

void DiffHistoryEngine::push(index_t j, const double* xj) {
    // Thread X_j through the rho_1 stages: V^{(t+1)}_j = r^{(t)}_j + V^{(t)}_j
    // (unit leading coefficients), then commit the innermost column to the
    // fractional engine and advance each recurrence to column j+1.
    std::copy(xj, xj + n_, vcol_.begin());
    for (std::vector<long double>& rt : r_) {
        for (index_t i = 0; i < n_; ++i) {
            const std::size_t u = static_cast<std::size_t>(i);
            const double vt = vcol_[u];                        // V^{(t)}_j
            vcol_[u] = static_cast<double>(rt[u] + vt);        // V^{(t+1)}_j
            rt[u] = -rt[u] - 2.0L * vt;                        // r^{(t)}_{j+1}
        }
    }
    frac_->push(j, vcol_.data());
}

la::Matrixd toeplitz_apply(const UpperToeplitz& op, const la::Matrixd& x,
                           HistoryBackend backend) {
    const index_t n = x.rows();
    const index_t m = x.cols();
    OPMSIM_REQUIRE(op.size() >= m, "toeplitz_apply: coefficient row too short");
    la::Matrixd y(n, m);
    if (n == 0 || m == 0) return y;

    const HistoryBackend be = HistoryEngine::resolve(backend, m);
    if (be == HistoryBackend::fft) {
        // All columns are known up front: one full-length convolution per
        // channel pair, O(n m log m).
        fftx::RealConvPlan plan(op.coeffs.data(), static_cast<std::size_t>(m),
                                static_cast<std::size_t>(m));
        Vectord rowa(static_cast<std::size_t>(m)), rowb(static_cast<std::size_t>(m));
        Vectord outa(static_cast<std::size_t>(m)), outb(static_cast<std::size_t>(m));
        for (index_t r = 0; r < n; r += 2) {
            const bool pair = r + 1 < n;
            for (index_t j = 0; j < m; ++j) {
                rowa[static_cast<std::size_t>(j)] = x(r, j);
                if (pair) rowb[static_cast<std::size_t>(j)] = x(r + 1, j);
            }
            std::fill(outa.begin(), outa.end(), 0.0);
            if (pair) {
                std::fill(outb.begin(), outb.end(), 0.0);
                plan.accumulate2(rowa.data(), rowb.data(),
                                 static_cast<std::size_t>(m), outa.data(),
                                 outb.data(), 0, static_cast<std::size_t>(m));
            } else {
                plan.accumulate(rowa.data(), static_cast<std::size_t>(m),
                                outa.data(), 0, static_cast<std::size_t>(m));
            }
            for (index_t j = 0; j < m; ++j) {
                y(r, j) = outa[static_cast<std::size_t>(j)];
                if (pair) y(r + 1, j) = outb[static_cast<std::size_t>(j)];
            }
        }
        return y;
    }

    // Stream the columns through a history engine; the diagonal term
    // c0 X_j completes the inclusive sum.
    HistoryEngine eng(op.coeffs, n, m, be);
    const double c0 = op.coeffs[0];
    Vectord h;
    for (index_t j = 0; j < m; ++j) {
        eng.history(j, h);
        const double* xj = x.col(j);
        double* yj = y.col(j);
        for (index_t r = 0; r < n; ++r)
            yj[r] = h[static_cast<std::size_t>(r)] + c0 * xj[r];
        eng.push(j, xj);
    }
    return y;
}

} // namespace opmsim::opm
