#include "opm/fast_history.hpp"

#include <algorithm>
#include <cmath>

#include "fftx/convolve.hpp"
#include "opm/fractional_series.hpp"
#include "opm/solve_cache.hpp"
#include "util/check.hpp"

namespace opmsim::opm {

namespace {

/// Panel width for the blocked backend and base block for the fft backend.
/// 64 columns of a few-hundred-state system fit comfortably in L1/L2.
constexpr index_t kPanel = 64;

/// Crossover (in columns m) above which the fft backend wins over the
/// blocked direct scatter.  Measured on the bench_kernels history sweep
/// (7-state fractional t-line, g++ 12 -O3): the backends tie near m = 256
/// and fft wins 2.3x at 1024, 4.9x at 4096, 23x at 32768.
constexpr index_t kFftCrossover = 192;

/// rho_1 cascade depth for the differential operator on the fast
/// backends: number of exactly-applied rho_1 factors below the decaying
/// fractional factor rho_{alpha-k}.
index_t cascade_depth(double alpha, HistoryBackend resolved) {
    return alpha > 1.0 && resolved != HistoryBackend::naive
               ? static_cast<index_t>(std::ceil(alpha)) - 1
               : 0;
}

/// One rho_1 cascade step at a single element: given V^{(t)}_j and the
/// strict history r^{(t)}_j, returns V^{(t+1)}_j = r + v and advances the
/// recurrence to r^{(t)}_{j+1} = -r - 2v.  The history stays in extended
/// precision: the recurrence is marginally stable (|eigenvalue| = 1), so
/// double roundoff would grow linearly in the column count and the
/// sweep's column recursion amplifies any per-column error by orders of
/// magnitude.  Every cascade site (streaming engine and offline apply)
/// MUST advance through this one helper so the paths stay bit-identical.
inline double rho1_advance(long double& r, double v) {
    const double out = static_cast<double>(r + static_cast<long double>(v));
    r = -r - 2.0L * v;
    return out;
}

} // namespace

HistoryBackend HistoryEngine::resolve(HistoryBackend b, index_t m) {
    if (b != HistoryBackend::automatic) return b;
    // Degenerate / tiny m: below one panel width the blocked scatter never
    // fires (base = m), leaving naive arithmetic plus useless accumulator
    // allocations — fall back to naive cleanly.  `soe` is never chosen
    // automatically: it is approximate and strictly opt-in.
    if (m < kPanel) return HistoryBackend::naive;
    return m >= kFftCrossover ? HistoryBackend::fft : HistoryBackend::blocked;
}

HistoryEngine::HistoryEngine(Vectord coeffs, index_t n, index_t m,
                             HistoryBackend backend, SolveCaches* caches,
                             double soe_tol)
    : HistoryEngine(std::vector<Vectord>{std::move(coeffs)}, n, m, backend,
                    caches, soe_tol) {}

HistoryEngine::HistoryEngine(std::vector<Vectord> rows, index_t n, index_t m,
                             HistoryBackend backend, SolveCaches* caches,
                             double soe_tol)
    : rows_(std::move(rows)), caches_(caches), n_(n), m_(m),
      backend_(resolve(backend, m)) {
    // m = 0 is a legal (if vacuous) engine: nothing may be pushed or
    // queried, but construction must not trip over zero-sized plans.
    OPMSIM_REQUIRE(n >= 1 && m >= 0, "HistoryEngine: empty problem");
    OPMSIM_REQUIRE(!rows_.empty(), "HistoryEngine: need at least one row");
    if (backend_ == HistoryBackend::soe) {
        // Streaming representation: a sliding ring of the last base_
        // columns (the exact direct window, lags [1, base)) plus K fitted
        // modes per term covering lags >= base.  No O(m) column storage is
        // ever allocated — that is the point of the backend.
        base_ = std::max<index_t>(std::min(kPanel, m_), 1);
        ring_ = la::Matrixd(n_, base_);
        fits_.reserve(rows_.size());
        sstate_.resize(rows_.size());
        for (std::size_t t = 0; t < rows_.size(); ++t) {
            Vectord& row = rows_[t];
            const index_t len =
                std::min<index_t>(static_cast<index_t>(row.size()), m_);
            bool fresh = true;
            SoeFit f = caches_ != nullptr
                           ? caches_->soe_row(row, len, base_, soe_tol, &fresh)
                           : fit_soe_row(row.data(), len, base_, soe_tol);
            if (fresh) ++soe_fresh_fits_;
            sstate_[t].assign(
                static_cast<std::size_t>(f.modes()) * static_cast<std::size_t>(n_),
                0.0L);
            fits_.push_back(std::move(f));
            // Only the direct-window taps are needed from here on; free
            // the O(m) row.
            if (static_cast<index_t>(row.size()) > base_)
                row.resize(static_cast<std::size_t>(base_));
        }
        return;
    }
    x_ = la::Matrixd(n_, m_);
    if (backend_ != HistoryBackend::naive) {
        acc_.resize(rows_.size());
        for (auto& a : acc_) a = la::Matrixd(n_, m_);
        base_ = std::min(kPanel, m_);
    }
    if (backend_ == HistoryBackend::fft) {
        rowa_.resize(static_cast<std::size_t>(m_));
        rowb_.resize(static_cast<std::size_t>(m_));
        outa_.resize(static_cast<std::size_t>(m_));
        outb_.resize(static_cast<std::size_t>(m_));
    }
}

HistoryEngine::~HistoryEngine() = default;

void HistoryEngine::history(index_t j, std::size_t term, Vectord& out) {
    OPMSIM_REQUIRE(j >= 0 && j < m_, "HistoryEngine::history: column out of range");
    OPMSIM_REQUIRE(term < rows_.size(), "HistoryEngine::history: term out of range");
    OPMSIM_ENSURE(j <= next_col_, "HistoryEngine::history: column not yet reachable");
    out.assign(static_cast<std::size_t>(n_), 0.0);

    if (backend_ == HistoryBackend::soe) {
        // Streaming contract: the ring window and the mode states are
        // advanced by push(), so only the frontier column is answerable.
        OPMSIM_REQUIRE(j == next_col_,
                       "HistoryEngine::history: soe backend is streaming — "
                       "history may only be queried at the frontier column");
        // Exact direct window: lags 1 .. min(j, base-1) from the ring.
        const index_t dmax = std::min<index_t>(j, base_ - 1);
        for (index_t d = 1; d <= dmax; ++d) {
            const double cd = coef(term, d);
            if (cd == 0.0) continue;
            const double* xi = ring_.col((j - d) % base_);
            for (index_t r = 0; r < n_; ++r)
                out[static_cast<std::size_t>(r)] += cd * xi[r];
        }
        // Mode tail: sum_k w_k S_k covers lags >= base.
        const SoeFit& f = fits_[term];
        const std::vector<long double>& st = sstate_[term];
        for (index_t k = 0; k < f.modes(); ++k) {
            const double wk = f.weights[static_cast<std::size_t>(k)];
            const long double* sk = st.data() +
                                    static_cast<std::size_t>(k) *
                                        static_cast<std::size_t>(n_);
            for (index_t r = 0; r < n_; ++r)
                out[static_cast<std::size_t>(r)] +=
                    wk * static_cast<double>(sk[r]);
        }
        return;
    }

    if (backend_ == HistoryBackend::naive) {
        // Oracle path: accumulate in extended precision.  For operators
        // with growing coefficient rows (D^alpha, alpha > 1) the sum
        // cancels by orders of magnitude, and a double accumulator would
        // leave the *oracle* as the least accurate backend.
        if (hacc_.empty()) hacc_.resize(static_cast<std::size_t>(n_));
        std::fill(hacc_.begin(), hacc_.end(), 0.0L);
        for (index_t i = 0; i < j; ++i) {
            const double cji = coef(term, j - i);
            if (cji == 0.0) continue;
            const double* xi = x_.col(i);
            for (index_t r = 0; r < n_; ++r)
                hacc_[static_cast<std::size_t>(r)] +=
                    static_cast<long double>(cji) * xi[r];
        }
        for (index_t r = 0; r < n_; ++r)
            out[static_cast<std::size_t>(r)] =
                static_cast<double>(hacc_[static_cast<std::size_t>(r)]);
        return;
    }

    // Scattered block contributions were accumulated at push time.
    const double* aj = acc_[term].col(j);
    for (index_t r = 0; r < n_; ++r) out[static_cast<std::size_t>(r)] = aj[r];
    // Direct part: the blocked backend owes the in-panel columns, the fft
    // backend the sliding lag window [1, base).
    const index_t lo = backend_ == HistoryBackend::blocked
                           ? (j / base_) * base_
                           : std::max<index_t>(0, j - base_ + 1);
    for (index_t i = lo; i < j; ++i) {
        const double cji = coef(term, j - i);
        if (cji == 0.0) continue;
        const double* xi = x_.col(i);
        for (index_t r = 0; r < n_; ++r) out[static_cast<std::size_t>(r)] += cji * xi[r];
    }
}

void HistoryEngine::push(index_t j, const double* xj) {
    OPMSIM_REQUIRE(j == next_col_, "HistoryEngine::push: columns must arrive in order");
    OPMSIM_REQUIRE(j < m_, "HistoryEngine::push: column out of range");
    if (backend_ == HistoryBackend::soe) {
        // The column leaving the direct window at the NEXT query is
        // X_{j+1-base}; absorb it into every mode state (S_k tracks
        // sum_{i <= j-base} r_k^{(j-i)-base} X_i, so the entering column
        // carries weight r^0 = 1), then commit X_j into its ring slot.
        const index_t idx = j + 1 - base_;
        if (idx >= 0) {
            const double* enter =
                idx == j ? xj : ring_.col(idx % base_);
            for (std::size_t t = 0; t < rows_.size(); ++t) {
                const SoeFit& f = fits_[t];
                std::vector<long double>& st = sstate_[t];
                for (index_t k = 0; k < f.modes(); ++k) {
                    const long double rk = static_cast<long double>(
                        f.rates[static_cast<std::size_t>(k)]);
                    long double* sk = st.data() +
                                      static_cast<std::size_t>(k) *
                                          static_cast<std::size_t>(n_);
                    for (index_t r = 0; r < n_; ++r)
                        sk[r] = rk * sk[r] + static_cast<long double>(enter[r]);
                }
            }
        }
        std::copy(xj, xj + n_, ring_.col(j % base_));
        ++next_col_;
        return;
    }
    std::copy(xj, xj + n_, x_.col(j));
    ++next_col_;

    const index_t a = next_col_;
    if (backend_ == HistoryBackend::naive || a % base_ != 0 || a >= m_) return;

    if (backend_ == HistoryBackend::blocked) {
        for (std::size_t t = 0; t < rows_.size(); ++t) scatter_panel(t, a);
        return;
    }
    // fft: every dyadic level whose block ends at a fires.  Level L owns
    // the lag window [L, 2L), so block [a-L, a) contributes to columns
    // [a, a+2L).
    for (index_t len = base_; len < m_ && a % len == 0; len *= 2)
        scatter_block(a, len);
}

index_t HistoryEngine::soe_modes() const {
    index_t k = 0;
    for (const SoeFit& f : fits_) k += f.modes();
    return k;
}

double HistoryEngine::soe_fit_error() const {
    double e = 0.0;
    for (const SoeFit& f : fits_) e = std::max(e, f.fit_error);
    return e;
}

std::size_t HistoryEngine::resident_state_bytes() const {
    std::size_t b = 0;
    b += static_cast<std::size_t>(x_.rows()) *
         static_cast<std::size_t>(x_.cols()) * sizeof(double);
    for (const la::Matrixd& a : acc_)
        b += static_cast<std::size_t>(a.rows()) *
             static_cast<std::size_t>(a.cols()) * sizeof(double);
    b += static_cast<std::size_t>(ring_.rows()) *
         static_cast<std::size_t>(ring_.cols()) * sizeof(double);
    for (const std::vector<long double>& s : sstate_)
        b += s.size() * sizeof(long double);
    for (const SoeFit& f : fits_)
        b += (f.rates.size() + f.weights.size()) * sizeof(double);
    for (const Vectord& r : rows_) b += r.size() * sizeof(double);
    return b;
}

/// Blocked backend: fold the completed panel [a-P, a) into every future
/// column of one term.  Processes 4 output columns per pass so each panel
/// column is read once per group while the 4 accumulator columns stay in
/// registers or L1; across terms the panel of X stays cache-hot.
void HistoryEngine::scatter_panel(std::size_t t, index_t a) {
    const index_t p0 = a - base_;
    la::Matrixd& acc = acc_[t];
    for (index_t jj = a; jj < m_; jj += 4) {
        const index_t jn = std::min<index_t>(4, m_ - jj);
        double* a0 = acc.col(jj);
        double* a1 = jn > 1 ? acc.col(jj + 1) : nullptr;
        double* a2 = jn > 2 ? acc.col(jj + 2) : nullptr;
        double* a3 = jn > 3 ? acc.col(jj + 3) : nullptr;
        for (index_t i = p0; i < a; ++i) {
            const double* xi = x_.col(i);
            const double c0 = coef(t, jj - i);
            const double c1 = jn > 1 ? coef(t, jj + 1 - i) : 0.0;
            const double c2 = jn > 2 ? coef(t, jj + 2 - i) : 0.0;
            const double c3 = jn > 3 ? coef(t, jj + 3 - i) : 0.0;
            switch (jn) {
            case 4:
                for (index_t r = 0; r < n_; ++r) {
                    const double v = xi[r];
                    a0[r] += c0 * v;
                    a1[r] += c1 * v;
                    a2[r] += c2 * v;
                    a3[r] += c3 * v;
                }
                break;
            case 3:
                for (index_t r = 0; r < n_; ++r) {
                    const double v = xi[r];
                    a0[r] += c0 * v;
                    a1[r] += c1 * v;
                    a2[r] += c2 * v;
                }
                break;
            case 2:
                for (index_t r = 0; r < n_; ++r) {
                    const double v = xi[r];
                    a0[r] += c0 * v;
                    a1[r] += c1 * v;
                }
                break;
            default:
                for (index_t r = 0; r < n_; ++r) a0[r] += c0 * xi[r];
            }
        }
    }
}

/// Lazily build (or fetch) term t's convolution plan for a dyadic level.
/// The kernel is the term's lag window c[len .. 2*len-1]; a window that is
/// entirely zero (short rows — e.g. Grünwald weights truncated early, or
/// low-order terms) gets no plan and the term skips the level.
fftx::RealConvPlan* HistoryEngine::level_plan(std::size_t level, std::size_t t,
                                              index_t len) {
    while (plans_.size() <= level)
        plans_.emplace_back(rows_.size());
    auto& slot = plans_[level][t];
    if (!slot) {
        Vectord kernel(static_cast<std::size_t>(len), 0.0);
        bool any = false;
        for (index_t d = 0; d < len; ++d) {
            const double c = coef(t, len + d);
            kernel[static_cast<std::size_t>(d)] = c;
            if (c != 0.0) any = true;
        }
        if (!any) return nullptr;
        slot = caches_ != nullptr
                   ? caches_->plans->get(kernel.data(), kernel.size(),
                                         static_cast<std::size_t>(len))
                   : std::make_shared<fftx::RealConvPlan>(
                         kernel.data(), kernel.size(),
                         static_cast<std::size_t>(len));
    }
    return slot.get();
}

/// FFT backend: convolve the completed block [a-len, a) against each
/// term's lag window c[len .. 2*len-1] and scatter into columns
/// [a, a+2*len).  Lags below `len` belong to finer levels (or to the
/// direct sliding window), so each level's kernel magnitude decays with
/// len — the large small-lag Toeplitz coefficients never pass through an
/// FFT, which keeps the backend within ~1e-13 of the naive oracle even
/// for the steeply scaled differential operators.  The kernel spectrum
/// for each (level, term) is cached across all blocks of that level;
/// state channels are packed two per complex transform, and the forward
/// transform of the block is computed ONCE per channel pair and reused
/// for every term's kernel (RealConvPlan::accumulate_spectrum).
void HistoryEngine::scatter_block(index_t a, index_t len) {
    const index_t avail = std::min(2 * len, m_ - a);
    if (avail <= 0) return;

    // Level index: len = base * 2^level.  The kernel is shifted down by
    // `len` (k'[d] = c[len + d], d < len): the output window then starts
    // at conv index 0 and the FFT size drops to next_pow2(2*len-1) = 2*len
    // — half the transform work of convolving against the unshifted row.
    std::size_t level = 0;
    for (index_t l = base_; l < len; l *= 2) ++level;
    fftx::RealConvPlan* fwd = nullptr;
    for (std::size_t t = 0; t < rows_.size(); ++t) {
        fftx::RealConvPlan* p = level_plan(level, t, len);
        if (fwd == nullptr && p != nullptr) fwd = p;
    }
    if (fwd == nullptr) return;  // every term is zero on this lag window

    const index_t i0 = a - len;
    // Conv index s corresponds to lag len + s - u; s = 2*len - 1 would be
    // lag >= 2*len, which belongs to a coarser level, so it is always zero
    // and the read window can stop at 2*len - 2.
    const index_t nt = std::min(avail, 2 * len - 1);
    const std::size_t ulen = static_cast<std::size_t>(len);
    const std::size_t unt = static_cast<std::size_t>(nt);
    for (index_t r = 0; r < n_; r += 2) {
        const bool pair = r + 1 < n_;
        for (index_t u = 0; u < len; ++u) {
            rowa_[static_cast<std::size_t>(u)] = x_(r, i0 + u);
            if (pair) rowb_[static_cast<std::size_t>(u)] = x_(r + 1, i0 + u);
        }
        fwd->forward(rowa_.data(), pair ? rowb_.data() : nullptr, ulen, spec_);
        for (std::size_t t = 0; t < rows_.size(); ++t) {
            fftx::RealConvPlan* plan = plans_[level][t].get();
            if (plan == nullptr) continue;
            std::fill(outa_.begin(),
                      outa_.begin() + static_cast<std::ptrdiff_t>(unt), 0.0);
            if (pair)
                std::fill(outb_.begin(),
                          outb_.begin() + static_cast<std::ptrdiff_t>(unt), 0.0);
            plan->accumulate_spectrum(spec_, outa_.data(),
                                      pair ? outb_.data() : nullptr, 0, unt);
            la::Matrixd& acc = acc_[t];
            for (index_t s = 0; s < nt; ++s) {
                acc(r, a + s) += outa_[static_cast<std::size_t>(s)];
                if (pair) acc(r + 1, a + s) += outb_[static_cast<std::size_t>(s)];
            }
        }
    }
}

DiffHistoryEngine::DiffHistoryEngine(double alpha, double h, index_t n,
                                     index_t m, HistoryBackend backend,
                                     SolveCaches* caches, double soe_tol)
    : eng_([&] {
          OPMSIM_REQUIRE(alpha > 0.0, "DiffHistoryEngine: bad operator");
          return std::vector<double>{alpha};
      }(), h, n, m, backend, caches, soe_tol) {}

MultiTermHistoryEngine::MultiTermHistoryEngine(const std::vector<double>& alphas,
                                               double h, index_t n, index_t m,
                                               HistoryBackend backend,
                                               SolveCaches* caches,
                                               double soe_tol)
    : n_(n), backend_(HistoryEngine::resolve(backend, m)) {
    OPMSIM_REQUIRE(!alphas.empty(), "MultiTermHistoryEngine: no terms");
    OPMSIM_REQUIRE(h > 0.0 && n >= 1 && m >= 1,
                   "MultiTermHistoryEngine: empty problem");

    terms_.resize(alphas.size());
    index_t max_depth = 0;
    for (std::size_t k = 0; k < alphas.size(); ++k) {
        const double a = alphas[k];
        OPMSIM_REQUIRE(a >= 0.0, "MultiTermHistoryEngine: negative order");
        terms_[k].scale = std::pow(2.0 / h, a);
        terms_[k].identity = a == 0.0;
        terms_[k].depth = terms_[k].identity ? 0 : cascade_depth(a, backend_);
        max_depth = std::max(max_depth, terms_[k].depth);
    }

    // Group the non-identity terms by cascade depth; each group becomes
    // one batched engine over the shared stream V^{(depth)}.
    std::vector<std::vector<Vectord>> rows(static_cast<std::size_t>(max_depth) + 1);
    for (std::size_t k = 0; k < alphas.size(); ++k) {
        if (terms_[k].identity) continue;
        const std::size_t d = static_cast<std::size_t>(terms_[k].depth);
        terms_[k].slot = rows[d].size();
        const double frac = alphas[k] - static_cast<double>(terms_[k].depth);
        rows[d].push_back(caches != nullptr ? caches->frac_diff_series(frac, m)
                                            : frac_diff_series(frac, m));
    }
    groups_.resize(rows.size());
    for (std::size_t d = 0; d < rows.size(); ++d)
        if (!rows[d].empty())
            groups_[d] = std::make_unique<HistoryEngine>(
                std::move(rows[d]), n, m, backend_, caches, soe_tol);
    r_.assign(static_cast<std::size_t>(max_depth),
              std::vector<long double>(static_cast<std::size_t>(n), 0.0L));
    vcol_.resize(static_cast<std::size_t>(n));
}

index_t MultiTermHistoryEngine::soe_modes() const {
    index_t k = 0;
    for (const auto& g : groups_)
        if (g) k += g->soe_modes();
    return k;
}

index_t MultiTermHistoryEngine::soe_fresh_fits() const {
    index_t k = 0;
    for (const auto& g : groups_)
        if (g) k += g->soe_fresh_fits();
    return k;
}

double MultiTermHistoryEngine::soe_fit_error() const {
    double e = 0.0;
    for (const auto& g : groups_)
        if (g) e = std::max(e, g->soe_fit_error());
    return e;
}

std::size_t MultiTermHistoryEngine::resident_state_bytes() const {
    std::size_t b = 0;
    for (const auto& g : groups_)
        if (g) b += g->resident_state_bytes();
    for (const auto& rt : r_) b += rt.size() * sizeof(long double);
    return b;
}

void MultiTermHistoryEngine::history(index_t j, std::size_t term, Vectord& out) {
    OPMSIM_REQUIRE(term < terms_.size(),
                   "MultiTermHistoryEngine::history: term out of range");
    const Term& t = terms_[term];
    if (t.identity) {
        out.assign(static_cast<std::size_t>(n_), 0.0);
        return;
    }
    groups_[static_cast<std::size_t>(t.depth)]->history(j, t.slot, out);
    for (index_t d = 0; d < t.depth; ++d) {
        const std::vector<long double>& rd = r_[static_cast<std::size_t>(d)];
        for (index_t r = 0; r < n_; ++r)
            out[static_cast<std::size_t>(r)] +=
                static_cast<double>(rd[static_cast<std::size_t>(r)]);
    }
    for (auto& v : out) v *= t.scale;
}

void MultiTermHistoryEngine::push(index_t j, const double* xj) {
    // V^{(0)} = X feeds the depth-0 group; each rho_1 stage then advances
    // the shared recurrence and feeds the next depth's group.
    std::copy(xj, xj + n_, vcol_.begin());
    if (groups_[0]) groups_[0]->push(j, vcol_.data());
    for (std::size_t t = 0; t < r_.size(); ++t) {
        std::vector<long double>& rt = r_[t];
        for (index_t i = 0; i < n_; ++i) {
            const std::size_t u = static_cast<std::size_t>(i);
            vcol_[u] = rho1_advance(rt[u], vcol_[u]);
        }
        if (groups_[t + 1]) groups_[t + 1]->push(j, vcol_.data());
    }
}

la::Matrixd toeplitz_apply(const UpperToeplitz& op, const la::Matrixd& x,
                           HistoryBackend backend, SolveCaches* caches,
                           double soe_tol) {
    const index_t n = x.rows();
    const index_t m = x.cols();
    OPMSIM_REQUIRE(op.size() >= m, "toeplitz_apply: coefficient row too short");
    la::Matrixd y(n, m);
    if (n == 0 || m == 0) return y;

    const HistoryBackend be = HistoryEngine::resolve(backend, m);
    if (be == HistoryBackend::fft) {
        // All columns are known up front: one full-length convolution per
        // channel pair, O(n m log m).
        const std::shared_ptr<fftx::RealConvPlan> plan_ptr =
            caches != nullptr
                ? caches->plans->get(op.coeffs.data(),
                                     static_cast<std::size_t>(m),
                                     static_cast<std::size_t>(m))
                : std::make_shared<fftx::RealConvPlan>(
                      op.coeffs.data(), static_cast<std::size_t>(m),
                      static_cast<std::size_t>(m));
        fftx::RealConvPlan& plan = *plan_ptr;
        Vectord rowa(static_cast<std::size_t>(m)), rowb(static_cast<std::size_t>(m));
        Vectord outa(static_cast<std::size_t>(m)), outb(static_cast<std::size_t>(m));
        for (index_t r = 0; r < n; r += 2) {
            const bool pair = r + 1 < n;
            for (index_t j = 0; j < m; ++j) {
                rowa[static_cast<std::size_t>(j)] = x(r, j);
                if (pair) rowb[static_cast<std::size_t>(j)] = x(r + 1, j);
            }
            std::fill(outa.begin(), outa.end(), 0.0);
            if (pair) {
                std::fill(outb.begin(), outb.end(), 0.0);
                plan.accumulate2(rowa.data(), rowb.data(),
                                 static_cast<std::size_t>(m), outa.data(),
                                 outb.data(), 0, static_cast<std::size_t>(m));
            } else {
                plan.accumulate(rowa.data(), static_cast<std::size_t>(m),
                                outa.data(), 0, static_cast<std::size_t>(m));
            }
            for (index_t j = 0; j < m; ++j) {
                y(r, j) = outa[static_cast<std::size_t>(j)];
                if (pair) y(r + 1, j) = outb[static_cast<std::size_t>(j)];
            }
        }
        return y;
    }

    // Stream the columns through a history engine (the soe backend's
    // frontier-only contract is honored by construction); the diagonal
    // term c0 X_j completes the inclusive sum.
    HistoryEngine eng(op.coeffs, n, m, be, caches, soe_tol);
    const double c0 = op.coeffs[0];
    Vectord h;
    for (index_t j = 0; j < m; ++j) {
        eng.history(j, h);
        const double* xj = x.col(j);
        double* yj = y.col(j);
        for (index_t r = 0; r < n; ++r)
            yj[r] = h[static_cast<std::size_t>(r)] + c0 * xj[r];
        eng.push(j, xj);
    }
    return y;
}

la::Matrixd diff_toeplitz_apply(double alpha, double h, const la::Matrixd& x,
                                HistoryBackend backend, SolveCaches* caches,
                                double soe_tol) {
    OPMSIM_REQUIRE(alpha >= 0.0 && h > 0.0, "diff_toeplitz_apply: bad operator");
    if (alpha == 0.0) return x;  // D^0 = I
    const index_t n = x.rows();
    const index_t m = x.cols();
    if (n == 0 || m == 0) return x;

    const HistoryBackend be = HistoryEngine::resolve(backend, m);
    const index_t k = cascade_depth(alpha, be);

    // Exact rho_1 stages first: the inclusive apply y_j = V_j + r_j (unit
    // leading coefficient), advancing through the shared cascade helper.
    la::Matrixd v = x;
    std::vector<long double> r(static_cast<std::size_t>(n));
    for (index_t stage = 0; stage < k; ++stage) {
        std::fill(r.begin(), r.end(), 0.0L);
        for (index_t j = 0; j < m; ++j) {
            double* vj = v.col(j);
            for (index_t i = 0; i < n; ++i)
                vj[i] = rho1_advance(r[static_cast<std::size_t>(i)], vj[i]);
        }
    }

    // Decaying fractional factor through the shared Toeplitz apply, then
    // the operator scale in one pass.
    UpperToeplitz frac;
    const double fa = alpha - static_cast<double>(k);
    frac.coeffs = caches != nullptr ? caches->frac_diff_series(fa, m)
                                    : frac_diff_series(fa, m);
    la::Matrixd y = toeplitz_apply(frac, v, be, caches, soe_tol);
    y *= std::pow(2.0 / h, alpha);
    return y;
}

} // namespace opmsim::opm
